#!/usr/bin/env bash
# benchhistory.sh — aggregate every checked-in BENCH_PR<N>.json into one
# trajectory table, so a new PR's numbers land next to the whole history
# instead of a single predecessor. Each PR's benchmark recorded a
# different mode (micro counters, GC compare, memsweep, gammatune,
# torture, core/die sweeps, bitmap gate); the table extracts each file's
# headline numbers and any gates it carried.
#
# Usage: scripts/benchhistory.sh            → prints the table
#        scripts/benchhistory.sh -markdown  → GitHub-flavored table
set -euo pipefail
cd "$(dirname "$0")/.."

MARKDOWN=0
[ "${1:-}" = "-markdown" ] && MARKDOWN=1

python3 - "$MARKDOWN" <<'EOF'
import glob, json, re, sys

markdown = sys.argv[1] == "1"
rows = []

def fmt_bytes(n):
    if n >= 1 << 20:
        return "%.1fMiB" % (n / (1 << 20))
    if n >= 1 << 10:
        return "%.1fKiB" % (n / (1 << 10))
    return "%dB" % n

for path in sorted(glob.glob("BENCH_PR*.json"),
                   key=lambda p: int(re.search(r"\d+", p).group())):
    pr = re.search(r"\d+", path).group()
    d = json.load(open(path))
    mode = d.get("mode", "micro")
    headline, gate = "-", "-"
    # meta-WAF / meta-writes trajectory: every mode that charges
    # translation-page traffic reports them for its headline LeaFTL cell,
    # so metadata-persistence cost is comparable across PRs.
    meta_cell = None

    if mode == "micro" or "micro" in d:
        micro = d.get("micro", [])
        lk = next((m for m in micro if "Lookup" in m.get("name", "")), None)
        if lk:
            headline = "%s %.0fns/op" % (
                lk["name"].replace("Benchmark", ""), lk.get("ns_per_op", 0))
        par = d.get("parallel_replay") or {}
        if isinstance(par, dict) and par.get("memory_reduction"):
            headline += ", %.1fx mem reduction" % par["memory_reduction"]
        mode = "micro"
    elif mode == "gc-compare":
        runs = d.get("runs", [])
        if runs:
            best = min(runs, key=lambda r: r.get("waf", 9e9))
            headline = "best WAF %.2f (%s/%s×%d)" % (
                best.get("waf", 0), best.get("workload", "?"),
                best.get("policy", "?"), best.get("streams", 0))
            meta_cell = best
    elif mode == "memsweep":
        runs = [r for r in d.get("runs", []) if r.get("scheme") == "LeaFTL"]
        if runs:
            tight = min(runs, key=lambda r: r.get("budget_bytes", 9e9))
            headline = "LeaFTL @%s budget: %.3f meta-reads/op" % (
                fmt_bytes(tight.get("budget_bytes", 0)), tight.get("miss_per_op", 0))
            meta_cell = tight
    elif mode == "openloop-replay":
        lea = [s for s in d.get("schemes", []) if "LeaFTL" in s.get("scheme", "")]
        if lea:
            headline = "LeaFTL p999 %.0fus" % lea[0].get("p999_us", 0)
            meta_cell = lea[0]
    elif mode == "gammatune":
        runs = d.get("runs", [])
        auto = [r for r in runs if r.get("autotune") and not r.get("bitmap")]
        if auto:
            headline = "autotune dbl/op %.4f, table %s" % (
                auto[0].get("double_read_per_op", 0),
                fmt_bytes(auto[0].get("table_bytes", 0)))
        dom = d.get("dominance", [])
        dominated = sum(len(w.get("dominated_static_gammas", [])) for w in dom)
        gate = "dominates %d static cells" % dominated
        bg = d.get("bitmap_gate")
        if bg:
            bm = [r for r in runs if r.get("bitmap")]
            if bm:
                headline = "bitmap dbl/op %.4f (autotune %.4f), table %s" % (
                    bm[0].get("double_read_per_op", 0),
                    auto[0].get("double_read_per_op", 0) if auto else 0,
                    fmt_bytes(bm[0].get("table_bytes", 0)))
            gate = "bitmap gate %s (relearns %d)" % (
                "PASS" if bg.get("pass") else "FAIL", bg.get("relearns", 0))
    elif mode == "torture":
        headline = "%d crashes over %d cells" % (
            d.get("total_crashes", 0), len(d.get("cells", [])))
        sweep = d.get("fault_sweep") or []
        gate = "fault sweep %d cells" % len(sweep) if sweep else "-"
    elif mode == "coresweep":
        runs = d.get("runs", [])
        if runs:
            best = max(runs, key=lambda r: r.get("kiops", 0))
            headline = "%.0f kIOPS @%d workers" % (
                best.get("kiops", 0), best.get("workers", 0))
        gate = "deterministic=%s monotone=%s" % (
            d.get("deterministic"), d.get("monotone_kiops_to_4_workers"))
    elif mode == "diesweep":
        headline = "%.2fx kIOPS 4 dies vs 1" % d.get("kiops_speedup_4_dies_vs_1", 0)
        gate = "monotone=%s overlap=%s" % (
            d.get("monotone_kiops_to_4_dies"), d.get("meta_overlap_positive"))

    if meta_cell is not None and "meta_waf" in meta_cell:
        metawaf = "%.4f" % meta_cell.get("meta_waf", 0)
        metawrites = str(meta_cell.get("meta_writes", 0))
        if meta_cell.get("journal"):
            metawrites += "+J"
    else:
        metawaf, metawrites = "-", "-"
    rows.append((pr, mode, headline, metawaf, metawrites, gate))

header = ("PR", "mode", "headline", "metaWAF", "metaW", "gates")
widths = [max(len(str(r[i])) for r in rows + [header]) for i in range(len(header))]
if markdown:
    print("| " + " | ".join(header) + " |")
    print("|" + "|".join("---" for _ in header) + "|")
    for r in rows:
        print("| " + " | ".join(str(c) for c in r) + " |")
else:
    line = "  ".join(h.ljust(w) for h, w in zip(header, widths))
    print(line)
    print("-" * len(line))
    for r in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(r, widths)))
EOF
