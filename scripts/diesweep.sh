#!/usr/bin/env bash
# diesweep.sh — replay a timed workload open-loop across channel × die ×
# plane flash geometries and record the kIOPS-vs-dies curve plus the
# budgeted-arm map-op/data-op overlap (Stats.MetaOverlap).
#
# Usage: scripts/diesweep.sh [PR-number] [dies]
#   scripts/diesweep.sh 8          → writes BENCH_PR8.json (and prints the table)
#   scripts/diesweep.sh 8 1,4      → sweep only those die counts
#
# Env knobs:
#   PLANES    planes per die, every row        (default 2)
#   WORKERS   queue pairs for the replay       (default 4)
#   GAMMA     LeaFTL error bound               (default 0)
#   WORKLOAD  timed workload to replay         (default zipf-hot)
#   SEED      workload generation seed         (default 1)
set -euo pipefail
cd "$(dirname "$0")/.."

PR="${1:-8}"
DIES="${2:-1,2,4}"
PLANES="${PLANES:-2}"
WORKERS="${WORKERS:-4}"
GAMMA="${GAMMA:-0}"
WORKLOAD="${WORKLOAD:-zipf-hot}"
SEED="${SEED:-1}"

echo "building..." >&2
go build ./cmd/leaftl-bench

out="BENCH_PR${PR}.json"
echo "== die sweep (dies=$DIES planes=$PLANES workers=$WORKERS workload=$WORKLOAD gamma=$GAMMA seed=$SEED) ==" >&2
./leaftl-bench -diesweep \
  -dies "$DIES" -planes "$PLANES" -workers "$WORKERS" \
  -sweep-workload "$WORKLOAD" \
  -gamma "$GAMMA" -seed "$SEED" \
  -json "$out"
rm -f leaftl-bench

echo "wrote $out" >&2
