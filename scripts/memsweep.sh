#!/usr/bin/env bash
# memsweep.sh — cap every translation scheme's mapping DRAM at a sweep of
# budgets and record throughput / tail latency / mapping-miss ratio /
# meta-WAF per cell. LeaFTL demand-pages its learned segment groups under
# the cap exactly like DFTL pages its CMT, so the comparison is honest.
#
# Usage: scripts/memsweep.sh [PR-number] [qd] [speedup]
#   scripts/memsweep.sh 4        → writes BENCH_PR4.json (and prints the table)
#   scripts/memsweep.sh 4 8 2    → 8 host queues, 2x replay speed
#
# Env knobs:
#   GAMMA      LeaFTL error bound                  (default 4)
#   BUDGETS    comma list; ≤ 8 = fraction of each scheme's full mapping
#              size, larger = absolute bytes       (default 0.125,0.25,0.5,1)
#   SCHEMES    comma list of schemes               (default LeaFTL,DFTL,SFTL)
#   WORKLOADS  comma list of timed workloads       (default zipf-hot,mixed-rw)
#   JOURNAL    1 = mapping-delta journal on, 0 = full-image writeback
#              (default 1)
set -euo pipefail
cd "$(dirname "$0")/.."

PR="${1:-4}"
QD="${2:-4}"
SPEEDUP="${3:-1}"
GAMMA="${GAMMA:-4}"
BUDGETS="${BUDGETS:-0.125,0.25,0.5,1}"
SCHEMES="${SCHEMES:-LeaFTL,DFTL,SFTL}"
WORKLOADS="${WORKLOADS:-zipf-hot,mixed-rw}"
JOURNAL="${JOURNAL:-1}"
JFLAG=true
[ "$JOURNAL" = "0" ] && JFLAG=false

echo "building..." >&2
go build ./cmd/leaftl-bench

out="BENCH_PR${PR}.json"
echo "== memory sweep (budgets=$BUDGETS schemes=$SCHEMES workloads=$WORKLOADS qd=$QD speedup=$SPEEDUP gamma=$GAMMA journal=$JFLAG) ==" >&2
./leaftl-bench -memsweep \
  -mapping-budget "$BUDGETS" -mem-schemes "$SCHEMES" -mem-workloads "$WORKLOADS" \
  -qd "$QD" -speedup "$SPEEDUP" -gamma "$GAMMA" -journal="$JFLAG" \
  -json "$out"
rm -f leaftl-bench

echo "wrote $out" >&2
