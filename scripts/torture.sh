#!/usr/bin/env bash
# torture.sh — run the seeded crash-torture matrix (GC policies ×
# mapping budgets × autotune, each cell kill-recover-verified) plus the
# aged-device fault-injection sweep, and record crash-point coverage and
# reliability counters.
#
# Usage: scripts/torture.sh [PR-number] [mode]
#   scripts/torture.sh 6        → quick scale, writes BENCH_PR6.json
#   scripts/torture.sh 6 micro  → micro scale CI smoke (no JSON artifact)
#
# Env knobs:
#   SEED          workload + crash seed             (default 1)
#   FAULT_SEED    fault-model seed                  (default: SEED)
#   CRASH_POINTS  crashes injected per matrix cell  (default 5)
#   RBERS         comma list of base RBERs          (default 1e-7,1e-5,5e-5,1e-4,5e-4)
#   GAMMA         LeaFTL error bound / autotune cap (default 8)
set -euo pipefail
cd "$(dirname "$0")/.."

PR="${1:-6}"
MODE="${2:-quick}"
SEED="${SEED:-1}"
FAULT_SEED="${FAULT_SEED:-$SEED}"
CRASH_POINTS="${CRASH_POINTS:-5}"
RBERS="${RBERS:-1e-7,1e-5,5e-5,1e-4,5e-4}"
GAMMA="${GAMMA:-8}"

echo "building..." >&2
go build ./cmd/leaftl-bench

flags=(-torture -seed "$SEED" -fault-seed "$FAULT_SEED" -gamma "$GAMMA"
  -crash-points "$CRASH_POINTS" -fault-rber "$RBERS")
if [[ "$MODE" == "micro" ]]; then
  # CI smoke: fastest scale, fewer crash points, two RBER points, table
  # output only.
  ./leaftl-bench "${flags[@]}" -micro -crash-points 2 -fault-rber 1e-7,1e-4
else
  out="BENCH_PR${PR}.json"
  echo "== torture (seed=$SEED fault_seed=$FAULT_SEED crash_points=$CRASH_POINTS rbers=$RBERS gamma=$GAMMA) ==" >&2
  ./leaftl-bench "${flags[@]}" -json "$out"
  echo "wrote $out" >&2
fi
rm -f leaftl-bench
