#!/usr/bin/env bash
# bench.sh — run the core micro benchmarks and the sharded parallel
# replay, and record the results as BENCH_PR<N>.json so future PRs have a
# performance trajectory to compare against.
#
# Usage: scripts/bench.sh [PR-number] [output-file]
#   scripts/bench.sh 1            → writes BENCH_PR1.json
#   scripts/bench.sh 2 out.json   → writes out.json
set -euo pipefail
cd "$(dirname "$0")/.."

PR="${1:-1}"
OUT="${2:-BENCH_PR${PR}.json}"
BENCHTIME="${BENCHTIME:-1s}"

echo "running core micro benchmarks..." >&2
MICRO_RAW=$(go test -bench 'BenchmarkLookup$|BenchmarkLookupSharded$|BenchmarkUpdate$|BenchmarkLearn256$|BenchmarkCompact$' \
  -benchmem -benchtime "$BENCHTIME" ./internal/core)

echo "running sharded parallel replay (4 streams, 8 shards)..." >&2
PARALLEL_JSON=$(go run ./cmd/leaftl-bench -parallel 4 -shards 8 -gamma 0 -json - | sed -n '/^{/,$p')

echo "running race-checked sharding equivalence tests..." >&2
go test -race -run 'Sharded' ./internal/core >&2

MICRO_JSON=$(printf '%s\n' "$MICRO_RAW" | awk '
  /^Benchmark/ {
    name=$1; sub(/-[0-9]+$/, "", name)
    ns=""; bytes=""; allocs=""
    for (i=2; i<NF; i++) {
      if ($(i+1) == "ns/op")     ns=$i
      if ($(i+1) == "B/op")      bytes=$i
      if ($(i+1) == "allocs/op") allocs=$i
    }
    if (out != "") out = out ",\n"
    out = out sprintf("    {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}",
                      name, ns, (bytes==""?"null":bytes), (allocs==""?"null":allocs))
  }
  END { print out }
')

HOST=$(printf '%s\n' "$MICRO_RAW" | awk '/^cpu:/ { $1=""; sub(/^ /,""); print; exit }')

# Pre-change numbers, measured at the seed commit (ea8255b) on the same
# host the PR-1 results were recorded on — kept here so every regeneration
# of BENCH_PR1.json retains the comparison base for the 2x acceptance bar.
BASELINE='[
    {"name": "BenchmarkLearn256/gamma0", "ns_per_op": 17760, "bytes_per_op": 32704, "allocs_per_op": 230},
    {"name": "BenchmarkLearn256/gamma1", "ns_per_op": 9876, "bytes_per_op": 10840, "allocs_per_op": 85},
    {"name": "BenchmarkLearn256/gamma4", "ns_per_op": 8179, "bytes_per_op": 9824, "allocs_per_op": 63},
    {"name": "BenchmarkLookup/gamma0", "ns_per_op": 72.77, "bytes_per_op": 0, "allocs_per_op": 0},
    {"name": "BenchmarkLookup/gamma1", "ns_per_op": 113.4, "bytes_per_op": 0, "allocs_per_op": 0},
    {"name": "BenchmarkLookup/gamma4", "ns_per_op": 108.7, "bytes_per_op": 0, "allocs_per_op": 0},
    {"name": "BenchmarkUpdate", "ns_per_op": 82173, "bytes_per_op": 84062, "allocs_per_op": 596}
  ]'

cat > "$OUT" <<EOF
{
  "pr": ${PR},
  "date": "$(date -u +%Y-%m-%dT%H:%M:%SZ)",
  "host_cpu": "${HOST}",
  "go": "$(go env GOVERSION)",
  "benchtime": "${BENCHTIME}",
  "seed_baseline": ${BASELINE},
  "micro": [
${MICRO_JSON}
  ],
  "parallel_replay": ${PARALLEL_JSON}
}
EOF

echo "wrote ${OUT}" >&2
