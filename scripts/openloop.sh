#!/usr/bin/env bash
# openloop.sh — replay the checked-in sample traces open-loop against
# LeaFTL/DFTL/SFTL and record the tail-latency results.
#
# Usage: scripts/openloop.sh [PR-number] [qd] [speedup]
#   scripts/openloop.sh 2        → writes OPENLOOP_PR2.json (and prints tables)
#   scripts/openloop.sh 2 8 2    → 8 host queues, 2x replay speed
set -euo pipefail
cd "$(dirname "$0")/.."

PR="${1:-2}"
QD="${2:-4}"
SPEEDUP="${3:-1}"
GAMMA="${GAMMA:-4}"

echo "building..." >&2
go build ./cmd/leaftl-bench

out="OPENLOOP_PR${PR}.json"
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

for trace in traces/msr-sample.csv traces/fiu-sample.trace traces/native-sample.trace; do
  name=$(basename "$trace" | tr '.' '_')
  echo "== replaying $trace (qd=$QD speedup=$SPEEDUP gamma=$GAMMA) ==" >&2
  ./leaftl-bench -openloop -trace "$trace" -qd "$QD" -speedup "$SPEEDUP" -gamma "$GAMMA" \
    -json "$tmp/$name.json"
done

# Stitch the per-trace results into one JSON array.
{
  echo '['
  first=1
  for f in "$tmp"/*.json; do
    [ $first -eq 1 ] || echo ','
    first=0
    cat "$f"
  done
  echo ']'
} > "$out"
rm -f leaftl-bench

echo "wrote $out" >&2
