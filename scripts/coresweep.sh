#!/usr/bin/env bash
# coresweep.sh — replay a timed workload through the real multi-queue
# front end at each worker/queue-pair count and record the kIOPS-vs-cores
# curve plus the cross-count state-digest determinism check.
#
# Usage: scripts/coresweep.sh [PR-number] [workers]
#   scripts/coresweep.sh 7          → writes BENCH_PR7.json (and prints the table)
#   scripts/coresweep.sh 7 1,2,4    → sweep only those worker counts
#
# Env knobs:
#   GAMMA     LeaFTL error bound             (default 0)
#   WORKLOAD  timed workload to replay       (default zipf-hot)
#   SEED      workload generation seed       (default 1)
set -euo pipefail
cd "$(dirname "$0")/.."

PR="${1:-7}"
WORKERS="${2:-1,2,4,8}"
GAMMA="${GAMMA:-0}"
WORKLOAD="${WORKLOAD:-zipf-hot}"
SEED="${SEED:-1}"

echo "building..." >&2
go build ./cmd/leaftl-bench

out="BENCH_PR${PR}.json"
echo "== core sweep (workers=$WORKERS workload=$WORKLOAD gamma=$GAMMA seed=$SEED) ==" >&2
./leaftl-bench -coresweep \
  -workers "$WORKERS" -sweep-workload "$WORKLOAD" \
  -gamma "$GAMMA" -seed "$SEED" \
  -json "$out"
rm -f leaftl-bench

echo "wrote $out" >&2
