#!/usr/bin/env bash
# gammatune.sh — sweep static LeaFTL error bounds (γ) against the
# adaptive per-group autotune controller and record table bytes,
# double-reads-per-op (the misprediction tax), the hint-resolved split
# and tail latency per cell. The emitted JSON includes a per-workload
# "dominance" record listing the static-γ points the autotuned run
# strictly beats (lower double-read-per-op at equal-or-smaller table),
# and — with the bitmap cell enabled (default) — a "bitmap_gate" record
# scoring the predicted-exact-bitmap run: double-reads/op within 1.15×
# of the γ=0 baseline (+0.001/op floor), table no larger than the
# biggest static γ's, and GC relearn events > 0.
#
# Usage: scripts/gammatune.sh [PR-number] [qd] [speedup]
#   scripts/gammatune.sh 9        → writes BENCH_PR9.json (and prints the table)
#   scripts/gammatune.sh 9 8 2    → 8 host queues, 2x replay speed
#
# Env knobs:
#   GAMMAS      comma list of static γ grid points   (default 0,2,4,8,16)
#   TARGET      autotune tolerated double-reads/read (default 0 = 0.02)
#   WORKLOADS   comma list (zipf-hot, strided, msr-replay)
#               msr-replay replays $TRACE             (default zipf-hot,strided)
#   TRACE       trace file for msr-replay             (default traces/msr-sample.csv)
#   BITMAP      true/false: add the autotune+bitmap cell and score the
#               gate (default true)
set -euo pipefail
cd "$(dirname "$0")/.."

PR="${1:-9}"
QD="${2:-4}"
SPEEDUP="${3:-1}"
GAMMAS="${GAMMAS:-0,2,4,8,16}"
TARGET="${TARGET:-0}"
WORKLOADS="${WORKLOADS:-zipf-hot,strided}"
TRACE="${TRACE:-traces/msr-sample.csv}"
BITMAP="${BITMAP:-true}"

echo "building..." >&2
go build ./cmd/leaftl-bench

out="BENCH_PR${PR}.json"
echo "== adaptive-γ sweep (gammas=$GAMMAS workloads=$WORKLOADS qd=$QD speedup=$SPEEDUP target=$TARGET bitmap=$BITMAP) ==" >&2
./leaftl-bench -gammatune \
  -gammas "$GAMMAS" -gamma-target "$TARGET" -tune-workloads "$WORKLOADS" \
  -trace "$TRACE" -bitmap="$BITMAP" -qd "$QD" -speedup "$SPEEDUP" \
  -json "$out"
rm -f leaftl-bench

if [ "$BITMAP" = "true" ] && command -v python3 >/dev/null; then
  python3 - "$out" <<'EOF'
import json, sys
gate = json.load(open(sys.argv[1])).get("bitmap_gate")
if gate is None:
    sys.exit("no bitmap_gate record in " + sys.argv[1])
print("bitmap gate on %s: dbl/op %.4f (bound %.4f), table %dB (static γ=%d: %dB), relearns %d → %s"
      % (gate["workload"], gate["bitmap_double_reads_per_op"], gate["double_read_bound"],
         gate["bitmap_table_bytes"], gate["static_gamma"], gate["static_table_bytes"],
         gate["relearns"], "PASS" if gate["pass"] else "FAIL"))
sys.exit(0 if gate["pass"] else 1)
EOF
fi

echo "wrote $out" >&2
