#!/usr/bin/env bash
# gammatune.sh — sweep static LeaFTL error bounds (γ) against the
# adaptive per-group autotune controller and record table bytes,
# double-reads-per-op (the misprediction tax), the hint-resolved split
# and tail latency per cell. The emitted JSON includes a per-workload
# "dominance" record listing the static-γ points the autotuned run
# strictly beats (lower double-read-per-op at equal-or-smaller table).
#
# Usage: scripts/gammatune.sh [PR-number] [qd] [speedup]
#   scripts/gammatune.sh 5        → writes BENCH_PR5.json (and prints the table)
#   scripts/gammatune.sh 5 8 2    → 8 host queues, 2x replay speed
#
# Env knobs:
#   GAMMAS      comma list of static γ grid points   (default 0,2,4,8,16)
#   TARGET      autotune tolerated double-reads/read (default 0 = 0.02)
#   WORKLOADS   comma list (zipf-hot, strided, msr-replay)
#               msr-replay replays $TRACE             (default zipf-hot,strided)
#   TRACE       trace file for msr-replay             (default traces/msr-sample.csv)
set -euo pipefail
cd "$(dirname "$0")/.."

PR="${1:-5}"
QD="${2:-4}"
SPEEDUP="${3:-1}"
GAMMAS="${GAMMAS:-0,2,4,8,16}"
TARGET="${TARGET:-0}"
WORKLOADS="${WORKLOADS:-zipf-hot,strided}"
TRACE="${TRACE:-traces/msr-sample.csv}"

echo "building..." >&2
go build ./cmd/leaftl-bench

out="BENCH_PR${PR}.json"
echo "== adaptive-γ sweep (gammas=$GAMMAS workloads=$WORKLOADS qd=$QD speedup=$SPEEDUP target=$TARGET) ==" >&2
./leaftl-bench -gammatune \
  -gammas "$GAMMAS" -gamma-target "$TARGET" -tune-workloads "$WORKLOADS" \
  -trace "$TRACE" -qd "$QD" -speedup "$SPEEDUP" \
  -json "$out"
rm -f leaftl-bench

echo "wrote $out" >&2
