#!/usr/bin/env bash
# gc.sh — sweep GC victim policies × hot/cold stream counts over the
# GC-heavy timed workloads and record WAF / reclaim counters / tail
# latency per cell.
#
# Usage: scripts/gc.sh [PR-number] [qd] [speedup]
#   scripts/gc.sh 3        → writes BENCH_PR3.json (and prints the table)
#   scripts/gc.sh 3 8 2    → 8 host queues, 2x replay speed
#
# Env knobs:
#   GAMMA      LeaFTL error bound            (default 4)
#   POLICIES   comma list of victim policies (default greedy,cost-benefit,fifo)
#   STREAMS    comma list of stream counts   (default 1,4)
#   WORKLOADS  comma list of timed workloads (default zipf-hot,mixed-rw)
set -euo pipefail
cd "$(dirname "$0")/.."

PR="${1:-3}"
QD="${2:-4}"
SPEEDUP="${3:-1}"
GAMMA="${GAMMA:-4}"
POLICIES="${POLICIES:-greedy,cost-benefit,fifo}"
STREAMS="${STREAMS:-1,4}"
WORKLOADS="${WORKLOADS:-zipf-hot,mixed-rw}"

echo "building..." >&2
go build ./cmd/leaftl-bench

out="BENCH_PR${PR}.json"
echo "== GC compare (policies=$POLICIES streams=$STREAMS workloads=$WORKLOADS qd=$QD speedup=$SPEEDUP gamma=$GAMMA) ==" >&2
./leaftl-bench -gccompare \
  -gc-policy "$POLICIES" -gc-streams "$STREAMS" -gc-workloads "$WORKLOADS" \
  -qd "$QD" -speedup "$SPEEDUP" -gamma "$GAMMA" \
  -json "$out"
rm -f leaftl-bench

echo "wrote $out" >&2
