// Benchmarks regenerating every table and figure of the paper's
// evaluation (deliverable d). Each BenchmarkFigNN runs the corresponding
// experiment at micro scale and reports the figure's headline number as
// a custom metric, so `go test -bench=. -benchmem` reproduces the whole
// evaluation; cmd/leaftl-bench prints the full tables.
package leaftl_test

import (
	"strconv"
	"strings"
	"testing"

	"leaftl/internal/experiments"
)

func suite() *experiments.Suite {
	return experiments.NewSuite(experiments.MicroScale(), 1)
}

func metric(b *testing.B, tb experiments.Table, row, col int, name string) {
	b.Helper()
	if row < 0 {
		row = len(tb.Rows) + row
	}
	cell := strings.TrimSuffix(strings.TrimSuffix(tb.Rows[row][col], "x"), "%")
	if v, err := strconv.ParseFloat(cell, 64); err == nil {
		b.ReportMetric(v, name)
	}
}

func BenchmarkFig5SegmentLengths(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb, err := suite().Fig5SegmentLengths()
		if err != nil {
			b.Fatal(err)
		}
		metric(b, tb, 0, 7, "avg-seg-len-g0")
	}
}

func BenchmarkFig10CRBSizes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb, err := suite().Fig10CRBSizes()
		if err != nil {
			b.Fatal(err)
		}
		metric(b, tb, 0, 1, "crb-avg-bytes")
	}
}

func BenchmarkFig12LevelCounts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb, err := suite().Fig12LevelCounts()
		if err != nil {
			b.Fatal(err)
		}
		metric(b, tb, 0, 1, "avg-levels")
	}
}

func BenchmarkFig15MemoryReduction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb, err := suite().Fig15MemoryReduction()
		if err != nil {
			b.Fatal(err)
		}
		metric(b, tb, -1, 4, "geomean-vs-dftl")
		metric(b, tb, -1, 5, "geomean-vs-sftl")
	}
}

func BenchmarkFig16Performance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a, bb, err := suite().Fig16Performance()
		if err != nil {
			b.Fatal(err)
		}
		metric(b, a, -1, 4, "fig16a-speedup-vs-sftl")
		metric(b, bb, -1, 4, "fig16b-speedup-vs-sftl")
	}
}

func BenchmarkFig17RealSSD(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb, err := suite().Fig17RealSSD()
		if err != nil {
			b.Fatal(err)
		}
		metric(b, tb, -1, 4, "speedup-vs-sftl")
	}
}

func BenchmarkFig18LatencyCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := suite().Fig18LatencyCDF(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig19GammaMemory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := suite().Fig19GammaMemory(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig20SegmentMix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb, err := suite().Fig20SegmentMix()
		if err != nil {
			b.Fatal(err)
		}
		metric(b, tb, -1, 3, "approx-pct-g16")
	}
}

func BenchmarkFig21GammaPerf(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := suite().Fig21GammaPerf(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig22Sensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := suite().Fig22Sensitivity(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig23LookupOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a, _, err := suite().Fig23LookupOverhead()
		if err != nil {
			b.Fatal(err)
		}
		metric(b, a, 0, 1, "avg-levels-per-lookup")
	}
}

func BenchmarkFig24Misprediction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := suite().Fig24Misprediction(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig25WAF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := suite().Fig25WAF(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3Microbench(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb, err := suite().Table3Microbench()
		if err != nil {
			b.Fatal(err)
		}
		metric(b, tb, 0, 2, "lookup-ns-g0")
	}
}

func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := suite()
		if _, err := s.AblationBufferSort(); err != nil {
			b.Fatal(err)
		}
		if _, err := s.AblationCompaction(); err != nil {
			b.Fatal(err)
		}
		if _, err := s.AblationLogStructured(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRecovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := suite().RecoveryExperiment(); err != nil {
			b.Fatal(err)
		}
	}
}
