module leaftl

go 1.22
