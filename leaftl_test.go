package leaftl_test

import (
	"testing"

	"leaftl"
)

// TestPublicAPIRoundTrip drives the whole stack through the public
// facade only: build a device, write, flush, read, inspect stats.
func TestPublicAPIRoundTrip(t *testing.T) {
	cfg := leaftl.SimulatorConfig()
	cfg.Flash.BlocksPerChan = 8
	cfg.DRAMBytes = 16 << 20
	cfg.BufferPages = cfg.Flash.PagesPerBlock

	dev, err := leaftl.OpenSimulated(cfg, leaftl.NewLeaFTL(0, cfg.Flash.PageSize))
	if err != nil {
		t.Fatal(err)
	}
	for lpa := 0; lpa < 2048; lpa += 64 {
		if _, err := dev.Write(leaftl.LPA(lpa), 64); err != nil {
			t.Fatal(err)
		}
	}
	if err := dev.Flush(); err != nil {
		t.Fatal(err)
	}
	for lpa := 0; lpa < 2048; lpa += 64 {
		if _, err := dev.Read(leaftl.LPA(lpa), 64); err != nil {
			t.Fatal(err)
		}
	}
	if dev.Stats().HostPagesRead != 2048 {
		t.Errorf("pages read = %d", dev.Stats().HostPagesRead)
	}
	if dev.Scheme().FullSizeBytes() >= 2048*8 {
		t.Errorf("learned table %dB not smaller than page-level %dB",
			dev.Scheme().FullSizeBytes(), 2048*8)
	}
}

func TestPublicMappingTable(t *testing.T) {
	tb := leaftl.NewMappingTable(4)
	pairs := make([]leaftl.Mapping, 128)
	for i := range pairs {
		pairs[i] = leaftl.Mapping{LPA: leaftl.LPA(2 * i), PPA: leaftl.PPA(1000 + i)}
	}
	tb.Update(pairs)
	ppa, _, ok := tb.Lookup(64)
	if !ok {
		t.Fatal("lookup missed")
	}
	if d := int64(ppa) - int64(1000+32); d < -4 || d > 4 {
		t.Errorf("lookup off by %d, beyond gamma", d)
	}
	if got := len(leaftl.Learn(pairs, 0)); got < 1 {
		t.Errorf("Learn returned %d segments", got)
	}
}

func TestPublicWorkloads(t *testing.T) {
	if len(leaftl.Workloads()) != 7 || len(leaftl.AppWorkloads()) != 5 {
		t.Fatal("catalog sizes changed")
	}
	p, ok := leaftl.WorkloadByName("TPCC")
	if !ok {
		t.Fatal("TPCC missing")
	}
	reqs := p.Generate(1<<20, 100, 1)
	if len(reqs) != 100 {
		t.Fatalf("generated %d requests", len(reqs))
	}

	cfg := leaftl.SimulatorConfig()
	cfg.Flash.BlocksPerChan = 8
	cfg.DRAMBytes = 16 << 20
	cfg.BufferPages = cfg.Flash.PagesPerBlock
	dev, err := leaftl.OpenSimulated(cfg, leaftl.NewDFTL(cfg.Flash.PageSize, 1<<20))
	if err != nil {
		t.Fatal(err)
	}
	if err := leaftl.Replay(dev, p.Generate(dev.LogicalPages(), 500, 2)); err != nil {
		t.Fatal(err)
	}
}
