// Gammatuning: explore LeaFTL's error-bound knob on the standalone
// learned mapping table (no device needed): larger gamma admits more
// approximate segments, shrinking the table at the cost of predictions
// that are off by up to ±gamma pages — the paper's §4.4 trade-off.
package main

import (
	"fmt"
	"math/rand"

	"leaftl"
)

func main() {
	// An irregular-but-correlated mapping stream: ascending LPAs with
	// small gaps onto consecutive PPAs (paper Figure 1 C).
	rng := rand.New(rand.NewSource(7))
	var pairs []leaftl.Mapping
	lpa, ppa := leaftl.LPA(0), leaftl.PPA(10_000)
	for len(pairs) < 100_000 {
		lpa += leaftl.LPA(1 + rng.Intn(3))
		pairs = append(pairs, leaftl.Mapping{LPA: lpa, PPA: ppa})
		ppa++
	}

	fmt.Printf("%-6s  %-10s  %-10s  %-9s  %s\n",
		"gamma", "table", "vs page", "segments", "max |error| (checked)")
	for _, gamma := range []int{0, 1, 2, 4, 8, 16} {
		tb := leaftl.NewMappingTable(gamma)
		// Feed in flush-sized batches, as the SSD buffer would.
		for i := 0; i < len(pairs); i += 256 {
			end := i + 256
			if end > len(pairs) {
				end = len(pairs)
			}
			tb.Update(pairs[i:end])
		}
		st := tb.Stats()
		maxErr := int64(0)
		for _, m := range pairs {
			got, _, ok := tb.Lookup(m.LPA)
			if !ok {
				panic("lost mapping")
			}
			d := int64(got) - int64(m.PPA)
			if d < 0 {
				d = -d
			}
			if d > maxErr {
				maxErr = d
			}
		}
		if maxErr > int64(gamma) {
			panic("error bound violated")
		}
		pageLevel := len(pairs) * 8
		fmt.Printf("%-6d  %7.1f KiB  %8.1fx  %-9d  %d\n",
			gamma, float64(tb.SizeBytes())/1024,
			float64(pageLevel)/float64(tb.SizeBytes()), st.Segments, maxErr)
	}
}
