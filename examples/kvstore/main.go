// Kvstore: a miniature log-structured key-value store running on the
// simulated SSD — the class of data-intensive application the paper
// validates its prototype with (§4.3). The store appends records to a
// page-granular log and keeps an in-memory index, so its I/O pattern is
// sequential log writes plus skewed random point reads: exactly the mix
// where LeaFTL's learned segments shine.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"leaftl"
)

// kv is a page-granular log-structured store: each Put claims the next
// log page for the key; Get reads the key's last page. (Real stores pack
// many records per page; one-per-page keeps the example small while
// exercising the same access pattern.)
type kv struct {
	dev   *leaftl.Device
	index map[string]leaftl.LPA
	head  leaftl.LPA
	limit leaftl.LPA
}

func newKV(dev *leaftl.Device) *kv {
	return &kv{
		dev:   dev,
		index: make(map[string]leaftl.LPA),
		limit: leaftl.LPA(dev.LogicalPages()),
	}
}

func (s *kv) Put(key string) error {
	if s.head >= s.limit {
		return fmt.Errorf("log full")
	}
	if _, err := s.dev.Write(s.head, 1); err != nil {
		return err
	}
	s.index[key] = s.head
	s.head++
	return nil
}

func (s *kv) Get(key string) error {
	lpa, ok := s.index[key]
	if !ok {
		return fmt.Errorf("missing key %q", key)
	}
	_, err := s.dev.Read(lpa, 1)
	return err
}

func main() {
	cfg := leaftl.SimulatorConfig()
	cfg.Flash.BlocksPerChan = 32
	cfg.BufferPages = cfg.Flash.PagesPerBlock
	cfg.DRAMBytes = cfg.BufferBytes() + 256<<10

	dev, err := leaftl.OpenSimulated(cfg, leaftl.NewLeaFTL(0, cfg.Flash.PageSize))
	if err != nil {
		log.Fatal(err)
	}
	store := newKV(dev)

	// Load phase: bulk insert.
	const keys = 50_000
	for i := 0; i < keys; i++ {
		if err := store.Put(fmt.Sprintf("user:%06d", i)); err != nil {
			log.Fatal(err)
		}
	}

	// Query phase: zipf-ish point lookups plus rolling updates.
	rng := rand.New(rand.NewSource(1))
	zipf := rand.NewZipf(rng, 1.2, 1, keys-1)
	for i := 0; i < 100_000; i++ {
		k := fmt.Sprintf("user:%06d", zipf.Uint64())
		if i%5 == 0 {
			if err := store.Put(k); err != nil {
				log.Fatal(err)
			}
		} else if err := store.Get(k); err != nil {
			log.Fatal(err)
		}
	}
	if err := dev.Flush(); err != nil {
		log.Fatal(err)
	}

	st := dev.Stats()
	fmt.Printf("kvstore on LeaFTL (%d keys, 100k ops)\n", keys)
	fmt.Printf("  mean get latency  %v (p99 %v)\n",
		dev.ReadLatency().MeanDuration(), dev.ReadLatency().PercentileDuration(99))
	fmt.Printf("  cache hit ratio   %.1f%%\n", 100*st.CacheHitRatio())
	fmt.Printf("  mapping table     %.1f KiB for %d live pages (page-level: %.1f KiB)\n",
		float64(dev.Scheme().FullSizeBytes())/1024, int(store.head),
		float64(int(store.head)*8)/1024)
	fmt.Printf("  GC: %d erases, WAF %.2f\n", st.GCErases, dev.WAF())
}
