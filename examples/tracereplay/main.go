// Tracereplay: run one of the paper's workloads (MSR-hm by default)
// against all three translation schemes on identical devices and compare
// memory and latency — a miniature of the paper's Figures 15 and 16.
package main

import (
	"flag"
	"fmt"
	"log"

	"leaftl"
)

func main() {
	name := flag.String("workload", "MSR-hm", "workload profile (see tracegen -list)")
	n := flag.Int("n", 60_000, "requests to replay")
	flag.Parse()

	p, ok := leaftl.WorkloadByName(*name)
	if !ok {
		log.Fatalf("unknown workload %q", *name)
	}

	type result struct {
		name    string
		meanUS  float64
		mapping int
		hitPct  float64
	}
	var results []result

	for _, mk := range []func(cfg leaftl.DeviceConfig) leaftl.Scheme{
		func(cfg leaftl.DeviceConfig) leaftl.Scheme { return leaftl.NewDFTL(cfg.Flash.PageSize, 0) },
		func(cfg leaftl.DeviceConfig) leaftl.Scheme { return leaftl.NewSFTL(cfg.Flash.PageSize, 0) },
		func(cfg leaftl.DeviceConfig) leaftl.Scheme { return leaftl.NewLeaFTL(0, cfg.Flash.PageSize) },
	} {
		cfg := leaftl.SimulatorConfig()
		cfg.Flash.BlocksPerChan = 48
		cfg.BufferPages = 512
		cfg.DRAMBytes = cfg.BufferBytes() + 96<<10 // starved mapping+cache pool

		scheme := mk(cfg)
		dev, err := leaftl.OpenSimulated(cfg, scheme)
		if err != nil {
			log.Fatal(err)
		}
		// Warm the footprint so reads hit mapped pages.
		fp := p.Footprint(dev.LogicalPages())
		for lpa := 0; lpa+64 <= fp; lpa += 64 {
			if _, err := dev.Write(leaftl.LPA(lpa), 64); err != nil {
				log.Fatal(err)
			}
		}
		if err := leaftl.Replay(dev, p.Generate(dev.LogicalPages(), *n, 1)); err != nil {
			log.Fatal(err)
		}
		if err := dev.Flush(); err != nil {
			log.Fatal(err)
		}
		results = append(results, result{
			name:    scheme.Name(),
			meanUS:  float64(dev.ReadLatency().MeanDuration().Nanoseconds()) / 1e3,
			mapping: scheme.FullSizeBytes(),
			hitPct:  100 * dev.Stats().CacheHitRatio(),
		})
	}

	fmt.Printf("workload %s, %d requests\n\n", p.Name, *n)
	fmt.Printf("%-8s  %-14s  %-12s  %s\n", "scheme", "mean read", "mapping", "cache hits")
	base := results[0].meanUS
	for _, r := range results {
		fmt.Printf("%-8s  %7.1fµs %.2fx  %8.1f KiB  %5.1f%%\n",
			r.name, r.meanUS, r.meanUS/base, float64(r.mapping)/1024, r.hitPct)
	}
}
