// Tracereplay: run one of the paper's workloads (MSR-hm by default)
// against all three translation schemes on identical devices and compare
// memory and latency — a miniature of the paper's Figures 15 and 16.
//
// With -openloop, the workload is a timed generator (zipf-hot by
// default) replayed at its recorded arrival times across -qd host
// queues, and the comparison reports tail latency (p50/p95/p99/p999)
// instead of means: the queueing view the closed loop cannot see.
package main

import (
	"flag"
	"fmt"
	"log"

	"leaftl"
)

func main() {
	name := flag.String("workload", "", "workload profile or timed generator (default MSR-hm, or zipf-hot with -openloop)")
	n := flag.Int("n", 60_000, "requests to replay")
	openloop := flag.Bool("openloop", false, "replay open-loop at recorded arrival times")
	qd := flag.Int("qd", 4, "host queue count for open-loop replay")
	flag.Parse()

	if *openloop {
		runOpenLoop(*name, *n, *qd)
		return
	}
	runClosedLoop(*name, *n)
}

// newDevice builds the starved-DRAM device every scheme runs on.
func newDevice(mk func(cfg leaftl.DeviceConfig) leaftl.Scheme) (*leaftl.Device, leaftl.Scheme) {
	cfg := leaftl.SimulatorConfig()
	cfg.Flash.BlocksPerChan = 48
	cfg.BufferPages = 512
	cfg.DRAMBytes = cfg.BufferBytes() + 96<<10 // starved mapping+cache pool

	scheme := mk(cfg)
	dev, err := leaftl.OpenSimulated(cfg, scheme)
	if err != nil {
		log.Fatal(err)
	}
	return dev, scheme
}

// warm sequentially writes the first fp pages so reads hit mapped pages.
func warm(dev *leaftl.Device, fp int) {
	for lpa := 0; lpa < fp; lpa += 64 {
		n := 64
		if lpa+n > fp {
			n = fp - lpa
		}
		if _, err := dev.Write(leaftl.LPA(lpa), n); err != nil {
			log.Fatal(err)
		}
	}
}

var schemes = []func(cfg leaftl.DeviceConfig) leaftl.Scheme{
	func(cfg leaftl.DeviceConfig) leaftl.Scheme { return leaftl.NewDFTL(cfg.Flash.PageSize, 0) },
	func(cfg leaftl.DeviceConfig) leaftl.Scheme { return leaftl.NewSFTL(cfg.Flash.PageSize, 0) },
	func(cfg leaftl.DeviceConfig) leaftl.Scheme { return leaftl.NewLeaFTL(0, cfg.Flash.PageSize) },
}

func runClosedLoop(name string, n int) {
	if name == "" {
		name = "MSR-hm"
	}
	p, ok := leaftl.WorkloadByName(name)
	if !ok {
		log.Fatalf("unknown workload %q", name)
	}

	type result struct {
		name    string
		meanUS  float64
		mapping int
		hitPct  float64
	}
	var results []result
	for _, mk := range schemes {
		dev, scheme := newDevice(mk)
		warm(dev, p.Footprint(dev.LogicalPages()))
		if err := leaftl.Replay(dev, p.Generate(dev.LogicalPages(), n, 1)); err != nil {
			log.Fatal(err)
		}
		if err := dev.Flush(); err != nil {
			log.Fatal(err)
		}
		results = append(results, result{
			name:    scheme.Name(),
			meanUS:  float64(dev.ReadLatency().MeanDuration().Nanoseconds()) / 1e3,
			mapping: scheme.FullSizeBytes(),
			hitPct:  100 * dev.Stats().CacheHitRatio(),
		})
	}

	fmt.Printf("workload %s, %d requests (closed loop)\n\n", p.Name, n)
	fmt.Printf("%-8s  %-14s  %-12s  %s\n", "scheme", "mean read", "mapping", "cache hits")
	base := results[0].meanUS
	for _, r := range results {
		fmt.Printf("%-8s  %7.1fµs %.2fx  %8.1f KiB  %5.1f%%\n",
			r.name, r.meanUS, r.meanUS/base, float64(r.mapping)/1024, r.hitPct)
	}
}

func runOpenLoop(name string, n, qd int) {
	if name == "" {
		name = "zipf-hot"
	}
	gen, ok := leaftl.TimedWorkloads()[name]
	if !ok {
		log.Fatalf("unknown timed generator %q (want zipf-hot or mixed-rw)", name)
	}

	fmt.Printf("workload %s, %d requests, %d host queues (open loop)\n\n", name, n, qd)
	fmt.Printf("%-8s  %9s  %9s  %9s  %9s  %8s\n", "scheme", "p50", "p95", "p99", "p999", "kIOPS")
	for _, mk := range schemes {
		dev, scheme := newDevice(mk)
		reqs := gen.Generate(dev.LogicalPages(), n, 1)
		fp := 0
		for _, r := range reqs {
			if end := int(r.LPA) + r.Pages; end > fp {
				fp = end
			}
		}
		warm(dev, fp)
		res, err := leaftl.ReplayOpenLoop(dev, reqs, leaftl.OpenLoopConfig{Queues: qd})
		if err != nil {
			log.Fatal(err)
		}
		s := res.Latency.Summary()
		fmt.Printf("%-8s  %8.1fµs %8.1fµs %8.1fµs %8.1fµs  %8.1f\n",
			scheme.Name(), us(s.P50), us(s.P95), us(s.P99), us(s.P999), res.IOPS()/1e3)
	}
}

func us(d interface{ Nanoseconds() int64 }) float64 { return float64(d.Nanoseconds()) / 1e3 }
