// Quickstart: build a simulated SSD running LeaFTL, write and read some
// data, and inspect how small the learned mapping table stays compared
// to a page-level table.
package main

import (
	"fmt"
	"log"

	"leaftl"
)

func main() {
	// A small device: 16 channels × 16 blocks × 256 pages of 4KB.
	cfg := leaftl.SimulatorConfig()
	cfg.Flash.BlocksPerChan = 16
	cfg.DRAMBytes = 32 << 20
	cfg.BufferPages = cfg.Flash.PagesPerBlock

	dev, err := leaftl.OpenSimulated(cfg, leaftl.NewLeaFTL(0 /* gamma */, cfg.Flash.PageSize))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("device: %d logical pages (%.1f MiB)\n",
		dev.LogicalPages(), float64(dev.LogicalPages())*4/1024)

	// Sequential writes: LeaFTL learns one 8-byte segment per 256 pages.
	const pages = 32768
	for lpa := 0; lpa < pages; lpa += 64 {
		if _, err := dev.Write(leaftl.LPA(lpa), 64); err != nil {
			log.Fatal(err)
		}
	}
	if err := dev.Flush(); err != nil {
		log.Fatal(err)
	}

	// Read everything back; the device verifies data integrity itself.
	var total, n int64
	for lpa := 0; lpa < pages; lpa += 64 {
		lat, err := dev.Read(leaftl.LPA(lpa), 64)
		if err != nil {
			log.Fatal(err)
		}
		total += lat.Microseconds()
		n++
	}

	learned := dev.Scheme().FullSizeBytes()
	pageLevel := pages * 8
	fmt.Printf("wrote+read %d pages; avg read-request latency %dµs\n", pages, total/n)
	fmt.Printf("mapping table: learned %d B vs page-level %d B (%.1fx smaller)\n",
		learned, pageLevel, float64(pageLevel)/float64(learned))
	st := dev.Stats()
	fmt.Printf("mispredictions: %d (gamma=0 ⇒ all translations exact)\n", st.Mispredictions)
}
