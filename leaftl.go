// Package leaftl is the public API of this LeaFTL reproduction (Sun et
// al., "LeaFTL: A Learning-Based Flash Translation Layer for Solid-State
// Drives", ASPLOS 2023).
//
// Three layers are exposed:
//
//   - The learned address-mapping table itself (NewMappingTable): the
//     paper's core contribution, usable standalone as a compressed
//     LPA→PPA index with a configurable error bound γ.
//   - A full simulated SSD (OpenSimulated) with pluggable translation
//     schemes — the learned LeaFTL plus the DFTL and SFTL baselines —
//     including write buffering, data caching, garbage collection, wear
//     leveling, OOB-verified reads and crash recovery.
//   - Workload generation and trace replay (GenerateWorkload, Replay)
//     mirroring the paper's evaluation workloads.
//
// See examples/ for runnable end-to-end programs and cmd/leaftl-bench
// for the harness that regenerates every table and figure of the paper's
// evaluation section.
package leaftl

import (
	"leaftl/internal/addr"
	"leaftl/internal/core"
	"leaftl/internal/dftl"
	"leaftl/internal/ftl"
	"leaftl/internal/leaftl"
	"leaftl/internal/metrics"
	"leaftl/internal/sftl"
	"leaftl/internal/ssd"
	"leaftl/internal/trace"
	"leaftl/internal/workload"
)

// LPA is a logical page address; PPA is a physical page address.
type (
	LPA = addr.LPA
	PPA = addr.PPA
)

// Mapping is one LPA→PPA translation pair.
type Mapping = addr.Mapping

// MappingTable is the learned log-structured mapping table (paper §3).
type MappingTable = core.Table

// NewMappingTable returns an empty learned mapping table with error
// bound gamma (pages). Feed it sorted batches with Update and translate
// with Lookup; see the package core documentation for semantics.
func NewMappingTable(gamma int) *MappingTable { return core.NewTable(gamma) }

// Learn fits error-bounded index segments over one sorted batch of
// mappings without inserting them anywhere (paper §3.2).
func Learn(pairs []Mapping, gamma int) []core.Learned { return core.Learn(pairs, gamma) }

// ShardedMappingTable is the learned mapping table partitioned N ways by
// group hash for concurrent translation; it returns bit-identical
// results to MappingTable fed the same batches.
type ShardedMappingTable = core.ShardedTable

// NewShardedMappingTable returns an empty sharded learned mapping table
// with error bound gamma (pages) and the given shard count.
func NewShardedMappingTable(gamma, shards int) *ShardedMappingTable {
	return core.NewShardedTable(gamma, shards)
}

// Device is a simulated SSD.
type Device = ssd.Device

// DeviceConfig configures a simulated SSD.
type DeviceConfig = ssd.Config

// Scheme is an address-translation scheme runnable inside a Device.
type Scheme = ftl.Scheme

// SimulatorConfig returns the paper's Table 1 simulator setup, scaled
// (DESIGN.md §5); PrototypeConfig returns the open-channel prototype
// setup of §3.9.
func SimulatorConfig() DeviceConfig { return ssd.SimulatorConfig() }

// PrototypeConfig returns the real-SSD prototype configuration (§3.9).
func PrototypeConfig() DeviceConfig { return ssd.PrototypeConfig() }

// NewLeaFTL returns the learned translation scheme with the given error
// bound for a device with the given flash page size.
func NewLeaFTL(gamma, pageSize int) *leaftl.Scheme { return leaftl.New(gamma, pageSize) }

// NewAutotunedLeaFTL returns the learned translation scheme with the
// adaptive per-group γ controller enabled: gamma is the global ceiling,
// and the device's read feedback demotes/promotes each 256-LPA group's
// effective bound around the tolerated miss ratio (≤ 0 selects the
// default 0.02).
func NewAutotunedLeaFTL(gamma, pageSize int, targetMissRatio float64) *leaftl.Scheme {
	return leaftl.New(gamma, pageSize, leaftl.WithAutoTune(targetMissRatio))
}

// NewShardedLeaFTL returns the learned translation scheme over an N-way
// sharded mapping core; its Translate is safe for concurrent host
// streams (ftl.Concurrent).
func NewShardedLeaFTL(gamma, pageSize, shards int) *leaftl.Sharded {
	return leaftl.NewSharded(gamma, pageSize, shards)
}

// NewDFTL returns the demand-based page-level baseline (§4.1).
func NewDFTL(pageSize, cmtBudget int) Scheme { return dftl.New(pageSize, cmtBudget) }

// NewSFTL returns the spatial-locality baseline (§4.1).
func NewSFTL(pageSize, budget int) Scheme { return sftl.New(pageSize, budget) }

// OpenSimulated builds a simulated SSD running the given scheme.
func OpenSimulated(cfg DeviceConfig, scheme Scheme) (*Device, error) {
	return ssd.New(cfg, scheme)
}

// Request is one block I/O request; Replay applies a trace to a device.
type Request = trace.Request

// Trace request directions.
const (
	OpRead  = trace.OpRead
	OpWrite = trace.OpWrite
)

// Replay applies requests to a device in order (closed loop).
func Replay(d *Device, reqs []Request) error { return trace.Replay(d, reqs) }

// TraceFormat identifies a trace wire format (native, MSR CSV, FIU).
type TraceFormat = trace.Format

// Trace wire formats (see docs/TRACES.md).
const (
	TraceNative = trace.FormatNative
	TraceMSR    = trace.FormatMSR
	TraceFIU    = trace.FormatFIU
)

// OpenTrace reads a trace file, auto-detecting its format.
func OpenTrace(path string) ([]Request, TraceFormat, error) {
	return trace.Open(path, trace.Options{})
}

// OpenLoopConfig parameterizes ReplayOpenLoop; OpenLoopResult holds its
// latency distributions.
type (
	OpenLoopConfig = trace.OpenLoopConfig
	OpenLoopResult = trace.OpenLoopResult
)

// LatencySummary is a histogram tail digest (p50/p95/p99/p999).
type LatencySummary = metrics.Summary

// ReplayOpenLoop replays a trace open-loop: requests are submitted at
// their recorded arrival times across host queues, so latency includes
// queue wait (see trace.ReplayOpenLoop).
func ReplayOpenLoop(d *Device, reqs []Request, cfg OpenLoopConfig) (*OpenLoopResult, error) {
	return trace.ReplayOpenLoop(d, reqs, cfg)
}

// WorkloadProfile parameterizes a synthetic workload; Workloads and
// AppWorkloads return the paper's two catalogs (§4.1, Table 2).
type WorkloadProfile = workload.Profile

// Workloads returns the MSR/FIU trace-style workload catalog.
func Workloads() []WorkloadProfile { return workload.Catalog() }

// AppWorkloads returns the application workload catalog (Table 2).
func AppWorkloads() []WorkloadProfile { return workload.AppCatalog() }

// WorkloadByName finds a profile in either catalog.
func WorkloadByName(name string) (WorkloadProfile, bool) { return workload.ByName(name) }

// WorkloadGenerator is any workload that can emit a request trace
// (profiles and the timed open-loop generators).
type WorkloadGenerator = workload.Generator

// TimedWorkloads returns the open-loop generators (zipf-hot, mixed-rw),
// which emit traces with arrival timestamps.
func TimedWorkloads() map[string]WorkloadGenerator { return workload.TimedCatalog() }
