// Command leaftl-sim replays a block I/O trace (native, MSR CSV, or
// FIU format — auto-detected for files, see docs/TRACES.md) against
// the simulated SSD with a chosen translation scheme, and reports
// latency, memory, and flash statistics.
//
// Usage:
//
//	tracegen -workload TPCC -n 200000 | leaftl-sim -scheme leaftl -gamma 4
//	leaftl-sim -scheme dftl -trace run.trace
//	leaftl-sim -scheme leaftl -gamma 4 -trace hm_0.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"leaftl/internal/dftl"
	"leaftl/internal/ftl"
	"leaftl/internal/leaftl"
	"leaftl/internal/metrics"
	"leaftl/internal/sftl"
	"leaftl/internal/ssd"
	"leaftl/internal/trace"
)

func main() {
	schemeName := flag.String("scheme", "leaftl", "translation scheme: leaftl, dftl, sftl")
	gamma := flag.Int("gamma", 0, "LeaFTL error bound (pages)")
	traceFile := flag.String("trace", "-", "trace file ('-' = stdin)")
	formatName := flag.String("format", "auto", "trace format: auto, native, msr, fiu (stdin defaults to native)")
	blocksPerChan := flag.Int("blocks", 48, "flash blocks per channel")
	dramMB := flag.Int64("dram", 16, "controller DRAM (MiB)")
	flag.Parse()

	if err := run(*schemeName, *gamma, *traceFile, *formatName, *blocksPerChan, *dramMB); err != nil {
		fmt.Fprintf(os.Stderr, "leaftl-sim: %v\n", err)
		os.Exit(1)
	}
}

func run(schemeName string, gamma int, traceFile, formatName string, blocksPerChan int, dramMB int64) error {
	var reqs []trace.Request
	var err error
	switch {
	case traceFile != "-" && (formatName == "" || formatName == "auto"):
		reqs, _, err = trace.Open(traceFile, trace.Options{})
	default:
		var in io.Reader = os.Stdin
		if traceFile != "-" {
			f, ferr := os.Open(traceFile)
			if ferr != nil {
				return ferr
			}
			defer f.Close()
			in = f
		}
		format := trace.FormatNative
		if formatName != "" && formatName != "auto" {
			if format, err = trace.FormatByName(formatName); err != nil {
				return err
			}
		}
		reqs, err = trace.Decode(in, format, trace.Options{})
	}
	if err != nil {
		return err
	}
	if len(reqs) == 0 {
		return fmt.Errorf("empty trace")
	}

	cfg := ssd.SimulatorConfig()
	cfg.Flash.BlocksPerChan = blocksPerChan
	cfg.Flash.OOBSize = 256
	cfg.DRAMBytes = dramMB << 20
	cfg.BufferPages = 2 * cfg.Flash.PagesPerBlock

	var scheme ftl.Scheme
	switch strings.ToLower(schemeName) {
	case "leaftl":
		scheme = leaftl.New(gamma, cfg.Flash.PageSize)
	case "dftl":
		scheme = dftl.New(cfg.Flash.PageSize, 0)
	case "sftl":
		scheme = sftl.New(cfg.Flash.PageSize, 0)
	default:
		return fmt.Errorf("unknown scheme %q", schemeName)
	}

	dev, err := ssd.New(cfg, scheme)
	if err != nil {
		return err
	}
	// Traces captured on larger drives fold into this device's space.
	if reqs, err = trace.FitTo(reqs, dev.LogicalPages()); err != nil {
		return err
	}
	if err := trace.Replay(dev, reqs); err != nil {
		return err
	}
	if err := dev.Flush(); err != nil {
		return err
	}

	st := dev.Stats()
	fs := dev.FlashStats()
	fmt.Printf("scheme         %s (gamma=%d)\n", scheme.Name(), gamma)
	fmt.Printf("requests       %d (%d reads, %d writes)\n",
		st.HostReadReqs+st.HostWriteReqs, st.HostReadReqs, st.HostWriteReqs)
	fmt.Printf("mean read      %v   p99 %v\n",
		dev.ReadLatency().MeanDuration(), dev.ReadLatency().PercentileDuration(99))
	fmt.Printf("mean write     %v\n", dev.WriteLatency().MeanDuration())
	fmt.Printf("cache hits     %.1f%% (buffer %d, cache %d, flash %d)\n",
		100*st.CacheHitRatio(), st.BufferHits, st.CacheHits, st.CacheMisses)
	fmt.Printf("mapping table  %s (full %s)\n",
		metrics.FormatBytes(int64(scheme.MemoryBytes())), metrics.FormatBytes(int64(scheme.FullSizeBytes())))
	fmt.Printf("mispredictions %d (%.2f%% of reads), OOB fallbacks %d\n",
		st.Mispredictions, 100*st.MispredictionRatio(), st.OOBFallbacks)
	fmt.Printf("flash ops      %d reads, %d writes, %d erases, WAF %.2f\n",
		fs.PageReads, fs.PageWrites, fs.BlockErases, dev.WAF())
	fmt.Printf("GC             %d runs, %d pages moved, %d erases; wear moves %d\n",
		st.GCRuns, st.GCPagesMoved, st.GCErases, st.WearMoves)
	if ls, ok := scheme.(*leaftl.Scheme); ok {
		stt := ls.Table().Stats()
		avg, _ := ls.LookupLevels()
		fmt.Printf("learned table  %d segments (%d accurate, %d approximate), %d groups, avg %.2f levels/lookup\n",
			stt.Segments, stt.Accurate, stt.Approximate, stt.Groups, avg)
	}
	return nil
}
