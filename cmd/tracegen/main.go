// Command tracegen emits a synthetic block I/O trace for one of the
// paper's workload profiles or the open-loop timed generators
// (zipf-hot, mixed-rw), in any supported wire format. The output
// replays with cmd/leaftl-sim, leaftl-bench -openloop, or trace.Open.
//
// Usage:
//
//	tracegen -list
//	tracegen -workload MSR-hm -pages 1048576 -n 100000 -seed 1 > hm.trace
//	tracegen -workload zipf-hot -format msr -n 50000 > zipf.csv
//	tracegen -workload TPCC -iops 30000 -burst 4 -format native > tpcc.trace
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"leaftl/internal/trace"
	"leaftl/internal/workload"
)

func main() {
	list := flag.Bool("list", false, "list available workload profiles and generators")
	name := flag.String("workload", "MSR-hm", "workload profile or timed generator name")
	pages := flag.Int("pages", 1<<20, "logical device size in pages")
	n := flag.Int("n", 100_000, "number of requests")
	seed := flag.Int64("seed", 1, "generator seed")
	formatName := flag.String("format", "native", "output format: native, msr, fiu")
	iops := flag.Float64("iops", 0, "stamp arrival timestamps at this mean rate (profiles only; timed generators set their own)")
	burst := flag.Float64("burst", 1, "arrival burst factor when -iops is set (1 = steady Poisson)")
	flag.Parse()

	if *list {
		fmt.Println("# trace workloads (simulator, §4.1):")
		for _, p := range workload.Catalog() {
			fmt.Printf("  %-10s reads=%.0f%% seq=%.0f%% stride=%.0f%% footprint=%.0f%%\n",
				p.Name, 100*p.ReadFrac, 100*p.SeqFrac, 100*p.StrideFrac, 100*p.FootprintFrac)
		}
		fmt.Println("# app workloads (prototype, Table 2):")
		for _, p := range workload.AppCatalog() {
			fmt.Printf("  %-10s reads=%.0f%% seq=%.0f%% stride=%.0f%% footprint=%.0f%%\n",
				p.Name, 100*p.ReadFrac, 100*p.SeqFrac, 100*p.StrideFrac, 100*p.FootprintFrac)
		}
		fmt.Println("# timed generators (open-loop replay):")
		timed := workload.TimedCatalog()
		names := make([]string, 0, len(timed))
		for n := range timed {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Printf("  %s\n", n)
		}
		return
	}

	if err := run(*name, *pages, *n, *seed, *formatName, *iops, *burst); err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
}

func run(name string, pages, n int, seed int64, formatName string, iops, burst float64) error {
	format, err := trace.FormatByName(formatName)
	if err != nil {
		return err
	}

	var reqs []trace.Request
	if gen, ok := workload.TimedCatalog()[name]; ok {
		reqs = gen.Generate(pages, n, seed)
	} else if p, ok := workload.ByName(name); ok {
		reqs = p.Generate(pages, n, seed)
		if iops > 0 {
			workload.ArrivalModel{IOPS: iops, BurstFactor: burst}.Stamp(reqs, seed)
		}
	} else {
		return fmt.Errorf("unknown workload %q (try -list)", name)
	}

	// Native output keeps the '#' provenance header; the other formats
	// have no comment syntax.
	if format == trace.FormatNative {
		fmt.Printf("# workload=%s pages=%d n=%d seed=%d\n", name, pages, n, seed)
		if !trace.Timed(reqs) {
			return trace.Write(os.Stdout, reqs)
		}
	}
	return trace.Encode(os.Stdout, format, reqs, trace.Options{})
}
