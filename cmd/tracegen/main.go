// Command tracegen emits a synthetic block I/O trace for one of the
// paper's workload profiles (or lists the catalog). The output replays
// with cmd/leaftl-sim or trace.Parse.
//
// Usage:
//
//	tracegen -list
//	tracegen -workload MSR-hm -pages 1048576 -n 100000 -seed 1 > hm.trace
package main

import (
	"flag"
	"fmt"
	"os"

	"leaftl/internal/trace"
	"leaftl/internal/workload"
)

func main() {
	list := flag.Bool("list", false, "list available workload profiles")
	name := flag.String("workload", "MSR-hm", "workload profile name")
	pages := flag.Int("pages", 1<<20, "logical device size in pages")
	n := flag.Int("n", 100_000, "number of requests")
	seed := flag.Int64("seed", 1, "generator seed")
	flag.Parse()

	if *list {
		fmt.Println("# trace workloads (simulator, §4.1):")
		for _, p := range workload.Catalog() {
			fmt.Printf("  %-10s reads=%.0f%% seq=%.0f%% stride=%.0f%% footprint=%.0f%%\n",
				p.Name, 100*p.ReadFrac, 100*p.SeqFrac, 100*p.StrideFrac, 100*p.FootprintFrac)
		}
		fmt.Println("# app workloads (prototype, Table 2):")
		for _, p := range workload.AppCatalog() {
			fmt.Printf("  %-10s reads=%.0f%% seq=%.0f%% stride=%.0f%% footprint=%.0f%%\n",
				p.Name, 100*p.ReadFrac, 100*p.SeqFrac, 100*p.StrideFrac, 100*p.FootprintFrac)
		}
		return
	}

	p, ok := workload.ByName(*name)
	if !ok {
		fmt.Fprintf(os.Stderr, "tracegen: unknown workload %q (try -list)\n", *name)
		os.Exit(1)
	}
	reqs := p.Generate(*pages, *n, *seed)
	fmt.Printf("# workload=%s pages=%d n=%d seed=%d\n", p.Name, *pages, *n, *seed)
	if err := trace.Write(os.Stdout, reqs); err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
}
