package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"time"

	"leaftl/internal/addr"
	"leaftl/internal/core"
)

// parallelResult is the machine-readable output of the parallel replay
// mode, recorded into BENCH_*.json by scripts/bench.sh so successive PRs
// have a performance trajectory.
type parallelResult struct {
	Mode     string `json:"mode"`
	Gamma    int    `json:"gamma"`
	Shards   int    `json:"shards"`
	Streams  int    `json:"streams"`
	MaxProcs int    `json:"maxprocs"`

	Mappings        int     `json:"mappings"`
	Lookups         int     `json:"lookups"`
	LookupMismatch  int     `json:"lookup_mismatches"`
	SegmentCount    int     `json:"segments"`
	AccurateSegs    int     `json:"accurate_segments"`
	TableBytes      int     `json:"table_bytes"`
	PageLevelBytes  int     `json:"page_level_bytes"`
	MemoryReduction float64 `json:"memory_reduction"`

	SerialLookupNs   float64 `json:"serial_lookup_ns"`
	ParallelLookupNs float64 `json:"parallel_lookup_ns"`
	LookupSpeedup    float64 `json:"lookup_speedup"`
	SerialUpdateNs   float64 `json:"serial_update_ns_per_mapping"`
	ParallelUpdateNs float64 `json:"parallel_update_ns_per_mapping"`
}

// runParallel is the leaftl-bench parallel replay mode: it replays the
// same learned-table trace into a plain core.Table and a sharded one,
// proves the translations bit-identical, then measures lookup and update
// throughput with N independent host streams hammering the sharded core
// concurrently (the LFTL/FMMU scalability scenario — on a single-core
// host the parallel numbers degenerate to the serial ones plus locking).
func runParallel(streams, shards, gamma int, seed int64, jsonPath string) error {
	// The trace size scales with the stream count (groupsPerStream groups
	// each); cap both knobs so absurd flag values cannot ask for a
	// billion-LPA replay or a million goroutines.
	const maxStreams, maxShards = 1024, 1024
	if streams < 1 {
		streams = 1
	} else if streams > maxStreams {
		return fmt.Errorf("streams %d exceeds the maximum of %d", streams, maxStreams)
	}
	if shards < 1 {
		shards = 1
	} else if shards > maxShards {
		return fmt.Errorf("shards %d exceeds the maximum of %d", shards, maxShards)
	}
	const groupsPerStream = 64
	groups := streams * groupsPerStream
	space := groups * addr.GroupSize

	rng := rand.New(rand.NewSource(seed))
	batches := make([][]addr.Mapping, 0, groups)
	ppa := addr.PPA(0)
	mappings := 0
	for g := 0; g < groups; g++ {
		base := addr.LPA(g * addr.GroupSize)
		var pairs []addr.Mapping
		switch g % 3 {
		case 0: // sequential group
			for i := 0; i < addr.GroupSize; i++ {
				pairs = append(pairs, addr.Mapping{LPA: base + addr.LPA(i), PPA: ppa})
				ppa++
			}
		case 1: // strided
			st := 2 + g%3
			for i := 0; i*st < addr.GroupSize; i++ {
				pairs = append(pairs, addr.Mapping{LPA: base + addr.LPA(i*st), PPA: ppa})
				ppa++
			}
		default: // irregular ascending
			l := base
			for l < base+addr.GroupSize {
				pairs = append(pairs, addr.Mapping{LPA: l, PPA: ppa})
				ppa++
				l += addr.LPA(1 + rng.Intn(4))
			}
		}
		mappings += len(pairs)
		batches = append(batches, pairs)
	}

	// Equivalence replay: identical batches into both cores.
	plain := core.NewTable(gamma)
	sharded := core.NewShardedTable(gamma, shards)
	for _, b := range batches {
		plain.Update(b)
		sharded.Update(b)
	}
	mismatches := 0
	for lpa := 0; lpa < space; lpa++ {
		pp, pres, pok := plain.Lookup(addr.LPA(lpa))
		sp, sres, sok := sharded.Lookup(addr.LPA(lpa))
		if pp != sp || pres != sres || pok != sok {
			mismatches++
		}
	}

	// Lookup throughput, serial (plain table) vs parallel streams
	// (sharded table). Every stream walks its own LPA sequence.
	lpas := make([]addr.LPA, 1<<16)
	for i := range lpas {
		lpas[i] = addr.LPA(rng.Intn(space))
	}
	const rounds = 8
	lookups := rounds * len(lpas)

	start := time.Now()
	for r := 0; r < rounds; r++ {
		for _, l := range lpas {
			plain.Lookup(l)
		}
	}
	serialLookup := time.Since(start)

	start = time.Now()
	var wg sync.WaitGroup
	per, rem := len(lpas)/streams, len(lpas)%streams
	for s, next := 0, 0; s < streams; s++ {
		n := per
		if s < rem {
			n++ // spread the remainder so every LPA is looked up
		}
		mine := lpas[next : next+n]
		next += n
		wg.Add(1)
		go func(mine []addr.LPA) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for _, l := range mine {
					sharded.Lookup(l)
				}
			}
		}(mine)
	}
	wg.Wait()
	parallelLookup := time.Since(start)

	// Update throughput: re-learning the same working set (steady-state
	// overwrite churn), serial vs per-stream writers on disjoint regions.
	start = time.Now()
	for _, b := range batches {
		plain.Update(b)
	}
	serialUpdate := time.Since(start)

	start = time.Now()
	for s := 0; s < streams; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for g := s * groupsPerStream; g < (s+1)*groupsPerStream; g++ {
				sharded.Update(batches[g])
			}
		}(s)
	}
	wg.Wait()
	parallelUpdate := time.Since(start)

	st := sharded.Stats()
	res := parallelResult{
		Mode:             "parallel-replay",
		Gamma:            gamma,
		Shards:           shards,
		Streams:          streams,
		MaxProcs:         runtime.GOMAXPROCS(0),
		Mappings:         mappings,
		Lookups:          lookups,
		LookupMismatch:   mismatches,
		SegmentCount:     st.Segments,
		AccurateSegs:     st.Accurate,
		TableBytes:       sharded.SizeBytes(),
		PageLevelBytes:   mappings * 8,
		SerialLookupNs:   perOpNs(serialLookup, lookups),
		ParallelLookupNs: perOpNs(parallelLookup, lookups),
		SerialUpdateNs:   perOpNs(serialUpdate, mappings),
		ParallelUpdateNs: perOpNs(parallelUpdate, mappings),
	}
	if res.TableBytes > 0 {
		res.MemoryReduction = float64(res.PageLevelBytes) / float64(res.TableBytes)
	}
	if res.ParallelLookupNs > 0 {
		res.LookupSpeedup = res.SerialLookupNs / res.ParallelLookupNs
	}

	fmt.Printf("== parallel: sharded translation replay ==\n")
	fmt.Printf("gamma=%d shards=%d streams=%d GOMAXPROCS=%d\n", gamma, shards, streams, res.MaxProcs)
	fmt.Printf("mappings             %d (%d groups)\n", mappings, groups)
	fmt.Printf("lookup mismatches    %d (must be 0)\n", mismatches)
	fmt.Printf("serial lookup        %.1f ns/op\n", res.SerialLookupNs)
	fmt.Printf("parallel lookup      %.1f ns/op (%.2fx)\n", res.ParallelLookupNs, res.LookupSpeedup)
	fmt.Printf("serial update        %.1f ns/mapping\n", res.SerialUpdateNs)
	fmt.Printf("parallel update      %.1f ns/mapping\n", res.ParallelUpdateNs)
	fmt.Printf("table footprint      %d B vs page-level %d B (%.1fx smaller)\n",
		res.TableBytes, res.PageLevelBytes, res.MemoryReduction)

	if mismatches > 0 {
		return fmt.Errorf("sharded table diverged from plain table on %d LPAs", mismatches)
	}
	if jsonPath != "" {
		enc, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		enc = append(enc, '\n')
		if jsonPath == "-" {
			_, err = os.Stdout.Write(enc)
			return err
		}
		return os.WriteFile(jsonPath, enc, 0o644)
	}
	return nil
}
