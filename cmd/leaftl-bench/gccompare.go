package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"

	"leaftl/internal/experiments"
)

// gcCompareJSON is the machine-readable form of one GC comparison
// matrix (scripts/gc.sh stitches it into BENCH_PR<N>.json).
type gcCompareJSON struct {
	Mode    string      `json:"mode"`
	Scale   string      `json:"scale"`
	Queues  int         `json:"queues"`
	Speedup float64     `json:"speedup"`
	Gamma   int         `json:"gamma"`
	Runs    []gcRunJSON `json:"runs"`
}

// gcRunJSON is one policy × streams × workload cell.
type gcRunJSON struct {
	Workload     string  `json:"workload"`
	Policy       string  `json:"policy"`
	Streams      int     `json:"streams"`
	WAF          float64 `json:"waf"`
	MetaReads    uint64  `json:"meta_reads"`
	MetaWrites   uint64  `json:"meta_writes"`
	DoubleReads  uint64  `json:"double_reads"`
	DoubleReadOp float64 `json:"double_read_per_op"`
	GCRuns       uint64  `json:"gc_runs"`
	GCErases     uint64  `json:"gc_erases"`
	GCPagesMoved uint64  `json:"gc_pages_moved"`
	GCTimeUs     float64 `json:"gc_time_us"`
	GCStallUs    float64 `json:"gc_stall_us"`
	P50us        float64 `json:"p50_us"`
	P99us        float64 `json:"p99_us"`
	P999us       float64 `json:"p999_us"`
	MeanUs       float64 `json:"mean_us"`
	IOPS         float64 `json:"iops"`
	Journal      bool    `json:"journal"`
	JournalApps  uint64  `json:"journal_appends"`
	JournalFolds uint64  `json:"journal_folds"`
	ChainLen     int     `json:"chain_len"`
}

// parseList splits a comma-separated flag value.
func parseList(v string) []string {
	var out []string
	for _, s := range strings.Split(v, ",") {
		if s = strings.TrimSpace(s); s != "" {
			out = append(out, s)
		}
	}
	return out
}

// parseIntList splits a comma-separated list of integers.
func parseIntList(v string) ([]int, error) {
	var out []int
	for _, s := range parseList(v) {
		n, err := strconv.Atoi(s)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q in %q", s, v)
		}
		out = append(out, n)
	}
	return out, nil
}

// runGCCompare is the leaftl-bench GC comparison mode: sweep victim
// policies × hot/cold stream counts over GC-heavy timed workloads and
// report WAF, reclaim counters and tail latency per cell.
func runGCCompare(scale experiments.Scale, policies, streams, workloads string, qd int, speedup float64, gamma int, seed int64, journal, markdown bool, jsonPath string) error {
	streamCounts, err := parseIntList(streams)
	if err != nil {
		return err
	}
	// Mirror GCCompare's defaulting up front so the recorded JSON
	// parameters match the conditions the sweep actually ran under.
	if qd < 1 {
		qd = 4
	}
	if speedup <= 0 {
		speedup = 1
	}
	spec := experiments.GCCompareSpec{
		Policies:  parseList(policies),
		Streams:   streamCounts,
		Workloads: parseList(workloads),
		Queues:    qd,
		Speedup:   speedup,
		Gamma:     gamma,
		Journal:   journal,
	}
	s := experiments.NewSuite(scale, seed)
	runs, table, err := s.GCCompare(spec)
	if err != nil {
		return err
	}
	if markdown {
		fmt.Println(table.Markdown())
	} else {
		fmt.Println(table.String())
	}

	if jsonPath == "" {
		return nil
	}
	out := gcCompareJSON{
		Mode: "gc-compare", Scale: scale.Name,
		Queues: spec.Queues, Speedup: spec.Speedup, Gamma: gamma,
	}
	for _, r := range runs {
		sum := r.Result.Latency.Summary()
		out.Runs = append(out.Runs, gcRunJSON{
			Workload: r.Workload, Policy: r.Policy, Streams: r.Streams,
			WAF:          r.WAF,
			MetaReads:    r.Stats.MetaReads,
			MetaWrites:   r.Stats.MetaWrites,
			DoubleReads:  r.Stats.DoubleReads,
			DoubleReadOp: r.Stats.DoubleReadRatio(),
			GCRuns:       r.Stats.GCRuns,
			GCErases:     r.Stats.GCErases,
			GCPagesMoved: r.Stats.GCPagesMoved,
			GCTimeUs:     usF(r.Stats.GCTime),
			GCStallUs:    usF(r.Stats.GCStall),
			P50us:        usF(sum.P50), P99us: usF(sum.P99), P999us: usF(sum.P999),
			MeanUs: usF(sum.Mean), IOPS: r.Result.IOPS(),
			Journal:     r.Journal,
			JournalApps: r.JournalStats.Appends, JournalFolds: r.JournalStats.Folds,
			ChainLen: r.JournalStats.MaxChain,
		})
	}
	enc, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if jsonPath == "-" {
		_, err = os.Stdout.Write(enc)
		return err
	}
	return os.WriteFile(jsonPath, enc, 0o644)
}
