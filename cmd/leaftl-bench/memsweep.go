package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"

	"leaftl/internal/experiments"
)

// memSweepJSON is the machine-readable form of one mapping-DRAM budget
// sweep (scripts/memsweep.sh stitches it into BENCH_PR<N>.json).
type memSweepJSON struct {
	Mode    string       `json:"mode"`
	Scale   string       `json:"scale"`
	Queues  int          `json:"queues"`
	Speedup float64      `json:"speedup"`
	Gamma   int          `json:"gamma"`
	Runs    []memRunJSON `json:"runs"`
}

// memRunJSON is one scheme × budget × workload cell.
type memRunJSON struct {
	Workload      string  `json:"workload"`
	Scheme        string  `json:"scheme"`
	BudgetBytes   int     `json:"budget_bytes"`
	ResidentBytes int     `json:"resident_bytes"`
	FullBytes     int     `json:"full_bytes"`
	MetaReads     uint64  `json:"meta_reads"`
	MetaWrites    uint64  `json:"meta_writes"`
	MissPerOp     float64 `json:"miss_per_op"`
	DoubleReads   uint64  `json:"double_reads"`
	DoubleReadOp  float64 `json:"double_read_per_op"`
	MetaWAF       float64 `json:"meta_waf"`
	WAF           float64 `json:"waf"`
	Faults        uint64  `json:"group_faults"`
	Evictions     uint64  `json:"group_evictions"`
	P50us         float64 `json:"p50_us"`
	P99us         float64 `json:"p99_us"`
	P999us        float64 `json:"p999_us"`
	MeanUs        float64 `json:"mean_us"`
	IOPS          float64 `json:"iops"`
	Journal       bool    `json:"journal"`
	JournalApps   uint64  `json:"journal_appends"`
	JournalFolds  uint64  `json:"journal_folds"`
	ChainLen      int     `json:"chain_len"`
}

// parseFloatList splits a comma-separated list of floats.
func parseFloatList(v string) ([]float64, error) {
	var out []float64
	for _, s := range parseList(v) {
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return nil, fmt.Errorf("bad number %q in %q", s, v)
		}
		out = append(out, f)
	}
	return out, nil
}

// runMemSweep is the leaftl-bench memory-sweep mode: cap each scheme's
// mapping DRAM at a sweep of budgets and report how throughput, tail
// latency, mapping-miss traffic and meta-WAF respond.
func runMemSweep(scale experiments.Scale, budgets, schemes, workloads string, qd int, speedup float64, gamma int, seed int64, journal, markdown bool, jsonPath string) error {
	budgetList, err := parseFloatList(budgets)
	if err != nil {
		return err
	}
	if qd < 1 {
		qd = 4
	}
	if speedup <= 0 {
		speedup = 1
	}
	spec := experiments.MemorySweepSpec{
		Budgets:   budgetList,
		Schemes:   parseList(schemes),
		Workloads: parseList(workloads),
		Queues:    qd,
		Speedup:   speedup,
		Gamma:     gamma,
		Journal:   journal,
	}
	s := experiments.NewSuite(scale, seed)
	runs, table, err := s.MemorySweep(spec)
	if err != nil {
		return err
	}
	if markdown {
		fmt.Println(table.Markdown())
	} else {
		fmt.Println(table.String())
	}

	if jsonPath == "" {
		return nil
	}
	out := memSweepJSON{
		Mode: "memsweep", Scale: scale.Name,
		Queues: spec.Queues, Speedup: spec.Speedup, Gamma: gamma,
	}
	for _, r := range runs {
		sum := r.Result.Latency.Summary()
		out.Runs = append(out.Runs, memRunJSON{
			Workload: r.Workload, Scheme: r.Scheme,
			BudgetBytes: r.BudgetBytes, ResidentBytes: r.ResidentBytes, FullBytes: r.FullBytes,
			MetaReads: r.Stats.MetaReads, MetaWrites: r.Stats.MetaWrites,
			MissPerOp:   r.Stats.MetaReadRatio(),
			DoubleReads: r.Stats.DoubleReads, DoubleReadOp: r.Stats.DoubleReadRatio(),
			MetaWAF: r.Stats.MetaWAF(), WAF: r.WAF,
			Faults: r.Faults, Evictions: r.Evictions,
			P50us: usF(sum.P50), P99us: usF(sum.P99), P999us: usF(sum.P999),
			MeanUs: usF(sum.Mean), IOPS: r.Result.IOPS(),
			Journal:     r.Journal,
			JournalApps: r.JournalStats.Appends, JournalFolds: r.JournalStats.Folds,
			ChainLen: r.JournalStats.MaxChain,
		})
	}
	enc, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if jsonPath == "-" {
		_, err = os.Stdout.Write(enc)
		return err
	}
	return os.WriteFile(jsonPath, enc, 0o644)
}
