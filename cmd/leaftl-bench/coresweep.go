package main

import (
	"encoding/json"
	"fmt"
	"os"

	"leaftl/internal/experiments"
)

// coreSweepJSON is the machine-readable form of one multi-queue core
// sweep (scripts/coresweep.sh writes it to BENCH_PR7.json).
type coreSweepJSON struct {
	Mode     string  `json:"mode"`
	Scale    string  `json:"scale"`
	Workload string  `json:"workload"`
	Speedup  float64 `json:"speedup"`
	Gamma    int     `json:"gamma"`
	// Deterministic reports whether every worker count finished with the
	// same device state digest — the sweep-level determinism check.
	Deterministic bool `json:"deterministic"`
	// MonotoneTo4 reports whether kIOPS increased strictly with every
	// worker-count step up to 4 workers (the scaling acceptance gate).
	MonotoneTo4 bool          `json:"monotone_kiops_to_4_workers"`
	Runs        []coreRunJSON `json:"runs"`
}

// coreRunJSON is one worker count's row.
type coreRunJSON struct {
	Workers     int     `json:"workers"`
	KIOPS       float64 `json:"kiops"`
	ElapsedUs   float64 `json:"elapsed_us"`
	P50us       float64 `json:"p50_us"`
	P99us       float64 `json:"p99_us"`
	P999us      float64 `json:"p999_us"`
	WaitP99us   float64 `json:"queue_wait_p99_us"`
	Epochs      uint64  `json:"epochs"`
	MaxBatch    int     `json:"max_batch"`
	StateDigest string  `json:"state_digest"`
}

// runCoreSweep is the leaftl-bench -coresweep mode: replay one timed
// workload through the real multi-queue front end at each worker count
// and report the throughput curve plus the cross-count determinism
// digest.
func runCoreSweep(scale experiments.Scale, workers, workload string, gamma int, speedup float64, seed int64, markdown bool, jsonPath string) error {
	workerCounts, err := parseIntList(workers)
	if err != nil {
		return err
	}
	spec := experiments.CoreSweepSpec{
		Workers:  workerCounts,
		Workload: workload,
		Gamma:    gamma,
		Speedup:  speedup,
	}
	s := experiments.NewSuite(scale, seed)
	runs, table, err := s.CoreSweep(spec)
	if err != nil {
		return err
	}
	if markdown {
		fmt.Println(table.Markdown())
	} else {
		fmt.Println(table.String())
	}

	deterministic := true
	for _, r := range runs[1:] {
		if r.Digest != runs[0].Digest {
			deterministic = false
		}
	}
	monotone := true
	for i := 1; i < len(runs); i++ {
		if runs[i].Workers > 4 || runs[i-1].Workers > 4 {
			continue
		}
		if runs[i].Result.IOPS() <= runs[i-1].Result.IOPS() {
			monotone = false
		}
	}
	if !deterministic {
		fmt.Fprintln(os.Stderr, "leaftl-bench: coresweep: WARNING: state digests diverge across worker counts")
	}

	if jsonPath == "" {
		return nil
	}
	out := coreSweepJSON{
		Mode: "coresweep", Scale: scale.Name,
		Workload: workload, Speedup: spec.Speedup, Gamma: gamma,
		Deterministic: deterministic, MonotoneTo4: monotone,
	}
	for _, r := range runs {
		sum := r.Result.Latency.Summary()
		out.Runs = append(out.Runs, coreRunJSON{
			Workers:     r.Workers,
			KIOPS:       r.Result.IOPS() / 1e3,
			ElapsedUs:   usF(r.Result.Elapsed),
			P50us:       usF(sum.P50),
			P99us:       usF(sum.P99),
			P999us:      usF(sum.P999),
			WaitP99us:   usF(r.Result.QueueWait.Summary().P99),
			Epochs:      r.MQ.Epochs,
			MaxBatch:    r.MQ.MaxBatch,
			StateDigest: fmt.Sprintf("%016x", r.Digest),
		})
	}
	enc, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if jsonPath == "-" {
		_, err = os.Stdout.Write(enc)
		return err
	}
	return os.WriteFile(jsonPath, enc, 0o644)
}
