package main

import (
	"encoding/json"
	"fmt"
	"os"

	"leaftl/internal/core"
	"leaftl/internal/experiments"
	"leaftl/internal/trace"
)

// gammaTuneJSON is the machine-readable form of one adaptive-γ sweep
// (scripts/gammatune.sh stitches it into BENCH_PR<N>.json).
type gammaTuneJSON struct {
	Mode      string          `json:"mode"`
	Scale     string          `json:"scale"`
	Queues    int             `json:"queues"`
	Speedup   float64         `json:"speedup"`
	Target    float64         `json:"gamma_target"`
	AutoGamma int             `json:"auto_gamma"`
	Runs      []gammaRunJSON  `json:"runs"`
	Dominance []dominanceJSON `json:"dominance"`
}

// gammaRunJSON is one workload × γ-policy cell.
type gammaRunJSON struct {
	Workload      string      `json:"workload"`
	Policy        string      `json:"policy"`
	Gamma         int         `json:"gamma"`
	AutoTune      bool        `json:"autotune"`
	TableBytes    int         `json:"table_bytes"`
	ResidentBytes int         `json:"resident_bytes"`
	MissPerOp     float64     `json:"miss_per_op"`
	DoubleReadOp  float64     `json:"double_read_per_op"`
	Mispredicts   uint64      `json:"mispredictions"`
	HintResolved  uint64      `json:"miss_hint_resolved"`
	Fallbacks     uint64      `json:"miss_fallbacks"`
	ApproxReads   uint64      `json:"approx_reads"`
	MetaReads     uint64      `json:"meta_reads"`
	MetaWrites    uint64      `json:"meta_writes"`
	GammaHist     map[int]int `json:"gamma_hist"`
	P50us         float64     `json:"p50_us"`
	P99us         float64     `json:"p99_us"`
	P999us        float64     `json:"p999_us"`
	MeanUs        float64     `json:"mean_us"`
	IOPS          float64     `json:"iops"`
	WAF           float64     `json:"waf"`
}

// dominanceJSON records, per workload, which static-γ points the
// autotuned run dominates (lower double-read-per-op at equal-or-smaller
// table bytes) — the sweep's acceptance check, made machine-checkable.
type dominanceJSON struct {
	Workload  string `json:"workload"`
	Dominated []int  `json:"dominated_static_gammas"`
}

// runGammaTune is the leaftl-bench adaptive-γ sweep mode: a static-γ
// grid against the per-group autotune controller, per workload.
func runGammaTune(scale experiments.Scale, gammas string, autoGamma int, target float64,
	workloads, tracePath string, qd int, speedup float64, seed int64, markdown bool, jsonPath string) error {
	grid, err := parseIntList(gammas)
	if err != nil {
		return err
	}
	spec := experiments.GammaTuneSpec{
		Gammas:    grid,
		AutoGamma: autoGamma,
		Target:    target,
		Workloads: parseList(workloads),
		Queues:    qd,
		Speedup:   speedup,
	}
	for _, wl := range spec.Workloads {
		if wl == "msr-replay" {
			reqs, format, err := trace.Open(tracePath, trace.Options{})
			if err != nil {
				return fmt.Errorf("msr-replay trace %s: %w", tracePath, err)
			}
			fmt.Fprintf(os.Stderr, "leaftl-bench: %s: %d requests (%s format)\n", tracePath, len(reqs), format)
			spec.Trace = reqs
		}
	}
	spec = spec.WithDefaults()
	s := experiments.NewSuite(scale, seed)
	runs, table, err := s.GammaTuneSweep(spec)
	if err != nil {
		return err
	}
	if markdown {
		fmt.Println(table.Markdown())
	} else {
		fmt.Println(table.String())
	}

	if jsonPath == "" {
		return nil
	}
	resolvedTarget := core.TuneConfig{TargetMissRatio: spec.Target}.WithDefaults().TargetMissRatio
	out := gammaTuneJSON{
		Mode: "gammatune", Scale: scale.Name,
		Queues: spec.Queues, Speedup: spec.Speedup,
		Target: resolvedTarget, AutoGamma: spec.AutoGamma,
	}
	byWorkload := map[string]*experiments.GammaTuneRun{}
	var wlOrder []string
	for i := range runs {
		r := &runs[i]
		if len(wlOrder) == 0 || wlOrder[len(wlOrder)-1] != r.Workload {
			wlOrder = append(wlOrder, r.Workload)
		}
		sum := r.Result.Latency.Summary()
		out.Runs = append(out.Runs, gammaRunJSON{
			Workload: r.Workload, Policy: r.Label, Gamma: r.Gamma, AutoTune: r.AutoTune,
			TableBytes: r.TableBytes, ResidentBytes: r.ResidentBytes,
			MissPerOp: r.MissPerOp, DoubleReadOp: r.DoubleReadPerOp,
			Mispredicts:  r.Stats.Mispredictions,
			HintResolved: r.Stats.MissHintResolved, Fallbacks: r.Stats.MissFallbacks,
			ApproxReads: r.Stats.ApproxReads,
			MetaReads:   r.Stats.MetaReads, MetaWrites: r.Stats.MetaWrites,
			GammaHist: r.GammaHist,
			P50us:     usF(sum.P50), P99us: usF(sum.P99), P999us: usF(sum.P999),
			MeanUs: usF(sum.Mean), IOPS: r.Result.IOPS(), WAF: r.WAF,
		})
		if r.AutoTune {
			byWorkload[r.Workload] = r
		}
	}
	for _, wl := range wlOrder {
		auto := byWorkload[wl]
		if auto == nil {
			continue
		}
		dom := dominanceJSON{Workload: wl, Dominated: []int{}}
		for i := range runs {
			r := &runs[i]
			if r.Workload != wl || r.AutoTune {
				continue
			}
			if auto.DoubleReadPerOp < r.DoubleReadPerOp && auto.TableBytes <= r.TableBytes {
				dom.Dominated = append(dom.Dominated, r.Gamma)
			}
		}
		out.Dominance = append(out.Dominance, dom)
	}
	enc, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if jsonPath == "-" {
		_, err = os.Stdout.Write(enc)
		return err
	}
	return os.WriteFile(jsonPath, enc, 0o644)
}
