package main

import (
	"encoding/json"
	"fmt"
	"os"

	"leaftl/internal/core"
	"leaftl/internal/experiments"
	"leaftl/internal/trace"
)

// gammaTuneJSON is the machine-readable form of one adaptive-γ sweep
// (scripts/gammatune.sh stitches it into BENCH_PR<N>.json).
type gammaTuneJSON struct {
	Mode      string          `json:"mode"`
	Scale     string          `json:"scale"`
	Queues    int             `json:"queues"`
	Speedup   float64         `json:"speedup"`
	Target    float64         `json:"gamma_target"`
	AutoGamma int             `json:"auto_gamma"`
	Bitmap    bool            `json:"bitmap"`
	Runs      []gammaRunJSON  `json:"runs"`
	Dominance []dominanceJSON `json:"dominance"`
	Gate      *bitmapGateJSON `json:"bitmap_gate,omitempty"`
}

// gammaRunJSON is one workload × γ-policy cell.
type gammaRunJSON struct {
	Workload      string      `json:"workload"`
	Policy        string      `json:"policy"`
	Gamma         int         `json:"gamma"`
	AutoTune      bool        `json:"autotune"`
	TableBytes    int         `json:"table_bytes"`
	ResidentBytes int         `json:"resident_bytes"`
	Bitmap        bool        `json:"bitmap"`
	MissPerOp     float64     `json:"miss_per_op"`
	DoubleReadOp  float64     `json:"double_read_per_op"`
	DoubleReads   uint64      `json:"double_reads"`
	ExactBitHits  uint64      `json:"exact_bit_hits"`
	ExactHitRatio float64     `json:"exact_hit_ratio"`
	Relearns      uint64      `json:"relearns"`
	Mispredicts   uint64      `json:"mispredictions"`
	HintResolved  uint64      `json:"miss_hint_resolved"`
	Fallbacks     uint64      `json:"miss_fallbacks"`
	ApproxReads   uint64      `json:"approx_reads"`
	MetaReads     uint64      `json:"meta_reads"`
	MetaWrites    uint64      `json:"meta_writes"`
	GammaHist     map[int]int `json:"gamma_hist"`
	P50us         float64     `json:"p50_us"`
	P99us         float64     `json:"p99_us"`
	P999us        float64     `json:"p999_us"`
	MeanUs        float64     `json:"mean_us"`
	IOPS          float64     `json:"iops"`
	WAF           float64     `json:"waf"`
}

// dominanceJSON records, per workload, which static-γ points the
// autotuned run dominates (lower double-read-per-op at equal-or-smaller
// table bytes) — the sweep's acceptance check, made machine-checkable.
type dominanceJSON struct {
	Workload  string `json:"workload"`
	Dominated []int  `json:"dominated_static_gammas"`
}

// bitmapGateJSON is the PR 9 acceptance gate, scored on the first sweep
// workload carrying a bitmap cell (zipf-hot in the benched config): the
// autotune+bitmap run must push double reads per op within 1.15× of the
// exact γ=0 baseline — plus a 0.001/op absolute floor, since γ=0 pays
// exactly zero double reads and a pure multiplicative bound on zero is
// unsatisfiable — while keeping the learned table no larger than the
// biggest static γ's, and GC relearning must have actually fired.
type bitmapGateJSON struct {
	Workload         string  `json:"workload"`
	BitmapDblPerOp   float64 `json:"bitmap_double_reads_per_op"`
	Gamma0DblPerOp   float64 `json:"gamma0_double_reads_per_op"`
	DblBound         float64 `json:"double_read_bound"`
	BitmapTableBytes int     `json:"bitmap_table_bytes"`
	StaticGamma      int     `json:"static_gamma"`
	StaticTableBytes int     `json:"static_table_bytes"`
	Relearns         uint64  `json:"relearns"`
	Pass             bool    `json:"pass"`
}

// bitmapGate scores the gate for one workload's cells; nil when the
// sweep lacks the γ=0 baseline, the max-γ static cell, or a bitmap cell.
func bitmapGate(runs []experiments.GammaTuneRun, wl string) *bitmapGateJSON {
	var g0, gmax, bm *experiments.GammaTuneRun
	for i := range runs {
		r := &runs[i]
		if r.Workload != wl {
			continue
		}
		switch {
		case r.Bitmap:
			bm = r
		case r.AutoTune:
		case r.Gamma == 0:
			g0 = r
		case gmax == nil || r.Gamma > gmax.Gamma:
			gmax = r
		}
	}
	if g0 == nil || gmax == nil || bm == nil {
		return nil
	}
	const dblFloor = 0.001
	gate := &bitmapGateJSON{
		Workload:         wl,
		BitmapDblPerOp:   bm.DoubleReadPerOp,
		Gamma0DblPerOp:   g0.DoubleReadPerOp,
		DblBound:         1.15*g0.DoubleReadPerOp + dblFloor,
		BitmapTableBytes: bm.TableBytes,
		StaticGamma:      gmax.Gamma,
		StaticTableBytes: gmax.TableBytes,
		Relearns:         bm.Stats.Relearns,
	}
	gate.Pass = gate.BitmapDblPerOp <= gate.DblBound &&
		gate.BitmapTableBytes <= gate.StaticTableBytes &&
		gate.Relearns > 0
	return gate
}

// runGammaTune is the leaftl-bench adaptive-γ sweep mode: a static-γ
// grid against the per-group autotune controller, per workload.
func runGammaTune(scale experiments.Scale, gammas string, autoGamma int, target float64,
	workloads, tracePath string, bitmap bool, qd int, speedup float64, seed int64, markdown bool, jsonPath string) error {
	grid, err := parseIntList(gammas)
	if err != nil {
		return err
	}
	spec := experiments.GammaTuneSpec{
		Gammas:    grid,
		AutoGamma: autoGamma,
		Target:    target,
		Workloads: parseList(workloads),
		Bitmap:    bitmap,
		Queues:    qd,
		Speedup:   speedup,
	}
	for _, wl := range spec.Workloads {
		if wl == "msr-replay" {
			reqs, format, err := trace.Open(tracePath, trace.Options{})
			if err != nil {
				return fmt.Errorf("msr-replay trace %s: %w", tracePath, err)
			}
			fmt.Fprintf(os.Stderr, "leaftl-bench: %s: %d requests (%s format)\n", tracePath, len(reqs), format)
			spec.Trace = reqs
		}
	}
	spec = spec.WithDefaults()
	s := experiments.NewSuite(scale, seed)
	runs, table, err := s.GammaTuneSweep(spec)
	if err != nil {
		return err
	}
	if markdown {
		fmt.Println(table.Markdown())
	} else {
		fmt.Println(table.String())
	}

	if jsonPath == "" {
		return nil
	}
	resolvedTarget := core.TuneConfig{TargetMissRatio: spec.Target}.WithDefaults().TargetMissRatio
	out := gammaTuneJSON{
		Mode: "gammatune", Scale: scale.Name,
		Queues: spec.Queues, Speedup: spec.Speedup,
		Target: resolvedTarget, AutoGamma: spec.AutoGamma, Bitmap: spec.Bitmap,
	}
	byWorkload := map[string]*experiments.GammaTuneRun{}
	var wlOrder []string
	for i := range runs {
		r := &runs[i]
		if len(wlOrder) == 0 || wlOrder[len(wlOrder)-1] != r.Workload {
			wlOrder = append(wlOrder, r.Workload)
		}
		sum := r.Result.Latency.Summary()
		out.Runs = append(out.Runs, gammaRunJSON{
			Workload: r.Workload, Policy: r.Label, Gamma: r.Gamma, AutoTune: r.AutoTune,
			Bitmap:     r.Bitmap,
			TableBytes: r.TableBytes, ResidentBytes: r.ResidentBytes,
			MissPerOp: r.MissPerOp, DoubleReadOp: r.DoubleReadPerOp,
			DoubleReads:  r.Stats.DoubleReads,
			ExactBitHits: r.Stats.ExactBitHits, ExactHitRatio: r.ExactHitRatio,
			Relearns:     r.Stats.Relearns,
			Mispredicts:  r.Stats.Mispredictions,
			HintResolved: r.Stats.MissHintResolved, Fallbacks: r.Stats.MissFallbacks,
			ApproxReads: r.Stats.ApproxReads,
			MetaReads:   r.Stats.MetaReads, MetaWrites: r.Stats.MetaWrites,
			GammaHist: r.GammaHist,
			P50us:     usF(sum.P50), P99us: usF(sum.P99), P999us: usF(sum.P999),
			MeanUs: usF(sum.Mean), IOPS: r.Result.IOPS(), WAF: r.WAF,
		})
		if r.AutoTune && !r.Bitmap {
			byWorkload[r.Workload] = r
		}
	}
	for _, wl := range wlOrder {
		auto := byWorkload[wl]
		if auto == nil {
			continue
		}
		dom := dominanceJSON{Workload: wl, Dominated: []int{}}
		for i := range runs {
			r := &runs[i]
			if r.Workload != wl || r.AutoTune {
				continue
			}
			if auto.DoubleReadPerOp < r.DoubleReadPerOp && auto.TableBytes <= r.TableBytes {
				dom.Dominated = append(dom.Dominated, r.Gamma)
			}
		}
		out.Dominance = append(out.Dominance, dom)
	}
	if spec.Bitmap {
		// Score the gate on the first workload with all three cells
		// present (zipf-hot first in the benched configuration).
		for _, wl := range wlOrder {
			if gate := bitmapGate(runs, wl); gate != nil {
				out.Gate = gate
				break
			}
		}
	}
	enc, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if jsonPath == "-" {
		_, err = os.Stdout.Write(enc)
		return err
	}
	return os.WriteFile(jsonPath, enc, 0o644)
}
