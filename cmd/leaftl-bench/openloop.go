package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"leaftl/internal/experiments"
	"leaftl/internal/trace"
)

// openLoopJSON is the machine-readable form of one open-loop run,
// mirroring the rendered table for scripts/bench trend tracking.
type openLoopJSON struct {
	Mode    string       `json:"mode"`
	Trace   string       `json:"trace"`
	Format  string       `json:"format"`
	Queues  int          `json:"queues"`
	Workers int          `json:"workers,omitempty"`
	Speedup float64      `json:"speedup"`
	Gamma   int          `json:"gamma"`
	Schemes []schemeJSON `json:"schemes"`
}

// schemeJSON is one scheme's row in the open-loop JSON output.
type schemeJSON struct {
	Scheme        string  `json:"scheme"`
	P50us         float64 `json:"p50_us"`
	P95us         float64 `json:"p95_us"`
	P99us         float64 `json:"p99_us"`
	P999us        float64 `json:"p999_us"`
	MeanUs        float64 `json:"mean_us"`
	IOPS          float64 `json:"iops"`
	MapBytes      int     `json:"mapping_bytes"`
	ResidentBytes int     `json:"resident_bytes"`
	MetaReads     uint64  `json:"meta_reads"`
	MetaWrites    uint64  `json:"meta_writes"`
	MissPerOp     float64 `json:"miss_per_op"`
	DoubleReads   uint64  `json:"double_reads"`
	DoubleReadOp  float64 `json:"double_read_per_op"`
	MetaWAF       float64 `json:"meta_waf"`
	Journal       bool    `json:"journal"`
	JournalApps   uint64  `json:"journal_appends"`
	JournalFolds  uint64  `json:"journal_folds"`
	ChainLen      int     `json:"chain_len"`
}

// runOpenLoop is the leaftl-bench open-loop replay mode: ingest a trace
// in any supported format, replay it at recorded arrival times against
// LeaFTL/DFTL/SFTL on identical devices, and report tail latency.
// gcPolicy and gcStreams configure every device's garbage collector
// (single values here; the -gccompare mode sweeps lists). workers > 0
// swaps the simulated host queues for that many real multi-queue pairs.
func runOpenLoop(path, formatName string, qd int, speedup float64, gamma int, seed int64, markdown bool, jsonPath, gcPolicy, gcStreams string, autotune bool, gammaTarget float64, workers int, journal bool) error {
	streams := 0
	if gcStreams != "" {
		var err error
		if streams, err = strconv.Atoi(gcStreams); err != nil {
			return fmt.Errorf("-gc-streams %q: want a single integer in open-loop mode", gcStreams)
		}
	}
	if strings.Contains(gcPolicy, ",") {
		return fmt.Errorf("-gc-policy %q: want a single policy in open-loop mode", gcPolicy)
	}
	var (
		reqs   []trace.Request
		format trace.Format
		err    error
	)
	if formatName == "" || formatName == "auto" {
		reqs, format, err = trace.Open(path, trace.Options{})
	} else {
		if format, err = trace.FormatByName(formatName); err != nil {
			return err
		}
		var f *os.File
		if f, err = os.Open(path); err != nil {
			return err
		}
		reqs, err = trace.Decode(f, format, trace.Options{})
		f.Close()
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "leaftl-bench: %s: %d requests (%s format), recorded span %v\n",
		path, len(reqs), format, trace.Span(reqs).Round(time.Millisecond))

	spec := experiments.OpenLoopSpec{
		Queues: qd, Speedup: speedup, Gamma: gamma,
		GCPolicy: gcPolicy, GCStreams: streams,
		AutoTune: autotune, GammaTarget: gammaTarget,
		Workers: workers, Journal: journal,
	}
	if !trace.Timed(reqs) {
		// Untimed traces replay at a uniform 50k IOPS arrival rate.
		spec.Interarrival = 20 * time.Microsecond
		fmt.Fprintln(os.Stderr, "leaftl-bench: trace is untimed; spacing arrivals 20µs apart")
	}
	s := experiments.NewSuite(experiments.QuickScale(), seed)
	runs, table, err := s.OpenLoopCompare(reqs, spec)
	if err != nil {
		return err
	}
	if markdown {
		fmt.Println(table.Markdown())
	} else {
		fmt.Println(table.String())
	}

	if jsonPath != "" {
		out := openLoopJSON{
			Mode: "openloop-replay", Trace: path, Format: format.String(),
			Queues: spec.Queues, Speedup: spec.Speedup, Gamma: gamma,
			Workers: spec.Workers,
		}
		for _, r := range runs {
			sum := r.Result.Latency.Summary()
			out.Schemes = append(out.Schemes, schemeJSON{
				Scheme: r.Scheme,
				P50us:  usF(sum.P50), P95us: usF(sum.P95), P99us: usF(sum.P99), P999us: usF(sum.P999),
				MeanUs: usF(sum.Mean), IOPS: r.Result.IOPS(),
				MapBytes: r.MapBytes, ResidentBytes: r.ResidentBytes,
				MetaReads: r.Stats.MetaReads, MetaWrites: r.Stats.MetaWrites,
				MissPerOp:   r.Stats.MetaReadRatio(),
				DoubleReads: r.Stats.DoubleReads, DoubleReadOp: r.Stats.DoubleReadRatio(),
				MetaWAF:     r.Stats.MetaWAF(),
				Journal:     r.Journal,
				JournalApps: r.JournalStats.Appends, JournalFolds: r.JournalStats.Folds,
				ChainLen: r.JournalStats.MaxChain,
			})
		}
		enc, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			return err
		}
		enc = append(enc, '\n')
		if jsonPath == "-" {
			_, err = os.Stdout.Write(enc)
			return err
		}
		return os.WriteFile(jsonPath, enc, 0o644)
	}
	return nil
}

// usF converts a duration to float microseconds for JSON.
func usF(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// perOpNs divides a wall duration across n operations, reporting 0 for
// an empty run — a NaN here would make encoding/json reject the whole
// report.
func perOpNs(d time.Duration, n int) float64 {
	if n <= 0 {
		return 0
	}
	return float64(d.Nanoseconds()) / float64(n)
}
