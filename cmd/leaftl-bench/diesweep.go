package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"

	"leaftl/internal/experiments"
)

// dieSweepJSON is the machine-readable form of one die-scaling sweep
// (scripts/diesweep.sh writes it to BENCH_PR8.json).
type dieSweepJSON struct {
	Mode     string  `json:"mode"`
	Scale    string  `json:"scale"`
	Workload string  `json:"workload"`
	Speedup  float64 `json:"speedup"`
	Workers  int     `json:"workers"`
	Planes   int     `json:"planes"`
	Gamma    int     `json:"gamma"`
	// MappingBudget is the budgeted arm's fraction of the full mapping
	// size.
	MappingBudget float64 `json:"mapping_budget"`
	// MonotoneTo4Dies reports whether kIOPS never decreased with any
	// die-count step up to 4 dies (the die-scaling acceptance gate).
	MonotoneTo4Dies bool `json:"monotone_kiops_to_4_dies"`
	// Speedup4v1 is kIOPS at 4 dies over kIOPS at 1 die (0 when the
	// sweep does not include both endpoints).
	Speedup4v1 float64 `json:"kiops_speedup_4_dies_vs_1"`
	// MetaOverlapPositive reports whether every multi-die row's budgeted
	// arm overlapped translation-page writes with data traffic.
	MetaOverlapPositive bool         `json:"meta_overlap_positive"`
	Runs                []dieRunJSON `json:"runs"`
}

// dieRunJSON is one geometry's row.
type dieRunJSON struct {
	Dies          int     `json:"dies"`
	Planes        int     `json:"planes"`
	KIOPS         float64 `json:"kiops"`
	ElapsedUs     float64 `json:"elapsed_us"`
	P50us         float64 `json:"p50_us"`
	P99us         float64 `json:"p99_us"`
	P999us        float64 `json:"p999_us"`
	WaitP99us     float64 `json:"queue_wait_p99_us"`
	StateDigest   string  `json:"state_digest"`
	BudgetKIOPS   float64 `json:"budget_kiops"`
	MetaReads     uint64  `json:"budget_meta_reads"`
	MetaWrites    uint64  `json:"budget_meta_writes"`
	MetaOverlapUs float64 `json:"budget_meta_overlap_us"`
}

// runDieSweep is the leaftl-bench -diesweep mode: replay one timed
// workload open-loop across channel × die × plane geometries and report
// the kIOPS-vs-dies curve plus the budgeted-arm map-op pipelining.
func runDieSweep(scale experiments.Scale, dies string, planes int, workers, workload string, gamma int, speedup float64, seed int64, markdown bool, jsonPath string) error {
	dieCounts, err := parseIntList(dies)
	if err != nil {
		return err
	}
	w := 0
	if workers != "" {
		if w, err = strconv.Atoi(workers); err != nil {
			return fmt.Errorf("-workers %q: want a single integer", workers)
		}
	}
	spec := experiments.DieSweepSpec{
		Dies:     dieCounts,
		Planes:   planes,
		Workers:  w,
		Workload: workload,
		Gamma:    gamma,
		Speedup:  speedup,
	}
	s := experiments.NewSuite(scale, seed)
	runs, table, err := s.DieSweep(spec)
	if err != nil {
		return err
	}
	if markdown {
		fmt.Println(table.Markdown())
	} else {
		fmt.Println(table.String())
	}

	monotone := true
	for i := 1; i < len(runs); i++ {
		if runs[i].Dies > 4 || runs[i-1].Dies > 4 {
			continue
		}
		if runs[i].Result.IOPS() < runs[i-1].Result.IOPS() {
			monotone = false
		}
	}
	var kiops1, kiops4, ratio float64
	for _, r := range runs {
		switch r.Dies {
		case 1:
			kiops1 = r.Result.IOPS() / 1e3
		case 4:
			kiops4 = r.Result.IOPS() / 1e3
		}
	}
	if kiops1 > 0 && kiops4 > 0 {
		ratio = kiops4 / kiops1
	}
	overlapOK := true
	for _, r := range runs {
		if r.Dies > 1 && r.BudgetStats.MetaOverlap <= 0 {
			overlapOK = false
		}
	}
	if !monotone {
		fmt.Fprintln(os.Stderr, "leaftl-bench: diesweep: WARNING: kIOPS decreased with added dies")
	}
	if !overlapOK {
		fmt.Fprintln(os.Stderr, "leaftl-bench: diesweep: WARNING: no meta/data overlap on a multi-die geometry under budget")
	}

	if jsonPath == "" {
		return nil
	}
	spec = spec.WithDefaults()
	out := dieSweepJSON{
		Mode: "diesweep", Scale: scale.Name,
		Workload: spec.Workload, Speedup: spec.Speedup,
		Workers: spec.Workers, Planes: spec.Planes, Gamma: gamma,
		MappingBudget:   spec.MappingBudget,
		MonotoneTo4Dies: monotone, Speedup4v1: ratio,
		MetaOverlapPositive: overlapOK,
	}
	for _, r := range runs {
		sum := r.Result.Latency.Summary()
		out.Runs = append(out.Runs, dieRunJSON{
			Dies:          r.Dies,
			Planes:        r.Planes,
			KIOPS:         r.Result.IOPS() / 1e3,
			ElapsedUs:     usF(r.Result.Elapsed),
			P50us:         usF(sum.P50),
			P99us:         usF(sum.P99),
			P999us:        usF(sum.P999),
			WaitP99us:     usF(r.Result.QueueWait.Summary().P99),
			StateDigest:   fmt.Sprintf("%016x", r.Digest),
			BudgetKIOPS:   r.BudgetResult.IOPS() / 1e3,
			MetaReads:     r.BudgetStats.MetaReads,
			MetaWrites:    r.BudgetStats.MetaWrites,
			MetaOverlapUs: usF(r.BudgetStats.MetaOverlap),
		})
	}
	enc, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if jsonPath == "-" {
		_, err = os.Stdout.Write(enc)
		return err
	}
	return os.WriteFile(jsonPath, enc, 0o644)
}
