// Command leaftl-bench regenerates the paper's evaluation tables and
// figures on the simulated SSD (deliverable d). By default it runs at
// quick scale; -full uses the larger scaled device of DESIGN.md §5 and
// -micro the fastest CI-smoke scale.
// Seven replay modes skip the figures: -parallel hammers the sharded
// translation core with concurrent host streams, -openloop replays
// a trace file (native, MSR CSV, or FIU format) at its recorded arrival
// times against all three schemes, reporting p50/p95/p99/p999 latency
// (-autotune runs LeaFTL with the adaptive per-group γ controller),
// -gccompare sweeps GC victim policies × hot/cold stream counts
// over GC-heavy workloads (-gc-policy/-gc-streams also apply a single
// policy/stream count to the open-loop mode), -memsweep caps every
// scheme's mapping DRAM at a sweep of budgets (-mapping-budget) so
// LeaFTL's demand-paged learned table competes against DFTL/SFTL under
// the same memory pressure, and -gammatune sweeps a static error-bound
// grid (-gammas) against the autotuned controller, recording which
// static points the controller dominates, and -torture runs the seeded
// crash-torture matrix (kill-recover-verify across GC policies ×
// mapping budgets × autotune) plus an aged-device fault-injection sweep
// over -fault-rber, and -coresweep replays a timed workload through the
// real multi-queue front end at each -workers count, reporting the
// kIOPS-vs-cores curve and the cross-count state-digest determinism
// check (-workers with -openloop drives that replay through real queue
// pairs too).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"leaftl/internal/experiments"
)

func main() {
	full := flag.Bool("full", false, "run at full (slower) scale")
	only := flag.String("only", "", "comma-separated figure IDs to run (e.g. fig15,fig16)")
	seed := flag.Int64("seed", 1, "workload generation seed")
	markdown := flag.Bool("markdown", false, "emit Markdown tables instead of ASCII")
	parallel := flag.Int("parallel", 0, "parallel replay mode: N independent host streams against the sharded translation core (skips figures)")
	shards := flag.Int("shards", 8, "shard count for the parallel replay mode")
	gamma := flag.Int("gamma", 0, "LeaFTL error bound for the parallel and open-loop replay modes")
	jsonOut := flag.String("json", "", "parallel/open-loop replay modes: write JSON results to this file (- for stdout)")
	openloop := flag.Bool("openloop", false, "open-loop replay mode: replay -trace at recorded arrival times against LeaFTL/DFTL/SFTL (skips figures)")
	tracePath := flag.String("trace", "traces/msr-sample.csv", "open-loop replay mode: trace file to replay")
	traceFormat := flag.String("trace-format", "auto", "open-loop replay mode: trace format (auto, native, msr, fiu)")
	qd := flag.Int("qd", 4, "open-loop replay mode: host submission queue count")
	speedup := flag.Float64("speedup", 1, "open-loop replay mode: divide recorded inter-arrival times by this factor")
	gcCompare := flag.Bool("gccompare", false, "GC comparison mode: sweep GC policies × streams over GC-heavy workloads (skips figures)")
	gcPolicy := flag.String("gc-policy", "", "GC victim policy (greedy, cost-benefit, fifo); comma-separated list in -gccompare mode (default: all)")
	gcStreams := flag.String("gc-streams", "", "hot/cold GC destination stream count; comma-separated list in -gccompare mode (default: 1,4)")
	gcWorkloads := flag.String("gc-workloads", "", "-gccompare mode: comma-separated timed workloads (default: zipf-hot,mixed-rw)")
	micro := flag.Bool("micro", false, "run at micro (fastest, CI smoke) scale")
	gammaTune := flag.Bool("gammatune", false, "adaptive-γ sweep mode: static γ grid (-gammas) vs the per-group autotune controller (skips figures)")
	gammas := flag.String("gammas", "0,2,4,8,16", "-gammatune mode: comma-separated static γ grid")
	bitmap := flag.Bool("bitmap", true, "-gammatune mode: add an autotune+bitmap cell per workload (predicted-exact bitmaps + GC-time relearning) and score the PR 9 gate")
	autotune := flag.Bool("autotune", false, "open-loop replay mode: run LeaFTL with the adaptive per-group γ controller")
	gammaTarget := flag.Float64("gamma-target", 0, "autotune controller's tolerated miss-per-read ratio (0 = default 0.02)")
	tuneWorkloads := flag.String("tune-workloads", "", "-gammatune mode: comma-separated workloads (zipf-hot, strided, msr-replay; default: zipf-hot,strided)")
	memSweep := flag.Bool("memsweep", false, "memory sweep mode: cap mapping DRAM at -mapping-budget and compare schemes under demand paging (skips figures)")
	mappingBudget := flag.String("mapping-budget", "", "-memsweep mode: comma-separated budgets; values ≤ 8 are fractions of each scheme's full mapping size, larger values absolute bytes (default: 0.125,0.25,0.5,1)")
	memSchemes := flag.String("mem-schemes", "", "-memsweep mode: comma-separated schemes (default: LeaFTL,DFTL,SFTL)")
	memWorkloads := flag.String("mem-workloads", "", "-memsweep mode: comma-separated timed workloads (default: zipf-hot,mixed-rw)")
	journal := flag.Bool("journal", true, "openloop/gccompare/memsweep modes: persist LeaFTL's dirty mapping groups as delta records in dedicated translation blocks (-journal=false restores the full-image writeback path)")
	torture := flag.Bool("torture", false, "reliability mode: seeded crash-torture matrix + fault-injection sweep (skips figures)")
	crashPoints := flag.Int("crash-points", 0, "-torture mode: crashes injected per matrix cell (0 = default 5)")
	faultRBER := flag.String("fault-rber", "", "-torture mode: comma-separated base RBERs for the fault sweep (default: 1e-7,1e-5,5e-5,1e-4,5e-4)")
	faultSeed := flag.Int64("fault-seed", 0, "-torture mode: fault-model seed (0 = use -seed)")
	scrubThreshold := flag.Int("scrub-threshold", 0, "-torture mode: read-disturb scrub threshold in block reads (0 = default 5000)")
	coreSweep := flag.Bool("coresweep", false, "core-count sweep mode: replay a timed workload through the real multi-queue front end at each -workers count (skips figures)")
	workers := flag.String("workers", "", "-coresweep mode: comma-separated worker/queue-pair counts (default 1,2,4,8); single value in -openloop/-torture/-diesweep modes drives replay through that many real queue pairs")
	sweepWorkload := flag.String("sweep-workload", "zipf-hot", "-coresweep/-diesweep modes: timed workload to replay")
	dieSweep := flag.Bool("diesweep", false, "die sweep mode: replay a timed workload across -dies × -planes flash geometries, with a budgeted arm measuring map-op/data-op overlap (skips figures)")
	dieCounts := flag.String("dies", "", "-diesweep mode: comma-separated dies-per-channel counts (default 1,2,4)")
	planes := flag.Int("planes", 0, "-diesweep mode: planes per die, applied to every row (default 2)")
	flag.Parse()

	scaleOf := func() experiments.Scale {
		switch {
		case *full:
			return experiments.FullScale()
		case *micro:
			return experiments.MicroScale()
		default:
			return experiments.QuickScale()
		}
	}

	if *dieSweep {
		// Like -coresweep, the sweep saturates the one-die baseline by
		// default (4x); an explicit -speedup still wins.
		sp := 0.0
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "speedup" {
				sp = *speedup
			}
		})
		if err := runDieSweep(scaleOf(), *dieCounts, *planes, *workers, *sweepWorkload, *gamma, sp, *seed, *markdown, *jsonOut); err != nil {
			fmt.Fprintf(os.Stderr, "leaftl-bench: diesweep: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *coreSweep {
		list := *workers
		if list == "" {
			list = "1,2,4,8"
		}
		// The sweep saturates a single worker by default (4x); an explicit
		// -speedup still wins.
		sp := 0.0
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "speedup" {
				sp = *speedup
			}
		})
		if err := runCoreSweep(scaleOf(), list, *sweepWorkload, *gamma, sp, *seed, *markdown, *jsonOut); err != nil {
			fmt.Fprintf(os.Stderr, "leaftl-bench: coresweep: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *torture {
		w := 0
		if *workers != "" {
			var err error
			if w, err = strconv.Atoi(*workers); err != nil {
				fmt.Fprintf(os.Stderr, "leaftl-bench: torture: -workers %q: want a single integer\n", *workers)
				os.Exit(1)
			}
		}
		if err := runTorture(scaleOf(), *crashPoints, *faultRBER, *faultSeed, *scrubThreshold, *gamma, *seed, *markdown, *jsonOut, w); err != nil {
			fmt.Fprintf(os.Stderr, "leaftl-bench: torture: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *gammaTune {
		if err := runGammaTune(scaleOf(), *gammas, *gamma, *gammaTarget, *tuneWorkloads, *tracePath, *bitmap, *qd, *speedup, *seed, *markdown, *jsonOut); err != nil {
			fmt.Fprintf(os.Stderr, "leaftl-bench: gammatune: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *memSweep {
		if err := runMemSweep(scaleOf(), *mappingBudget, *memSchemes, *memWorkloads, *qd, *speedup, *gamma, *seed, *journal, *markdown, *jsonOut); err != nil {
			fmt.Fprintf(os.Stderr, "leaftl-bench: memsweep: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *gcCompare {
		if err := runGCCompare(scaleOf(), *gcPolicy, *gcStreams, *gcWorkloads, *qd, *speedup, *gamma, *seed, *journal, *markdown, *jsonOut); err != nil {
			fmt.Fprintf(os.Stderr, "leaftl-bench: gccompare: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *openloop {
		w := 0
		if *workers != "" {
			var err error
			if w, err = strconv.Atoi(*workers); err != nil {
				fmt.Fprintf(os.Stderr, "leaftl-bench: openloop: -workers %q: want a single integer\n", *workers)
				os.Exit(1)
			}
		}
		if err := runOpenLoop(*tracePath, *traceFormat, *qd, *speedup, *gamma, *seed, *markdown, *jsonOut, *gcPolicy, *gcStreams, *autotune, *gammaTarget, w, *journal); err != nil {
			fmt.Fprintf(os.Stderr, "leaftl-bench: openloop: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *parallel > 0 {
		if err := runParallel(*parallel, *shards, *gamma, *seed, *jsonOut); err != nil {
			fmt.Fprintf(os.Stderr, "leaftl-bench: parallel: %v\n", err)
			os.Exit(1)
		}
		return
	}

	scale := scaleOf()
	s := experiments.NewSuite(scale, *seed)

	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			want[id] = true
		}
	}
	selected := func(ids ...string) bool {
		if len(want) == 0 {
			return true
		}
		for _, id := range ids {
			if want[id] {
				return true
			}
		}
		return false
	}

	emit := func(t experiments.Table, err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "leaftl-bench: %s: %v\n", t.ID, err)
			os.Exit(1)
		}
		if *markdown {
			fmt.Println(t.Markdown())
		} else {
			fmt.Println(t.String())
		}
	}

	start := time.Now()
	if selected("fig5") {
		emit(s.Fig5SegmentLengths())
	}
	if selected("fig10") {
		emit(s.Fig10CRBSizes())
	}
	if selected("fig12") {
		emit(s.Fig12LevelCounts())
	}
	if selected("fig15") {
		emit(s.Fig15MemoryReduction())
	}
	if selected("fig16", "fig16a", "fig16b") {
		a, b, err := s.Fig16Performance()
		emit(a, err)
		emit(b, nil)
	}
	if selected("fig17") {
		emit(s.Fig17RealSSD())
	}
	if selected("fig18") {
		emit(s.Fig18LatencyCDF())
	}
	if selected("fig19") {
		emit(s.Fig19GammaMemory())
	}
	if selected("fig20") {
		emit(s.Fig20SegmentMix())
	}
	if selected("fig21") {
		emit(s.Fig21GammaPerf())
	}
	if selected("fig22", "fig22a", "fig22b") {
		a, b, err := s.Fig22Sensitivity()
		emit(a, err)
		emit(b, nil)
	}
	if selected("fig23", "fig23a", "fig23b") {
		a, b, err := s.Fig23LookupOverhead()
		emit(a, err)
		emit(b, nil)
	}
	if selected("fig24") {
		emit(s.Fig24Misprediction())
	}
	if selected("fig25") {
		emit(s.Fig25WAF())
	}
	if selected("table3") {
		emit(s.Table3Microbench())
	}
	if selected("ablation-sort") {
		emit(s.AblationBufferSort())
	}
	if selected("ablation-compaction") {
		emit(s.AblationCompaction())
	}
	if selected("ablation-log") {
		emit(s.AblationLogStructured())
	}
	if selected("recovery") {
		emit(s.RecoveryExperiment())
	}
	fmt.Fprintf(os.Stderr, "leaftl-bench: completed in %v (scale=%s)\n", time.Since(start).Round(time.Millisecond), scale.Name)
}
