package main

import (
	"encoding/json"
	"fmt"
	"os"

	"leaftl/internal/experiments"
)

// tortureJSON is the machine-readable form of one torture + fault-sweep
// run (scripts/torture.sh stitches it into BENCH_PR<N>.json).
type tortureJSON struct {
	Mode         string            `json:"mode"`
	Scale        string            `json:"scale"`
	Seed         int64             `json:"seed"`
	FaultSeed    int64             `json:"fault_seed"`
	Workers      int               `json:"workers,omitempty"`
	CrashPoints  int               `json:"crash_points_per_cell"`
	TotalCrashes int               `json:"total_crashes"`
	Points       map[string]int    `json:"crash_point_histogram"`
	Cells        []tortureCellJSON `json:"cells"`
	Faults       []faultRunJSON    `json:"fault_sweep"`
}

// tortureCellJSON is one policy × budget × autotune cell.
type tortureCellJSON struct {
	Policy           string         `json:"policy"`
	Budget           float64        `json:"budget"`
	Autotune         bool           `json:"autotune"`
	Seed             int64          `json:"seed"`
	Crashes          int            `json:"crashes"`
	Points           map[string]int `json:"points"`
	MappingsRebuilt  int            `json:"mappings_rebuilt"`
	MappingsRestored int            `json:"mappings_restored"`
	VerifiedLPAs     int            `json:"verified_lpas"`
	BufferedLost     int            `json:"buffered_lost"`
}

// faultRunJSON is one RBER point of the aged-device reliability sweep.
type faultRunJSON struct {
	RBER             float64 `json:"rber"`
	Seed             int64   `json:"seed"`
	CorrectedReads   uint64  `json:"corrected_reads"`
	ECCRetries       uint64  `json:"ecc_retries"`
	DataUECC         uint64  `json:"data_uecc"`
	OOBUECC          uint64  `json:"oob_uecc"`
	HostUECCs        uint64  `json:"host_ueccs"`
	OOBReconstructed uint64  `json:"oob_reconstructed"`
	ScrubRelocations uint64  `json:"scrub_relocations"`
	RetiredBlocks    uint64  `json:"retired_blocks"`
	GCDataLoss       uint64  `json:"gc_data_loss"`
	ProgramFails     uint64  `json:"program_fails"`
	EraseFails       uint64  `json:"erase_fails"`
	WAF              float64 `json:"waf"`
}

// runTorture is the leaftl-bench reliability mode: the seeded
// crash-torture matrix (GC policies × mapping budgets × autotune, each
// cell crash-killed, recovered and differentially verified) followed by
// the aged-device fault-injection sweep over -fault-rber.
func runTorture(scale experiments.Scale, crashPoints int, faultRBER string, faultSeed int64, scrubThreshold int, gamma int, seed int64, markdown bool, jsonPath string, workers int) error {
	rbers, err := parseFloatList(faultRBER)
	if err != nil {
		return err
	}
	if faultSeed == 0 {
		faultSeed = seed
	}

	s := experiments.NewSuite(scale, seed)
	cells, tortureTable, err := s.Torture(experiments.TortureSpec{
		CrashPoints: crashPoints,
		Gamma:       gamma,
		Workers:     workers,
	})
	if err != nil {
		return err
	}
	fs := experiments.NewSuite(scale, faultSeed)
	spec := experiments.FaultSweepSpec{RBERs: rbers, Gamma: gamma}
	if scrubThreshold > 0 {
		spec.ScrubDisturbReads = uint32(scrubThreshold)
	}
	faults, faultTable, err := fs.FaultSweep(spec)
	if err != nil {
		return err
	}

	for _, t := range []experiments.Table{tortureTable, faultTable} {
		if markdown {
			fmt.Println(t.Markdown())
		} else {
			fmt.Println(t.String())
		}
	}

	if jsonPath == "" {
		return nil
	}
	out := tortureJSON{
		Mode: "torture", Scale: scale.Name, Seed: seed, FaultSeed: faultSeed,
		Workers: workers,
		Points:  make(map[string]int),
	}
	for _, c := range cells {
		if out.CrashPoints == 0 {
			out.CrashPoints = crashPoints
		}
		out.TotalCrashes += c.Crashes
		for p, n := range c.Points {
			out.Points[p] += n
		}
		out.Cells = append(out.Cells, tortureCellJSON{
			Policy: c.Policy, Budget: c.Budget, Autotune: c.Autotune, Seed: c.Seed,
			Crashes: c.Crashes, Points: c.Points,
			MappingsRebuilt: c.MappingsRebuilt, MappingsRestored: c.MappingsRestored,
			VerifiedLPAs: c.VerifiedLPAs, BufferedLost: c.BufferedLost,
		})
	}
	for _, r := range faults {
		out.Faults = append(out.Faults, faultRunJSON{
			RBER: r.RBER, Seed: r.Seed,
			CorrectedReads:   r.Flash.CorrectedReads,
			ECCRetries:       r.Flash.ECCRetries,
			DataUECC:         r.Flash.DataUECC,
			OOBUECC:          r.Flash.OOBUECC,
			HostUECCs:        r.HostUECCs,
			OOBReconstructed: r.Stats.OOBReconstructed,
			ScrubRelocations: r.Stats.ScrubRelocations,
			RetiredBlocks:    r.Stats.RetiredBlocks,
			GCDataLoss:       r.Stats.GCDataLoss,
			ProgramFails:     r.Flash.ProgramFails,
			EraseFails:       r.Flash.EraseFails,
			WAF:              r.WAF,
		})
	}
	enc, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if jsonPath == "-" {
		_, err = os.Stdout.Write(enc)
		return err
	}
	return os.WriteFile(jsonPath, enc, 0o644)
}
