// Package sftl implements the SFTL baseline (Jiang et al., MSST 2011;
// paper §4.1): a page-level mapping that exploits the spatial locality of
// strictly sequential access patterns to condense translation pages.
//
// The LPA space is divided into regions of one translation page's worth
// of entries. A region whose mappings form strictly sequential runs
// (lpa+1 → ppa+1) is stored as one 8-byte head entry per run instead of
// one entry per page. DRAM caches whole compressed regions under a byte
// budget; a miss reads the region's translation page, and dirty region
// evictions write it back.
package sftl

import (
	"leaftl/internal/addr"
	"leaftl/internal/ftl"
)

// EntryBytes is the size of one mapping or run-head entry.
const EntryBytes = 8

// Region identifies one translation-page-sized range of LPAs.
type Region uint32

// SFTL is the spatial-locality-aware FTL.
type SFTL struct {
	table          map[addr.LPA]addr.PPA
	runs           map[Region]int // compressed size, in run entries
	cache          *ftl.ByteLRU[Region, struct{}]
	entriesPerPage int
}

// New returns an SFTL with the given flash page size (region granularity)
// and region-cache byte budget.
func New(pageSize, budget int) *SFTL {
	epp := pageSize / EntryBytes
	if epp < 1 {
		epp = 1
	}
	return &SFTL{
		table:          make(map[addr.LPA]addr.PPA),
		runs:           make(map[Region]int),
		cache:          ftl.NewByteLRU[Region, struct{}](budget),
		entriesPerPage: epp,
	}
}

// Name implements ftl.Scheme.
func (s *SFTL) Name() string { return "SFTL" }

func (s *SFTL) region(lpa addr.LPA) Region {
	return Region(lpa / addr.LPA(s.entriesPerPage))
}

// regionBytes is the DRAM cost of caching a region: 8 bytes per run.
func (s *SFTL) regionBytes(r Region) int {
	n := s.runs[r]
	if n == 0 {
		n = 1
	}
	return n * EntryBytes
}

// Translate implements ftl.Scheme. Hitting a cached region is free; a
// miss loads the region's (compressed) translation page.
func (s *SFTL) Translate(lpa addr.LPA) (ftl.Translation, bool) {
	var tr ftl.Translation
	tr.Levels = 1
	ppa, ok := s.table[lpa]
	if !ok {
		return tr, false
	}
	tr.PPA = ppa
	r := s.region(lpa)
	if s.cache.Contains(r) {
		s.cache.Get(r) // touch recency
		return tr, true
	}
	tr.Cost.AddRead(uint64(r))
	tr.Cost.Add(s.install(r, false))
	return tr, true
}

func (s *SFTL) install(r Region, dirty bool) ftl.Cost {
	var cost ftl.Cost
	for _, ev := range s.cache.Put(r, struct{}{}, s.regionBytes(r), dirty) {
		if ev.Dirty {
			cost.AddWrite(uint64(ev.Key))
		}
	}
	return cost
}

// Commit implements ftl.Scheme: updates the table, recomputes the run
// count of every touched region, and dirties those regions in the cache.
func (s *SFTL) Commit(pairs []addr.Mapping) ftl.Cost {
	var cost ftl.Cost
	touched := make(map[Region]bool)
	for _, p := range pairs {
		s.table[p.LPA] = p.PPA
		touched[s.region(p.LPA)] = true
	}
	for r := range touched {
		s.runs[r] = s.countRuns(r)
		if s.cache.Contains(r) {
			// Re-put to refresh the cached size and dirty it.
			cost.Add(s.install(r, true))
			continue
		}
		cost.Add(s.install(r, true))
	}
	return cost
}

// countRuns scans one region and counts maximal strictly sequential runs
// (the compressed representation's entry count).
func (s *SFTL) countRuns(r Region) int {
	base := addr.LPA(r) * addr.LPA(s.entriesPerPage)
	runs := 0
	prevMapped := false
	var prevPPA addr.PPA
	for i := 0; i < s.entriesPerPage; i++ {
		ppa, ok := s.table[base+addr.LPA(i)]
		switch {
		case !ok:
			prevMapped = false
		case !prevMapped || ppa != prevPPA+1:
			runs++
			prevMapped = true
			prevPPA = ppa
		default:
			prevPPA = ppa
		}
	}
	return runs
}

// SetBudget implements ftl.Scheme.
func (s *SFTL) SetBudget(bytes int) {
	s.cache.Resize(bytes)
}

// MemoryBytes implements ftl.Scheme.
func (s *SFTL) MemoryBytes() int { return s.cache.Used() }

// FullSizeBytes implements ftl.Scheme: the sum of all regions'
// compressed sizes (Figure 15's SFTL bar).
func (s *SFTL) FullSizeBytes() int {
	total := 0
	for _, n := range s.runs {
		total += n * EntryBytes
	}
	return total
}

// Maintain implements ftl.Scheme; SFTL has no periodic work.
func (s *SFTL) Maintain(uint64) ftl.Cost { return ftl.Cost{} }

var _ ftl.Scheme = (*SFTL)(nil)
