package sftl

import (
	"math/rand"
	"testing"

	"leaftl/internal/addr"
)

func commit(s *SFTL, start addr.LPA, ppa addr.PPA, n int) {
	pairs := make([]addr.Mapping, n)
	for i := 0; i < n; i++ {
		pairs[i] = addr.Mapping{LPA: start + addr.LPA(i), PPA: ppa + addr.PPA(i)}
	}
	s.Commit(pairs)
}

func TestSequentialCondensesToOneRun(t *testing.T) {
	s := New(4096, 1<<20)
	commit(s, 0, 1000, 512) // exactly one region, strictly sequential
	if got := s.FullSizeBytes(); got != EntryBytes {
		t.Errorf("sequential region size = %d, want %d", got, EntryBytes)
	}
	tr, ok := s.Translate(300)
	if !ok || tr.PPA != 1300 {
		t.Fatalf("Translate(300) = %+v, %v", tr, ok)
	}
}

func TestRandomRegionCostsPerEntry(t *testing.T) {
	s := New(4096, 1<<20)
	rng := rand.New(rand.NewSource(2))
	// Scattered PPAs: every entry its own run.
	for i := 0; i < 512; i++ {
		s.Commit([]addr.Mapping{{LPA: addr.LPA(i), PPA: addr.PPA(rng.Intn(1 << 24))}})
	}
	if got := s.FullSizeBytes(); got < 512*EntryBytes/2 {
		t.Errorf("random region size = %d, suspiciously small", got)
	}
}

func TestOverwriteSplitsRun(t *testing.T) {
	s := New(4096, 1<<20)
	commit(s, 0, 1000, 512)
	// Overwrite one page in the middle: the run splits into three.
	s.Commit([]addr.Mapping{{LPA: 100, PPA: 99999}})
	if got := s.FullSizeBytes(); got != 3*EntryBytes {
		t.Errorf("size after split = %d, want %d", got, 3*EntryBytes)
	}
	tr, _ := s.Translate(100)
	if tr.PPA != 99999 {
		t.Errorf("Translate(100) = %d", tr.PPA)
	}
	tr, _ = s.Translate(101)
	if tr.PPA != 1101 {
		t.Errorf("Translate(101) = %d", tr.PPA)
	}
}

func TestMissCostsMetaRead(t *testing.T) {
	s := New(4096, 8) // fits one 8-byte region descriptor
	commit(s, 0, 0, 512)
	commit(s, 512, 1000, 512) // evicts region 0
	tr, ok := s.Translate(0)
	if !ok || tr.Cost.MetaReads != 1 {
		t.Fatalf("evicted region translate = %+v", tr)
	}
	// Now cached: the next lookup in the same region is free.
	tr, _ = s.Translate(1)
	if tr.Cost.MetaReads != 0 {
		t.Errorf("cached region lookup cost %d reads", tr.Cost.MetaReads)
	}
}

func TestMemoryBounded(t *testing.T) {
	s := New(4096, 64)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 3000; i++ {
		s.Commit([]addr.Mapping{{LPA: addr.LPA(rng.Intn(1 << 16)), PPA: addr.PPA(rng.Intn(1 << 20))}})
		if s.MemoryBytes() > 64 {
			t.Fatalf("region cache exceeded budget: %d", s.MemoryBytes())
		}
	}
}

func TestRandomizedAgainstModel(t *testing.T) {
	s := New(4096, 2048)
	model := map[addr.LPA]addr.PPA{}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 20000; i++ {
		if rng.Intn(2) == 0 {
			lpa := addr.LPA(rng.Intn(8192))
			ppa := addr.PPA(rng.Intn(1 << 20))
			s.Commit([]addr.Mapping{{LPA: lpa, PPA: ppa}})
			model[lpa] = ppa
		} else {
			lpa := addr.LPA(rng.Intn(8192))
			tr, ok := s.Translate(lpa)
			want, inModel := model[lpa]
			if ok != inModel || (ok && tr.PPA != want) {
				t.Fatalf("op %d: Translate(%d) = %+v/%v, want %d/%v", i, lpa, tr, ok, want, inModel)
			}
		}
	}
}

func TestFullSizeSmallerThanDFTLOnSequential(t *testing.T) {
	s := New(4096, 1<<20)
	for r := 0; r < 16; r++ {
		commit(s, addr.LPA(r*512), addr.PPA(r*512), 512)
	}
	dftlSize := 16 * 512 * EntryBytes
	if got := s.FullSizeBytes(); got*10 > dftlSize {
		t.Errorf("SFTL size %d not ≪ DFTL size %d on sequential workload", got, dftlSize)
	}
}
