// Package addr defines the logical and physical page address types shared
// by every layer of the LeaFTL stack.
//
// The paper (§2) uses 4-byte logical page addresses (LPA) and 4-byte
// physical page addresses (PPA); a page-level mapping entry is therefore
// 8 bytes, the yardstick every memory-reduction number in the evaluation
// is measured against.
package addr

import "math"

// LPA is a logical page address: the page index in the block device's
// logical address space as seen by the host.
type LPA uint32

// PPA is a physical page address: a flat index over every flash page in
// the SSD (channel-major, block, then page; see package flash).
type PPA uint32

// InvalidPPA marks "no mapping". It is never a valid flash location.
const InvalidPPA PPA = math.MaxUint32

// InvalidLPA marks an unused out-of-band reverse-mapping slot (the paper
// stores a null entry for OOB neighbors that fall outside the block).
const InvalidLPA LPA = math.MaxUint32

// GroupSize is the number of contiguous LPAs per segment group (paper
// §3.2): starting LPAs are stored as a 1-byte offset within a group of
// 2^8 = 256 pages, which is what shrinks a segment to 8 bytes.
const GroupSize = 256

// GroupID identifies one 256-LPA group in the logical space.
type GroupID uint32

// Group returns the group that contains lpa.
func Group(lpa LPA) GroupID { return GroupID(lpa / GroupSize) }

// GroupBase returns the first LPA of group g.
func GroupBase(g GroupID) LPA { return LPA(g) * GroupSize }

// Offset returns lpa's offset within its group, in [0, GroupSize).
func Offset(lpa LPA) uint8 { return uint8(lpa % GroupSize) }

// Mapping is a single LPA→PPA translation, the unit the learning procedure
// consumes (paper Figure 1).
type Mapping struct {
	LPA LPA
	PPA PPA
}

// PageState tracks the lifecycle of one flash page.
type PageState uint8

// Flash page lifecycle: free until written, valid while it holds the live
// copy of an LPA, invalid after being superseded, until its block is erased.
const (
	PageFree PageState = iota
	PageValid
	PageInvalid
)

func (s PageState) String() string {
	switch s {
	case PageFree:
		return "free"
	case PageValid:
		return "valid"
	case PageInvalid:
		return "invalid"
	default:
		return "unknown"
	}
}
