package addr

import "testing"

func TestGroupArithmetic(t *testing.T) {
	cases := []struct {
		lpa    LPA
		group  GroupID
		offset uint8
	}{
		{0, 0, 0},
		{255, 0, 255},
		{256, 1, 0},
		{1000, 3, 232},
		{1 << 20, 4096, 0},
	}
	for _, c := range cases {
		if g := Group(c.lpa); g != c.group {
			t.Errorf("Group(%d) = %d, want %d", c.lpa, g, c.group)
		}
		if o := Offset(c.lpa); o != c.offset {
			t.Errorf("Offset(%d) = %d, want %d", c.lpa, o, c.offset)
		}
	}
	for lpa := LPA(0); lpa < 4*GroupSize; lpa++ {
		if got := GroupBase(Group(lpa)) + LPA(Offset(lpa)); got != lpa {
			t.Fatalf("base+offset of %d = %d", lpa, got)
		}
	}
}

func TestPageStateString(t *testing.T) {
	cases := map[PageState]string{
		PageFree:      "free",
		PageValid:     "valid",
		PageInvalid:   "invalid",
		PageState(99): "unknown",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", s, got, want)
		}
	}
}

func TestSentinels(t *testing.T) {
	if InvalidPPA != 1<<32-1 || InvalidLPA != 1<<32-1 {
		t.Error("sentinels must be the max 4-byte values (paper: 4B addresses)")
	}
}
