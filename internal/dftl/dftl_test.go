package dftl

import (
	"math/rand"
	"testing"

	"leaftl/internal/addr"
)

func commit(d *DFTL, start addr.LPA, ppa addr.PPA, n int) {
	pairs := make([]addr.Mapping, n)
	for i := 0; i < n; i++ {
		pairs[i] = addr.Mapping{LPA: start + addr.LPA(i), PPA: ppa + addr.PPA(i)}
	}
	d.Commit(pairs)
}

func TestTranslateHitAndMiss(t *testing.T) {
	d := New(4096, 64) // 8 entries fit
	commit(d, 0, 100, 4)
	// Just-committed entries are cached.
	tr, ok := d.Translate(2)
	if !ok || tr.PPA != 102 || tr.Cost.MetaReads != 0 {
		t.Fatalf("cached translate = %+v, %v", tr, ok)
	}
	// Push them out with other entries.
	commit(d, 1000, 5000, 8)
	tr, ok = d.Translate(2)
	if !ok || tr.PPA != 102 {
		t.Fatalf("translate after eviction = %+v, %v", tr, ok)
	}
	if tr.Cost.MetaReads != 1 {
		t.Errorf("evicted entry cost %d meta reads, want 1", tr.Cost.MetaReads)
	}
	if _, ok := d.Translate(99999); ok {
		t.Error("unmapped LPA translated")
	}
}

func TestDirtyEvictionBatches(t *testing.T) {
	// CMT of 2 entries; committing 3 entries of the same translation
	// page must writeback at most once per batch thanks to batching.
	d := New(4096, 16)
	var cost int
	pairs := []addr.Mapping{{LPA: 0, PPA: 10}, {LPA: 1, PPA: 11}, {LPA: 2, PPA: 12}}
	c := d.Commit(pairs)
	cost += c.MetaWrites
	if cost > 1 {
		t.Errorf("same-page dirty evictions cost %d writes, want ≤ 1", cost)
	}
}

func TestOverwriteTakesLatest(t *testing.T) {
	d := New(4096, 1024)
	commit(d, 5, 100, 1)
	commit(d, 5, 200, 1)
	tr, ok := d.Translate(5)
	if !ok || tr.PPA != 200 {
		t.Fatalf("translate = %+v", tr)
	}
}

func TestFullSizeBytes(t *testing.T) {
	d := New(4096, 1024)
	commit(d, 0, 0, 100)
	if got := d.FullSizeBytes(); got != 100*EntryBytes {
		t.Errorf("FullSizeBytes = %d, want %d", got, 100*EntryBytes)
	}
	// Overwrites do not grow the table.
	commit(d, 0, 999, 100)
	if got := d.FullSizeBytes(); got != 100*EntryBytes {
		t.Errorf("FullSizeBytes after overwrite = %d", got)
	}
}

func TestMemoryBounded(t *testing.T) {
	d := New(4096, 256)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		commit(d, addr.LPA(rng.Intn(100000)), addr.PPA(i), 1)
		if d.MemoryBytes() > 256 {
			t.Fatalf("CMT exceeded budget: %d", d.MemoryBytes())
		}
	}
}

func TestRandomizedAgainstModel(t *testing.T) {
	d := New(4096, 512)
	model := map[addr.LPA]addr.PPA{}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 20000; i++ {
		if rng.Intn(2) == 0 {
			lpa := addr.LPA(rng.Intn(4096))
			ppa := addr.PPA(rng.Intn(1 << 20))
			d.Commit([]addr.Mapping{{LPA: lpa, PPA: ppa}})
			model[lpa] = ppa
		} else {
			lpa := addr.LPA(rng.Intn(4096))
			tr, ok := d.Translate(lpa)
			want, inModel := model[lpa]
			if ok != inModel {
				t.Fatalf("op %d: Translate(%d) ok=%v model=%v", i, lpa, ok, inModel)
			}
			if ok && tr.PPA != want {
				t.Fatalf("op %d: Translate(%d) = %d, want %d", i, lpa, tr.PPA, want)
			}
		}
	}
}
