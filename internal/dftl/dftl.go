// Package dftl implements the DFTL baseline (Gupta et al., ASPLOS 2009;
// paper §4.1): a page-level mapping whose full table lives in flash
// translation pages, with a byte-budgeted Cached Mapping Table (CMT) of
// recently used entries in DRAM.
//
// A translate miss costs one translation-page read. Evicting a dirty CMT
// entry costs one translation-page write; DFTL's batching optimization is
// modeled faithfully — the writeback cleans every cached dirty entry that
// belongs to the same translation page.
package dftl

import (
	"leaftl/internal/addr"
	"leaftl/internal/ftl"
)

// EntryBytes is the size of one page-level mapping entry: 4-byte LPA +
// 4-byte PPA (paper §2).
const EntryBytes = 8

// DFTL is the demand-based page-level FTL.
type DFTL struct {
	// table is the authoritative mapping, conceptually stored in flash
	// translation pages and indexed by the GMD.
	table map[addr.LPA]addr.PPA
	cmt   *ftl.ByteLRU[addr.LPA, addr.PPA]
	// entriesPerPage is how many mapping entries one translation page
	// holds (flash page size / 8).
	entriesPerPage int
}

// New returns a DFTL with the given flash page size (for translation-page
// granularity) and CMT byte budget.
func New(pageSize, budget int) *DFTL {
	epp := pageSize / EntryBytes
	if epp < 1 {
		epp = 1
	}
	return &DFTL{
		table:          make(map[addr.LPA]addr.PPA),
		cmt:            ftl.NewByteLRU[addr.LPA, addr.PPA](budget),
		entriesPerPage: epp,
	}
}

// Name implements ftl.Scheme.
func (d *DFTL) Name() string { return "DFTL" }

// transPage returns the translation page index holding lpa's entry.
func (d *DFTL) transPage(lpa addr.LPA) addr.LPA {
	return lpa / addr.LPA(d.entriesPerPage)
}

// Translate implements ftl.Scheme. A CMT hit is free; a miss reads the
// translation page from flash and caches the entry, evicting LRU entries
// (a dirty eviction triggers one batched translation-page writeback).
func (d *DFTL) Translate(lpa addr.LPA) (ftl.Translation, bool) {
	var tr ftl.Translation
	tr.Levels = 1
	if ppa, ok := d.cmt.Get(lpa); ok {
		tr.PPA = ppa
		return tr, true
	}
	ppa, ok := d.table[lpa]
	if !ok {
		return tr, false
	}
	tr.Cost.AddRead(uint64(d.transPage(lpa))) // demand-load the translation page
	tr.Cost.Add(d.install(lpa, ppa, false))
	tr.PPA = ppa
	return tr, true
}

// install caches one entry and converts dirty evictions into batched
// translation-page writes.
func (d *DFTL) install(lpa addr.LPA, ppa addr.PPA, dirty bool) ftl.Cost {
	var cost ftl.Cost
	for _, ev := range d.cmt.Put(lpa, ppa, EntryBytes, dirty) {
		if !ev.Dirty {
			continue
		}
		// Write back the victim's translation page; every cached dirty
		// entry of that page rides along (DFTL's batching).
		tp := d.transPage(ev.Key)
		cost.AddWrite(uint64(tp))
		d.cmt.CleanMatching(func(k addr.LPA) bool { return d.transPage(k) == tp })
	}
	return cost
}

// Commit implements ftl.Scheme: updates the authoritative table and
// installs the new entries in the CMT as dirty (lazy translation-page
// update — the flash copy is refreshed on eviction).
func (d *DFTL) Commit(pairs []addr.Mapping) ftl.Cost {
	var cost ftl.Cost
	for _, p := range pairs {
		d.table[p.LPA] = p.PPA
		cost.Add(d.install(p.LPA, p.PPA, true))
	}
	return cost
}

// SetBudget implements ftl.Scheme.
func (d *DFTL) SetBudget(bytes int) {
	for _, ev := range d.cmt.Resize(bytes) {
		_ = ev // budget changes happen between runs; writebacks not charged
	}
}

// MemoryBytes implements ftl.Scheme: DRAM held by the CMT.
func (d *DFTL) MemoryBytes() int { return d.cmt.Used() }

// FullSizeBytes implements ftl.Scheme: the complete page-level table,
// 8 bytes per mapped page. This is the Figure 15 yardstick.
func (d *DFTL) FullSizeBytes() int { return len(d.table) * EntryBytes }

// Maintain implements ftl.Scheme; DFTL has no periodic work.
func (d *DFTL) Maintain(uint64) ftl.Cost { return ftl.Cost{} }

var _ ftl.Scheme = (*DFTL)(nil)
