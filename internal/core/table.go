package core

import (
	"leaftl/internal/addr"
)

// Table is the learned log-structured address-mapping table (paper §3.4,
// Figure 14 structure 5+6). The LPA space is partitioned into 256-LPA
// groups; each group holds a stack of levels, newest on top. Segments
// within one level are sorted by starting LPA and never overlap; segments
// in different levels may overlap, with the upper level always holding the
// more recent mapping.
//
// Layout is chosen for the lookup path: groups live in a dense slice
// indexed by group ID (no map hashing — an SSD's LPA space is bounded and
// dense, so the pointer array costs well under a byte per logical page),
// and each level keeps a parallel array of 4-byte starting-LPA keys so
// the binary search walks a compact key array instead of striding across
// full Segment structs.
//
// Table is not safe for concurrent use by multiple writers; Lookup and the
// other read-only accessors never touch the mutation scratch, so a Table
// behind a read-write lock supports concurrent readers (see ShardedTable).
type Table struct {
	gamma   int
	groups  []*group // indexed by GroupID; nil = group never written
	nGroups int

	// bitmapOn enables predicted-exact bitmap maintenance (tune.go):
	// mutations verify each written LPA's post-insert prediction and
	// record exactness, and Lookup reports set bits instead of arming
	// hints. Off (the default), the bitmap stays all-zero and every code
	// path is byte-identical to a table without the feature.
	bitmapOn bool

	// Statistics are maintained incrementally at every point a segment
	// enters or leaves a level, a level is added or removed, or a CRB
	// mutates — Stats() and SizeBytes() are O(1) in the table size
	// (internal/experiments reads them per simulation step, and the SSD
	// device resizes its data cache from SizeBytes after every flush).
	nSegments   int
	nAccurate   int
	crbBytes    int
	totalLevels int
	levelFreq   []int // levelFreq[n] = number of groups with exactly n levels

	// Reusable scratch for the mutation path, so steady-state updates
	// perform amortized O(1) allocations. mark is a generation-stamped
	// membership set over group offsets (mark[o] == markGen ⇔ offset o is
	// in the incoming segment's LPA set): bumping markGen clears it in
	// O(1) instead of zeroing 256 bytes per victim.
	mark    [addr.GroupSize]uint64
	markGen uint64
	offs    []uint8
	victims []Segment
	edits   []boundaryEdit
	learner learnBuf

	// refitter is a second learn buffer for the bitmap path's γ=0
	// refits, which run while results of t.learner are still pending
	// insertion (a learnBuf's output is only valid until its next learn
	// call, so the nested fits need their own scratch).
	refitter learnBuf
}

// group is the per-256-LPA-group state: the level stack, the group's
// conflict-resolution buffer for approximate segments, and its adaptive-γ
// tune block (tune.go).
type group struct {
	levels []level
	crb    crb
	tune   groupTune
}

// level is one sorted, pairwise-disjoint run of segments. keys mirrors
// segs (keys[i] == the group offset of segs[i].SLPA) purely for search
// locality: a level never crosses its 256-LPA group, so one byte per key
// suffices and a whole level's keys fit in one or two cache lines.
type level struct {
	keys []uint8
	segs []Segment
}

func (l *level) len() int { return len(l.segs) }

// search returns the index of the first segment whose starting offset is
// ≥ off (pass uint16 so "offset+1" probes past 255 work).
//
// The level is itself searched with a learned guess: start offsets are
// spread over the 256-LPA group, so off·n/256 interpolates within a few
// slots of the answer on realistic workloads. Two probes either confirm
// a ±8 window around the guess — finished with a short scan over one or
// two cache lines of byte keys — or fall back to plain binary search, so
// skewed levels cost O(log n) as before.
func (l *level) search(off uint16) int {
	keys := l.keys
	lo, hi := 0, len(keys)
	if hi > 8 {
		const w = 8
		g := int(off) * hi >> 8
		if g >= hi {
			g = hi - 1
		}
		if uint16(keys[g]) < off {
			lo = g + 1
			if e := g + w; e < hi && uint16(keys[e]) >= off {
				hi = e + 1
			}
		} else {
			hi = g + 1
			if s := g - w; s >= 0 && uint16(keys[s]) < off {
				lo = s + 1
			}
		}
		if hi-lo <= w+1 {
			for lo < hi && uint16(keys[lo]) < off {
				lo++
			}
			return lo
		}
	}
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if uint16(keys[mid]) < off {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// insert places seg at position pos, keeping keys and segs in step.
func (l *level) insert(pos int, seg Segment) {
	l.keys = append(l.keys, 0)
	copy(l.keys[pos+1:], l.keys[pos:])
	l.keys[pos] = seg.Start()
	l.segs = append(l.segs, Segment{})
	copy(l.segs[pos+1:], l.segs[pos:])
	l.segs[pos] = seg
}

// remove deletes the segment at position pos.
func (l *level) remove(pos int) {
	l.keys = append(l.keys[:pos], l.keys[pos+1:]...)
	l.segs = append(l.segs[:pos], l.segs[pos+1:]...)
}

// replaceRange replaces segments [lo, hi) with seg (hi > lo).
func (l *level) replaceRange(lo, hi int, seg Segment) {
	l.keys[lo] = seg.Start()
	l.keys = append(l.keys[:lo+1], l.keys[hi:]...)
	l.segs[lo] = seg
	l.segs = append(l.segs[:lo+1], l.segs[hi:]...)
}

// LookupResult carries per-lookup diagnostics used by the paper's
// evaluation (Figure 23: levels visited; §4.5 lookup cost).
type LookupResult struct {
	// Levels is how many levels were examined, including the one that
	// answered.
	Levels int
	// Approx is true when the answering segment is approximate, i.e. the
	// returned PPA may be off by up to ±gamma and must be verified
	// against the OOB reverse mapping (§3.5).
	Approx bool
	// Redirected is true when the CRB redirected the lookup from the
	// range-matching segment to the true owning segment (Figure 9).
	Redirected bool
	// Hint is the group's armed misprediction-direction hint (true PPA −
	// predicted PPA of its recent miss streak), or 0 when unarmed. Only
	// approximate answers carry one; the device aims its first flash read
	// at PPA+Hint so a repeating miss resolves in a single read.
	Hint int
	// Exact is true when the answering segment is approximate but the
	// group's predicted-exact bitmap proves the returned PPA lands on the
	// live page: the device may issue one flash read with no OOB
	// verification probe budget. Exact answers never carry a Hint — the
	// bitmap supersedes direction guessing. Always false while the
	// bitmap is disabled.
	Exact bool
}

// NewTable returns an empty mapping table with the given error bound
// gamma (in pages). gamma = 0 admits only accurate segments.
func NewTable(gamma int) *Table {
	if gamma < 0 {
		gamma = 0
	}
	return &Table{
		gamma:     gamma,
		levelFreq: make([]int, 1),
	}
}

// Gamma returns the table's error bound.
func (t *Table) Gamma() int { return t.gamma }

// EnableExactBitmap turns on predicted-exact bitmap maintenance for the
// life of the table (there is no way back: disabling would leave stale
// set bits). Bits already present — e.g. restored from a v3 snapshot
// taken by a bitmap-enabled table — become live immediately.
func (t *Table) EnableExactBitmap() { t.bitmapOn = true }

// ExactBitmapEnabled reports whether the table maintains predicted-exact
// bitmaps.
func (t *Table) ExactBitmapEnabled() bool { return t.bitmapOn }

// Update learns segments for a batch of new LPA→PPA mappings and inserts
// them at the top level (paper §3.7 "Creation" + "Insert/Update"). pairs
// must be sorted by LPA with unique LPAs; the device's data buffer
// guarantees this (§3.3). It returns the number of segments created.
//
// Each group's run of the batch is fitted at that group's effective γ
// (GroupGamma) — the global bound unless the adaptive-γ controller has
// retuned the group. Learning already splits per group internally, so
// with every group at the global γ this is identical to a whole-batch
// learn.
func (t *Table) Update(pairs []addr.Mapping) int {
	n := 0
	for i := 0; i < len(pairs); {
		gid := addr.Group(pairs[i].LPA)
		j := i + 1
		for j < len(pairs) && addr.Group(pairs[j].LPA) == gid {
			j++
		}
		learned := t.learner.learn(pairs[i:j], t.GroupGamma(gid))
		n += t.insertRun(learned, pairs[i:j])
		t.refreshExactBits(pairs[i:j])
		i = j
	}
	return n
}

// Relearn re-fits groups from a GC relocation batch: the device moved
// the surviving pages of a victim block in ascending-LPA order, so
// pairs is a freshly sequential layout the learner can fit tightly at
// each group's tuned γ. Unlike Update, every touched group is compacted
// immediately — the new segments merge down and displace the stale
// scattered claims relocation just rewrote, so GC churn *tightens* the
// model instead of stacking levels — and the relocated slots' exactness
// is re-verified into the bitmap (relocated runs usually learn at γ=0
// strides, so relearned groups come out with their moved span fully
// set). pairs must be sorted by LPA with unique LPAs, like Update. It
// returns the segments created and the number of groups re-fitted.
func (t *Table) Relearn(pairs []addr.Mapping) (segs, groups int) {
	for i := 0; i < len(pairs); {
		gid := addr.Group(pairs[i].LPA)
		j := i + 1
		for j < len(pairs) && addr.Group(pairs[j].LPA) == gid {
			j++
		}
		learned := t.learner.learn(pairs[i:j], t.GroupGamma(gid))
		segs += t.insertRun(learned, pairs[i:j])
		if g := t.lookupGroup(gid); g != nil {
			t.compactGroup(g)
		}
		t.refreshExactBits(pairs[i:j])
		groups++
		i = j
	}
	return segs, groups
}

// insertRun inserts a freshly fitted run, returning the number of
// segments placed. With the bitmap off it is a plain insert loop. With
// the bitmap on, each approximate segment is triaged before it reaches
// the table (exactify): segments whose predictions match every
// committed pair are kept as-is (the γ slack went unused, the
// compression is free); mispredicting ones are kept only when keeping
// them is cheaper than replacing them with a γ=0 refit of their pairs.
// The byte costs compared are keep = segment + CRB claims + the
// accurate patches refreshExactBits will stack over the failures,
// versus replace = one accurate segment per stride-clean run of the
// whole point set. Without the triage, verify-at-learn would pay for
// both encodings on every badly fitted segment (the 17%-over-γ=16
// table the first bench run measured); with only the all-or-nothing
// version, near-miss fits lose their approximate compression entirely.
func (t *Table) insertRun(learned []Learned, run []addr.Mapping) int {
	if !t.bitmapOn {
		for k := range learned {
			t.insertLearned(learned[k])
		}
		return len(learned)
	}
	n := 0
	for k := range learned {
		ls := learned[k]
		if ls.Seg.Accurate() {
			t.insertLearned(ls)
			n++
			continue
		}
		sub := pairsFor(run, ls.LPAs)
		var failed []addr.Mapping
		for _, m := range sub {
			if ls.Seg.Predict(m.LPA) != m.PPA {
				failed = append(failed, m)
			}
		}
		costKeep := SegmentBytes + len(sub) + SegmentBytes*strideRuns(failed)
		costReplace := SegmentBytes * strideRuns(sub)
		if len(failed) == 0 || costKeep <= costReplace {
			t.insertLearned(ls)
			n++
			continue
		}
		// The refit runs on the spare buffer: learned still aliases
		// t.learner's scratch, and each refit is inserted before the
		// next one reuses the buffer.
		refit := t.refitter.learn(sub, 0)
		for r := range refit {
			t.insertLearned(refit[r])
		}
		n += len(refit)
	}
	return n
}

// strideRuns counts the maximal stride-clean runs of an LPA-sorted pair
// set — arithmetic LPA progressions mapped to consecutive PPAs — which
// is the number of accurate segments a γ=0 fit of those pairs produces.
func strideRuns(pairs []addr.Mapping) int {
	runs := 0
	for i := 0; i < len(pairs); {
		j := i + 1
		if j < len(pairs) && pairs[j].PPA == pairs[i].PPA+1 {
			st := pairs[j].LPA - pairs[i].LPA
			for j < len(pairs) && pairs[j].LPA-pairs[j-1].LPA == st && pairs[j].PPA == pairs[j-1].PPA+1 {
				j++
			}
		}
		runs++
		i = j
	}
	return runs
}

// pairsFor gathers the mappings of run whose LPAs appear in lpas
// (both LPA-sorted).
func pairsFor(run []addr.Mapping, lpas []addr.LPA) []addr.Mapping {
	sub := make([]addr.Mapping, 0, len(lpas))
	i := 0
	for _, l := range lpas {
		for i < len(run) && run[i].LPA < l {
			i++
		}
		if i < len(run) && run[i].LPA == l {
			sub = append(sub, run[i])
		}
	}
	return sub
}

// refreshExactBits verifies the predicted-exact bit of every written
// slot after a mutation, repairing what it cannot verify
// (verify-at-learn): the committed PPAs are ground truth here, so the
// slots whose post-insert predictions disagree are collected and
// re-fitted at γ=0 — exact segments that shadow the mispredicting
// approximate ones for exactly those LPAs. Without the refit each such
// slot's first read would pay the §3.5 double read before the miss
// path repaired the very same mapping one point at a time; fitting the
// failures as a batch costs one accurate segment per linear run
// instead of one pin per slot, and skips the wasted flash read
// entirely. Every written slot therefore leaves with its bit set.
// Verifying through Lookup (rather than trusting the fitted segment)
// makes the check robust to CRB ownership, shadowing by older levels,
// and quantization: whatever answers the next read is what gets
// verified. Slots not in pairs keep their bits — their predictions did
// not change (newer segments only answer LPAs they were learned from,
// and trims never move a surviving prediction). No-op while the bitmap
// is off.
func (t *Table) refreshExactBits(pairs []addr.Mapping) {
	if !t.bitmapOn {
		return
	}
	g := t.lookupGroup(addr.Group(pairs[0].LPA))
	if g == nil {
		return
	}
	var failed []addr.Mapping
	for i := range pairs {
		ppa, _, ok := t.Lookup(pairs[i].LPA)
		if ok && ppa == pairs[i].PPA {
			g.tune.exact.set(addr.Offset(pairs[i].LPA))
		} else {
			failed = append(failed, pairs[i])
		}
	}
	if len(failed) == 0 {
		return
	}
	learned := t.learner.learn(failed, 0)
	for k := range learned {
		t.insertLearned(learned[k])
	}
	for i := range failed {
		// Re-verify through the table: float32 intercepts quantize above
		// 2^24, and a refit that does not answer exactly must not arm
		// the bit (the read path would trust it blindly).
		if got, _, ok := t.Lookup(failed[i].LPA); ok && got == failed[i].PPA {
			g.tune.exact.set(addr.Offset(failed[i].LPA))
		} else {
			g.tune.exact.clear(addr.Offset(failed[i].LPA))
		}
	}
}

// Insert places one learned segment at the top level of its group,
// merging and displacing overlapped victims (Algorithm 1, seg_update).
// With the bitmap enabled, accurate segments set their covered slots'
// predicted-exact bits (an accurate segment's predictions are its
// learned mappings — the repair path relies on this to arm the slot it
// just verified); approximate ones clear them (unverified).
func (t *Table) Insert(ls Learned) {
	ls.Seg.prime() // tolerate hand-built segments; resident ones are always primed
	t.insertLearned(ls)
	if !t.bitmapOn {
		return
	}
	g := t.lookupGroup(ls.Seg.Group())
	if g == nil {
		return
	}
	for _, l := range ls.LPAs {
		off := addr.Offset(l)
		if !ls.Seg.Accurate() {
			g.tune.exact.clear(off)
			continue
		}
		if ppa, _, ok := t.Lookup(l); ok && ppa == ls.Seg.Predict(l) {
			g.tune.exact.set(off)
		} else {
			g.tune.exact.clear(off)
		}
	}
}

func (t *Table) insertLearned(ls Learned) {
	g := t.group(ls.Seg.Group())
	t.segUpdate(g, ls, 0)
}

func (t *Table) group(id addr.GroupID) *group {
	for int(id) >= len(t.groups) {
		if cap(t.groups) > len(t.groups) {
			t.groups = t.groups[:cap(t.groups)]
			continue
		}
		n := 2 * cap(t.groups)
		if n < 64 {
			n = 64
		}
		if n <= int(id) {
			n = int(id) + 1
		}
		grown := make([]*group, n)
		copy(grown, t.groups)
		t.groups = grown
	}
	g := t.groups[id]
	if g == nil {
		g = &group{tune: groupTune{gamma: clampGamma(t.gamma)}}
		t.groups[id] = g
		t.nGroups++
		t.levelFreq[0]++
	}
	return g
}

// lookupGroup is the read-only counterpart of group.
func (t *Table) lookupGroup(id addr.GroupID) *group {
	if int(id) >= len(t.groups) {
		return nil
	}
	return t.groups[id]
}

// eachGroup visits every existing group in ascending group-ID order.
func (t *Table) eachGroup(f func(addr.GroupID, *group)) {
	for id, g := range t.groups {
		if g != nil {
			f(addr.GroupID(id), g)
		}
	}
}

// noteAdd / noteRemove keep the segment counters in step with segments
// entering and leaving levels.
func (t *Table) noteAdd(s Segment) {
	t.nSegments++
	if s.Accurate() {
		t.nAccurate++
	}
}

func (t *Table) noteRemove(s Segment) {
	t.nSegments--
	if s.Accurate() {
		t.nAccurate--
	}
}

// noteLevels records that g went from old to len(g.levels) levels.
func (t *Table) noteLevels(g *group, old int) {
	n := len(g.levels)
	if n == old {
		return
	}
	t.totalLevels += n - old
	t.levelFreq[old]--
	for len(t.levelFreq) <= n {
		t.levelFreq = append(t.levelFreq, 0)
	}
	t.levelFreq[n]++
}

// stampLPAs records the incoming segment's exact LPA set in the mark
// array under a fresh generation; segMerge and the CRB dedup test
// membership against it.
func (t *Table) stampLPAs(lpas []addr.LPA) {
	t.markGen++
	for _, l := range lpas {
		t.mark[addr.Offset(l)] = t.markGen
	}
}

// stampSegment stamps the LPA set of a segment already resident in the
// table (compaction path): reconstructed from the stride for accurate
// segments, from the CRB for approximate ones (Algorithm 2 get_bitmap) —
// no slice is materialized.
func (t *Table) stampSegment(g *group, s Segment) {
	t.markGen++
	if !s.Accurate() {
		if e := g.crb.entryFor(s.Start()); e != nil {
			for _, o := range e.lpas {
				t.mark[o] = t.markGen
			}
		}
		return
	}
	st := addr.LPA(s.Stride())
	for l := s.SLPA; l <= s.End(); l += st {
		t.mark[addr.Offset(l)] = t.markGen
	}
}

// segUpdate implements Algorithm 1 lines 1–16: insert a segment into
// level li of group g, resolve CRB bookkeeping, merge overlapped victims
// and push still-overlapping victims down.
func (t *Table) segUpdate(g *group, ls Learned, li int) {
	old := len(g.levels)
	for len(g.levels) <= li {
		g.levels = append(g.levels, level{})
	}
	t.noteLevels(g, old)
	seg := ls.Seg

	t.stampLPAs(ls.LPAs)
	// CRB bookkeeping first (Algorithm 1 lines 4–7): registering the new
	// approximate segment's LPAs evicts those LPAs from other approximate
	// entries, which may shrink or remove their segments anywhere in the
	// group. Doing this before the level insert means boundary edits can
	// never hit the incoming segment itself.
	if !seg.Accurate() {
		t.offs = t.offs[:0]
		for _, l := range ls.LPAs {
			t.offs = append(t.offs, addr.Offset(l))
		}
		pre := g.crb.sizeBytes()
		t.edits = g.crb.insertMarked(t.offs, &t.mark, t.markGen, t.edits[:0])
		t.crbBytes += g.crb.sizeBytes() - pre
		t.applyEdits(g, t.edits)
	}

	t.placeSegment(g, seg, li)
}

// placeSegment inserts seg into level li, collects the same-level victims
// whose ranges overlap it (Algorithm 1 line 8 — within a sorted,
// pairwise-disjoint level these are at most one left neighbor plus a run
// to the right), and re-homes every victim that survives the merge: back
// into this level if now disjoint, otherwise one level down (lines 9–16).
// The caller must have stamped the incoming segment's LPA set into t.mark
// (stampLPAs / stampSegment). Shared by segUpdate and compactInsert,
// which used to duplicate this block.
func (t *Table) placeSegment(g *group, seg Segment, li int) {
	lvl := &g.levels[li]
	startOff := uint16(seg.Start())
	endOff := startOff + uint16(seg.L)
	pos := lvl.search(startOff)
	lo := pos
	if lo > 0 && lvl.segs[lo-1].End() >= seg.SLPA {
		lo--
	}
	hi := pos
	for hi < lvl.len() && uint16(lvl.keys[hi]) <= endOff {
		hi++
	}

	t.victims = append(t.victims[:0], lvl.segs[lo:hi]...)
	if lo == hi {
		lvl.insert(pos, seg)
	} else {
		lvl.replaceRange(lo, hi, seg)
	}
	t.noteAdd(seg)

	for i := range t.victims {
		victim := t.victims[i]
		t.noteRemove(victim)
		merged, removed := t.segMerge(g, victim)
		if removed {
			continue
		}
		if merged.Overlaps(seg) {
			// Still overlapping: pop the victim to the next level; if it
			// would overlap there, give it a fresh level to avoid
			// recursive displacement (Algorithm 1 lines 13–16).
			t.pushDown(g, merged, li)
			t.noteAdd(merged)
			continue
		}
		// Disjoint after trimming: it can stay in this level.
		lvl := &g.levels[li]
		lvl.insert(lvl.search(uint16(merged.Start())), merged)
		t.noteAdd(merged)
	}
}

// pushDown moves a displaced victim one level down, creating a dedicated
// level when it would overlap segments already there.
func (t *Table) pushDown(g *group, victim Segment, li int) {
	ni := li + 1
	if ni >= len(g.levels) {
		old := len(g.levels)
		g.levels = append(g.levels, level{})
		g.levels[ni].insert(0, victim)
		t.noteLevels(g, old)
		return
	}
	next := &g.levels[ni]
	p := next.search(uint16(victim.Start()))
	overlaps := (p > 0 && next.segs[p-1].End() >= victim.SLPA) ||
		(p < next.len() && uint16(next.keys[p]) <= uint16(victim.Start())+uint16(victim.L))
	if overlaps {
		// Insert a brand-new level between li and ni holding only the
		// victim. Everything below keeps its relative (temporal) order.
		old := len(g.levels)
		g.levels = append(g.levels, level{})
		copy(g.levels[ni+1:], g.levels[ni:])
		g.levels[ni] = level{}
		g.levels[ni].insert(0, victim)
		t.noteLevels(g, old)
		return
	}
	next.insert(p, victim)
}

// segMerge implements Algorithm 2 against the stamped mark set: subtract
// the incoming segment's LPAs from the victim's, shrink the victim's
// [S, S+L] to its remaining first/last LPA, and prune the CRB for
// approximate victims. K and I are never touched, so the victim's
// surviving predictions stay valid. It returns the updated victim, or
// removed=true when nothing survives.
func (t *Table) segMerge(g *group, victim Segment) (Segment, bool) {
	first, last, any := t.survivors(g, victim)

	if !victim.Accurate() {
		pre := g.crb.sizeBytes()
		edit, ok := g.crb.removeMarked(victim.Start(), &t.mark, t.markGen)
		t.crbBytes += g.crb.sizeBytes() - pre
		if ok && edit.Removed {
			return Segment{}, true
		}
	}
	if !any {
		return Segment{}, true
	}
	victim.SLPA = first
	victim.L = uint8(last - first)
	victim.prime()
	return victim, false
}

// survivors scans the victim's encoded LPA set (Algorithm 2 get_bitmap:
// the stride progression for accurate segments, the CRB entry for
// approximate ones) and returns the first and last LPAs not claimed by
// the stamped new set — without materializing a slice.
func (t *Table) survivors(g *group, s Segment) (first, last addr.LPA, any bool) {
	if !s.Accurate() {
		e := g.crb.entryFor(s.Start())
		if e == nil {
			return 0, 0, false
		}
		base := addr.GroupBase(s.Group())
		for _, o := range e.lpas {
			if t.mark[o] == t.markGen {
				continue
			}
			l := base + addr.LPA(o)
			if !any {
				first, any = l, true
			}
			last = l
		}
		return first, last, any
	}
	st := addr.LPA(s.Stride())
	for l := s.SLPA; l <= s.End(); l += st {
		if t.mark[addr.Offset(l)] == t.markGen {
			continue
		}
		if !any {
			first, any = l, true
		}
		last = l
	}
	return first, last, any
}

// applyEdits reshapes or removes approximate segments whose CRB entries
// changed during a dedup (the paper's "update the S of the old segment
// with the adjacent LPA", Figure 9 (b)). A reshaped segment keeps its
// position: the new start stays inside the old range, which cannot cross
// a disjoint neighbor, so the level stays sorted.
func (t *Table) applyEdits(g *group, edits []boundaryEdit) {
	for _, e := range edits {
		li, idx, ok := findApprox(g, e.Old)
		if !ok {
			continue
		}
		if e.Removed {
			t.noteRemove(g.levels[li].segs[idx])
			g.levels[li].remove(idx)
			continue
		}
		seg := &g.levels[li].segs[idx]
		base := addr.GroupBase(addr.Group(seg.SLPA))
		seg.SLPA = base + addr.LPA(e.NewStart)
		seg.L = e.NewLast - e.NewStart
		seg.prime()
		g.levels[li].keys[idx] = e.NewStart
	}
}

// findApprox locates the approximate segment with the given start offset.
// CRB invariants make that start unique among approximate segments.
func findApprox(g *group, start uint8) (level, idx int, ok bool) {
	for li := range g.levels {
		segs := g.levels[li].segs
		for i := range segs {
			if !segs[i].Accurate() && segs[i].Start() == start {
				return li, i, true
			}
		}
	}
	return 0, 0, false
}

// Lookup translates lpa using the learned table (Algorithm 1 lines
// 17–22). ok is false when no segment indexes the LPA (never written, or
// its mapping lives only in flash-resident translation pages).
//
// The hot path is allocation-free and, for accurate segments, pure
// integer arithmetic against the decoded cache: a binary search over the
// level's 4-byte key array, one modulo for the stride membership test
// (Algorithm 2 has_lpa), one divide for the anchored prediction.
func (t *Table) Lookup(lpa addr.LPA) (addr.PPA, LookupResult, bool) {
	var res LookupResult
	g := t.lookupGroup(addr.Group(lpa))
	if g == nil {
		return addr.InvalidPPA, res, false
	}
	off := addr.Offset(lpa)
	for li := range g.levels {
		lvl := &g.levels[li]
		res.Levels = li + 1
		// Last segment with start offset ≤ off; the search guarantees
		// lpa ≥ SLPA, so containment needs only the End bound.
		idx := lvl.search(uint16(off)+1) - 1
		if idx < 0 || lpa > lvl.segs[idx].End() {
			continue
		}
		seg := &lvl.segs[idx]
		if seg.Accurate() {
			d := uint32(lpa - seg.SLPA)
			if seg.L == 0 {
				if d == 0 {
					return seg.p0, res, true
				}
				continue
			}
			if d%seg.stride != 0 {
				continue
			}
			return seg.p0 + addr.PPA(d/seg.stride), res, true
		}
		owner, ok := g.crb.lookup(off)
		if !ok {
			// No approximate segment indexes this LPA; the range match
			// was incidental (Algorithm 2 has_lpa: CRB check failed).
			continue
		}
		if owner != seg.Start() {
			// The CRB says another approximate segment owns this LPA
			// (Figure 9 / example T6). That owner lives at a lower
			// level; keep descending so that any newer accurate claim
			// in between still wins.
			res.Redirected = true
			continue
		}
		res.Approx = true
		if t.bitmapOn && g.tune.exact.test(off) {
			res.Exact = true
		} else {
			res.Hint = g.tune.armedHint()
		}
		return seg.predictApprox(off), res, true
	}
	return addr.InvalidPPA, res, false
}

// Compact merges segments downward until each group is a single level
// (paper §3.7 "Segment Compaction", Algorithm 1 seg_compact). Upper-level
// segments are re-inserted into the level below, trimming or removing the
// stale segments they shadow.
func (t *Table) Compact() { t.CompactChanged() }

// CompactChanged compacts like Compact and returns the IDs of the groups
// it restructured (those that entered with more than one level), in
// ascending order. The demand-paging scheme marks exactly these groups
// dirty so periodic persistence rewrites only reshaped translation pages.
func (t *Table) CompactChanged() []addr.GroupID {
	var out []addr.GroupID
	t.eachGroup(func(id addr.GroupID, g *group) {
		if len(g.levels) > 1 {
			out = append(out, id)
		}
		t.compactGroup(g)
	})
	return out
}

func (t *Table) compactGroup(g *group) {
	// Each pass pops the top level and re-plays its segments one level
	// down, shedding stale claims. An accurate segment cannot represent
	// the loss of an *interior* stride LPA (only boundary trims persist),
	// so groups with such interleavings legitimately keep more than one
	// level — the loop stops at the first pass that makes no progress.
	for len(g.levels) > 1 {
		beforeLevels := len(g.levels)
		beforeSegs := g.segmentCount()

		top := g.levels[0]
		old := len(g.levels)
		g.levels = g.levels[1:]
		t.noteLevels(g, old)
		for _, seg := range top.segs {
			t.noteRemove(seg)
		}
		for _, seg := range top.segs {
			t.compactInsert(g, seg)
		}
		// Drop any levels emptied by merging.
		old = len(g.levels)
		kept := g.levels[:0]
		for _, lvl := range g.levels {
			if lvl.len() > 0 {
				kept = append(kept, lvl)
			}
		}
		g.levels = kept
		t.noteLevels(g, old)

		if len(g.levels) >= beforeLevels && g.segmentCount() >= beforeSegs {
			break
		}
	}
	if len(g.levels) == 0 {
		g.levels = nil
	}
}

func (g *group) segmentCount() int {
	n := 0
	for i := range g.levels {
		n += g.levels[i].len()
	}
	return n
}

// compactInsert is segUpdate for a segment that is *already* registered
// in the CRB: no re-registration or dedup is needed (the CRB is globally
// consistent), only the level insert and victim handling.
func (t *Table) compactInsert(g *group, seg Segment) {
	if len(g.levels) == 0 {
		g.levels = append(g.levels, level{})
		t.noteLevels(g, 0)
	}
	t.stampSegment(g, seg)
	t.placeSegment(g, seg, 0)
}

// Stats summarizes the table for the paper's memory and structure
// figures (Figures 10, 12, 15, 19, 20).
type Stats struct {
	Groups       int
	Segments     int
	Accurate     int
	Approximate  int
	SegmentBytes int // Segments × 8
	CRBBytes     int // flat CRB footprint (Figure 10)
	MaxLevels    int
	TotalLevels  int // across groups, for the mean
}

// SizeBytes reports the mapping table's DRAM footprint: encoded segments
// plus CRB bytes. This is the quantity Figures 15 and 19 compare. O(1).
func (t *Table) SizeBytes() int {
	return t.nSegments*SegmentBytes + t.crbBytes
}

// Stats returns the incrementally maintained summary statistics — O(1)
// apart from the max-level scan over the (small) level-count histogram.
func (t *Table) Stats() Stats {
	s := Stats{
		Groups:       t.nGroups,
		Segments:     t.nSegments,
		Accurate:     t.nAccurate,
		Approximate:  t.nSegments - t.nAccurate,
		SegmentBytes: t.nSegments * SegmentBytes,
		CRBBytes:     t.crbBytes,
		TotalLevels:  t.totalLevels,
	}
	for n := len(t.levelFreq) - 1; n > 0; n-- {
		if t.levelFreq[n] > 0 {
			s.MaxLevels = n
			break
		}
	}
	return s
}

// recomputeStats rebuilds every incremental counter by walking the table
// (snapshot-restore path, and the cross-check in tests).
func (t *Table) recomputeStats() {
	t.nGroups, t.nSegments, t.nAccurate, t.crbBytes, t.totalLevels = 0, 0, 0, 0, 0
	t.levelFreq = append(t.levelFreq[:0], 0)
	t.eachGroup(func(_ addr.GroupID, g *group) {
		t.nGroups++
		n := len(g.levels)
		t.totalLevels += n
		for len(t.levelFreq) <= n {
			t.levelFreq = append(t.levelFreq, 0)
		}
		t.levelFreq[n]++
		g.crb.recompute()
		t.crbBytes += g.crb.sizeBytes()
		for li := range g.levels {
			for i := range g.levels[li].segs {
				t.noteAdd(g.levels[li].segs[i])
			}
		}
	})
}

// LevelCounts returns the number of levels of every group, for the
// Figure 12 distribution.
func (t *Table) LevelCounts() []int {
	out := make([]int, 0, t.nGroups)
	t.eachGroup(func(_ addr.GroupID, g *group) {
		out = append(out, len(g.levels))
	})
	return out
}

// CRBSizes returns every group's CRB byte size, for Figure 10.
func (t *Table) CRBSizes() []int {
	out := make([]int, 0, t.nGroups)
	t.eachGroup(func(_ addr.GroupID, g *group) {
		out = append(out, g.crb.sizeBytes())
	})
	return out
}

// SegmentLengths returns the number of LPA-PPA mappings each segment
// covers, for the Figure 5 distribution.
func (t *Table) SegmentLengths() []int {
	var out []int
	t.eachGroup(func(_ addr.GroupID, g *group) {
		for li := range g.levels {
			segs := g.levels[li].segs
			for i := range segs {
				out = append(out, segmentLen(g, &segs[i]))
			}
		}
	})
	return out
}

// segmentLen counts a resident segment's encoded LPAs without
// materializing them.
func segmentLen(g *group, s *Segment) int {
	if !s.Accurate() {
		if e := g.crb.entryFor(s.Start()); e != nil {
			return len(e.lpas)
		}
		return 0
	}
	if s.L == 0 {
		return 1
	}
	return int(uint32(s.L)/s.Stride()) + 1
}
