package core

import (
	"sort"

	"leaftl/internal/addr"
)

// Table is the learned log-structured address-mapping table (paper §3.4,
// Figure 14 structure 5+6). The LPA space is partitioned into 256-LPA
// groups; each group holds a stack of levels, newest on top. Segments
// within one level are sorted by starting LPA and never overlap; segments
// in different levels may overlap, with the upper level always holding the
// more recent mapping.
//
// Table is not safe for concurrent use; the SSD controller serializes FTL
// operations (one embedded core owns the mapping, as in the paper's
// firmware).
type Table struct {
	gamma  int
	groups map[addr.GroupID]*group
}

// group is the per-256-LPA-group state: the level stack plus the group's
// conflict-resolution buffer for approximate segments.
type group struct {
	levels [][]Segment
	crb    crb
}

// LookupResult carries per-lookup diagnostics used by the paper's
// evaluation (Figure 23: levels visited; §4.5 lookup cost).
type LookupResult struct {
	// Levels is how many levels were examined, including the one that
	// answered.
	Levels int
	// Approx is true when the answering segment is approximate, i.e. the
	// returned PPA may be off by up to ±gamma and must be verified
	// against the OOB reverse mapping (§3.5).
	Approx bool
	// Redirected is true when the CRB redirected the lookup from the
	// range-matching segment to the true owning segment (Figure 9).
	Redirected bool
}

// NewTable returns an empty mapping table with the given error bound
// gamma (in pages). gamma = 0 admits only accurate segments.
func NewTable(gamma int) *Table {
	if gamma < 0 {
		gamma = 0
	}
	return &Table{gamma: gamma, groups: make(map[addr.GroupID]*group)}
}

// Gamma returns the table's error bound.
func (t *Table) Gamma() int { return t.gamma }

// Update learns segments for a batch of new LPA→PPA mappings and inserts
// them at the top level (paper §3.7 "Creation" + "Insert/Update"). pairs
// must be sorted by LPA with unique LPAs; the device's data buffer
// guarantees this (§3.3). It returns the number of segments created.
func (t *Table) Update(pairs []addr.Mapping) int {
	learned := Learn(pairs, t.gamma)
	for _, ls := range learned {
		t.Insert(ls)
	}
	return len(learned)
}

// Insert places one learned segment at the top level of its group,
// merging and displacing overlapped victims (Algorithm 1, seg_update).
func (t *Table) Insert(ls Learned) {
	g := t.group(ls.Seg.Group())
	t.segUpdate(g, ls, 0)
}

func (t *Table) group(id addr.GroupID) *group {
	g := t.groups[id]
	if g == nil {
		g = &group{}
		t.groups[id] = g
	}
	return g
}

// segUpdate implements Algorithm 1 lines 1–16: insert a segment into
// level li of group g, resolve CRB bookkeeping, merge overlapped victims
// and push still-overlapping victims down.
func (t *Table) segUpdate(g *group, ls Learned, li int) {
	for len(g.levels) <= li {
		g.levels = append(g.levels, nil)
	}
	seg := ls.Seg

	// CRB bookkeeping first (Algorithm 1 lines 4–7): registering the new
	// approximate segment's LPAs evicts those LPAs from other approximate
	// entries, which may shrink or remove their segments anywhere in the
	// group. Doing this before the level insert means boundary edits can
	// never hit the incoming segment itself.
	if !seg.Accurate() {
		offs := make([]uint8, len(ls.LPAs))
		for i, l := range ls.LPAs {
			offs[i] = addr.Offset(l)
		}
		edits := g.crb.insert(offs)
		t.applyEdits(g, edits)
	}

	// Insert into the level, keeping it sorted by starting LPA.
	pos := searchLevel(g.levels[li], seg.SLPA)
	g.levels[li] = insertAt(g.levels[li], pos, seg)

	// Collect victims: same-level segments whose range overlaps the new
	// one (Algorithm 1 line 8). Within a sorted, pairwise-disjoint level
	// these are at most one left neighbor plus a run to the right.
	level := g.levels[li]
	lo := pos
	if lo > 0 && level[lo-1].End() >= seg.SLPA {
		lo--
	}
	hi := pos + 1
	for hi < len(level) && level[hi].SLPA <= seg.End() {
		hi++
	}
	victims := make([]Segment, 0, hi-lo-1)
	victims = append(victims, level[lo:pos]...)
	victims = append(victims, level[pos+1:hi]...)
	// Remove the victims, keeping only the new segment in place.
	g.levels[li] = append(level[:lo], append([]Segment{seg}, level[hi:]...)...)

	for _, victim := range victims {
		merged, removed := t.segMerge(g, ls, victim)
		if removed {
			continue
		}
		if merged.Overlaps(seg) {
			// Still overlapping: pop the victim to the next level; if it
			// would overlap there, give it a fresh level to avoid
			// recursive displacement (Algorithm 1 lines 13–16).
			t.pushDown(g, merged, li)
			continue
		}
		// Disjoint after trimming: it can stay in this level.
		p := searchLevel(g.levels[li], merged.SLPA)
		g.levels[li] = insertAt(g.levels[li], p, merged)
	}
}

// pushDown moves a displaced victim one level down, creating a dedicated
// level when it would overlap segments already there.
func (t *Table) pushDown(g *group, victim Segment, li int) {
	ni := li + 1
	if ni >= len(g.levels) {
		g.levels = append(g.levels, []Segment{victim})
		return
	}
	next := g.levels[ni]
	p := searchLevel(next, victim.SLPA)
	overlaps := (p > 0 && next[p-1].End() >= victim.SLPA) ||
		(p < len(next) && next[p].SLPA <= victim.End())
	if overlaps {
		// Insert a brand-new level between li and ni holding only the
		// victim. Everything below keeps its relative (temporal) order.
		g.levels = append(g.levels, nil)
		copy(g.levels[ni+1:], g.levels[ni:])
		g.levels[ni] = []Segment{victim}
		return
	}
	g.levels[ni] = insertAt(next, p, victim)
}

// segMerge implements Algorithm 2: subtract the new segment's encoded
// LPAs from the victim's, shrink the victim's [S, S+L] to its remaining
// first/last LPA, and prune the CRB for approximate victims. K and I are
// never touched, so the victim's surviving predictions stay valid. It
// returns the updated victim, or removed=true when nothing survives.
func (t *Table) segMerge(g *group, newLS Learned, victim Segment) (Segment, bool) {
	var newSet [addr.GroupSize]bool
	for _, l := range newLS.LPAs {
		newSet[addr.Offset(l)] = true
	}

	victimLPAs := t.encodedLPAs(g, victim)
	var first, last addr.LPA
	any := false
	for _, l := range victimLPAs {
		if newSet[addr.Offset(l)] {
			continue
		}
		if !any {
			first, last, any = l, l, true
		} else {
			last = l
		}
	}

	if !victim.Accurate() {
		edit, ok := g.crb.removeLPAs(victim.Start(), func(o uint8) bool { return newSet[o] })
		if ok && edit.Removed {
			return Segment{}, true
		}
	}
	if !any {
		return Segment{}, true
	}
	victim.SLPA = first
	victim.L = uint8(last - first)
	return victim, false
}

// applyEdits reshapes or removes approximate segments whose CRB entries
// changed during a dedup (the paper's "update the S of the old segment
// with the adjacent LPA", Figure 9 (b)).
func (t *Table) applyEdits(g *group, edits []boundaryEdit) {
	for _, e := range edits {
		li, idx, ok := findApprox(g, e.Old)
		if !ok {
			continue
		}
		if e.Removed {
			g.levels[li] = append(g.levels[li][:idx], g.levels[li][idx+1:]...)
			continue
		}
		seg := &g.levels[li][idx]
		base := addr.GroupBase(addr.Group(seg.SLPA))
		seg.SLPA = base + addr.LPA(e.NewStart)
		seg.L = e.NewLast - e.NewStart
	}
}

// findApprox locates the approximate segment with the given start offset.
// CRB invariants make that start unique among approximate segments.
func findApprox(g *group, start uint8) (level, idx int, ok bool) {
	for li, lvl := range g.levels {
		for i := range lvl {
			if !lvl[i].Accurate() && lvl[i].Start() == start {
				return li, i, true
			}
		}
	}
	return 0, 0, false
}

// encodedLPAs reconstructs the exact LPA set a segment indexes
// (Algorithm 2 get_bitmap): accurate segments walk their stride,
// approximate segments read the CRB.
func (t *Table) encodedLPAs(g *group, s Segment) []addr.LPA {
	if !s.Accurate() {
		return g.crb.lpasOf(s.Start(), addr.GroupBase(s.Group()))
	}
	if s.L == 0 {
		return []addr.LPA{s.SLPA}
	}
	st := addr.LPA(s.Stride())
	out := make([]addr.LPA, 0, int(s.L)/int(st)+1)
	for l := s.SLPA; l <= s.End(); l += st {
		out = append(out, l)
	}
	return out
}

// Lookup translates lpa using the learned table (Algorithm 1 lines
// 17–22). ok is false when no segment indexes the LPA (never written, or
// its mapping lives only in flash-resident translation pages).
func (t *Table) Lookup(lpa addr.LPA) (addr.PPA, LookupResult, bool) {
	var res LookupResult
	g := t.groups[addr.Group(lpa)]
	if g == nil {
		return addr.InvalidPPA, res, false
	}
	off := addr.Offset(lpa)
	for li, lvl := range g.levels {
		res.Levels = li + 1
		idx := searchLevel(lvl, lpa+1) - 1
		if idx < 0 || !lvl[idx].Contains(lpa) {
			continue
		}
		seg := lvl[idx]
		if seg.Accurate() {
			if seg.OnStride(lpa) {
				return seg.Predict(lpa), res, true
			}
			continue
		}
		owner, ok := g.crb.lookup(off)
		if !ok {
			// No approximate segment indexes this LPA; the range match
			// was incidental (Algorithm 2 has_lpa: CRB check failed).
			continue
		}
		if owner != seg.Start() {
			// The CRB says another approximate segment owns this LPA
			// (Figure 9 / example T6). That owner lives at a lower
			// level; keep descending so that any newer accurate claim
			// in between still wins.
			res.Redirected = true
			continue
		}
		res.Approx = true
		return seg.Predict(lpa), res, true
	}
	return addr.InvalidPPA, res, false
}

// Compact merges segments downward until each group is a single level
// (paper §3.7 "Segment Compaction", Algorithm 1 seg_compact). Upper-level
// segments are re-inserted into the level below, trimming or removing the
// stale segments they shadow.
func (t *Table) Compact() {
	for _, g := range t.groups {
		t.compactGroup(g)
	}
}

func (t *Table) compactGroup(g *group) {
	// Each pass pops the top level and re-plays its segments one level
	// down, shedding stale claims. An accurate segment cannot represent
	// the loss of an *interior* stride LPA (only boundary trims persist),
	// so groups with such interleavings legitimately keep more than one
	// level — the loop stops at the first pass that makes no progress.
	for len(g.levels) > 1 {
		beforeLevels := len(g.levels)
		beforeSegs := g.segmentCount()

		top := g.levels[0]
		g.levels = g.levels[1:]
		for _, seg := range top {
			ls := Learned{Seg: seg, LPAs: t.encodedLPAs(g, seg)}
			t.compactInsert(g, ls)
		}
		// Drop any levels emptied by merging.
		kept := g.levels[:0]
		for _, lvl := range g.levels {
			if len(lvl) > 0 {
				kept = append(kept, lvl)
			}
		}
		g.levels = kept

		if len(g.levels) >= beforeLevels && g.segmentCount() >= beforeSegs {
			break
		}
	}
	if len(g.levels) == 0 {
		g.levels = nil
	}
}

func (g *group) segmentCount() int {
	n := 0
	for _, lvl := range g.levels {
		n += len(lvl)
	}
	return n
}

// compactInsert is segUpdate for a segment that is *already* registered
// in the CRB: no re-registration or dedup is needed (the CRB is globally
// consistent), only the level insert and victim handling.
func (t *Table) compactInsert(g *group, ls Learned) {
	if len(g.levels) == 0 {
		g.levels = append(g.levels, nil)
	}
	seg := ls.Seg
	pos := searchLevel(g.levels[0], seg.SLPA)
	g.levels[0] = insertAt(g.levels[0], pos, seg)

	level := g.levels[0]
	lo := pos
	if lo > 0 && level[lo-1].End() >= seg.SLPA {
		lo--
	}
	hi := pos + 1
	for hi < len(level) && level[hi].SLPA <= seg.End() {
		hi++
	}
	victims := make([]Segment, 0, hi-lo-1)
	victims = append(victims, level[lo:pos]...)
	victims = append(victims, level[pos+1:hi]...)
	g.levels[0] = append(level[:lo], append([]Segment{seg}, level[hi:]...)...)

	for _, victim := range victims {
		merged, removed := t.segMerge(g, ls, victim)
		if removed {
			continue
		}
		if merged.Overlaps(seg) {
			t.pushDown(g, merged, 0)
			continue
		}
		p := searchLevel(g.levels[0], merged.SLPA)
		g.levels[0] = insertAt(g.levels[0], p, merged)
	}
}

// searchLevel returns the index of the first segment with SLPA ≥ lpa.
func searchLevel(level []Segment, lpa addr.LPA) int {
	return sort.Search(len(level), func(i int) bool {
		return level[i].SLPA >= lpa
	})
}

func insertAt(level []Segment, pos int, seg Segment) []Segment {
	level = append(level, Segment{})
	copy(level[pos+1:], level[pos:])
	level[pos] = seg
	return level
}

// Stats summarizes the table for the paper's memory and structure
// figures (Figures 10, 12, 15, 19, 20).
type Stats struct {
	Groups       int
	Segments     int
	Accurate     int
	Approximate  int
	SegmentBytes int // Segments × 8
	CRBBytes     int // flat CRB footprint (Figure 10)
	MaxLevels    int
	TotalLevels  int // across groups, for the mean
}

// SizeBytes reports the mapping table's DRAM footprint: encoded segments
// plus CRB bytes. This is the quantity Figures 15 and 19 compare.
func (t *Table) SizeBytes() int {
	s := t.Stats()
	return s.SegmentBytes + s.CRBBytes
}

// Stats recomputes summary statistics by walking every group.
func (t *Table) Stats() Stats {
	var s Stats
	s.Groups = len(t.groups)
	for _, g := range t.groups {
		s.TotalLevels += len(g.levels)
		if len(g.levels) > s.MaxLevels {
			s.MaxLevels = len(g.levels)
		}
		s.CRBBytes += g.crb.sizeBytes()
		for _, lvl := range g.levels {
			for i := range lvl {
				s.Segments++
				if lvl[i].Accurate() {
					s.Accurate++
				} else {
					s.Approximate++
				}
			}
		}
	}
	s.SegmentBytes = s.Segments * SegmentBytes
	return s
}

// LevelCounts returns the number of levels of every group, for the
// Figure 12 distribution.
func (t *Table) LevelCounts() []int {
	out := make([]int, 0, len(t.groups))
	for _, g := range t.groups {
		out = append(out, len(g.levels))
	}
	return out
}

// CRBSizes returns every group's CRB byte size, for Figure 10.
func (t *Table) CRBSizes() []int {
	out := make([]int, 0, len(t.groups))
	for _, g := range t.groups {
		out = append(out, g.crb.sizeBytes())
	}
	return out
}

// SegmentLengths returns the number of LPA-PPA mappings each segment
// covers, for the Figure 5 distribution.
func (t *Table) SegmentLengths() []int {
	var out []int
	for _, g := range t.groups {
		for _, lvl := range g.levels {
			for i := range lvl {
				out = append(out, len(t.encodedLPAs(g, lvl[i])))
			}
		}
	}
	return out
}
