package core

import (
	"fmt"

	"leaftl/internal/addr"
)

// Adaptive per-group γ control. The paper fixes one global error bound at
// construction time (§3.5, §4.4): every group learns at the same γ, so the
// table-size-versus-double-read trade-off is decided once, blind to the
// workload. LearnedFTL (arXiv:2303.13226) shows the double read is the
// dominant tax on learned page-level FTLs and that per-region prediction
// metadata can remove most of it. This file gives every 256-LPA segment
// group its own live error bound plus the misprediction telemetry a
// feedback controller needs:
//
//   - groupTune.gamma is the group's *effective learning bound*: batches
//     committed into the group are fitted at this γ instead of the global
//     one. It never exceeds the table's global γ, so the device's OOB
//     window (sized by the global bound) always covers any approximate
//     segment's error, whatever the controller does.
//   - reads/misses are a decision window: scheme-translated flash reads
//     and observed mispredictions since the last RetuneGamma round.
//   - hint/streak implement the misprediction-direction hint: the last
//     observed miss delta (true PPA − predicted PPA) and how many
//     consecutive misses repeated it. Once the streak reaches
//     hintArmStreak the hint is armed and returned from Lookup, letting
//     the device aim its first flash read at the likelier neighbor.
//
// The tune block is controller working state, not part of the paper's
// mapping-table footprint: like the CRB owner index it is excluded from
// SizeBytes. It is, however, part of the group's wire record (persist.go)
// so paging a group out and back — or recovering it from its flash
// translation-page image — round-trips γ and the hint exactly.

// hintArmStreak is how many consecutive mispredictions must repeat the
// same delta before the hint is armed. Below it, speculative first reads
// would lose more on correct predictions than they save on misses.
const hintArmStreak = 2

// exactBitmapBytes is the size of one group's predicted-exact bitmap:
// one bit per LPA slot in the 256-LPA group.
const exactBitmapBytes = addr.GroupSize / 8

// exactBits is a group's predicted-exact bitmap (LearnedFTL's accuracy
// bitmap, arXiv:2303.13226 §3.2). Bit i set means the table's *current*
// prediction for LPA groupBase+i is known to land exactly on the live
// page: it was verified against the true PPA the last time the slot was
// learned, repaired, relearned, or OOB-checked on a read. A set bit lets
// the device issue one trusted flash read with no OOB verification probe
// budget; a clear bit routes through the hint/probe machinery. Bits are
// maintained only while the table's bitmap is enabled, but the field
// always travels in the group wire record (zeroed when the feature is
// off) so the v3 format has one shape.
type exactBits [exactBitmapBytes]byte

func (b *exactBits) set(off uint8)       { b[off>>3] |= 1 << (off & 7) }
func (b *exactBits) clear(off uint8)     { b[off>>3] &^= 1 << (off & 7) }
func (b *exactBits) test(off uint8) bool { return b[off>>3]&(1<<(off&7)) != 0 }

// groupTune is one group's adaptive-γ state. See the package comment
// above for field semantics.
type groupTune struct {
	gamma  uint8  // effective learning bound for this group (≤ table γ)
	hint   int8   // last observed miss delta (true − predicted), clamped
	streak uint8  // consecutive misses repeating hint (saturating)
	reads  uint32 // scheme-translated flash reads this decision window
	misses uint32 // mispredicted approximate reads this decision window
	costly uint32 // misses that paid the double read (hint did not resolve)
	exact  exactBits
}

// armedHint returns the hint when the miss streak has armed it, else 0.
func (tu *groupTune) armedHint() int {
	if tu.streak >= hintArmStreak {
		return int(tu.hint)
	}
	return 0
}

// clampGamma narrows a table-level γ into the tune block's byte.
func clampGamma(g int) uint8 {
	if g < 0 {
		return 0
	}
	if g > 255 {
		return 255
	}
	return uint8(g)
}

// GroupGamma returns the effective learning bound for group id: the
// group's tuned γ when it is resident, the table's global γ otherwise
// (new groups inherit the global bound at creation).
func (t *Table) GroupGamma(id addr.GroupID) int {
	if g := t.lookupGroup(id); g != nil {
		return int(g.tune.gamma)
	}
	return t.gamma
}

// SetGroupGamma pins group id's effective learning bound, clamped to
// [0, Gamma()]. It reports false when the group is not resident (the
// controller only steers groups it can observe).
func (t *Table) SetGroupGamma(id addr.GroupID, gamma int) bool {
	g := t.lookupGroup(id)
	if g == nil {
		return false
	}
	if gamma > t.gamma {
		gamma = t.gamma
	}
	g.tune.gamma = clampGamma(gamma)
	return true
}

// MaxGroupGamma returns the largest effective γ across resident groups
// (0 for an empty table). Paged-out groups were clamped when tuned and
// re-validated on install, so the resident maximum is the table maximum.
func (t *Table) MaxGroupGamma() int {
	max := 0
	t.eachGroup(func(_ addr.GroupID, g *group) {
		if int(g.tune.gamma) > max {
			max = int(g.tune.gamma)
		}
	})
	return max
}

// NoteRead records translation feedback for lpa's group: the scheme
// predicted `predicted`, the flash's OOB reverse mapping proved the true
// page to be `actual`, approx says whether the answering segment was
// approximate, and hintResolved whether the device's speculative
// hint-aimed read absorbed the miss in a single flash read. Exact
// translations only advance the read window; approx hits disarm the hint
// streak; misses advance the miss counters (splitting free from costly)
// and the direction hint. A no-op for non-resident groups.
func (t *Table) NoteRead(lpa addr.LPA, predicted, actual addr.PPA, approx, hintResolved bool) {
	g := t.lookupGroup(addr.Group(lpa))
	if g == nil {
		return
	}
	tu := &g.tune
	if tu.reads < ^uint32(0) {
		tu.reads++
	}
	if !approx {
		return
	}
	if actual == predicted {
		tu.streak = 0
		if t.bitmapOn {
			// OOB-verified exact prediction: the next read of this slot
			// skips the verification probe budget entirely.
			tu.exact.set(addr.Offset(lpa))
		}
		return
	}
	if t.bitmapOn {
		tu.exact.clear(addr.Offset(lpa))
	}
	if tu.misses < ^uint32(0) {
		tu.misses++
	}
	if !hintResolved && tu.costly < ^uint32(0) {
		tu.costly++
	}
	delta := int64(actual) - int64(predicted)
	if delta > 127 {
		delta = 127
	}
	if delta < -127 {
		delta = -127
	}
	if int8(delta) == tu.hint {
		if tu.streak < 255 {
			tu.streak++
		}
	} else {
		tu.hint = int8(delta)
		tu.streak = 1
	}
}

// NoteExactRead records a bitmap-trusted read for lpa's group: the
// device consulted the predicted-exact bit, issued one flash read with
// no verification budget, and the bit held. Only the decision window's
// read counter advances — the slot produced neither a miss nor new
// direction evidence, but the group was observed, so RetuneGamma's
// miss-ratio denominator must include it. A no-op for non-resident
// groups.
func (t *Table) NoteExactRead(lpa addr.LPA) {
	g := t.lookupGroup(addr.Group(lpa))
	if g == nil {
		return
	}
	if g.tune.reads < ^uint32(0) {
		g.tune.reads++
	}
}

// AuditExactBits verifies every set predicted-exact bit of every
// resident group against a ground-truth oracle: truth returns the live
// PPA of an LPA, or ok=false when the LPA is unmapped or its page was
// lost (such slots are skipped — the bitmap promises nothing about
// them). A set bit whose prediction is missing or disagrees with the
// oracle is a hard failure: the device would have trusted a wrong PPA
// without OOB verification. The walk is side-effect free and touches
// only resident groups (auditing must not fault pages in).
func (t *Table) AuditExactBits(truth func(addr.LPA) (addr.PPA, bool)) error {
	var err error
	t.eachGroup(func(id addr.GroupID, g *group) {
		if err != nil {
			return
		}
		base := addr.GroupBase(id)
		for off := 0; off < addr.GroupSize; off++ {
			if !g.tune.exact.test(uint8(off)) {
				continue
			}
			lpa := base + addr.LPA(off)
			want, ok := truth(lpa)
			if !ok {
				continue
			}
			got, _, found := t.Lookup(lpa)
			if !found {
				err = fmt.Errorf("group %d: exact bit set for LPA %d but the table has no mapping", id, lpa)
				return
			}
			if got != want {
				err = fmt.Errorf("group %d: exact bit set for LPA %d but prediction %d != true PPA %d",
					id, lpa, got, want)
				return
			}
		}
	})
	return err
}

// TuneConfig parameterizes the per-group γ feedback controller.
type TuneConfig struct {
	// TargetMissRatio is the tolerated *costly* mispredictions-per-read
	// of a group — misses the direction hint did not absorb, each costing
	// an extra flash read; groups observed above it are demoted (γ
	// halved, toward exact). Hint-resolved misses are free and do not
	// count against a group. Default 0.02.
	TargetMissRatio float64
	// MinReads is the observation floor: groups with fewer reads in the
	// window keep accumulating instead of being judged on noise.
	// Default 64.
	MinReads uint32
}

// WithDefaults fills zero fields with the controller defaults.
func (c TuneConfig) WithDefaults() TuneConfig {
	if c.TargetMissRatio <= 0 {
		c.TargetMissRatio = 0.02
	}
	if c.MinReads == 0 {
		c.MinReads = 64
	}
	return c
}

// RetuneGamma runs one feedback round over the resident groups: a group
// whose observed *costly* misprediction ratio exceeds the target is
// demoted (γ ← γ/2, reaching exact at 0), and a group that went a full
// window without a single miss is promoted back toward the global bound
// (γ ← max(1, 2γ), capped at Gamma()) so cold accurate regions reclaim
// DRAM on their next relearn. A group whose misses the hint absorbs is
// left alone — its compact encoding costs nothing. Each judged group's
// window counters reset. It returns the IDs of groups whose γ changed,
// in ascending order — under demand paging their flash images went
// stale and must be marked dirty so the tuned γ survives eviction and
// recovery.
func (t *Table) RetuneGamma(cfg TuneConfig) []addr.GroupID {
	cfg = cfg.WithDefaults()
	var changed []addr.GroupID
	t.eachGroup(func(id addr.GroupID, g *group) {
		tu := &g.tune
		if tu.reads < cfg.MinReads {
			return
		}
		old := tu.gamma
		ratio := float64(tu.costly) / float64(tu.reads)
		switch {
		case ratio > 2*cfg.TargetMissRatio:
			// Hopeless group: a window spent at twice the target is pure
			// double-read tax; skip the halving ladder and go exact.
			tu.gamma = 0
		case ratio > cfg.TargetMissRatio:
			tu.gamma /= 2
		case tu.misses == 0 && int(tu.gamma) < t.gamma:
			next := int(tu.gamma) * 2
			if next == 0 {
				next = 1
			}
			if next > t.gamma {
				next = t.gamma
			}
			tu.gamma = clampGamma(next)
		}
		tu.reads, tu.misses, tu.costly = 0, 0, 0
		if tu.gamma != old {
			changed = append(changed, id)
		}
	})
	return changed
}

// GroupTune is the externally visible adaptive-γ state of one group.
type GroupTune struct {
	Group  addr.GroupID
	Gamma  int
	Hint   int
	Streak int
	Reads  uint32
	Misses uint32
	Costly uint32
	Exact  [exactBitmapBytes]byte // predicted-exact bitmap, one bit per LPA slot
}

// GroupTunes returns every resident group's adaptive-γ state in
// ascending group order (tests pin the page-out/recover round trip with
// it; GammaTuneSweep summarizes it into a γ histogram).
func (t *Table) GroupTunes() []GroupTune {
	out := make([]GroupTune, 0, t.nGroups)
	t.eachGroup(func(id addr.GroupID, g *group) {
		out = append(out, GroupTune{
			Group:  id,
			Gamma:  int(g.tune.gamma),
			Hint:   int(g.tune.hint),
			Streak: int(g.tune.streak),
			Reads:  g.tune.reads,
			Misses: g.tune.misses,
			Costly: g.tune.costly,
			Exact:  g.tune.exact,
		})
	})
	return out
}
