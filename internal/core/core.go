// Package core implements LeaFTL's primary contribution: the learned
// address-mapping table (paper §3).
//
// The mapping table replaces the one-entry-per-page table of a
// conventional page-level FTL with learned index segments. Each segment is
// an 8-byte linear model (S, L, K, I) predicting PPA = ⌈K·x + I⌉ for the
// LPAs in [S, S+L] (§3.1–§3.2). Segments are grouped by 256-LPA groups so
// the starting LPA fits in one byte, managed per group in a log-structured
// multi-level list (§3.4, Algorithm 1), merged with bitmap diffs
// (Algorithm 2), and periodically compacted (§3.7). A per-group Conflict
// Resolution Buffer (CRB) records exactly which LPAs each *approximate*
// segment indexes, resolving range overlaps between approximate segments
// (Figure 9).
//
// The package is a pure in-memory index: it never touches flash. The SSD
// device (package ssd) is responsible for verifying predicted PPAs against
// out-of-band reverse mappings and for charging the one extra flash read a
// misprediction costs (§3.5).
package core
