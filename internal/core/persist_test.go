package core

import (
	"math/rand"
	"testing"

	"leaftl/internal/addr"
)

// buildChurnedTable creates a table with multiple levels, approximate
// segments and CRB state.
func buildChurnedTable(t *testing.T, gamma int, seed int64) (*Table, model) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	tb := NewTable(gamma)
	m := model{}
	ppa := addr.PPA(0)
	for round := 0; round < 120; round++ {
		start := addr.LPA(rng.Intn(2048))
		var pairs []addr.Mapping
		switch round % 3 {
		case 0:
			n := 1 + rng.Intn(200)
			for i := 0; i < n; i++ {
				pairs = append(pairs, addr.Mapping{LPA: start + addr.LPA(i), PPA: ppa})
				ppa++
			}
		case 1:
			st := 2 + rng.Intn(4)
			for i := 0; i < 40; i++ {
				pairs = append(pairs, addr.Mapping{LPA: start + addr.LPA(i*st), PPA: ppa})
				ppa++
			}
		default:
			l := start
			for i := 0; i < 30; i++ {
				l += addr.LPA(1 + rng.Intn(4))
				pairs = append(pairs, addr.Mapping{LPA: l, PPA: ppa})
				ppa++
			}
		}
		tb.Update(pairs)
		m.apply(pairs)
	}
	return tb, m
}

func TestMarshalRoundTrip(t *testing.T) {
	for _, gamma := range []int{0, 4} {
		t.Run(gammaName(gamma), func(t *testing.T) {
			tb, m := buildChurnedTable(t, gamma, 31)
			data, err := tb.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}

			restored := NewTable(99) // gamma overwritten by the snapshot
			if err := restored.UnmarshalBinary(data); err != nil {
				t.Fatal(err)
			}
			if restored.Gamma() != gamma {
				t.Errorf("gamma = %d, want %d", restored.Gamma(), gamma)
			}
			// Every lookup must agree exactly with the original table.
			for lpa := range m {
				want, wres, wok := tb.Lookup(lpa)
				got, gres, gok := restored.Lookup(lpa)
				if wok != gok || want != got || wres != gres {
					t.Fatalf("Lookup(%d): original %d/%v/%v, restored %d/%v/%v",
						lpa, want, wres, wok, got, gres, gok)
				}
			}
			// Structure statistics survive too.
			if a, b := tb.Stats(), restored.Stats(); a != b {
				t.Errorf("stats differ: %+v vs %+v", a, b)
			}
			// Mutations after restore keep working.
			restored.Update(mappings(0, 1, 999999, 64))
			if ppa, _, ok := restored.Lookup(10); !ok || ppa != 999999+10 {
				t.Errorf("post-restore update broken: %d %v", ppa, ok)
			}
		})
	}
}

func TestMarshalSizeMatchesAccounting(t *testing.T) {
	tb, _ := buildChurnedTable(t, 4, 7)
	data, err := tb.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// Snapshot = footprint (segments + CRB) + headers; headers are small.
	footprint := tb.SizeBytes()
	if len(data) < footprint {
		t.Errorf("snapshot %dB smaller than footprint %dB", len(data), footprint)
	}
	st := tb.Stats()
	overhead := len(data) - footprint
	// Per group: 4B gid + 47B tune block (15B counters + 32B exact
	// bitmap) + 2B level count + 2B CRB count.
	maxOverhead := 16 + st.Groups*55 + st.TotalLevels*2 + st.Approximate*1
	if overhead > maxOverhead {
		t.Errorf("snapshot overhead %dB exceeds bound %dB", overhead, maxOverhead)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	tb, _ := buildChurnedTable(t, 0, 3)
	good, err := tb.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":         {},
		"bad magic":     append([]byte("XXXX"), good[4:]...),
		"bad version":   append([]byte("LFTL\xff"), good[5:]...),
		"truncated":     good[:len(good)/2],
		"trailing junk": append(append([]byte(nil), good...), 0xAA),
	}
	for name, data := range cases {
		fresh := NewTable(0)
		if err := fresh.UnmarshalBinary(data); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestMarshalDeterministic(t *testing.T) {
	tb, _ := buildChurnedTable(t, 4, 5)
	a, err := tb.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	b, err := tb.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Error("marshal is nondeterministic")
	}
}

func TestMarshalEmptyTable(t *testing.T) {
	tb := NewTable(2)
	data, err := tb.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	restored := NewTable(0)
	if err := restored.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if restored.Gamma() != 2 || restored.Stats().Groups != 0 {
		t.Errorf("restored empty table: gamma=%d groups=%d", restored.Gamma(), restored.Stats().Groups)
	}
}
