package core

import (
	"fmt"
	"sort"

	"leaftl/internal/addr"
)

// Demand paging of the learned mapping table (paper §3.8): segment groups
// not backed by DRAM live as serialized records in flash translation
// pages, tracked by a Global Mapping Directory (GMD). The Pager is the
// machinery behind a scheme's SetBudget: it decides which groups stay
// resident (a CLOCK second-chance policy — a one-bit LRU — over the
// resident set), demand-loads evicted groups on access, and reports every
// transfer as counts of translation-page flash operations so the SSD can
// charge them on its flash timelines.
//
// The Pager is deliberately oblivious to where group state lives: it
// drives a groupStore, implemented by both Table and ShardedTable, so the
// plain and sharded schemes share one GMD and make identical paging
// decisions for identical operation sequences (the sharded-invisible
// contract the experiment suite pins).
//
// A Pager is not safe for concurrent use; callers that translate from
// multiple goroutines (leaftl.Sharded) serialize paging behind their own
// lock and keep a lock-free fast path for the no-pressure case.

// groupStore is the residency surface the Pager drives.
type groupStore interface {
	hasGroup(addr.GroupID) bool
	groupFootprint(addr.GroupID) int
	residentGroups() []addr.GroupID
	marshalGroup(addr.GroupID) ([]byte, error)
	installGroup([]byte) (addr.GroupID, error)
	dropGroup(addr.GroupID) (int, bool)
	residentBytes() int
}

// PageCost counts translation-page flash operations a paging action
// induced: reads for demand loads, writes for dirty evictions and
// persistence.
type PageCost struct {
	MetaReads  int
	MetaWrites int

	// ReadIDs/WriteIDs name the virtual translation PPA behind each
	// counted operation, in charge order, so the device can route the op
	// to the die holding that page (multi-page images get one id per
	// constituent page).
	ReadIDs  []uint64
	WriteIDs []uint64
}

// Add accumulates o into c.
func (c *PageCost) Add(o PageCost) {
	c.MetaReads += o.MetaReads
	c.MetaWrites += o.MetaWrites
	c.ReadIDs = append(c.ReadIDs, o.ReadIDs...)
	c.WriteIDs = append(c.WriteIDs, o.WriteIDs...)
}

// pageIDs expands a group image's virtual translation PPA into one
// identity per constituent flash page.
func pageIDs(ppa uint32, n int) []uint64 {
	ids := make([]uint64, n)
	for i := range ids {
		ids[i] = uint64(ppa)<<8 | uint64(i&0xff)
	}
	return ids
}

// PagerStats counts paging events since the pager was created.
type PagerStats struct {
	// Faults counts demand loads of evicted groups.
	Faults uint64
	// Evictions counts groups dropped from DRAM.
	Evictions uint64
	// DirtyWritebacks counts translation-page image rewrites (dirty
	// evictions plus periodic persistence).
	DirtyWritebacks uint64
}

// gmdEntry is one Global Mapping Directory slot: where a group's
// translation-page image lives, whether a DRAM copy exists, and whether
// that copy has diverged from the image.
type gmdEntry struct {
	ppa       uint32 // virtual translation-page address of the current image
	image     []byte // serialized group record (nil: never persisted)
	dramBytes int    // decoded footprint at last eviction (FullSizeBytes accounting)
	resident  bool
	dirty     bool // DRAM copy differs from image
	ref       bool // CLOCK reference bit
}

// Pager demand-pages a table's segment groups against a byte budget.
type Pager struct {
	store    groupStore
	pageSize int
	budget   int // ≤ 0: unlimited (loads still happen for evicted groups)

	gmd  map[addr.GroupID]*gmdEntry
	ring []addr.GroupID // CLOCK ring over resident groups, insertion order
	hand int

	evicted      int // non-resident GMD entries
	evictedBytes int // Σ dramBytes over non-resident entries
	flashPages   int // Σ image pages over entries holding an image
	nextPPA      uint32
	fast         bool // cached FastPath value, refreshed on mutation
	stats        PagerStats

	// journal, when non-nil, replaces the full-image writeback path with
	// the mapping-delta log (journal.go): dirty evictions append deltas,
	// demand loads replay base+chain, and gmdEntry.image stays nil — the
	// journal owns the durable bytes. Nil keeps the image path
	// bit-identical to its pre-journal behavior.
	journal *journal
}

// EnableJournal switches metadata persistence to the mapping-delta
// journal. Call before any paging activity; enabling an already-active
// pager would orphan existing images.
func (p *Pager) EnableJournal() {
	if p.journal == nil {
		p.journal = newJournal(p.pageSize)
	}
}

// JournalEnabled reports whether the mapping-delta journal is on.
func (p *Pager) JournalEnabled() bool { return p.journal != nil }

// ConfigureJournal sets the journal's translation-block geometry and
// footprint cap (device wiring calls this once flash geometry and the
// metadata share of over-provisioning are known). No-op when the
// journal is off.
func (p *Pager) ConfigureJournal(pagesPerBlock, maxPages int) {
	if p.journal != nil {
		p.journal.configure(pagesPerBlock, maxPages)
	}
}

// JournalStats snapshots the journal counters (zero when disabled).
func (p *Pager) JournalStats() JournalStats {
	if p.journal == nil {
		return JournalStats{}
	}
	return p.journal.Stats()
}

// SetJournalHook installs the crash-injection hook fired before journal
// GC ("journal.gc") and each chain fold ("journal.fold").
func (p *Pager) SetJournalHook(fn func(string)) {
	if p.journal != nil {
		p.journal.hook = fn
	}
}

// NewPager returns an inactive pager (no budget, empty GMD) over store.
// pageSize is the flash page size translation-page costs are counted in.
func NewPager(store groupStore, pageSize int) *Pager {
	if pageSize < 1 {
		pageSize = 1
	}
	return &Pager{
		store:    store,
		pageSize: pageSize,
		gmd:      make(map[addr.GroupID]*gmdEntry),
		fast:     true,
	}
}

// imagePages returns the flash pages an n-byte image occupies.
func (p *Pager) imagePages(n int) int {
	pages := (n + p.pageSize - 1) / p.pageSize
	if pages < 1 {
		pages = 1
	}
	return pages
}

// SetBudget sets the resident-set byte budget (≤ 0 disables the cap) and
// adopts any groups already resident in the store so their dirtiness is
// tracked from here on. It does not evict; the next Enforce does.
func (p *Pager) SetBudget(bytes int) {
	p.budget = bytes
	if p.Active() {
		p.adoptResident()
	}
	p.refresh()
}

// Budget returns the configured byte budget.
func (p *Pager) Budget() int { return p.budget }

// Active reports whether the pager is tracking group state: a budget is
// set, or the GMD already holds entries (e.g. restored from recovery).
// When inactive, the scheme bypasses the pager entirely.
func (p *Pager) Active() bool { return p.budget > 0 || len(p.gmd) > 0 }

// FastPath reports that every known group is resident and within budget,
// so lookups may skip the pager (no fault is possible; reference bits are
// skipped, which only costs CLOCK precision once pressure appears).
func (p *Pager) FastPath() bool { return p.fast }

// Paging reports that the budget has actually bound at least once:
// groups are (or have been) backed by flash images. Until then the
// scheme behaves — and charges — exactly like the unbudgeted table,
// and holds no serialized images.
func (p *Pager) Paging() bool { return p.evicted > 0 || p.flashPages > 0 }

// Stats returns the paging event counters.
func (p *Pager) Stats() PagerStats { return p.stats }

// EvictedGroups returns how many groups are currently paged out.
func (p *Pager) EvictedGroups() int { return p.evicted }

// TranslationPages returns the flash pages currently occupied by group
// images (the translation-block footprint charged against
// over-provisioned capacity).
func (p *Pager) TranslationPages() int { return p.flashPages }

// FullSizeBytes returns the complete mapping size, resident or not.
// Groups restored from images that were never decoded count 0 until
// first loaded.
func (p *Pager) FullSizeBytes() int { return p.store.residentBytes() + p.evictedBytes }

// refresh recomputes the cached FastPath bit. Size only changes under
// mutation, so lookups can trust the cache without touching the store.
func (p *Pager) refresh() {
	p.fast = p.evicted == 0 && (p.budget <= 0 || p.store.residentBytes() <= p.budget)
}

// adoptResident creates GMD entries for store-resident groups the pager
// has not seen (budget enabled after traffic, or a snapshot restore).
// Adopted groups are dirty: no image exists yet.
func (p *Pager) adoptResident() {
	for _, id := range p.store.residentGroups() {
		if p.gmd[id] == nil {
			p.gmd[id] = &gmdEntry{resident: true, dirty: true, ref: true}
			p.ring = append(p.ring, id)
		}
	}
}

// EnsureRead makes gid resident for a lookup. known is false when the
// group has no state anywhere (never written); the caller treats the
// LPA as unmapped without touching the store.
func (p *Pager) EnsureRead(gid addr.GroupID) (cost PageCost, known bool) {
	e := p.gmd[gid]
	if e == nil {
		if !p.store.hasGroup(gid) {
			return cost, false
		}
		// Self-heal: a resident group the GMD missed (defensive; the
		// commit path registers every group it creates).
		p.gmd[gid] = &gmdEntry{resident: true, dirty: true, ref: true}
		p.ring = append(p.ring, gid)
		return cost, true
	}
	if e.resident {
		e.ref = true
		return cost, true
	}
	cost = p.load(gid, e)
	return cost, true
}

// EnsureWrite makes gid resident for a commit, creating the GMD entry
// for a brand-new group, and marks it dirty.
func (p *Pager) EnsureWrite(gid addr.GroupID) PageCost {
	var cost PageCost
	e := p.gmd[gid]
	if e == nil {
		e = &gmdEntry{resident: true}
		p.gmd[gid] = e
		p.ring = append(p.ring, gid)
	} else if !e.resident {
		cost = p.load(gid, e)
	}
	e.ref = true
	e.dirty = true
	return cost
}

// load demand-loads an evicted group back into the store: from its GMD
// image, or — under the journal — by replaying its base image plus
// delta chain, charging every distinct flash page the chain touches.
func (p *Pager) load(gid addr.GroupID, e *gmdEntry) PageCost {
	img, cost := e.image, PageCost{}
	if p.journal != nil {
		img, cost = p.journal.load(gid)
	}
	if _, err := p.store.installGroup(img); err != nil {
		panic(fmt.Sprintf("core: GMD image for group %d does not install: %v", gid, err))
	}
	e.resident = true
	e.dirty = false
	e.ref = true
	p.ring = append(p.ring, gid)
	p.evicted--
	p.evictedBytes -= e.dramBytes
	p.stats.Faults++
	p.fast = false // a fault implies pressure; Enforce will re-evaluate
	if p.journal != nil {
		return cost
	}
	n := p.imagePages(len(e.image))
	return PageCost{MetaReads: n, ReadIDs: pageIDs(e.ppa, n)}
}

// Enforce evicts CLOCK victims until the resident set fits the budget.
// Call it after any operation that may have grown the table or loaded a
// group; the just-used groups carry fresh reference bits and get a
// second chance.
func (p *Pager) Enforce() PageCost {
	var cost PageCost
	if p.budget > 0 {
		for p.store.residentBytes() > p.budget && len(p.ring) > 0 {
			cost.Add(p.evictOne())
		}
	}
	p.refresh()
	return cost
}

// evictOne runs the CLOCK sweep and evicts the first unreferenced group.
func (p *Pager) evictOne() PageCost {
	for sweep := 0; sweep <= 2*len(p.ring); sweep++ {
		if p.hand >= len(p.ring) {
			p.hand = 0
		}
		gid := p.ring[p.hand]
		e := p.gmd[gid]
		if e.ref {
			e.ref = false
			p.hand++
			continue
		}
		return p.evict(gid, e)
	}
	panic("core: CLOCK sweep found no victim in a non-empty ring")
}

// evict pages one group out: rewrite its image if the DRAM copy
// diverged, then drop the DRAM copy.
func (p *Pager) evict(gid addr.GroupID, e *gmdEntry) PageCost {
	var cost PageCost
	if !p.store.hasGroup(gid) {
		// Phantom entry (group registered but never materialized);
		// forget it.
		delete(p.gmd, gid)
		p.unring(gid)
		return cost
	}
	persisted := e.image != nil
	if p.journal != nil {
		persisted = p.journal.has(gid)
	}
	if e.dirty || !persisted {
		cost.Add(p.writeback(gid, e))
	}
	freed, _ := p.store.dropGroup(gid)
	e.dramBytes = freed
	e.resident = false
	e.dirty = false
	p.evicted++
	p.evictedBytes += freed
	p.stats.Evictions++
	p.unring(gid)
	return cost
}

// writeback serializes the group's current state into a fresh
// translation-page image (log-structured: a new virtual PPA each write).
// Under the journal, the full rewrite becomes a delta append: only the
// sections that changed since the group's base image travel to flash.
func (p *Pager) writeback(gid addr.GroupID, e *gmdEntry) PageCost {
	img, err := p.store.marshalGroup(gid)
	if err != nil {
		panic(fmt.Sprintf("core: group %d does not marshal: %v", gid, err))
	}
	if p.journal != nil {
		cost := p.journal.writeback(gid, img)
		p.flashPages = p.journal.pages()
		e.dirty = false
		p.stats.DirtyWritebacks++
		return cost
	}
	if e.image != nil {
		p.flashPages -= p.imagePages(len(e.image))
	}
	e.image = img
	p.nextPPA++
	e.ppa = p.nextPPA
	p.flashPages += p.imagePages(len(img))
	e.dirty = false
	p.stats.DirtyWritebacks++
	n := p.imagePages(len(img))
	return PageCost{MetaWrites: n, WriteIDs: pageIDs(e.ppa, n)}
}

// unring removes gid from the CLOCK ring, keeping the hand on the
// element that followed it.
func (p *Pager) unring(gid addr.GroupID) {
	for i, id := range p.ring {
		if id == gid {
			copy(p.ring[i:], p.ring[i+1:])
			p.ring = p.ring[:len(p.ring)-1]
			if p.hand > i {
				p.hand--
			}
			return
		}
	}
}

// MarkDirty flags one resident group dirty (compaction reshaped it in
// place, so its image must be rewritten at the next FlushDirty).
func (p *Pager) MarkDirty(gid addr.GroupID) {
	if e := p.gmd[gid]; e != nil && e.resident {
		e.dirty = true
	}
}

// FlushDirty persists every dirty resident group (the periodic §3.8
// table persistence, now group-granular: clean groups cost nothing).
func (p *Pager) FlushDirty() PageCost {
	var cost PageCost
	p.adoptResident() // groups created outside the budgeted path, if any
	for _, gid := range p.ring {
		e := p.gmd[gid]
		if e.dirty && p.store.hasGroup(gid) {
			cost.Add(p.writeback(gid, e))
		}
	}
	p.refresh()
	return cost
}

// EvictedImages returns the current image of every paged-out group, for
// full-table snapshots (resident groups serialize fresh from DRAM). The
// returned slices are the live images; callers must not mutate them.
func (p *Pager) EvictedImages() map[addr.GroupID][]byte {
	out := make(map[addr.GroupID][]byte, p.evicted)
	for gid, e := range p.gmd {
		if !e.resident {
			if p.journal != nil {
				out[gid] = p.journal.image(gid)
			} else {
				out[gid] = e.image
			}
		}
	}
	return out
}

// Reset forgets all GMD and cache state (a snapshot restore replaced the
// table wholesale) and re-adopts whatever is now resident under the
// existing budget.
func (p *Pager) Reset() {
	p.gmd = make(map[addr.GroupID]*gmdEntry)
	p.ring = p.ring[:0]
	p.hand = 0
	p.evicted, p.evictedBytes, p.flashPages = 0, 0, 0
	if p.journal != nil {
		fresh := newJournal(p.pageSize)
		fresh.configure(p.journal.ppb, p.journal.maxPages)
		fresh.hook = p.journal.hook
		p.journal = fresh
	}
	if p.Active() {
		p.adoptResident()
	}
	p.refresh()
}

// PersistedGroups returns the translation-page images that are current
// (the flash copies a crash cannot lose): every evicted group, plus
// resident groups whose image matches DRAM. Dirty resident groups are
// absent — their latest state exists only in DRAM. The returned slices
// are the live images; callers must not mutate them.
func (p *Pager) PersistedGroups() map[addr.GroupID][]byte {
	if p.journal != nil {
		// Recovery's journal-tail replay: every journaled group folds its
		// base image plus delta chain. Dirty residents are excluded —
		// their journal state predates the DRAM-only updates, matching
		// the image path's staleness rule.
		return p.journal.images(func(gid addr.GroupID) bool {
			e := p.gmd[gid]
			return e != nil && e.resident && e.dirty
		})
	}
	out := make(map[addr.GroupID][]byte)
	for gid, e := range p.gmd {
		if e.image != nil && !e.dirty {
			out[gid] = e.image
		}
	}
	return out
}

// RestoreGroups seeds an empty pager's GMD with persisted images
// (recovery): groups start paged out and demand-load on first access,
// so restoring costs no DRAM up front. FullSizeBytes undercounts these
// groups until they are first loaded.
func (p *Pager) RestoreGroups(images map[addr.GroupID][]byte) error {
	gids := make([]addr.GroupID, 0, len(images))
	for gid := range images {
		gids = append(gids, gid)
	}
	sort.Slice(gids, func(i, j int) bool { return gids[i] < gids[j] })
	for _, gid := range gids {
		img := images[gid]
		if len(img) == 0 {
			return fmt.Errorf("core: empty image for group %d", gid)
		}
		if e := p.gmd[gid]; e != nil {
			return fmt.Errorf("core: group %d already in the GMD", gid)
		}
		if p.store.hasGroup(gid) {
			return fmt.Errorf("core: group %d already resident; restore wants an empty table", gid)
		}
		p.nextPPA++
		if p.journal != nil {
			// Seed the journal base uncharged: the image's pages already
			// exist on flash, recovery only rebuilds the RAM directory.
			if err := p.journal.seed(gid, img); err != nil {
				return err
			}
			p.gmd[gid] = &gmdEntry{ppa: p.nextPPA}
		} else {
			p.gmd[gid] = &gmdEntry{ppa: p.nextPPA, image: img}
			p.flashPages += p.imagePages(len(img))
		}
		p.evicted++
	}
	if p.journal != nil {
		p.flashPages = p.journal.pages()
	}
	p.refresh()
	return nil
}

// Check audits the GMD against the store: residency bits, ring
// membership, flash-page accounting, and the budget cap. It is the
// mapping-side leg of the device's CheckInvariants.
func (p *Pager) Check() error {
	if !p.Active() {
		return nil
	}
	onRing := make(map[addr.GroupID]bool, len(p.ring))
	for _, gid := range p.ring {
		if onRing[gid] {
			return fmt.Errorf("gmd: group %d appears twice on the CLOCK ring", gid)
		}
		onRing[gid] = true
	}
	evicted, evictedBytes, flashPages := 0, 0, 0
	for gid, e := range p.gmd {
		if e.image != nil {
			flashPages += p.imagePages(len(e.image))
		}
		persisted := e.image != nil
		if p.journal != nil {
			if e.image != nil {
				return fmt.Errorf("gmd: group %d holds a full image with the journal on", gid)
			}
			persisted = p.journal.has(gid)
		}
		switch {
		case e.resident && !onRing[gid]:
			return fmt.Errorf("gmd: resident group %d missing from the CLOCK ring", gid)
		case !e.resident && onRing[gid]:
			return fmt.Errorf("gmd: evicted group %d still on the CLOCK ring", gid)
		case e.resident && !p.store.hasGroup(gid):
			return fmt.Errorf("gmd: group %d marked resident but absent from the table", gid)
		case !e.resident && p.store.hasGroup(gid):
			return fmt.Errorf("gmd: group %d marked evicted but present in the table", gid)
		case !e.resident && !persisted:
			return fmt.Errorf("gmd: evicted group %d has no translation-page image", gid)
		case !e.resident && e.dirty:
			return fmt.Errorf("gmd: evicted group %d is dirty (evictions write back)", gid)
		}
		if !e.resident {
			evicted++
			evictedBytes += e.dramBytes
		}
	}
	for _, gid := range p.store.residentGroups() {
		if e := p.gmd[gid]; e == nil {
			return fmt.Errorf("gmd: table group %d has no GMD entry", gid)
		}
	}
	if p.journal != nil {
		flashPages = p.journal.pages()
	}
	switch {
	case evicted != p.evicted:
		return fmt.Errorf("gmd: %d evicted entries, counter says %d", evicted, p.evicted)
	case evictedBytes != p.evictedBytes:
		return fmt.Errorf("gmd: %d evicted bytes, counter says %d", evictedBytes, p.evictedBytes)
	case flashPages != p.flashPages:
		return fmt.Errorf("gmd: %d image pages, counter says %d", flashPages, p.flashPages)
	}
	if p.journal != nil {
		if err := p.journal.check(); err != nil {
			return err
		}
	}
	if p.budget > 0 && p.store.residentBytes() > p.budget {
		return fmt.Errorf("gmd: resident set %dB exceeds budget %dB", p.store.residentBytes(), p.budget)
	}
	return nil
}

// groupStore adapters. Table's lowercase methods simply forward;
// ShardedTable's take the owning shard's lock per call, so one shared
// Pager makes identical decisions over either flavor.

func (t *Table) hasGroup(id addr.GroupID) bool                { return t.HasGroup(id) }
func (t *Table) groupFootprint(id addr.GroupID) int           { return t.GroupFootprint(id) }
func (t *Table) residentGroups() []addr.GroupID               { return t.ResidentGroups() }
func (t *Table) marshalGroup(id addr.GroupID) ([]byte, error) { return t.MarshalGroup(id) }
func (t *Table) installGroup(b []byte) (addr.GroupID, error)  { return t.InstallGroup(b) }
func (t *Table) dropGroup(id addr.GroupID) (int, bool)        { return t.DropGroup(id) }
func (t *Table) residentBytes() int                           { return t.SizeBytes() }

var _ groupStore = (*Table)(nil)
