package core

import (
	"math/rand"
	"testing"

	"leaftl/internal/addr"
)

// model mirrors what the table should answer: latest PPA per LPA.
type model map[addr.LPA]addr.PPA

func (m model) apply(pairs []addr.Mapping) {
	for _, p := range pairs {
		m[p.LPA] = p.PPA
	}
}

// verify checks every modeled LPA against the table within gamma.
func verify(t *testing.T, tb *Table, m model, gamma int) {
	t.Helper()
	for lpa, want := range m {
		ppa, _, ok := tb.Lookup(lpa)
		if !ok {
			t.Fatalf("Lookup(%d): not found, want %d", lpa, want)
		}
		d := int64(ppa) - int64(want)
		if d < -int64(gamma) || d > int64(gamma) {
			t.Fatalf("Lookup(%d) = %d, want %d (±%d)", lpa, ppa, want, gamma)
		}
	}
}

func TestTableSequentialThenLookup(t *testing.T) {
	tb := NewTable(0)
	pairs := mappings(0, 1, 1000, 512)
	tb.Update(pairs)
	for _, p := range pairs {
		got, res, ok := tb.Lookup(p.LPA)
		if !ok || got != p.PPA {
			t.Fatalf("Lookup(%d) = %d,%v want %d", p.LPA, got, ok, p.PPA)
		}
		if res.Levels != 1 {
			t.Errorf("Lookup(%d) visited %d levels, want 1", p.LPA, res.Levels)
		}
	}
	if _, _, ok := tb.Lookup(512); ok {
		t.Error("Lookup(512) should miss")
	}
	if _, _, ok := tb.Lookup(99999); ok {
		t.Error("Lookup in unwritten group should miss")
	}
}

func TestTableOverwriteTakesLatest(t *testing.T) {
	tb := NewTable(0)
	m := model{}
	b1 := mappings(0, 1, 1000, 64)
	tb.Update(b1)
	m.apply(b1)
	// Overwrite the middle with new PPAs (paper Figure 13 T2).
	b2 := mappings(16, 1, 5000, 16)
	tb.Update(b2)
	m.apply(b2)
	verify(t, tb, m, 0)

	st := tb.Stats()
	if st.MaxLevels < 2 {
		t.Errorf("expected ≥2 levels after overlapping update, got %d", st.MaxLevels)
	}
}

func TestTableFigure13Scenario(t *testing.T) {
	// Replays the timeline of paper Figure 13 with concrete PPAs.
	tb := NewTable(4)
	m := model{}
	step := func(pairs []addr.Mapping) {
		tb.Update(pairs)
		m.apply(pairs)
		verify(t, tb, m, 4)
	}
	step(mappings(0, 1, 100, 64))   // T0: [0,63]
	step(mappings(200, 1, 400, 56)) // T1: [200,255]
	step(mappings(16, 1, 600, 16))  // T2: [16,31]
	irregular := func(lpas []addr.LPA, ppa addr.PPA) []addr.Mapping {
		out := make([]addr.Mapping, len(lpas))
		for i, l := range lpas {
			out[i] = addr.Mapping{LPA: l, PPA: ppa + addr.PPA(i)}
		}
		return out
	}
	step(irregular([]addr.LPA{75, 78, 82}, 700)) // T3
	step(irregular([]addr.LPA{72, 73, 80}, 800)) // T4
	// T5/T6 lookups happen inside verify.
	step(mappings(32, 1, 900, 59)) // T7: [32,90]
	tb.Compact()                   // T8
	verify(t, tb, m, 4)
}

func TestTableCRBRedirect(t *testing.T) {
	// Two overlapping approximate segments: newest owns its LPAs, older
	// keeps the rest, and lookups must route through the CRB (Figure 9).
	tb := NewTable(8)
	m := model{}
	ir := func(lpas []addr.LPA, ppa addr.PPA) []addr.Mapping {
		out := make([]addr.Mapping, len(lpas))
		for i, l := range lpas {
			out[i] = addr.Mapping{LPA: l, PPA: ppa + addr.PPA(i)}
		}
		return out
	}
	b1 := ir([]addr.LPA{100, 101, 103, 104, 106}, 1000)
	tb.Update(b1)
	m.apply(b1)
	b2 := ir([]addr.LPA{102, 105, 107, 108}, 2000)
	tb.Update(b2)
	m.apply(b2)
	verify(t, tb, m, 8)

	// LPA 103 belongs to the first (now lower) segment even though the
	// second covers it by range.
	_, res, ok := tb.Lookup(103)
	if !ok {
		t.Fatal("Lookup(103) missed")
	}
	if !res.Approx {
		t.Error("Lookup(103) should be served by an approximate segment")
	}
}

func TestTableCompactReducesLevels(t *testing.T) {
	tb := NewTable(0)
	m := model{}
	// Repeatedly rewrite disjoint slices of one group to stack levels.
	for i := 0; i < 8; i++ {
		b := mappings(addr.LPA(i*32), 1, addr.PPA(1000*i), 32)
		tb.Update(b)
		m.apply(b)
	}
	// Now rewrite overlapping ranges to force overlaps across levels.
	for i := 0; i < 8; i++ {
		b := mappings(addr.LPA(i*16), 1, addr.PPA(50000+1000*i), 48)
		tb.Update(b)
		m.apply(b)
	}
	before := tb.Stats()
	tb.Compact()
	after := tb.Stats()
	verify(t, tb, m, 0)
	if after.Segments > before.Segments {
		t.Errorf("compaction grew segments: %d → %d", before.Segments, after.Segments)
	}
	if after.MaxLevels > before.MaxLevels {
		t.Errorf("compaction grew levels: %d → %d", before.MaxLevels, after.MaxLevels)
	}
}

func TestTableSizeAccounting(t *testing.T) {
	tb := NewTable(0)
	tb.Update(mappings(0, 1, 0, 256))
	st := tb.Stats()
	if st.Segments != 1 || st.SegmentBytes != SegmentBytes {
		t.Errorf("stats = %+v, want 1 segment / 8 bytes", st)
	}
	if tb.SizeBytes() != SegmentBytes {
		t.Errorf("SizeBytes = %d, want %d", tb.SizeBytes(), SegmentBytes)
	}
	// A full random group degrades to ≤ 256 single-point segments: never
	// worse than page-level mapping's 8 B/entry (paper §3.1).
	tb2 := NewTable(0)
	rng := rand.New(rand.NewSource(7))
	pairs := make([]addr.Mapping, 256)
	for i := range pairs {
		pairs[i] = addr.Mapping{LPA: addr.LPA(i), PPA: addr.PPA(rng.Intn(1 << 30))}
	}
	tb2.Update(pairs)
	if got, limit := tb2.SizeBytes(), 256*8; got > limit {
		t.Errorf("random group footprint %d exceeds page-level %d", got, limit)
	}
}

func TestTableLevelAndCRBStats(t *testing.T) {
	tb := NewTable(4)
	ir := func(lpas []addr.LPA, ppa addr.PPA) []addr.Mapping {
		out := make([]addr.Mapping, len(lpas))
		for i, l := range lpas {
			out[i] = addr.Mapping{LPA: l, PPA: ppa + addr.PPA(i)}
		}
		return out
	}
	tb.Update(ir([]addr.LPA{1, 2, 5, 9}, 100))
	if n := len(tb.CRBSizes()); n != 1 {
		t.Fatalf("CRBSizes groups = %d, want 1", n)
	}
	if sz := tb.CRBSizes()[0]; sz != 5 { // 4 LPAs + 1 separator
		t.Errorf("CRB size = %d, want 5", sz)
	}
	if lc := tb.LevelCounts(); len(lc) != 1 || lc[0] != 1 {
		t.Errorf("LevelCounts = %v", lc)
	}
	if sl := tb.SegmentLengths(); len(sl) != 1 || sl[0] != 4 {
		t.Errorf("SegmentLengths = %v", sl)
	}
}

// TestTableRandomizedModel is the package's main correctness property:
// arbitrary interleavings of batch updates (sequential, strided,
// irregular, random), lookups and compactions must always agree with a
// reference map within gamma.
func TestTableRandomizedModel(t *testing.T) {
	for _, gamma := range []int{0, 1, 4, 16} {
		gamma := gamma
		t.Run(gammaName(gamma), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(42 + gamma)))
			tb := NewTable(gamma)
			m := model{}
			ppa := addr.PPA(0)
			const space = 4096 // 16 groups
			for round := 0; round < 400; round++ {
				var pairs []addr.Mapping
				start := addr.LPA(rng.Intn(space))
				switch rng.Intn(4) {
				case 0: // sequential run
					n := 1 + rng.Intn(300)
					for i := 0; i < n; i++ {
						pairs = append(pairs, addr.Mapping{LPA: start + addr.LPA(i), PPA: ppa})
						ppa++
					}
				case 1: // strided run
					st := 2 + rng.Intn(5)
					n := 1 + rng.Intn(80)
					for i := 0; i < n; i++ {
						pairs = append(pairs, addr.Mapping{LPA: start + addr.LPA(i*st), PPA: ppa})
						ppa++
					}
				case 2: // irregular ascending
					n := 1 + rng.Intn(60)
					l := start
					for i := 0; i < n; i++ {
						l += addr.LPA(1 + rng.Intn(4))
						pairs = append(pairs, addr.Mapping{LPA: l, PPA: ppa})
						ppa++
					}
				case 3: // scattered random LPAs
					n := 1 + rng.Intn(40)
					seen := map[addr.LPA]bool{}
					for i := 0; i < n; i++ {
						l := addr.LPA(rng.Intn(space))
						if !seen[l] {
							seen[l] = true
						}
					}
					for l := range seen {
						pairs = append(pairs, addr.Mapping{LPA: l, PPA: ppa})
						ppa++
					}
					sortMappings(pairs)
				}
				tb.Update(pairs)
				m.apply(pairs)
				if rng.Intn(25) == 0 {
					tb.Compact()
				}
				if rng.Intn(10) == 0 {
					verify(t, tb, m, gamma)
				}
			}
			verify(t, tb, m, gamma)
			tb.Compact()
			verify(t, tb, m, gamma)
		})
	}
}

func gammaName(g int) string {
	return map[int]string{0: "gamma0", 1: "gamma1", 4: "gamma4", 16: "gamma16"}[g]
}

func sortMappings(pairs []addr.Mapping) {
	for i := 1; i < len(pairs); i++ {
		for j := i; j > 0 && pairs[j].LPA < pairs[j-1].LPA; j-- {
			pairs[j], pairs[j-1] = pairs[j-1], pairs[j]
		}
	}
}

func TestTableLevelsAreSortedAndDisjoint(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	tb := NewTable(4)
	ppa := addr.PPA(0)
	for round := 0; round < 200; round++ {
		start := addr.LPA(rng.Intn(2048))
		n := 1 + rng.Intn(100)
		var pairs []addr.Mapping
		l := start
		for i := 0; i < n; i++ {
			l += addr.LPA(1 + rng.Intn(3))
			pairs = append(pairs, addr.Mapping{LPA: l, PPA: ppa})
			ppa++
		}
		tb.Update(pairs)
	}
	tb.eachGroup(func(gid addr.GroupID, g *group) {
		for li := range g.levels {
			lvl := &g.levels[li]
			for i := 0; i < lvl.len(); i++ {
				if lvl.keys[i] != lvl.segs[i].Start() {
					t.Fatalf("group %d level %d: key %d out of step with segment %v",
						gid, li, lvl.keys[i], lvl.segs[i])
				}
				if i > 0 && lvl.segs[i-1].End() >= lvl.segs[i].SLPA {
					t.Fatalf("group %d level %d: segments %v and %v overlap or misordered",
						gid, li, lvl.segs[i-1], lvl.segs[i])
				}
			}
		}
	})
}
