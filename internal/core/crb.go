package core

import (
	"leaftl/internal/addr"
)

// crb is one group's Conflict Resolution Buffer (paper §3.4, Figure 9):
// for every *approximate* segment in the group it stores the exact LPA
// offsets the segment indexes, because approximate segments are learned
// from irregular patterns and their member LPAs cannot be inferred from
// (S, L, K, I).
//
// Invariants, mirroring the paper's three properties:
//  1. the LPAs of one segment are stored contiguously (one entry);
//  2. entries are sorted by their starting LPA, which is unique;
//  3. an LPA appears at most once across the whole buffer.
//
// Conceptually this is the paper's flat nearly-sorted byte list with null
// separators; the entry slice here is the same data with the separators
// made structural. SizeBytes reports the flat encoding's footprint (one
// byte per LPA plus one separator per segment) so memory accounting
// matches the paper's (Figure 10).
type crb struct {
	entries []crbEntry
	// bytes is the flat-encoding footprint (one byte per stored LPA plus a
	// separator per entry), maintained incrementally so sizeBytes is O(1).
	bytes int
	// owner is a direct-mapped acceleration index: owner[o] is the start
	// offset of the entry containing o, or ownerNone. It turns the lookup
	// path's candidate scan into one array read. Allocated on first use so
	// groups without approximate segments pay nothing; like the entry
	// slices it is controller working state, not part of the paper's flat
	// CRB footprint (sizeBytes).
	owner []uint16
	// free recycles the backing arrays of removed entries into new ones,
	// so steady-state overwrite churn allocates nothing.
	free [][]uint8
}

// newEntryBuf returns a zero-length buffer with capacity for n offsets,
// reusing a freed entry's backing array when one fits.
func (c *crb) newEntryBuf(n int) []uint8 {
	for i := len(c.free) - 1; i >= 0; i-- {
		if cap(c.free[i]) >= n {
			buf := c.free[i][:0]
			c.free[i] = c.free[len(c.free)-1]
			c.free = c.free[:len(c.free)-1]
			return buf
		}
	}
	if n < 16 {
		n = 16
	}
	return make([]uint8, 0, n)
}

// releaseEntryBuf returns an entry's backing array to the free list.
func (c *crb) releaseEntryBuf(buf []uint8) {
	if cap(buf) == 0 || len(c.free) >= 8 {
		return
	}
	c.free = append(c.free, buf[:0])
}

const ownerNone = 0xFFFF

func (c *crb) setOwner(o uint8, start uint16) {
	if c.owner == nil {
		c.owner = make([]uint16, addr.GroupSize)
		for i := range c.owner {
			c.owner[i] = ownerNone
		}
	}
	c.owner[o] = start
}

// reown records that every LPA of entry e is owned by start.
func (c *crb) reown(e *crbEntry, start uint16) {
	for _, o := range e.lpas {
		c.setOwner(o, start)
	}
}

// crbEntry lists one approximate segment's LPA offsets, sorted ascending.
// The first offset is the segment's current starting LPA.
type crbEntry struct {
	lpas []uint8
}

func (e *crbEntry) start() uint8 { return e.lpas[0] }
func (e *crbEntry) last() uint8  { return e.lpas[len(e.lpas)-1] }

// boundaryEdit reports that the approximate segment previously starting at
// Old now spans [NewStart, NewLast]; Removed means it lost every LPA and
// must be dropped from the mapping table.
type boundaryEdit struct {
	Old      uint8
	NewStart uint8
	NewLast  uint8
	Removed  bool
}

// insert registers a new approximate segment's LPA offsets. Per the
// paper's redundancy rule, any of these offsets already present under
// another segment are removed from that segment first; entries that lose
// their first LPA get a new start (the paper's "update the S of the old
// segment with the adjacent LPA"), and entries that lose everything are
// deleted. The returned edits let the table re-shape the affected
// segments.
//
// Production code calls insertMarked directly with the table's shared
// mark array; this wrapper (like removeLPAs) exists for tests and as the
// readable statement of the operation's contract.
func (c *crb) insert(lpas []uint8) []boundaryEdit {
	var mark [addr.GroupSize]uint64
	for _, o := range lpas {
		mark[o] = 1
	}
	return c.insertMarked(lpas, &mark, 1, nil)
}

// insertMarked is insert with the membership set passed as a
// generation-stamped mark array (mark[o] == gen ⇔ o ∈ lpas) and the edit
// list appended into a caller-owned buffer — the allocation-free form the
// table's mutation path uses.
func (c *crb) insertMarked(lpas []uint8, mark *[addr.GroupSize]uint64, gen uint64, edits []boundaryEdit) []boundaryEdit {
	kept := c.entries[:0]
	for i := range c.entries {
		e := &c.entries[i]
		oldStart, oldLast := e.start(), e.last()
		overlapped := false
		for _, o := range e.lpas {
			if mark[o] == gen {
				overlapped = true
				break
			}
		}
		if !overlapped {
			kept = append(kept, *e)
			continue
		}
		filtered := e.lpas[:0]
		for _, o := range e.lpas {
			if mark[o] != gen {
				filtered = append(filtered, o)
			}
		}
		c.bytes -= len(e.lpas) - len(filtered)
		if len(filtered) == 0 {
			c.bytes-- // the entry's separator goes too
			c.releaseEntryBuf(filtered)
			edits = append(edits, boundaryEdit{Old: oldStart, Removed: true})
			continue
		}
		e.lpas = filtered
		if e.start() != oldStart || e.last() != oldLast {
			edits = append(edits, boundaryEdit{Old: oldStart, NewStart: e.start(), NewLast: e.last()})
			if e.start() != oldStart {
				c.reown(e, uint16(e.start()))
			}
		}
		kept = append(kept, *e)
	}
	c.entries = kept

	c.entries = append(c.entries, crbEntry{lpas: append(c.newEntryBuf(len(lpas)), lpas...)})
	c.bytes += len(lpas) + 1
	// The new entry owns its LPAs, including any just evicted from older
	// entries.
	for _, o := range lpas {
		c.setOwner(o, uint16(lpas[0]))
	}
	// Dedup can raise an entry's start past a later entry's start (entry
	// ranges may interleave even though LPA sets are disjoint), so restore
	// the sorted-by-start invariant explicitly.
	c.normalize()
	return edits
}

// normalize re-sorts entries by their (unique) starting LPA. Entries are
// nearly sorted (one insert or one raised start at a time), so an
// insertion sort is O(n) here and, unlike sort.Slice, allocation-free.
func (c *crb) normalize() {
	for i := 1; i < len(c.entries); i++ {
		for j := i; j > 0 && c.entries[j].start() < c.entries[j-1].start(); j-- {
			c.entries[j], c.entries[j-1] = c.entries[j-1], c.entries[j]
		}
	}
}

// searchStart returns the index of the first entry whose start is ≥ off.
func (c *crb) searchStart(off uint8) int {
	lo, hi := 0, len(c.entries)
	for lo < hi {
		mid := (lo + hi) / 2
		if c.entries[mid].start() < off {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// lookup returns the starting LPA offset of the approximate segment that
// indexes off, if any. The paper's flat layout binary-searches to the LPA
// and scans left to the segment head (Figure 9 (b)); the owner index
// answers the same question with one array read.
func (c *crb) lookup(off uint8) (start uint8, ok bool) {
	if c.owner == nil {
		return 0, false
	}
	ow := c.owner[off]
	if ow == ownerNone {
		return 0, false
	}
	return uint8(ow), true
}

// entryFor returns the entry whose start equals off, or nil.
func (c *crb) entryFor(start uint8) *crbEntry {
	i := c.searchStart(start)
	if i < len(c.entries) && c.entries[i].start() == start {
		return &c.entries[i]
	}
	return nil
}

// removeLPAs deletes the offsets matched by drop from the segment entry
// starting at start (used when a merge trims a victim, Algorithm 2 line
// 24-25). It returns the resulting boundary edit.
func (c *crb) removeLPAs(start uint8, drop func(uint8) bool) (boundaryEdit, bool) {
	i := c.searchStart(start)
	if i >= len(c.entries) || c.entries[i].start() != start {
		return boundaryEdit{}, false
	}
	return c.filterEntry(i, drop, nil, 0)
}

// removeMarked is removeLPAs with the drop set given as a
// generation-stamped mark array, avoiding a closure allocation on the
// merge path.
func (c *crb) removeMarked(start uint8, mark *[addr.GroupSize]uint64, gen uint64) (boundaryEdit, bool) {
	i := c.searchStart(start)
	if i >= len(c.entries) || c.entries[i].start() != start {
		return boundaryEdit{}, false
	}
	return c.filterEntry(i, nil, mark, gen)
}

// filterEntry filters entry i by drop (or, when drop is nil, by the mark
// array), maintaining the size counter, the owner index and the sort
// invariant.
func (c *crb) filterEntry(i int, drop func(uint8) bool, mark *[addr.GroupSize]uint64, gen uint64) (boundaryEdit, bool) {
	e := &c.entries[i]
	oldStart, oldLast := e.start(), e.last()
	filtered := e.lpas[:0]
	for _, o := range e.lpas {
		dropped := false
		if drop != nil {
			dropped = drop(o)
		} else {
			dropped = mark[o] == gen
		}
		if dropped {
			c.setOwner(o, ownerNone)
		} else {
			filtered = append(filtered, o)
		}
	}
	c.bytes -= len(e.lpas) - len(filtered)
	if len(filtered) == 0 {
		c.bytes--
		c.releaseEntryBuf(filtered)
		c.entries = append(c.entries[:i], c.entries[i+1:]...)
		return boundaryEdit{Old: oldStart, Removed: true}, true
	}
	e.lpas = filtered
	ns, nl := e.start(), e.last()
	if ns != oldStart {
		c.reown(e, uint16(ns))
		c.normalize()
	}
	if ns != oldStart || nl != oldLast {
		return boundaryEdit{Old: oldStart, NewStart: ns, NewLast: nl}, true
	}
	return boundaryEdit{Old: oldStart, NewStart: oldStart, NewLast: nl}, true
}

// removeSegment drops the whole entry starting at start (segment removed
// from the table during merge or compaction).
func (c *crb) removeSegment(start uint8) {
	i := c.searchStart(start)
	if i < len(c.entries) && c.entries[i].start() == start {
		for _, o := range c.entries[i].lpas {
			c.setOwner(o, ownerNone)
		}
		c.bytes -= len(c.entries[i].lpas) + 1
		c.releaseEntryBuf(c.entries[i].lpas)
		c.entries = append(c.entries[:i], c.entries[i+1:]...)
	}
}

// sizeBytes is the flat encoding footprint: one byte per stored LPA plus a
// one-byte null separator per segment (paper §3.4). Maintained
// incrementally; O(1).
func (c *crb) sizeBytes() int { return c.bytes }

// recompute rebuilds the size counter and the owner index from the
// entries (snapshot restore path).
func (c *crb) recompute() {
	c.bytes = 0
	c.owner = nil
	for i := range c.entries {
		e := &c.entries[i]
		c.bytes += len(e.lpas) + 1
		c.reown(e, uint16(e.start()))
	}
}
