package core

import (
	"sort"

	"leaftl/internal/addr"
)

// crb is one group's Conflict Resolution Buffer (paper §3.4, Figure 9):
// for every *approximate* segment in the group it stores the exact LPA
// offsets the segment indexes, because approximate segments are learned
// from irregular patterns and their member LPAs cannot be inferred from
// (S, L, K, I).
//
// Invariants, mirroring the paper's three properties:
//  1. the LPAs of one segment are stored contiguously (one entry);
//  2. entries are sorted by their starting LPA, which is unique;
//  3. an LPA appears at most once across the whole buffer.
//
// Conceptually this is the paper's flat nearly-sorted byte list with null
// separators; the entry slice here is the same data with the separators
// made structural. SizeBytes reports the flat encoding's footprint (one
// byte per LPA plus one separator per segment) so memory accounting
// matches the paper's (Figure 10).
type crb struct {
	entries []crbEntry
}

// crbEntry lists one approximate segment's LPA offsets, sorted ascending.
// The first offset is the segment's current starting LPA.
type crbEntry struct {
	lpas []uint8
}

func (e *crbEntry) start() uint8 { return e.lpas[0] }
func (e *crbEntry) last() uint8  { return e.lpas[len(e.lpas)-1] }

func (e *crbEntry) contains(off uint8) bool {
	lo, hi := 0, len(e.lpas)
	for lo < hi {
		mid := (lo + hi) / 2
		if e.lpas[mid] < off {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(e.lpas) && e.lpas[lo] == off
}

// boundaryEdit reports that the approximate segment previously starting at
// Old now spans [NewStart, NewLast]; Removed means it lost every LPA and
// must be dropped from the mapping table.
type boundaryEdit struct {
	Old      uint8
	NewStart uint8
	NewLast  uint8
	Removed  bool
}

// insert registers a new approximate segment's LPA offsets. Per the
// paper's redundancy rule, any of these offsets already present under
// another segment are removed from that segment first; entries that lose
// their first LPA get a new start (the paper's "update the S of the old
// segment with the adjacent LPA"), and entries that lose everything are
// deleted. The returned edits let the table re-shape the affected
// segments.
func (c *crb) insert(lpas []uint8) []boundaryEdit {
	var edits []boundaryEdit
	member := make(map[uint8]bool, len(lpas))
	for _, o := range lpas {
		member[o] = true
	}

	kept := c.entries[:0]
	for i := range c.entries {
		e := &c.entries[i]
		oldStart, oldLast := e.start(), e.last()
		overlapped := false
		for _, o := range e.lpas {
			if member[o] {
				overlapped = true
				break
			}
		}
		if !overlapped {
			kept = append(kept, *e)
			continue
		}
		filtered := e.lpas[:0]
		for _, o := range e.lpas {
			if !member[o] {
				filtered = append(filtered, o)
			}
		}
		if len(filtered) == 0 {
			edits = append(edits, boundaryEdit{Old: oldStart, Removed: true})
			continue
		}
		e.lpas = filtered
		if e.start() != oldStart || e.last() != oldLast {
			edits = append(edits, boundaryEdit{Old: oldStart, NewStart: e.start(), NewLast: e.last()})
		}
		kept = append(kept, *e)
	}
	c.entries = kept

	c.entries = append(c.entries, crbEntry{lpas: append([]uint8(nil), lpas...)})
	// Dedup can raise an entry's start past a later entry's start (entry
	// ranges may interleave even though LPA sets are disjoint), so restore
	// the sorted-by-start invariant explicitly.
	c.normalize()
	return edits
}

// normalize re-sorts entries by their (unique) starting LPA.
func (c *crb) normalize() {
	sort.Slice(c.entries, func(i, j int) bool {
		return c.entries[i].start() < c.entries[j].start()
	})
}

// searchStart returns the index of the first entry whose start is ≥ off.
func (c *crb) searchStart(off uint8) int {
	lo, hi := 0, len(c.entries)
	for lo < hi {
		mid := (lo + hi) / 2
		if c.entries[mid].start() < off {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// lookup returns the starting LPA offset of the approximate segment that
// indexes off, if any (paper Figure 9 (b): binary-search to the LPA, then
// scan left to the segment head).
func (c *crb) lookup(off uint8) (start uint8, ok bool) {
	// Entries are sorted by start; any entry with start > off cannot
	// contain off. Entry ranges may interleave, so walk candidates from
	// the closest start leftwards.
	for i := c.searchUpper(off) - 1; i >= 0; i-- {
		if c.entries[i].contains(off) {
			return c.entries[i].start(), true
		}
	}
	return 0, false
}

// searchUpper returns the index of the first entry whose start is > off.
func (c *crb) searchUpper(off uint8) int {
	lo, hi := 0, len(c.entries)
	for lo < hi {
		mid := (lo + hi) / 2
		if c.entries[mid].start() <= off {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// entryFor returns the entry whose start equals off, or nil.
func (c *crb) entryFor(start uint8) *crbEntry {
	i := c.searchStart(start)
	if i < len(c.entries) && c.entries[i].start() == start {
		return &c.entries[i]
	}
	return nil
}

// removeLPAs deletes the given offsets from the segment entry starting at
// start (used when a merge trims a victim, Algorithm 2 line 24-25). It
// returns the resulting boundary edit.
func (c *crb) removeLPAs(start uint8, drop func(uint8) bool) (boundaryEdit, bool) {
	i := c.searchStart(start)
	if i >= len(c.entries) || c.entries[i].start() != start {
		return boundaryEdit{}, false
	}
	e := &c.entries[i]
	oldStart, oldLast := e.start(), e.last()
	filtered := e.lpas[:0]
	for _, o := range e.lpas {
		if !drop(o) {
			filtered = append(filtered, o)
		}
	}
	if len(filtered) == 0 {
		c.entries = append(c.entries[:i], c.entries[i+1:]...)
		return boundaryEdit{Old: oldStart, Removed: true}, true
	}
	e.lpas = filtered
	ns, nl := e.start(), e.last()
	if ns != oldStart {
		c.normalize()
	}
	if ns != oldStart || nl != oldLast {
		return boundaryEdit{Old: oldStart, NewStart: ns, NewLast: nl}, true
	}
	return boundaryEdit{Old: oldStart, NewStart: oldStart, NewLast: nl}, true
}

// removeSegment drops the whole entry starting at start (segment removed
// from the table during merge or compaction).
func (c *crb) removeSegment(start uint8) {
	i := c.searchStart(start)
	if i < len(c.entries) && c.entries[i].start() == start {
		c.entries = append(c.entries[:i], c.entries[i+1:]...)
	}
}

// sizeBytes is the flat encoding footprint: one byte per stored LPA plus a
// one-byte null separator per segment (paper §3.4).
func (c *crb) sizeBytes() int {
	n := 0
	for i := range c.entries {
		n += len(c.entries[i].lpas) + 1
	}
	return n
}

// lpasOf returns the absolute LPAs of the segment starting at start.
func (c *crb) lpasOf(start uint8, base addr.LPA) []addr.LPA {
	e := c.entryFor(start)
	if e == nil {
		return nil
	}
	out := make([]addr.LPA, len(e.lpas))
	for i, o := range e.lpas {
		out[i] = base + addr.LPA(o)
	}
	return out
}
