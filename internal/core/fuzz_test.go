package core

import (
	"bytes"
	"testing"

	"leaftl/internal/addr"
)

// fuzzSeeds returns valid snapshots and group records to seed the
// corpus: an empty table, a sequential table, and the mixed table the
// paging tests use (multi-level groups, approximate segments, CRBs).
func fuzzSeeds(t interface{ Helper() }) (snapshots [][]byte, groups [][]byte) {
	tab := NewTable(4)
	commit := func(lpas []addr.LPA, base addr.PPA) {
		pairs := make([]addr.Mapping, len(lpas))
		for i, l := range lpas {
			pairs[i] = addr.Mapping{LPA: l, PPA: base + addr.PPA(i)}
		}
		tab.Update(pairs)
	}
	empty, _ := NewTable(0).MarshalBinary()
	snapshots = append(snapshots, empty)

	seq := make([]addr.LPA, 256)
	for i := range seq {
		seq[i] = addr.LPA(i)
	}
	commit(seq, 100)
	commit([]addr.LPA{10, 13, 17, 20, 29}, 50000)
	commit([]addr.LPA{300, 302, 305, 309}, 51000)
	full, _ := tab.MarshalBinary()
	snapshots = append(snapshots, full)

	for _, gid := range tab.ResidentGroups() {
		img, _ := tab.MarshalGroup(gid)
		groups = append(groups, img)
	}

	// A bitmap-enabled table: the same commits re-verified through
	// refreshExactBits, so the v3 records carry set exact bits.
	bt := NewTable(4)
	bt.EnableExactBitmap()
	commitB := func(lpas []addr.LPA, base addr.PPA) {
		pairs := make([]addr.Mapping, len(lpas))
		for i, l := range lpas {
			pairs[i] = addr.Mapping{LPA: l, PPA: base + addr.PPA(i)}
		}
		bt.Update(pairs)
	}
	commitB(seq, 100)
	commitB([]addr.LPA{10, 13, 17, 20, 29}, 50000)
	commitB([]addr.LPA{300, 302, 305, 309}, 51000)
	bm, _ := bt.MarshalBinary()
	snapshots = append(snapshots, bm)
	for _, gid := range bt.ResidentGroups() {
		img, _ := bt.MarshalGroup(gid)
		groups = append(groups, img)
	}
	return snapshots, groups
}

// FuzzPersist fuzzes the two snapshot decoders — the full-table
// UnmarshalBinary and the per-group InstallGroup (the demand-paging
// translation-page decoder) — against panics, and asserts every accepted
// input round-trips to a canonical fixed point: re-marshaling what was
// decoded, decoding that, and marshaling again must reproduce the same
// bytes, with the incremental statistics agreeing with a from-scratch
// recomputation.
func FuzzPersist(f *testing.F) {
	snaps, groups := fuzzSeeds(f)
	for _, s := range snaps {
		f.Add(s)
	}
	for _, g := range groups {
		f.Add(g)
	}
	f.Add([]byte("LFTL\x03\x04\x00\x00\x00\x00"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		// Full-snapshot decoder.
		tab := NewTable(0)
		if err := tab.UnmarshalBinary(data); err == nil {
			canon, err := tab.MarshalBinary()
			if err != nil {
				t.Fatalf("accepted snapshot does not re-marshal: %v", err)
			}
			second := NewTable(0)
			if err := second.UnmarshalBinary(canon); err != nil {
				t.Fatalf("canonical snapshot rejected: %v", err)
			}
			again, err := second.MarshalBinary()
			if err != nil {
				t.Fatalf("canonical snapshot does not re-marshal: %v", err)
			}
			if !bytes.Equal(canon, again) {
				t.Fatal("canonical snapshot is not a marshaling fixed point")
			}
			incr := second.Stats()
			second.recomputeStats()
			if incr != second.Stats() {
				t.Fatalf("incremental stats diverge after decode: %+v vs %+v", incr, second.Stats())
			}
		}

		// Per-group translation-page decoder. The install target's γ is
		// the record's upper bound for tuned group γs, so fuzz against the
		// widest table.
		gt := NewTable(255)
		if gid, err := gt.InstallGroup(data); err == nil {
			img, err := gt.MarshalGroup(gid)
			if err != nil {
				t.Fatalf("accepted group record does not re-marshal: %v", err)
			}
			gt2 := NewTable(255)
			gid2, err := gt2.InstallGroup(img)
			if err != nil || gid2 != gid {
				t.Fatalf("canonical group record rejected: %v (gid %d vs %d)", err, gid2, gid)
			}
			again, err := gt2.MarshalGroup(gid2)
			if err != nil || !bytes.Equal(img, again) {
				t.Fatalf("canonical group record is not a marshaling fixed point: %v", err)
			}
			if gt.SizeBytes() != gt2.SizeBytes() || gt.Stats() != gt2.Stats() {
				t.Fatalf("group record stats diverge: %+v vs %+v", gt.Stats(), gt2.Stats())
			}
		}
	})
}
