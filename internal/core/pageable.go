package core

import (
	"fmt"

	"leaftl/internal/addr"
)

// Group-granular residency operations: the learned table doubles as a
// pageable container whose unit of transfer is one 256-LPA segment group.
// MarshalGroup/InstallGroup speak the snapshot's per-group record format
// (see persist.go), so an evicted group's bytes are exactly the
// translation-page payload §3.8 stores in flash translation blocks, and
// DropGroup/InstallGroup keep every incremental statistic in step so
// SizeBytes always reports only what is DRAM-resident.

// HasGroup reports whether the group is resident in the table.
func (t *Table) HasGroup(id addr.GroupID) bool {
	return t.lookupGroup(id) != nil
}

// GroupFootprint returns the DRAM bytes a resident group accounts for
// (encoded segments plus flat CRB footprint — the same quantities
// SizeBytes sums). It returns 0 for non-resident groups.
func (t *Table) GroupFootprint(id addr.GroupID) int {
	g := t.lookupGroup(id)
	if g == nil {
		return 0
	}
	return g.segmentCount()*SegmentBytes + g.crb.sizeBytes()
}

// ResidentGroups returns the IDs of every resident group in ascending
// order.
func (t *Table) ResidentGroups() []addr.GroupID {
	out := make([]addr.GroupID, 0, t.nGroups)
	t.eachGroup(func(id addr.GroupID, _ *group) {
		out = append(out, id)
	})
	return out
}

// MarshalGroup serializes one resident group into its translation-page
// record. The group stays resident; callers pair this with DropGroup to
// evict.
func (t *Table) MarshalGroup(id addr.GroupID) ([]byte, error) {
	g := t.lookupGroup(id)
	if g == nil {
		return nil, fmt.Errorf("core: group %d is not resident", id)
	}
	buf := make([]byte, 0, 16+t.GroupFootprint(id))
	return appendGroupRecord(buf, id, g)
}

// InstallGroup decodes a translation-page record (a MarshalGroup image)
// and makes the group resident again. It fails if the record is
// malformed, carries trailing bytes, or the group is already resident
// with state (losing the resident copy silently would corrupt the
// mapping).
func (t *Table) InstallGroup(data []byte) (addr.GroupID, error) {
	r := reader{buf: data}
	gid, g, err := readGroupRecord(&r)
	if err != nil {
		return 0, err
	}
	if r.off != len(data) {
		return 0, fmt.Errorf("core: %d trailing bytes in group record", len(data)-r.off)
	}
	if int(g.tune.gamma) > t.gamma {
		return 0, fmt.Errorf("core: group %d tuned gamma %d exceeds the table bound %d",
			gid, g.tune.gamma, t.gamma)
	}
	if cur := t.lookupGroup(gid); cur != nil && (len(cur.levels) > 0 || len(cur.crb.entries) > 0) {
		return 0, fmt.Errorf("core: group %d is already resident", gid)
	}
	// group() creates (or finds) the empty counted group; adopting the
	// decoded state then mirrors the incremental bookkeeping of the
	// mutation path, so no recomputeStats sweep is needed.
	dst := t.group(gid)
	dst.levels = g.levels
	dst.crb = g.crb
	dst.tune = g.tune
	t.noteLevels(dst, 0)
	for li := range dst.levels {
		for i := range dst.levels[li].segs {
			t.noteAdd(dst.levels[li].segs[i])
		}
	}
	t.crbBytes += dst.crb.sizeBytes()
	return gid, nil
}

// DropGroup removes a resident group from DRAM, returning the footprint
// it freed. The caller owns keeping a serialized image (MarshalGroup)
// if the group's state must survive.
func (t *Table) DropGroup(id addr.GroupID) (freed int, ok bool) {
	g := t.lookupGroup(id)
	if g == nil {
		return 0, false
	}
	freed = g.segmentCount()*SegmentBytes + g.crb.sizeBytes()
	for li := range g.levels {
		for i := range g.levels[li].segs {
			t.noteRemove(g.levels[li].segs[i])
		}
	}
	t.crbBytes -= g.crb.sizeBytes()
	t.totalLevels -= len(g.levels)
	t.levelFreq[len(g.levels)]--
	t.nGroups--
	t.groups[id] = nil
	return freed, true
}
