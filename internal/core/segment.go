package core

import (
	"encoding/binary"
	"fmt"
	"math"

	"leaftl/internal/addr"
	"leaftl/internal/float16"
	"leaftl/internal/plr"
)

// SegmentBytes is the encoded size of one learned index segment: 1 byte
// starting-LPA offset, 1 byte length, 2 bytes slope, 4 bytes intercept
// (paper Figure 6).
const SegmentBytes = 8

// Segment is one learned index segment. It covers the LPA interval
// [SLPA, SLPA+L] inside a single 256-LPA group and predicts
// PPA = ⌈K·x + I⌉ where x is the LPA's offset within the group.
//
// The paper writes the model against the absolute LPA; anchoring at the
// group base is the same line reparameterized, and keeps the intercept
// within its 4-byte budget for arbitrarily large drives.
type Segment struct {
	SLPA addr.LPA     // absolute first LPA (its group is implied)
	L    uint8        // span: the segment covers [SLPA, SLPA+L]
	K    float16.Bits // slope; LSB is the type flag (0 accurate, 1 approximate)
	I    float32      // intercept, in group-offset space

	// Decoded cache, filled by prime. Not part of the 8-byte wire format
	// (Encode/DecodeSegment are unchanged); every field is a pure function
	// of (SLPA, L, K, I), so a learned segment and its encode/decode round
	// trip stay ==-comparable. With the cache hot, the lookup path for
	// accurate segments is pure integer arithmetic — no float16 decode, no
	// math.Round(1/K) stride recomputation, no math.Ceil.
	kf     float64  // float16.To64(K)
	stride uint32   // round(1/kf) for accurate segments, ≥ 1
	p0     addr.PPA // prediction at SLPA (fast-path anchor)
	primed bool
}

// prime fills the decoded cache. It must be called whenever a segment
// enters the table or its SLPA/L are edited (trims move the prediction
// anchor). Idempotent and cheap; the table maintains the invariant that
// every resident segment is primed.
func (s *Segment) prime() {
	s.kf = float16.To64(s.K)
	st := uint32(1)
	if s.kf > 0 {
		if r := uint32(math.Round(1 / s.kf)); r > 0 {
			st = r
		}
	}
	s.stride = st
	s.p0 = s.predictOffset(int64(s.Start()))
	s.primed = true
}

// Accurate reports whether the segment guarantees exact translations.
// Approximate segments may err by at most ±gamma (paper §3.2).
func (s Segment) Accurate() bool { return !s.K.Flag() }

// Group returns the 256-LPA group the segment belongs to.
func (s Segment) Group() addr.GroupID { return addr.Group(s.SLPA) }

// Start returns the segment's first LPA offset within its group.
func (s Segment) Start() uint8 { return addr.Offset(s.SLPA) }

// End returns the segment's last covered LPA.
func (s Segment) End() addr.LPA { return s.SLPA + addr.LPA(s.L) }

// Contains reports whether lpa falls in the segment's covered range.
// Range membership is necessary but not sufficient: accurate segments
// additionally require the LPA to sit on the segment's stride, and
// approximate segments consult the CRB (see has_lpa, Algorithm 2).
func (s Segment) Contains(lpa addr.LPA) bool {
	return lpa >= s.SLPA && lpa <= s.End()
}

// Overlaps reports whether the two segments' LPA ranges intersect.
func (s Segment) Overlaps(o Segment) bool {
	return s.SLPA <= o.End() && o.SLPA <= s.End()
}

// Stride returns the LPA step between consecutive mappings encoded by an
// accurate segment: round(1/K) (Algorithm 2 tests
// (lpa−S) mod ⌈1/K⌉ = 0). Single-point segments report stride 1.
func (s Segment) Stride() uint32 {
	if s.primed {
		return s.stride
	}
	k := float16.To64(s.K)
	if k <= 0 {
		return 1
	}
	st := uint32(math.Round(1 / k))
	if st == 0 {
		st = 1
	}
	return st
}

// OnStride reports whether lpa sits on an accurate segment's arithmetic
// progression. Callers must have checked Contains first.
func (s Segment) OnStride(lpa addr.LPA) bool {
	if s.L == 0 {
		return lpa == s.SLPA
	}
	return uint32(lpa-s.SLPA)%s.Stride() == 0
}

// Predict returns the segment's PPA prediction for lpa. For accurate
// segments the result is exact; for approximate segments it is within
// ±gamma of the true PPA (guaranteed at learning time).
//
// Primed accurate segments answer covered on-stride LPAs with pure
// integer arithmetic: learning verified that the segment's points form an
// arithmetic LPA progression mapped to consecutive PPAs, so the anchored
// prediction p0 + (lpa−SLPA)/stride equals ⌈K·x + I⌉ on every covered
// point, and trims only shrink the covered set.
func (s Segment) Predict(lpa addr.LPA) addr.PPA {
	if s.primed {
		if !s.K.Flag() && lpa >= s.SLPA && lpa <= s.End() {
			if d := uint32(lpa - s.SLPA); d%s.stride == 0 {
				return s.p0 + addr.PPA(d/s.stride)
			}
		}
		return s.predictApprox(addr.Offset(lpa))
	}
	x := float64(addr.Offset(lpa))
	k := float16.To64(s.K)
	p := math.Ceil(k*x + float64(s.I))
	if p < 0 {
		p = 0
	}
	return addr.PPA(p)
}

// predictApprox evaluates the line with the cached float slope (primed
// segments only) — one multiply and a ceil, no float16 decode.
func (s *Segment) predictApprox(off uint8) addr.PPA {
	p := math.Ceil(s.kf*float64(off) + float64(s.I))
	if p < 0 {
		p = 0
	}
	return addr.PPA(p)
}

// Encode packs the segment into its 8-byte on-flash representation
// (paper Figure 6). The group ID is carried externally (translation pages
// are organized per group).
func (s Segment) Encode() [SegmentBytes]byte {
	var b [SegmentBytes]byte
	b[0] = s.Start()
	b[1] = s.L
	binary.LittleEndian.PutUint16(b[2:4], uint16(s.K))
	binary.LittleEndian.PutUint32(b[4:8], math.Float32bits(s.I))
	return b
}

// DecodeSegment unpacks an 8-byte segment belonging to group g. The
// decoded cache is primed, so decoded segments are ready for the fast
// lookup path (and == their in-memory originals).
func DecodeSegment(b [SegmentBytes]byte, g addr.GroupID) Segment {
	s := Segment{
		SLPA: addr.GroupBase(g) + addr.LPA(b[0]),
		L:    b[1],
		K:    float16.Bits(binary.LittleEndian.Uint16(b[2:4])),
		I:    math.Float32frombits(binary.LittleEndian.Uint32(b[4:8])),
	}
	s.prime()
	return s
}

// String renders the segment like the paper's figures: [S, S+L] with its
// type, slope and intercept.
func (s Segment) String() string {
	typ := "acc"
	if !s.Accurate() {
		typ = "apx"
	}
	return fmt.Sprintf("[%d,%d]%s K=%.4f I=%.1f", s.SLPA, s.End(), typ, float16.To64(s.K), s.I)
}

// Learned couples a fitted segment with the exact LPA set it indexes.
// The LPA list feeds the CRB for approximate segments and the bitmap
// merge for both kinds; it is discarded after insertion.
type Learned struct {
	Seg  Segment
	LPAs []addr.LPA // sorted ascending
}

// Learn fits error-bounded segments over a batch of LPA→PPA mappings
// (paper §3.7 "Creation of Learned Segments"). pairs must be sorted by
// LPA with unique LPAs — the SSD data buffer guarantees both (§3.3).
// gamma is the error bound in pages; gamma = 0 yields only accurate and
// single-point segments.
//
// Fitting is per 256-LPA group (a segment never crosses a group
// boundary), with slope clamped to [0, 1] as the encoding requires. After
// fitting, each segment is re-verified with its *quantized* (float16,
// flag-bearing) slope; a segment that no longer meets its bound is split.
func Learn(pairs []addr.Mapping, gamma int) []Learned {
	var b learnBuf
	return b.learn(pairs, gamma)
}

// learnBuf holds the reusable scratch behind Learn: the output slice, the
// per-group point buffer, the fitted-segment buffer, and one LPA arena
// that backs every Learned.LPAs of a batch. Table.Update owns one and
// reuses it across batches, so steady-state learning costs amortized O(1)
// allocations; results of a learn call are valid until the next call on
// the same buffer.
type learnBuf struct {
	out       []Learned
	pts       []plr.Point
	segs      []plr.Segment
	refitSegs []plr.Segment
	arena     []addr.LPA
}

func (b *learnBuf) learn(pairs []addr.Mapping, gamma int) []Learned {
	if len(pairs) == 0 {
		return nil
	}
	b.out = b.out[:0]
	b.arena = b.arena[:0]
	i := 0
	for i < len(pairs) {
		g := addr.Group(pairs[i].LPA)
		j := i
		for j < len(pairs) && addr.Group(pairs[j].LPA) == g {
			j++
		}
		b.groupSegments(g, pairs[i:j], gamma)
		i = j
	}
	return b.out
}

// lpas copies the points' LPAs into the arena and returns the capped
// sub-slice (later arena growth cannot alias into it).
func (b *learnBuf) lpas(pts []plr.Point, base addr.LPA) []addr.LPA {
	start := len(b.arena)
	for _, p := range pts {
		b.arena = append(b.arena, base+addr.LPA(p.X))
	}
	return b.arena[start:len(b.arena):len(b.arena)]
}

func (b *learnBuf) groupSegments(g addr.GroupID, pairs []addr.Mapping, gamma int) {
	base := addr.GroupBase(g)
	b.pts = b.pts[:0]
	for _, m := range pairs {
		b.pts = append(b.pts, plr.Point{X: int64(m.LPA - base), Y: int64(m.PPA)})
	}
	pts := b.pts
	if gamma == 0 {
		b.fitRange(g, pts, 0)
		return
	}
	// Two-pass learning for gamma > 0: peel off stride-clean runs first
	// so they become *accurate* segments, then fit only the irregular
	// remainder with the relaxed bound. A single greedy pass would
	// absorb long clean runs into approximate segments, trading their
	// guaranteed-exact translations for marginal byte savings; the
	// paper's segment mix (Figure 20: 73.5% accurate even at γ=16) and
	// low misprediction ratios (Figure 24) require keeping clean runs
	// accurate.
	const minCleanRun = 4
	lo := 0
	for lo < len(pts) {
		hi := lo + 1
		st := int64(0)
		if hi < len(pts) && pts[hi].Y-pts[lo].Y == 1 {
			st = pts[hi].X - pts[lo].X
			for hi < len(pts) && pts[hi].X-pts[hi-1].X == st && pts[hi].Y-pts[hi-1].Y == 1 {
				hi++
			}
		}
		if hi-lo >= minCleanRun {
			b.fitRange(g, pts[lo:hi], 0)
		} else {
			// Extend the irregular stretch until the next long clean run.
			end := hi
			for end < len(pts) {
				rh := end + 1
				if rh < len(pts) && pts[rh].Y-pts[end].Y == 1 {
					d := pts[rh].X - pts[end].X
					for rh < len(pts) && pts[rh].X-pts[rh-1].X == d && pts[rh].Y-pts[rh-1].Y == 1 {
						rh++
					}
				}
				if rh-end >= minCleanRun {
					break
				}
				end = rh
			}
			b.fitRange(g, pts[lo:end], gamma)
			hi = end
		}
		lo = hi
	}
}

// fitRange fits one stretch of points with the given bound and verifies
// the quantized segments. The fitted-segment buffer is reused across
// calls; buildVerified never re-enters fitRange, so that is safe.
func (b *learnBuf) fitRange(g addr.GroupID, pts []plr.Point, gamma int) {
	b.segs = plr.FitAppend(b.segs[:0], pts, float64(gamma), 0, 1, int64(addr.GroupSize-1))
	k := 0
	for _, fs := range b.segs {
		n := fs.N
		b.buildVerified(g, pts[k:k+n], fs, gamma)
		k += n
	}
}

// buildVerified quantizes a fitted segment and verifies its predictions,
// splitting recursively if float16/float32 quantization broke the bound.
func (b *learnBuf) buildVerified(g addr.GroupID, pts []plr.Point, fs plr.Segment, gamma int) {
	base := addr.GroupBase(g)
	if len(pts) == 1 {
		// Single-point segment: L=0, K=0, I=PPA (paper §3.1).
		seg := Segment{SLPA: base + addr.LPA(pts[0].X), L: 0, K: 0, I: float32(pts[0].Y)}
		seg.prime()
		b.out = append(b.out, Learned{Seg: seg, LPAs: b.lpas(pts, base)})
		return
	}

	// An accurate segment encodes an arithmetic LPA progression mapped to
	// *consecutive* PPAs: lookups test membership with
	// (lpa−S) mod round(1/K) (Algorithm 2), which is only meaningful when
	// the LPA stride is constant and each step advances the PPA by
	// exactly one (the flush order guarantees the latter for buffered
	// writes). Anything else must be approximate so the CRB provides the
	// membership set.
	strideOK := true
	st := pts[1].X - pts[0].X
	for i := 1; i < len(pts); i++ {
		if pts[i].X-pts[i-1].X != st || pts[i].Y-pts[i-1].Y != 1 {
			strideOK = false
			break
		}
	}

	if strideOK {
		if cand, ok := quantize(pts, fs, false); ok &&
			int64(cand.Stride()) == st && exact(cand, pts, base) {
			b.finish(cand, pts, base)
			return
		}
	}
	if gamma > 0 {
		if cand, ok := quantize(pts, fs, true); ok && withinGamma(cand, pts, base, gamma) {
			b.finish(cand, pts, base)
			return
		}
	}
	if strideOK || gamma > 0 {
		// Quantization broke the fit: halve and retry. Halving terminates
		// at single points, which always encode exactly.
		mid := len(pts) / 2
		b.buildVerified(g, pts[:mid], b.refit(pts[:mid], gamma), gamma)
		b.buildVerified(g, pts[mid:], b.refit(pts[mid:], gamma), gamma)
		return
	}
	// gamma = 0 and the run is not stride-clean (e.g. collinear points
	// with irregular strides, or PPA jumps): emit maximal stride-clean
	// sub-runs, degrading to single points in the worst case (§3.1).
	// Because !strideOK, every run is a strict subset, so this recursion
	// terminates.
	for lo := 0; lo < len(pts); {
		hi := lo + 1
		if hi < len(pts) && pts[hi].Y-pts[lo].Y == 1 {
			d := pts[hi].X - pts[lo].X
			for hi < len(pts) && pts[hi].X-pts[hi-1].X == d && pts[hi].Y-pts[hi-1].Y == 1 {
				hi++
			}
		}
		run := pts[lo:hi]
		b.buildVerified(g, run, b.refit(run, 0), 0)
		lo = hi
	}
}

// refit fits a split subset. Its scratch is separate from fitRange's segs
// buffer (fitRange is mid-iteration when refit runs); the returned value
// is consumed before the next refit call, so one buffer suffices.
func (b *learnBuf) refit(pts []plr.Point, gamma int) plr.Segment {
	b.refitSegs = plr.FitAppend(b.refitSegs[:0], pts, float64(gamma), 0, 1, int64(addr.GroupSize-1))
	if len(b.refitSegs) == 1 {
		return b.refitSegs[0]
	}
	// The subset may itself need multiple segments; return a fit for the
	// whole span anyway — buildVerified's verification will split again.
	k := float64(pts[len(pts)-1].Y-pts[0].Y) / float64(pts[len(pts)-1].X-pts[0].X)
	return plr.Segment{FirstX: pts[0].X, LastX: pts[len(pts)-1].X, K: k, B: float64(pts[0].Y) - k*float64(pts[0].X), N: len(pts)}
}

// quantize builds the encoded segment for the fitted line, with the type
// flag folded into the slope's LSB (paper §3.2).
func quantize(pts []plr.Point, fs plr.Segment, approx bool) (Segment, bool) {
	k16 := float16.From64(fs.K).WithFlag(approx)
	if k16.IsNaN() || k16.IsInf() {
		return Segment{}, false
	}
	span := pts[len(pts)-1].X - pts[0].X
	if span > math.MaxUint8 {
		return Segment{}, false
	}
	return Segment{
		L: uint8(span),
		K: k16,
		I: float32(fs.B),
	}, true
}

func (b *learnBuf) finish(seg Segment, pts []plr.Point, base addr.LPA) {
	seg.SLPA = base + addr.LPA(pts[0].X)
	seg.prime()
	b.out = append(b.out, Learned{Seg: seg, LPAs: b.lpas(pts, base)})
}

func exact(seg Segment, pts []plr.Point, base addr.LPA) bool {
	for _, p := range pts {
		if seg.predictOffset(p.X) != addr.PPA(p.Y) {
			return false
		}
	}
	return true
}

func withinGamma(seg Segment, pts []plr.Point, base addr.LPA, gamma int) bool {
	for _, p := range pts {
		d := int64(seg.predictOffset(p.X)) - p.Y
		if d < -int64(gamma) || d > int64(gamma) {
			return false
		}
	}
	return true
}

// predictOffset is Predict with the group offset already computed.
func (s Segment) predictOffset(x int64) addr.PPA {
	k := float16.To64(s.K)
	p := math.Ceil(k*float64(x) + float64(s.I))
	if p < 0 {
		p = 0
	}
	return addr.PPA(p)
}
