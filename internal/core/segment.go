package core

import (
	"encoding/binary"
	"fmt"
	"math"

	"leaftl/internal/addr"
	"leaftl/internal/float16"
	"leaftl/internal/plr"
)

// SegmentBytes is the encoded size of one learned index segment: 1 byte
// starting-LPA offset, 1 byte length, 2 bytes slope, 4 bytes intercept
// (paper Figure 6).
const SegmentBytes = 8

// Segment is one learned index segment. It covers the LPA interval
// [SLPA, SLPA+L] inside a single 256-LPA group and predicts
// PPA = ⌈K·x + I⌉ where x is the LPA's offset within the group.
//
// The paper writes the model against the absolute LPA; anchoring at the
// group base is the same line reparameterized, and keeps the intercept
// within its 4-byte budget for arbitrarily large drives.
type Segment struct {
	SLPA addr.LPA     // absolute first LPA (its group is implied)
	L    uint8        // span: the segment covers [SLPA, SLPA+L]
	K    float16.Bits // slope; LSB is the type flag (0 accurate, 1 approximate)
	I    float32      // intercept, in group-offset space
}

// Accurate reports whether the segment guarantees exact translations.
// Approximate segments may err by at most ±gamma (paper §3.2).
func (s Segment) Accurate() bool { return !s.K.Flag() }

// Group returns the 256-LPA group the segment belongs to.
func (s Segment) Group() addr.GroupID { return addr.Group(s.SLPA) }

// Start returns the segment's first LPA offset within its group.
func (s Segment) Start() uint8 { return addr.Offset(s.SLPA) }

// End returns the segment's last covered LPA.
func (s Segment) End() addr.LPA { return s.SLPA + addr.LPA(s.L) }

// Contains reports whether lpa falls in the segment's covered range.
// Range membership is necessary but not sufficient: accurate segments
// additionally require the LPA to sit on the segment's stride, and
// approximate segments consult the CRB (see has_lpa, Algorithm 2).
func (s Segment) Contains(lpa addr.LPA) bool {
	return lpa >= s.SLPA && lpa <= s.End()
}

// Overlaps reports whether the two segments' LPA ranges intersect.
func (s Segment) Overlaps(o Segment) bool {
	return s.SLPA <= o.End() && o.SLPA <= s.End()
}

// Stride returns the LPA step between consecutive mappings encoded by an
// accurate segment: round(1/K) (Algorithm 2 tests
// (lpa−S) mod ⌈1/K⌉ = 0). Single-point segments report stride 1.
func (s Segment) Stride() uint32 {
	k := float16.To64(s.K)
	if k <= 0 {
		return 1
	}
	st := uint32(math.Round(1 / k))
	if st == 0 {
		st = 1
	}
	return st
}

// OnStride reports whether lpa sits on an accurate segment's arithmetic
// progression. Callers must have checked Contains first.
func (s Segment) OnStride(lpa addr.LPA) bool {
	if s.L == 0 {
		return lpa == s.SLPA
	}
	return uint32(lpa-s.SLPA)%s.Stride() == 0
}

// Predict returns the segment's PPA prediction for lpa. For accurate
// segments the result is exact; for approximate segments it is within
// ±gamma of the true PPA (guaranteed at learning time).
func (s Segment) Predict(lpa addr.LPA) addr.PPA {
	x := float64(addr.Offset(lpa))
	k := float16.To64(s.K)
	p := math.Ceil(k*x + float64(s.I))
	if p < 0 {
		p = 0
	}
	return addr.PPA(p)
}

// Encode packs the segment into its 8-byte on-flash representation
// (paper Figure 6). The group ID is carried externally (translation pages
// are organized per group).
func (s Segment) Encode() [SegmentBytes]byte {
	var b [SegmentBytes]byte
	b[0] = s.Start()
	b[1] = s.L
	binary.LittleEndian.PutUint16(b[2:4], uint16(s.K))
	binary.LittleEndian.PutUint32(b[4:8], math.Float32bits(s.I))
	return b
}

// DecodeSegment unpacks an 8-byte segment belonging to group g.
func DecodeSegment(b [SegmentBytes]byte, g addr.GroupID) Segment {
	return Segment{
		SLPA: addr.GroupBase(g) + addr.LPA(b[0]),
		L:    b[1],
		K:    float16.Bits(binary.LittleEndian.Uint16(b[2:4])),
		I:    math.Float32frombits(binary.LittleEndian.Uint32(b[4:8])),
	}
}

// String renders the segment like the paper's figures: [S, S+L] with its
// type, slope and intercept.
func (s Segment) String() string {
	typ := "acc"
	if !s.Accurate() {
		typ = "apx"
	}
	return fmt.Sprintf("[%d,%d]%s K=%.4f I=%.1f", s.SLPA, s.End(), typ, float16.To64(s.K), s.I)
}

// Learned couples a fitted segment with the exact LPA set it indexes.
// The LPA list feeds the CRB for approximate segments and the bitmap
// merge for both kinds; it is discarded after insertion.
type Learned struct {
	Seg  Segment
	LPAs []addr.LPA // sorted ascending
}

// Learn fits error-bounded segments over a batch of LPA→PPA mappings
// (paper §3.7 "Creation of Learned Segments"). pairs must be sorted by
// LPA with unique LPAs — the SSD data buffer guarantees both (§3.3).
// gamma is the error bound in pages; gamma = 0 yields only accurate and
// single-point segments.
//
// Fitting is per 256-LPA group (a segment never crosses a group
// boundary), with slope clamped to [0, 1] as the encoding requires. After
// fitting, each segment is re-verified with its *quantized* (float16,
// flag-bearing) slope; a segment that no longer meets its bound is split.
func Learn(pairs []addr.Mapping, gamma int) []Learned {
	if len(pairs) == 0 {
		return nil
	}
	out := make([]Learned, 0, 4)
	i := 0
	for i < len(pairs) {
		g := addr.Group(pairs[i].LPA)
		j := i
		for j < len(pairs) && addr.Group(pairs[j].LPA) == g {
			j++
		}
		out = appendGroupSegments(out, g, pairs[i:j], gamma)
		i = j
	}
	return out
}

func appendGroupSegments(out []Learned, g addr.GroupID, pairs []addr.Mapping, gamma int) []Learned {
	base := addr.GroupBase(g)
	pts := make([]plr.Point, len(pairs))
	for i, m := range pairs {
		pts[i] = plr.Point{X: int64(m.LPA - base), Y: int64(m.PPA)}
	}
	if gamma == 0 {
		return fitRange(out, g, pts, 0)
	}
	// Two-pass learning for gamma > 0: peel off stride-clean runs first
	// so they become *accurate* segments, then fit only the irregular
	// remainder with the relaxed bound. A single greedy pass would
	// absorb long clean runs into approximate segments, trading their
	// guaranteed-exact translations for marginal byte savings; the
	// paper's segment mix (Figure 20: 73.5% accurate even at γ=16) and
	// low misprediction ratios (Figure 24) require keeping clean runs
	// accurate.
	const minCleanRun = 4
	lo := 0
	for lo < len(pts) {
		hi := lo + 1
		st := int64(0)
		if hi < len(pts) && pts[hi].Y-pts[lo].Y == 1 {
			st = pts[hi].X - pts[lo].X
			for hi < len(pts) && pts[hi].X-pts[hi-1].X == st && pts[hi].Y-pts[hi-1].Y == 1 {
				hi++
			}
		}
		if hi-lo >= minCleanRun {
			out = fitRange(out, g, pts[lo:hi], 0)
		} else {
			// Extend the irregular stretch until the next long clean run.
			end := hi
			for end < len(pts) {
				rh := end + 1
				if rh < len(pts) && pts[rh].Y-pts[end].Y == 1 {
					d := pts[rh].X - pts[end].X
					for rh < len(pts) && pts[rh].X-pts[rh-1].X == d && pts[rh].Y-pts[rh-1].Y == 1 {
						rh++
					}
				}
				if rh-end >= minCleanRun {
					break
				}
				end = rh
			}
			out = fitRange(out, g, pts[lo:end], gamma)
			hi = end
		}
		lo = hi
	}
	return out
}

// fitRange fits one stretch of points with the given bound and verifies
// the quantized segments.
func fitRange(out []Learned, g addr.GroupID, pts []plr.Point, gamma int) []Learned {
	segs := plr.Fit(pts, float64(gamma), 0, 1, int64(addr.GroupSize-1))
	k := 0
	for _, fs := range segs {
		n := fs.N
		out = buildVerified(out, g, pts[k:k+n], fs, gamma)
		k += n
	}
	return out
}

// buildVerified quantizes a fitted segment and verifies its predictions,
// splitting recursively if float16/float32 quantization broke the bound.
func buildVerified(out []Learned, g addr.GroupID, pts []plr.Point, fs plr.Segment, gamma int) []Learned {
	base := addr.GroupBase(g)
	if len(pts) == 1 {
		// Single-point segment: L=0, K=0, I=PPA (paper §3.1).
		seg := Segment{SLPA: base + addr.LPA(pts[0].X), L: 0, K: 0, I: float32(pts[0].Y)}
		return append(out, Learned{Seg: seg, LPAs: []addr.LPA{seg.SLPA}})
	}

	// An accurate segment encodes an arithmetic LPA progression mapped to
	// *consecutive* PPAs: lookups test membership with
	// (lpa−S) mod round(1/K) (Algorithm 2), which is only meaningful when
	// the LPA stride is constant and each step advances the PPA by
	// exactly one (the flush order guarantees the latter for buffered
	// writes). Anything else must be approximate so the CRB provides the
	// membership set.
	strideOK := true
	st := pts[1].X - pts[0].X
	for i := 1; i < len(pts); i++ {
		if pts[i].X-pts[i-1].X != st || pts[i].Y-pts[i-1].Y != 1 {
			strideOK = false
			break
		}
	}

	if strideOK {
		if cand, ok := quantize(pts, fs, false); ok &&
			int64(cand.Stride()) == st && exact(cand, pts, base) {
			return append(out, finish(cand, pts, base))
		}
	}
	if gamma > 0 {
		if cand, ok := quantize(pts, fs, true); ok && withinGamma(cand, pts, base, gamma) {
			return append(out, finish(cand, pts, base))
		}
	}
	if strideOK || gamma > 0 {
		// Quantization broke the fit: halve and retry. Halving terminates
		// at single points, which always encode exactly.
		mid := len(pts) / 2
		out = buildVerified(out, g, pts[:mid], refit(pts[:mid], gamma), gamma)
		return buildVerified(out, g, pts[mid:], refit(pts[mid:], gamma), gamma)
	}
	// gamma = 0 and the run is not stride-clean (e.g. collinear points
	// with irregular strides, or PPA jumps): emit maximal stride-clean
	// sub-runs, degrading to single points in the worst case (§3.1).
	// Because !strideOK, every run is a strict subset, so this recursion
	// terminates.
	for lo := 0; lo < len(pts); {
		hi := lo + 1
		if hi < len(pts) && pts[hi].Y-pts[lo].Y == 1 {
			d := pts[hi].X - pts[lo].X
			for hi < len(pts) && pts[hi].X-pts[hi-1].X == d && pts[hi].Y-pts[hi-1].Y == 1 {
				hi++
			}
		}
		run := pts[lo:hi]
		out = buildVerified(out, g, run, refit(run, 0), 0)
		lo = hi
	}
	return out
}

func refit(pts []plr.Point, gamma int) plr.Segment {
	segs := plr.Fit(pts, float64(gamma), 0, 1, int64(addr.GroupSize-1))
	if len(segs) == 1 {
		return segs[0]
	}
	// The subset may itself need multiple segments; return a fit for the
	// whole span anyway — buildVerified's verification will split again.
	k := float64(pts[len(pts)-1].Y-pts[0].Y) / float64(pts[len(pts)-1].X-pts[0].X)
	return plr.Segment{FirstX: pts[0].X, LastX: pts[len(pts)-1].X, K: k, B: float64(pts[0].Y) - k*float64(pts[0].X), N: len(pts)}
}

// quantize builds the encoded segment for the fitted line, with the type
// flag folded into the slope's LSB (paper §3.2).
func quantize(pts []plr.Point, fs plr.Segment, approx bool) (Segment, bool) {
	k16 := float16.From64(fs.K).WithFlag(approx)
	if k16.IsNaN() || k16.IsInf() {
		return Segment{}, false
	}
	span := pts[len(pts)-1].X - pts[0].X
	if span > math.MaxUint8 {
		return Segment{}, false
	}
	return Segment{
		L: uint8(span),
		K: k16,
		I: float32(fs.B),
	}, true
}

func finish(seg Segment, pts []plr.Point, base addr.LPA) Learned {
	seg.SLPA = base + addr.LPA(pts[0].X)
	lpas := make([]addr.LPA, len(pts))
	for i, p := range pts {
		lpas[i] = base + addr.LPA(p.X)
	}
	return Learned{Seg: seg, LPAs: lpas}
}

func exact(seg Segment, pts []plr.Point, base addr.LPA) bool {
	for _, p := range pts {
		if seg.predictOffset(p.X) != addr.PPA(p.Y) {
			return false
		}
	}
	return true
}

func withinGamma(seg Segment, pts []plr.Point, base addr.LPA, gamma int) bool {
	for _, p := range pts {
		d := int64(seg.predictOffset(p.X)) - p.Y
		if d < -int64(gamma) || d > int64(gamma) {
			return false
		}
	}
	return true
}

// predictOffset is Predict with the group offset already computed.
func (s Segment) predictOffset(x int64) addr.PPA {
	k := float16.To64(s.K)
	p := math.Ceil(k*float64(x) + float64(s.I))
	if p < 0 {
		p = 0
	}
	return addr.PPA(p)
}
