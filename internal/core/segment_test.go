package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"leaftl/internal/addr"
)

func mappings(start addr.LPA, stride uint32, ppa addr.PPA, n int) []addr.Mapping {
	out := make([]addr.Mapping, n)
	for i := 0; i < n; i++ {
		out[i] = addr.Mapping{LPA: start + addr.LPA(uint32(i)*stride), PPA: ppa + addr.PPA(i)}
	}
	return out
}

func TestSegmentEncodeDecodeRoundTrip(t *testing.T) {
	ls := Learn(mappings(1000, 2, 5000, 20), 0)
	if len(ls) == 0 {
		t.Fatal("no segments learned")
	}
	for _, l := range ls {
		s := l.Seg
		b := s.Encode()
		got := DecodeSegment(b, s.Group())
		if got != s {
			t.Errorf("round trip: got %v, want %v", got, s)
		}
	}
}

func TestLearnSequentialIsOneAccurateSegment(t *testing.T) {
	// Paper Figure 1 A: one group-aligned sequential run.
	ls := Learn(mappings(512, 1, 9000, 256), 0)
	if len(ls) != 1 {
		t.Fatalf("learned %d segments, want 1: %v", len(ls), ls)
	}
	s := ls[0].Seg
	if !s.Accurate() {
		t.Error("sequential segment should be accurate")
	}
	if s.L != 255 {
		t.Errorf("L = %d, want 255", s.L)
	}
	for i, m := range mappings(512, 1, 9000, 256) {
		if got := s.Predict(m.LPA); got != m.PPA {
			t.Fatalf("entry %d: Predict(%d) = %d, want %d", i, m.LPA, got, m.PPA)
		}
	}
}

func TestLearnSplitsAtGroupBoundary(t *testing.T) {
	// 300 sequential pages starting mid-group must split at LPA 256.
	ls := Learn(mappings(200, 1, 0, 300), 0)
	if len(ls) != 2 {
		t.Fatalf("learned %d segments, want 2", len(ls))
	}
	if g0, g1 := ls[0].Seg.Group(), ls[1].Seg.Group(); g0 == g1 {
		t.Errorf("both segments in group %d", g0)
	}
}

func TestLearnStridedAccurate(t *testing.T) {
	// Paper Figure 1 B: stride-2 LPAs onto consecutive PPAs.
	ls := Learn(mappings(0, 2, 200, 100), 0)
	if len(ls) != 1 {
		t.Fatalf("learned %d segments, want 1", len(ls))
	}
	s := ls[0].Seg
	if !s.Accurate() || s.Stride() != 2 {
		t.Fatalf("segment %v: want accurate stride 2", s)
	}
	if s.OnStride(1) {
		t.Error("LPA 1 must be off-stride")
	}
	if !s.OnStride(198) {
		t.Error("LPA 198 must be on-stride")
	}
}

func TestLearnSinglePoints(t *testing.T) {
	pairs := []addr.Mapping{{LPA: 10, PPA: 999}, {LPA: 90, PPA: 5}, {LPA: 130, PPA: 77777}}
	ls := Learn(pairs, 0)
	if len(ls) != 3 {
		t.Fatalf("learned %d segments, want 3 singletons", len(ls))
	}
	for i, l := range ls {
		s := l.Seg
		if s.L != 0 || !s.Accurate() {
			t.Errorf("segment %d = %v, want single-point accurate", i, s)
		}
		if got := s.Predict(pairs[i].LPA); got != pairs[i].PPA {
			t.Errorf("Predict(%d) = %d, want %d", pairs[i].LPA, got, pairs[i].PPA)
		}
	}
}

func TestLearnIrregularApproximate(t *testing.T) {
	// Paper Figure 1 C / Figure 6: irregular LPAs to consecutive PPAs,
	// learnable as one approximate segment with gamma ≥ 1.
	lpas := []addr.LPA{0, 1, 4, 5}
	pairs := make([]addr.Mapping, len(lpas))
	for i, l := range lpas {
		pairs[i] = addr.Mapping{LPA: l, PPA: addr.PPA(64 + i)}
	}
	ls := Learn(pairs, 1)
	if len(ls) != 1 {
		t.Fatalf("learned %d segments, want 1", len(ls))
	}
	l := ls[0]
	if l.Seg.Accurate() {
		t.Error("irregular segment should be approximate")
	}
	if len(l.LPAs) != 4 {
		t.Errorf("LPAs = %v", l.LPAs)
	}
	for i, lpa := range lpas {
		d := int64(l.Seg.Predict(lpa)) - int64(64+i)
		if d < -1 || d > 1 {
			t.Errorf("LPA %d prediction off by %d, beyond gamma=1", lpa, d)
		}
	}
}

func TestLearnExactButIrregularStrideIsApproximate(t *testing.T) {
	// Points exactly on a line but with irregular x-strides cannot be an
	// accurate segment (the stride membership test would misfire); they
	// must come out approximate even though predictions are exact.
	pairs := []addr.Mapping{
		{LPA: 0, PPA: 100}, {LPA: 2, PPA: 101}, {LPA: 4, PPA: 102}, {LPA: 8, PPA: 104},
	}
	ls := Learn(pairs, 4)
	for _, l := range ls {
		if l.Seg.Accurate() && l.Seg.L > 0 {
			st := l.Seg.Stride()
			for _, lpa := range l.LPAs {
				if uint32(lpa-l.Seg.SLPA)%st != 0 {
					t.Fatalf("accurate segment %v contains off-stride LPA %d", l.Seg, lpa)
				}
			}
		}
	}
}

// Property: for random sorted batches, learned segments (a) cover every
// input mapping exactly once, (b) respect the error bound with the
// quantized slope, and (c) accurate segments predict exactly.
func TestPropertyLearnBound(t *testing.T) {
	check := func(seed int64, gsel uint8) bool {
		gamma := int(gsel % 3 * 4) // 0, 4, 8
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(400)
		pairs := make([]addr.Mapping, 0, n)
		lpa := addr.LPA(rng.Intn(1000))
		ppa := addr.PPA(rng.Intn(100000))
		for i := 0; i < n; i++ {
			lpa += addr.LPA(1 + rng.Intn(5))
			if rng.Intn(6) == 0 {
				ppa = addr.PPA(rng.Intn(1 << 24))
			} else {
				ppa++
			}
			pairs = append(pairs, addr.Mapping{LPA: lpa, PPA: ppa})
		}
		ls := Learn(pairs, gamma)

		covered := make(map[addr.LPA]Segment, n)
		for _, l := range ls {
			if len(l.LPAs) == 0 {
				return false
			}
			if l.Seg.SLPA != l.LPAs[0] || l.Seg.End() != l.LPAs[len(l.LPAs)-1] {
				return false
			}
			for _, lp := range l.LPAs {
				if _, dup := covered[lp]; dup {
					return false
				}
				covered[lp] = l.Seg
			}
		}
		if len(covered) != len(pairs) {
			return false
		}
		for _, m := range pairs {
			s, ok := covered[m.LPA]
			if !ok {
				return false
			}
			d := int64(s.Predict(m.LPA)) - int64(m.PPA)
			if s.Accurate() && d != 0 {
				return false
			}
			if d < -int64(gamma) || d > int64(gamma) {
				return false
			}
			if s.Accurate() && !s.OnStride(m.LPA) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}

func TestSegmentOverlaps(t *testing.T) {
	a := Segment{SLPA: 10, L: 5}
	cases := []struct {
		b    Segment
		want bool
	}{
		{Segment{SLPA: 0, L: 9}, false},
		{Segment{SLPA: 0, L: 10}, true},
		{Segment{SLPA: 15, L: 0}, true},
		{Segment{SLPA: 16, L: 3}, false},
		{Segment{SLPA: 12, L: 1}, true},
	}
	for _, c := range cases {
		if got := a.Overlaps(c.b); got != c.want {
			t.Errorf("%v overlaps %v = %v, want %v", a, c.b, got, c.want)
		}
		if got := c.b.Overlaps(a); got != c.want {
			t.Errorf("overlap not symmetric for %v", c.b)
		}
	}
}
