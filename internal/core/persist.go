package core

import (
	"encoding/binary"
	"fmt"
	"sort"

	"leaftl/internal/addr"
)

// Serialization of the learned mapping table (paper §3.8): LeaFTL stores
// the learned index segments in flash translation blocks, indexed by the
// global mapping directory (GMD), so the table survives power cycles
// without a full OOB scan when battery-backed DRAM persists it on
// failure. The format is deliberately simple and versioned:
//
//	header:  magic "LFTL" | version u8 | gamma u8
//	groups:  count u32, then per group (ascending group id):
//	         gid u32 | levels u16
//	         per level: segments u16, then 8-byte encoded segments
//	         crb entries u16, then per entry: len u8, offsets…
//
// All integers are little-endian. The encoding is exactly the DRAM
// footprint the paper counts (8 bytes per segment plus CRB bytes) plus
// small per-group headers.

const (
	persistMagic   = "LFTL"
	persistVersion = 1
)

// MarshalBinary serializes the table.
func (t *Table) MarshalBinary() ([]byte, error) {
	ids := make([]addr.GroupID, 0, len(t.groups))
	for id := range t.groups {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	buf := make([]byte, 0, 64+t.SizeBytes())
	buf = append(buf, persistMagic...)
	buf = append(buf, persistVersion, uint8(t.gamma))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(ids)))

	for _, id := range ids {
		g := t.groups[id]
		buf = binary.LittleEndian.AppendUint32(buf, uint32(id))
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(g.levels)))
		for _, lvl := range g.levels {
			buf = binary.LittleEndian.AppendUint16(buf, uint16(len(lvl)))
			for i := range lvl {
				enc := lvl[i].Encode()
				buf = append(buf, enc[:]...)
			}
		}
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(g.crb.entries)))
		for _, e := range g.crb.entries {
			if len(e.lpas) > addr.GroupSize {
				return nil, fmt.Errorf("core: CRB entry with %d LPAs", len(e.lpas))
			}
			buf = append(buf, uint8(len(e.lpas)))
			buf = append(buf, e.lpas...)
		}
	}
	return buf, nil
}

// UnmarshalBinary replaces the table's contents with the serialized
// state. The receiver's gamma is overwritten by the stored value.
func (t *Table) UnmarshalBinary(data []byte) error {
	r := reader{buf: data}
	magic, err := r.bytes(4)
	if err != nil || string(magic) != persistMagic {
		return fmt.Errorf("core: bad snapshot magic")
	}
	ver, err := r.u8()
	if err != nil || ver != persistVersion {
		return fmt.Errorf("core: unsupported snapshot version %d", ver)
	}
	gamma, err := r.u8()
	if err != nil {
		return err
	}
	nGroups, err := r.u32()
	if err != nil {
		return err
	}

	groups := make(map[addr.GroupID]*group, nGroups)
	for i := uint32(0); i < nGroups; i++ {
		gid, err := r.u32()
		if err != nil {
			return err
		}
		nLevels, err := r.u16()
		if err != nil {
			return err
		}
		g := &group{}
		for l := uint16(0); l < nLevels; l++ {
			nSegs, err := r.u16()
			if err != nil {
				return err
			}
			lvl := make([]Segment, 0, nSegs)
			for s := uint16(0); s < nSegs; s++ {
				raw, err := r.bytes(SegmentBytes)
				if err != nil {
					return err
				}
				var enc [SegmentBytes]byte
				copy(enc[:], raw)
				lvl = append(lvl, DecodeSegment(enc, addr.GroupID(gid)))
			}
			g.levels = append(g.levels, lvl)
		}
		nEntries, err := r.u16()
		if err != nil {
			return err
		}
		for e := uint16(0); e < nEntries; e++ {
			n, err := r.u8()
			if err != nil {
				return err
			}
			lpas, err := r.bytes(int(n))
			if err != nil {
				return err
			}
			if n == 0 {
				return fmt.Errorf("core: empty CRB entry in snapshot")
			}
			g.crb.entries = append(g.crb.entries, crbEntry{lpas: append([]uint8(nil), lpas...)})
		}
		g.crb.normalize()
		groups[addr.GroupID(gid)] = g
	}
	if r.off != len(data) {
		return fmt.Errorf("core: %d trailing bytes in snapshot", len(data)-r.off)
	}

	t.gamma = int(gamma)
	t.groups = groups
	return nil
}

// reader is a bounds-checked little-endian cursor.
type reader struct {
	buf []byte
	off int
}

func (r *reader) bytes(n int) ([]byte, error) {
	if r.off+n > len(r.buf) {
		return nil, fmt.Errorf("core: truncated snapshot at offset %d", r.off)
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b, nil
}

func (r *reader) u8() (uint8, error) {
	b, err := r.bytes(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (r *reader) u16() (uint16, error) {
	b, err := r.bytes(2)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(b), nil
}

func (r *reader) u32() (uint32, error) {
	b, err := r.bytes(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}
