package core

import (
	"encoding/binary"
	"fmt"
	"sort"

	"leaftl/internal/addr"
)

// Serialization of the learned mapping table (paper §3.8): LeaFTL stores
// the learned index segments in flash translation blocks, indexed by the
// global mapping directory (GMD), so the table survives power cycles
// without a full OOB scan when battery-backed DRAM persists it on
// failure. The format is deliberately simple and versioned:
//
//	header:  magic "LFTL" | version u8 | gamma u8
//	groups:  count u32, then per group (ascending group id):
//	         gid u32
//	         tune: gamma u8 | hint i8 | streak u8 | reads u32 | misses u32 | costly u32
//	         exact bitmap: 32 bytes (one bit per LPA slot)
//	         levels u16
//	         per level: segments u16, then 8-byte encoded segments
//	         crb entries u16, then per entry: len u8, offsets…
//
// All integers are little-endian. The encoding is exactly the DRAM
// footprint the paper counts (8 bytes per segment plus CRB bytes) plus
// small per-group headers. Version 2 added the 15-byte per-group tune
// block (tune.go): the group's effective learning γ, its misprediction
// direction hint/streak, and the controller's window counters, so paging
// a group to flash and back — or restoring it from its translation-page
// image during recovery — round-trips the adaptive-γ state exactly. A
// group's tuned γ must not exceed the table's global bound; records that
// claim otherwise are rejected. Version 3 appended the 32-byte
// predicted-exact bitmap to the tune block — always present on the wire
// (all-zero while the feature is disabled) so the record has one shape,
// and round-tripped bit-identically through page-out, snapshot, and
// recovery.
//
// The per-group record (everything after the snapshot header and count)
// is also the unit the demand-paging machinery moves to and from flash
// translation pages: MarshalGroup/InstallGroup speak exactly this record,
// so a full snapshot is a header plus the concatenated translation-page
// payloads of every group.

const (
	persistMagic   = "LFTL"
	persistVersion = 3
)

// appendRecordHeader writes the shared versioned-record framing — the
// "LFTL" magic plus a version byte — that prefixes both full snapshots
// (v3) and journal delta records (v4).
func appendRecordHeader(buf []byte, version uint8) []byte {
	buf = append(buf, persistMagic...)
	return append(buf, version)
}

// readRecordHeader consumes the shared versioned-record framing and
// returns the version byte, rejecting anything outside [minVer, maxVer].
// kind names the record family for error messages ("snapshot", "journal
// record"). Every versioned reader — the v1–v3 snapshot lineage and the
// v4 journal records — funnels through here so magic and version
// validation exist exactly once.
func readRecordHeader(r *reader, kind string, minVer, maxVer uint8) (uint8, error) {
	magic, err := r.bytes(len(persistMagic))
	if err != nil || string(magic) != persistMagic {
		return 0, fmt.Errorf("core: bad %s magic", kind)
	}
	ver, err := r.u8()
	if err != nil || ver < minVer || ver > maxVer {
		return 0, fmt.Errorf("core: unsupported %s version %d", kind, ver)
	}
	return ver, nil
}

// appendGroupRecord serializes one group in the snapshot's per-group
// record format.
func appendGroupRecord(buf []byte, id addr.GroupID, g *group) ([]byte, error) {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(id))
	buf = append(buf, g.tune.gamma, uint8(g.tune.hint), g.tune.streak)
	buf = binary.LittleEndian.AppendUint32(buf, g.tune.reads)
	buf = binary.LittleEndian.AppendUint32(buf, g.tune.misses)
	buf = binary.LittleEndian.AppendUint32(buf, g.tune.costly)
	buf = append(buf, g.tune.exact[:]...)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(g.levels)))
	for li := range g.levels {
		segs := g.levels[li].segs
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(segs)))
		for i := range segs {
			enc := segs[i].Encode()
			buf = append(buf, enc[:]...)
		}
	}
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(g.crb.entries)))
	for _, e := range g.crb.entries {
		if len(e.lpas) > addr.GroupSize {
			return nil, fmt.Errorf("core: CRB entry with %d LPAs", len(e.lpas))
		}
		buf = append(buf, uint8(len(e.lpas)))
		buf = append(buf, e.lpas...)
	}
	return buf, nil
}

// readGroupRecord decodes one per-group record. The returned group's CRB
// is normalized (owner index rebuilt, entries sorted) so the group is
// ready to serve lookups.
func readGroupRecord(r *reader) (addr.GroupID, *group, error) {
	gid, err := r.u32()
	if err != nil {
		return 0, nil, err
	}
	// A 32-bit LPA space holds at most 2^24 groups of 256 pages;
	// validating keeps a corrupt record from forcing a huge dense-slice
	// allocation in the caller.
	if gid >= 1<<24 {
		return 0, nil, fmt.Errorf("core: group id %d implausible", gid)
	}
	tuneRaw, err := r.bytes(3)
	if err != nil {
		return 0, nil, err
	}
	tune := groupTune{gamma: tuneRaw[0], hint: int8(tuneRaw[1]), streak: tuneRaw[2]}
	if tune.reads, err = r.u32(); err != nil {
		return 0, nil, err
	}
	if tune.misses, err = r.u32(); err != nil {
		return 0, nil, err
	}
	if tune.costly, err = r.u32(); err != nil {
		return 0, nil, err
	}
	bm, err := r.bytes(exactBitmapBytes)
	if err != nil {
		return 0, nil, err
	}
	copy(tune.exact[:], bm)
	nLevels, err := r.u16()
	if err != nil {
		return 0, nil, err
	}
	g := &group{tune: tune}
	for l := uint16(0); l < nLevels; l++ {
		nSegs, err := r.u16()
		if err != nil {
			return 0, nil, err
		}
		lvl := level{
			keys: make([]uint8, 0, nSegs),
			segs: make([]Segment, 0, nSegs),
		}
		for s := uint16(0); s < nSegs; s++ {
			raw, err := r.bytes(SegmentBytes)
			if err != nil {
				return 0, nil, err
			}
			var enc [SegmentBytes]byte
			copy(enc[:], raw)
			seg := DecodeSegment(enc, addr.GroupID(gid))
			lvl.keys = append(lvl.keys, seg.Start())
			lvl.segs = append(lvl.segs, seg)
		}
		g.levels = append(g.levels, lvl)
	}
	nEntries, err := r.u16()
	if err != nil {
		return 0, nil, err
	}
	for e := uint16(0); e < nEntries; e++ {
		n, err := r.u8()
		if err != nil {
			return 0, nil, err
		}
		lpas, err := r.bytes(int(n))
		if err != nil {
			return 0, nil, err
		}
		if n == 0 {
			return 0, nil, fmt.Errorf("core: empty CRB entry in snapshot")
		}
		g.crb.entries = append(g.crb.entries, crbEntry{lpas: append([]uint8(nil), lpas...)})
	}
	// Sort the entries, then rebuild the owner acceleration index and the
	// flat byte footprint — the decoded group must be fully servable on
	// its own (the demand-paging path installs it without the full-table
	// recomputeStats sweep).
	g.crb.normalize()
	g.crb.recompute()
	return addr.GroupID(gid), g, nil
}

// MarshalBinary serializes the table. The dense group slice is already in
// ascending group-ID order.
func (t *Table) MarshalBinary() ([]byte, error) {
	return t.SnapshotWith(nil)
}

// SnapshotWith serializes the table plus the given evicted-group images
// into one full snapshot: resident groups marshal fresh from DRAM,
// paged-out groups contribute their translation-page records verbatim,
// merged in ascending group-ID order. A group that is both resident and
// imaged is an error (the pager guarantees disjointness).
func (t *Table) SnapshotWith(images map[addr.GroupID][]byte) ([]byte, error) {
	gids := make([]addr.GroupID, 0, len(images))
	for gid := range images {
		if t.HasGroup(gid) {
			return nil, fmt.Errorf("core: group %d is both resident and imaged", gid)
		}
		gids = append(gids, gid)
	}
	sort.Slice(gids, func(i, j int) bool { return gids[i] < gids[j] })

	buf := make([]byte, 0, 64+t.SizeBytes())
	buf = appendRecordHeader(buf, persistVersion)
	buf = append(buf, uint8(t.gamma))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(t.nGroups+len(images)))

	var ferr error
	k := 0
	t.eachGroup(func(id addr.GroupID, g *group) {
		if ferr != nil {
			return
		}
		for k < len(gids) && gids[k] < id {
			buf = append(buf, images[gids[k]]...)
			k++
		}
		buf, ferr = appendGroupRecord(buf, id, g)
	})
	if ferr != nil {
		return nil, ferr
	}
	for ; k < len(gids); k++ {
		buf = append(buf, images[gids[k]]...)
	}
	return buf, nil
}

// UnmarshalBinary replaces the table's contents with the serialized
// state. The receiver's gamma is overwritten by the stored value.
func (t *Table) UnmarshalBinary(data []byte) error {
	r := reader{buf: data}
	if _, err := readRecordHeader(&r, "snapshot", persistVersion, persistVersion); err != nil {
		return err
	}
	gamma, err := r.u8()
	if err != nil {
		return err
	}
	nGroups, err := r.u32()
	if err != nil {
		return err
	}

	var groups []*group
	lastGid := int64(-1)
	for i := uint32(0); i < nGroups; i++ {
		gid, g, err := readGroupRecord(&r)
		if err != nil {
			return err
		}
		if int(g.tune.gamma) > int(gamma) {
			return fmt.Errorf("core: group %d tuned gamma %d exceeds the table bound %d",
				gid, g.tune.gamma, gamma)
		}
		// Marshal writes groups in strictly ascending gid order; a corrupt
		// snapshot must not repeat or reorder them.
		if int64(gid) <= lastGid {
			return fmt.Errorf("core: snapshot group id %d out of order", gid)
		}
		lastGid = int64(gid)
		for len(groups) <= int(gid) {
			groups = append(groups, nil)
		}
		groups[gid] = g
	}
	if r.off != len(data) {
		return fmt.Errorf("core: %d trailing bytes in snapshot", len(data)-r.off)
	}

	t.gamma = int(gamma)
	t.groups = groups
	t.recomputeStats()
	return nil
}

// reader is a bounds-checked little-endian cursor.
type reader struct {
	buf []byte
	off int
}

func (r *reader) bytes(n int) ([]byte, error) {
	if r.off+n > len(r.buf) {
		return nil, fmt.Errorf("core: truncated snapshot at offset %d", r.off)
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b, nil
}

func (r *reader) u8() (uint8, error) {
	b, err := r.bytes(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (r *reader) u16() (uint16, error) {
	b, err := r.bytes(2)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(b), nil
}

func (r *reader) u32() (uint32, error) {
	b, err := r.bytes(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}
