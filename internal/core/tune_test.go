package core

import (
	"bytes"
	"testing"

	"leaftl/internal/addr"
)

// tuneTable builds a table with one written group and returns its id.
func tuneTable(t *testing.T, gamma int) (*Table, addr.GroupID) {
	t.Helper()
	tb := NewTable(gamma)
	pairs := make([]addr.Mapping, 0, 32)
	lpa := addr.LPA(0)
	for i := 0; i < 32; i++ {
		lpa += addr.LPA(1 + i%3)
		pairs = append(pairs, addr.Mapping{LPA: lpa, PPA: addr.PPA(1000 + i)})
	}
	tb.Update(pairs)
	return tb, addr.Group(pairs[0].LPA)
}

func TestGroupGammaDefaultsAndClamp(t *testing.T) {
	tb, gid := tuneTable(t, 8)
	if g := tb.GroupGamma(gid); g != 8 {
		t.Fatalf("new group gamma = %d, want the table's 8", g)
	}
	if g := tb.GroupGamma(gid + 100); g != 8 {
		t.Errorf("absent group gamma = %d, want table default 8", g)
	}
	if tb.SetGroupGamma(gid+100, 2) {
		t.Error("SetGroupGamma accepted an absent group")
	}
	if !tb.SetGroupGamma(gid, 99) {
		t.Fatal("SetGroupGamma rejected a resident group")
	}
	if g := tb.GroupGamma(gid); g != 8 {
		t.Errorf("gamma clamped to %d, want the global bound 8", g)
	}
	tb.SetGroupGamma(gid, 3)
	if g := tb.GroupGamma(gid); g != 3 {
		t.Errorf("gamma = %d, want 3", g)
	}
	if m := tb.MaxGroupGamma(); m != 8 {
		// Other groups stay at 8.
		if m != 8 && m != 3 {
			t.Errorf("MaxGroupGamma = %d", m)
		}
	}
}

func TestNoteReadCountersAndHint(t *testing.T) {
	tb, gid := tuneTable(t, 8)
	base := addr.GroupBase(gid)
	lpa := base + 1

	// Exact reads advance only the window.
	tb.NoteRead(lpa, 100, 100, false, false)
	// An approx miss with delta +3, twice: second repeat arms the hint.
	tb.NoteRead(lpa, 100, 103, true, false)
	got := tb.GroupTunes()
	var tu GroupTune
	for _, g := range got {
		if g.Group == gid {
			tu = g
		}
	}
	if tu.Reads != 2 || tu.Misses != 1 || tu.Costly != 1 {
		t.Fatalf("after one miss: %+v", tu)
	}
	if _, res, ok := tb.Lookup(lpa); ok && res.Hint != 0 {
		t.Error("hint armed after a single miss")
	}
	tb.NoteRead(lpa, 100, 103, true, true) // hint-resolved repeat
	for _, g := range tb.GroupTunes() {
		if g.Group == gid {
			tu = g
		}
	}
	if tu.Streak < 2 || tu.Hint != 3 {
		t.Fatalf("streak/hint not armed: %+v", tu)
	}
	if tu.Costly != 1 {
		t.Errorf("hint-resolved miss counted as costly: %+v", tu)
	}
	// An approx hit disarms the streak (keeps the last delta).
	tb.NoteRead(lpa, 100, 100, true, false)
	for _, g := range tb.GroupTunes() {
		if g.Group == gid {
			tu = g
		}
	}
	if tu.Streak != 0 {
		t.Errorf("approx hit did not disarm: %+v", tu)
	}
}

func TestRetuneGammaDemotesAndPromotes(t *testing.T) {
	tb, gid := tuneTable(t, 8)
	base := addr.GroupBase(gid)
	cfg := TuneConfig{TargetMissRatio: 0.02, MinReads: 64}

	// Below the observation floor: no decision.
	for i := 0; i < 10; i++ {
		tb.NoteRead(base+1, 100, 105, true, false)
	}
	if changed := tb.RetuneGamma(cfg); len(changed) != 0 {
		t.Fatalf("retune acted below MinReads: %v", changed)
	}

	// A window with a high costly ratio goes straight to exact.
	for i := 0; i < 100; i++ {
		tb.NoteRead(base+1, 100, 105, true, false)
	}
	changed := tb.RetuneGamma(cfg)
	if len(changed) != 1 || changed[0] != gid {
		t.Fatalf("demotion changed %v, want [%d]", changed, gid)
	}
	if g := tb.GroupGamma(gid); g != 0 {
		t.Fatalf("hopeless group at gamma %d, want 0 (fast demote)", g)
	}

	// Mild costly ratio: halving ladder. Reset to 8 first.
	tb.SetGroupGamma(gid, 8)
	for i := 0; i < 1000; i++ {
		miss := i%30 == 0 // ~3.3% costly, between target and 2x target
		tb.NoteRead(base+1, 100, 100, !miss, false)
		if miss {
			tb.NoteRead(base+1, 100, 105, true, false)
		}
	}
	tb.RetuneGamma(cfg)
	if g := tb.GroupGamma(gid); g != 4 {
		t.Fatalf("mildly missing group at gamma %d, want 4", g)
	}

	// Clean windows promote back toward the bound, never past it.
	for steps := 0; steps < 10; steps++ {
		for i := 0; i < 100; i++ {
			tb.NoteRead(base+1, 100, 100, false, false)
		}
		tb.RetuneGamma(cfg)
	}
	if g := tb.GroupGamma(gid); g != 8 {
		t.Fatalf("promotion settled at %d, want the global bound 8", g)
	}
	if m := tb.MaxGroupGamma(); m > tb.Gamma() {
		t.Fatalf("MaxGroupGamma %d exceeds table gamma %d", m, tb.Gamma())
	}
}

// TestTuneStateRoundTripsThroughGroupRecord pins the acceptance
// criterion: a group's adaptive-γ state survives MarshalGroup/
// InstallGroup (the page-out/page-in path) bit-identically.
func TestTuneStateRoundTripsThroughGroupRecord(t *testing.T) {
	tb, gid := tuneTable(t, 8)
	base := addr.GroupBase(gid)
	tb.SetGroupGamma(gid, 3)
	tb.NoteRead(base+1, 100, 104, true, false)
	tb.NoteRead(base+1, 100, 104, true, true)
	tb.NoteRead(base+2, 200, 200, true, false)

	img, err := tb.MarshalGroup(gid)
	if err != nil {
		t.Fatal(err)
	}
	before := tb.GroupTunes()

	if _, ok := tb.DropGroup(gid); !ok {
		t.Fatal("drop failed")
	}
	if gid2, err := tb.InstallGroup(img); err != nil || gid2 != gid {
		t.Fatalf("install: %v (gid %d)", err, gid2)
	}
	after := tb.GroupTunes()
	if len(before) != len(after) {
		t.Fatalf("group count changed: %d vs %d", len(before), len(after))
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("tune state diverged after page-out/page-in: %+v vs %+v", before[i], after[i])
		}
	}
	img2, err := tb.MarshalGroup(gid)
	if err != nil || !bytes.Equal(img, img2) {
		t.Fatalf("group record not bit-identical after round trip (err %v)", err)
	}

	// Full snapshots carry the state too.
	snap, err := tb.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	fresh := NewTable(0)
	if err := fresh.UnmarshalBinary(snap); err != nil {
		t.Fatal(err)
	}
	got := fresh.GroupTunes()
	for i := range before {
		if before[i] != got[i] {
			t.Fatalf("tune state diverged through snapshot: %+v vs %+v", before[i], got[i])
		}
	}
}

// TestInstallGroupRejectsExcessGamma: records claiming a tuned γ above
// the installing table's bound are corrupt and must not install.
func TestInstallGroupRejectsExcessGamma(t *testing.T) {
	tb, gid := tuneTable(t, 8)
	img, err := tb.MarshalGroup(gid)
	if err != nil {
		t.Fatal(err)
	}
	low := NewTable(4)
	if _, err := low.InstallGroup(img); err == nil {
		t.Fatal("record with gamma 8 installed into a gamma-4 table")
	}
	same := NewTable(8)
	if _, err := same.InstallGroup(img); err != nil {
		t.Fatalf("matching-bound install failed: %v", err)
	}
}

// TestShardedTuneMatchesPlain: identical feedback drives identical
// retune decisions through the sharded table.
func TestShardedTuneMatchesPlain(t *testing.T) {
	plain := NewTable(8)
	sharded := NewShardedTable(8, 7)
	var pairs []addr.Mapping
	lpa := addr.LPA(0)
	for i := 0; i < 2000; i++ {
		lpa += addr.LPA(1 + i%4)
		pairs = append(pairs, addr.Mapping{LPA: lpa, PPA: addr.PPA(5000 + i)})
	}
	plain.Update(pairs)
	sharded.Update(pairs)

	for i, m := range pairs {
		miss := i%17 == 0
		actual := m.PPA
		if miss {
			actual += 2
		}
		plain.NoteRead(m.LPA, m.PPA, actual, true, false)
		sharded.NoteRead(m.LPA, m.PPA, actual, true, false)
	}
	cfg := TuneConfig{TargetMissRatio: 0.02, MinReads: 16}
	pc, sc := plain.RetuneGamma(cfg), sharded.RetuneGamma(cfg)
	if len(pc) != len(sc) {
		t.Fatalf("changed sets differ: %d vs %d groups", len(pc), len(sc))
	}
	for i := range pc {
		if pc[i] != sc[i] {
			t.Fatalf("changed[%d] = %d vs %d", i, pc[i], sc[i])
		}
	}
	pt, st := plain.GroupTunes(), sharded.GroupTunes()
	if len(pt) != len(st) {
		t.Fatalf("tune counts differ: %d vs %d", len(pt), len(st))
	}
	for i := range pt {
		if pt[i] != st[i] {
			t.Fatalf("tune state diverged at %d: %+v vs %+v", i, pt[i], st[i])
		}
	}
	if plain.MaxGroupGamma() != sharded.MaxGroupGamma() {
		t.Error("MaxGroupGamma diverged")
	}
}
