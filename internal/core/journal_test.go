package core

import (
	"bytes"
	"testing"

	"leaftl/internal/addr"
)

// journalTestImages returns a sequence of distinct, valid v3 images of
// the same group (group 0), produced by successively overwriting the
// group's LPAs at fresh PPAs — the states a write-hot group's dirty
// evictions would persist.
func journalTestImages(t *testing.T, n int) [][]byte {
	t.Helper()
	tab := NewTable(4)
	imgs := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		base := addr.PPA(1000 + i*2048)
		pairs := make([]addr.Mapping, 0, 64)
		// Alternate a clean sequential run with a scattered overwrite so
		// levels, CRB and tune sections all churn across the sequence.
		if i%2 == 0 {
			for l := 0; l < 64; l++ {
				pairs = append(pairs, addr.Mapping{LPA: addr.LPA(l), PPA: base + addr.PPA(l)})
			}
		} else {
			for l := 0; l < 40; l++ {
				pairs = append(pairs, addr.Mapping{LPA: addr.LPA(l * 3), PPA: base + addr.PPA(l)})
			}
		}
		tab.Update(pairs)
		img, err := tab.MarshalGroup(0)
		if err != nil {
			t.Fatalf("image %d: %v", i, err)
		}
		imgs = append(imgs, img)
	}
	return imgs
}

// TestDeltaRoundTrip pins the delta codec: parse, diff, replay must
// reproduce the successor image byte for byte, an identical image must
// encode to no delta at all, and a small change must cost fewer bytes
// than the full image it stands in for.
func TestDeltaRoundTrip(t *testing.T) {
	imgs := journalTestImages(t, 6)
	for i := 1; i < len(imgs); i++ {
		base, err := parseRecSections(imgs[i-1])
		if err != nil {
			t.Fatalf("base %d: %v", i-1, err)
		}
		cur, err := parseRecSections(imgs[i])
		if err != nil {
			t.Fatalf("cur %d: %v", i, err)
		}
		if got := base.serialize(); !bytes.Equal(got, imgs[i-1]) {
			t.Fatalf("image %d: parse∘serialize is not the identity", i-1)
		}
		delta := encodeDelta(base, cur, 1)
		if delta == nil {
			t.Fatalf("images %d→%d differ but encode to no delta", i-1, i)
		}
		out, err := applyDelta(base, delta, 1)
		if err != nil {
			t.Fatalf("replay %d→%d: %v", i-1, i, err)
		}
		if !bytes.Equal(out.serialize(), imgs[i]) {
			t.Fatalf("replay %d→%d does not reproduce the successor image", i-1, i)
		}
		// Chain-gap and cross-group application must be rejected.
		if _, err := applyDelta(base, delta, 2); err == nil {
			t.Fatal("replay accepted a sequence gap")
		}
		other := base
		other.gid++
		if _, err := applyDelta(other, delta, 1); err == nil {
			t.Fatal("replay accepted a record for another group")
		}
	}

	base, _ := parseRecSections(imgs[0])
	if d := encodeDelta(base, base, 1); d != nil {
		t.Fatalf("identical sections encoded a %dB delta", len(d))
	}

	// A full-image record replays from nothing, and only as a base.
	full := encodeFull(imgs[0], 0)
	out, err := applyDelta(recSections{}, full, 0)
	if err != nil {
		t.Fatalf("full-image replay: %v", err)
	}
	if !bytes.Equal(out.serialize(), imgs[0]) {
		t.Fatal("full-image replay does not reproduce the image")
	}
	if _, err := applyDelta(out, full, 1); err == nil {
		t.Fatal("full-image record accepted mid-chain")
	}
}

// TestJournalWritebackFold drives one group through repeated writebacks
// and pins the journal's state machine: first writeback is a base, the
// next ones append deltas, a byte-identical rewrite is free, and the
// chain folds to a fresh base once it passes the length threshold —
// with the audit and the folded image holding at every step.
func TestJournalWritebackFold(t *testing.T) {
	// A small page keeps the open SRAM tail from swallowing the whole
	// sequence, so loads below actually charge flash reads.
	imgs := journalTestImages(t, journalMaxChain+4)
	j := newJournal(256)

	cost := j.writeback(0, imgs[0])
	if s := j.Stats(); s.Bases != 1 || s.Appends != 0 {
		t.Fatalf("first writeback: %d bases, %d appends; want 1, 0", s.Bases, s.Appends)
	}
	if cost.MetaWrites != 0 {
		t.Fatalf("first writeback charged %d page writes before the tail filled", cost.MetaWrites)
	}
	if j.writeback(0, imgs[0]).MetaWrites != 0 || j.Stats().Appends != 0 {
		t.Fatal("byte-identical rewrite was not free")
	}

	for i := 1; i < len(imgs); i++ {
		j.writeback(0, imgs[i])
		if got := j.image(0); !bytes.Equal(got, imgs[i]) {
			t.Fatalf("after writeback %d the folded image diverges", i)
		}
		if err := j.check(); err != nil {
			t.Fatalf("after writeback %d: %v", i, err)
		}
		if s := j.Stats(); s.MaxChain > journalMaxChain {
			t.Fatalf("after writeback %d: chain %d exceeds the fold threshold", i, s.MaxChain)
		}
	}
	s := j.Stats()
	if s.Appends == 0 {
		t.Error("no deltas appended across the sequence")
	}
	if s.Folds == 0 {
		t.Error("chain never folded despite exceeding the threshold")
	}

	img, cost := j.load(0)
	if !bytes.Equal(img, imgs[len(imgs)-1]) {
		t.Fatal("load does not return the newest image")
	}
	if cost.MetaReads == 0 {
		t.Error("load charged no page reads despite charged pages under the chain")
	}
}

// TestJournalGC squeezes the footprint cap so appends must reclaim
// translation blocks: the lowest-live sealed block's groups fold to the
// log head, the block is erased, and the audit, the cap (+1 open block)
// and every group's image survive the cycling.
func TestJournalGC(t *testing.T) {
	const nGroups = 4
	tabs := make([]*Table, nGroups)
	for g := range tabs {
		tabs[g] = NewTable(4)
	}
	image := func(g, round int) []byte {
		pairs := make([]addr.Mapping, 32)
		for l := range pairs {
			pairs[l] = addr.Mapping{
				LPA: addr.LPA(g*addr.GroupSize + l*2),
				PPA: addr.PPA(10_000 + round*4096 + g*512 + l),
			}
		}
		tabs[g].Update(pairs)
		img, err := tabs[g].MarshalGroup(addr.GroupID(g))
		if err != nil {
			t.Fatalf("group %d round %d: %v", g, round, err)
		}
		return img
	}

	j := newJournal(256)
	j.configure(2, 4) // 512B blocks, GC beyond 4 pages = 2 blocks
	var folds int
	j.hook = func(point string) {
		if point == "journal.fold" {
			folds++
		}
	}
	want := make([][]byte, nGroups)
	for round := 0; round < 12; round++ {
		for g := 0; g < nGroups; g++ {
			want[g] = image(g, round)
			j.writeback(addr.GroupID(g), want[g])
			if err := j.check(); err != nil {
				t.Fatalf("round %d group %d: %v", round, g, err)
			}
		}
	}
	s := j.Stats()
	if s.GCRuns == 0 {
		t.Fatal("journal GC never ran under a 2-block cap")
	}
	if folds == 0 {
		t.Error("journal.fold hook never fired")
	}
	if s.Pages > 4+2 {
		t.Errorf("footprint %d pages exceeds the cap plus one open block", s.Pages)
	}
	for g := 0; g < nGroups; g++ {
		if got := j.image(addr.GroupID(g)); !bytes.Equal(got, want[g]) {
			t.Errorf("group %d image diverged across GC", g)
		}
	}
}

// TestPersistVersionRejection is the table-driven guard over the shared
// record-header helper: every versioned reader — the snapshot decoder
// and the journal-record decoder — must reject wrong magic and any
// version outside its window, and accept its own.
func TestPersistVersionRejection(t *testing.T) {
	tab := NewTable(4)
	pairs := make([]addr.Mapping, 16)
	for i := range pairs {
		pairs[i] = addr.Mapping{LPA: addr.LPA(i), PPA: addr.PPA(100 + i)}
	}
	tab.Update(pairs)
	snap, err := tab.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	img, err := tab.MarshalGroup(0)
	if err != nil {
		t.Fatal(err)
	}
	jrec := encodeFull(img, 0)

	decodeSnapshot := func(data []byte) error { return NewTable(0).UnmarshalBinary(data) }
	decodeJournal := func(data []byte) error {
		_, _, _, _, err := decodeJournalRecord(data)
		return err
	}

	cases := []struct {
		name    string
		valid   []byte
		decode  func([]byte) error
		version uint8
	}{
		{"snapshot", snap, decodeSnapshot, persistVersion},
		{"journal record", jrec, decodeJournal, journalVersion},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := c.decode(c.valid); err != nil {
				t.Fatalf("valid v%d record rejected: %v", c.version, err)
			}
			for _, ver := range []uint8{0, 1, 2, 3, 4, 5, 42, 255} {
				if ver == c.version {
					continue
				}
				mut := append([]byte(nil), c.valid...)
				mut[len(persistMagic)] = ver
				if err := c.decode(mut); err == nil {
					t.Errorf("version %d accepted by the %s reader", ver, c.name)
				}
			}
			mut := append([]byte(nil), c.valid...)
			mut[0] ^= 0xff
			if err := c.decode(mut); err == nil {
				t.Error("corrupt magic accepted")
			}
			for cut := 0; cut < len(persistMagic)+1; cut++ {
				if err := c.decode(c.valid[:cut]); err == nil {
					t.Errorf("truncated header (%dB) accepted", cut)
				}
			}
		})
	}
}

// FuzzJournal fuzzes the v4 journal-record decoder — base replay,
// mid-chain delta replay, and the fold path — against panics, and
// asserts every accepted input lands on a canonical fixed point: the
// replayed sections must re-serialize to a parseable image, re-framing
// that image as a fresh base must replay to the same bytes, and a
// re-encoded delta must reproduce the same successor.
func FuzzJournal(f *testing.F) {
	_, groups := fuzzSeeds(f)
	var baseImg []byte
	for _, img := range groups {
		f.Add(encodeFull(img, 0))
		if baseImg == nil {
			baseImg = img
		}
	}
	if sec, err := parseRecSections(groups[0]); err == nil {
		for _, img := range groups[1:] {
			cur, err := parseRecSections(img)
			if err != nil {
				continue
			}
			cur.gid = sec.gid
			if d := encodeDelta(sec, cur, 1); d != nil {
				f.Add(d)
			}
		}
	}
	f.Add([]byte("LFTL\x04\x00\x00\x00\x00\x00\x00\x08"))
	f.Add([]byte{})

	baseSec, err := parseRecSections(baseImg)
	if err != nil {
		f.Fatal(err)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		// Base replay: an accepted record must fold to a well-formed image
		// that round-trips through the full-image framing.
		if out, err := applyDelta(recSections{}, data, 0); err == nil {
			img := out.serialize()
			sec, err := parseRecSections(img)
			if err != nil {
				t.Fatalf("accepted base replays to an unparseable image: %v", err)
			}
			if !bytes.Equal(sec.serialize(), img) {
				t.Fatal("replayed image is not a serialization fixed point")
			}
			again, err := applyDelta(recSections{}, encodeFull(img, out.gid), 0)
			if err != nil {
				t.Fatalf("re-framed base rejected: %v", err)
			}
			if !bytes.Equal(again.serialize(), img) {
				t.Fatal("re-framed base is not a replay fixed point")
			}
		}

		// Mid-chain replay onto a fixed valid base: an accepted delta's
		// successor must round-trip through the delta encoder (the fold
		// path's inverse).
		if out, err := applyDelta(baseSec, data, 1); err == nil {
			img := out.serialize()
			sec, err := parseRecSections(img)
			if err != nil {
				t.Fatalf("accepted delta replays to an unparseable image: %v", err)
			}
			if d := encodeDelta(baseSec, sec, 1); d != nil {
				redo, err := applyDelta(baseSec, d, 1)
				if err != nil {
					t.Fatalf("re-encoded delta rejected: %v", err)
				}
				if !bytes.Equal(redo.serialize(), img) {
					t.Fatal("re-encoded delta is not a replay fixed point")
				}
			} else if !bytes.Equal(img, baseSec.serialize()) {
				t.Fatal("delta changed the image but re-encodes to nothing")
			}
		}
	})
}
