package core

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"leaftl/internal/addr"
)

// ShardedTable partitions the learned mapping table into N independently
// locked shards, keyed by a hash of the 256-LPA group ID. Every group's
// state (level stack + CRB) lives wholly inside one shard and groups are
// fully independent in Table, so a ShardedTable fed the same batches as a
// plain Table produces bit-identical translations — sharding only changes
// who may run concurrently.
//
// Lookups take a shard read lock (Table.Lookup touches no mutation
// scratch), so independent host streams translate in parallel; updates
// take the owning shard's write lock. This is the concurrency structure
// LFTL (arXiv:1302.5502) argues an FTL needs to exploit parallel-IO
// flash hardware, applied to LeaFTL's learned core.
type ShardedTable struct {
	gamma    int
	bitmapOn bool
	shards   []*tableShard
}

type tableShard struct {
	mu sync.RWMutex
	// pad the mutex+table onto its own cache line so shard locks do not
	// false-share under concurrent streams.
	_   [40]byte
	tab *Table
}

// NewShardedTable returns an empty sharded table with the given error
// bound and shard count (values < 1 are clamped to 1).
func NewShardedTable(gamma, shards int) *ShardedTable {
	if shards < 1 {
		shards = 1
	}
	if gamma < 0 {
		gamma = 0
	}
	st := &ShardedTable{gamma: gamma, shards: make([]*tableShard, shards)}
	for i := range st.shards {
		st.shards[i] = &tableShard{tab: NewTable(gamma)}
	}
	return st
}

// Gamma returns the table's error bound.
func (s *ShardedTable) Gamma() int { return s.gamma }

// EnableExactBitmap turns on predicted-exact bitmap maintenance in every
// shard (see Table.EnableExactBitmap). Decisions are per group, so the
// bitmaps are bit-identical to a plain table fed the same traffic.
func (s *ShardedTable) EnableExactBitmap() {
	s.bitmapOn = true
	for _, sh := range s.shards {
		sh.mu.Lock()
		sh.tab.EnableExactBitmap()
		sh.mu.Unlock()
	}
}

// ExactBitmapEnabled reports whether the shards maintain predicted-exact
// bitmaps.
func (s *ShardedTable) ExactBitmapEnabled() bool { return s.bitmapOn }

// Shards returns the shard count.
func (s *ShardedTable) Shards() int { return len(s.shards) }

// shardFor maps a group to its shard. Group IDs are Fibonacci-hashed so
// strided access patterns cannot pile onto one shard.
func (s *ShardedTable) shardFor(g addr.GroupID) *tableShard {
	h := uint64(g) * 0x9E3779B97F4A7C15
	return s.shards[(h>>32)%uint64(len(s.shards))]
}

// Lookup translates lpa (see Table.Lookup). Safe for concurrent use with
// other Lookups and Updates.
func (s *ShardedTable) Lookup(lpa addr.LPA) (addr.PPA, LookupResult, bool) {
	sh := s.shardFor(addr.Group(lpa))
	sh.mu.RLock()
	ppa, res, ok := sh.tab.Lookup(lpa)
	sh.mu.RUnlock()
	return ppa, res, ok
}

// Update learns and inserts a batch (see Table.Update). pairs are split
// into maximal same-shard runs — shard boundaries are group boundaries,
// so per-group learning is identical to the unsharded path.
func (s *ShardedTable) Update(pairs []addr.Mapping) int {
	n := 0
	for i := 0; i < len(pairs); {
		sh := s.shardFor(addr.Group(pairs[i].LPA))
		j := i + 1
		for j < len(pairs) && s.shardFor(addr.Group(pairs[j].LPA)) == sh {
			j++
		}
		sh.mu.Lock()
		n += sh.tab.Update(pairs[i:j])
		sh.mu.Unlock()
		i = j
	}
	return n
}

// Relearn re-fits groups from a GC relocation batch (see Table.Relearn).
// pairs are split into maximal same-shard runs; group runs never cross
// shard boundaries, so the refits are identical to the unsharded path.
func (s *ShardedTable) Relearn(pairs []addr.Mapping) (segs, groups int) {
	for i := 0; i < len(pairs); {
		sh := s.shardFor(addr.Group(pairs[i].LPA))
		j := i + 1
		for j < len(pairs) && s.shardFor(addr.Group(pairs[j].LPA)) == sh {
			j++
		}
		sh.mu.Lock()
		sg, gr := sh.tab.Relearn(pairs[i:j])
		sh.mu.Unlock()
		segs += sg
		groups += gr
		i = j
	}
	return segs, groups
}

// Insert places one learned segment (see Table.Insert).
func (s *ShardedTable) Insert(ls Learned) {
	sh := s.shardFor(ls.Seg.Group())
	sh.mu.Lock()
	sh.tab.Insert(ls)
	sh.mu.Unlock()
}

// Compact compacts every shard, in parallel (paper §3.7; compaction is
// the natural point to spend all cores, it runs off the host path).
func (s *ShardedTable) Compact() { s.CompactChanged() }

// SizeBytes sums the shards' DRAM footprints. O(shards).
func (s *ShardedTable) SizeBytes() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.RLock()
		n += sh.tab.SizeBytes()
		sh.mu.RUnlock()
	}
	return n
}

// Stats aggregates the shards' incrementally maintained statistics.
func (s *ShardedTable) Stats() Stats {
	var out Stats
	for _, sh := range s.shards {
		sh.mu.RLock()
		st := sh.tab.Stats()
		sh.mu.RUnlock()
		out.Groups += st.Groups
		out.Segments += st.Segments
		out.Accurate += st.Accurate
		out.Approximate += st.Approximate
		out.SegmentBytes += st.SegmentBytes
		out.CRBBytes += st.CRBBytes
		out.TotalLevels += st.TotalLevels
		if st.MaxLevels > out.MaxLevels {
			out.MaxLevels = st.MaxLevels
		}
	}
	return out
}

// LevelCounts concatenates every group's level count (Figure 12).
func (s *ShardedTable) LevelCounts() []int {
	var out []int
	for _, sh := range s.shards {
		sh.mu.RLock()
		out = append(out, sh.tab.LevelCounts()...)
		sh.mu.RUnlock()
	}
	return out
}

// CRBSizes concatenates every group's CRB size (Figure 10).
func (s *ShardedTable) CRBSizes() []int {
	var out []int
	for _, sh := range s.shards {
		sh.mu.RLock()
		out = append(out, sh.tab.CRBSizes()...)
		sh.mu.RUnlock()
	}
	return out
}

// SegmentLengths concatenates every segment's mapping count (Figure 5).
func (s *ShardedTable) SegmentLengths() []int {
	var out []int
	for _, sh := range s.shards {
		sh.mu.RLock()
		out = append(out, sh.tab.SegmentLengths()...)
		sh.mu.RUnlock()
	}
	return out
}

// GroupGamma returns the effective learning bound of group id (see
// Table.GroupGamma).
func (s *ShardedTable) GroupGamma(id addr.GroupID) int {
	sh := s.shardFor(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.tab.GroupGamma(id)
}

// SetGroupGamma pins group id's effective learning bound (see
// Table.SetGroupGamma).
func (s *ShardedTable) SetGroupGamma(id addr.GroupID, gamma int) bool {
	sh := s.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.tab.SetGroupGamma(id, gamma)
}

// MaxGroupGamma returns the largest effective γ across resident groups.
func (s *ShardedTable) MaxGroupGamma() int {
	max := 0
	for _, sh := range s.shards {
		sh.mu.RLock()
		if m := sh.tab.MaxGroupGamma(); m > max {
			max = m
		}
		sh.mu.RUnlock()
	}
	return max
}

// NoteRead records translation feedback for lpa's group (see
// Table.NoteRead). It takes the owning shard's write lock, so it is safe
// against concurrent Lookups; the device serializes NoteRead calls
// themselves.
func (s *ShardedTable) NoteRead(lpa addr.LPA, predicted, actual addr.PPA, approx, hintResolved bool) {
	sh := s.shardFor(addr.Group(lpa))
	sh.mu.Lock()
	sh.tab.NoteRead(lpa, predicted, actual, approx, hintResolved)
	sh.mu.Unlock()
}

// NoteExactRead records a bitmap-trusted read for lpa's group (see
// Table.NoteExactRead).
func (s *ShardedTable) NoteExactRead(lpa addr.LPA) {
	sh := s.shardFor(addr.Group(lpa))
	sh.mu.Lock()
	sh.tab.NoteExactRead(lpa)
	sh.mu.Unlock()
}

// AuditExactBits verifies every shard's set predicted-exact bits against
// the ground-truth oracle (see Table.AuditExactBits).
func (s *ShardedTable) AuditExactBits(truth func(addr.LPA) (addr.PPA, bool)) error {
	for _, sh := range s.shards {
		sh.mu.RLock()
		err := sh.tab.AuditExactBits(truth)
		sh.mu.RUnlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// RetuneGamma runs one feedback round over every shard (see
// Table.RetuneGamma) and returns the changed group IDs in ascending
// order. Decisions are per group, so the outcome is bit-identical to a
// plain table fed the same feedback.
func (s *ShardedTable) RetuneGamma(cfg TuneConfig) []addr.GroupID {
	var out []addr.GroupID
	for _, sh := range s.shards {
		sh.mu.Lock()
		out = append(out, sh.tab.RetuneGamma(cfg)...)
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// GroupTunes returns every group's adaptive-γ state in ascending group
// order (see Table.GroupTunes).
func (s *ShardedTable) GroupTunes() []GroupTune {
	var out []GroupTune
	for _, sh := range s.shards {
		sh.mu.RLock()
		out = append(out, sh.tab.GroupTunes()...)
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Group < out[j].Group })
	return out
}

// mergedView builds a plain-Table view over the shards' groups (shared,
// not copied). Callers must hold every shard's read lock for the
// duration of any use of the returned table.
func (s *ShardedTable) mergedView() *Table {
	merged := NewTable(s.gamma)
	for _, sh := range s.shards {
		sh.tab.eachGroup(func(id addr.GroupID, g *group) {
			for len(merged.groups) <= int(id) {
				merged.groups = append(merged.groups, nil)
			}
			merged.groups[id] = g
			merged.nGroups++
		})
		// Carry the size counters so MarshalBinary's SizeBytes-based
		// buffer preallocation works on the merged view.
		merged.nSegments += sh.tab.nSegments
		merged.crbBytes += sh.tab.crbBytes
	}
	return merged
}

// rlockAll takes every shard's read lock and returns the paired unlock.
func (s *ShardedTable) rlockAll() func() {
	for _, sh := range s.shards {
		sh.mu.RLock()
	}
	return func() {
		for _, sh := range s.shards {
			sh.mu.RUnlock()
		}
	}
}

// MarshalBinary serializes the union of the shards in the plain Table
// snapshot format: a sharded and an unsharded table restore from each
// other's snapshots. All shard read locks are held for the duration.
func (s *ShardedTable) MarshalBinary() ([]byte, error) {
	defer s.rlockAll()()
	return s.mergedView().MarshalBinary()
}

// SnapshotWith serializes the union of the shards plus evicted-group
// images (see Table.SnapshotWith).
func (s *ShardedTable) SnapshotWith(images map[addr.GroupID][]byte) ([]byte, error) {
	defer s.rlockAll()()
	return s.mergedView().SnapshotWith(images)
}

// CompactChanged compacts every shard in parallel (like Compact) and
// returns the restructured group IDs in ascending order.
func (s *ShardedTable) CompactChanged() []addr.GroupID {
	var wg sync.WaitGroup
	changed := make([][]addr.GroupID, len(s.shards))
	for i, sh := range s.shards {
		wg.Add(1)
		go func(i int, sh *tableShard) {
			defer wg.Done()
			sh.mu.Lock()
			changed[i] = sh.tab.CompactChanged()
			sh.mu.Unlock()
		}(i, sh)
	}
	wg.Wait()
	var out []addr.GroupID
	for _, c := range changed {
		out = append(out, c...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// groupStore implementation: the sharded table is pageable through the
// same surface as the plain table, locking the owning shard per call.
// A Pager drives exactly one of these methods at a time (paging is
// serialized by the scheme), so cross-shard aggregate reads like
// residentBytes need no global lock.

func (s *ShardedTable) hasGroup(id addr.GroupID) bool {
	sh := s.shardFor(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.tab.HasGroup(id)
}

func (s *ShardedTable) groupFootprint(id addr.GroupID) int {
	sh := s.shardFor(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.tab.GroupFootprint(id)
}

// residentGroups returns all shards' groups in ascending order — the
// same enumeration a plain Table produces, so pager adoption order (and
// with it every later CLOCK decision) is shard-count independent.
func (s *ShardedTable) residentGroups() []addr.GroupID {
	var out []addr.GroupID
	for _, sh := range s.shards {
		sh.mu.RLock()
		out = append(out, sh.tab.ResidentGroups()...)
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (s *ShardedTable) marshalGroup(id addr.GroupID) ([]byte, error) {
	sh := s.shardFor(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.tab.MarshalGroup(id)
}

func (s *ShardedTable) installGroup(data []byte) (addr.GroupID, error) {
	if len(data) < 4 {
		return 0, fmt.Errorf("core: group record too short")
	}
	// The record leads with its group id; peek it to pick the shard.
	gid := addr.GroupID(binary.LittleEndian.Uint32(data))
	sh := s.shardFor(gid)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.tab.InstallGroup(data)
}

func (s *ShardedTable) dropGroup(id addr.GroupID) (int, bool) {
	sh := s.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.tab.DropGroup(id)
}

func (s *ShardedTable) residentBytes() int { return s.SizeBytes() }

var _ groupStore = (*ShardedTable)(nil)

// UnmarshalBinary replaces the shards' contents with a snapshot written
// by either table flavor. The shard count is preserved.
func (s *ShardedTable) UnmarshalBinary(data []byte) error {
	tmp := NewTable(0)
	if err := tmp.UnmarshalBinary(data); err != nil {
		return err
	}
	for _, sh := range s.shards {
		sh.mu.Lock()
	}
	defer func() {
		for _, sh := range s.shards {
			sh.mu.Unlock()
		}
	}()

	s.gamma = tmp.Gamma()
	for _, sh := range s.shards {
		sh.tab = NewTable(s.gamma)
		if s.bitmapOn {
			sh.tab.EnableExactBitmap()
		}
	}
	tmp.eachGroup(func(id addr.GroupID, g *group) {
		tab := s.shardFor(id).tab
		for len(tab.groups) <= int(id) {
			tab.groups = append(tab.groups, nil)
		}
		tab.groups[id] = g
	})
	for _, sh := range s.shards {
		sh.tab.recomputeStats()
	}
	return nil
}
