package core

import (
	"math/rand"
	"testing"
)

// checkCRBInvariants asserts the paper's three CRB properties (§3.4):
// per-segment contiguity (structural here), entries sorted by unique
// starting LPA, and no LPA stored twice.
func checkCRBInvariants(t *testing.T, c *crb) {
	t.Helper()
	seen := map[uint8]bool{}
	lastStart := -1
	for i := range c.entries {
		e := &c.entries[i]
		if len(e.lpas) == 0 {
			t.Fatal("empty CRB entry")
		}
		if int(e.start()) <= lastStart {
			t.Fatalf("entries not sorted by start: %d after %d", e.start(), lastStart)
		}
		lastStart = int(e.start())
		prev := -1
		for _, o := range e.lpas {
			if int(o) <= prev {
				t.Fatalf("entry %d LPAs not strictly ascending: %v", i, e.lpas)
			}
			prev = int(o)
			if seen[o] {
				t.Fatalf("LPA %d stored twice", o)
			}
			seen[o] = true
		}
	}
}

func TestCRBInsertAndLookup(t *testing.T) {
	var c crb
	c.insert([]uint8{100, 101, 103, 104, 106})
	c.insert([]uint8{120, 125})
	checkCRBInvariants(t, &c)
	for _, o := range []uint8{100, 103, 106} {
		if start, ok := c.lookup(o); !ok || start != 100 {
			t.Errorf("lookup(%d) = %d, %v", o, start, ok)
		}
	}
	if start, ok := c.lookup(125); !ok || start != 120 {
		t.Errorf("lookup(125) = %d, %v", start, ok)
	}
	if _, ok := c.lookup(102); ok {
		t.Error("lookup(102) found a non-member")
	}
}

func TestCRBDedupMovesOwnership(t *testing.T) {
	// Figure 9 (b): inserting a new segment owning 102/105/107/108 must
	// remove those from the older entry; a shared *start* LPA bumps the
	// old entry's start to its adjacent LPA.
	var c crb
	c.insert([]uint8{100, 101, 103, 104, 106})
	edits := c.insert([]uint8{100, 102, 105, 107})
	checkCRBInvariants(t, &c)
	if len(edits) != 1 {
		t.Fatalf("edits = %+v", edits)
	}
	e := edits[0]
	if e.Old != 100 || e.NewStart != 101 || e.Removed {
		t.Errorf("edit = %+v, want old 100 → new start 101", e)
	}
	if start, ok := c.lookup(100); !ok || start != 100 {
		t.Errorf("LPA 100 now owned by %d, %v; want the new segment", start, ok)
	}
	if start, ok := c.lookup(101); !ok || start != 101 {
		t.Errorf("LPA 101 owned by %d, %v; want the bumped old segment", start, ok)
	}
}

func TestCRBDedupRemovesEmptiedEntry(t *testing.T) {
	var c crb
	c.insert([]uint8{10, 12})
	edits := c.insert([]uint8{10, 12, 14})
	if len(edits) != 1 || !edits[0].Removed || edits[0].Old != 10 {
		t.Fatalf("edits = %+v", edits)
	}
	checkCRBInvariants(t, &c)
	if len(c.entries) != 1 {
		t.Fatalf("entries = %d", len(c.entries))
	}
}

func TestCRBInterleavedRanges(t *testing.T) {
	// Entry ranges may interleave even though the sets are disjoint; a
	// dedup that raises one start must keep entries sorted.
	var c crb
	c.insert([]uint8{100, 140})
	c.insert([]uint8{120, 130})
	checkCRBInvariants(t, &c)
	// Removing 100 from the first entry bumps its start past 120.
	edits := c.insert([]uint8{100, 110})
	checkCRBInvariants(t, &c)
	found := false
	for _, e := range edits {
		if e.Old == 100 && e.NewStart == 140 {
			found = true
		}
	}
	if !found {
		t.Errorf("edits = %+v, want 100→140", edits)
	}
	if start, ok := c.lookup(140); !ok || start != 140 {
		t.Errorf("lookup(140) = %d, %v", start, ok)
	}
	if start, ok := c.lookup(130); !ok || start != 120 {
		t.Errorf("lookup(130) = %d, %v", start, ok)
	}
}

func TestCRBRemoveLPAsAndSegment(t *testing.T) {
	var c crb
	c.insert([]uint8{50, 52, 54, 56})
	edit, ok := c.removeLPAs(50, func(o uint8) bool { return o == 50 || o == 52 })
	if !ok || edit.NewStart != 54 || edit.NewLast != 56 {
		t.Fatalf("edit = %+v, %v", edit, ok)
	}
	checkCRBInvariants(t, &c)
	edit, ok = c.removeLPAs(54, func(o uint8) bool { return true })
	if !ok || !edit.Removed {
		t.Fatalf("full removal edit = %+v, %v", edit, ok)
	}
	if c.sizeBytes() != 0 {
		t.Errorf("size = %d after removal", c.sizeBytes())
	}

	c.insert([]uint8{7, 9})
	c.removeSegment(7)
	if len(c.entries) != 0 {
		t.Error("removeSegment left the entry")
	}
	// Removing a missing segment is a no-op.
	c.removeSegment(99)
}

func TestCRBSizeBytes(t *testing.T) {
	var c crb
	if c.sizeBytes() != 0 {
		t.Fatal("empty CRB has nonzero size")
	}
	c.insert([]uint8{1, 2, 3})
	c.insert([]uint8{10})
	// 4 LPAs + 2 null separators (paper's flat layout accounting).
	if got := c.sizeBytes(); got != 6 {
		t.Errorf("size = %d, want 6", got)
	}
}

// TestCRBRandomizedAgainstModel drives the CRB with random segment
// registrations and checks ownership against a reference map.
func TestCRBRandomizedAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var c crb
	owner := map[uint8]uint8{} // lpa offset → owning segment start
	for round := 0; round < 500; round++ {
		// Random ascending offsets.
		n := 1 + rng.Intn(10)
		set := map[uint8]bool{}
		for len(set) < n {
			set[uint8(rng.Intn(256))] = true
		}
		lpas := make([]uint8, 0, n)
		for o := range set {
			lpas = append(lpas, o)
		}
		for i := 1; i < len(lpas); i++ {
			for j := i; j > 0 && lpas[j] < lpas[j-1]; j-- {
				lpas[j], lpas[j-1] = lpas[j-1], lpas[j]
			}
		}
		c.insert(lpas)
		checkCRBInvariants(t, &c)

		// Update the reference model: the new segment owns its LPAs;
		// surviving entries keep theirs, but any old segment whose LPAs
		// were all taken disappears.
		start := lpas[0]
		for _, o := range lpas {
			owner[o] = start
		}
		// Ownership of *other* LPAs may have moved only if their
		// segment's start changed; recompute from the CRB itself is
		// circular, so verify pointwise below instead.
		for o := 0; o < 256; o++ {
			gotStart, gotOK := c.lookup(uint8(o))
			_, wantOK := owner[uint8(o)]
			if gotOK != wantOK {
				t.Fatalf("round %d: lookup(%d) ok=%v, model=%v", round, o, gotOK, wantOK)
			}
			if gotOK {
				// The owning segment must contain o and start ≤ o.
				if gotStart > uint8(o) {
					t.Fatalf("round %d: owner start %d > lpa %d", round, gotStart, o)
				}
				// Model's owner start may have been bumped; accept any
				// entry that really contains o (uniqueness is already
				// checked by the invariants).
			}
		}
	}
}
