package core

import (
	"math/rand"
	"testing"

	"leaftl/internal/addr"
)

// costEq compares PageCosts including their flash-page identities (the
// struct holds slices, so == no longer applies).
func costEq(a, b PageCost) bool {
	if a.MetaReads != b.MetaReads || a.MetaWrites != b.MetaWrites ||
		len(a.ReadIDs) != len(b.ReadIDs) || len(a.WriteIDs) != len(b.WriteIDs) {
		return false
	}
	for i := range a.ReadIDs {
		if a.ReadIDs[i] != b.ReadIDs[i] {
			return false
		}
	}
	for i := range a.WriteIDs {
		if a.WriteIDs[i] != b.WriteIDs[i] {
			return false
		}
	}
	return true
}

// buildMixedTable commits a mix of sequential, strided and irregular
// batches so groups carry multiple levels, approximate segments and CRB
// entries — the state a round trip must preserve exactly.
func buildMixedTable(t *testing.T, gamma int) *Table {
	t.Helper()
	tab := NewTable(gamma)
	commit := func(lpas []addr.LPA, base addr.PPA) {
		pairs := make([]addr.Mapping, len(lpas))
		for i, l := range lpas {
			pairs[i] = addr.Mapping{LPA: l, PPA: base + addr.PPA(i)}
		}
		tab.Update(pairs)
	}
	for g := 0; g < 8; g++ {
		start := addr.LPA(g * 256)
		seq := make([]addr.LPA, 256)
		for i := range seq {
			seq[i] = start + addr.LPA(i)
		}
		commit(seq, addr.PPA(g*1000))
	}
	commit([]addr.LPA{10, 13, 17, 20, 29}, 50000)
	commit([]addr.LPA{300, 302, 305, 309}, 51000)
	commit([]addr.LPA{512, 514, 516, 518, 520}, 52000)
	commit([]addr.LPA{11, 12, 13, 14}, 53000)
	return tab
}

// lookupAll snapshots every translation of the table's covered space.
func lookupAll(tab *Table, pages int) map[addr.LPA]addr.PPA {
	out := make(map[addr.LPA]addr.PPA)
	for l := 0; l < pages; l++ {
		if ppa, _, ok := tab.Lookup(addr.LPA(l)); ok {
			out[addr.LPA(l)] = ppa
		}
	}
	return out
}

// TestGroupRoundTrip evicts every group through MarshalGroup/DropGroup
// and reinstalls it, asserting translations and incremental statistics
// come back bit-identical.
func TestGroupRoundTrip(t *testing.T) {
	tab := buildMixedTable(t, 4)
	want := lookupAll(tab, 8*256)
	wantStats := tab.Stats()

	images := make(map[addr.GroupID][]byte)
	for _, gid := range tab.ResidentGroups() {
		img, err := tab.MarshalGroup(gid)
		if err != nil {
			t.Fatalf("marshal group %d: %v", gid, err)
		}
		images[gid] = img
		foot := tab.GroupFootprint(gid)
		freed, ok := tab.DropGroup(gid)
		if !ok || freed != foot {
			t.Fatalf("drop group %d: freed %d, footprint %d, ok %v", gid, freed, foot, ok)
		}
	}
	if tab.SizeBytes() != 0 || tab.Stats().Groups != 0 {
		t.Fatalf("table not empty after dropping all groups: %+v", tab.Stats())
	}
	for gid, img := range images {
		got, err := tab.InstallGroup(img)
		if err != nil || got != gid {
			t.Fatalf("install group %d: got %d, %v", gid, got, err)
		}
	}
	if got := lookupAll(tab, 8*256); len(got) != len(want) {
		t.Fatalf("round trip lost mappings: %d != %d", len(got), len(want))
	} else {
		for l, ppa := range want {
			if got[l] != ppa {
				t.Fatalf("round trip changed Lookup(%d): %d != %d", l, got[l], ppa)
			}
		}
	}
	if got := tab.Stats(); got != wantStats {
		t.Fatalf("round trip changed stats:\n got %+v\nwant %+v", got, wantStats)
	}
	// The incremental counters must agree with a from-scratch rebuild.
	tab.recomputeStats()
	if got := tab.Stats(); got != wantStats {
		t.Fatalf("incremental stats diverge from recomputed:\n got %+v\nwant %+v", got, wantStats)
	}
}

// TestInstallGroupRejectsResident pins the aliasing guard: installing an
// image over live group state must fail, not silently fork the mapping.
func TestInstallGroupRejectsResident(t *testing.T) {
	tab := buildMixedTable(t, 4)
	img, err := tab.MarshalGroup(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tab.InstallGroup(img); err == nil {
		t.Fatal("install over a resident group succeeded")
	}
	if _, err := tab.InstallGroup(img[:len(img)-1]); err == nil {
		t.Fatal("truncated group record accepted")
	}
	if _, err := tab.InstallGroup(append(append([]byte(nil), img...), 0)); err == nil {
		t.Fatal("group record with trailing bytes accepted")
	}
}

// TestPagerBudgetAndClock drives a pager over a table and asserts the
// budget holds after every enforcement, faults demand-load evicted
// groups, and recently used groups survive the CLOCK sweep.
func TestPagerBudgetAndClock(t *testing.T) {
	tab := buildMixedTable(t, 4)
	p := NewPager(tab, 4096)
	p.SetBudget(tab.SizeBytes() / 3)
	if cost := p.Enforce(); cost.MetaWrites == 0 {
		t.Fatal("shrinking below a full table wrote nothing back")
	}
	if err := p.Check(); err != nil {
		t.Fatal(err)
	}
	if tab.SizeBytes() > p.Budget() {
		t.Fatalf("resident %d exceeds budget %d", tab.SizeBytes(), p.Budget())
	}
	if p.EvictedGroups() == 0 || p.TranslationPages() == 0 {
		t.Fatalf("no evictions under a binding budget: %d groups, %d pages",
			p.EvictedGroups(), p.TranslationPages())
	}

	// Fault an evicted group back in: charged as translation-page reads.
	var gid addr.GroupID
	found := false
	for g := addr.GroupID(0); g < 8; g++ {
		if !tab.HasGroup(g) {
			gid, found = g, true
			break
		}
	}
	if !found {
		t.Fatal("no evicted group to fault")
	}
	cost, known := p.EnsureRead(gid)
	if !known || cost.MetaReads == 0 {
		t.Fatalf("fault of group %d: known=%v cost=%+v", gid, known, cost)
	}
	if !tab.HasGroup(gid) {
		t.Fatal("fault did not load the group")
	}
	p.Enforce()
	if err := p.Check(); err != nil {
		t.Fatal(err)
	}

	// A hot group (touched every round) stays resident across many
	// enforcement rounds while cold groups rotate: the sweep always finds
	// an unreferenced cold victim before wrapping back to the
	// re-referenced hot group. The ring needs ≥ 3 slots for that
	// guarantee (hot + the just-loaded cold + at least one older cold),
	// so widen the budget to half the table first.
	p.SetBudget(p.FullSizeBytes() / 2)
	for g := addr.GroupID(0); g < 8; g++ {
		p.EnsureRead(g)
	}
	p.Enforce()
	hot := tab.ResidentGroups()[0]
	for i := 0; i < 40; i++ {
		if _, known := p.EnsureRead(hot); !known {
			t.Fatal("hot group vanished")
		}
		var cold addr.GroupID
		for g := addr.GroupID(0); g < 8; g++ {
			if g != hot && !tab.HasGroup(g) {
				cold = g
				break
			}
		}
		p.EnsureRead(cold)
		p.Enforce()
		if !tab.HasGroup(hot) {
			t.Fatalf("round %d: CLOCK evicted the hot group", i)
		}
		if err := p.Check(); err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
	}

	// Unknown groups stay unknown (and free).
	if cost, known := p.EnsureRead(9999); known || cost.MetaReads != 0 || cost.MetaWrites != 0 {
		t.Fatalf("unknown group: known=%v cost=%+v", known, cost)
	}
}

// TestPagerShardedMatchesPlain drives the same operation sequence
// through a pager over a plain table and one over a sharded table and
// asserts identical costs, evictions and translations — the
// sharded-invisible contract extended to paging.
func TestPagerShardedMatchesPlain(t *testing.T) {
	plain := NewTable(4)
	sharded := NewShardedTable(4, 8)
	pp := NewPager(plain, 4096)
	ps := NewPager(sharded, 4096)
	pp.SetBudget(600)
	ps.SetBudget(600)

	rng := rand.New(rand.NewSource(3))
	var ppa addr.PPA
	for op := 0; op < 4000; op++ {
		if rng.Intn(100) < 40 {
			start := addr.LPA(rng.Intn(16 * 256))
			n := 1 + rng.Intn(32)
			pairs := make([]addr.Mapping, 0, n)
			for i := 0; i < n; i++ {
				l := start + addr.LPA(i)
				if len(pairs) > 0 && pairs[len(pairs)-1].LPA >= l {
					continue
				}
				pairs = append(pairs, addr.Mapping{LPA: l, PPA: ppa})
				ppa++
			}
			for i := 0; i < len(pairs); {
				gid := addr.Group(pairs[i].LPA)
				j := i + 1
				for j < len(pairs) && addr.Group(pairs[j].LPA) == gid {
					j++
				}
				ca := pp.EnsureWrite(gid)
				cb := ps.EnsureWrite(gid)
				plain.Update(pairs[i:j])
				sharded.Update(pairs[i:j])
				ca.Add(pp.Enforce())
				cb.Add(ps.Enforce())
				if !costEq(ca, cb) {
					t.Fatalf("op %d: commit costs diverge: %+v vs %+v", op, ca, cb)
				}
				i = j
			}
		} else {
			l := addr.LPA(rng.Intn(16 * 256))
			ca, ka := pp.EnsureRead(addr.Group(l))
			cb, kb := ps.EnsureRead(addr.Group(l))
			if ka != kb || !costEq(ca, cb) {
				t.Fatalf("op %d: read costs diverge: %v/%+v vs %v/%+v", op, ka, ca, kb, cb)
			}
			var pa, pb addr.PPA
			var oka, okb bool
			if ka {
				pa, _, oka = plain.Lookup(l)
				pb, _, okb = sharded.Lookup(l)
			}
			ca = pp.Enforce()
			cb = ps.Enforce()
			if !costEq(ca, cb) || oka != okb || pa != pb {
				t.Fatalf("op %d: lookup diverges: %d/%v/%+v vs %d/%v/%+v", op, pa, oka, ca, pb, okb, cb)
			}
		}
		if pp.EvictedGroups() != ps.EvictedGroups() ||
			pp.TranslationPages() != ps.TranslationPages() ||
			plain.SizeBytes() != sharded.SizeBytes() {
			t.Fatalf("op %d: pager state diverges", op)
		}
	}
	if pp.Stats() != ps.Stats() {
		t.Fatalf("pager stats diverge: %+v vs %+v", pp.Stats(), ps.Stats())
	}
	if pp.Stats().Faults == 0 || pp.Stats().Evictions == 0 {
		t.Fatalf("workload exercised no paging: %+v", pp.Stats())
	}
}

// TestSnapshotWithImages pins that a full snapshot of a partially
// evicted table equals the snapshot of the never-evicted table.
func TestSnapshotWithImages(t *testing.T) {
	full := buildMixedTable(t, 4)
	want, err := full.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	paged := buildMixedTable(t, 4)
	p := NewPager(paged, 4096)
	p.SetBudget(paged.SizeBytes() / 4)
	p.Enforce()
	if p.EvictedGroups() == 0 {
		t.Fatal("budget did not evict")
	}
	got, err := paged.SnapshotWith(p.EvictedImages())
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatal("snapshot of paged table differs from fully resident snapshot")
	}
}
