package core

import (
	"math/rand"
	"testing"

	"leaftl/internal/addr"
)

// mixedBatch builds one 256-mapping batch mixing sequential, strided and
// irregular runs — the shape a sorted buffer flush produces.
func mixedBatch(rng *rand.Rand, base addr.LPA, ppa addr.PPA) []addr.Mapping {
	pairs := make([]addr.Mapping, 0, 256)
	lpa := base
	for len(pairs) < 256 {
		lpa += addr.LPA(1 + rng.Intn(3))
		pairs = append(pairs, addr.Mapping{LPA: lpa, PPA: ppa})
		ppa++
	}
	return pairs
}

// BenchmarkLearn256 measures learning one 256-mapping batch — the
// paper's Table 3 "Learning (256 LPAs)" row (9.8–10.8µs on an ARM A72).
func BenchmarkLearn256(b *testing.B) {
	for _, gamma := range []int{0, 1, 4} {
		b.Run(gammaName(gamma), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			batch := mixedBatch(rng, 0, 0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Learn(batch, gamma)
			}
		})
	}
}

// BenchmarkLookup measures one LPA translation — Table 3's "Lookup (per
// LPA)" row (40.2–67.5ns on an ARM A72).
func BenchmarkLookup(b *testing.B) {
	for _, gamma := range []int{0, 1, 4} {
		b.Run(gammaName(gamma), func(b *testing.B) {
			rng := rand.New(rand.NewSource(2))
			tb := NewTable(gamma)
			ppa := addr.PPA(0)
			for g := 0; g < 64; g++ {
				batch := mixedBatch(rng, addr.LPA(g*512), ppa)
				tb.Update(batch)
				ppa += 256
			}
			lpas := make([]addr.LPA, 4096)
			for i := range lpas {
				lpas[i] = addr.LPA(rng.Intn(64 * 512))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tb.Lookup(lpas[i%len(lpas)])
			}
		})
	}
}

// BenchmarkUpdate measures inserting a learned batch into a table with
// existing overlapping levels (the steady-state write path).
func BenchmarkUpdate(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	tb := NewTable(0)
	ppa := addr.PPA(0)
	batches := make([][]addr.Mapping, 256)
	for i := range batches {
		batches[i] = mixedBatch(rng, addr.LPA(rng.Intn(8192)), ppa)
		ppa += 256
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Update(batches[i%len(batches)])
	}
}

// BenchmarkCompact measures full-table compaction (paper §3.7 reports
// 4.1ms per 1M-write interval on their table sizes).
func BenchmarkCompact(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		tb := NewTable(0)
		ppa := addr.PPA(0)
		for j := 0; j < 128; j++ {
			tb.Update(mixedBatch(rng, addr.LPA(rng.Intn(4096)), ppa))
			ppa += 256
		}
		b.StartTimer()
		tb.Compact()
	}
}

// BenchmarkEncode measures segment serialization.
func BenchmarkEncode(b *testing.B) {
	ls := Learn(mappings(0, 1, 1000, 256), 0)
	seg := ls[0].Seg
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		raw := seg.Encode()
		_ = DecodeSegment(raw, seg.Group())
	}
}
