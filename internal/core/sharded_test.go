package core

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"leaftl/internal/addr"
)

// traceBatches generates a deterministic update trace mixing sequential,
// strided and irregular batches across many groups.
func traceBatches(seed int64, rounds, space int) [][]addr.Mapping {
	rng := rand.New(rand.NewSource(seed))
	ppa := addr.PPA(0)
	out := make([][]addr.Mapping, 0, rounds)
	for r := 0; r < rounds; r++ {
		start := addr.LPA(rng.Intn(space))
		var pairs []addr.Mapping
		switch r % 3 {
		case 0:
			n := 1 + rng.Intn(200)
			for i := 0; i < n; i++ {
				pairs = append(pairs, addr.Mapping{LPA: start + addr.LPA(i), PPA: ppa})
				ppa++
			}
		case 1:
			st := 2 + rng.Intn(4)
			for i := 0; i < 40; i++ {
				pairs = append(pairs, addr.Mapping{LPA: start + addr.LPA(i*st), PPA: ppa})
				ppa++
			}
		default:
			l := start
			for i := 0; i < 30; i++ {
				l += addr.LPA(1 + rng.Intn(4))
				pairs = append(pairs, addr.Mapping{LPA: l, PPA: ppa})
				ppa++
			}
		}
		out = append(out, pairs)
	}
	return out
}

// TestShardedMatchesTable is the sharding correctness property: after the
// same trace, every LPA must translate bit-identically on a plain Table
// and a ShardedTable, including the lookup diagnostics. Updates are
// applied from multiple goroutines (batches are handed out round-robin;
// each batch is internally ordered and batches in this trace never
// overwrite each other's LPAs with different PPAs in a way lookups could
// observe differently — to keep it fully deterministic we replay the same
// batch sequence serially into the plain table and in submission order
// into the sharded one).
func TestShardedMatchesTable(t *testing.T) {
	for _, gamma := range []int{0, 4} {
		t.Run(gammaName(gamma), func(t *testing.T) {
			const space = 16 * addr.GroupSize
			batches := traceBatches(77, 300, space)

			plain := NewTable(gamma)
			sharded := NewShardedTable(gamma, 8)
			for _, b := range batches {
				plain.Update(b)
				sharded.Update(b)
			}

			// Concurrent readers across the whole space while a writer
			// keeps appending fresh batches to *other* groups — the race
			// detector validates the locking; equality is checked after.
			var wg sync.WaitGroup
			extra := traceBatches(78, 50, space)
			wg.Add(1)
			go func() {
				defer wg.Done()
				for _, b := range extra {
					sharded.Update(b)
				}
			}()
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for lpa := w; lpa < space; lpa += 4 {
						sharded.Lookup(addr.LPA(lpa))
					}
				}(w)
			}
			wg.Wait()
			for _, b := range extra {
				plain.Update(b)
			}

			for lpa := 0; lpa < space; lpa++ {
				wp, wres, wok := plain.Lookup(addr.LPA(lpa))
				gp, gres, gok := sharded.Lookup(addr.LPA(lpa))
				if wp != gp || wres != gres || wok != gok {
					t.Fatalf("Lookup(%d): plain %d/%+v/%v, sharded %d/%+v/%v",
						lpa, wp, wres, wok, gp, gres, gok)
				}
			}

			// Aggregated statistics must agree too (sharding moves groups,
			// it must not change their contents).
			if ps, ss := plain.Stats(), sharded.Stats(); ps != ss {
				t.Errorf("stats diverge: plain %+v, sharded %+v", ps, ss)
			}

			// Compaction preserves the equivalence.
			plain.Compact()
			sharded.Compact()
			for lpa := 0; lpa < space; lpa++ {
				wp, _, wok := plain.Lookup(addr.LPA(lpa))
				gp, _, gok := sharded.Lookup(addr.LPA(lpa))
				if wp != gp || wok != gok {
					t.Fatalf("post-compact Lookup(%d): plain %d/%v, sharded %d/%v",
						lpa, wp, wok, gp, gok)
				}
			}
		})
	}
}

// TestShardedSnapshotRoundTrip checks that sharded and plain tables
// restore from each other's snapshots.
func TestShardedSnapshotRoundTrip(t *testing.T) {
	batches := traceBatches(5, 120, 8*addr.GroupSize)
	sharded := NewShardedTable(4, 4)
	for _, b := range batches {
		sharded.Update(b)
	}

	data, err := sharded.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	plain := NewTable(0)
	if err := plain.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	resharded := NewShardedTable(0, 3) // gamma and contents come from the snapshot
	if err := resharded.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if g := resharded.Gamma(); g != 4 {
		t.Errorf("restored gamma = %d, want 4", g)
	}

	for lpa := 0; lpa < 8*addr.GroupSize; lpa++ {
		wp, wres, wok := sharded.Lookup(addr.LPA(lpa))
		pp, pres, pok := plain.Lookup(addr.LPA(lpa))
		rp, rres, rok := resharded.Lookup(addr.LPA(lpa))
		if wp != pp || wres != pres || wok != pok {
			t.Fatalf("plain restore diverges at %d", lpa)
		}
		if wp != rp || wres != rres || wok != rok {
			t.Fatalf("sharded restore diverges at %d", lpa)
		}
	}
	if a, b := sharded.Stats(), resharded.Stats(); a != b {
		t.Errorf("stats differ after restore: %+v vs %+v", a, b)
	}
}

// TestIncrementalStatsMatchWalk cross-checks the incrementally maintained
// counters against a from-scratch recomputation after heavy churn.
func TestIncrementalStatsMatchWalk(t *testing.T) {
	for _, gamma := range []int{0, 4} {
		tb := NewTable(gamma)
		for _, b := range traceBatches(int64(31+gamma), 200, 12*addr.GroupSize) {
			tb.Update(b)
		}
		tb.Compact()
		for _, b := range traceBatches(int64(32+gamma), 50, 12*addr.GroupSize) {
			tb.Update(b)
		}
		got := tb.Stats()
		tb.recomputeStats()
		want := tb.Stats()
		if got != want {
			t.Errorf("gamma %d: incremental stats %+v, recomputed %+v", gamma, got, want)
		}
	}
}

// BenchmarkLookupSharded measures concurrent lookup throughput on a
// ShardedTable with GOMAXPROCS parallel streams (the FMMU/LFTL
// motivation: translation must scale with the host's queue depth).
func BenchmarkLookupSharded(b *testing.B) {
	for _, shards := range []int{1, 4, 8} {
		b.Run(shardName(shards), func(b *testing.B) {
			rng := rand.New(rand.NewSource(2))
			tb := NewShardedTable(0, shards)
			ppa := addr.PPA(0)
			for g := 0; g < 64; g++ {
				batch := mixedBatch(rng, addr.LPA(g*512), ppa)
				tb.Update(batch)
				ppa += 256
			}
			lpas := make([]addr.LPA, 4096)
			for i := range lpas {
				lpas[i] = addr.LPA(rng.Intn(64 * 512))
			}
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := rand.Intn(len(lpas))
				for pb.Next() {
					tb.Lookup(lpas[i%len(lpas)])
					i++
				}
			})
		})
	}
}

func shardName(n int) string {
	switch n {
	case 1:
		return "shards1"
	case 4:
		return "shards4"
	case 8:
		return "shards8"
	default:
		return "shardsN"
	}
}

// TestLookupZeroAllocs pins the acceptance criterion: the translation hot
// path performs zero allocations.
func TestLookupZeroAllocs(t *testing.T) {
	for _, gamma := range []int{0, 4} {
		rng := rand.New(rand.NewSource(2))
		tb := NewTable(gamma)
		ppa := addr.PPA(0)
		for g := 0; g < 16; g++ {
			tb.Update(mixedBatch(rng, addr.LPA(g*512), ppa))
			ppa += 256
		}
		lpa := addr.LPA(0)
		if avg := testing.AllocsPerRun(2000, func() {
			tb.Lookup(lpa)
			lpa = (lpa + 37) % (16 * 512)
		}); avg != 0 {
			t.Errorf("gamma %d: Lookup allocates %.2f objects per call, want 0", gamma, avg)
		}
	}
}

// TestUpdateSteadyStateAllocs pins the amortized-O(1) property of the
// mutation path: re-learning the same working set must settle to a small
// constant number of allocations per 256-mapping batch (CRB entry copies
// and occasional slice growth), nothing proportional to batch size or
// victim count like the old per-victim bitmap and LPA slices.
func TestUpdateSteadyStateAllocs(t *testing.T) {
	for _, gamma := range []int{0, 4} {
		rng := rand.New(rand.NewSource(3))
		tb := NewTable(gamma)
		batches := make([][]addr.Mapping, 64)
		ppa := addr.PPA(0)
		for i := range batches {
			batches[i] = mixedBatch(rng, addr.LPA(rng.Intn(4096)), ppa)
			ppa += 256
		}
		// Warm: grow every scratch buffer and level to steady state.
		for r := 0; r < 4; r++ {
			for _, b := range batches {
				tb.Update(b)
			}
		}
		i := 0
		avg := testing.AllocsPerRun(2*len(batches), func() {
			tb.Update(batches[i%len(batches)])
			i++
		})
		// The old mutation path allocated hundreds of objects per batch
		// (one [256]bool + slices per victim); allow a small constant for
		// retained-state growth (new levels, CRB entry copies).
		const maxAllocs = 32
		if avg > maxAllocs {
			t.Errorf("gamma %d: Update allocates %.1f objects per batch, want ≤ %d", gamma, avg, maxAllocs)
		}
	}
}

// TestShardedUpdateConcurrent drives disjoint LPA regions from parallel
// writers — the sharded write path under the race detector.
func TestShardedUpdateConcurrent(t *testing.T) {
	workers := runtime.GOMAXPROCS(0)
	if workers > 8 {
		workers = 8
	}
	tb := NewShardedTable(0, 8)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := addr.LPA(w * 4 * addr.GroupSize)
			ppa := addr.PPA(w * 1 << 20)
			for r := 0; r < 50; r++ {
				tb.Update(mappings(base+addr.LPA(r%4)*addr.GroupSize, 1, ppa, addr.GroupSize))
				ppa += addr.GroupSize
			}
		}(w)
	}
	wg.Wait()
	// Every region's final round must be visible and exact.
	for w := 0; w < workers; w++ {
		base := addr.LPA(w * 4 * addr.GroupSize)
		for off := 0; off < 4*addr.GroupSize; off += 97 {
			if _, _, ok := tb.Lookup(base + addr.LPA(off)); !ok {
				t.Fatalf("worker %d: LPA %d unmapped after concurrent updates", w, base+addr.LPA(off))
			}
		}
	}
}
