package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"

	"leaftl/internal/addr"
)

// Log-structured metadata persistence (the mapping-delta journal): instead
// of rewriting a group's full translation-page image on every dirty
// eviction, the pager appends a version-4 delta record carrying only the
// sections that changed since the group's last full image — the 47-byte
// tune block, individual segment levels, the CRB — packed back to back
// into translation pages. A group's durable state is its base image plus
// its delta chain; demand loads replay the chain onto the base, and full
// images are materialized only when a chain exceeds the length/byte
// thresholds below or when journal GC folds a victim block's live groups
// into fresh images at the log head.
//
// Translation blocks are a dedicated allocation stream: records never
// span blocks (the open block seals early when a record would not fit),
// and the journal reclaims its own blocks with a victim policy scored by
// live-record count rather than the data path's valid-page count. The
// open tail page is held in capacitor-backed controller SRAM, so appends
// are durable the moment they land and only *filled* pages are charged
// as flash programs.
//
// v4 delta record wire format (little-endian, framed with the shared
// versioned header from persist.go):
//
//	"LFTL" | version u8 (=4) | gid u32 | seq u16 | flags u8
//	flags&flagTune:   tune block + exact bitmap (47 bytes)
//	flags&flagLevels: newLevelCount u16 | nChanged u16,
//	                  then per changed level (ascending index):
//	                  idx u16 | nsegs u16 | 8-byte segments
//	flags&flagCRB:    byteLen u16 | CRB section (count u16, entries)
//	flags&flagFull:   a complete v3 group record (all other flags clear)
//
// seq is the record's position in the group's chain (the base image is
// seq 0); replay rejects gaps, so a truncated or reordered chain is
// detected rather than silently folded.

const (
	journalVersion = 4

	flagTune   = 1 << 0
	flagLevels = 1 << 1
	flagCRB    = 1 << 2
	flagFull   = 1 << 3
	flagsAll   = flagTune | flagLevels | flagCRB | flagFull

	// tuneRecordBytes is the fixed on-wire size of the per-group tune
	// block plus the predicted-exact bitmap (persist.go's v3 layout).
	tuneRecordBytes = 15 + exactBitmapBytes

	// journalMaxChain and journalMaxChainBytes bound a group's delta
	// chain before a writeback folds it into a fresh full image: chains
	// longer than this make demand loads touch too many pages, and
	// chains heavier than a flash page stop paying for themselves.
	journalMaxChain      = 8
	journalMaxChainBytes = 4096

	// journalPageIDBit tags journal translation-page identities so they
	// never collide with the pager's image PPAs when the device routes
	// meta operations to die lanes.
	journalPageIDBit = uint64(1) << 62
)

// JournalStats counts mapping-delta journal activity since creation.
type JournalStats struct {
	// Appends counts delta records appended (full-image writes are Bases).
	Appends uint64
	// Bases counts full group images appended (new groups, threshold
	// folds, GC folds, recovery seeds).
	Bases uint64
	// Folds counts delta chains collapsed into fresh full images.
	Folds uint64
	// GCRuns counts journal block reclaims.
	GCRuns uint64
	// Replays counts delta records replayed onto base images (demand
	// loads, folds, recovery).
	Replays uint64
	// Pages and Blocks are the current translation-footprint occupancy.
	Pages  int
	Blocks int
	// Groups is the number of journaled groups; MaxChain the longest
	// live delta chain.
	Groups   int
	MaxChain int
}

// recSections splits a v3 group record into the independently-diffable
// sections the delta encoder works over. Slices alias the source record.
type recSections struct {
	gid    addr.GroupID
	tune   []byte   // tune block + exact bitmap, tuneRecordBytes long
	levels [][]byte // per level: nsegs u16 | 8-byte segments
	crb    []byte   // entry count u16 | entries (len u8, offsets…)
}

// parseRecSections dissects a v3 group record (MarshalGroup's output)
// into sections without decoding segments.
func parseRecSections(img []byte) (recSections, error) {
	var s recSections
	r := reader{buf: img}
	gid, err := r.u32()
	if err != nil {
		return s, err
	}
	if gid >= 1<<24 {
		return s, fmt.Errorf("core: group id %d implausible", gid)
	}
	s.gid = addr.GroupID(gid)
	if s.tune, err = r.bytes(tuneRecordBytes); err != nil {
		return s, err
	}
	nLevels, err := r.u16()
	if err != nil {
		return s, err
	}
	for l := uint16(0); l < nLevels; l++ {
		start := r.off
		nSegs, err := r.u16()
		if err != nil {
			return s, err
		}
		if _, err := r.bytes(int(nSegs) * SegmentBytes); err != nil {
			return s, err
		}
		s.levels = append(s.levels, img[start:r.off])
	}
	crbStart := r.off
	if err := skipCRBSection(&r); err != nil {
		return s, err
	}
	s.crb = img[crbStart:r.off]
	if r.off != len(img) {
		return s, fmt.Errorf("core: %d trailing bytes in group record", len(img)-r.off)
	}
	return s, nil
}

// skipCRBSection walks a CRB section (count + entries), validating its
// framing without materializing entries.
func skipCRBSection(r *reader) error {
	nEntries, err := r.u16()
	if err != nil {
		return err
	}
	for e := uint16(0); e < nEntries; e++ {
		n, err := r.u8()
		if err != nil {
			return err
		}
		if n == 0 {
			return fmt.Errorf("core: empty CRB entry in record")
		}
		if _, err := r.bytes(int(n)); err != nil {
			return err
		}
	}
	return nil
}

// serialize reassembles the sections into the exact v3 group record they
// were parsed from (parse ∘ serialize is the identity the journal's
// consistency audit pins).
func (s recSections) serialize() []byte {
	n := 4 + len(s.tune) + 2 + len(s.crb)
	for _, l := range s.levels {
		n += len(l)
	}
	buf := make([]byte, 0, n)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(s.gid))
	buf = append(buf, s.tune...)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(s.levels)))
	for _, l := range s.levels {
		buf = append(buf, l...)
	}
	buf = append(buf, s.crb...)
	return buf
}

// encodeDelta builds the v4 delta record transforming base into cur, or
// nil when the two serialize identically. seq is the record's chain
// position.
func encodeDelta(base, cur recSections, seq uint16) []byte {
	var flags uint8
	if !bytes.Equal(base.tune, cur.tune) {
		flags |= flagTune
	}
	var changed []int
	for i, l := range cur.levels {
		if i >= len(base.levels) || !bytes.Equal(base.levels[i], l) {
			changed = append(changed, i)
		}
	}
	if len(changed) > 0 || len(cur.levels) != len(base.levels) {
		flags |= flagLevels
	}
	if !bytes.Equal(base.crb, cur.crb) {
		flags |= flagCRB
	}
	if flags == 0 {
		return nil
	}

	buf := appendRecordHeader(nil, journalVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(cur.gid))
	buf = binary.LittleEndian.AppendUint16(buf, seq)
	buf = append(buf, flags)
	if flags&flagTune != 0 {
		buf = append(buf, cur.tune...)
	}
	if flags&flagLevels != 0 {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(cur.levels)))
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(changed)))
		for _, i := range changed {
			buf = binary.LittleEndian.AppendUint16(buf, uint16(i))
			buf = append(buf, cur.levels[i]...)
		}
	}
	if flags&flagCRB != 0 {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(cur.crb)))
		buf = append(buf, cur.crb...)
	}
	return buf
}

// encodeFull frames a complete v3 group record as a v4 full-image
// journal record (chain position 0: a fresh base).
func encodeFull(img []byte, gid addr.GroupID) []byte {
	buf := appendRecordHeader(nil, journalVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(gid))
	buf = binary.LittleEndian.AppendUint16(buf, 0)
	buf = append(buf, flagFull)
	return append(buf, img...)
}

// decodeJournalRecord parses a v4 record's frame, returning its group,
// chain position, flags and section payload cursor.
func decodeJournalRecord(rec []byte) (gid addr.GroupID, seq uint16, flags uint8, r reader, err error) {
	r = reader{buf: rec}
	if _, err = readRecordHeader(&r, "journal record", journalVersion, journalVersion); err != nil {
		return 0, 0, 0, r, err
	}
	g, err := r.u32()
	if err != nil {
		return 0, 0, 0, r, err
	}
	if g >= 1<<24 {
		return 0, 0, 0, r, fmt.Errorf("core: journal record group id %d implausible", g)
	}
	if seq, err = r.u16(); err != nil {
		return 0, 0, 0, r, err
	}
	if flags, err = r.u8(); err != nil {
		return 0, 0, 0, r, err
	}
	if flags == 0 || flags&^uint8(flagsAll) != 0 {
		return 0, 0, 0, r, fmt.Errorf("core: journal record flags %#x invalid", flags)
	}
	if flags&flagFull != 0 && flags != flagFull {
		return 0, 0, 0, r, fmt.Errorf("core: full-image journal record carries section flags %#x", flags)
	}
	return addr.GroupID(g), seq, flags, r, nil
}

// applyDelta replays one v4 record onto cur, returning the successor
// sections. wantSeq is the expected chain position; a gap means the
// chain is corrupt. A full-image record replaces cur outright (and is
// only legal at wantSeq 0, i.e. as a base).
func applyDelta(cur recSections, rec []byte, wantSeq uint16) (recSections, error) {
	gid, seq, flags, r, err := decodeJournalRecord(rec)
	if err != nil {
		return recSections{}, err
	}
	if seq != wantSeq {
		return recSections{}, fmt.Errorf("core: journal record seq %d, want %d (chain gap)", seq, wantSeq)
	}
	if flags == flagFull {
		if wantSeq != 0 {
			return recSections{}, fmt.Errorf("core: full-image record mid-chain (seq %d)", seq)
		}
		out, err := parseRecSections(r.buf[r.off:])
		if err != nil {
			return recSections{}, err
		}
		if out.gid != gid {
			return recSections{}, fmt.Errorf("core: journal frame group %d wraps image of group %d", gid, out.gid)
		}
		return out, nil
	}
	if gid != cur.gid {
		return recSections{}, fmt.Errorf("core: journal record for group %d applied to group %d", gid, cur.gid)
	}

	out := recSections{gid: cur.gid, tune: cur.tune, crb: cur.crb}
	out.levels = append([][]byte(nil), cur.levels...)
	if flags&flagTune != 0 {
		if out.tune, err = r.bytes(tuneRecordBytes); err != nil {
			return recSections{}, err
		}
	}
	if flags&flagLevels != 0 {
		newCount, err := r.u16()
		if err != nil {
			return recSections{}, err
		}
		nChanged, err := r.u16()
		if err != nil {
			return recSections{}, err
		}
		if int(nChanged) > int(newCount) {
			return recSections{}, fmt.Errorf("core: journal record changes %d of %d levels", nChanged, newCount)
		}
		levels := make([][]byte, newCount)
		copy(levels, out.levels) // levels past newCount simply fall away
		last := -1
		for c := uint16(0); c < nChanged; c++ {
			idx, err := r.u16()
			if err != nil {
				return recSections{}, err
			}
			if int(idx) >= int(newCount) || int(idx) <= last {
				return recSections{}, fmt.Errorf("core: journal level index %d out of order or range", idx)
			}
			last = int(idx)
			start := r.off
			nSegs, err := r.u16()
			if err != nil {
				return recSections{}, err
			}
			if _, err := r.bytes(int(nSegs) * SegmentBytes); err != nil {
				return recSections{}, err
			}
			levels[idx] = r.buf[start:r.off]
		}
		for i, l := range levels {
			if l == nil {
				return recSections{}, fmt.Errorf("core: journal record grows to %d levels but level %d has no bytes", newCount, i)
			}
		}
		out.levels = levels
	}
	if flags&flagCRB != 0 {
		n, err := r.u16()
		if err != nil {
			return recSections{}, err
		}
		raw, err := r.bytes(int(n))
		if err != nil {
			return recSections{}, err
		}
		cr := reader{buf: raw}
		if err := skipCRBSection(&cr); err != nil {
			return recSections{}, err
		}
		if cr.off != len(raw) {
			return recSections{}, fmt.Errorf("core: %d trailing bytes in journal CRB section", len(raw)-cr.off)
		}
		out.crb = raw
	}
	if r.off != len(r.buf) {
		return recSections{}, fmt.Errorf("core: %d trailing bytes in journal record", len(r.buf)-r.off)
	}
	return out, nil
}

// jrec is one appended journal record and where it landed.
type jrec struct {
	bytes []byte
	block int    // block id, -1 when the block stream is unconfigured
	first uint64 // page-sequence span; last may be the open SRAM page
	last  uint64
}

// jgroup is one group's durable journal state: its base image record,
// delta chain, and the folded current image the two reproduce.
type jgroup struct {
	base   jrec
	chain  []jrec
	curImg []byte      // serialize(cur): the group's current v3 record
	cur    recSections // parsed curImg
}

// jblock is one translation block of the journal's allocation stream.
type jblock struct {
	id     int
	gids   map[addr.GroupID]int // live record count per group
	live   int                  // Σ gids
	used   int                  // bytes appended into this block
	sealed bool
}

// journal is the pager-owned mapping-delta log. Not safe for concurrent
// use; the owning Pager's callers serialize access.
type journal struct {
	pageSize int
	ppb      int // pages per translation block; 0 = single unbounded stream
	maxPages int // translation-footprint cap driving GC; 0 = uncapped

	groups map[addr.GroupID]*jgroup
	blocks []*jblock // allocation order; the last entry is the open head
	nextID int

	pageSeq  uint64 // id of the open tail page
	pageFill int    // bytes in the open tail page (SRAM, uncharged)

	stats JournalStats
	hook  func(string)
}

func newJournal(pageSize int) *journal {
	if pageSize < 1 {
		pageSize = 1
	}
	return &journal{
		pageSize: pageSize,
		groups:   make(map[addr.GroupID]*jgroup),
	}
}

// configure sets the translation-block geometry and footprint cap. It is
// called once device-side wiring knows the flash geometry and the
// over-provisioning share granted to metadata.
func (j *journal) configure(pagesPerBlock, maxPages int) {
	if pagesPerBlock > 0 {
		j.ppb = pagesPerBlock
	}
	if maxPages > 0 {
		j.maxPages = maxPages
	}
}

func (j *journal) hookFire(point string) {
	if j.hook != nil {
		j.hook(point)
	}
}

// pages returns the translation-footprint in flash pages: whole blocks
// when the block stream is configured (allocation is erase-unit
// granular), charged pages plus the open tail otherwise.
func (j *journal) pages() int {
	if j.ppb > 0 {
		return len(j.blocks) * j.ppb
	}
	n := int(j.pageSeq)
	if j.pageFill > 0 {
		n++
	}
	return n
}

// Stats snapshots the counters plus current occupancy.
func (j *journal) Stats() JournalStats {
	s := j.stats
	s.Pages = j.pages()
	s.Blocks = len(j.blocks)
	s.Groups = len(j.groups)
	for _, g := range j.groups {
		if len(g.chain) > s.MaxChain {
			s.MaxChain = len(g.chain)
		}
	}
	return s
}

func (j *journal) has(gid addr.GroupID) bool { return j.groups[gid] != nil }

// image returns a group's folded current image, nil when unjournaled.
func (j *journal) image(gid addr.GroupID) []byte {
	if g := j.groups[gid]; g != nil {
		return g.curImg
	}
	return nil
}

// openBlock returns the unsealed head block, allocating one if needed.
func (j *journal) openBlock() *jblock {
	if n := len(j.blocks); n > 0 && !j.blocks[n-1].sealed {
		return j.blocks[n-1]
	}
	b := &jblock{id: j.nextID, gids: make(map[addr.GroupID]int)}
	j.nextID++
	j.blocks = append(j.blocks, b)
	return b
}

// sealOpen closes the head block early: the partial SRAM tail page is
// flushed (and charged, when charging) since its block is now immutable.
func (j *journal) sealOpen(charge bool) PageCost {
	var cost PageCost
	n := len(j.blocks)
	if n == 0 || j.blocks[n-1].sealed {
		return cost
	}
	b := j.blocks[n-1]
	if j.pageFill > 0 {
		if charge {
			cost.MetaWrites++
			cost.WriteIDs = append(cost.WriteIDs, journalPageIDBit|j.pageSeq)
		}
		j.pageSeq++
		j.pageFill = 0
	}
	b.sealed = true
	return cost
}

// appendRec packs rec into the log, charging one MetaWrite per page
// filled (the open tail page is capacitor-backed SRAM and costs nothing
// until full). Records never span blocks: the open block seals early
// when rec would not fit. charge=false seeds recovery state whose pages
// already exist on flash.
func (j *journal) appendRec(gid addr.GroupID, rec []byte, charge bool) (jrec, PageCost) {
	var cost PageCost
	blockID := -1
	if j.ppb > 0 {
		capacity := j.ppb * j.pageSize
		if len(rec) > capacity {
			panic(fmt.Sprintf("core: %dB journal record exceeds a %dB translation block", len(rec), capacity))
		}
		b := j.openBlock()
		if b.used+len(rec) > capacity {
			cost.Add(j.sealOpen(charge))
			b = j.openBlock()
		}
		b.used += len(rec)
		b.gids[gid]++
		b.live++
		blockID = b.id
	}
	meta := jrec{bytes: rec, block: blockID, first: j.pageSeq}
	for remaining := len(rec); remaining > 0; {
		n := j.pageSize - j.pageFill
		if n > remaining {
			n = remaining
		}
		j.pageFill += n
		remaining -= n
		if j.pageFill == j.pageSize {
			if charge {
				cost.MetaWrites++
				cost.WriteIDs = append(cost.WriteIDs, journalPageIDBit|j.pageSeq)
			}
			j.pageSeq++
			j.pageFill = 0
		}
	}
	meta.last = j.pageSeq
	if j.pageFill == 0 && j.pageSeq > meta.first {
		meta.last = j.pageSeq - 1
	}
	if j.ppb > 0 {
		b := j.blocks[len(j.blocks)-1]
		if b.used == j.ppb*j.pageSize {
			b.sealed = true
		}
	}
	return meta, cost
}

// supersede drops the liveness of every record a fold replaced.
func (j *journal) supersede(gid addr.GroupID, g *jgroup) {
	drop := func(rec jrec) {
		if rec.block < 0 {
			return
		}
		for _, b := range j.blocks {
			if b.id == rec.block {
				b.gids[gid]--
				b.live--
				if b.gids[gid] == 0 {
					delete(b.gids, gid)
				}
				return
			}
		}
	}
	drop(g.base)
	for _, rec := range g.chain {
		drop(rec)
	}
}

// writeback logs a group's new state: a delta against its current image
// when one pays, a fresh full image otherwise (new group, oversized
// delta, or a chain past the fold thresholds). A byte-identical image
// costs nothing. Returns the flash charges, including any journal GC the
// append triggered.
func (j *journal) writeback(gid addr.GroupID, img []byte) PageCost {
	sec, err := parseRecSections(img)
	if err != nil {
		panic(fmt.Sprintf("core: group %d image does not parse: %v", gid, err))
	}
	if sec.gid != gid {
		panic(fmt.Sprintf("core: group %d image claims group %d", gid, sec.gid))
	}
	var cost PageCost
	g := j.groups[gid]
	if g != nil && bytes.Equal(g.curImg, img) {
		return cost // clean rewrite: the journal already holds this state
	}

	var delta []byte
	if g != nil {
		delta = encodeDelta(g.cur, sec, uint16(len(g.chain))+1)
	}
	chainBytes := 0
	if g != nil {
		for _, rec := range g.chain {
			chainBytes += len(rec.bytes)
		}
	}
	switch {
	case g == nil:
		rec, c := j.appendRec(gid, encodeFull(img, gid), true)
		cost.Add(c)
		j.groups[gid] = &jgroup{base: rec, curImg: img, cur: sec}
		j.stats.Bases++
	case delta == nil:
		// Sections serialize identically yet the images differ — cannot
		// happen while serialize inverts parse; fold defensively.
		fallthrough
	case len(g.chain) >= journalMaxChain,
		chainBytes+len(delta) > journalMaxChainBytes,
		len(delta) >= len(img):
		j.hookFire("journal.fold")
		cost.Add(j.fold(gid, g, img, sec))
	default:
		rec, c := j.appendRec(gid, delta, true)
		cost.Add(c)
		g.chain = append(g.chain, rec)
		g.curImg = img
		g.cur = sec
		j.stats.Appends++
	}
	cost.Add(j.maybeGC())
	return cost
}

// fold collapses a group's base+chain into a fresh full image at the log
// head and retires the old records.
func (j *journal) fold(gid addr.GroupID, g *jgroup, img []byte, sec recSections) PageCost {
	j.supersede(gid, g)
	j.stats.Replays += uint64(len(g.chain))
	rec, cost := j.appendRec(gid, encodeFull(img, gid), true)
	g.base = rec
	g.chain = nil
	g.curImg = img
	g.cur = sec
	j.stats.Folds++
	j.stats.Bases++
	return cost
}

// load returns a group's current image and the flash reads replaying it
// costs: every distinct charged page under the base and chain records
// (the open SRAM tail is free).
func (j *journal) load(gid addr.GroupID) ([]byte, PageCost) {
	g := j.groups[gid]
	if g == nil {
		panic(fmt.Sprintf("core: journal load of unknown group %d", gid))
	}
	var cost PageCost
	seen := make(map[uint64]bool)
	charge := func(rec jrec) {
		for p := rec.first; p <= rec.last; p++ {
			if p >= j.pageSeq {
				continue // open SRAM tail page: free to read
			}
			if !seen[p] {
				seen[p] = true
				cost.MetaReads++
				cost.ReadIDs = append(cost.ReadIDs, journalPageIDBit|p)
			}
		}
	}
	charge(g.base)
	for _, rec := range g.chain {
		charge(rec)
	}
	j.stats.Replays += uint64(len(g.chain))
	return g.curImg, cost
}

// seed registers a group restored during recovery: its image already
// lives on flash, so the append is uncharged.
func (j *journal) seed(gid addr.GroupID, img []byte) error {
	if j.groups[gid] != nil {
		return fmt.Errorf("core: group %d already journaled", gid)
	}
	sec, err := parseRecSections(img)
	if err != nil {
		return fmt.Errorf("core: group %d restore image: %w", gid, err)
	}
	if sec.gid != gid {
		return fmt.Errorf("core: group %d restore image claims group %d", gid, sec.gid)
	}
	rec, _ := j.appendRec(gid, encodeFull(img, gid), false)
	j.groups[gid] = &jgroup{base: rec, curImg: img, cur: sec}
	j.stats.Bases++
	return nil
}

// images returns every journaled group's folded current image, skipping
// groups the caller holds newer state for (dirty residents). Each
// returned group's chain counts as replayed — this is the recovery
// tail-replay path.
func (j *journal) images(skip func(addr.GroupID) bool) map[addr.GroupID][]byte {
	out := make(map[addr.GroupID][]byte, len(j.groups))
	for gid, g := range j.groups {
		if skip != nil && skip(gid) {
			continue
		}
		out[gid] = g.curImg
		j.stats.Replays += uint64(len(g.chain))
	}
	return out
}

// maybeGC reclaims journal blocks while the translation footprint
// exceeds the cap: the sealed block with the fewest live records (ties
// to the oldest) is the victim, its live groups fold to fresh images at
// the log head, and the block is erased. Folding appends, so the loop
// stops on any pass that fails to shrink the footprint.
func (j *journal) maybeGC() PageCost {
	var cost PageCost
	if j.ppb <= 0 || j.maxPages <= 0 {
		return cost
	}
	for len(j.blocks)*j.ppb > j.maxPages {
		victim := j.pickVictim()
		if victim == nil {
			return cost
		}
		j.hookFire("journal.gc")
		j.stats.GCRuns++
		before := len(j.blocks)

		gids := make([]addr.GroupID, 0, len(victim.gids))
		for gid := range victim.gids {
			gids = append(gids, gid)
		}
		sort.Slice(gids, func(a, b int) bool { return gids[a] < gids[b] })
		for _, gid := range gids {
			g := j.groups[gid]
			j.hookFire("journal.fold")
			cost.Add(j.fold(gid, g, g.curImg, g.cur))
		}
		if victim.live != 0 {
			panic(fmt.Sprintf("core: journal block %d still has %d live records after folding", victim.id, victim.live))
		}
		for i, b := range j.blocks {
			if b == victim {
				j.blocks = append(j.blocks[:i], j.blocks[i+1:]...)
				break
			}
		}
		if len(j.blocks) >= before {
			return cost // folds consumed as much as the erase freed
		}
	}
	return cost
}

// pickVictim scores sealed blocks by live-record count — the journal's
// analogue of the data path's valid-count policy — preferring the oldest
// on ties.
func (j *journal) pickVictim() *jblock {
	var victim *jblock
	for _, b := range j.blocks {
		if !b.sealed {
			continue
		}
		if victim == nil || b.live < victim.live || (b.live == victim.live && b.id < victim.id) {
			victim = b
		}
	}
	return victim
}

// check audits the journal: every group's base+chain must fold to its
// cached current image with contiguous sequence numbers, per-block
// liveness must match the records, and the footprint must respect the
// configured cap (one open block of slack: GC cannot run below
// block granularity).
func (j *journal) check() error {
	liveByBlock := make(map[int]map[addr.GroupID]int)
	for gid, g := range j.groups {
		folded, err := applyDelta(recSections{}, g.base.bytes, 0)
		if err != nil {
			return fmt.Errorf("journal: group %d base: %w", gid, err)
		}
		for i, rec := range g.chain {
			if folded, err = applyDelta(folded, rec.bytes, uint16(i)+1); err != nil {
				return fmt.Errorf("journal: group %d delta %d: %w", gid, i, err)
			}
		}
		if !bytes.Equal(folded.serialize(), g.curImg) {
			return fmt.Errorf("journal: group %d chain does not fold to its cached image", gid)
		}
		if !bytes.Equal(g.cur.serialize(), g.curImg) {
			return fmt.Errorf("journal: group %d cached sections diverge from cached image", gid)
		}
		note := func(rec jrec) {
			if rec.block < 0 {
				return
			}
			m := liveByBlock[rec.block]
			if m == nil {
				m = make(map[addr.GroupID]int)
				liveByBlock[rec.block] = m
			}
			m[gid]++
		}
		note(g.base)
		for _, rec := range g.chain {
			note(rec)
		}
	}
	for _, b := range j.blocks {
		want := liveByBlock[b.id]
		if len(want) != len(b.gids) {
			return fmt.Errorf("journal: block %d tracks %d live groups, records say %d", b.id, len(b.gids), len(want))
		}
		live := 0
		for gid, n := range want {
			if b.gids[gid] != n {
				return fmt.Errorf("journal: block %d tracks %d live records of group %d, records say %d", b.id, b.gids[gid], gid, n)
			}
			live += n
		}
		if b.live != live {
			return fmt.Errorf("journal: block %d live counter %d, records say %d", b.id, b.live, live)
		}
		delete(liveByBlock, b.id)
	}
	if len(liveByBlock) != 0 {
		return fmt.Errorf("journal: %d live records in erased blocks", len(liveByBlock))
	}
	if j.ppb > 0 && j.maxPages > 0 && j.pages() > j.maxPages+j.ppb {
		return fmt.Errorf("journal: %d translation pages exceed the %d-page cap", j.pages(), j.maxPages)
	}
	return nil
}
