// Package metrics provides the measurement plumbing for the evaluation:
// log-bucketed latency histograms with percentile queries (Figures 18 and
// 23), running means, and CDF extraction over integer samples (Figures 5,
// 10, 12).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Histogram is a logarithmically bucketed latency histogram. Buckets grow
// by ~7.2% per step (96 buckets per decade), bounding percentile error
// under 4% — plenty for distribution *shape* comparisons.
//
// Empty-histogram contract: with zero recorded samples every statistic —
// Mean, Percentile (for any p), Max, and all Summary fields — is exactly
// 0, never NaN or ±Inf, so zero-sample histograms (an idle queue, a
// scheme that never missed) serialize cleanly into the JSON reports
// (encoding/json rejects NaN outright).
type Histogram struct {
	counts []uint64
	total  uint64
	sum    float64
	min    float64
	max    float64
}

const (
	histBucketsPerDecade = 96
	histMinValue         = 1e-9 // 1ns
	histBuckets          = 96 * 12
)

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make([]uint64, histBuckets), min: math.Inf(1)}
}

func bucketOf(v float64) int {
	if v < histMinValue {
		return 0
	}
	b := int(math.Log10(v/histMinValue) * histBucketsPerDecade)
	if b < 0 {
		b = 0
	}
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

func bucketValue(b int) float64 {
	return histMinValue * math.Pow(10, float64(b)/histBucketsPerDecade)
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	h.ObserveValue(d.Seconds())
}

// ObserveValue records one sample in seconds. NaN samples are dropped —
// recording one would poison the mean for every later reader.
func (h *Histogram) ObserveValue(v float64) {
	if math.IsNaN(v) {
		return
	}
	h.counts[bucketOf(v)]++
	h.total++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return h.total }

// Mean returns the sample mean in seconds (0 with no samples).
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Percentile returns the p-th percentile (p in [0,100]) in seconds.
// An empty histogram reports 0 for every p, and a NaN p reports 0 —
// both so malformed inputs cannot leak NaN into JSON emitters.
func (h *Histogram) Percentile(p float64) float64 {
	if h.total == 0 || math.IsNaN(p) {
		return 0
	}
	if p <= 0 {
		return h.min
	}
	if p >= 100 {
		return h.max
	}
	target := uint64(math.Ceil(float64(h.total) * p / 100))
	var cum uint64
	for b, c := range h.counts {
		cum += c
		if cum >= target {
			v := bucketValue(b)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// Max returns the largest sample in seconds (0 with no samples).
func (h *Histogram) Max() float64 {
	if h.total == 0 {
		return 0
	}
	return h.max
}

// Summary is the tail-latency digest of a histogram: the percentiles
// the paper's latency figures (18, 23) and the open-loop replay report.
// A zero-sample histogram digests to the zero Summary (see the
// empty-histogram contract on Histogram).
type Summary struct {
	Count                     uint64
	Mean                      time.Duration
	P50, P95, P99, P999, Peak time.Duration
}

// Summary digests the histogram into p50/p95/p99/p999 plus mean and
// peak latency.
func (h *Histogram) Summary() Summary {
	return Summary{
		Count: h.total,
		Mean:  h.MeanDuration(),
		P50:   h.PercentileDuration(50),
		P95:   h.PercentileDuration(95),
		P99:   h.PercentileDuration(99),
		P999:  h.PercentileDuration(99.9),
		Peak:  time.Duration(h.Max() * float64(time.Second)),
	}
}

// String renders the summary on one line ("n=... mean=... p50=... ...").
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v p999=%v max=%v",
		s.Count, s.Mean.Round(time.Microsecond), s.P50.Round(time.Microsecond),
		s.P95.Round(time.Microsecond), s.P99.Round(time.Microsecond),
		s.P999.Round(time.Microsecond), s.Peak.Round(time.Microsecond))
}

// MeanDuration returns Mean as a time.Duration.
func (h *Histogram) MeanDuration() time.Duration {
	return time.Duration(h.Mean() * float64(time.Second))
}

// PercentileDuration returns Percentile as a time.Duration.
func (h *Histogram) PercentileDuration(p float64) time.Duration {
	return time.Duration(h.Percentile(p) * float64(time.Second))
}

// Merge adds o's samples to h.
func (h *Histogram) Merge(o *Histogram) {
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.total += o.total
	h.sum += o.sum
	if o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
}

// IntDist summarizes an integer sample set (CRB sizes, level counts,
// segment lengths).
type IntDist struct {
	sorted []int
	sum    int64
}

// NewIntDist builds a distribution over the samples.
func NewIntDist(samples []int) *IntDist {
	s := append([]int(nil), samples...)
	sort.Ints(s)
	var sum int64
	for _, v := range s {
		sum += int64(v)
	}
	return &IntDist{sorted: s, sum: sum}
}

// Count returns the number of samples.
func (d *IntDist) Count() int { return len(d.sorted) }

// Mean returns the sample mean.
func (d *IntDist) Mean() float64 {
	if len(d.sorted) == 0 {
		return 0
	}
	return float64(d.sum) / float64(len(d.sorted))
}

// Percentile returns the p-th percentile (nearest-rank).
func (d *IntDist) Percentile(p float64) int {
	if len(d.sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return d.sorted[0]
	}
	idx := int(math.Ceil(float64(len(d.sorted))*p/100)) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(d.sorted) {
		idx = len(d.sorted) - 1
	}
	return d.sorted[idx]
}

// Max returns the largest sample.
func (d *IntDist) Max() int {
	if len(d.sorted) == 0 {
		return 0
	}
	return d.sorted[len(d.sorted)-1]
}

// CDFAt returns the fraction of samples ≤ v.
func (d *IntDist) CDFAt(v int) float64 {
	if len(d.sorted) == 0 {
		return 0
	}
	i := sort.SearchInts(d.sorted, v+1)
	return float64(i) / float64(len(d.sorted))
}

// FormatBytes renders a byte count in human units (KiB/MiB/GiB).
func FormatBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}
