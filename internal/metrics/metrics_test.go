package metrics

import (
	"encoding/json"
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Percentile(50) != 0 {
		t.Error("empty histogram not zero")
	}
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	if h.Count() != 100 {
		t.Errorf("count = %d", h.Count())
	}
	mean := h.MeanDuration()
	if mean < 50*time.Microsecond || mean > 51*time.Microsecond {
		t.Errorf("mean = %v, want ~50.5µs", mean)
	}
}

func TestHistogramPercentileAccuracy(t *testing.T) {
	h := NewHistogram()
	rng := rand.New(rand.NewSource(1))
	var samples []float64
	for i := 0; i < 100000; i++ {
		v := rng.ExpFloat64() * 100e-6 // exponential latencies ~100µs
		samples = append(samples, v)
		h.ObserveValue(v)
	}
	sort.Float64s(samples)
	for _, p := range []float64{50, 90, 99, 99.9} {
		exact := samples[int(float64(len(samples))*p/100)-1]
		got := h.Percentile(p)
		if got < exact*0.9 || got > exact*1.1 {
			t.Errorf("p%v = %g, exact %g (>10%% off)", p, got, exact)
		}
	}
	if h.Percentile(0) > h.Percentile(100) {
		t.Error("p0 > p100")
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	a.Observe(time.Microsecond)
	b.Observe(time.Millisecond)
	a.Merge(b)
	if a.Count() != 2 {
		t.Errorf("merged count = %d", a.Count())
	}
	if a.Percentile(100) < (time.Millisecond).Seconds() {
		t.Error("merge lost the max")
	}
}

func TestHistogramExtremes(t *testing.T) {
	h := NewHistogram()
	h.ObserveValue(0)   // below first bucket
	h.ObserveValue(1e6) // way above last bucket
	if h.Count() != 2 {
		t.Errorf("count = %d", h.Count())
	}
	if h.Percentile(100) != 1e6 {
		t.Errorf("max = %v", h.Percentile(100))
	}
}

func TestIntDist(t *testing.T) {
	d := NewIntDist([]int{5, 1, 3, 2, 4})
	if d.Count() != 5 || d.Mean() != 3 || d.Max() != 5 {
		t.Errorf("count=%d mean=%v max=%d", d.Count(), d.Mean(), d.Max())
	}
	if d.Percentile(50) != 3 {
		t.Errorf("p50 = %d", d.Percentile(50))
	}
	if d.Percentile(99) != 5 {
		t.Errorf("p99 = %d", d.Percentile(99))
	}
	if d.Percentile(0) != 1 {
		t.Errorf("p0 = %d", d.Percentile(0))
	}
	if got := d.CDFAt(3); got != 0.6 {
		t.Errorf("CDF(3) = %v", got)
	}
	if got := d.CDFAt(0); got != 0 {
		t.Errorf("CDF(0) = %v", got)
	}
	if got := d.CDFAt(5); got != 1 {
		t.Errorf("CDF(5) = %v", got)
	}
}

func TestIntDistEmpty(t *testing.T) {
	d := NewIntDist(nil)
	if d.Count() != 0 || d.Mean() != 0 || d.Percentile(99) != 0 || d.Max() != 0 || d.CDFAt(5) != 0 {
		t.Error("empty distribution not zeroed")
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[int64]string{
		512:     "512 B",
		2048:    "2.00 KiB",
		3 << 20: "3.00 MiB",
		5 << 30: "5.00 GiB",
	}
	for in, want := range cases {
		if got := FormatBytes(in); got != want {
			t.Errorf("FormatBytes(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestHistogramSummary(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	s := h.Summary()
	if s.Count != 1000 {
		t.Fatalf("count %d", s.Count)
	}
	// Log buckets are ~7.2% wide: accept 10% error at each percentile.
	within := func(got time.Duration, wantUS float64) bool {
		g := float64(got.Nanoseconds()) / 1e3
		return g > wantUS*0.9 && g < wantUS*1.1
	}
	if !within(s.P50, 500) || !within(s.P95, 950) || !within(s.P99, 990) || !within(s.P999, 999) {
		t.Errorf("summary %v", s)
	}
	if s.Peak != time.Millisecond {
		t.Errorf("peak %v, want 1ms", s.Peak)
	}
	for _, want := range []string{"n=1000", "p50=", "p999="} {
		if !strings.Contains(s.String(), want) {
			t.Errorf("String() %q missing %q", s.String(), want)
		}
	}
}

func TestSummaryEmpty(t *testing.T) {
	s := NewHistogram().Summary()
	if s.Count != 0 || s.Mean != 0 || s.P999 != 0 || s.Peak != 0 {
		t.Errorf("empty summary %+v", s)
	}
}

// TestEmptyHistogramJSONSafe pins the empty-histogram contract: every
// statistic of a zero-sample histogram is exactly 0 (not NaN/Inf), so a
// report built from one marshals cleanly — encoding/json rejects NaN.
func TestEmptyHistogramJSONSafe(t *testing.T) {
	h := NewHistogram()
	stats := map[string]float64{
		"mean": h.Mean(),
		"p0":   h.Percentile(0),
		"p50":  h.Percentile(50),
		"p100": h.Percentile(100),
		"max":  h.Max(),
	}
	for name, v := range stats {
		if v != 0 {
			t.Errorf("%s = %v on empty histogram, want 0", name, v)
		}
	}
	if _, err := json.Marshal(stats); err != nil {
		t.Fatalf("empty-histogram stats do not marshal: %v", err)
	}
	// Merging two empty histograms must not manufacture values either.
	h.Merge(NewHistogram())
	if h.Mean() != 0 || h.Percentile(99) != 0 {
		t.Error("merge of empty histograms produced nonzero stats")
	}
}

// TestHistogramRejectsNaN: NaN samples are dropped and NaN percentile
// queries report 0, closing the remaining NaN inlets.
func TestHistogramRejectsNaN(t *testing.T) {
	h := NewHistogram()
	h.ObserveValue(math.NaN())
	if h.Count() != 0 {
		t.Errorf("NaN sample recorded (count %d)", h.Count())
	}
	h.ObserveValue(1e-3)
	if got := h.Percentile(math.NaN()); got != 0 {
		t.Errorf("Percentile(NaN) = %v, want 0", got)
	}
	if m := h.Mean(); math.IsNaN(m) {
		t.Error("mean went NaN")
	}
}
