package ftl

// ByteLRU is a least-recently-used cache whose capacity is a byte budget
// rather than an entry count, because cached items have different sizes
// (a DFTL mapping entry is 8 bytes, a compressed SFTL region is
// runs×8 bytes, a cached data page is the flash page size).
//
// Entries carry a dirty flag; evicting a dirty entry is reported to the
// caller so it can charge a writeback.
type ByteLRU[K comparable, V any] struct {
	budget int
	used   int
	items  map[K]*lruNode[K, V]
	head   *lruNode[K, V] // most recently used
	tail   *lruNode[K, V] // least recently used
}

type lruNode[K comparable, V any] struct {
	key        K
	value      V
	size       int
	dirty      bool
	prev, next *lruNode[K, V]
}

// Evicted describes one entry pushed out by an insert or budget change.
type Evicted[K comparable, V any] struct {
	Key   K
	Value V
	Dirty bool
}

// NewByteLRU returns an empty cache with the given byte budget.
func NewByteLRU[K comparable, V any](budget int) *ByteLRU[K, V] {
	if budget < 0 {
		budget = 0
	}
	return &ByteLRU[K, V]{budget: budget, items: make(map[K]*lruNode[K, V])}
}

// Budget returns the configured byte budget.
func (c *ByteLRU[K, V]) Budget() int { return c.budget }

// Used returns the bytes currently occupied.
func (c *ByteLRU[K, V]) Used() int { return c.used }

// Len returns the number of cached entries.
func (c *ByteLRU[K, V]) Len() int { return len(c.items) }

// Get returns the value for key, marking it most recently used.
func (c *ByteLRU[K, V]) Get(key K) (V, bool) {
	n, ok := c.items[key]
	if !ok {
		var zero V
		return zero, false
	}
	c.moveToFront(n)
	return n.value, true
}

// Peek returns the value without touching recency.
func (c *ByteLRU[K, V]) Peek(key K) (V, bool) {
	n, ok := c.items[key]
	if !ok {
		var zero V
		return zero, false
	}
	return n.value, true
}

// Contains reports presence without touching recency.
func (c *ByteLRU[K, V]) Contains(key K) bool {
	_, ok := c.items[key]
	return ok
}

// Put inserts or updates key with the given size and dirtiness, returning
// any entries evicted to fit the budget. An item larger than the whole
// budget is not cached (and is returned as if immediately evicted when
// dirty, so writeback accounting still happens).
func (c *ByteLRU[K, V]) Put(key K, value V, size int, dirty bool) []Evicted[K, V] {
	var out []Evicted[K, V]
	if n, ok := c.items[key]; ok {
		c.used += size - n.size
		n.value, n.size = value, size
		n.dirty = n.dirty || dirty
		c.moveToFront(n)
		return c.shrink(out)
	}
	if size > c.budget {
		if dirty {
			out = append(out, Evicted[K, V]{Key: key, Value: value, Dirty: true})
		}
		return out
	}
	n := &lruNode[K, V]{key: key, value: value, size: size, dirty: dirty}
	c.items[key] = n
	c.pushFront(n)
	c.used += size
	return c.shrink(out)
}

// MarkDirty flags an existing entry dirty; it reports whether the key was
// present.
func (c *ByteLRU[K, V]) MarkDirty(key K) bool {
	n, ok := c.items[key]
	if ok {
		n.dirty = true
	}
	return ok
}

// CleanMatching clears the dirty flag of every entry for which match
// returns true, returning how many were cleaned. DFTL uses this for its
// batched translation-page writeback: one flash write cleans every
// cached entry of that translation page.
func (c *ByteLRU[K, V]) CleanMatching(match func(K) bool) int {
	n := 0
	for k, node := range c.items {
		if node.dirty && match(k) {
			node.dirty = false
			n++
		}
	}
	return n
}

// Remove drops key, reporting the removed entry if present.
func (c *ByteLRU[K, V]) Remove(key K) (Evicted[K, V], bool) {
	n, ok := c.items[key]
	if !ok {
		return Evicted[K, V]{}, false
	}
	c.unlink(n)
	delete(c.items, key)
	c.used -= n.size
	return Evicted[K, V]{Key: n.key, Value: n.value, Dirty: n.dirty}, true
}

// Resize changes the byte budget, evicting LRU entries as needed.
func (c *ByteLRU[K, V]) Resize(budget int) []Evicted[K, V] {
	if budget < 0 {
		budget = 0
	}
	c.budget = budget
	return c.shrink(nil)
}

// shrink evicts from the tail until used ≤ budget.
func (c *ByteLRU[K, V]) shrink(out []Evicted[K, V]) []Evicted[K, V] {
	for c.used > c.budget && c.tail != nil {
		n := c.tail
		c.unlink(n)
		delete(c.items, n.key)
		c.used -= n.size
		out = append(out, Evicted[K, V]{Key: n.key, Value: n.value, Dirty: n.dirty})
	}
	return out
}

func (c *ByteLRU[K, V]) pushFront(n *lruNode[K, V]) {
	n.prev = nil
	n.next = c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

func (c *ByteLRU[K, V]) unlink(n *lruNode[K, V]) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (c *ByteLRU[K, V]) moveToFront(n *lruNode[K, V]) {
	if c.head == n {
		return
	}
	c.unlink(n)
	c.pushFront(n)
}
