// Package ftl defines the interface every address-translation scheme
// implements (LeaFTL, and the DFTL and SFTL baselines of paper §4.1),
// plus the byte-budgeted LRU cache the demand-paged schemes and the
// device's data cache share.
//
// A scheme owns only the mapping *index*. The device (package ssd) owns
// flash, the data buffer, the data cache, GC and wear leveling, and calls
// the scheme to translate reads and to commit the mappings created by
// flushes and GC moves. Costs are returned as counts of translation-
// metadata flash operations so the device can charge them on the flash
// timelines and in the write-amplification accounting (Figure 25).
package ftl

import "leaftl/internal/addr"

// Cost counts flash operations a translation-layer action induced:
// translation-page reads on mapping-cache misses and translation-page
// writes for dirty evictions or periodic table persistence.
type Cost struct {
	MetaReads  int
	MetaWrites int

	// ReadIDs/WriteIDs name the translation page behind each counted
	// operation, in charge order: a scheme-stable identity (virtual
	// translation PPA, region or group number) the device maps onto the
	// die actually holding the page. Producers that cannot name a page
	// may leave these shorter than the counts; the device falls back to
	// a device-wide sequence for the remainder.
	ReadIDs  []uint64
	WriteIDs []uint64
}

// Add accumulates o into c.
func (c *Cost) Add(o Cost) {
	c.MetaReads += o.MetaReads
	c.MetaWrites += o.MetaWrites
	c.ReadIDs = append(c.ReadIDs, o.ReadIDs...)
	c.WriteIDs = append(c.WriteIDs, o.WriteIDs...)
}

// AddRead charges one translation-page read of page id.
func (c *Cost) AddRead(id uint64) {
	c.MetaReads++
	c.ReadIDs = append(c.ReadIDs, id)
}

// AddWrite charges one translation-page write of page id.
func (c *Cost) AddWrite(id uint64) {
	c.MetaWrites++
	c.WriteIDs = append(c.WriteIDs, id)
}

// Translation is the result of one LPA lookup.
type Translation struct {
	PPA  addr.PPA
	Cost Cost
	// Levels is how many mapping-table levels the lookup visited
	// (LeaFTL only; 1 for flat schemes). Feeds Figure 23.
	Levels int
	// Approx marks a prediction that may be off by up to ±gamma and must
	// be verified against the OOB reverse mapping (LeaFTL only).
	Approx bool
	// Hint is the group's armed misprediction-direction hint: when
	// non-zero, the translating group's recent approximate lookups have
	// been missing by exactly this delta, and the device should aim its
	// first flash read at PPA+Hint — resolving a repeating miss in one
	// read instead of two (adaptive-γ LeaFTL only; always 0 otherwise).
	Hint int
	// Exact marks an approximate translation whose PPA the scheme's
	// predicted-exact bitmap proves to land on the live page: the device
	// issues one flash read with no OOB verification probe budget, and a
	// wrong PPA here is an invariant violation, not a misprediction.
	// Exact translations never carry a Hint (bitmap-enabled LeaFTL only;
	// always false otherwise).
	Exact bool
}

// Scheme is an address-translation scheme under test.
type Scheme interface {
	// Name identifies the scheme in reports ("DFTL", "SFTL", "LeaFTL").
	Name() string

	// Translate maps an LPA to its (possibly approximate) PPA. ok is
	// false when the scheme holds no mapping for lpa.
	Translate(lpa addr.LPA) (Translation, bool)

	// Commit installs freshly written mappings. pairs are sorted by LPA
	// with unique LPAs and monotonically increasing PPAs — the flush
	// path guarantees this ordering (paper §3.3).
	Commit(pairs []addr.Mapping) Cost

	// SetBudget caps the scheme's DRAM usage for cached mapping state.
	// Every scheme honors it: DFTL/SFTL size their cached-mapping tables
	// to it, and LeaFTL demand-pages segment groups to flash translation
	// pages once the learned table outgrows it (a budget ≤ 0 leaves the
	// learned table unconstrained).
	SetBudget(bytes int)

	// MemoryBytes reports current DRAM consumption of mapping state.
	MemoryBytes() int

	// FullSizeBytes reports the size of the complete mapping structure,
	// resident or not — the quantity Figures 15 and 19 compare.
	FullSizeBytes() int

	// Maintain runs periodic work (LeaFTL: segment compaction and
	// mapping-table persistence). The device calls it after every flush
	// with the cumulative count of host page writes.
	Maintain(hostPageWrites uint64) Cost
}

// Gamma is implemented by schemes with a configurable error bound.
type Gamma interface {
	Gamma() int
}

// GroupPaged is implemented by schemes that page 256-LPA segment groups
// between DRAM and flash translation pages under a Global Mapping
// Directory (paper §3.8). The device uses it to account translation
// blocks against over-provisioned capacity, audit GMD consistency in
// CheckInvariants, and restore persisted groups during crash recovery
// instead of re-learning the whole mapping.
type GroupPaged interface {
	Scheme

	// TranslationPages reports the flash pages currently occupied by
	// persisted group images.
	TranslationPages() int

	// PersistedGroups returns the serialized group images that are
	// current on flash (what survives a crash); dirty resident groups
	// are absent. The images are shared, not copied — callers must not
	// mutate them.
	PersistedGroups() map[addr.GroupID][]byte

	// RestoreGroups seeds a fresh scheme's directory with persisted
	// images; the groups demand-load on first access.
	RestoreGroups(images map[addr.GroupID][]byte) error

	// CheckMapping audits the scheme's directory/cache bookkeeping and
	// returns the first inconsistency (the mapping-side leg of the
	// device's CheckInvariants).
	CheckMapping() error
}

// Journaled is implemented by schemes whose pager persists metadata
// through a mapping-delta journal: dirty evictions append delta records
// into dedicated translation blocks instead of rewriting full group
// images, demand loads replay base image plus chain, and the journal
// reclaims its own blocks by folding chains into fresh images. The
// device uses it to size the journal from flash geometry and
// over-provisioning and to surface journal counters in benchmarks.
type Journaled interface {
	GroupPaged

	// JournalEnabled reports whether the mapping-delta journal is on
	// (off, the scheme is bit-identical to full-image writeback).
	JournalEnabled() bool

	// ConfigureJournal sets the journal's translation-block geometry
	// (pages per block) and its flash-footprint cap in pages, the
	// threshold that drives journal GC.
	ConfigureJournal(pagesPerBlock, maxPages int)

	// JournalStats snapshots the journal counters.
	JournalStats() JournalStats
}

// JournalStats mirrors core.JournalStats at the ftl layer (core cannot
// import ftl): mapping-delta journal activity and occupancy.
type JournalStats struct {
	// Appends counts delta records appended; Bases full-image records.
	Appends uint64
	Bases   uint64
	// Folds counts chains collapsed into fresh images; GCRuns journal
	// block reclaims; Replays delta records replayed onto bases.
	Folds   uint64
	GCRuns  uint64
	Replays uint64
	// Pages/Blocks are current translation-footprint occupancy; Groups
	// the journaled group count; MaxChain the longest live chain.
	Pages    int
	Blocks   int
	Groups   int
	MaxChain int
}

// MissReporter is implemented by schemes that want translation feedback
// from the device's OOB-verified read path. After every scheme-translated
// flash read the device reports what the scheme predicted and what the
// flash's reverse mapping proved true; an adaptive scheme uses the stream
// to steer per-group error bounds and misprediction hints, and may spend
// translation-metadata flash operations reacting (e.g. pinning the
// corrected mapping), returned as the Cost. The device serializes calls.
type MissReporter interface {
	// NoteRead reports one verified read: the scheme translated lpa to
	// predicted, the true page was actual (== predicted on a correct
	// prediction), approx says whether the translation was approximate,
	// and hintResolved whether a misprediction was absorbed by the
	// hint-aimed first read (costing no extra flash traffic).
	NoteRead(lpa addr.LPA, predicted, actual addr.PPA, approx, hintResolved bool) Cost

	// NoteExact reports one bitmap-trusted read: the scheme translated
	// lpa with Translation.Exact set, the device issued a single flash
	// read with no verification budget, and the page was the right one.
	// The scheme advances its observation window for lpa's group so
	// bitmap-served reads still count toward feedback-controller
	// denominators.
	NoteExact(lpa addr.LPA) Cost
}

// GCRelearner is implemented by schemes that re-fit their mapping model
// from GC relocation batches. The device's block reclaim commits each
// per-stream relocation run (sorted ascending by LPA, like a flush)
// through CommitGC instead of Commit; the scheme may relearn the
// affected groups from the freshly sequential layout and reports how
// many it re-fitted (0 when relearning is disabled — CommitGC then
// behaves exactly like Commit).
type GCRelearner interface {
	CommitGC(pairs []addr.Mapping) (Cost, int)
}

// ExactAuditor is implemented by schemes that maintain predicted-exact
// bitmaps. The device's CheckInvariants hands it a ground-truth oracle
// (live PPA per LPA; ok=false for unmapped or lost pages) and the scheme
// verifies every set bit's prediction against it — a set bit pointing
// at the wrong page would make the device return wrong data without an
// OOB check, so any disagreement is a hard invariant failure. The audit
// must be side-effect free and must not fault paged-out groups in.
type ExactAuditor interface {
	AuditExact(truth func(addr.LPA) (addr.PPA, bool)) error
}

// AdaptiveGamma is implemented by schemes that tune a per-group error
// bound at runtime. The device's CheckInvariants asserts the effective
// bound never exceeds the scheme's global γ — the OOB reverse-mapping
// window is sized for the global bound, so a larger per-group γ would
// break misprediction recovery.
type AdaptiveGamma interface {
	Gamma

	// MaxGroupGamma reports the largest effective per-group error bound.
	MaxGroupGamma() int
}

// Concurrent is implemented by schemes whose Translate method is safe for
// concurrent use by multiple host streams (a sharded mapping core). The
// device's closed-loop simulation still serializes requests, but parallel
// drivers — the leaftl-bench parallel replay mode, or a future
// multi-queue front-end — may fan translations out across goroutines
// when the scheme advertises this.
type Concurrent interface {
	Scheme

	// TranslateShards returns the number of independent translation
	// shards: the maximum useful lookup concurrency.
	TranslateShards() int
}
