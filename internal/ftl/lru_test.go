package ftl

import (
	"math/rand"
	"testing"
)

func TestLRUBasics(t *testing.T) {
	c := NewByteLRU[int, string](100)
	c.Put(1, "a", 40, false)
	c.Put(2, "b", 40, false)
	if v, ok := c.Get(1); !ok || v != "a" {
		t.Fatalf("Get(1) = %q,%v", v, ok)
	}
	// 1 is now MRU; inserting 60 bytes evicts 2.
	ev := c.Put(3, "c", 60, false)
	if len(ev) != 1 || ev[0].Key != 2 {
		t.Fatalf("evicted %v, want key 2", ev)
	}
	if c.Used() != 100 || c.Len() != 2 {
		t.Errorf("used=%d len=%d", c.Used(), c.Len())
	}
}

func TestLRUDirtyEviction(t *testing.T) {
	c := NewByteLRU[int, int](16)
	c.Put(1, 1, 8, true)
	c.Put(2, 2, 8, false)
	ev := c.Put(3, 3, 8, false)
	if len(ev) != 1 || !ev[0].Dirty || ev[0].Key != 1 {
		t.Fatalf("evictions = %+v", ev)
	}
}

func TestLRUUpdateInPlace(t *testing.T) {
	c := NewByteLRU[int, int](32)
	c.Put(1, 10, 8, false)
	c.Put(1, 11, 16, true)
	if c.Used() != 16 || c.Len() != 1 {
		t.Errorf("used=%d len=%d", c.Used(), c.Len())
	}
	if v, _ := c.Peek(1); v != 11 {
		t.Errorf("value = %d", v)
	}
	// Updated entry keeps dirtiness until cleaned.
	if n := c.CleanMatching(func(int) bool { return true }); n != 1 {
		t.Errorf("cleaned %d", n)
	}
}

func TestLRUOversizeItem(t *testing.T) {
	c := NewByteLRU[int, int](10)
	ev := c.Put(1, 1, 20, true)
	if c.Len() != 0 {
		t.Error("oversize item cached")
	}
	if len(ev) != 1 || !ev[0].Dirty {
		t.Errorf("oversize dirty item must report writeback: %v", ev)
	}
}

func TestLRUResize(t *testing.T) {
	c := NewByteLRU[int, int](100)
	for i := 0; i < 10; i++ {
		c.Put(i, i, 10, false)
	}
	ev := c.Resize(35)
	if len(ev) != 7 {
		t.Fatalf("evicted %d, want 7", len(ev))
	}
	// Survivors are the three most recently used: 7, 8, 9.
	for _, k := range []int{7, 8, 9} {
		if !c.Contains(k) {
			t.Errorf("key %d missing after resize", k)
		}
	}
}

func TestLRURemove(t *testing.T) {
	c := NewByteLRU[int, int](100)
	c.Put(1, 1, 10, true)
	ev, ok := c.Remove(1)
	if !ok || !ev.Dirty || c.Len() != 0 || c.Used() != 0 {
		t.Errorf("remove: %+v ok=%v len=%d used=%d", ev, ok, c.Len(), c.Used())
	}
	if _, ok := c.Remove(1); ok {
		t.Error("second remove succeeded")
	}
}

// Property: eviction order is exactly least-recently-used and used never
// exceeds budget.
func TestLRUProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := NewByteLRU[int, int](64)
	type ref struct{ key, size int }
	var order []ref // recency list, MRU first (reference model)
	touch := func(k, size int) {
		for i, r := range order {
			if r.key == k {
				order = append(order[:i], order[i+1:]...)
				break
			}
		}
		order = append([]ref{{k, size}}, order...)
	}
	for i := 0; i < 5000; i++ {
		k := rng.Intn(20)
		switch rng.Intn(3) {
		case 0:
			size := 4 + rng.Intn(12)
			evs := c.Put(k, k, size, false)
			touch(k, size)
			// Trim reference model the same way.
			used := 0
			for _, r := range order {
				used += r.size
			}
			for used > 64 {
				last := order[len(order)-1]
				order = order[:len(order)-1]
				used -= last.size
				found := false
				for _, e := range evs {
					if e.Key == last.key {
						found = true
					}
				}
				if !found {
					t.Fatalf("step %d: model evicted %d, cache did not (evs=%v)", i, last.key, evs)
				}
			}
		case 1:
			_, ok := c.Get(k)
			inModel := false
			for _, r := range order {
				if r.key == k {
					inModel = true
					touch(k, r.size)
					break
				}
			}
			if ok != inModel {
				t.Fatalf("step %d: Get(%d) = %v, model %v", i, k, ok, inModel)
			}
		case 2:
			c.Remove(k)
			for j, r := range order {
				if r.key == k {
					order = append(order[:j], order[j+1:]...)
					break
				}
			}
		}
		if c.Used() > c.Budget() {
			t.Fatalf("step %d: used %d > budget %d", i, c.Used(), c.Budget())
		}
		if c.Len() != len(order) {
			t.Fatalf("step %d: len %d, model %d", i, c.Len(), len(order))
		}
	}
}
