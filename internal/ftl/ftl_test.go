package ftl

import "testing"

func TestCostAdd(t *testing.T) {
	a := Cost{MetaReads: 1, MetaWrites: 2}
	a.Add(Cost{MetaReads: 3, MetaWrites: 4})
	if a.MetaReads != 4 || a.MetaWrites != 6 {
		t.Errorf("Add gave %+v", a)
	}
}
