package plr

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func fitAll(points []Point, gamma float64) []Segment {
	return Fit(points, gamma, 0, 1, 255)
}

func TestSinglePoint(t *testing.T) {
	segs := fitAll([]Point{{X: 7, Y: 42}}, 0)
	if len(segs) != 1 {
		t.Fatalf("got %d segments, want 1", len(segs))
	}
	s := segs[0]
	if s.K != 0 || s.B != 42 || s.N != 1 || s.FirstX != 7 || s.LastX != 7 {
		t.Errorf("single-point segment = %+v", s)
	}
	if s.Predict(7) != 42 {
		t.Errorf("Predict(7) = %d, want 42", s.Predict(7))
	}
}

func TestExactSequential(t *testing.T) {
	// Paper Figure 1 pattern A: contiguous LPAs, contiguous PPAs.
	var pts []Point
	for i := int64(0); i < 100; i++ {
		pts = append(pts, Point{X: 30 + i, Y: 155 + i})
	}
	segs := fitAll(pts, 0)
	if len(segs) != 1 {
		t.Fatalf("sequential run split into %d segments", len(segs))
	}
	s := segs[0]
	if s.N != 100 {
		t.Errorf("N = %d, want 100", s.N)
	}
	for _, p := range pts {
		if got := s.Predict(p.X); got != p.Y {
			t.Fatalf("Predict(%d) = %d, want %d", p.X, got, p.Y)
		}
	}
}

func TestExactStrided(t *testing.T) {
	// Paper Figure 1 pattern B: LPAs 60,62,64,... PPAs 200,201,202,...
	var pts []Point
	for i := int64(0); i < 50; i++ {
		pts = append(pts, Point{X: 60 + 2*i, Y: 200 + i})
	}
	segs := fitAll(pts, 0)
	if len(segs) != 1 {
		t.Fatalf("strided run split into %d segments", len(segs))
	}
	if k := segs[0].K; math.Abs(k-0.5) > 1e-12 {
		t.Errorf("K = %v, want 0.5", k)
	}
	for _, p := range pts {
		if got := segs[0].Predict(p.X); got != p.Y {
			t.Fatalf("Predict(%d) = %d, want %d", p.X, got, p.Y)
		}
	}
}

func TestIrregularWithinGamma(t *testing.T) {
	// Paper Figure 1 pattern C: irregular strides learned as one
	// approximate segment when gamma is large enough.
	xs := []int64{80, 82, 83, 84, 87}
	ys := []int64{304, 305, 306, 307, 308}
	var pts []Point
	for i := range xs {
		pts = append(pts, Point{X: xs[i], Y: ys[i]})
	}
	segs := fitAll(pts, 2)
	if len(segs) != 1 {
		t.Fatalf("irregular run with gamma=2 split into %d segments", len(segs))
	}
	for i := range xs {
		pred := segs[0].K*float64(xs[i]) + segs[0].B
		if d := math.Abs(pred - float64(ys[i])); d > 2+1e-9 {
			t.Errorf("point %d: |error| = %v > gamma", i, d)
		}
	}
	// With gamma = 0 the same run must split.
	if n := len(fitAll(pts, 0)); n < 2 {
		t.Errorf("gamma=0 fit produced %d segments, want >1", n)
	}
}

func TestRandomPointsBecomeSingletons(t *testing.T) {
	// Worst case (paper §3.1): random mappings degrade to single-point
	// segments, never exceeding one segment per mapping.
	rng := rand.New(rand.NewSource(1))
	var pts []Point
	x := int64(0)
	for i := 0; i < 200; i++ {
		x += 1 + rng.Int63n(3)
		pts = append(pts, Point{X: x, Y: rng.Int63n(1 << 30)})
	}
	segs := fitAll(pts, 0)
	if len(segs) > len(pts) {
		t.Fatalf("%d segments for %d points", len(segs), len(pts))
	}
	total := 0
	for _, s := range segs {
		total += s.N
	}
	if total != len(pts) {
		t.Errorf("segments cover %d points, want %d", total, len(pts))
	}
}

func TestMaxSpanSplits(t *testing.T) {
	var pts []Point
	for i := int64(0); i < 600; i++ {
		pts = append(pts, Point{X: i, Y: i})
	}
	segs := Fit(pts, 0, 0, 1, 255)
	for _, s := range segs {
		if s.LastX-s.FirstX > 255 {
			t.Fatalf("segment span %d exceeds 255", s.LastX-s.FirstX)
		}
	}
	if len(segs) != 3 {
		t.Errorf("600 sequential points with span 255 gave %d segments, want 3", len(segs))
	}
}

func TestDuplicateXCloses(t *testing.T) {
	pts := []Point{{0, 10}, {1, 11}, {1, 99}, {2, 100}}
	segs := fitAll(pts, 4)
	if len(segs) < 2 {
		t.Fatalf("duplicate x did not split: %d segments", len(segs))
	}
}

func TestSlopeClamp(t *testing.T) {
	// Slope 2 exceeds the [0,1] clamp, so each pair must split.
	pts := []Point{{0, 0}, {1, 2}, {2, 4}}
	segs := fitAll(pts, 0)
	if len(segs) != 3 {
		t.Fatalf("slope-2 run with clamp [0,1] gave %d segments, want 3", len(segs))
	}
}

// Property: every fitted segment respects the error bound on every point it
// covers, and segments partition the input in order.
func TestPropertyErrorBound(t *testing.T) {
	check := func(seed int64, gammaSel uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		gamma := float64(gammaSel % 17)
		n := 1 + rng.Intn(300)
		pts := make([]Point, 0, n)
		x := int64(rng.Intn(100))
		y := int64(rng.Intn(1000))
		for i := 0; i < n; i++ {
			x += 1 + int64(rng.Intn(4))
			// Mix of sequential-ish and jumpy y to exercise both paths.
			if rng.Intn(4) == 0 {
				y = int64(rng.Intn(1 << 20))
			} else {
				y += 1
			}
			pts = append(pts, Point{X: x, Y: y})
		}
		segs := Fit(pts, gamma, 0, 1, 255)

		// 1. Partition: concatenated point counts equal input length and
		//    segment x-ranges are ordered and disjoint.
		total := 0
		lastX := int64(math.MinInt64)
		for _, s := range segs {
			total += s.N
			if s.FirstX <= lastX {
				return false
			}
			if s.LastX < s.FirstX {
				return false
			}
			lastX = s.LastX
		}
		if total != len(pts) {
			return false
		}

		// 2. Error bound on each covered point.
		si := 0
		for _, p := range pts {
			for p.X > segs[si].LastX {
				si++
			}
			s := segs[si]
			if p.X < s.FirstX {
				return false
			}
			pred := s.K*float64(p.X) + s.B
			if math.Abs(pred-float64(p.Y)) > gamma+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: a larger gamma never produces more segments than a smaller one
// on the same input (monotone relaxation, paper Figure 5).
func TestPropertyGammaMonotone(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(200)
		pts := make([]Point, 0, n)
		x := int64(0)
		y := int64(0)
		for i := 0; i < n; i++ {
			x += 1 + int64(rng.Intn(3))
			y += int64(rng.Intn(3))
			pts = append(pts, Point{X: x, Y: y})
		}
		prev := math.MaxInt32
		for _, g := range []float64{0, 1, 4, 16} {
			cur := len(Fit(pts, g, 0, 1, 255))
			if cur > prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFitterReuseAfterFinish(t *testing.T) {
	f := NewFitter(0, 0, 1, 255)
	f.Add(1, 1)
	f.Add(2, 2)
	if s := f.Finish(); s == nil || s.N != 2 {
		t.Fatalf("first Finish = %+v", s)
	}
	if s := f.Finish(); s != nil {
		t.Fatalf("second Finish = %+v, want nil", s)
	}
	f.Add(10, 20)
	if s := f.Finish(); s == nil || s.N != 1 || s.FirstX != 10 {
		t.Fatalf("reuse Finish = %+v", s)
	}
}
