package plr

import (
	"math/rand"
	"testing"
)

func benchPoints(n int) []Point {
	rng := rand.New(rand.NewSource(1))
	pts := make([]Point, 0, n)
	x, y := int64(0), int64(0)
	for i := 0; i < n; i++ {
		x += 1 + rng.Int63n(3)
		y++
		pts = append(pts, Point{X: x, Y: y})
	}
	return pts
}

func BenchmarkFit256(b *testing.B) {
	pts := benchPoints(256)
	for _, gamma := range []float64{0, 4} {
		name := "gamma0"
		if gamma > 0 {
			name = "gamma4"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				Fit(pts, gamma, 0, 1, 255)
			}
		})
	}
}

func BenchmarkFitterAdd(b *testing.B) {
	pts := benchPoints(1 << 16)
	f := NewFitter(4, 0, 1, 255)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pts[i%len(pts)]
		f.Add(p.X+int64(i/len(pts))*1<<20, p.Y)
	}
}
