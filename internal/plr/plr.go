// Package plr implements greedy maximum-error-bounded piecewise linear
// regression, the learning primitive of LeaFTL (paper §3.2, citing Xie et
// al., "Maximum error-bounded piecewise linear representation for online
// stream approximation", VLDB J. 2014).
//
// Points arrive in strictly increasing x order (the SSD controller sorts
// buffered pages by LPA before a flush, paper §3.3). The fitter maintains
// the cone of slopes that keep every accepted point within ±gamma of the
// line anchored at the segment's first point; a point that empties the
// cone closes the current segment and starts a new one. With gamma = 0
// this degenerates to exact collinearity, producing the paper's "accurate"
// segments.
//
// The anchored-cone variant is not the optimal-segment-count algorithm,
// but it guarantees the error bound, runs in O(1) per point, and is what
// an SSD firmware implementation would realistically ship; LeaFTL's own
// artifact uses the same greedy scheme.
package plr

import "math"

// Point is one (x, y) observation. For LeaFTL x is an LPA (or an LPA
// offset within a segment group) and y is the mapped PPA.
type Point struct {
	X, Y int64
}

// Segment is one fitted line y ≈ K*x + B covering the points from FirstX
// to LastX inclusive. Every covered point satisfies |K*x + B - y| ≤ gamma.
type Segment struct {
	FirstX, LastX int64
	K, B          float64
	N             int // number of points covered
}

// Predict evaluates the fitted line at x, rounding up as LeaFTL does
// (PPA = ⌈K·x + I⌉, paper §3.2).
func (s Segment) Predict(x int64) int64 {
	return int64(math.Ceil(s.K*float64(x) + s.B))
}

// Fitter incrementally builds error-bounded segments. The zero value is
// not usable; construct with NewFitter.
type Fitter struct {
	gamma float64
	// Slope cone constraints, intersected over all accepted points:
	// slopes in [lo, hi] keep every point within ±gamma of the line
	// through the anchor (x0, y0).
	lo, hi float64
	// Optional hard slope clamp (LeaFTL requires K ∈ [0, 1], §3.2).
	minSlope, maxSlope float64
	// Maximum x-span of one segment (LeaFTL: 255, so S+L fits a group).
	maxSpan int64

	open   bool
	x0, y0 int64 // anchor: first point of the open segment
	xn, yn int64 // last accepted point
	n      int
}

// NewFitter returns a fitter with error bound gamma ≥ 0, slope clamped to
// [minSlope, maxSlope] and segment x-span limited to maxSpan (0 = no
// limit).
func NewFitter(gamma float64, minSlope, maxSlope float64, maxSpan int64) *Fitter {
	if gamma < 0 {
		gamma = 0
	}
	if maxSlope < minSlope {
		minSlope, maxSlope = maxSlope, minSlope
	}
	return &Fitter{
		gamma:    gamma,
		minSlope: minSlope,
		maxSlope: maxSlope,
		maxSpan:  maxSpan,
	}
}

// Gamma returns the configured error bound.
func (f *Fitter) Gamma() float64 { return f.gamma }

// Add feeds the next point (x must exceed the previous point's x). If the
// point does not fit the open segment, that segment is closed and
// returned, and a new segment is opened at the point. Otherwise Add
// returns nil.
func (f *Fitter) Add(x, y int64) *Segment {
	if s, ok := f.add(x, y); ok {
		return &s
	}
	return nil
}

// add is the allocation-free core of Add: closed reports whether a segment
// was closed by this point.
func (f *Fitter) add(x, y int64) (s Segment, closed bool) {
	if !f.open {
		f.start(x, y)
		return Segment{}, false
	}
	if x <= f.xn {
		// Duplicate or regressing x cannot extend a function fit; close.
		s := f.closeSegment()
		f.start(x, y)
		return s, true
	}
	if f.maxSpan > 0 && x-f.x0 > f.maxSpan {
		s := f.closeSegment()
		f.start(x, y)
		return s, true
	}

	dx := float64(x - f.x0)
	dy := float64(y - f.y0)
	lo := (dy - f.gamma) / dx
	hi := (dy + f.gamma) / dx
	nlo := math.Max(f.lo, lo)
	nhi := math.Min(f.hi, hi)
	if nlo > nhi {
		s := f.closeSegment()
		f.start(x, y)
		return s, true
	}
	f.lo, f.hi = nlo, nhi
	f.xn, f.yn = x, y
	f.n++
	return Segment{}, false
}

// Finish closes and returns the open segment, or nil if no points are
// pending. The fitter can be reused afterwards.
func (f *Fitter) Finish() *Segment {
	if !f.open {
		return nil
	}
	s := f.closeSegment()
	return &s
}

func (f *Fitter) start(x, y int64) {
	f.open = true
	f.x0, f.y0 = x, y
	f.xn, f.yn = x, y
	f.lo, f.hi = f.minSlope, f.maxSlope
	f.n = 1
}

func (f *Fitter) closeSegment() Segment {
	f.open = false
	if f.n == 1 {
		// Single point: LeaFTL encodes these as K=0, I=PPA (paper §3.1).
		return Segment{FirstX: f.x0, LastX: f.x0, K: 0, B: float64(f.y0), N: 1}
	}
	// Any slope inside the final cone satisfies the bound; the midpoint
	// maximizes slack on both sides against later quantization.
	k := (f.lo + f.hi) / 2
	if f.gamma == 0 {
		// Exact fit: the cone has collapsed to the true slope; avoid
		// midpoint FP noise by recomputing from the endpoints.
		k = float64(f.yn-f.y0) / float64(f.xn-f.x0)
	}
	return Segment{
		FirstX: f.x0,
		LastX:  f.xn,
		K:      k,
		B:      float64(f.y0) - k*float64(f.x0),
		N:      f.n,
	}
}

// Fit runs the greedy fitter over a full point slice (x strictly
// increasing) and returns the resulting segments in order.
func Fit(points []Point, gamma float64, minSlope, maxSlope float64, maxSpan int64) []Segment {
	return FitAppend(nil, points, gamma, minSlope, maxSlope, maxSpan)
}

// FitAppend is Fit appending into dst, so hot callers can reuse one
// segment buffer across fits instead of allocating per call. The fitter
// itself lives on the stack: a full fit performs no allocations beyond
// growing dst.
func FitAppend(dst []Segment, points []Point, gamma float64, minSlope, maxSlope float64, maxSpan int64) []Segment {
	if gamma < 0 {
		gamma = 0
	}
	if maxSlope < minSlope {
		minSlope, maxSlope = maxSlope, minSlope
	}
	f := Fitter{gamma: gamma, minSlope: minSlope, maxSlope: maxSlope, maxSpan: maxSpan}
	for _, p := range points {
		if s, closed := f.add(p.X, p.Y); closed {
			dst = append(dst, s)
		}
	}
	if f.open {
		dst = append(dst, f.closeSegment())
	}
	return dst
}
