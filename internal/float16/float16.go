// Package float16 implements the IEEE 754 binary16 ("half precision")
// encoding used by LeaFTL to store the slope K of a learned index segment
// in two bytes (paper §3.2).
//
// LeaFTL additionally steals the least-significant mantissa bit of the
// encoded slope as a segment-type flag (0 = accurate, 1 = approximate).
// The paper argues this is safe because K ∈ [0, 1], so the LSB only
// perturbs the slope by ~1e-4 at most; helpers for setting and reading
// the flag live here so the rest of the system never touches raw bits.
package float16

import "math"

// Bits is an IEEE 754 binary16 value in its raw bit representation:
// 1 sign bit, 5 exponent bits, 10 mantissa bits.
type Bits uint16

const (
	signMask     = 0x8000
	expMask      = 0x7C00
	mantissaMask = 0x03FF
	expBias      = 15
)

// From32 converts a float32 to the nearest binary16 value
// (round-to-nearest-even), with overflow mapped to ±Inf and underflow
// flushed toward zero/subnormals.
func From32(f float32) Bits {
	b := math.Float32bits(f)
	sign := uint16(b>>16) & signMask
	exp := int32(b>>23) & 0xFF
	mant := b & 0x7FFFFF

	switch {
	case exp == 0xFF: // Inf or NaN
		if mant != 0 {
			return Bits(sign | expMask | 0x200) // quiet NaN
		}
		return Bits(sign | expMask)
	case exp == 0 && mant == 0: // signed zero
		return Bits(sign)
	}

	// Unbiased exponent of the float32 value.
	e := exp - 127
	switch {
	case e > 15: // overflow to infinity
		return Bits(sign | expMask)
	case e >= -14: // normal half range
		// 10-bit mantissa with round-to-nearest-even on the dropped 13 bits.
		m := mant >> 13
		round := mant & 0x1FFF
		if round > 0x1000 || (round == 0x1000 && m&1 == 1) {
			m++
		}
		h := uint32(uint16(e+expBias))<<10 + m
		return Bits(sign | uint16(h)) // mantissa carry bumps the exponent correctly
	case e >= -24: // subnormal half
		// Implicit leading 1 becomes explicit; shift depends on exponent.
		mant |= 0x800000
		shift := uint32(14 - e) // in [15, 24] relative to the 10-bit target... see below
		// mant currently has 24 significant bits; we need to shift right by
		// (13 + (−14 − e)) = (−1 − e + 14) bits to land in 10 bits.
		shift = uint32(13 + (-14 - e))
		m := mant >> shift
		round := mant & ((1 << shift) - 1)
		half := uint32(1) << (shift - 1)
		if round > half || (round == half && m&1 == 1) {
			m++
		}
		return Bits(sign | uint16(m))
	default: // underflow to signed zero
		return Bits(sign)
	}
}

// To32 converts a binary16 value back to float32 exactly
// (every binary16 value is representable as a float32).
func To32(h Bits) float32 {
	sign := uint32(h&signMask) << 16
	exp := uint32(h&expMask) >> 10
	mant := uint32(h & mantissaMask)

	switch exp {
	case 0:
		if mant == 0 { // signed zero
			return math.Float32frombits(sign)
		}
		// Subnormal half: normalize into float32.
		e := int32(-14)
		for mant&0x400 == 0 {
			mant <<= 1
			e--
		}
		mant &= mantissaMask
		return math.Float32frombits(sign | uint32(e+127)<<23 | mant<<13)
	case 0x1F:
		if mant == 0 {
			return math.Float32frombits(sign | 0x7F800000) // Inf
		}
		return math.Float32frombits(sign | 0x7F800000 | mant<<13) // NaN
	default:
		return math.Float32frombits(sign | (exp-expBias+127)<<23 | mant<<13)
	}
}

// From64 converts a float64 via float32 to binary16.
func From64(f float64) Bits { return From32(float32(f)) }

// To64 converts a binary16 value to float64.
func To64(h Bits) float64 { return float64(To32(h)) }

// WithFlag returns h with its least-significant mantissa bit forced to the
// given flag value. LeaFTL stores the segment type here (paper §3.2).
func (h Bits) WithFlag(flag bool) Bits {
	if flag {
		return h | 1
	}
	return h &^ 1
}

// Flag reports the least-significant mantissa bit.
func (h Bits) Flag() bool { return h&1 == 1 }

// IsNaN reports whether h encodes a NaN.
func (h Bits) IsNaN() bool {
	return h&expMask == expMask && h&mantissaMask != 0
}

// IsInf reports whether h encodes ±Inf.
func (h Bits) IsInf() bool {
	return h&expMask == expMask && h&mantissaMask == 0
}
