package float16

import (
	"math"
	"testing"
	"testing/quick"
)

func TestExactValues(t *testing.T) {
	cases := []struct {
		f    float32
		bits Bits
	}{
		{0, 0x0000},
		{1, 0x3C00},
		{-1, 0xBC00},
		{0.5, 0x3800},
		{0.25, 0x3400},
		{2, 0x4000},
		{65504, 0x7BFF}, // max finite half
		{float32(math.Inf(1)), 0x7C00},
		{float32(math.Inf(-1)), 0xFC00},
	}
	for _, c := range cases {
		if got := From32(c.f); got != c.bits {
			t.Errorf("From32(%v) = %#04x, want %#04x", c.f, got, c.bits)
		}
		if got := To32(c.bits); got != c.f {
			t.Errorf("To32(%#04x) = %v, want %v", c.bits, got, c.f)
		}
	}
}

func TestNaN(t *testing.T) {
	h := From32(float32(math.NaN()))
	if !h.IsNaN() {
		t.Fatalf("From32(NaN) = %#04x, not NaN", h)
	}
	if f := To32(h); !math.IsNaN(float64(f)) {
		t.Errorf("To32(NaN bits) = %v, want NaN", f)
	}
}

func TestOverflowToInf(t *testing.T) {
	if h := From32(1e30); !h.IsInf() {
		t.Errorf("From32(1e30) = %#04x, want +Inf", h)
	}
	if h := From32(-1e30); !h.IsInf() || h&signMask == 0 {
		t.Errorf("From32(-1e30) = %#04x, want -Inf", h)
	}
}

func TestUnderflowToZero(t *testing.T) {
	if h := From32(1e-30); h != 0 {
		t.Errorf("From32(1e-30) = %#04x, want +0", h)
	}
}

func TestSubnormals(t *testing.T) {
	// Smallest positive subnormal half is 2^-24.
	small := float32(math.Ldexp(1, -24))
	h := From32(small)
	if h != 0x0001 {
		t.Fatalf("From32(2^-24) = %#04x, want 0x0001", h)
	}
	if got := To32(h); got != small {
		t.Errorf("To32(0x0001) = %g, want %g", got, small)
	}
	// Largest subnormal: (1023/1024) * 2^-14.
	large := float32(math.Ldexp(1023, -24))
	if h := From32(large); h != 0x03FF {
		t.Errorf("From32(largest subnormal) = %#04x, want 0x03ff", h)
	}
}

// Property: To32 → From32 is the identity on every one of the 65536
// half-precision bit patterns (except NaN payloads, which stay NaN).
func TestRoundTripAllBits(t *testing.T) {
	for i := 0; i <= 0xFFFF; i++ {
		h := Bits(i)
		f := To32(h)
		back := From32(f)
		if h.IsNaN() {
			if !back.IsNaN() {
				t.Fatalf("bits %#04x: NaN did not round-trip to NaN (got %#04x)", h, back)
			}
			continue
		}
		if back != h {
			t.Fatalf("bits %#04x: round trip gave %#04x (value %g)", h, back, f)
		}
	}
}

// Property: for slopes in LeaFTL's range K ∈ [0,1], quantization error is
// bounded by 2^-11 (half ulp at 1.0), so predictions over a 256-wide group
// shift by < 0.125 pages — far inside any γ ≥ 1 bound.
func TestQuantizationErrorInSlopeRange(t *testing.T) {
	f := func(k float64) bool {
		k = math.Abs(k)
		k -= math.Floor(k) // into [0,1)
		q := To64(From64(k))
		return math.Abs(q-k) <= 1.0/2048.0+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestFlag(t *testing.T) {
	h := From32(0.5)
	if h.Flag() {
		t.Fatalf("0.5 should encode with clear LSB")
	}
	hf := h.WithFlag(true)
	if !hf.Flag() {
		t.Fatalf("WithFlag(true) did not set flag")
	}
	if hf.WithFlag(false) != h {
		t.Fatalf("WithFlag(false) did not restore original bits")
	}
	// Setting the flag perturbs the value by at most one ulp.
	if d := math.Abs(To64(hf) - To64(h)); d > 1.0/1024.0 {
		t.Errorf("flag perturbation %g too large", d)
	}
}

// Property: From32 is monotone on finite positive inputs.
func TestMonotonic(t *testing.T) {
	f := func(a, b float32) bool {
		a = float32(math.Abs(float64(a)))
		b = float32(math.Abs(float64(b)))
		if math.IsInf(float64(a), 0) || math.IsInf(float64(b), 0) ||
			math.IsNaN(float64(a)) || math.IsNaN(float64(b)) {
			return true
		}
		if a > b {
			a, b = b, a
		}
		return From32(a) <= From32(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
