package ssd

import (
	"testing"

	"leaftl/internal/addr"
	"leaftl/internal/core"
	"leaftl/internal/ftl"
	"leaftl/internal/leaftl"
)

// bitmapOpts is the scheme configuration every bitmap test runs:
// adaptive γ plus the predicted-exact bitmap (the benched PR 9 cell).
func bitmapOpts() []leaftl.Option {
	return []leaftl.Option{
		leaftl.WithAutoTune(0.02),
		leaftl.WithCompactEvery(400),
		leaftl.WithExactBitmap(),
	}
}

// TestBitmapDeviceEndToEnd drives the exact-bit read path on a real
// device: after churn, approximate reads are served through set bits
// with no verification budget, every fallback-resolved miss shows up in
// the first-class double-read counter, and the bitmap audit in
// CheckInvariants holds throughout.
func TestBitmapDeviceEndToEnd(t *testing.T) {
	cfg := testConfig()
	// Starve the data cache so re-reads exercise translation, not DRAM.
	cfg.DRAMBytes = cfg.BufferBytes() + 64<<10
	d := newTestDevice(t, cfg, leaftl.New(8, cfg.Flash.PageSize, bitmapOpts()...))
	churnAutotune(t, d, 7, 4000)

	st := d.Stats()
	if st.ApproxReads == 0 {
		t.Fatal("no approximate reads; the workload is not exercising the learned path")
	}
	if st.ExactBitHits == 0 {
		t.Fatal("no reads served through exact bits")
	}
	if st.DoubleReads < st.MissFallbacks {
		t.Fatalf("double reads %d < fallback-resolved misses %d: every fallback paid a wasted first read",
			st.DoubleReads, st.MissFallbacks)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// The kill-the-double-read property: a read pass arms exact bits and
	// repairs costly misses, so an identical second pass pays zero double
	// reads — every approximate translation either carries a set bit or
	// was repaired into an accurate point.
	span := d.LogicalPages() / 4
	pass := func() (dbl, exact uint64) {
		dblBefore, exactBefore := d.Stats().DoubleReads, d.Stats().ExactBitHits
		for lpa := 0; lpa < span; lpa++ {
			if _, err := d.Read(addr.LPA(lpa), 1); err != nil {
				t.Fatal(err)
			}
		}
		return d.Stats().DoubleReads - dblBefore, d.Stats().ExactBitHits - exactBefore
	}
	firstDbl, _ := pass()
	secondDbl, secondExact := pass()
	if secondDbl != 0 {
		t.Fatalf("second identical read pass still paid %d double reads (first pass: %d)",
			secondDbl, firstDbl)
	}
	if secondExact == 0 {
		t.Fatal("second read pass served nothing through exact bits")
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestBitmapRelearnUnderGC: block reclaim routes LPA-sorted relocation
// runs through CommitGC, so a bitmap device under GC pressure re-fits
// groups (Stats.Relearns) and relearned groups still translate every
// page correctly.
func TestBitmapRelearnUnderGC(t *testing.T) {
	cfg := testConfig()
	d := newTestDevice(t, cfg, leaftl.New(8, cfg.Flash.PageSize, bitmapOpts()...))
	logical := d.LogicalPages()
	rng := seededRand(t, 9021)
	for lpa := 0; lpa+8 <= logical/2; lpa += 8 {
		if _, err := d.Write(addr.LPA(lpa), 8); err != nil {
			t.Fatal(err)
		}
	}
	// Overwrite churn drives reclaim; interleaved reads keep the exact
	// bits exercised against relocated pages.
	for op := 0; op < 6000; op++ {
		switch {
		case op%5 < 2:
			if _, err := d.Write(addr.LPA(rng.Intn(logical/2)), 1+rng.Intn(3)); err != nil {
				t.Fatal(err)
			}
		case op%5 == 2:
			for i := 0; i < 4; i++ {
				if _, err := d.Write(addr.LPA(rng.Intn(logical/2)), 1); err != nil {
					t.Fatal(err)
				}
			}
		default:
			if _, err := d.Read(addr.LPA(rng.Intn(logical/4)), 1+rng.Intn(4)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}

	st := d.Stats()
	if st.GCRuns == 0 {
		t.Fatal("workload produced no GC; relearning never exercised")
	}
	if st.Relearns == 0 {
		t.Fatal("GC moved pages but relearned no groups")
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for lpa := 0; lpa < logical/2; lpa += 7 {
		if _, err := d.Read(addr.LPA(lpa), 1); err != nil {
			t.Fatalf("read %d after relearning: %v", lpa, err)
		}
	}
}

// TestBitmapShardedRunMatchesPlain extends the sharded-invisible
// contract to the bitmap: identical serialized workloads must produce
// identical stats — including exact-bit hits, double reads, and
// relearn counts — and identical per-group tune state (bitmap bytes
// included) on the plain and sharded devices.
func TestBitmapShardedRunMatchesPlain(t *testing.T) {
	cfg := testConfig()
	devP := newTestDevice(t, cfg, leaftl.New(8, cfg.Flash.PageSize, bitmapOpts()...))
	devS := newTestDevice(t, cfg, leaftl.NewSharded(8, cfg.Flash.PageSize, 8, bitmapOpts()...))
	for _, d := range []*Device{devP, devS} {
		churnAutotune(t, d, 13, 3000)
	}
	sp, ss := devP.Stats(), devS.Stats()
	if sp != ss {
		t.Fatalf("stats diverged:\nplain   %+v\nsharded %+v", sp, ss)
	}
	tp := devP.Scheme().(*leaftl.Scheme).Table().GroupTunes()
	ts := devS.Scheme().(*leaftl.Sharded).Table().GroupTunes()
	if len(tp) != len(ts) {
		t.Fatalf("tune counts diverged: %d vs %d", len(tp), len(ts))
	}
	for i := range tp {
		if tp[i] != ts[i] {
			t.Fatalf("tune state diverged at %d: %+v vs %+v", i, tp[i], ts[i])
		}
	}
}

// TestBitmapSurvivesEvictionAndRecovery pins the v3 wire property on the
// full device, plain and sharded: exact bitmaps ride the persisted group
// images through demand paging and crash recovery bit-identically, and
// the restored bits still pass the truth audit after post-recovery
// reads fault every group back in.
func TestBitmapSurvivesEvictionAndRecovery(t *testing.T) {
	cases := []struct {
		name string
		mk   func(cfg Config) ftl.Scheme
	}{
		{"plain", func(cfg Config) ftl.Scheme {
			return leaftl.New(8, cfg.Flash.PageSize, bitmapOpts()...)
		}},
		{"sharded", func(cfg Config) ftl.Scheme {
			return leaftl.NewSharded(8, cfg.Flash.PageSize, 8, bitmapOpts()...)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := testConfig()
			d := newTestDevice(t, cfg, tc.mk(cfg))
			churnAutotune(t, d, 17, 4000)
			d.SetMappingBudget(d.Scheme().FullSizeBytes() / 3)
			// More traffic under the budget so groups cycle through flash.
			rng := seededRand(t, 18)
			for op := 0; op < 1500; op++ {
				if op%3 == 0 {
					if _, err := d.Write(addr.LPA(rng.Intn(d.LogicalPages()/2)), 1); err != nil {
						t.Fatal(err)
					}
				} else if _, err := d.Read(addr.LPA(rng.Intn(d.LogicalPages()/4)), 1); err != nil {
					t.Fatal(err)
				}
			}
			if err := d.Flush(); err != nil {
				t.Fatal(err)
			}

			// Decode every persisted image into a scratch table and keep
			// its bitmap: what a crash survivor must reproduce.
			old := d.Scheme().(ftl.GroupPaged)
			persisted := old.PersistedGroups()
			if len(persisted) == 0 {
				t.Fatal("nothing persisted before the crash")
			}
			decode := func(gid addr.GroupID, img []byte) [32]byte {
				t.Helper()
				scratch := core.NewTable(8)
				got, err := scratch.InstallGroup(img)
				if err != nil || got != gid {
					t.Fatalf("persisted image of group %d does not decode: %v", gid, err)
				}
				tunes := scratch.GroupTunes()
				if len(tunes) != 1 {
					t.Fatalf("image of group %d decoded to %d groups", gid, len(tunes))
				}
				return tunes[0].Exact
			}
			want := map[addr.GroupID][32]byte{}
			armed := 0
			for gid, img := range persisted {
				bits := decode(gid, img)
				want[gid] = bits
				if bits != ([32]byte{}) {
					armed++
				}
			}
			if armed == 0 {
				t.Fatal("no persisted group carries a set exact bit; test is vacuous")
			}

			rep, err := d.Recover(tc.mk(cfg))
			if err != nil {
				t.Fatal(err)
			}
			if rep.GroupsRestored == 0 {
				t.Fatalf("no groups restored: %+v", rep)
			}
			fresh := d.Scheme().(ftl.GroupPaged)
			restored := fresh.PersistedGroups()
			checked := 0
			for gid, bits := range want {
				img, ok := restored[gid]
				if !ok {
					continue // OOB-rebuilt group: relearned from scratch
				}
				if got := decode(gid, img); got != bits {
					t.Fatalf("group %d recovered with bitmap %x, want %x", gid, got, bits)
				}
				checked++
			}
			if checked == 0 {
				t.Fatal("no restored group's bitmap was checked; test is vacuous")
			}
			// Fault the groups back in and let CheckInvariants audit the
			// restored bits against flash ground truth.
			for lpa := 0; lpa < d.LogicalPages()/2; lpa += 3 {
				if _, err := d.Read(addr.LPA(lpa), 1); err != nil {
					t.Fatalf("post-recovery read %d: %v", lpa, err)
				}
			}
			if err := d.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestBitmapAuditCatchesStaleBit proves the invariant sweep detects a
// poisoned bitmap: force a set bit whose prediction no longer lands on
// the live page and CheckInvariants must fail.
func TestBitmapAuditCatchesStaleBit(t *testing.T) {
	cfg := testConfig()
	d := newTestDevice(t, cfg, leaftl.New(8, cfg.Flash.PageSize, bitmapOpts()...))
	churnAutotune(t, d, 7, 2000)
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Find a mapped LPA translated approximately through a set bit and
	// corrupt the device's ground truth out from under it.
	sch := d.Scheme().(*leaftl.Scheme)
	for lpa := 0; lpa < d.LogicalPages()/2; lpa++ {
		tr, ok := sch.Translate(addr.LPA(lpa))
		if !ok || !tr.Exact {
			continue
		}
		d.truth[addr.LPA(lpa)] = tr.PPA + 1
		if err := d.CheckInvariants(); err == nil {
			t.Fatal("CheckInvariants accepted a set exact bit pointing at the wrong page")
		}
		d.truth[addr.LPA(lpa)] = tr.PPA
		return
	}
	t.Skip("no exact-bit translation found at this seed")
}

var _ ftl.GCRelearner = (*leaftl.Scheme)(nil)
var _ ftl.ExactAuditor = (*leaftl.Sharded)(nil)
