package ssd

import (
	"errors"
	"testing"
	"time"

	"leaftl/internal/addr"
	"leaftl/internal/flash"
	"leaftl/internal/ftl"
	"leaftl/internal/leaftl"
)

// faultTestConfig returns the small test device with fault injection
// enabled at the given RBER.
func faultTestConfig(seed int64, rber float64) Config {
	cfg := testConfig()
	cfg.Flash.Fault = flash.DefaultFaults(seed, rber)
	return cfg
}

// runFaultyWorkload drives a seeded random read/write mix and asserts
// the no-silent-corruption property: every host read either succeeds
// (the device's own token cross-checks catch wrong data and fail the
// test through readPage's corruption errors) or fails with a typed
// *UECCError. Any other error is a bug. Returns the device for further
// inspection.
func runFaultyWorkload(t *testing.T, cfg Config, scheme ftl.Scheme, seed int64, reqs int) *Device {
	t.Helper()
	d := newTestDevice(t, cfg, scheme)
	rng := seededRand(t, seed)
	span := d.LogicalPages()
	var ueccs int
	for i := 0; i < reqs; i++ {
		lpa := addr.LPA(rng.Intn(span - 8))
		n := 1 + rng.Intn(8)
		if rng.Float64() < 0.5 {
			if _, err := d.Write(lpa, n); err != nil {
				t.Fatalf("seed %d: write %d+%d: %v\nstats %+v\nflash %+v", seed, lpa, n, err, d.Stats(), d.FlashStats())
			}
			continue
		}
		_, err := d.Read(lpa, n)
		var uecc *UECCError
		switch {
		case err == nil:
		case errors.As(err, &uecc):
			ueccs++
		default:
			t.Fatalf("seed %d: read %d+%d returned a non-UECC error: %v", seed, lpa, n, err)
		}
		// Occasionally jump the clock so retention error accrues.
		if i%256 == 255 {
			d.AdvanceTo(d.Now() + 30*time.Second)
		}
	}
	if err := d.Flush(); err != nil {
		var uecc *UECCError
		if !errors.As(err, &uecc) {
			t.Fatalf("seed %d: flush: %v", seed, err)
		}
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	t.Logf("seed %d: %d host UECCs, flash stats %+v", seed, ueccs, d.FlashStats())
	return d
}

// TestNoSilentCorruptionUnderFaults is the acceptance property test:
// with fault injection at an aggressive RBER, no read ever returns
// silently wrong data — the device's internal token cross-check turns
// wrong data into a test failure, so surviving the workload proves
// every injected error was corrected, reconstructed, or reported.
func TestNoSilentCorruptionUnderFaults(t *testing.T) {
	const seed = 20260807
	for _, tc := range []struct {
		name  string
		rber  float64
		gamma int
	}{
		{"leaftl-aged", 2e-5, 4},
		{"leaftl-dying", 1e-4, 4},
		{"leaftl-exactish", 1e-4, 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := faultTestConfig(seed, tc.rber)
			// Retention scrubbing on: the workload's clock jumps age the
			// data, and the refresh path must hold up under faults too.
			cfg.ScrubRetentionAge = 2 * time.Minute
			sch := leaftl.New(tc.gamma, cfg.Flash.PageSize, leaftl.WithCompactEvery(2000))
			d := runFaultyWorkload(t, cfg, sch, seed, 6000)
			fst := d.FlashStats()
			if fst.CorrectedReads == 0 {
				t.Errorf("seed %d: no corrected reads at RBER %v", seed, tc.rber)
			}
		})
	}
}

// TestUECCSurfacedToHost pins the lost-data path: destroy an LPA's only
// copy via GC copy-out UECC... hard to force directly, so instead force
// it through loseLPA and check the host-visible behaviour.
func TestUECCSurfacedToHost(t *testing.T) {
	cfg := testConfig()
	d := newTestDevice(t, cfg, leaftl.New(4, cfg.Flash.PageSize))
	if _, err := d.Write(100, 4); err != nil {
		t.Fatal(err)
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	d.loseLPA(101)
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	_, err := d.Read(101, 1)
	var uecc *UECCError
	if !errors.As(err, &uecc) || uecc.LPA != 101 {
		t.Fatalf("read of lost LPA returned %v, want *UECCError for LPA 101", err)
	}
	if d.Stats().HostUECCs == 0 {
		t.Error("HostUECCs not counted")
	}
	// A rewrite clears the loss.
	if _, err := d.Write(101, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Read(101, 1); err != nil {
		t.Fatalf("read after rewrite: %v", err)
	}
}

// TestBadBlockRetirement drives a device with a high program-failure
// rate and asserts the retirement lifecycle: blocks are condemned,
// swept out of rotation, and never reappear on the free list — all
// while the workload keeps succeeding.
func TestBadBlockRetirement(t *testing.T) {
	const seed = 7
	cfg := faultTestConfig(seed, 1e-7)
	// Hot enough for a handful of failures over the workload, but each
	// one retires a whole block, so the rate must stay well inside the
	// device's over-provisioning headroom (~13 spare blocks here) —
	// and GC amplification means flash sees ~4.5× the host's programs.
	cfg.Flash.Fault.ProgramFailBase = 8e-5
	cfg.Flash.Fault.EraseFailBase = 3e-3
	sch := leaftl.New(4, cfg.Flash.PageSize, leaftl.WithCompactEvery(2000))
	d := runFaultyWorkload(t, cfg, sch, seed, 8000)

	st := d.Stats()
	fst := d.FlashStats()
	if fst.ProgramFails == 0 && fst.EraseFails == 0 {
		t.Fatalf("seed %d: fault model produced no program/erase failures", seed)
	}
	if st.RetiredBlocks == 0 {
		t.Errorf("seed %d: %d program fails and %d erase fails but no retired blocks",
			seed, fst.ProgramFails, fst.EraseFails)
	}
	// Retired blocks are out of every structure (CheckInvariants already
	// audits this; assert the count here so the test is self-describing).
	retired := 0
	for b := 0; b < cfg.Flash.Blocks(); b++ {
		if d.bad[b] && d.blockSeq[b] == 0 {
			retired++
			if d.isFree[b] {
				t.Fatalf("seed %d: retired block %d is on the free list", seed, b)
			}
		}
	}
	t.Logf("seed %d: %d retired (%d condemned), %d program fails, %d erase fails",
		seed, retired, st.RetiredBlocks, fst.ProgramFails, fst.EraseFails)
}

// TestScrubDisturb pins read-reclaim: hammering one block past the
// disturb threshold relocates it and resets its read counter.
func TestScrubDisturb(t *testing.T) {
	cfg := testConfig()
	cfg.ScrubDisturbReads = 500
	d := newTestDevice(t, cfg, leaftl.New(0, cfg.Flash.PageSize))
	if _, err := d.Write(0, 64); err != nil {
		t.Fatal(err)
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	b := d.cfg.Flash.BlockOf(d.truth[0])
	for i := 0; i < 800; i++ {
		if _, err := d.Read(addr.LPA(i%64), 1); err != nil {
			t.Fatal(err)
		}
		// The data cache would absorb repeats; vary and occasionally
		// clear it so reads reach flash.
		if i%16 == 15 {
			d.cache.Resize(0)
			d.resizeCache()
		}
	}
	if d.Stats().ScrubRelocations == 0 {
		t.Fatalf("no scrub relocations after hammering block %d (reads=%d)", b, d.arr.BlockReads(b))
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestScrubRetention pins the retention sweep: blocks whose pages sit
// programmed past the age threshold are refreshed at the next flush.
func TestScrubRetention(t *testing.T) {
	cfg := testConfig()
	cfg.ScrubRetentionAge = time.Minute
	d := newTestDevice(t, cfg, leaftl.New(0, cfg.Flash.PageSize))
	if _, err := d.Write(0, 64); err != nil {
		t.Fatal(err)
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	d.AdvanceTo(d.Now() + 2*time.Minute)
	// The next flush runs the retention sweep.
	if _, err := d.Write(1000, 64); err != nil {
		t.Fatal(err)
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	if d.Stats().ScrubRelocations == 0 {
		t.Fatal("no scrub relocations after a 2-minute retention gap")
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestWearSpreadBounded is the wear regression: across all GC policies
// and stream counts, the erase-count spread over non-retired blocks
// stays within the wear-leveling delta plus slack, and the device's
// free-pool bookkeeping survives (satellite: wear distribution sanity).
func TestWearSpreadBounded(t *testing.T) {
	const seed = 99
	for _, policy := range []string{"greedy", "cost-benefit", "fifo"} {
		for _, streams := range []int{1, 2} {
			t.Run(policy+"-"+string(rune('0'+streams)), func(t *testing.T) {
				cfg := testConfig()
				cfg.GCPolicy = policy
				cfg.GCStreams = streams
				cfg.WearDelta = 8
				d := newTestDevice(t, cfg, leaftl.New(4, cfg.Flash.PageSize, leaftl.WithCompactEvery(2000)))
				rng := seededRand(t, seed)
				span := d.LogicalPages()
				// Skewed overwrite churn: the worst case for wear spread.
				for i := 0; i < 30000; i++ {
					lpa := addr.LPA(rng.Intn(span / 8)) // hot eighth
					if rng.Float64() < 0.2 {
						lpa = addr.LPA(rng.Intn(span))
					}
					if _, err := d.Write(lpa, 1); err != nil {
						t.Fatalf("seed %d: %v", seed, err)
					}
				}
				if err := d.Flush(); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if err := d.CheckInvariants(); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				var minE, maxE uint32
				first := true
				for b := 0; b < cfg.Flash.Blocks(); b++ {
					if d.bad[b] {
						continue
					}
					e := d.arr.EraseCount(flash.BlockID(b))
					if first {
						minE, maxE = e, e
						first = false
					}
					if e < minE {
						minE = e
					}
					if e > maxE {
						maxE = e
					}
				}
				// The leveler moves one cold block per flush once the
				// spread passes WearDelta, while GC keeps erasing hot
				// blocks in the meantime — so the steady-state spread
				// overshoots the trigger threshold but stays within
				// twice it.
				if spread := maxE - minE; spread > 2*cfg.WearDelta {
					t.Errorf("seed %d: policy %s streams %d: erase spread %d exceeds 2×WearDelta %d (min %d max %d)",
						seed, policy, streams, spread, cfg.WearDelta, minE, maxE)
				}
				if d.Stats().WearMoves == 0 {
					t.Errorf("seed %d: policy %s streams %d: wear leveler never ran", seed, policy, streams)
				}
			})
		}
	}
}

// TestCrashHookRecover exercises the crash machinery end to end at the
// ssd layer: panic out of a crash hook mid-flush, recover into a fresh
// scheme, and check invariants plus full differential reads.
func TestCrashHookRecover(t *testing.T) {
	const seed = 11
	cfg := testConfig()
	d := newTestDevice(t, cfg, leaftl.New(4, cfg.Flash.PageSize, leaftl.WithCompactEvery(2000)))
	rng := seededRand(t, seed)
	span := d.LogicalPages()

	type crashMark struct{ point string }
	countdown := 3
	d.SetCrashHook(func(point string) {
		countdown--
		if countdown <= 0 {
			panic(crashMark{point})
		}
	})
	crashed := ""
	func() {
		defer func() {
			if r := recover(); r != nil {
				m, ok := r.(crashMark)
				if !ok {
					panic(r)
				}
				crashed = m.point
			}
		}()
		for i := 0; i < 20000; i++ {
			if _, err := d.Write(addr.LPA(rng.Intn(span)), 1); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		}
		t.Fatalf("seed %d: workload finished without reaching the crash countdown", seed)
	}()
	d.SetCrashHook(nil)
	if crashed == "" {
		t.Fatalf("seed %d: no crash point recorded", seed)
	}

	rep, err := d.Recover(leaftl.New(4, cfg.Flash.PageSize, leaftl.WithCompactEvery(2000)))
	if err != nil {
		t.Fatalf("seed %d: recover after crash at %q: %v", seed, crashed, err)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatalf("seed %d: after crash at %q: %v", seed, crashed, err)
	}
	tokens, _ := d.TruthSnapshot()
	for l, tok := range tokens {
		if tok == 0 {
			continue
		}
		if _, err := d.Read(addr.LPA(l), 1); err != nil {
			t.Fatalf("seed %d: post-recovery read of LPA %d (crash at %q): %v", seed, l, crashed, err)
		}
	}
	t.Logf("seed %d: crashed at %q, recovered %d mappings (%d restored) in %v",
		seed, crashed, rep.MappingsRebuilt, rep.MappingsRestored, rep.ScanTime)
}
