package ssd

import (
	"fmt"
	"testing"

	"leaftl/internal/addr"
	"leaftl/internal/ftl"
	"leaftl/internal/leaftl"
)

// TestDifferentialBudgetedLeaFTL replays one randomized GC-heavy
// workload through a mapping-budgeted LeaFTL device and an unlimited
// LeaFTL device per (policy, streams) combination and asserts the two
// stay bit-identical in host-visible data: demand paging the learned
// table may cost translation-page traffic, but must never change a
// translation. Invariants (including GMD consistency and the byte
// budget) are audited mid-run, and the budgeted device must actually
// fault and evict groups for the comparison to mean anything.
func TestDifferentialBudgetedLeaFTL(t *testing.T) {
	for _, policy := range GCPolicyNames() {
		for _, streams := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/streams%d", policy, streams), func(t *testing.T) {
				cfg := testConfig()
				cfg.GCPolicy = policy
				cfg.GCStreams = streams
				newScheme := func() *leaftl.Scheme {
					return leaftl.New(4, cfg.Flash.PageSize, leaftl.WithCompactEvery(2000))
				}
				devA := newTestDevice(t, cfg, newScheme()) // budgeted below
				devB := newTestDevice(t, cfg, newScheme()) // unlimited
				devs := []*Device{devA, devB}

				rng := seededRand(t, int64(len(policy)*100+streams))
				logical := devA.LogicalPages()

				// Warm phase: map a good chunk of the space so the learned
				// table has substance, then cap A at a quarter of it.
				for lpa := 0; lpa+8 <= logical/2; lpa += 8 {
					for _, d := range devs {
						if _, err := d.Write(addr.LPA(lpa), 8); err != nil {
							t.Fatal(err)
						}
					}
				}
				budget := devA.Scheme().FullSizeBytes() / 4
				devA.SetMappingBudget(budget)

				hot := logical / 5
				written := make(map[int]bool)
				for lpa := 0; lpa < logical/2; lpa++ {
					written[lpa] = true
				}
				for op := 0; op < 18000; op++ {
					lpa := rng.Intn(logical - 8)
					if rng.Intn(100) < 70 {
						lpa = rng.Intn(hot)
					}
					n := 1 + rng.Intn(8)
					if rng.Intn(100) < 60 {
						for _, d := range devs {
							if _, err := d.Write(addr.LPA(lpa), n); err != nil {
								t.Fatalf("op %d: write: %v", op, err)
							}
						}
						for j := 0; j < n; j++ {
							written[lpa+j] = true
						}
					} else if written[lpa] {
						for _, d := range devs {
							if _, err := d.Read(addr.LPA(lpa), 1); err != nil {
								t.Fatalf("op %d: read: %v", op, err)
							}
						}
					}
					if op%4000 == 3999 {
						for _, d := range devs {
							if err := d.CheckInvariants(); err != nil {
								t.Fatalf("op %d: %v", op, err)
							}
						}
						if m := devA.Scheme().MemoryBytes(); m > budget {
							t.Fatalf("op %d: budgeted mapping %dB exceeds %dB", op, m, budget)
						}
					}
				}
				for _, d := range devs {
					if err := d.Flush(); err != nil {
						t.Fatal(err)
					}
					if err := d.CheckInvariants(); err != nil {
						t.Fatal(err)
					}
					if d.Stats().GCErases == 0 {
						t.Fatal("workload did not exercise GC")
					}
				}
				if devA.Stats().MetaReads == 0 {
					t.Fatal("budgeted device never demand-loaded a group")
				}
				if devB.Stats().MetaReads != 0 {
					t.Fatalf("unlimited device charged %d mapping-miss reads", devB.Stats().MetaReads)
				}

				// Bit-identical host-visible data.
				for lpa := 0; lpa < logical; lpa++ {
					if devA.token[lpa] != devB.token[lpa] {
						t.Fatalf("LPA %d: budgeted token %#x != unlimited token %#x",
							lpa, devA.token[lpa], devB.token[lpa])
					}
				}
				for lpa := range written {
					for _, d := range devs {
						if _, err := d.Read(addr.LPA(lpa), 1); err != nil {
							t.Fatalf("final read %d: %v", lpa, err)
						}
					}
				}
			})
		}
	}
}

// TestPagedRecoveryRestoresGMD crashes a budgeted LeaFTL device whose
// maintenance has persisted translation pages and asserts recovery
// revives persisted groups straight from their GMD images — re-learning
// only the groups whose state was dirty at the crash — with every read
// verifying afterwards.
func TestPagedRecoveryRestoresGMD(t *testing.T) {
	cfg := testConfig()
	mk := func() *leaftl.Scheme {
		return leaftl.New(4, cfg.Flash.PageSize, leaftl.WithCompactEvery(500))
	}
	d := newTestDevice(t, cfg, mk())
	logical := d.LogicalPages()
	for lpa := 0; lpa+8 <= logical/2; lpa += 8 {
		if _, err := d.Write(addr.LPA(lpa), 8); err != nil {
			t.Fatal(err)
		}
	}
	d.SetMappingBudget(d.Scheme().FullSizeBytes() / 4)
	rng := seededRand(t, 21)
	for op := 0; op < 6000; op++ {
		if _, err := d.Write(addr.LPA(rng.Intn(logical/2)), 1+rng.Intn(4)); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	gp := d.Scheme().(ftl.GroupPaged)
	if len(gp.PersistedGroups()) == 0 {
		t.Fatal("no persisted groups before the crash; the test needs maintenance ticks")
	}

	rep, err := d.Recover(mk())
	if err != nil {
		t.Fatal(err)
	}
	if rep.GroupsRestored == 0 || rep.MappingsRestored == 0 {
		t.Fatalf("recovery restored nothing: %+v", rep)
	}
	if rep.TransPagesRestored == 0 {
		t.Fatalf("restored GMD references no translation pages: %+v", rep)
	}
	if rep.MappingsRebuilt+rep.MappingsRestored == 0 {
		t.Fatalf("empty recovery: %+v", rep)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for lpa := 0; lpa < logical/2; lpa += 7 {
		if _, err := d.Read(addr.LPA(lpa), 1); err != nil {
			t.Fatalf("post-recovery read %d: %v", lpa, err)
		}
	}
	// The recovered scheme still honors the budget it inherited.
	if m := d.Scheme().MemoryBytes(); d.MappingBudget() > 0 && m > d.MappingBudget() {
		t.Fatalf("recovered mapping %dB exceeds budget %dB", m, d.MappingBudget())
	}
}

// TestBudgetedShardedRunMatchesPlain extends the sharded-invisible
// contract to demand paging: a budgeted sharded LeaFTL device must
// produce the same translations, meta traffic and final data as the
// budgeted plain device for the same serialized workload.
func TestBudgetedShardedRunMatchesPlain(t *testing.T) {
	cfg := testConfig()
	devP := newTestDevice(t, cfg, leaftl.New(4, cfg.Flash.PageSize, leaftl.WithCompactEvery(2000)))
	devS := newTestDevice(t, cfg, leaftl.NewSharded(4, cfg.Flash.PageSize, 8, leaftl.WithCompactEvery(2000)))
	devs := []*Device{devP, devS}
	logical := devP.LogicalPages()
	for lpa := 0; lpa+8 <= logical/2; lpa += 8 {
		for _, d := range devs {
			if _, err := d.Write(addr.LPA(lpa), 8); err != nil {
				t.Fatal(err)
			}
		}
	}
	budget := devP.Scheme().FullSizeBytes() / 4
	devP.SetMappingBudget(budget)
	devS.SetMappingBudget(budget)

	rng := seededRand(t, 5)
	for op := 0; op < 12000; op++ {
		lpa := rng.Intn(logical / 2)
		if rng.Intn(100) < 55 {
			for _, d := range devs {
				if _, err := d.Write(addr.LPA(lpa), 1); err != nil {
					t.Fatal(err)
				}
			}
		} else {
			for _, d := range devs {
				if _, err := d.Read(addr.LPA(lpa), 1); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	for _, d := range devs {
		if err := d.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := d.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
	sp, ss := devP.Stats(), devS.Stats()
	if sp != ss {
		t.Fatalf("budgeted sharded stats diverge from plain:\nplain   %+v\nsharded %+v", sp, ss)
	}
	if sp.MetaReads == 0 {
		t.Fatal("budget never bound; the comparison is vacuous")
	}
	for lpa := 0; lpa < logical; lpa++ {
		if devP.token[lpa] != devS.token[lpa] {
			t.Fatalf("LPA %d: plain token %#x != sharded token %#x", lpa, devP.token[lpa], devS.token[lpa])
		}
	}
}
