package ssd

import (
	"testing"

	"leaftl/internal/addr"
	"leaftl/internal/leaftl"
)

// BenchmarkDeviceWrite measures the host write path (buffer insert plus
// amortized flush, learning and GC).
func BenchmarkDeviceWrite(b *testing.B) {
	cfg := testConfig()
	d, err := New(cfg, leaftl.New(0, cfg.Flash.PageSize))
	if err != nil {
		b.Fatal(err)
	}
	rng := seededRand(b, 1)
	logical := d.LogicalPages()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Write(addr.LPA(rng.Intn(logical-8)), 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDeviceRead measures the host read path (translation, flash
// model, cache maintenance).
func BenchmarkDeviceRead(b *testing.B) {
	cfg := testConfig()
	d, err := New(cfg, leaftl.New(0, cfg.Flash.PageSize))
	if err != nil {
		b.Fatal(err)
	}
	logical := d.LogicalPages()
	for lpa := 0; lpa+64 <= logical/2; lpa += 64 {
		if _, err := d.Write(addr.LPA(lpa), 64); err != nil {
			b.Fatal(err)
		}
	}
	if err := d.Flush(); err != nil {
		b.Fatal(err)
	}
	rng := seededRand(b, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Read(addr.LPA(rng.Intn(logical/2)), 1); err != nil {
			b.Fatal(err)
		}
	}
}
