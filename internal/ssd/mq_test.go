package ssd

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"leaftl/internal/addr"
	"leaftl/internal/leaftl"
)

// mqOp is one request of a generated multi-queue workload trace.
type mqOp struct {
	write   bool
	lpa     addr.LPA
	pages   int
	arrival time.Duration
}

// mqTrace generates a seeded mixed workload: write-heavy with a hot
// region (so flushes and GC trigger), reads over previously written
// LPAs, and bursty arrivals.
func mqTrace(rng *rand.Rand, logical, n int) []mqOp {
	ops := make([]mqOp, 0, n)
	written := make(map[int]bool)
	var arrival time.Duration
	hot := logical / 5
	for i := 0; i < n; i++ {
		arrival += time.Duration(rng.Intn(20)) * time.Microsecond
		lpa := rng.Intn(logical - 8)
		if rng.Intn(100) < 70 {
			lpa = rng.Intn(hot)
		}
		pages := 1 + rng.Intn(8)
		if rng.Intn(100) < 60 || !written[lpa] {
			for j := 0; j < pages; j++ {
				written[lpa+j] = true
			}
			ops = append(ops, mqOp{write: true, lpa: addr.LPA(lpa), pages: pages, arrival: arrival})
		} else {
			ops = append(ops, mqOp{write: false, lpa: addr.LPA(lpa), pages: 1, arrival: arrival})
		}
	}
	return ops
}

// counters returns s with its virtual-time durations zeroed: GC work and
// stall times depend on when requests run, which worker counts change;
// every remaining field counts state transitions, which they must not.
func counters(s Stats) Stats {
	s.GCTime = 0
	s.GCStall = 0
	s.MetaOverlap = 0
	return s
}

// TestMultiQueueDeterministic is the determinism harness of the
// multi-queue front end: one seeded trace replayed serially and through
// 1, 2, 4 and 8 queue pairs must leave bit-identical device state —
// same ground truth, PVT/BVC, free-pool order, buffer, GC and
// reliability bookkeeping (StateDigest), and the same transition
// counters — because the submission-order ticket makes worker scheduling
// invisible to state. The harness runs on every die geometry the sweep
// benchmarks: die-interleaved flush lanes and pipelined meta writes must
// stay as scheduling-invisible as the legacy single-die paths. Run it
// with -race: it is also the concurrency smoke over the queue/epoch
// machinery.
func TestMultiQueueDeterministic(t *testing.T) {
	for _, dies := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("dies%d", dies), func(t *testing.T) {
			cfg := testConfig()
			cfg.Flash.DiesPerChan = dies
			rng := seededRand(t, 71)
			mkScheme := func() *leaftl.Scheme {
				return leaftl.New(4, cfg.Flash.PageSize, leaftl.WithCompactEvery(2000))
			}
			var logical int
			{
				d := newTestDevice(t, cfg, mkScheme())
				logical = d.LogicalPages()
			}
			ops := mqTrace(rng, logical, 20000)

			// Serial baseline: the plain closed-loop device.
			serial := newTestDevice(t, cfg, mkScheme())
			for i, op := range ops {
				var err error
				if op.write {
					_, err = serial.Write(op.lpa, op.pages)
				} else {
					_, err = serial.Read(op.lpa, op.pages)
				}
				if err != nil {
					t.Fatalf("serial op %d: %v", i, err)
				}
			}
			if err := serial.CheckInvariants(); err != nil {
				t.Fatalf("serial invariants: %v", err)
			}
			wantDigest := serial.StateDigest()
			wantStats := counters(serial.Stats())
			if wantStats.GCErases == 0 {
				t.Fatal("trace did not exercise GC; determinism coverage too shallow")
			}

			workerCounts := []int{1, 2, 4, 8}
			if dies > 1 {
				workerCounts = []int{1, 4} // bound runtime; dies=1 keeps the full ladder
			}
			for _, workers := range workerCounts {
				t.Run(fmt.Sprintf("workers%d", workers), func(t *testing.T) {
					d := newTestDevice(t, cfg, mkScheme())
					mq := NewMultiQueue(d, MQConfig{Queues: workers, QueueDepth: 32, Batch: 8})
					for i, op := range ops {
						if err := mq.Submit(i%workers, op.write, op.lpa, op.pages, op.arrival); err != nil {
							t.Fatalf("submit %d: %v", i, err)
						}
					}
					if err := mq.Drain(); err != nil {
						t.Fatalf("drain: %v", err)
					}
					if err := mq.FirstError(); err != nil {
						t.Fatal(err)
					}
					if err := d.CheckInvariants(); err != nil {
						t.Fatalf("invariants: %v", err)
					}
					if got := d.StateDigest(); got != wantDigest {
						t.Errorf("state digest %#x != serial %#x: worker count changed device state", got, wantDigest)
					}
					if got := counters(d.Stats()); got != wantStats {
						t.Errorf("counters diverged from serial:\n got %+v\nwant %+v", got, wantStats)
					}
					ms := mq.MQStats()
					if ms.Completed != uint64(len(ops)) || ms.Submitted != uint64(len(ops)) {
						t.Errorf("front end saw %d/%d of %d requests", ms.Completed, ms.Submitted, len(ops))
					}
					// Attribution: per-queue splits must sum to the device's host
					// request counters ("same totals modulo attribution").
					var reqs uint64
					for _, qs := range ms.PerQueue {
						reqs += qs.Requests
					}
					st := d.Stats()
					if reqs != st.HostReadReqs+st.HostWriteReqs {
						t.Errorf("per-queue requests sum %d != host requests %d", reqs, st.HostReadReqs+st.HostWriteReqs)
					}
					if ms.Frontier > ms.Horizon {
						t.Errorf("epoch frontier %v ahead of horizon %v", ms.Frontier, ms.Horizon)
					}
				})
			}
		})
	}
}

// TestMultiQueueRaceStress hammers one shared device through 4 queue
// pairs from 4 concurrent submitter goroutines mixing reads, writes and
// flushes. There is nothing deterministic about the interleaving — the
// point is the -race detector over the submit/ticket/epoch machinery,
// plus the post-drain audit: no torn stats (per-queue attribution sums
// to the device counters, every submission completed) and no invariant
// violations.
func TestMultiQueueRaceStress(t *testing.T) {
	cfg := testConfig()
	d := newTestDevice(t, cfg, leaftl.New(4, cfg.Flash.PageSize, leaftl.WithCompactEvery(2000)))
	logical := d.LogicalPages()
	const queues = 4
	const perQueue = 4000
	mq := NewMultiQueue(d, MQConfig{Queues: queues, QueueDepth: 16, Batch: 8})

	var wg sync.WaitGroup
	errs := make([]error, queues)
	for q := 0; q < queues; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + q)))
			var arrival time.Duration
			for i := 0; i < perQueue; i++ {
				arrival += time.Duration(rng.Intn(30)) * time.Microsecond
				var err error
				switch {
				case rng.Intn(200) == 0:
					err = mq.SubmitOp(q, OpFlush, 0, 0, arrival)
				case rng.Intn(100) < 60:
					err = mq.Submit(q, true, addr.LPA(rng.Intn(logical-8)), 1+rng.Intn(8), arrival)
				default:
					err = mq.Submit(q, false, addr.LPA(rng.Intn(logical)), 1, arrival)
				}
				if err != nil {
					errs[q] = fmt.Errorf("queue %d op %d: %w", q, i, err)
					return
				}
			}
		}(q)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := mq.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if err := mq.FirstError(); err != nil {
		t.Fatal(err)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatalf("invariants after concurrent hammering: %v", err)
	}
	ms := mq.MQStats()
	if ms.Submitted != queues*perQueue || ms.Completed != queues*perQueue {
		t.Errorf("submitted %d completed %d, want %d", ms.Submitted, ms.Completed, queues*perQueue)
	}
	var reads, writes, flushes uint64
	for q, qs := range ms.PerQueue {
		if qs.Requests != perQueue {
			t.Errorf("queue %d served %d requests, want %d", q, qs.Requests, perQueue)
		}
		reads += qs.Reads
		writes += qs.Writes
		flushes += qs.Flushes
	}
	st := d.Stats()
	if reads != st.HostReadReqs || writes != st.HostWriteReqs {
		t.Errorf("torn stats: per-queue reads/writes %d/%d != device %d/%d",
			reads, writes, st.HostReadReqs, st.HostWriteReqs)
	}
	if reads+writes+flushes != queues*perQueue {
		t.Errorf("per-queue op split %d+%d+%d != %d", reads, writes, flushes, queues*perQueue)
	}
	if st.GCErases == 0 {
		t.Error("stress load did not exercise GC")
	}
}

// TestMultiQueueSingleMatchesSimulatedQueue pins the replay equivalence
// the QueueDevice arm of ReplayOpenLoop relies on: one real queue pair
// produces the exact schedule the simulated single-queue open loop
// computes — same per-request start and completion times, not just the
// same state.
func TestMultiQueueSingleMatchesSimulatedQueue(t *testing.T) {
	cfg := testConfig()
	rng := seededRand(t, 23)
	mk := func() *Device {
		return newTestDevice(t, cfg, leaftl.New(4, cfg.Flash.PageSize, leaftl.WithCompactEvery(2000)))
	}
	sim := mk()
	ops := mqTrace(rng, sim.LogicalPages(), 6000)

	// Simulated single host queue, as ReplayOpenLoop's fallback arm runs it.
	var simEnd time.Duration
	var free time.Duration
	for i, op := range ops {
		start := op.arrival
		if free > start {
			start = free
		}
		sim.AdvanceTo(start)
		var service time.Duration
		var err error
		if op.write {
			service, err = sim.Write(op.lpa, op.pages)
		} else {
			service, err = sim.Read(op.lpa, op.pages)
		}
		if err != nil {
			t.Fatalf("sim op %d: %v", i, err)
		}
		free = start + service
		if free > simEnd {
			simEnd = free
		}
	}

	d := mk()
	mq := NewMultiQueue(d, MQConfig{Queues: 1})
	for i, op := range ops {
		if err := mq.Submit(0, op.write, op.lpa, op.pages, op.arrival); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if err := mq.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := mq.FirstError(); err != nil {
		t.Fatal(err)
	}
	var i int
	mq.Completions(0, func(write bool, arrival, start, complete time.Duration, err error) {
		_ = write
		i++
	})
	if i != len(ops) {
		t.Fatalf("completions: %d of %d", i, len(ops))
	}
	if got := mq.MQStats().Horizon; got != simEnd {
		t.Errorf("one-queue horizon %v != simulated makespan %v", got, simEnd)
	}
	if got, want := d.StateDigest(), sim.StateDigest(); got != want {
		t.Errorf("one-queue state digest %#x != simulated %#x", got, want)
	}
}

// TestMultiQueueCrashAbort installs a crash hook that panics mid-run
// (the crash-torture sentinel pattern) and verifies the front end's
// containment contract: the panic is re-thrown from Drain on the
// draining goroutine, in-flight requests on other queues are stamped
// aborted without touching the device, and the device afterwards
// recovers to a state that passes its invariant audit.
func TestMultiQueueCrashAbort(t *testing.T) {
	cfg := testConfig()
	d := newTestDevice(t, cfg, leaftl.New(0, cfg.Flash.PageSize))
	logical := d.LogicalPages()
	type crashMark struct{ point string }
	countdown := 40
	d.SetCrashHook(func(point string) {
		countdown--
		if countdown == 0 {
			panic(crashMark{point})
		}
	})

	const queues = 4
	mq := NewMultiQueue(d, MQConfig{Queues: queues, QueueDepth: 8, Batch: 4})
	rng := seededRand(t, 91)
	// Submit until the crash aborts the front end (or the load runs out,
	// which would mean the hook never fired).
	var submitErr error
	for i := 0; i < 40000 && submitErr == nil; i++ {
		submitErr = mq.Submit(i%queues, true, addr.LPA(rng.Intn(logical-8)), 1+rng.Intn(8), 0)
	}
	if submitErr != ErrAborted {
		t.Fatalf("submit after crash: %v, want ErrAborted", submitErr)
	}

	var recovered any
	func() {
		defer func() { recovered = recover() }()
		_ = mq.Drain()
	}()
	mark, ok := recovered.(crashMark)
	if !ok {
		t.Fatalf("Drain re-threw %#v, want the crash sentinel", recovered)
	}
	if mark.point == "" {
		t.Fatal("crash sentinel lost its crash point")
	}
	// Aborted requests must be visibly aborted, not silently dropped.
	var aborted int
	for q := 0; q < queues; q++ {
		mq.Completions(q, func(write bool, arrival, start, complete time.Duration, err error) {
			if err == ErrAborted {
				aborted++
			}
		})
	}
	if aborted == 0 {
		t.Error("no request was stamped aborted despite a mid-run crash")
	}

	d.SetCrashHook(nil)
	if _, err := d.Recover(leaftl.New(0, cfg.Flash.PageSize)); err != nil {
		t.Fatalf("recover after multi-queue crash: %v", err)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatalf("invariants after recovery: %v", err)
	}
}

// TestMultiQueueEpochClock covers the phase coordinator's merge
// semantics directly.
func TestMultiQueueEpochClock(t *testing.T) {
	c := newEpochClock(3)
	c.publish(0, 10*time.Microsecond)
	c.publish(1, 30*time.Microsecond)
	c.publish(2, 20*time.Microsecond)
	if got := c.Horizon(); got != 30*time.Microsecond {
		t.Errorf("horizon %v, want 30µs", got)
	}
	if got := c.Frontier(); got != 10*time.Microsecond {
		t.Errorf("frontier %v, want 10µs", got)
	}
	// A stale publish must not roll a worker's clock back.
	c.publish(1, 5*time.Microsecond)
	if got := c.Horizon(); got != 30*time.Microsecond {
		t.Errorf("horizon rolled back to %v", got)
	}
	if got := c.Epochs(); got != 4 {
		t.Errorf("epochs %d, want 4", got)
	}
}

// TestMultiQueueSeqTicket proves the ticket hands out the device in
// strict sequence order under adversarial goroutine scheduling.
func TestMultiQueueSeqTicket(t *testing.T) {
	tk := newSeqTicket()
	const n = 200
	order := make([]uint64, 0, n)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for seq := uint64(0); seq < n; seq++ {
		wg.Add(1)
		go func(seq uint64) {
			defer wg.Done()
			if !tk.wait(seq) {
				t.Errorf("seq %d aborted", seq)
				return
			}
			mu.Lock()
			order = append(order, seq)
			mu.Unlock()
			tk.done()
		}(seq)
	}
	wg.Wait()
	for i, seq := range order {
		if seq != uint64(i) {
			t.Fatalf("position %d applied seq %d", i, seq)
		}
	}
}
