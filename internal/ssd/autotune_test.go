package ssd

import (
	"testing"

	"leaftl/internal/addr"
	"leaftl/internal/core"
	"leaftl/internal/ftl"
	"leaftl/internal/leaftl"
)

// churnAutotune drives a device into a mispredicting steady state:
// irregular writes create approximate segments, then a read-heavy mixed
// phase generates misses for the feedback loop.
func churnAutotune(t *testing.T, d *Device, seed int64, ops int) {
	t.Helper()
	logical := d.LogicalPages()
	rng := seededRand(t, seed)
	// Fill the first half so reads hit mapped pages.
	for lpa := 0; lpa+8 <= logical/2; lpa += 8 {
		if _, err := d.Write(addr.LPA(lpa), 8); err != nil {
			t.Fatal(err)
		}
	}
	for op := 0; op < ops; op++ {
		if rng.Float64() < 0.35 {
			// Irregular scattered writes (learning-hostile).
			for i := 0; i < 8; i++ {
				if _, err := d.Write(addr.LPA(rng.Intn(logical/2)), 1); err != nil {
					t.Fatal(err)
				}
			}
			continue
		}
		base := rng.Intn(logical / 4)
		if _, err := d.Read(addr.LPA(base), 1+rng.Intn(4)); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
}

// TestAutotuneDeviceEndToEnd runs the full feedback loop on a real
// device — translation hints, speculative reads, repairs, retunes —
// and checks the misprediction resolution split, the per-group γ
// invariant, and device integrity throughout.
func TestAutotuneDeviceEndToEnd(t *testing.T) {
	cfg := testConfig()
	d := newTestDevice(t, cfg, leaftl.New(8, cfg.Flash.PageSize,
		leaftl.WithAutoTune(0.02), leaftl.WithCompactEvery(400)))
	churnAutotune(t, d, 7, 4000)

	st := d.Stats()
	if st.ApproxReads == 0 {
		t.Fatal("no approximate reads; the workload is not exercising the learned path")
	}
	if st.Mispredictions == 0 {
		t.Skip("workload produced no mispredictions at this seed")
	}
	if st.MissHintResolved+st.MissFallbacks != st.Mispredictions {
		t.Fatalf("resolution split %d+%d != mispredictions %d",
			st.MissHintResolved, st.MissFallbacks, st.Mispredictions)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	sch := d.Scheme().(*leaftl.Scheme)
	if mg := sch.MaxGroupGamma(); mg > 8 {
		t.Fatalf("per-group gamma %d exceeds global 8", mg)
	}
	demoted := 0
	for _, gt := range sch.Table().GroupTunes() {
		if gt.Gamma < 8 {
			demoted++
		}
	}
	if demoted == 0 {
		t.Error("controller demoted no group despite mispredictions")
	}
	// Every mapped page still reads back correctly.
	for lpa := 0; lpa < d.LogicalPages()/2; lpa += 11 {
		if _, err := d.Read(addr.LPA(lpa), 1); err != nil {
			t.Fatalf("read %d: %v", lpa, err)
		}
	}
}

// TestAutotuneRepairStopsRepeatMisses: once a costly miss is repaired,
// re-reading the same page translates exactly — a second identical read
// pass over the device adds no new costly mispredictions from pages
// already read (the LearnedFTL double-read elimination, end to end).
func TestAutotuneRepairStopsRepeatMisses(t *testing.T) {
	cfg := testConfig()
	// Starve the data cache so re-reads exercise translation, not DRAM:
	// DRAM barely exceeds the write buffer.
	cfg.DRAMBytes = cfg.BufferBytes() + 64<<10
	d := newTestDevice(t, cfg, leaftl.New(8, cfg.Flash.PageSize,
		leaftl.WithAutoTune(0.02), leaftl.WithCompactEvery(200)))
	churnAutotune(t, d, 11, 3000)
	if d.Stats().Mispredictions == 0 {
		t.Skip("no mispredictions at this seed")
	}

	// Pass 1: read a fixed span; costly misses get repaired on the way.
	span := d.LogicalPages() / 4
	pass := func() (costly uint64) {
		before := d.Stats().MissFallbacks
		for lpa := 0; lpa < span; lpa++ {
			if _, err := d.Read(addr.LPA(lpa), 1); err != nil {
				t.Fatal(err)
			}
		}
		return d.Stats().MissFallbacks - before
	}
	first := pass()
	second := pass()
	if second != 0 {
		t.Fatalf("second identical read pass still paid %d double reads (first pass: %d)", second, first)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestAutotuneShardedRunMatchesPlain extends the sharded-invisible
// contract to the adaptive controller: identical serialized workloads
// must produce identical translations, tune decisions, and stats on the
// plain and sharded autotuned devices.
func TestAutotuneShardedRunMatchesPlain(t *testing.T) {
	cfg := testConfig()
	devP := newTestDevice(t, cfg, leaftl.New(8, cfg.Flash.PageSize,
		leaftl.WithAutoTune(0.02), leaftl.WithCompactEvery(400)))
	devS := newTestDevice(t, cfg, leaftl.NewSharded(8, cfg.Flash.PageSize, 8,
		leaftl.WithAutoTune(0.02), leaftl.WithCompactEvery(400)))
	for _, d := range []*Device{devP, devS} {
		churnAutotune(t, d, 13, 3000)
	}
	sp, ss := devP.Stats(), devS.Stats()
	if sp != ss {
		t.Fatalf("stats diverged:\nplain   %+v\nsharded %+v", sp, ss)
	}
	tp := devP.Scheme().(*leaftl.Scheme).Table().GroupTunes()
	ts := devS.Scheme().(*leaftl.Sharded).Table().GroupTunes()
	if len(tp) != len(ts) {
		t.Fatalf("tune counts diverged: %d vs %d", len(tp), len(ts))
	}
	for i := range tp {
		if tp[i] != ts[i] {
			t.Fatalf("tune state diverged at %d: %+v vs %+v", i, tp[i], ts[i])
		}
	}
}

// TestAutotuneGammaSurvivesRecovery pins the acceptance criterion on
// the full device: per-group γs tuned before a crash come back
// bit-identically for every group the GMD restores.
func TestAutotuneGammaSurvivesRecovery(t *testing.T) {
	cfg := testConfig()
	mk := func() *leaftl.Scheme {
		return leaftl.New(8, cfg.Flash.PageSize,
			leaftl.WithAutoTune(0.02), leaftl.WithCompactEvery(300))
	}
	d := newTestDevice(t, cfg, mk())
	churnAutotune(t, d, 17, 4000)
	d.SetMappingBudget(d.Scheme().FullSizeBytes() / 3)
	// More traffic under the budget so groups cycle through flash.
	churnMore := seededRand(t, 18)
	for op := 0; op < 1500; op++ {
		if op%3 == 0 {
			if _, err := d.Write(addr.LPA(churnMore.Intn(d.LogicalPages()/2)), 1); err != nil {
				t.Fatal(err)
			}
		} else if _, err := d.Read(addr.LPA(churnMore.Intn(d.LogicalPages()/4)), 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}

	old := d.Scheme().(*leaftl.Scheme)
	persisted := old.PersistedGroups()
	if len(persisted) == 0 {
		t.Fatal("nothing persisted before the crash")
	}
	// The pre-crash γ of every persisted group, resident or evicted:
	// decode each image into a scratch table (a crash survivor would).
	want := map[addr.GroupID]int{}
	for gid, img := range persisted {
		scratch := core.NewTable(8)
		got, err := scratch.InstallGroup(img)
		if err != nil || got != gid {
			t.Fatalf("persisted image of group %d does not decode: %v", gid, err)
		}
		want[gid] = scratch.GroupGamma(gid)
	}

	rep, err := d.Recover(mk())
	if err != nil {
		t.Fatal(err)
	}
	if rep.GroupsRestored == 0 {
		t.Fatalf("no groups restored: %+v", rep)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Fault every restored group in and compare its γ (and hint state)
	// against the pre-crash value: the translation-page image carried it.
	fresh := d.Scheme().(*leaftl.Scheme)
	for lpa := 0; lpa < d.LogicalPages()/2; lpa += 3 {
		if _, err := d.Read(addr.LPA(lpa), 1); err != nil {
			t.Fatalf("post-recovery read %d: %v", lpa, err)
		}
	}
	checked := 0
	for _, gt := range fresh.Table().GroupTunes() {
		if _, ok := persisted[gt.Group]; !ok {
			continue // OOB-rebuilt group: relearned at the global bound
		}
		if w, ok := want[gt.Group]; ok {
			// Post-recovery reads advance counters, but γ itself must be
			// exactly what the image carried.
			if gt.Gamma != w {
				t.Fatalf("group %d recovered with gamma %d, want %d", gt.Group, gt.Gamma, w)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no restored group's gamma was checked; test is vacuous")
	}
}

var _ ftl.AdaptiveGamma = (*leaftl.Scheme)(nil)
