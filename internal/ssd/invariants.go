package ssd

import (
	"fmt"

	"leaftl/internal/addr"
	"leaftl/internal/flash"
	"leaftl/internal/ftl"
)

// CheckInvariants audits the device's bookkeeping against the simulator
// ground truth and returns the first violation found. It is an O(pages)
// sweep meant for tests (property and differential suites call it
// between workload phases); it performs no flash traffic and charges no
// simulated time.
//
// Checked invariants:
//   - PVT ↔ truth bijection: a valid page's OOB reverse mapping points
//     at an LPA whose truth entry points back, every mapped LPA's page
//     is valid and programmed, and no LPA owns two valid pages.
//   - BVC: each block's valid counter equals its PVT popcount.
//   - Free pool: the free list and isFree bitmap agree, free blocks
//     hold no valid pages, no allocation sequence, and appear once.
//   - Victim index: exactly the sealed allocated blocks are candidates,
//     each bucketed at its current valid count; open GC destination
//     streams and free blocks are absent.
//   - Bad blocks: never on the free list or open as a GC stream; a
//     retired block (bad, no allocation sequence) holds no valid pages
//     and sits in no structure at all.
//   - Lost LPAs: map to no page and hold no buffered data (a host
//     rewrite clears the flag before buffering).
//   - GC streams: open destinations are allocated, partially programmed
//     blocks.
//   - Write buffer: never exceeds its configured capacity.
//   - Demand-paged mapping: the scheme's GMD bookkeeping is internally
//     consistent, its resident state fits the mapping budget, and its
//     translation-block footprint fits the over-provisioned capacity.
//   - Adaptive γ: no group's effective error bound exceeds the global
//     bound the OOB reverse-mapping window was sized for.
//   - Predicted-exact bitmaps: every set bit's prediction lands on the
//     LPA's live page — the read path trusts set bits without OOB
//     verification, so a stale bit means silent wrong data.
func (d *Device) CheckInvariants() error {
	cfg := d.cfg.Flash

	if ag, ok := d.scheme.(ftl.AdaptiveGamma); ok {
		// The OOB reverse-mapping window is sized for the global error
		// bound; a group tuned past it could mispredict beyond recovery.
		if mg := ag.MaxGroupGamma(); mg > d.gamma {
			return fmt.Errorf("invariant: per-group gamma %d exceeds the global bound %d", mg, d.gamma)
		}
	}

	if ea, ok := d.scheme.(ftl.ExactAuditor); ok {
		// Every set predicted-exact bit must point at the live page: the
		// read path trusts it with no OOB verification, so a stale bit
		// would silently return wrong data. Unmapped and lost LPAs have no
		// live page — the oracle reports them absent and the audit skips
		// their bits (the next read of such an LPA fails before flash).
		truth := func(lpa addr.LPA) (addr.PPA, bool) {
			if int(lpa) >= d.logicalPages {
				return addr.InvalidPPA, false
			}
			ppa := d.truth[lpa]
			if ppa == addr.InvalidPPA || d.lost[lpa] {
				return addr.InvalidPPA, false
			}
			return ppa, true
		}
		if err := ea.AuditExact(truth); err != nil {
			return fmt.Errorf("invariant: %w", err)
		}
	}

	if gp, ok := d.scheme.(ftl.GroupPaged); ok {
		if err := gp.CheckMapping(); err != nil {
			return fmt.Errorf("invariant: %w", err)
		}
		op := cfg.TotalPages() - d.logicalPages
		if tp := gp.TranslationPages(); tp > op {
			return fmt.Errorf("invariant: %d translation pages exceed the %d-page over-provisioned capacity", tp, op)
		}
		if d.mapBudget > 0 && d.scheme.MemoryBytes() > d.mapBudget {
			return fmt.Errorf("invariant: mapping state %dB exceeds its %dB budget",
				d.scheme.MemoryBytes(), d.mapBudget)
		}
		if j, ok := d.scheme.(ftl.Journaled); ok && j.JournalEnabled() {
			// Chain consistency and per-block record liveness are audited
			// inside CheckMapping (the journal replays every chain and
			// recounts live records); here the journal's occupancy is held
			// against the device's flash accounting. One block of slack
			// covers the open tail block the cap check intentionally
			// excludes.
			js := j.JournalStats()
			if js.Pages != gp.TranslationPages() {
				return fmt.Errorf("invariant: journal reports %d pages, translation footprint %d",
					js.Pages, gp.TranslationPages())
			}
			maxPages := d.cfg.JournalPages
			if maxPages <= 0 {
				maxPages = op / 2
			}
			if js.Pages > maxPages+cfg.PagesPerBlock {
				return fmt.Errorf("invariant: journal footprint %d pages exceeds its %d-page cap (+1 open block)",
					js.Pages, maxPages)
			}
			if js.Blocks*cfg.PagesPerBlock != js.Pages {
				return fmt.Errorf("invariant: journal holds %d blocks of %d pages but reports %d pages",
					js.Blocks, cfg.PagesPerBlock, js.Pages)
			}
		}
	}

	// PVT ↔ ground truth.
	validPages := 0
	for p := 0; p < cfg.TotalPages(); p++ {
		ppa := addr.PPA(p)
		if !d.valid[ppa] {
			continue
		}
		validPages++
		if !d.arr.Written(ppa) {
			return fmt.Errorf("invariant: PPA %d valid but not programmed", ppa)
		}
		lpa := d.arr.Reverse(ppa)
		if lpa == addr.InvalidLPA {
			return fmt.Errorf("invariant: valid PPA %d has no OOB reverse mapping", ppa)
		}
		if int(lpa) >= d.logicalPages {
			return fmt.Errorf("invariant: valid PPA %d maps to out-of-range LPA %d", ppa, lpa)
		}
		if d.truth[lpa] != ppa {
			return fmt.Errorf("invariant: valid PPA %d claims LPA %d, but truth[%d] = %d (two valid PPAs for one LPA)",
				ppa, lpa, lpa, d.truth[lpa])
		}
	}
	mapped := 0
	for lpa, ppa := range d.truth {
		if ppa == addr.InvalidPPA {
			continue
		}
		mapped++
		if !d.valid[ppa] {
			return fmt.Errorf("invariant: LPA %d maps to PPA %d, which is not valid", lpa, ppa)
		}
	}
	if validPages != mapped {
		return fmt.Errorf("invariant: %d valid pages != %d mapped LPAs", validPages, mapped)
	}

	// BVC matches the PVT, block by block.
	for b := 0; b < cfg.Blocks(); b++ {
		count := 0
		first := cfg.FirstPPA(flash.BlockID(b))
		for i := 0; i < cfg.PagesPerBlock; i++ {
			if d.valid[first+addr.PPA(i)] {
				count++
			}
		}
		if count != d.bvc[b] {
			return fmt.Errorf("invariant: block %d BVC = %d, PVT count = %d", b, d.bvc[b], count)
		}
	}

	// Free pool bookkeeping.
	onList := make([]bool, cfg.Blocks())
	for _, b := range d.free {
		if onList[b] {
			return fmt.Errorf("invariant: block %d appears twice on the free list", b)
		}
		onList[b] = true
		if !d.isFree[b] {
			return fmt.Errorf("invariant: free-listed block %d not marked isFree", b)
		}
		if d.bvc[b] != 0 {
			return fmt.Errorf("invariant: free block %d holds %d valid pages", b, d.bvc[b])
		}
		if d.blockSeq[b] != 0 {
			return fmt.Errorf("invariant: free block %d has allocation sequence %d", b, d.blockSeq[b])
		}
	}
	for b := 0; b < cfg.Blocks(); b++ {
		if d.isFree[b] != onList[b] {
			return fmt.Errorf("invariant: block %d isFree=%v but free-listed=%v", b, d.isFree[b], onList[b])
		}
	}

	// Bad-block lifecycle: a bad block is either sealed awaiting
	// retirement (still allocated, still a victim candidate) or retired
	// (out of every structure); it must never be free or an open stream.
	for b := 0; b < cfg.Blocks(); b++ {
		if !d.bad[b] {
			continue
		}
		id := flash.BlockID(b)
		switch {
		case d.isFree[b]:
			return fmt.Errorf("invariant: bad block %d is on the free list", b)
		case d.isOpenDest(id):
			return fmt.Errorf("invariant: bad block %d is an open GC stream destination", b)
		case d.blockSeq[b] == 0 && d.bvc[b] != 0:
			return fmt.Errorf("invariant: retired block %d still holds %d valid pages", b, d.bvc[b])
		case d.blockSeq[b] == 0 && d.victims.Has(id):
			return fmt.Errorf("invariant: retired block %d is still a GC victim candidate", b)
		}
	}

	// Lost LPAs map nowhere and hold no buffered data.
	for l, lost := range d.lost {
		if !lost {
			continue
		}
		lpa := addr.LPA(l)
		if d.truth[lpa] != addr.InvalidPPA {
			return fmt.Errorf("invariant: lost LPA %d still maps to PPA %d", lpa, d.truth[lpa])
		}
		if _, ok := d.buffer[lpa]; ok {
			return fmt.Errorf("invariant: lost LPA %d has buffered data", lpa)
		}
	}

	// GC streams: open destinations are allocated and mid-block.
	for s, st := range d.streams {
		if !st.open {
			continue
		}
		switch {
		case d.isFree[st.block]:
			return fmt.Errorf("invariant: stream %d destination block %d is on the free list", s, st.block)
		case d.blockSeq[st.block] == 0:
			return fmt.Errorf("invariant: stream %d destination block %d has no allocation sequence", s, st.block)
		case st.next <= 0 || st.next >= cfg.PagesPerBlock:
			return fmt.Errorf("invariant: stream %d destination block %d open at page %d of %d",
				s, st.block, st.next, cfg.PagesPerBlock)
		}
	}

	// Flush lanes: open destinations are allocated, mid-block, on their
	// own die, and absent from the victim index until sealed.
	for lane, st := range d.flushLanes {
		if !st.open {
			continue
		}
		switch {
		case d.dieLanes == 1:
			return fmt.Errorf("invariant: flush lane open on a single-die geometry (block %d)", st.block)
		case d.isFree[st.block]:
			return fmt.Errorf("invariant: flush lane %d block %d is on the free list", lane, st.block)
		case d.blockSeq[st.block] == 0:
			return fmt.Errorf("invariant: flush lane %d block %d has no allocation sequence", lane, st.block)
		case st.next <= 0 || st.next >= cfg.PagesPerBlock:
			return fmt.Errorf("invariant: flush lane %d block %d open at page %d of %d",
				lane, st.block, st.next, cfg.PagesPerBlock)
		case d.victims.Has(st.block):
			return fmt.Errorf("invariant: open flush lane %d block %d already in the victim index", lane, st.block)
		}
	}

	// Victim index ↔ device state: candidates are exactly the sealed
	// allocated blocks, at their live valid counts.
	for b := 0; b < cfg.Blocks(); b++ {
		id := flash.BlockID(b)
		sealed := !d.isFree[b] && d.blockSeq[b] != 0 && !d.isOpenDest(id)
		switch {
		case sealed && !d.victims.Has(id):
			return fmt.Errorf("invariant: sealed block %d missing from the victim index", b)
		case !sealed && d.victims.Has(id):
			return fmt.Errorf("invariant: block %d in the victim index but free or open (isFree=%v seq=%d)",
				b, d.isFree[b], d.blockSeq[b])
		case sealed && d.victims.Valid(id) != d.bvc[b]:
			return fmt.Errorf("invariant: victim index holds block %d at %d valid pages, BVC says %d",
				b, d.victims.Valid(id), d.bvc[b])
		}
	}

	if len(d.buffer) > d.cfg.BufferPages {
		return fmt.Errorf("invariant: write buffer holds %d pages, capacity %d", len(d.buffer), d.cfg.BufferPages)
	}
	// The insertion-order log mirrors the buffer exactly: same size, no
	// duplicates, every entry buffered (flush layout depends on it).
	if len(d.bufOrder) != len(d.buffer) {
		return fmt.Errorf("invariant: buffer order log holds %d LPAs, buffer %d", len(d.bufOrder), len(d.buffer))
	}
	seen := make(map[addr.LPA]bool, len(d.bufOrder))
	for _, l := range d.bufOrder {
		if _, ok := d.buffer[l]; !ok {
			return fmt.Errorf("invariant: buffer order log names unbuffered LPA %d", l)
		}
		if seen[l] {
			return fmt.Errorf("invariant: buffer order log lists LPA %d twice", l)
		}
		seen[l] = true
	}
	return nil
}
