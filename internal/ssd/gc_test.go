package ssd

import (
	"testing"

	"leaftl/internal/addr"
	"leaftl/internal/flash"
	"leaftl/internal/leaftl"
)

// fillAndChurn writes the whole logical space once, then rewrites a hot
// slice until GC must run.
func fillAndChurn(t *testing.T, d *Device, churn int) {
	t.Helper()
	logical := d.LogicalPages()
	for lpa := 0; lpa+8 <= logical; lpa += 8 {
		if _, err := d.Write(addr.LPA(lpa), 8); err != nil {
			t.Fatal(err)
		}
	}
	rng := seededRand(t, 21)
	hot := logical / 4
	for i := 0; i < churn; i++ {
		if _, err := d.Write(addr.LPA(rng.Intn(hot)), 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestGCReclaimsAndPreservesData(t *testing.T) {
	cfg := testConfig()
	d := newTestDevice(t, cfg, leaftl.New(0, cfg.Flash.PageSize))
	fillAndChurn(t, d, 40000)

	st := d.Stats()
	if st.GCRuns == 0 || st.GCErases == 0 {
		t.Fatalf("GC never ran: %+v", st)
	}
	// The free pool must be back above the low watermark.
	low := int(cfg.GCLowWater * float64(cfg.Flash.Blocks()))
	if len(d.free) < low {
		t.Errorf("free blocks %d below low watermark %d after GC", len(d.free), low)
	}
	// Every logical page must still read back correctly (the device
	// verifies payload tokens internally).
	for lpa := 0; lpa < d.LogicalPages(); lpa += 7 {
		if _, err := d.Read(addr.LPA(lpa), 1); err != nil {
			t.Fatalf("read %d after GC: %v", lpa, err)
		}
	}
}

func TestGCAccounting(t *testing.T) {
	cfg := testConfig()
	d := newTestDevice(t, cfg, leaftl.New(0, cfg.Flash.PageSize))
	fillAndChurn(t, d, 40000)

	// BVC consistency: per-block valid counts must equal the PVT bitmap.
	for b := 0; b < cfg.Flash.Blocks(); b++ {
		count := 0
		first := cfg.Flash.FirstPPA(flash.BlockID(b))
		for i := 0; i < cfg.Flash.PagesPerBlock; i++ {
			if d.valid[first+addr.PPA(i)] {
				count++
			}
		}
		if count != d.bvc[b] {
			t.Fatalf("block %d: BVC %d, PVT count %d", b, d.bvc[b], count)
		}
	}
	// Exactly one valid page per written LPA.
	validPages := 0
	for _, v := range d.valid {
		if v {
			validPages++
		}
	}
	written := 0
	for _, ppa := range d.truth {
		if ppa != addr.InvalidPPA {
			written++
		}
	}
	if validPages != written {
		t.Errorf("valid pages %d != written LPAs %d", validPages, written)
	}
	if d.WAF() <= 1.0 {
		t.Errorf("churned workload WAF = %v, want > 1 (GC moves)", d.WAF())
	}
}

func TestGCVictimSelectionPrefersInvalid(t *testing.T) {
	cfg := testConfig()
	d := newTestDevice(t, cfg, leaftl.New(0, cfg.Flash.PageSize))
	// Fill sequentially, then invalidate one block's worth entirely by
	// rewriting the same LPAs.
	ppb := cfg.Flash.PagesPerBlock
	for lpa := 0; lpa < 4*ppb; lpa += 8 {
		if _, err := d.Write(addr.LPA(lpa), 8); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	for lpa := 0; lpa < ppb; lpa += 8 { // rewrite block 0's contents
		if _, err := d.Write(addr.LPA(lpa), 8); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	victim, ok := d.pickVictim()
	if !ok {
		t.Fatal("no victim")
	}
	if d.bvc[victim] != 0 {
		t.Errorf("victim block %d has %d valid pages; a fully-invalid block exists", victim, d.bvc[victim])
	}
}

func TestGCDestinationContinuesAcrossRuns(t *testing.T) {
	cfg := testConfig()
	cfg.GCStreams = 2
	d := newTestDevice(t, cfg, leaftl.New(0, cfg.Flash.PageSize))
	fillAndChurn(t, d, 60000)
	// An open GC destination block must never be selected as a victim.
	for _, st := range d.streams {
		if !st.open {
			continue
		}
		if v, ok := d.pickVictim(); ok && v == st.block {
			t.Error("GC destination chosen as victim")
		}
	}
}
