package ssd

import (
	"time"

	"leaftl/internal/addr"
)

// Op is a multi-queue submission opcode.
type Op uint8

const (
	// OpRead reads Pages pages starting at LPA.
	OpRead Op = iota
	// OpWrite writes Pages pages starting at LPA.
	OpWrite
	// OpFlush drains the write buffer, including a partial block.
	OpFlush
)

func (o Op) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpFlush:
		return "flush"
	default:
		return "op?"
	}
}

// SQE is one submission-queue entry. Seq is the global submission
// sequence the front end assigns — the apply order, and therefore the
// replayed history, regardless of which queue carries the entry.
// Arrival is the request's arrival time relative to the front end's
// attach point.
type SQE struct {
	Seq     uint64
	Op      Op
	LPA     addr.LPA
	Pages   int
	Arrival time.Duration
}

// CQE is the completion stamped for one SQE: when the request actually
// started (arrival plus any queue wait), when it completed on the
// device's virtual clock, and its error if it failed. Times are
// absolute device time; MultiQueue.Completions rebases them for
// callers working trace-relative.
type CQE struct {
	SQE
	Start    time.Duration
	Complete time.Duration
	Err      error
}

// QueuePair is one NVMe-style submission/completion queue pair, owned by
// exactly one worker. The submission side is a bounded ring (a channel);
// the completion side is stamped in apply order by the worker and read
// after Drain.
type QueuePair struct {
	id int
	sq chan SQE
	cq []CQE
}

// ID returns the pair's index.
func (q *QueuePair) ID() int { return q.id }

// Depth returns the submission ring's capacity.
func (q *QueuePair) Depth() int { return cap(q.sq) }
