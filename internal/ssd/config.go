package ssd

import (
	"fmt"
	"time"

	"leaftl/internal/flash"
)

// MappingMode selects how the SSD DRAM is split between the mapping
// structures and the data cache (the two settings of paper §4.2).
type MappingMode int

const (
	// MappingFirst gives the mapping structures as much DRAM as they ask
	// for (up to all of it minus the write buffer); the data cache gets
	// the leftovers. This is Figure 16 (a): "DRAM mainly used for the
	// address mapping table".
	MappingFirst MappingMode = iota
	// MappingCapped caps mapping structures at CapFraction of DRAM,
	// guaranteeing the rest for data caching. This is Figure 16 (b):
	// "up to 80% for the address mapping table".
	MappingCapped
)

func (m MappingMode) String() string {
	if m == MappingCapped {
		return "capped"
	}
	return "mapping-first"
}

// Config configures one simulated SSD.
type Config struct {
	Flash flash.Config

	// DRAMBytes is the controller DRAM shared by the mapping structures,
	// the write buffer and the data cache (Table 1: 1GB at full scale).
	DRAMBytes int64

	// OverProvision is the fraction of raw capacity hidden from the
	// host (Table 1: 20%).
	OverProvision float64

	// BufferPages sizes the write data buffer, in pages. It must be a
	// multiple of the flash block size so flushes always fill whole
	// blocks. The paper's default is 8MB (§3.3).
	BufferPages int

	// SortBuffer enables sorting buffered pages by LPA before a flush
	// (§3.3). Disabling it is the paper's implicit baseline in Figure 7
	// and our buffer-sort ablation.
	SortBuffer bool

	// Mode and CapFraction control the DRAM split (see MappingMode).
	Mode        MappingMode
	CapFraction float64

	// CacheHitLatency is the service time of a request satisfied from
	// DRAM (buffer or data cache).
	CacheHitLatency time.Duration

	// GCLowWater triggers garbage collection when the free-block
	// fraction drops below it; GC runs until GCHighWater is restored
	// (§3.6: modern SSDs trigger at 15–40% free).
	GCLowWater  float64
	GCHighWater float64

	// WearDelta is the erase-count spread between the most- and
	// least-worn blocks that triggers a cold-block migration (§3.6).
	WearDelta uint32

	// GCPolicy selects the garbage-collection victim policy: "greedy"
	// (the default, also selected by ""), "cost-benefit" (age-weighted
	// utilization, the LFS formula), or "fifo" (oldest sealed block
	// first). See GCPolicyByName.
	GCPolicy string

	// GCStreams is the number of hot/cold GC destination streams
	// (0 or 1 = the single-destination historical behaviour). With N
	// streams, relocated pages are split into N exponential
	// update-recency bands, so hot rewrites stop polluting cold blocks.
	// Each open stream pins one block out of the free pool.
	GCStreams int

	// ScrubDisturbReads triggers read-reclaim scrubbing: a sealed block
	// whose read count since its last erase reaches this threshold is
	// relocated through the GC streams before read disturb accumulates
	// into uncorrectable errors. 0 disables disturb-driven scrubbing.
	ScrubDisturbReads uint32

	// ScrubRetentionAge triggers retention scrubbing: a sealed block
	// whose oldest page has sat programmed for this long is relocated
	// (refreshing its charge) at the next flush. 0 disables
	// retention-driven scrubbing.
	ScrubRetentionAge time.Duration

	// JournalPages caps the mapping-delta journal's flash footprint, in
	// pages, when the scheme journals metadata (ftl.Journaled with the
	// journal enabled). Crossing the cap triggers journal GC: the lowest-
	// live-record translation block is reclaimed by folding its live
	// chains into fresh base images. 0 sizes the journal to half the
	// over-provisioned capacity.
	JournalPages int

	// Shards selects how many ways the translation scheme's mapping core
	// is partitioned for concurrent translation (0 or 1 = unsharded).
	// The closed-loop device serializes requests either way — sharding
	// matters to parallel front-ends (leaftl-bench's parallel replay
	// mode) and costs nothing when idle; translations are bit-identical
	// to the unsharded core.
	Shards int
}

// SimulatorConfig returns the paper's simulator setup (Table 1) with
// capacity and DRAM scaled down proportionally (DESIGN.md §5): 4KB pages,
// 16 channels, 256 pages/block, 20% over-provisioning, 8MB write buffer.
func SimulatorConfig() Config {
	return Config{
		Flash:           flash.SimulatorDefaults(),
		DRAMBytes:       64 << 20,
		OverProvision:   0.20,
		BufferPages:     2048, // 8MB of 4KB pages
		SortBuffer:      true,
		Mode:            MappingFirst,
		CapFraction:     0.8,
		CacheHitLatency: time.Microsecond,
		GCLowWater:      0.0625,
		GCHighWater:     0.125,
		WearDelta:       64,
	}
}

// PrototypeConfig returns the real-SSD prototype setup (§3.9: 16KB
// pages, 16 channels, 256 pages/block).
func PrototypeConfig() Config {
	c := SimulatorConfig()
	c.Flash = flash.PrototypeDefaults()
	c.BufferPages = 512 // 8MB of 16KB pages
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if err := c.Flash.Validate(); err != nil {
		return err
	}
	switch {
	case c.DRAMBytes <= 0:
		return fmt.Errorf("ssd: DRAMBytes = %d, must be positive", c.DRAMBytes)
	case c.OverProvision < 0 || c.OverProvision >= 0.9:
		return fmt.Errorf("ssd: OverProvision = %v out of range [0, 0.9)", c.OverProvision)
	case c.BufferPages <= 0 || c.BufferPages%c.Flash.PagesPerBlock != 0:
		return fmt.Errorf("ssd: BufferPages = %d must be a positive multiple of PagesPerBlock = %d",
			c.BufferPages, c.Flash.PagesPerBlock)
	case c.GCLowWater <= 0 || c.GCHighWater <= c.GCLowWater || c.GCHighWater >= 1:
		return fmt.Errorf("ssd: GC watermarks (%v, %v) must satisfy 0 < low < high < 1",
			c.GCLowWater, c.GCHighWater)
	case c.CapFraction <= 0 || c.CapFraction > 1:
		return fmt.Errorf("ssd: CapFraction = %v out of range (0, 1]", c.CapFraction)
	case c.Shards < 0 || c.Shards > 1024:
		return fmt.Errorf("ssd: Shards = %d out of range [0, 1024]", c.Shards)
	case c.GCStreams < 0 || c.GCStreams > 16:
		return fmt.Errorf("ssd: GCStreams = %d out of range [0, 16]", c.GCStreams)
	case c.ScrubRetentionAge < 0:
		return fmt.Errorf("ssd: ScrubRetentionAge = %v must not be negative", c.ScrubRetentionAge)
	case c.JournalPages < 0:
		return fmt.Errorf("ssd: JournalPages = %d must not be negative", c.JournalPages)
	}
	if _, err := GCPolicyByName(c.GCPolicy); err != nil {
		return err
	}
	if streams := c.GCStreams; streams > 1 && streams >= c.Flash.Blocks()/4 {
		return fmt.Errorf("ssd: GCStreams = %d would pin too much of the %d-block pool",
			streams, c.Flash.Blocks())
	}
	if int64(c.BufferPages)*int64(c.Flash.PageSize) >= c.DRAMBytes {
		return fmt.Errorf("ssd: write buffer (%d pages) does not fit in DRAM (%d bytes)",
			c.BufferPages, c.DRAMBytes)
	}
	return nil
}

// LogicalPages returns the host-visible capacity in pages.
func (c Config) LogicalPages() int {
	return int(float64(c.Flash.TotalPages()) * (1 - c.OverProvision))
}

// BufferBytes returns the write buffer's DRAM footprint.
func (c Config) BufferBytes() int64 {
	return int64(c.BufferPages) * int64(c.Flash.PageSize)
}
