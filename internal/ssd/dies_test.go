package ssd

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"leaftl/internal/addr"
	"leaftl/internal/dftl"
	"leaftl/internal/flash"
	"leaftl/internal/leaftl"
	"leaftl/internal/metrics"
)

// diesConfig returns the standard test device on a dies × planes
// geometry.
func diesConfig(dies, planes int) Config {
	cfg := testConfig()
	cfg.Flash.DiesPerChan = dies
	cfg.Flash.PlanesPerDie = planes
	return cfg
}

// TestDies1BitIdentity is the differential gate of the geometry PR: on
// the default one-die one-plane geometry the refactored flush/GC/meta
// paths must reproduce the pre-geometry device bit for bit — same state
// digest, same operation counters, same latency percentiles. The golden
// constants below were captured by running the identical scenarios at
// the commit immediately before the geometry refactor.
func TestDies1BitIdentity(t *testing.T) {
	// Scenario A: GC-heavy LeaFTL run; pins the state digest (ground
	// truth, PVT/BVC, free-pool order, buffer, streams) and the GC/flush
	// counters. The digest hashes no virtual-time field, so it is immune
	// to the (intentional) meta-timing bugfixes in this PR.
	t.Run("state", func(t *testing.T) {
		cfg := testConfig()
		d := newTestDevice(t, cfg, leaftl.New(4, cfg.Flash.PageSize, leaftl.WithCompactEvery(2000)))
		rng := seededRand(t, 911)
		ops := mqTrace(rng, d.LogicalPages(), 20000)
		for i, op := range ops {
			var err error
			if op.write {
				_, err = d.Write(op.lpa, op.pages)
			} else {
				_, err = d.Read(op.lpa, op.pages)
			}
			if err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
		}
		if err := d.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := d.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		st := d.Stats()
		if st.GCErases == 0 {
			t.Fatal("scenario exercised no GC; identity coverage too shallow")
		}
		if got, want := st.GCErases, uint64(2189); got != want {
			t.Errorf("GCErases = %d, want golden %d", got, want)
		}
		if got, want := st.FlushedBlocks, uint64(841); got != want {
			t.Errorf("FlushedBlocks = %d, want golden %d", got, want)
		}
		if got, want := d.StateDigest(), uint64(0x325db73a8ae79134); got != want {
			t.Errorf("state digest %#x, want golden %#x: one-die state drifted from the pre-geometry device", got, want)
		}
	})

	// Scenario B: GC-free, meta-free DFTL timing run; pins the latency
	// histograms and flash counters. Chosen to produce zero MetaReads/
	// MetaWrites and zero erases so it is independent of all three timing
	// bugfixes in this PR — any drift here is an unintended timing change.
	t.Run("timing", func(t *testing.T) {
		cfg := testConfig()
		d := newTestDevice(t, cfg, dftl.New(cfg.Flash.PageSize, 1<<20))
		logical := d.LogicalPages()
		for lpa := 0; lpa < logical; lpa += 8 {
			n := 8
			if lpa+n > logical {
				n = logical - lpa
			}
			if _, err := d.WriteAt(addr.LPA(lpa), n, d.Now()); err != nil {
				t.Fatal(err)
			}
		}
		if err := d.Flush(); err != nil {
			t.Fatal(err)
		}
		d.AdvanceTo(d.Now() + 10*time.Second)
		d.ResetMetrics()

		rng := seededRand(t, 523)
		now := d.Now()
		var writes int
		for i := 0; i < 4000; i++ {
			now += time.Duration(rng.Intn(30)) * time.Microsecond
			lpa := addr.LPA(rng.Intn(logical - 8))
			var err error
			if writes < 480 && rng.Intn(100) < 12 {
				n := 1 + rng.Intn(4)
				writes += n
				_, err = d.WriteAt(lpa, n, now)
			} else {
				_, err = d.ReadAt(lpa, 1+rng.Intn(2), now)
			}
			if err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
		}
		if st := d.Stats(); st.GCRuns != 0 || st.MetaReads != 0 || st.MetaWrites != 0 {
			t.Fatalf("timing scenario no longer meta/GC-free: %+v", st)
		}
		fs := d.FlashStats()
		if fs.PageReads != 4804 || fs.PageWrites != 3520 || fs.BlockErases != 0 {
			t.Errorf("flash counters reads=%d writes=%d erases=%d, want golden 4804/3520/0",
				fs.PageReads, fs.PageWrites, fs.BlockErases)
		}
		if got, want := d.StateDigest(), uint64(0xd3240aac75f4f40b); got != want {
			t.Errorf("state digest %#x, want golden %#x", got, want)
		}
		wantRead := metrics.Summary{Count: 3806, Mean: 176046, P50: 215443, P95: 215443, P99: 215443, P999: 215443, Peak: 220000}
		if got := d.ReadLatency().Summary(); got != wantRead {
			t.Errorf("read latency drifted:\n got %+v\nwant %+v", got, wantRead)
		}
		wantWrite := metrics.Summary{Count: 194, Mean: 1077030, P50: 1000, P95: 1000, P99: 48696752, P999: 58997462, Peak: 59440000}
		if got := d.WriteLatency().Summary(); got != wantWrite {
			t.Errorf("write latency drifted:\n got %+v\nwant %+v", got, wantWrite)
		}
	})
}

// TestAllocBlockOnRandomizedAgainstReference mirrors the victim-index
// reference test for the die-matched allocator: random interleavings of
// die-targeted allocations and block returns must track a straightline
// reference model of the free LIFO (scan from the top for a die match,
// else take the top) exactly — same picks, same residual list order.
func TestAllocBlockOnRandomizedAgainstReference(t *testing.T) {
	cfg := diesConfig(4, 1)
	d := newTestDevice(t, cfg, leaftl.New(0, cfg.Flash.PageSize))
	rng := seededRand(t, 77)
	dies := cfg.Flash.Dies()

	ref := append([]flash.BlockID(nil), d.free...)
	var allocated []flash.BlockID
	for op := 0; op < 20000; op++ {
		if len(ref) > 4 && (len(allocated) == 0 || rng.Intn(2) == 0) {
			die := rng.Intn(dies+1) - 1 // -1 (don't care) .. dies-1
			got, err := d.allocBlockOn(die, 0)
			if err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
			idx := len(ref) - 1
			if die >= 0 {
				for i := len(ref) - 1; i >= 0; i-- {
					if cfg.Flash.DieOfBlock(ref[i]) == die {
						idx = i
						break
					}
				}
			}
			want := ref[idx]
			ref = append(ref[:idx], ref[idx+1:]...)
			if got != want {
				t.Fatalf("op %d: allocBlockOn(die %d) = block %d, reference %d", op, die, got, want)
			}
			if die >= 0 && cfg.Flash.DieOfBlock(want) == die && cfg.Flash.DieOfBlock(got) != die {
				t.Fatalf("op %d: die %d available but block %d (die %d) returned",
					op, die, got, cfg.Flash.DieOfBlock(got))
			}
			allocated = append(allocated, got)
		} else {
			// Return a random allocated block, as a GC erase would.
			i := rng.Intn(len(allocated))
			b := allocated[i]
			allocated = append(allocated[:i], allocated[i+1:]...)
			d.free = append(d.free, b)
			d.isFree[b] = true
			d.blockSeq[b] = 0
			ref = append(ref, b)
		}
		if len(d.free) != len(ref) {
			t.Fatalf("op %d: free list length %d, reference %d", op, len(d.free), len(ref))
		}
		for i := range ref {
			if d.free[i] != ref[i] {
				t.Fatalf("op %d: free list diverges at %d: %d vs %d", op, i, d.free[i], ref[i])
			}
		}
	}
}

// TestDieInterleavedFlush pins the flush striping layout: a full buffer
// flushed on a 4-die geometry lands round-robin across per-die lanes, in
// ascending page order within each lane, and the device still satisfies
// every invariant with its lanes left open.
func TestDieInterleavedFlush(t *testing.T) {
	cfg := diesConfig(4, 1)
	d := newTestDevice(t, cfg, leaftl.New(4, cfg.Flash.PageSize))
	lpas := make([]addr.LPA, 0, cfg.BufferPages)
	for i := 0; i < cfg.BufferPages; i++ {
		lpas = append(lpas, addr.LPA(i*3)) // distinct, in sorted order
	}
	for _, l := range lpas {
		if _, err := d.Write(l, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	sort.Slice(lpas, func(i, j int) bool { return lpas[i] < lpas[j] })
	fc := cfg.Flash
	lanePages := make(map[int][]addr.PPA)
	for i, l := range lpas {
		ppa := d.truth[l]
		if ppa == addr.InvalidPPA {
			t.Fatalf("LPA %d unmapped after flush", l)
		}
		lane := i % fc.Dies()
		if got := fc.DieOfBlock(fc.BlockOf(ppa)); got != lane {
			t.Errorf("sorted flush page %d (LPA %d) on die %d, want lane %d", i, l, got, lane)
		}
		lanePages[lane] = append(lanePages[lane], ppa)
	}
	for lane, pages := range lanePages {
		for i := 1; i < len(pages); i++ {
			if pages[i] <= pages[i-1] {
				t.Errorf("lane %d pages out of order: %d after %d", lane, pages[i], pages[i-1])
			}
		}
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Read-back through the learned mapping still verifies.
	for _, l := range lpas {
		if _, err := d.Read(l, 1); err != nil {
			t.Fatalf("read LPA %d: %v", l, err)
		}
	}
}

// TestDeviceWorkloadAcrossDies drives the full mixed workload (flush, GC,
// wear paths) on every geometry the die sweep benchmarks, checking the
// invariant audit and that GC actually ran.
func TestDeviceWorkloadAcrossDies(t *testing.T) {
	for _, geo := range [][2]int{{1, 1}, {2, 1}, {2, 2}, {4, 1}, {4, 2}} {
		t.Run(fmt.Sprintf("dies%d_planes%d", geo[0], geo[1]), func(t *testing.T) {
			cfg := diesConfig(geo[0], geo[1])
			d := newTestDevice(t, cfg, leaftl.New(4, cfg.Flash.PageSize, leaftl.WithCompactEvery(2000)))
			rng := seededRand(t, 1234)
			ops := mqTrace(rng, d.LogicalPages(), 8000)
			for i, op := range ops {
				var err error
				if op.write {
					_, err = d.Write(op.lpa, op.pages)
				} else {
					_, err = d.Read(op.lpa, op.pages)
				}
				if err != nil {
					t.Fatalf("op %d: %v", i, err)
				}
			}
			if err := d.Flush(); err != nil {
				t.Fatal(err)
			}
			if err := d.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			if d.Stats().GCErases == 0 {
				t.Fatal("workload exercised no GC")
			}
		})
	}
}

// TestMetaOverlapPipelined: on a multi-die geometry, translation-page
// writes complete behind the charging request and their wait accrues in
// MetaOverlap; with one die they serialize and the counter stays zero.
func TestMetaOverlapPipelined(t *testing.T) {
	run := func(dies int) Stats {
		cfg := diesConfig(dies, 1)
		sch := dftl.New(cfg.Flash.PageSize, 1<<20)
		d := newTestDevice(t, cfg, sch)
		d.SetMappingBudget(sch.FullSizeBytes() / 4)
		rng := seededRand(t, 99)
		logical := d.LogicalPages()
		for i := 0; i < 6000; i++ {
			var err error
			if rng.Intn(100) < 60 {
				_, err = d.Write(addr.LPA(rng.Intn(logical-8)), 1+rng.Intn(8))
			} else {
				_, err = d.Read(addr.LPA(rng.Intn(logical)), 1)
			}
			if err != nil {
				t.Fatal(err)
			}
		}
		if err := d.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		return d.Stats()
	}
	single := run(1)
	if single.MetaOverlap != 0 {
		t.Errorf("one-die MetaOverlap = %v, want 0 (meta writes serialize)", single.MetaOverlap)
	}
	multi := run(4)
	if multi.MetaWrites == 0 {
		t.Fatal("budgeted workload produced no translation-page writes")
	}
	if multi.MetaOverlap == 0 {
		t.Error("multi-die MetaOverlap = 0: translation-page writes not pipelined")
	}
}
