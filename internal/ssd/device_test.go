package ssd

import (
	"math/rand"
	"testing"
	"time"

	"leaftl/internal/addr"
	"leaftl/internal/dftl"
	"leaftl/internal/flash"
	"leaftl/internal/ftl"
	"leaftl/internal/leaftl"
	"leaftl/internal/sftl"
)

// testConfig returns a small device: 4 channels × 16 blocks × 64 pages
// (16MB of 4KB pages), 2MB DRAM, 1-block write buffer.
func testConfig() Config {
	return Config{
		Flash: flash.Config{
			Channels:      4,
			BlocksPerChan: 16,
			PagesPerBlock: 64,
			PageSize:      4096,
			OOBSize:       128,
			ReadLatency:   20 * time.Microsecond,
			WriteLatency:  200 * time.Microsecond,
			EraseLatency:  1500 * time.Microsecond,
		},
		DRAMBytes:       2 << 20,
		OverProvision:   0.25,
		BufferPages:     64,
		SortBuffer:      true,
		Mode:            MappingFirst,
		CapFraction:     0.8,
		CacheHitLatency: time.Microsecond,
		GCLowWater:      0.1,
		GCHighWater:     0.2,
		WearDelta:       1 << 30, // effectively off unless a test enables it
	}
}

func newTestDevice(t *testing.T, cfg Config, scheme ftl.Scheme) *Device {
	t.Helper()
	d, err := New(cfg, scheme)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// seededRand returns the deterministic RNG driving a randomized
// harness, and logs the seed when the test fails so the exact run can
// be reproduced.
func seededRand(t testing.TB, seed int64) *rand.Rand {
	t.Cleanup(func() {
		if t.Failed() {
			t.Logf("randomized harness seed: %d", seed)
		}
	})
	return rand.New(rand.NewSource(seed))
}

func schemesUnderTest(cfg Config, gamma int) map[string]func() ftl.Scheme {
	return map[string]func() ftl.Scheme{
		"LeaFTL": func() ftl.Scheme { return leaftl.New(gamma, cfg.Flash.PageSize, leaftl.WithCompactEvery(2000)) },
		"DFTL":   func() ftl.Scheme { return dftl.New(cfg.Flash.PageSize, 1<<20) },
		"SFTL":   func() ftl.Scheme { return sftl.New(cfg.Flash.PageSize, 1<<20) },
	}
}

func TestDeviceSequentialWriteRead(t *testing.T) {
	cfg := testConfig()
	for name, mk := range schemesUnderTest(cfg, 0) {
		t.Run(name, func(t *testing.T) {
			d := newTestDevice(t, cfg, mk())
			n := d.LogicalPages() / 2
			for lpa := 0; lpa < n; lpa += 8 {
				if _, err := d.Write(addr.LPA(lpa), 8); err != nil {
					t.Fatal(err)
				}
			}
			if err := d.Flush(); err != nil {
				t.Fatal(err)
			}
			for lpa := 0; lpa < n; lpa += 8 {
				if _, err := d.Read(addr.LPA(lpa), 8); err != nil {
					t.Fatal(err)
				}
			}
			st := d.Stats()
			if st.HostPagesWrite != uint64(n) || st.HostPagesRead != uint64(n) {
				t.Errorf("host pages: wrote %d read %d, want %d", st.HostPagesWrite, st.HostPagesRead, n)
			}
			if st.Mispredictions != 0 {
				t.Errorf("gamma=0 run had %d mispredictions", st.Mispredictions)
			}
		})
	}
}

// TestDeviceRandomWorkloadIntegrity hammers each scheme with a mixed
// random workload sized to force garbage collection several times over;
// the device self-verifies every read against ground-truth tokens, so
// completing without error is the integrity assertion.
func TestDeviceRandomWorkloadIntegrity(t *testing.T) {
	for _, gamma := range []int{0, 4} {
		cfg := testConfig()
		for name, mk := range schemesUnderTest(cfg, gamma) {
			if gamma > 0 && name != "LeaFTL" {
				continue
			}
			t.Run(name+"/"+gammaLabel(gamma), func(t *testing.T) {
				d := newTestDevice(t, cfg, mk())
				rng := seededRand(t, int64(7+gamma))
				logical := d.LogicalPages()
				written := make(map[int]bool)
				for i := 0; i < 30000; i++ {
					lpa := rng.Intn(logical - 16)
					n := 1 + rng.Intn(8)
					if rng.Intn(100) < 60 {
						if _, err := d.Write(addr.LPA(lpa), n); err != nil {
							t.Fatalf("op %d: write: %v", i, err)
						}
						for j := 0; j < n; j++ {
							written[lpa+j] = true
						}
					} else if written[lpa] {
						if _, err := d.Read(addr.LPA(lpa), 1); err != nil {
							t.Fatalf("op %d: read: %v", i, err)
						}
					}
				}
				if err := d.Flush(); err != nil {
					t.Fatal(err)
				}
				// Read back everything ever written.
				for lpa := range written {
					if _, err := d.Read(addr.LPA(lpa), 1); err != nil {
						t.Fatalf("final read %d: %v", lpa, err)
					}
				}
				st := d.Stats()
				if st.GCErases == 0 {
					t.Error("workload did not trigger GC; test is too small")
				}
				if waf := d.WAF(); waf < 1 {
					t.Errorf("WAF = %v < 1", waf)
				}
			})
		}
	}
}

func gammaLabel(g int) string {
	if g == 0 {
		return "gamma0"
	}
	return "gamma4"
}

func TestDeviceMispredictionRecovery(t *testing.T) {
	cfg := testConfig()
	d := newTestDevice(t, cfg, leaftl.New(8, cfg.Flash.PageSize))
	rng := seededRand(t, 3)
	logical := d.LogicalPages()
	// Irregular ascending writes create approximate segments.
	var lpas []int
	l := 0
	for l < logical-1 {
		l += 1 + rng.Intn(3)
		if l >= logical {
			break
		}
		lpas = append(lpas, l)
	}
	for _, lpa := range lpas {
		if _, err := d.Write(addr.LPA(lpa), 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, lpa := range lpas {
		if _, err := d.Read(addr.LPA(lpa), 1); err != nil {
			t.Fatal(err)
		}
	}
	st := d.Stats()
	if st.ApproxReads == 0 {
		t.Error("no reads were served by approximate segments")
	}
	t.Logf("approx reads %d, mispredictions %d, OOB fallbacks %d",
		st.ApproxReads, st.Mispredictions, st.OOBFallbacks)
}

func TestDeviceReadUnwritten(t *testing.T) {
	cfg := testConfig()
	d := newTestDevice(t, cfg, leaftl.New(0, cfg.Flash.PageSize))
	if _, err := d.Read(5, 1); err != nil {
		t.Fatal(err)
	}
	if d.Stats().UnmappedReads != 1 {
		t.Errorf("UnmappedReads = %d, want 1", d.Stats().UnmappedReads)
	}
}

func TestDeviceRangeChecks(t *testing.T) {
	cfg := testConfig()
	d := newTestDevice(t, cfg, leaftl.New(0, cfg.Flash.PageSize))
	if _, err := d.Write(addr.LPA(d.LogicalPages()-1), 2); err == nil {
		t.Error("write past capacity should fail")
	}
	if _, err := d.Read(0, 0); err == nil {
		t.Error("zero-length read should fail")
	}
}

func TestDeviceLatencyOrdering(t *testing.T) {
	// A cache hit must be far cheaper than a flash read, and a flash
	// read at least ReadLatency.
	cfg := testConfig()
	cfg.DRAMBytes = 1 << 20 // small cache
	d := newTestDevice(t, cfg, leaftl.New(0, cfg.Flash.PageSize))
	for i := 0; i < 256; i += 1 {
		if _, err := d.Write(addr.LPA(i), 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	lat1, err := d.Read(10, 1) // miss → flash
	if err != nil {
		t.Fatal(err)
	}
	lat2, err := d.Read(10, 1) // hit → DRAM
	if err != nil {
		t.Fatal(err)
	}
	if lat1 < cfg.Flash.ReadLatency {
		t.Errorf("flash-backed read latency %v < ReadLatency %v", lat1, cfg.Flash.ReadLatency)
	}
	if lat2 > lat1 {
		t.Errorf("cache hit (%v) slower than flash read (%v)", lat2, lat1)
	}
}

func TestDeviceWearLeveling(t *testing.T) {
	cfg := testConfig()
	cfg.WearDelta = 2
	d := newTestDevice(t, cfg, leaftl.New(0, cfg.Flash.PageSize))
	rng := seededRand(t, 11)
	hot := d.LogicalPages() / 8
	// Write a cold region once...
	for lpa := 0; lpa < d.LogicalPages()/2; lpa++ {
		if _, err := d.Write(addr.LPA(lpa), 1); err != nil {
			t.Fatal(err)
		}
	}
	// ...then hammer a hot region to skew erase counts.
	for i := 0; i < 60000; i++ {
		if _, err := d.Write(addr.LPA(rng.Intn(hot)), 1); err != nil {
			t.Fatal(err)
		}
	}
	if d.Stats().WearMoves == 0 {
		t.Error("wear leveling never triggered despite skewed erases")
	}
}

func TestDeviceRecovery(t *testing.T) {
	for _, gamma := range []int{0, 4} {
		t.Run(gammaLabel(gamma), func(t *testing.T) {
			cfg := testConfig()
			d := newTestDevice(t, cfg, leaftl.New(gamma, cfg.Flash.PageSize))
			rng := seededRand(t, 5)
			logical := d.LogicalPages()
			written := map[int]bool{}
			for i := 0; i < 20000; i++ {
				lpa := rng.Intn(logical - 8)
				n := 1 + rng.Intn(4)
				if _, err := d.Write(addr.LPA(lpa), n); err != nil {
					t.Fatal(err)
				}
				for j := 0; j < n; j++ {
					written[lpa+j] = true
				}
			}
			// Crash without flushing: buffered writes are lost, flushed
			// state must be fully recoverable.
			rep, err := d.Recover(leaftl.New(gamma, cfg.Flash.PageSize))
			if err != nil {
				t.Fatal(err)
			}
			if rep.MappingsRebuilt == 0 || rep.ScanTime == 0 {
				t.Errorf("empty recovery report: %+v", rep)
			}
			for lpa := range written {
				if _, err := d.Read(addr.LPA(lpa), 1); err != nil {
					t.Fatalf("post-recovery read %d: %v", lpa, err)
				}
			}
		})
	}
}

func TestConfigValidate(t *testing.T) {
	good := testConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := good
	bad.BufferPages = 63 // not a block multiple
	if err := bad.Validate(); err == nil {
		t.Error("BufferPages=63 accepted")
	}
	bad = good
	bad.DRAMBytes = 0
	if err := bad.Validate(); err == nil {
		t.Error("DRAMBytes=0 accepted")
	}
	bad = good
	bad.GCLowWater = 0.5
	bad.GCHighWater = 0.4
	if err := bad.Validate(); err == nil {
		t.Error("inverted GC watermarks accepted")
	}
}

func TestGammaTooLargeForOOB(t *testing.T) {
	cfg := testConfig()
	// OOB 128B → 32 entries → gamma ≤ 15.
	if _, err := New(cfg, leaftl.New(16, cfg.Flash.PageSize)); err == nil {
		t.Error("gamma=16 with 32 OOB entries should be rejected")
	}
	if _, err := New(cfg, leaftl.New(15, cfg.Flash.PageSize)); err != nil {
		t.Errorf("gamma=15 rejected: %v", err)
	}
}
