package ssd

import "time"

// Stats aggregates everything the evaluation reports about one run.
type Stats struct {
	// Host-visible traffic.
	HostReadReqs   uint64
	HostWriteReqs  uint64
	HostPagesRead  uint64
	HostPagesWrite uint64

	// Where reads were served.
	BufferHits    uint64
	CacheHits     uint64
	CacheMisses   uint64
	UnmappedReads uint64 // reads of never-written LPAs

	// Translation behaviour.
	MetaReads      uint64 // translation-page reads (DFTL/SFTL misses)
	MetaWrites     uint64 // translation-page writes (dirty evictions, table persistence)
	Mispredictions uint64 // LeaFTL approximate lookups that missed (§3.5)
	ApproxReads    uint64 // reads translated by approximate segments
	OOBFallbacks   uint64 // mispredictions not resolved by one OOB window read

	// Misprediction resolution split (adaptive-γ read path). A miss is
	// hint-resolved when the group's armed direction hint aimed the first
	// flash read straight at the true page — the §3.5 double read never
	// happens; it is a fallback when the OOB window (or the block-edge
	// probe loop) had to locate the page, costing at least one extra
	// read. MissHintResolved + MissFallbacks == Mispredictions.
	MissHintResolved uint64
	MissFallbacks    uint64

	// DoubleReads is the first-class count of §3.5 double reads: host
	// page reads whose *first* flash data read landed on the wrong page,
	// forcing at least one more flash read to fetch the right one. A
	// hint-resolved miss is not a double read (the speculative first read
	// was right); a hint that aimed the first read *away* from a correct
	// prediction is. DoubleReads ≤ Mispredictions + hint-misaimed hits.
	DoubleReads uint64

	// Predicted-exact bitmap read path (LearnedFTL-style). ExactBitHits
	// counts approximate translations served through a set exact bit —
	// one trusted flash read, no OOB verification probe budget reserved.
	// Relearns counts segment groups re-fitted by GC-time relearning
	// (Table.Relearn) from LPA-sorted relocation batches.
	ExactBitHits uint64
	Relearns     uint64

	// Background machinery.
	FlushedBlocks uint64
	GCRuns        uint64
	GCPagesMoved  uint64
	GCErases      uint64
	WearMoves     uint64

	// Reliability machinery (fault injection). HostUECCs are host reads
	// that failed with an uncorrectable data error (surfaced as
	// *UECCError — never as silently wrong data); OOBReconstructed are
	// corrupted reverse mappings rebuilt from a sibling page's OOB
	// window; ScrubRelocations are blocks refreshed by read-reclaim
	// (disturb or retention thresholds); RetiredBlocks are blocks taken
	// out of rotation after program/erase failures; GCDataLoss counts
	// pages whose payload was lost to UECC during relocation copy-out.
	HostUECCs        uint64
	OOBReconstructed uint64
	ScrubRelocations uint64
	RetiredBlocks    uint64
	GCDataLoss       uint64

	// GC timing. GCTime is total simulated time spent relocating blocks
	// in the background (GC reclaim and wear-leveling moves, copy-out
	// reads through the victim erase); GCStall is the share of
	// host-visible flush stalls attributable to waiting on that
	// in-flight work — the quantity behind GC-induced p99/p999 spikes
	// in open-loop replay. GCStall never exceeds GCTime.
	GCTime  time.Duration
	GCStall time.Duration

	// MetaOverlap is the simulated time translation-page writes spent
	// completing on their dies *after* the charging request had already
	// moved on — the map-op/data-op pipelining a multi-die geometry
	// buys. Always zero with one die per channel (meta writes then
	// serialize into the request).
	MetaOverlap time.Duration
}

// WAF returns the write amplification factor given the raw flash page
// writes observed by the array (paper Figure 25: actual / requested).
func (s Stats) WAF(flashPageWrites uint64) float64 {
	if s.HostPagesWrite == 0 {
		return 0
	}
	return float64(flashPageWrites) / float64(s.HostPagesWrite)
}

// CacheHitRatio returns the fraction of host page reads served from
// DRAM (buffer or data cache).
func (s Stats) CacheHitRatio() float64 {
	total := s.BufferHits + s.CacheHits + s.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.BufferHits+s.CacheHits) / float64(total)
}

// MispredictionRatio returns mispredictions per host page read
// (paper Figure 24).
func (s Stats) MispredictionRatio() float64 {
	if s.HostPagesRead == 0 {
		return 0
	}
	return float64(s.Mispredictions) / float64(s.HostPagesRead)
}

// DoubleReadRatio returns double reads per host page read — the §3.5
// wasted-flash-read rate the exactness bitmap attacks.
func (s Stats) DoubleReadRatio() float64 {
	if s.HostPagesRead == 0 {
		return 0
	}
	return float64(s.DoubleReads) / float64(s.HostPagesRead)
}

// ExactBitHitRatio returns the fraction of approximate reads served
// through a set predicted-exact bit (no verification budget).
func (s Stats) ExactBitHitRatio() float64 {
	if s.ApproxReads == 0 {
		return 0
	}
	return float64(s.ExactBitHits) / float64(s.ApproxReads)
}

// HintResolvedRatio returns the fraction of mispredictions the
// direction hint resolved without a second flash read.
func (s Stats) HintResolvedRatio() float64 {
	if s.Mispredictions == 0 {
		return 0
	}
	return float64(s.MissHintResolved) / float64(s.Mispredictions)
}

// MetaReadRatio returns translation-page reads per host page operation:
// the mapping-miss cost curve a DRAM-budget sweep plots. Reads miss in
// the mapping cache on lookups; budgeted commits miss when they land in
// paged-out groups, so both host directions are in the denominator.
func (s Stats) MetaReadRatio() float64 {
	ops := s.HostPagesRead + s.HostPagesWrite
	if ops == 0 {
		return 0
	}
	return float64(s.MetaReads) / float64(ops)
}

// MetaWAF returns translation-page writes per host page written — the
// metadata share of write amplification (dirty mapping evictions plus
// periodic table persistence).
func (s Stats) MetaWAF() float64 {
	if s.HostPagesWrite == 0 {
		return 0
	}
	return float64(s.MetaWrites) / float64(s.HostPagesWrite)
}
