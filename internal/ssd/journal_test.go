package ssd

import (
	"testing"

	"leaftl/internal/addr"
	"leaftl/internal/ftl"
	"leaftl/internal/leaftl"
)

// journalChurn ages a device into steady-state demand paging: warm half
// the logical space, clamp the mapping budget to a quarter of the
// learned table, then churn a hot region so dirty evictions — the
// metadata-persistence path the journal replaces — run throughout. The
// op mix mirrors churnBitIdentity's but with the budget applied, so
// MetaWrites are dominated by writebacks rather than maintenance sweeps.
func journalChurn(t *testing.T, d *Device) {
	t.Helper()
	rng := seededRand(t, 9021)
	logical := d.LogicalPages()
	for lpa := 0; lpa < logical/2; lpa += 8 {
		if _, err := d.Write(addr.LPA(lpa), 8); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	d.SetMappingBudget(d.Scheme().FullSizeBytes() / 4)

	hot := logical / 5
	for op := 0; op < 6000; op++ {
		switch {
		case op%5 < 2:
			lpa := rng.Intn(logical / 2)
			n := 1 + rng.Intn(3)
			if lpa+n > logical {
				n = logical - lpa
			}
			if _, err := d.Write(addr.LPA(lpa), n); err != nil {
				t.Fatal(err)
			}
		case op%5 == 2:
			for i := 0; i < 4; i++ {
				if _, err := d.Write(addr.LPA(rng.Intn(hot)), 1); err != nil {
					t.Fatal(err)
				}
			}
		default:
			lpa := rng.Intn(logical / 4)
			n := 1 + rng.Intn(4)
			if lpa+n > logical {
				n = logical - lpa
			}
			if _, err := d.Read(addr.LPA(lpa), n); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// journalChurnDevice builds the budgeted churn device for the journal
// bit-identity tests: γ=8 LeaFTL, compaction every 400 commits, plus
// any caller options (the journal toggle under test).
func journalChurnDevice(t *testing.T, opts ...leaftl.Option) *Device {
	t.Helper()
	cfg := testConfig()
	base := []leaftl.Option{leaftl.WithCompactEvery(400)}
	sch := leaftl.New(8, cfg.Flash.PageSize, append(base, opts...)...)
	return newTestDevice(t, cfg, sch)
}

// TestJournalOffBitIdentity pins the journal-off metadata path to the
// exact pre-journal behavior: with the option absent, the refactored
// pager must reproduce the image-mode device state digest and counters
// bit for bit. Goldens captured at the commit introducing the journal,
// on the unmodified predecessor tree.
func TestJournalOffBitIdentity(t *testing.T) {
	d := journalChurnDevice(t)
	journalChurn(t, d)

	const wantDigest = uint64(0xc2e8bbaea03b5c49)
	gotDigest := d.StateDigest()
	st := d.Stats()
	golden := []struct {
		name string
		got  uint64
		want uint64
	}{
		{"HostPagesRead", st.HostPagesRead, 5971},
		{"HostPagesWrite", st.HostPagesWrite, 11136},
		{"GCRuns", st.GCRuns, 16},
		{"GCPagesMoved", st.GCPagesMoved, 1312},
		{"GCErases", st.GCErases, 133},
		{"MetaReads", st.MetaReads, 4602},
		{"MetaWrites", st.MetaWrites, 1367},
		{"CacheHits", st.CacheHits, 2546},
		{"CacheMisses", st.CacheMisses, 3270},
	}
	if gotDigest != wantDigest {
		t.Errorf("state digest %#x, want %#x", gotDigest, wantDigest)
	}
	for _, g := range golden {
		if g.got != g.want {
			t.Errorf("%s = %d, want %d", g.name, g.got, g.want)
		}
	}
	var _ ftl.Scheme = d.Scheme()
}

// TestJournalDigestEquality runs the budgeted churn with the journal on
// and off and demands identical device state digests: journaling changes
// how metadata persistence is charged (delta appends instead of full
// image rewrites), never what any mapping resolves to. The journaled run
// must also actually journal — nonzero appends, bases and folds — and a
// sharded journaled scheme must land on the same digest as the plain one.
func TestJournalDigestEquality(t *testing.T) {
	off := journalChurnDevice(t)
	journalChurn(t, off)
	on := journalChurnDevice(t, leaftl.WithJournal())
	journalChurn(t, on)

	if got, want := on.StateDigest(), off.StateDigest(); got != want {
		t.Errorf("journal-on digest %#x != journal-off digest %#x", got, want)
	}

	j, ok := on.Scheme().(ftl.Journaled)
	if !ok || !j.JournalEnabled() {
		t.Fatal("journal option did not enable the journal")
	}
	js := j.JournalStats()
	if js.Appends == 0 {
		t.Error("journaled churn appended no delta records")
	}
	if js.Bases == 0 {
		t.Error("journaled churn wrote no base images")
	}
	if js.Folds == 0 {
		t.Error("journaled churn never folded a chain")
	}
	if js.Pages == 0 || js.Blocks == 0 {
		t.Errorf("journal reports empty footprint (%d pages, %d blocks) after churn", js.Pages, js.Blocks)
	}
	if js.MaxChain > 8 {
		t.Errorf("live chain of %d records exceeds the fold threshold", js.MaxChain)
	}

	cfg := testConfig()
	sharded := newTestDevice(t, cfg, leaftl.NewSharded(8, cfg.Flash.PageSize, 8,
		leaftl.WithCompactEvery(400), leaftl.WithJournal()))
	journalChurn(t, sharded)
	if got, want := sharded.StateDigest(), on.StateDigest(); got != want {
		t.Errorf("sharded journaled digest %#x != plain journaled digest %#x", got, want)
	}
	if sj := sharded.Scheme().(ftl.Journaled).JournalStats(); sj.Appends == 0 {
		t.Error("sharded journaled churn appended no delta records")
	}
}

// TestJournalGCCrashRecovery kills the device at the instant journal GC
// elects its first victim block — the hook fires before any fold or
// erase mutates the journal — then recovers into a fresh journaled
// scheme and differentially verifies every surviving mapping. The
// journal cap is squeezed to a single translation block so spilling into
// a second block forces GC quickly.
func TestJournalGCCrashRecovery(t *testing.T) {
	cfg := testConfig()
	cfg.JournalPages = cfg.Flash.PagesPerBlock
	newScheme := func() ftl.Scheme {
		return leaftl.New(8, cfg.Flash.PageSize, leaftl.WithCompactEvery(400), leaftl.WithJournal())
	}
	d := newTestDevice(t, cfg, newScheme())
	rng := seededRand(t, 4477)
	logical := d.LogicalPages()

	for lpa := 0; lpa < logical/2; lpa += 8 {
		if _, err := d.Write(addr.LPA(lpa), 8); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	d.SetMappingBudget(d.Scheme().FullSizeBytes() / 4)

	// Crash at a journal GC with at least one live delta chain (the very
	// first GC can fire while the journal is all base images — recovery
	// would have no tail to replay and the assertion below no teeth).
	type crashMark struct{ point string }
	j := d.Scheme().(ftl.Journaled)
	armed := true
	d.SetCrashHook(func(point string) {
		if armed && point == "journal.gc" && j.JournalStats().MaxChain > 0 {
			armed = false
			panic(crashMark{point})
		}
	})
	crashed := ""
	func() {
		defer func() {
			if r := recover(); r != nil {
				m, ok := r.(crashMark)
				if !ok {
					panic(r)
				}
				crashed = m.point
			}
		}()
		for i := 0; i < 60000; i++ {
			if _, err := d.Write(addr.LPA(rng.Intn(logical/2)), 1); err != nil {
				t.Fatal(err)
			}
		}
		t.Fatal("workload finished without triggering journal GC")
	}()
	d.SetCrashHook(nil)
	if crashed != "journal.gc" {
		t.Fatalf("crashed at %q, want journal.gc", crashed)
	}

	rep, err := d.Recover(newScheme())
	if err != nil {
		t.Fatalf("recover after mid-journal-GC crash: %v", err)
	}
	if rep.GroupsRestored == 0 {
		t.Error("recovery restored no journaled groups")
	}
	if rep.JournalDeltasReplayed == 0 {
		t.Error("recovery replayed no journal deltas")
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatalf("after mid-journal-GC crash recovery: %v", err)
	}
	tokens, _ := d.TruthSnapshot()
	for l, tok := range tokens {
		if tok == 0 {
			continue
		}
		if _, err := d.Read(addr.LPA(l), 1); err != nil {
			t.Fatalf("post-recovery read of LPA %d: %v", l, err)
		}
	}
	t.Logf("crashed at %q, restored %d groups, replayed %d deltas, re-learned %d mappings",
		crashed, rep.GroupsRestored, rep.JournalDeltasReplayed, rep.MappingsRebuilt)
}
