package ssd

import (
	"fmt"
	"sort"
	"time"

	"leaftl/internal/addr"
	"leaftl/internal/flash"
)

// gcState tracks the open destination block GC packs valid pages into
// across runs.
type gcState struct {
	open  bool
	block flash.BlockID
	next  int
}

// maybeGC runs garbage collection when the free pool drops below the low
// watermark, reclaiming until the high watermark (§3.6), then checks
// wear leveling.
func (d *Device) maybeGC(t time.Duration) error {
	blocks := d.cfg.Flash.Blocks()
	low := int(d.cfg.GCLowWater * float64(blocks))
	high := int(d.cfg.GCHighWater * float64(blocks))
	if len(d.free) >= low {
		return d.maybeWearLevel(t)
	}
	if err := d.runGC(t, high); err != nil {
		return err
	}
	return d.maybeWearLevel(t)
}

// runGC reclaims blocks until at least minFree are free. Victims are the
// blocks with the fewest valid pages (greedy policy, §3.6); their valid
// pages are read, re-sorted by LPA, packed into the GC destination block
// and re-learned by the scheme.
func (d *Device) runGC(t time.Duration, minFree int) error {
	d.stats.GCRuns++
	for len(d.free) < minFree {
		victim, ok := d.pickVictim()
		if !ok {
			return fmt.Errorf("ssd: GC found no victim (free=%d)", len(d.free))
		}
		if err := d.moveBlock(victim, t); err != nil {
			return err
		}
	}
	return nil
}

// pickVictim returns the allocated block with the fewest valid pages,
// excluding the open GC destination.
func (d *Device) pickVictim() (flash.BlockID, bool) {
	best := flash.BlockID(0)
	bestValid := -1
	for b := 0; b < d.cfg.Flash.Blocks(); b++ {
		id := flash.BlockID(b)
		if d.isFree[b] || d.blockSeq[b] == 0 {
			continue
		}
		if d.gc.open && id == d.gc.block {
			continue
		}
		if bestValid == -1 || d.bvc[b] < bestValid {
			best, bestValid = id, d.bvc[b]
		}
	}
	// A victim with every page valid frees nothing net of the moves;
	// refuse so the caller can error instead of looping.
	if bestValid == -1 || bestValid >= d.cfg.Flash.PagesPerBlock {
		return 0, false
	}
	return best, true
}

// moveBlock relocates a block's valid pages and erases it.
func (d *Device) moveBlock(victim flash.BlockID, t time.Duration) error {
	first := d.cfg.Flash.FirstPPA(victim)
	type moved struct {
		lpa addr.LPA
		tok uint64
	}
	var pages []moved
	for i := 0; i < d.cfg.Flash.PagesPerBlock; i++ {
		ppa := first + addr.PPA(i)
		if !d.valid[ppa] {
			continue
		}
		tok, lpa, done := d.arr.Read(ppa, t)
		_ = done
		pages = append(pages, moved{lpa: lpa, tok: tok})
	}
	// Sort by LPA so relocated runs stay learnable (§3.6: "place these
	// valid pages into the DRAM buffer, sort them by their LPAs, and
	// learn a new index segment").
	sort.Slice(pages, func(i, j int) bool { return pages[i].lpa < pages[j].lpa })

	var pairs []addr.Mapping
	flushPairs := func() {
		if len(pairs) == 0 {
			return
		}
		cost := d.scheme.Commit(pairs)
		d.chargeMeta(cost, t)
		pairs = nil
	}
	for _, pg := range pages {
		ppa, fresh, err := d.gcDest(t)
		if err != nil {
			return err
		}
		if fresh {
			// Destination block changed: PPAs would jump backwards or
			// across blocks, so commit the accumulated ascending run.
			flushPairs()
		}
		d.arr.Write(ppa, pg.lpa, pg.tok, t)
		d.invalidate(pg.lpa)
		d.truth[pg.lpa] = ppa
		d.valid[ppa] = true
		d.bvc[d.cfg.Flash.BlockOf(ppa)]++
		pairs = append(pairs, addr.Mapping{LPA: pg.lpa, PPA: ppa})
		d.stats.GCPagesMoved++
	}
	flushPairs()

	d.arr.Erase(victim, t)
	d.bvc[victim] = 0
	d.blockSeq[victim] = 0
	d.free = append(d.free, victim)
	d.isFree[victim] = true
	d.stats.GCErases++
	return nil
}

// gcDest returns the next destination PPA for a GC move, opening a new
// block when the current one fills. fresh reports a block switch.
func (d *Device) gcDest(t time.Duration) (addr.PPA, bool, error) {
	fresh := false
	if !d.gc.open || d.gc.next >= d.cfg.Flash.PagesPerBlock {
		if len(d.free) == 0 {
			return 0, false, fmt.Errorf("ssd: GC needs a destination block but none are free")
		}
		b := d.free[len(d.free)-1]
		d.free = d.free[:len(d.free)-1]
		d.isFree[b] = false
		d.nextSeq++
		d.blockSeq[b] = d.nextSeq
		d.gc = gcState{open: true, block: b, next: 0}
		fresh = true
	}
	ppa := d.cfg.Flash.FirstPPA(d.gc.block) + addr.PPA(d.gc.next)
	d.gc.next++
	return ppa, fresh, nil
}

// maybeWearLevel migrates the coldest block when the erase-count spread
// exceeds the configured delta (§3.6: throttle-and-swap; cold data moves
// so young blocks rejoin the hot rotation).
func (d *Device) maybeWearLevel(t time.Duration) error {
	if d.cfg.WearDelta == 0 {
		return nil
	}
	var (
		minErase, maxErase uint32
		coldest            flash.BlockID
		haveCold           bool
		first              = true
	)
	for b := 0; b < d.cfg.Flash.Blocks(); b++ {
		e := d.arr.EraseCount(flash.BlockID(b))
		if first {
			minErase, maxErase = e, e
			first = false
		}
		if e < minErase {
			minErase = e
		}
		if e > maxErase {
			maxErase = e
		}
		// Cold candidate: allocated, holds data, low erase count.
		if !d.isFree[b] && d.blockSeq[b] != 0 && d.bvc[b] > 0 &&
			(!d.gc.open || flash.BlockID(b) != d.gc.block) {
			if !haveCold || e < d.arr.EraseCount(coldest) {
				coldest = flash.BlockID(b)
				haveCold = true
			}
		}
	}
	if !haveCold || maxErase-minErase <= d.cfg.WearDelta {
		return nil
	}
	if len(d.free) == 0 {
		return nil // defer; GC will free space first
	}
	d.stats.WearMoves++
	return d.moveBlock(coldest, t)
}
