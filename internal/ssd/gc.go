package ssd

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"leaftl/internal/addr"
	"leaftl/internal/flash"
	"leaftl/internal/ftl"
)

// gcStream is one open GC destination block. The device keeps
// Config.GCStreams of them, keyed by update recency, so hot rewrites
// are packed together instead of polluting cold blocks (the stream
// separation knob behind Figure 25's write-amplification sensitivity).
type gcStream struct {
	open  bool
	block flash.BlockID
	next  int
}

// maybeGC runs garbage collection when the free pool drops below the low
// watermark, reclaiming until the high watermark (§3.6), then checks
// wear leveling.
func (d *Device) maybeGC(t time.Duration) error {
	blocks := d.cfg.Flash.Blocks()
	low := int(d.cfg.GCLowWater * float64(blocks))
	high := int(d.cfg.GCHighWater * float64(blocks))
	if len(d.free) >= low {
		return d.maybeWearLevel(t)
	}
	// Watermark-driven reclaim is best-effort: when the policy refuses
	// (every candidate fully valid), the drive simply runs below its
	// high watermark until churn invalidates pages — only allocation
	// with an empty pool is a hard failure (allocBlock's runGC call).
	if err := d.runGC(t, high, true); err != nil {
		return err
	}
	return d.maybeWearLevel(t)
}

// runGC reclaims blocks until at least minFree are free (stopping
// quietly instead when bestEffort is set and the policy refuses,
// i.e. nothing would free net space). Victims come
// from the configured GCPolicy over the incremental valid-count index;
// their valid pages are read, re-sorted by LPA, packed into the
// per-stream destination blocks and re-learned by the scheme.
//
// GC's flash traffic completes at d.gcHorizon; the next flush stalls
// behind it (and behind its own program backlog), which is how GC time
// surfaces in per-request service time instead of vanishing.
func (d *Device) runGC(t time.Duration, minFree int, bestEffort bool) error {
	d.stats.GCRuns++
	start := t
	for len(d.free) < minFree {
		victim, ok := d.pickVictim()
		if !ok {
			if bestEffort {
				break
			}
			return fmt.Errorf("ssd: GC policy %s found no victim that frees space (free=%d)",
				d.policy.Name(), len(d.free))
		}
		done, err := d.reclaimBlock(victim, t, false)
		if err != nil {
			return err
		}
		t = done
	}
	if t > d.gcHorizon {
		d.gcHorizon = t
	}
	d.stats.GCTime += t - start
	return nil
}

// pickVictim asks the configured policy for the next victim.
func (d *Device) pickVictim() (flash.BlockID, bool) {
	return d.policy.PickVictim(d.victims, d.writeStamp)
}

// reclaimBlock relocates a block's valid pages and then either erases
// it back into the free pool (GC, scrubbing, wear leveling) or retires
// it (retire=true, and forced for grown-bad blocks and erase failures:
// the block is never erased, never freed, and drops out of rotation).
// Relocation is charged like any other flash traffic: the copy-out
// reads occupy their channels, the copy-in programs start only once the
// last read has returned (the pages must be in the controller's DRAM
// before they can be written back), and the erase follows the last
// program.
//
// Copy-out reads run under the fault model. A data UECC destroys the
// page's payload: if the newest copy lives in the write buffer only the
// stale flash copy died, otherwise the LPA is lost (reads return
// *UECCError until the host rewrites it). An OOB UECC leaves the
// payload intact but the reverse mapping unreadable; it is rebuilt from
// a sibling's OOB window, falling back to the simulator's oracle as a
// stand-in for the per-block P2L journal real controllers keep.
func (d *Device) reclaimBlock(victim flash.BlockID, t time.Duration, retire bool) (time.Duration, error) {
	retire = retire || d.bad[victim]
	d.victims.remove(victim)
	first := d.cfg.Flash.FirstPPA(victim)
	type moved struct {
		lpa    addr.LPA
		tok    uint64
		stream int
	}
	var pages []moved
	readsDone := t
	for i := 0; i < d.cfg.Flash.PagesPerBlock; i++ {
		ppa := first + addr.PPA(i)
		if !d.valid[ppa] {
			continue
		}
		tok, lpa, done, err := d.arr.Read(ppa, t)
		if done > readsDone {
			readsDone = done
		}
		if err != nil {
			switch {
			case errors.Is(err, flash.ErrUncorrectable):
				// Payload gone. The reverse mapping may be gone with it;
				// the oracle stands in for the controller's P2L journal.
				l := lpa
				if l == addr.InvalidLPA {
					l = d.arr.Reverse(ppa)
				}
				if _, buffered := d.buffer[l]; buffered {
					d.invalidate(l) // newest data is in RAM; only a stale-bound copy died
				} else {
					d.loseLPA(l)
					d.stats.GCDataLoss++
				}
				continue
			case errors.Is(err, flash.ErrOOBUncorrectable):
				rev, t2 := d.reconstructReverse(ppa, readsDone)
				if t2 > readsDone {
					readsDone = t2
				}
				if rev == addr.InvalidLPA {
					rev = d.arr.Reverse(ppa) // P2L-journal stand-in
				}
				lpa = rev
			default:
				return 0, err
			}
		}
		pages = append(pages, moved{lpa: lpa, tok: tok, stream: d.streamOf(lpa)})
	}
	d.crashPoint("gc.read")
	// Sort by LPA so relocated runs stay learnable (§3.6: "place these
	// valid pages into the DRAM buffer, sort them by their LPAs, and
	// learn a new index segment").
	sort.Slice(pages, func(i, j int) bool { return pages[i].lpa < pages[j].lpa })

	writeT := readsDone
	lastDone := readsDone
	pairs := make([][]addr.Mapping, d.dieLanes)
	// GC relocation is the one moment the drive holds an LPA-sorted run
	// of a group's pages next to a sequential destination — a relearning
	// scheme re-fits the affected groups from it (LearnedFTL-style
	// GC-time retraining); for everyone else CommitGC is plain Commit.
	relearner, _ := d.scheme.(ftl.GCRelearner)
	flushPairs := func(lane int) {
		if len(pairs[lane]) == 0 {
			return
		}
		if relearner != nil {
			cost, n := relearner.CommitGC(pairs[lane])
			d.stats.Relearns += uint64(n)
			d.chargeMeta(cost, writeT)
		} else {
			cost := d.scheme.Commit(pairs[lane])
			d.chargeMeta(cost, writeT)
		}
		pairs[lane] = nil
	}
	// One pass per stream keeps each stream's pages in LPA order, and
	// within a stream the pages stripe round-robin over the stream's
	// per-die lanes — so every committed batch is an ascending LPA run
	// onto ascending PPAs of one lane block (the scheme contract) and the
	// relocation program burst fans out over the dies.
	for s := 0; s < d.nStreams(); s++ {
		j := 0
		for _, pg := range pages {
			if pg.stream != s {
				continue
			}
			lane := j % d.dieLanes
			j++
			attempts := 0
			for {
				ppa, fresh, err := d.gcDest(s, lane)
				if err != nil {
					return 0, err
				}
				if fresh {
					// Destination block changed: PPAs would jump backwards or
					// across blocks, so commit the accumulated ascending run.
					flushPairs(lane)
				}
				done, werr := d.arr.Write(ppa, pg.lpa, pg.tok, writeT)
				if done > lastDone {
					lastDone = done
				}
				if werr != nil {
					// The destination burned a page: condemn it, commit the
					// run it holds, and retry on a fresh stream block.
					attempts++
					if attempts >= maxProgramAttempts {
						return 0, fmt.Errorf("ssd: GC relocation of LPA %d failed to program on %d consecutive blocks: %w",
							pg.lpa, attempts, werr)
					}
					flushPairs(lane)
					st := d.stream(s, lane)
					st.open = false
					d.abandonBadBlock(st.block)
					continue
				}
				d.invalidate(pg.lpa)
				d.truth[pg.lpa] = ppa
				d.valid[ppa] = true
				db := d.cfg.Flash.BlockOf(ppa)
				d.bvc[db]++
				d.victims.note(db, d.writeStamp)
				pairs[lane] = append(pairs[lane], addr.Mapping{LPA: pg.lpa, PPA: ppa})
				d.stats.GCPagesMoved++
				d.sealIfFull(s, lane)
				break
			}
		}
		for lane := range pairs {
			flushPairs(lane)
		}
	}
	d.crashPoint("gc.programmed")

	if !retire {
		eraseDone, err := d.arr.Erase(victim, lastDone)
		if err == nil {
			d.bvc[victim] = 0
			d.blockSeq[victim] = 0
			d.free = append(d.free, victim)
			d.isFree[victim] = true
			d.stats.GCErases++
			d.crashPoint("gc.erased")
			return eraseDone, nil
		}
		if !errors.Is(err, flash.ErrEraseFail) {
			return 0, err
		}
		// The erase failed: fall through and retire the block instead.
		// Its pages are all stale (just relocated), so nothing is lost —
		// the block simply never rejoins the pool.
		if !d.bad[victim] {
			d.bad[victim] = true
			d.stats.RetiredBlocks++
		}
		lastDone = eraseDone
	}
	// Retirement: the block keeps its stale contents (never erased) and
	// drops out of every structure — not free, no allocation sequence,
	// no victim-index entry.
	if !d.bad[victim] {
		d.bad[victim] = true
		d.stats.RetiredBlocks++
	}
	d.bvc[victim] = 0
	d.blockSeq[victim] = 0
	d.crashPoint("gc.retired")
	return lastDone, nil
}

// streamOf classifies an LPA into a GC destination stream by update
// recency: age is how many host page writes ago the LPA was last
// rewritten, and the N streams cover factor-of-4 exponential age bands
// with boundaries logicalPages/4^(N−1), …, logicalPages/4 — stream 0
// holds pages rewritten within the last logicalPages/4^(N−1) writes
// (the hottest), stream N−1 everything at least logicalPages/4 old.
func (d *Device) streamOf(lpa addr.LPA) int {
	n := d.nStreams()
	if n == 1 {
		return 0
	}
	age := d.writeStamp - d.lpaHeat[lpa]
	bound := uint64(d.logicalPages) >> uint(2*(n-1))
	if bound == 0 {
		bound = 1
	}
	s := 0
	for s < n-1 && age >= bound {
		s++
		bound <<= 2
	}
	return s
}

// nStreams returns the number of logical GC streams (the recency bands;
// each holds one destination lane per die).
func (d *Device) nStreams() int { return len(d.streams) / d.dieLanes }

// stream returns the destination lane of logical stream s on die lane.
func (d *Device) stream(s, lane int) *gcStream {
	return &d.streams[s*d.dieLanes+lane]
}

// gcDest returns the next destination PPA for a GC move on the given
// stream lane, opening a new block when the lane has none — preferring
// a free block on the lane's own die so relocation programs fan out.
// fresh reports a block switch.
func (d *Device) gcDest(stream, lane int) (addr.PPA, bool, error) {
	st := d.stream(stream, lane)
	fresh := false
	if !st.open {
		if len(d.free) == 0 {
			return 0, false, fmt.Errorf("ssd: GC needs a destination block but none are free")
		}
		idx := len(d.free) - 1
		if d.dieLanes > 1 {
			for i := len(d.free) - 1; i >= 0; i-- {
				if d.cfg.Flash.DieOfBlock(d.free[i]) == lane {
					idx = i
					break
				}
			}
		}
		b := d.free[idx]
		d.free = append(d.free[:idx], d.free[idx+1:]...)
		d.isFree[b] = false
		d.nextSeq++
		d.blockSeq[b] = d.nextSeq
		*st = gcStream{open: true, block: b}
		fresh = true
	}
	ppa := d.cfg.Flash.FirstPPA(st.block) + addr.PPA(st.next)
	st.next++
	return ppa, fresh, nil
}

// sealIfFull closes a destination lane whose block just filled,
// entering it into the victim index (it is from now on fair game for
// reclaim, like any flushed block).
func (d *Device) sealIfFull(stream, lane int) {
	st := d.stream(stream, lane)
	if !st.open || st.next < d.cfg.Flash.PagesPerBlock {
		return
	}
	d.victims.add(st.block, d.bvc[st.block], d.blockSeq[st.block], d.writeStamp)
	st.open = false
}

// isOpenDest reports whether b is an open destination block — a GC
// stream lane or a die-interleaved flush lane — still accepting
// programs, so neither a victim candidate nor fair game for the
// scrub/retire sweeps.
func (d *Device) isOpenDest(b flash.BlockID) bool {
	for i := range d.streams {
		if d.streams[i].open && d.streams[i].block == b {
			return true
		}
	}
	for i := range d.flushLanes {
		if d.flushLanes[i].open && d.flushLanes[i].block == b {
			return true
		}
	}
	return false
}

// maybeWearLevel migrates the coldest block when the erase-count spread
// exceeds the configured delta (§3.6: throttle-and-swap; cold data moves
// so young blocks rejoin the hot rotation).
func (d *Device) maybeWearLevel(t time.Duration) error {
	if d.cfg.WearDelta == 0 {
		return nil
	}
	var (
		minErase, maxErase uint32
		coldest            flash.BlockID
		haveCold           bool
		first              = true
	)
	for b := 0; b < d.cfg.Flash.Blocks(); b++ {
		e := d.arr.EraseCount(flash.BlockID(b))
		if first {
			minErase, maxErase = e, e
			first = false
		}
		if e < minErase {
			minErase = e
		}
		if e > maxErase {
			maxErase = e
		}
		// Cold candidate: allocated, healthy, holds data, low erase count.
		if !d.isFree[b] && d.blockSeq[b] != 0 && d.bvc[b] > 0 &&
			!d.bad[b] && !d.isOpenDest(flash.BlockID(b)) {
			if !haveCold || e < d.arr.EraseCount(coldest) {
				coldest = flash.BlockID(b)
				haveCold = true
			}
		}
	}
	if !haveCold || maxErase-minErase <= d.cfg.WearDelta {
		return nil
	}
	if len(d.free) == 0 {
		return nil // defer; GC will free space first
	}
	d.stats.WearMoves++
	done, err := d.reclaimBlock(coldest, t, false)
	if err != nil {
		return err
	}
	if done > d.gcHorizon {
		d.gcHorizon = done
	}
	// Wear moves ride the same relocation machinery and the same stall
	// horizon, so their time accrues to GCTime too — keeping
	// GCStall ≤ GCTime whichever background move caused the wait.
	d.stats.GCTime += done - t
	return nil
}
