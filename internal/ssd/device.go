// Package ssd simulates the SSD the paper evaluates on: flash array plus
// controller machinery — write data buffer with sorted flushes (§3.3),
// DRAM split between mapping structures and an LRU data cache (§4.2),
// greedy garbage collection and wear leveling (§3.6), OOB-verified reads
// with misprediction recovery (§3.5), and crash recovery (§3.8).
//
// The device is driven closed-loop: every host request starts when the
// previous one finished, and background flash traffic (flushes, GC)
// occupies channels so subsequent reads queue behind it. This substitutes
// WiscSim's event engine with a per-channel timeline (DESIGN.md §2).
package ssd

import (
	"fmt"
	"sort"
	"time"

	"leaftl/internal/addr"
	"leaftl/internal/flash"
	"leaftl/internal/ftl"
	"leaftl/internal/metrics"
)

// Device is one simulated SSD with a pluggable translation scheme.
type Device struct {
	cfg    Config
	arr    *flash.Array
	scheme ftl.Scheme
	gamma  int // scheme's error bound (0 for exact schemes)

	// reporter receives OOB-verified read feedback when the scheme asks
	// for it (adaptive-γ LeaFTL); nil otherwise.
	reporter ftl.MissReporter

	logicalPages int

	// Simulator ground truth, used for bookkeeping (PVT/BVC updates, GC
	// victim contents) and integrity checking — never for performance
	// accounting, which flows through the scheme and OOB reads.
	truth []addr.PPA
	token []uint64 // expected payload per LPA

	valid    []bool // PVT: per-PPA validity bitmap (Figure 3 structure 4)
	bvc      []int  // BVC: per-block valid-page count (structure 3)
	free     []flash.BlockID
	isFree   []bool
	blockSeq []uint64 // allocation sequence per block, for recovery order
	nextSeq  uint64

	// Write data buffer (§3.3) and data cache. bufOrder tracks buffered
	// LPAs in first-insertion order so an unsorted flush (SortBuffer off)
	// lays pages out deterministically instead of in Go map-iteration
	// order — replays must be bit-reproducible either way.
	buffer     map[addr.LPA]uint64
	bufOrder   []addr.LPA
	cache      *ftl.ByteLRU[addr.LPA, uint64]
	mapBudget  int
	writeStamp uint64

	// Garbage collection machinery: the victim policy over the
	// incremental valid-count index, the hot/cold destination streams,
	// and per-LPA update-recency stamps that classify relocated pages.
	policy  GCPolicy
	victims *VictimIndex
	// streams holds the GC destination lanes, one per (stream, die):
	// stream s's lane on die l is streams[s*dieLanes+l]. With one die
	// this is exactly the old one-lane-per-stream layout.
	streams []gcStream
	// dieLanes is the die fan-out of the allocator (Flash.Dies()):
	// flushes and GC relocation stripe pages round-robin over this many
	// open destination blocks, one per die.
	dieLanes int
	// flushLanes are the flush destination lanes, one per die. They
	// persist across flushes on a multi-die geometry (sealing when
	// full); with one die every flush seals its blocks exactly as the
	// old chunked writer did and the lanes are never left open.
	flushLanes []gcStream
	// metaSeq is the fallback rotation for translation-page operations
	// whose producer did not name a page identity.
	metaSeq uint64
	lpaHeat []uint64 // per-LPA writeStamp at last host write

	// Reliability state: bad marks blocks retired (or sealed awaiting
	// retirement) after program/erase failures — a persisted bad-block
	// table on real parts, so it survives crashes; lost marks LPAs whose
	// only copy was destroyed by uncorrectable errors (reads return
	// *UECCError until the host rewrites them); scrubPend/scrubSet queue
	// blocks past their disturb/retention thresholds for read-reclaim.
	bad       []bool
	lost      []bool
	scrubPend []flash.BlockID
	scrubSet  []bool
	crashHook func(string)

	// flushDone is when the last flush's slowest program completes; the
	// next flush stalls behind it (write back-pressure: the host cannot
	// outrun the flash's program bandwidth indefinitely). gcHorizon is
	// the same horizon for GC traffic, kept separate so stalls can be
	// attributed to GC in the stats.
	flushDone time.Duration
	gcHorizon time.Duration

	now   time.Duration
	stats Stats

	readLat   *metrics.Histogram
	writeLat  *metrics.Histogram
	flashBase flash.Stats // snapshot at last ResetMetrics, for WAF deltas
}

// New builds a device. The scheme's DRAM budget is derived from cfg.Mode
// before any traffic flows.
func New(cfg Config, scheme ftl.Scheme) (*Device, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	arr, err := flash.NewArray(cfg.Flash)
	if err != nil {
		return nil, err
	}
	gamma := 0
	if g, ok := scheme.(ftl.Gamma); ok {
		gamma = g.Gamma()
	}
	if 2*gamma+1 > cfg.Flash.OOBEntries() {
		return nil, fmt.Errorf("ssd: gamma %d needs %d OOB entries, flash provides %d (§3.5)",
			gamma, 2*gamma+1, cfg.Flash.OOBEntries())
	}
	policy, err := GCPolicyByName(cfg.GCPolicy)
	if err != nil {
		return nil, err
	}
	streams := cfg.GCStreams
	if streams < 1 {
		streams = 1
	}

	d := &Device{
		cfg:          cfg,
		arr:          arr,
		scheme:       scheme,
		gamma:        gamma,
		logicalPages: cfg.LogicalPages(),
		truth:        make([]addr.PPA, cfg.LogicalPages()),
		token:        make([]uint64, cfg.LogicalPages()),
		valid:        make([]bool, cfg.Flash.TotalPages()),
		bvc:          make([]int, cfg.Flash.Blocks()),
		isFree:       make([]bool, cfg.Flash.Blocks()),
		blockSeq:     make([]uint64, cfg.Flash.Blocks()),
		buffer:       make(map[addr.LPA]uint64, cfg.BufferPages),
		policy:       policy,
		victims:      newVictimIndex(cfg.Flash.Blocks(), cfg.Flash.PagesPerBlock),
		streams:      make([]gcStream, streams*cfg.Flash.Dies()),
		dieLanes:     cfg.Flash.Dies(),
		flushLanes:   make([]gcStream, cfg.Flash.Dies()),
		lpaHeat:      make([]uint64, cfg.LogicalPages()),
		bad:          make([]bool, cfg.Flash.Blocks()),
		lost:         make([]bool, cfg.LogicalPages()),
		scrubSet:     make([]bool, cfg.Flash.Blocks()),
		readLat:      metrics.NewHistogram(),
		writeLat:     metrics.NewHistogram(),
	}
	if mr, ok := scheme.(ftl.MissReporter); ok {
		// Schemes expose the interface statically even when the adaptive
		// controller is off; only wire the feedback (and the read-path
		// bookkeeping it implies) when it is live.
		if en, ok := scheme.(interface{ FeedbackEnabled() bool }); !ok || en.FeedbackEnabled() {
			d.reporter = mr
		}
	}
	for i := range d.truth {
		d.truth[i] = addr.InvalidPPA
	}
	for b := cfg.Flash.Blocks() - 1; b >= 0; b-- {
		d.free = append(d.free, flash.BlockID(b))
		d.isFree[b] = true
	}

	// DRAM split (§4.2): the write buffer is pinned; the mapping budget
	// depends on the mode; the data cache takes the rest and is resized
	// as the mapping grows.
	avail := int(cfg.DRAMBytes - cfg.BufferBytes())
	switch cfg.Mode {
	case MappingCapped:
		d.mapBudget = int(float64(cfg.DRAMBytes) * cfg.CapFraction)
		if d.mapBudget > avail {
			d.mapBudget = avail
		}
	default:
		d.mapBudget = avail
	}
	scheme.SetBudget(d.mapBudget)
	d.wireJournal(scheme)
	d.cache = ftl.NewByteLRU[addr.LPA, uint64](0)
	d.resizeCache()
	return d, nil
}

// wireJournal sizes a journaling scheme's mapping-delta journal from the
// flash geometry — the footprint cap defaults to half the over-provisioned
// capacity, matching where full-image translation pages live — and routes
// its crash hooks through the device's crash-point machinery so torture
// tests can kill the device mid-journal-GC.
func (d *Device) wireJournal(scheme ftl.Scheme) {
	j, ok := scheme.(ftl.Journaled)
	if !ok || !j.JournalEnabled() {
		return
	}
	maxPages := d.cfg.JournalPages
	if maxPages <= 0 {
		maxPages = (d.cfg.Flash.TotalPages() - d.logicalPages) / 2
	}
	j.ConfigureJournal(d.cfg.Flash.PagesPerBlock, maxPages)
	if h, ok := scheme.(interface{ SetJournalCrashHook(func(string)) }); ok {
		h.SetJournalCrashHook(func(point string) { d.crashPoint(point) })
	}
}

// Scheme returns the device's translation scheme.
func (d *Device) Scheme() ftl.Scheme { return d.scheme }

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// Stats returns a snapshot of the device counters.
func (d *Device) Stats() Stats { return d.stats }

// FlashStats returns raw flash operation counters.
func (d *Device) FlashStats() flash.Stats { return d.arr.Stats() }

// Now returns the simulated clock (sum of host request latencies).
func (d *Device) Now() time.Duration { return d.now }

// AdvanceTo moves the virtual clock forward to t, modeling a host idle
// gap (open-loop replay calls it between request arrivals). Background
// flash work keeps its own completion horizon, so a flush issued before
// the gap is simply found finished after it. Moving backward is a no-op:
// the clock is monotonic.
func (d *Device) AdvanceTo(t time.Duration) {
	if t > d.now {
		d.now = t
	}
}

// ReadLatency returns the host read latency histogram.
func (d *Device) ReadLatency() *metrics.Histogram { return d.readLat }

// WriteLatency returns the host write latency histogram.
func (d *Device) WriteLatency() *metrics.Histogram { return d.writeLat }

// WAF returns the write amplification factor since the last
// ResetMetrics (Figure 25).
func (d *Device) WAF() float64 {
	return d.stats.WAF(d.arr.Stats().PageWrites - d.flashBase.PageWrites)
}

// ResetMetrics zeroes the host-visible counters and latency histograms,
// snapshotting flash counters so WAF measures the steady state after a
// warmup phase (§4.1 warms the SSD before measuring).
func (d *Device) ResetMetrics() {
	d.stats = Stats{}
	d.readLat = metrics.NewHistogram()
	d.writeLat = metrics.NewHistogram()
	d.flashBase = d.arr.Stats()
}

// LogicalPages returns the host-visible capacity in pages.
func (d *Device) LogicalPages() int { return d.logicalPages }

// SetMappingBudget re-caps the scheme's mapping DRAM mid-run (the
// memory-sweep experiments tighten it after warmup) and rebalances the
// data cache. Budget-change evictions inside the scheme are not charged
// to any host request, mirroring DFTL's between-runs resize.
func (d *Device) SetMappingBudget(bytes int) {
	d.mapBudget = bytes
	d.scheme.SetBudget(bytes)
	d.resizeCache()
}

// MappingBudget returns the scheme's current mapping DRAM cap.
func (d *Device) MappingBudget() int { return d.mapBudget }

// resizeCache gives the data cache whatever DRAM the mapping is not
// using. It is recomputed after every flush and every read: demand-paged
// schemes grow and shrink their resident mapping state on both paths, and
// the data cache must track the scheme's actual MemoryBytes over time
// rather than its size at construction.
func (d *Device) resizeCache() {
	used := d.scheme.MemoryBytes()
	budget := int(d.cfg.DRAMBytes-d.cfg.BufferBytes()) - used
	if budget < 0 {
		budget = 0
	}
	d.cache.Resize(budget)
}

// Read performs a host read of n pages starting at lpa and returns its
// latency. Pages are issued concurrently (per-channel queueing decides
// actual overlap), the request completes when the slowest page does.
func (d *Device) Read(lpa addr.LPA, n int) (time.Duration, error) {
	return d.ReadAt(lpa, n, d.now)
}

// ReadAt is Read issued at an explicit start time, for multi-queue
// front ends whose workers keep their own logical clocks: the request's
// flash traffic is timed from start, and the device clock only advances
// to the completion when it is ahead of everything already applied (the
// clock is the merged completion horizon, never rolled back). State
// changes depend only on apply order, not on start, so replays that
// preserve submission order are bit-identical regardless of how request
// times interleave.
func (d *Device) ReadAt(lpa addr.LPA, n int, start time.Duration) (time.Duration, error) {
	if err := d.checkRange(lpa, n); err != nil {
		return 0, err
	}
	d.stats.HostReadReqs++
	metaBefore := d.stats.MetaReads + d.stats.MetaWrites
	missBefore := d.stats.Mispredictions
	end := start + d.cfg.CacheHitLatency
	for i := 0; i < n; i++ {
		done, err := d.readPage(lpa+addr.LPA(i), start)
		if err != nil {
			return 0, err
		}
		if done > end {
			end = done
		}
	}
	lat := end - start
	if end > d.now {
		d.now = end
	}
	d.readLat.Observe(lat)
	// Reads tick disturb counters; relocate whatever crossed the scrub
	// threshold before acknowledging (the relocation itself runs in the
	// background on the GC horizon).
	if len(d.scrubPend) > 0 {
		if err := d.drainScrub(end); err != nil {
			return 0, err
		}
	}
	// A translation that charged meta traffic loaded or evicted mapping
	// state, and with live feedback a misprediction may have grown the
	// table (the adaptive scheme pins the corrected mapping); give the
	// data cache whatever DRAM that freed or took. Other reads change
	// nothing, so the hot path skips the resize.
	if d.stats.MetaReads+d.stats.MetaWrites != metaBefore ||
		(d.reporter != nil && d.stats.Mispredictions != missBefore) {
		d.resizeCache()
	}
	return lat, nil
}

// readPage serves one page read issued at time t; returns completion.
func (d *Device) readPage(lpa addr.LPA, t time.Duration) (time.Duration, error) {
	d.stats.HostPagesRead++

	if d.lost[lpa] {
		// The LPA's only copy was destroyed by an uncorrectable error;
		// the host keeps getting the I/O error until it rewrites.
		d.stats.HostUECCs++
		return 0, &UECCError{LPA: lpa, PPA: addr.InvalidPPA}
	}
	if tok, ok := d.buffer[lpa]; ok {
		d.stats.BufferHits++
		_ = tok
		return t + d.cfg.CacheHitLatency, nil
	}
	if tok, ok := d.cache.Get(lpa); ok {
		d.stats.CacheHits++
		if tok != d.token[lpa] {
			return 0, fmt.Errorf("ssd: cache corruption at LPA %d", lpa)
		}
		return t + d.cfg.CacheHitLatency, nil
	}

	tr, ok := d.scheme.Translate(lpa)
	t = d.chargeMeta(tr.Cost, t)
	if !ok {
		// Never written: a real drive returns zeroes without touching
		// flash. Cross-check against ground truth.
		if d.truth[lpa] != addr.InvalidPPA {
			return 0, fmt.Errorf("ssd: scheme %s lost mapping for LPA %d", d.scheme.Name(), lpa)
		}
		d.stats.UnmappedReads++
		return t + d.cfg.CacheHitLatency, nil
	}
	if tr.Approx {
		d.stats.ApproxReads++
	}
	d.stats.CacheMisses++

	want := d.truth[lpa]
	if want == addr.InvalidPPA {
		return 0, fmt.Errorf("ssd: scheme %s fabricated mapping for unwritten LPA %d", d.scheme.Name(), lpa)
	}

	var tok uint64
	hintResolved := false
	exactHit := false
	switch {
	case tr.Approx && tr.Exact:
		// The scheme's predicted-exact bitmap proved this approximate
		// prediction lands on the live page: one trusted flash read with
		// no OOB verification probe budget reserved. The bit is a hard
		// promise — a wrong PPA here would have returned wrong data, so
		// it is an invariant failure, not a misprediction.
		if tr.PPA != want {
			return 0, fmt.Errorf("ssd: predicted-exact bit lied for LPA %d: scheme %s predicted PPA %d, true page %d",
				lpa, d.scheme.Name(), tr.PPA, want)
		}
		d.stats.ExactBitHits++
		exactHit = true
		var err error
		tok, t, err = d.verifiedRead(want, lpa, true, t)
		if err != nil {
			return 0, err
		}
	case tr.PPA == want && tr.Hint == 0:
		// Correct prediction, no speculation: one flash read.
		var err error
		tok, t, err = d.verifiedRead(want, lpa, !tr.Approx, t)
		if err != nil {
			return 0, err
		}
	case !tr.Approx:
		return 0, fmt.Errorf("ssd: exact scheme %s mistranslated LPA %d: got PPA %d, want %d",
			d.scheme.Name(), lpa, tr.PPA, want)
	default:
		var err error
		tok, hintResolved, t, err = d.readApprox(lpa, tr, want, t)
		if err != nil {
			return 0, err
		}
	}

	// OOB-verified feedback for the adaptive-γ controller: report what
	// the scheme predicted against what the reverse mapping proved (a
	// real drive learns the same facts from the reads it just performed).
	// A reacting scheme may pin the corrected mapping, charged as
	// translation-metadata traffic. Bitmap-trusted reads report through
	// the cheaper NoteExact path: there was no verification, only the
	// group's observation window advances.
	if d.reporter != nil {
		if exactHit {
			t = d.chargeMeta(d.reporter.NoteExact(lpa), t)
		} else {
			t = d.chargeMeta(d.reporter.NoteRead(lpa, tr.PPA, want, tr.Approx, hintResolved), t)
		}
	}

	if tok != d.token[lpa] {
		return 0, fmt.Errorf("ssd: data corruption at LPA %d", lpa)
	}
	for range d.cache.Put(lpa, tok, d.cfg.Flash.PageSize, false) {
		// Data-cache entries are clean (writes go through the buffer);
		// evictions are free.
	}
	return t, nil
}

// readApprox serves the flash read(s) of an approximately translated
// page (§3.5, extended with LearnedFTL-style miss hints): the first read
// aims at PPA+Hint when the group's miss streak armed a hint — a
// repeating miss then resolves in a single read instead of two — falling
// back to the OOB reverse-mapping window of whatever page the first read
// landed on, then to the window around the prediction itself, and last
// to direct OOB probes of the block-edge candidates, nearest the hinted
// side first. Speculation is honest: an armed hint on a read that would
// have predicted correctly costs the extra read a real controller would
// pay, which is why hints only arm after a consistent miss streak.
func (d *Device) readApprox(lpa addr.LPA, tr ftl.Translation, want addr.PPA, t time.Duration) (uint64, bool, time.Duration, error) {
	miss := tr.PPA != want
	if miss {
		d.stats.Mispredictions++
	}
	// The raw prediction can overshoot the device on striped layouts
	// (lane-interleaved flush pages learn stride-Dies() segments whose
	// extrapolation runs past the last page); the controller clamps the
	// read target to the die it actually has.
	pred := clampPPA(int64(tr.PPA), int64(d.cfg.Flash.TotalPages()))
	first := pred
	if tr.Hint != 0 {
		first = clampPPA(int64(tr.PPA)+int64(tr.Hint), int64(d.cfg.Flash.TotalPages()))
	}
	if first == want {
		// The first read is the right page — a plain correct prediction,
		// or a hint that nailed a repeating miss (the double read saved).
		if miss {
			d.stats.MissHintResolved++
		}
		tok, t, err := d.verifiedRead(want, lpa, false, t)
		if err != nil {
			return 0, false, t, err
		}
		return tok, miss, t, nil
	}

	// The first flash data read is about to land on the wrong page: this
	// host read pays the §3.5 double read, whatever recovery path finds
	// the true page afterwards.
	d.stats.DoubleReads++

	// The first read landed on the wrong page; its OOB holds the reverse
	// mappings of its ±gamma in-block neighborhood (one charged read).
	// An unreadable window (OOB UECC) is treated as containing nothing,
	// letting the fallbacks carry the search.
	window, t, werr := d.arr.OOBWindow(first, d.gamma, t)
	sawOOBErr := werr != nil
	found := addr.InvalidPPA
	if werr == nil {
		found = d.searchWindow(window, first, lpa)
	}
	if found == addr.InvalidPPA && first != pred {
		// The speculative aim missed the true page's window; fall back to
		// the window around the prediction itself (a second charged read).
		window, t, werr = d.arr.OOBWindow(pred, d.gamma, t)
		sawOOBErr = sawOOBErr || werr != nil
		if werr == nil {
			found = d.searchWindow(window, pred, lpa)
		}
	}
	if found == addr.InvalidPPA {
		// Block-bounded windows can miss a true page across a block edge.
		// Probe the remaining candidates' OOBs directly (each a charged
		// read), expanding outward from the hinted aim point so the
		// likelier neighbor is read first.
		d.stats.OOBFallbacks++
		var probeErr bool
		found, t, probeErr = d.probeFallback(lpa, pred, first, tr.Hint, t)
		sawOOBErr = sawOOBErr || probeErr
	}
	if miss {
		if found == want {
			d.stats.MissFallbacks++
		}
		// A failed recovery falls through to the error below without
		// polluting the resolution split.
	}
	if found != want {
		if sawOOBErr {
			// The search ran into unreadable OOB regions, so the true
			// page's evidence may simply have been undecodable — an
			// honest I/O error, not a bookkeeping bug.
			d.stats.HostUECCs++
			return 0, false, t, &UECCError{LPA: lpa, PPA: want}
		}
		return 0, false, t, fmt.Errorf("ssd: misprediction recovery for LPA %d found PPA %v, want %d",
			lpa, found, want)
	}
	// The window (or probe) search already proved found holds lpa, so
	// the final read's own OOB check may lean on that evidence.
	tok, t, err := d.verifiedRead(found, lpa, true, t)
	if err != nil {
		return 0, false, t, err
	}
	return tok, false, t, nil
}

// searchWindow scans an OOB reverse-mapping window read around center
// for lpa, returning the matching PPA or InvalidPPA. Matches are
// cross-checked against the PVT validity bitmap (firmware state, kept
// by the host write path): flash retains the reverse mappings of
// *stale* copies until their block is erased, and a hint-aimed window
// can stretch past the learning guarantee into territory where an old
// copy of the same LPA may linger — a stale match must keep scanning,
// not answer the read.
func (d *Device) searchWindow(window []addr.LPA, center addr.PPA, lpa addr.LPA) addr.PPA {
	for i, rev := range window {
		if rev != lpa {
			continue
		}
		ppa := center - addr.PPA(d.gamma) + addr.PPA(i)
		if int(ppa) < len(d.valid) && d.valid[ppa] {
			return ppa
		}
	}
	return addr.InvalidPPA
}

// probeFallback probes the unsearched candidates of [pred−γ, pred+γ]
// with direct OOB reads, nearest-first around pred+hint, skipping the
// blocks whose windows were already read. sawErr reports whether any
// probe hit an unreadable OOB region (the caller uses it to tell an
// I/O-induced search failure from a bookkeeping bug).
func (d *Device) probeFallback(lpa addr.LPA, pred, first addr.PPA, hint int, t time.Duration) (addr.PPA, time.Duration, bool) {
	lo := int64(pred) - int64(d.gamma)
	hi := int64(pred) + int64(d.gamma)
	total := int64(d.cfg.Flash.TotalPages())
	firstBlock := d.cfg.Flash.BlockOf(first)
	predBlock := d.cfg.Flash.BlockOf(pred)
	aim := int64(pred) + int64(hint)
	sawErr := false
	for r := int64(0); r <= hi-lo; r++ {
		for _, p := range [2]int64{aim + r, aim - r} {
			if p < lo || p > hi || p < 0 || p >= total {
				continue
			}
			ppa := addr.PPA(p)
			b := d.cfg.Flash.BlockOf(ppa)
			if b == firstBlock || b == predBlock {
				continue // already covered by a window read
			}
			rev, t2, oerr := d.arr.ReadOOB(ppa, t)
			t = t2
			sawErr = sawErr || oerr != nil
			if oerr == nil && rev == lpa && d.valid[ppa] {
				// Validity-checked like searchWindow: a stale copy's OOB
				// still names the LPA until its block is erased.
				return ppa, t, sawErr
			}
			if r == 0 {
				break // aim+0 == aim-0
			}
		}
	}
	return addr.InvalidPPA, t, sawErr
}

// clampPPA clips a speculative page address into the device.
func clampPPA(p, total int64) addr.PPA {
	if p < 0 {
		p = 0
	}
	if p >= total {
		p = total - 1
	}
	return addr.PPA(p)
}

// Write performs a host write of n pages starting at lpa and returns its
// latency. Writes land in the battery-backed data buffer (§3.8) and are
// acknowledged at DRAM speed; a full buffer triggers a block-granularity
// sorted flush whose flash traffic runs in the background.
func (d *Device) Write(lpa addr.LPA, n int) (time.Duration, error) {
	return d.WriteAt(lpa, n, d.now)
}

// WriteAt is Write issued at an explicit start time; see ReadAt for the
// multi-queue clock contract.
func (d *Device) WriteAt(lpa addr.LPA, n int, start time.Duration) (time.Duration, error) {
	if err := d.checkRange(lpa, n); err != nil {
		return 0, err
	}
	d.stats.HostWriteReqs++
	issued := start
	for i := 0; i < n; i++ {
		l := lpa + addr.LPA(i)
		d.stats.HostPagesWrite++
		d.writeStamp++
		d.lpaHeat[l] = d.writeStamp
		d.lost[l] = false // a rewrite replaces whatever was lost
		tok := uint64(l)<<24 ^ d.writeStamp
		if _, ok := d.buffer[l]; !ok {
			d.bufOrder = append(d.bufOrder, l)
		}
		d.buffer[l] = tok
		d.token[l] = tok
		d.cache.Remove(l) // drop the stale cached copy
		if len(d.buffer) >= d.cfg.BufferPages {
			stall, err := d.flush(start)
			if err != nil {
				return 0, err
			}
			// Back-pressure: the write that could not fit until the
			// previous flush drained pays the stall.
			start += stall
		}
	}
	lat := start + d.cfg.CacheHitLatency - issued
	if end := issued + lat; end > d.now {
		d.now = end
	}
	d.writeLat.Observe(lat)
	return lat, nil
}

// checkRange validates a host request.
func (d *Device) checkRange(lpa addr.LPA, n int) error {
	if n <= 0 {
		return fmt.Errorf("ssd: request of %d pages", n)
	}
	if int(lpa)+n > d.logicalPages {
		return fmt.Errorf("ssd: request [%d, %d) beyond logical capacity %d",
			lpa, int(lpa)+n, d.logicalPages)
	}
	return nil
}

// Flush drains the write buffer, including a final partial block. Call
// at end of run before inspecting mapping-structure figures.
func (d *Device) Flush() error {
	if len(d.buffer) == 0 {
		return nil
	}
	_, err := d.flushChunks(d.now, true)
	return err
}

// flush writes out full blocks, keeping any partial remainder buffered.
// It returns how long the caller had to stall behind the previous flush.
func (d *Device) flush(t time.Duration) (time.Duration, error) {
	return d.flushChunks(t, false)
}

func (d *Device) flushChunks(t time.Duration, includePartial bool) (time.Duration, error) {
	wait := t
	if d.flushDone > wait {
		wait = d.flushDone
	}
	if d.gcHorizon > wait {
		// The flush is gated on in-flight GC, not on its own program
		// backlog; the extra wait is the GC-induced share of the stall
		// (what surfaces as p99/p999 spikes in open-loop replay).
		d.stats.GCStall += d.gcHorizon - wait
		wait = d.gcHorizon
	}
	stall := wait - t
	t = wait
	d.crashPoint("flush.begin")
	// Flush in sorted order (§3.3) or, with sorting disabled, in the
	// deterministic first-insertion order bufOrder records — never in map
	// iteration order, which would make the unsorted ablation's physical
	// layout differ between otherwise identical replays.
	lpas := append(make([]addr.LPA, 0, len(d.bufOrder)), d.bufOrder...)
	if d.cfg.SortBuffer {
		sort.Slice(lpas, func(i, j int) bool { return lpas[i] < lpas[j] })
	}
	ppb := d.cfg.Flash.PagesPerBlock
	flushable := len(lpas)
	if !includePartial {
		// Block granularity: a sub-block remainder stays buffered.
		flushable = (len(lpas) / ppb) * ppb
	}
	if flushable > 0 {
		done, err := d.flushPages(lpas[:flushable], t, includePartial)
		if err != nil {
			d.compactBufOrder()
			return stall, err
		}
		if done > d.flushDone {
			d.flushDone = done
		}
	}
	d.compactBufOrder()
	d.chargeMeta(d.scheme.Maintain(d.stats.HostPagesWrite), t)
	d.resizeCache()
	if err := d.maybeGC(t); err != nil {
		return stall, err
	}
	// Reliability housekeeping rides the flush cadence: retention-aged
	// blocks queue for scrubbing, the queue drains, and grown-bad blocks
	// are retired.
	d.retentionSweep(t)
	if err := d.drainScrub(t); err != nil {
		return stall, err
	}
	return stall, d.retireSweep(t)
}

// commitPairs installs freshly written mappings into the scheme,
// charging the translation-metadata cost at t.
func (d *Device) commitPairs(pairs []addr.Mapping, t time.Duration) {
	if len(pairs) == 0 {
		return
	}
	// In-buffer ordering is by insertion when sorting is disabled;
	// the scheme contract wants sorted pairs, so sort the *mappings*
	// without changing the physical layout (the learned patterns
	// degrade, which is exactly what the no-sort ablation measures).
	if !d.cfg.SortBuffer {
		sort.Slice(pairs, func(i, j int) bool { return pairs[i].LPA < pairs[j].LPA })
	}
	d.chargeMeta(d.scheme.Commit(pairs), t)
}

// sealFlushLane closes lane's open destination block: commit its
// pending mappings, count it flushed, and hand it to the GC victim
// index (no further programs land in it).
func (d *Device) sealFlushLane(lane int, pairs []addr.Mapping, t time.Duration) {
	st := &d.flushLanes[lane]
	d.crashPoint("flush.programmed")
	d.commitPairs(pairs, t)
	d.crashPoint("flush.committed")
	d.stats.FlushedBlocks++
	d.victims.add(st.block, d.bvc[st.block], d.blockSeq[st.block], d.writeStamp)
	*st = gcStream{}
}

// flushPages programs the flushable pages across the die-interleaved
// flush lanes: page i of the sorted run goes to lane i % dieLanes, and
// each lane fills one open block on its own die, so the flush's program
// burst fans out over every die instead of serializing on one. Sorted
// order still means ascending LPAs land on consecutive PPAs within each
// lane (a stride-dieLanes run — the monotone mapping §3.3 exploits, with
// slope 1/dieLanes). With one die the pass degenerates to the original
// chunked writer: one lane sealing exactly every PagesPerBlock pages.
//
// A program failure burns its page and condemns the lane's block: the
// pages already programmed are committed, the block is sealed bad
// (retired by the next retireSweep), and the lane continues — retrying
// the failed page first — on a fresh block from the same die.
// maxProgramAttempts consecutive failures of one page are a hard device
// failure.
func (d *Device) flushPages(lpas []addr.LPA, t time.Duration, sealPartial bool) (time.Duration, error) {
	ppb := d.cfg.Flash.PagesPerBlock
	pairs := make([][]addr.Mapping, d.dieLanes)
	attempts := make([]int, d.dieLanes)
	var done time.Duration
	for i, l := range lpas {
		lane := i % d.dieLanes
		for {
			st := &d.flushLanes[lane]
			if !st.open {
				b, err := d.allocBlockOn(lane, t)
				if err != nil {
					return done, err
				}
				*st = gcStream{open: true, block: b}
			}
			ppa := d.cfg.Flash.FirstPPA(st.block) + addr.PPA(st.next)
			wdone, werr := d.arr.Write(ppa, l, d.buffer[l], t)
			if wdone > done {
				done = wdone
			}
			st.next++
			if werr != nil {
				attempts[lane]++
				if attempts[lane] >= maxProgramAttempts {
					return done, fmt.Errorf("ssd: page for LPA %d failed to program on %d consecutive blocks: %w",
						l, attempts[lane], werr)
				}
				d.crashPoint("flush.progfail")
				d.commitPairs(pairs[lane], t)
				pairs[lane] = nil
				bad := st.block
				*st = gcStream{}
				d.abandonBadBlock(bad)
				continue // retry the same LPA on a fresh block of this die
			}
			attempts[lane] = 0
			d.invalidate(l)
			d.truth[l] = ppa
			d.valid[ppa] = true
			d.bvc[st.block]++
			pairs[lane] = append(pairs[lane], addr.Mapping{LPA: l, PPA: ppa})
			delete(d.buffer, l)
			if st.next >= ppb {
				d.sealFlushLane(lane, pairs[lane], t)
				pairs[lane] = nil
			}
			break
		}
	}
	for lane := range d.flushLanes {
		if !d.flushLanes[lane].open {
			continue
		}
		if sealPartial {
			// Full Flush: close out every open lane, partial or not.
			d.sealFlushLane(lane, pairs[lane], t)
			pairs[lane] = nil
			continue
		}
		// The lane stays open across flushes; its mappings must land in
		// the scheme now — reads consult the scheme, not the lane.
		if len(pairs[lane]) > 0 {
			d.crashPoint("flush.programmed")
			d.commitPairs(pairs[lane], t)
			d.crashPoint("flush.committed")
			pairs[lane] = nil
		}
	}
	return done, nil
}

// compactBufOrder drops flushed LPAs from the insertion-order log,
// preserving the relative order of whatever is still buffered (the
// partial remainder a block-granularity flush keeps).
func (d *Device) compactBufOrder() {
	keep := d.bufOrder[:0]
	for _, l := range d.bufOrder {
		if _, ok := d.buffer[l]; ok {
			keep = append(keep, l)
		}
	}
	d.bufOrder = keep
}

// invalidate clears the PVT/BVC state of lpa's previous page and keeps
// the GC victim index in step (bucket move + age touch).
func (d *Device) invalidate(lpa addr.LPA) {
	old := d.truth[lpa]
	if old == addr.InvalidPPA || !d.valid[old] {
		return
	}
	d.valid[old] = false
	b := d.cfg.Flash.BlockOf(old)
	d.bvc[b]--
	d.victims.update(b, d.bvc[b])
	d.victims.note(b, d.writeStamp)
}

// allocBlock takes a free block, garbage-collecting first if the pool is
// empty.
func (d *Device) allocBlock(t time.Duration) (flash.BlockID, error) {
	return d.allocBlockOn(-1, t)
}

// allocBlockOn takes a free block living on the given die, scanning the
// free LIFO from the top so a die-matched block is still the youngest
// available. die < 0, a single-die geometry, or a die with no free
// blocks falls back to the plain top-of-stack pop (the legacy order).
func (d *Device) allocBlockOn(die int, t time.Duration) (flash.BlockID, error) {
	if len(d.free) == 0 {
		if err := d.runGC(t, 1, false); err != nil {
			return 0, err
		}
	}
	if len(d.free) == 0 {
		return 0, fmt.Errorf("ssd: out of flash blocks (logical space overcommitted)")
	}
	idx := len(d.free) - 1
	if die >= 0 && d.dieLanes > 1 {
		for i := len(d.free) - 1; i >= 0; i-- {
			if d.cfg.Flash.DieOfBlock(d.free[i]) == die {
				idx = i
				break
			}
		}
	}
	b := d.free[idx]
	d.free = append(d.free[:idx], d.free[idx+1:]...)
	d.isFree[b] = false
	d.nextSeq++
	d.blockSeq[b] = d.nextSeq
	d.crashPoint("alloc")
	return b, nil
}

// metaID resolves the identity of the i-th charged meta operation: the
// producer-supplied translation-page id when present, else a device-wide
// sequence (legacy producers that cannot name a page).
func (d *Device) metaID(ids []uint64, i int) uint64 {
	if i < len(ids) {
		return ids[i]
	}
	d.metaSeq++
	return d.metaSeq
}

// chargeMeta charges translation-metadata flash operations, routing each
// to the die derived from its translation page's identity. Reads
// serialize into the request's timeline — their data gates progress.
// Writes on a multi-die geometry are issued and left behind: they occupy
// their die (and wear the flash) but the request does not wait for them,
// and the wait it would have paid accrues in Stats.MetaOverlap — the
// map-op/data-op pipelining a real controller gets from die parallelism.
// With one die, writes serialize exactly as before.
func (d *Device) chargeMeta(c ftl.Cost, t time.Duration) time.Duration {
	for i := 0; i < c.MetaReads; i++ {
		t = d.arr.MetaRead(d.metaID(c.ReadIDs, i), t)
		d.stats.MetaReads++
	}
	pipelined := d.dieLanes > 1
	for i := 0; i < c.MetaWrites; i++ {
		d.crashPoint("meta.write")
		done := d.arr.MetaWrite(d.metaID(c.WriteIDs, i), t)
		d.stats.MetaWrites++
		if pipelined {
			d.stats.MetaOverlap += done - t
		} else {
			t = done
		}
	}
	return t
}
