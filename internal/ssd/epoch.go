package ssd

import (
	"sync"
	"time"
)

// epochClock is the phase coordinator of the multi-queue front end. Each
// worker advances a private logical clock while it processes a batch
// (an epoch) and publishes the result here at the epoch boundary; the
// merged view gives the device one coherent notion of time even though
// requests complete out of order across queues:
//
//   - Horizon() is the max over published clocks — nothing has completed
//     later than it. GC, scrubbing and flush back-pressure triggered from
//     the serialized apply path stamp their work against the device
//     clock, which ReadAt/WriteAt keep at this same max, so background
//     activity always observes a horizon no request has outrun.
//   - Frontier() is the min — every worker has reached at least this
//     time, so no in-flight request can complete before it. It is the
//     safe point a drain can advance the device clock to.
type epochClock struct {
	mu     sync.Mutex
	clocks []time.Duration
	epochs uint64
}

func newEpochClock(workers int) *epochClock {
	return &epochClock{clocks: make([]time.Duration, workers)}
}

// publish merges worker w's logical clock at an epoch boundary. Clocks
// are per-worker monotone, so a stale publish (t below a previous one)
// cannot happen from the owning worker.
func (c *epochClock) publish(w int, t time.Duration) {
	c.mu.Lock()
	if t > c.clocks[w] {
		c.clocks[w] = t
	}
	c.epochs++
	c.mu.Unlock()
}

// Horizon returns the latest published completion time across workers.
func (c *epochClock) Horizon() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	var max time.Duration
	for _, t := range c.clocks {
		if t > max {
			max = t
		}
	}
	return max
}

// Frontier returns the earliest published worker clock: the time every
// worker is known to have reached.
func (c *epochClock) Frontier() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.clocks) == 0 {
		return 0
	}
	min := c.clocks[0]
	for _, t := range c.clocks[1:] {
		if t < min {
			min = t
		}
	}
	return min
}

// Epochs returns how many worker batches have been merged.
func (c *epochClock) Epochs() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.epochs
}

// seqTicket hands device access to requests in global submission order:
// a worker holding submission sequence s blocks in wait until every
// request before s has applied, mutates the device exclusively (only one
// sequence is current at a time, and the mutex handoff orders memory),
// then releases with done. This is what makes a multi-queue replay
// bit-identical to the serial device for any worker count — the apply
// order is the submission order, full stop; worker scheduling only
// decides who sits waiting.
//
// abort releases all waiters at once (wait returns false) so a crash
// unwinding one worker cannot strand the others mid-ticket.
type seqTicket struct {
	mu      sync.Mutex
	cond    *sync.Cond
	next    uint64
	aborted bool
}

func newSeqTicket() *seqTicket {
	t := &seqTicket{}
	t.cond = sync.NewCond(&t.mu)
	return t
}

// wait blocks until seq is current; it returns false if the ticket was
// aborted, in which case the caller must not touch the device.
func (t *seqTicket) wait(seq uint64) bool {
	t.mu.Lock()
	for t.next != seq && !t.aborted {
		t.cond.Wait()
	}
	ok := !t.aborted
	t.mu.Unlock()
	return ok
}

// done retires the current sequence and wakes the next holder.
func (t *seqTicket) done() {
	t.mu.Lock()
	t.next++
	t.mu.Unlock()
	t.cond.Broadcast()
}

// abort unblocks every present and future waiter.
func (t *seqTicket) abort() {
	t.mu.Lock()
	t.aborted = true
	t.mu.Unlock()
	t.cond.Broadcast()
}
