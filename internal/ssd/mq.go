package ssd

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"leaftl/internal/addr"
)

// ErrQueueClosed is returned by Submit after Drain has begun.
var ErrQueueClosed = errors.New("ssd: multi-queue front end closed")

// ErrAborted stamps the completions of requests that were in flight when
// a worker crashed (a panic out of the device, e.g. the crash-torture
// hook): they never touched the device.
var ErrAborted = errors.New("ssd: request aborted by device crash")

// MQConfig parameterizes the multi-queue front end. The zero value gets
// one queue pair of depth 64 with 16-entry batches.
type MQConfig struct {
	// Queues is the number of submission/completion queue pairs, each
	// driven by its own worker (one per host core in the NVMe model).
	Queues int
	// QueueDepth is each submission ring's capacity; a full ring blocks
	// the submitter (host-side back-pressure).
	QueueDepth int
	// Batch caps how many entries a worker claims per epoch: the worker
	// drains up to Batch queued SQEs, applies them, then publishes its
	// logical clock to the epoch coordinator.
	Batch int
}

func (c MQConfig) withDefaults() MQConfig {
	if c.Queues < 1 {
		c.Queues = 1
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 64
	}
	if c.Batch < 1 {
		c.Batch = 16
	}
	return c
}

// MultiQueue is an NVMe-style multi-queue front end over one Device: N
// submission/completion queue pairs, each driven by a per-core worker
// goroutine that batches requests, applies them, and stamps completions.
//
// Requests are timed on per-worker logical clocks, so queues overlap in
// virtual time the way independent host cores do, and an epoch
// coordinator merges the worker clocks into one coherent device horizon
// (see epochClock). Device *state* mutation, however, is handed out by a
// global submission-order ticket: request k applies after request k-1,
// whichever queue either rode in on. The split is the front end's core
// contract — timing parallelism with serial-equivalent state — and is
// what the determinism harness (TestMultiQueueDeterministic) pins down:
// any worker count replays bit-identical to the single-queue device.
//
// Submit/Drain/Completions is the life cycle: submit from any number of
// goroutines, Drain once to stop the workers and settle the clock, then
// read completions and stats. A panic escaping the device mid-apply
// (the crash-torture hook) aborts all queues and is re-thrown from
// Drain on the draining goroutine.
type MultiQueue struct {
	dev    *Device
	cfg    MQConfig
	base   time.Duration // device clock at attach; Arrival times are relative to it
	queues []*QueuePair
	work   []*mqWorker
	ticket *seqTicket
	clock  *epochClock
	wg     sync.WaitGroup

	submitMu  sync.Mutex
	nextSeq   uint64
	submitted uint64
	closed    bool

	panicMu  sync.Mutex
	panicVal any
	crashed  bool
}

// mqWorker is the per-queue worker state. Everything here is touched
// only by the owning goroutine while the worker runs; readers wait for
// Drain.
type mqWorker struct {
	id       int
	clock    time.Duration
	reqs     uint64
	reads    uint64
	writes   uint64
	flushes  uint64
	batches  uint64
	maxBatch int
}

// NewMultiQueue attaches a multi-queue front end to d and starts its
// workers. The device must not be driven directly (Read/Write/Flush)
// until Drain returns.
func NewMultiQueue(d *Device, cfg MQConfig) *MultiQueue {
	cfg = cfg.withDefaults()
	m := &MultiQueue{
		dev:    d,
		cfg:    cfg,
		base:   d.Now(),
		ticket: newSeqTicket(),
		clock:  newEpochClock(cfg.Queues),
	}
	for i := 0; i < cfg.Queues; i++ {
		q := &QueuePair{id: i, sq: make(chan SQE, cfg.QueueDepth)}
		w := &mqWorker{id: i, clock: m.base}
		m.queues = append(m.queues, q)
		m.work = append(m.work, w)
		m.clock.publish(i, m.base)
	}
	m.wg.Add(cfg.Queues)
	for i := range m.queues {
		go m.runWorker(m.work[i], m.queues[i])
	}
	return m
}

// QueueCount returns the number of queue pairs.
func (m *MultiQueue) QueueCount() int { return m.cfg.Queues }

// Device returns the wrapped device.
func (m *MultiQueue) Device() *Device { return m.dev }

// Submit enqueues a read or write on queue pair q, arriving at the given
// trace-relative time. It blocks when the submission ring is full. The
// global apply order is the order Submit calls complete in, across all
// queues.
func (m *MultiQueue) Submit(q int, write bool, lpa addr.LPA, pages int, arrival time.Duration) error {
	op := OpRead
	if write {
		op = OpWrite
	}
	return m.SubmitOp(q, op, lpa, pages, arrival)
}

// SubmitOp is Submit for an arbitrary opcode (OpFlush has no LPA/Pages).
func (m *MultiQueue) SubmitOp(q int, op Op, lpa addr.LPA, pages int, arrival time.Duration) error {
	if q < 0 || q >= len(m.queues) {
		return fmt.Errorf("ssd: submit to queue %d of %d", q, len(m.queues))
	}
	// Sequence assignment and the ring send are one atomic step: SQEs
	// enter the rings in global sequence order, so the entries ahead of
	// any sequence in its ring are exactly the lower sequences routed to
	// the same queue — the ticket can never wait on an entry stuck
	// *behind* it, which is what makes a blocking send here deadlock-free.
	m.submitMu.Lock()
	defer m.submitMu.Unlock()
	if m.closed {
		return ErrQueueClosed
	}
	if m.aborted() {
		return ErrAborted
	}
	e := SQE{Seq: m.nextSeq, Op: op, LPA: lpa, Pages: pages, Arrival: arrival}
	m.queues[q].sq <- e
	m.nextSeq++
	m.submitted++
	return nil
}

// runWorker is one per-core worker: claim a batch, apply it in sequence
// order, stamp completions, publish the epoch.
func (m *MultiQueue) runWorker(w *mqWorker, q *QueuePair) {
	defer m.wg.Done()
	defer func() {
		if r := recover(); r != nil {
			// A crash escaped the device mid-apply (crash-torture hook or
			// a genuine bug). Record it, release every ticket waiter, and
			// keep consuming the ring so blocked submitters unwind; the
			// payload is re-thrown from Drain.
			m.recordPanic(r)
			m.ticket.abort()
			for e := range q.sq {
				q.cq = append(q.cq, CQE{SQE: e, Err: ErrAborted})
			}
		}
		m.clock.publish(w.id, w.clock)
	}()
	batch := make([]SQE, 0, m.cfg.Batch)
	for {
		e, ok := <-q.sq
		if !ok {
			return
		}
		batch = append(batch[:0], e)
		// Claim whatever else is already queued, up to the batch cap.
	claim:
		for len(batch) < m.cfg.Batch {
			select {
			case e2, ok2 := <-q.sq:
				if !ok2 {
					break claim
				}
				batch = append(batch, e2)
			default:
				break claim
			}
		}
		if len(batch) > w.maxBatch {
			w.maxBatch = len(batch)
		}
		w.batches++
		for _, e := range batch {
			q.cq = append(q.cq, m.apply(w, e))
		}
		// Epoch boundary: merge this worker's clock into the coherent
		// device horizon.
		m.clock.publish(w.id, w.clock)
	}
}

// apply runs one SQE against the device once its sequence comes up. The
// request starts at its arrival or when this worker's previous request
// completed, whichever is later — the per-queue FIFO a real CQ imposes —
// while the ticket pins the state-mutation order globally.
func (m *MultiQueue) apply(w *mqWorker, e SQE) CQE {
	start := m.base + e.Arrival
	if w.clock > start {
		start = w.clock
	}
	cqe := CQE{SQE: e, Start: start, Complete: start}
	if !m.ticket.wait(e.Seq) {
		cqe.Err = ErrAborted
		return cqe
	}
	// No deferred done: a panic below must leave the ticket held so the
	// crashed device stops cold (runWorker aborts the ticket instead).
	var lat time.Duration
	var err error
	switch e.Op {
	case OpRead:
		lat, err = m.dev.ReadAt(e.LPA, e.Pages, start)
	case OpWrite:
		lat, err = m.dev.WriteAt(e.LPA, e.Pages, start)
	case OpFlush:
		err = m.dev.Flush()
		if done := m.dev.Now(); done > start {
			lat = done - start
		}
	default:
		err = fmt.Errorf("ssd: unknown opcode %d", e.Op)
	}
	m.ticket.done()
	cqe.Complete = start + lat
	cqe.Err = err
	if cqe.Complete > w.clock {
		w.clock = cqe.Complete
	}
	w.reqs++
	switch e.Op {
	case OpRead:
		w.reads++
	case OpWrite:
		w.writes++
	case OpFlush:
		w.flushes++
	}
	return cqe
}

// Drain closes the submission rings, waits for every worker to finish,
// and settles the device clock on the merged epoch horizon. A device
// crash captured by a worker is re-thrown here, on the caller's
// goroutine, so crash-torture harnesses see the same panic the serial
// path would surface. Drain is idempotent.
func (m *MultiQueue) Drain() error {
	m.submitMu.Lock()
	if !m.closed {
		m.closed = true
		for _, q := range m.queues {
			close(q.sq)
		}
	}
	m.submitMu.Unlock()
	m.wg.Wait()
	m.panicMu.Lock()
	r := m.panicVal
	m.panicVal = nil // re-throw once
	m.panicMu.Unlock()
	if r != nil {
		panic(r)
	}
	m.dev.AdvanceTo(m.clock.Horizon())
	return nil
}

// Completions invokes fn for each of queue q's stamped completions in
// apply order, with times rebased to the front end's attach point (the
// trace-relative frame arrivals were submitted in). Call after Drain.
func (m *MultiQueue) Completions(q int, fn func(write bool, arrival, start, complete time.Duration, err error)) {
	for _, c := range m.queues[q].cq {
		fn(c.Op == OpWrite, c.Arrival, c.Start-m.base, c.Complete-m.base, c.Err)
	}
}

// FirstError returns the first per-request error in apply order, if any.
// Call after Drain.
func (m *MultiQueue) FirstError() error {
	var first *CQE
	for _, q := range m.queues {
		for i := range q.cq {
			c := &q.cq[i]
			if c.Err == nil {
				continue
			}
			if first == nil || c.Seq < first.Seq {
				first = c
			}
		}
	}
	if first == nil {
		return nil
	}
	return fmt.Errorf("ssd: request %d (%s %d+%d): %w", first.Seq, first.Op, first.LPA, first.Pages, first.Err)
}

// Read drives the device directly — a serial convenience for code
// holding a MultiQueue where a Device is expected. Never call with
// submissions in flight.
func (m *MultiQueue) Read(lpa addr.LPA, pages int) (time.Duration, error) {
	return m.dev.Read(lpa, pages)
}

// Write is the serial convenience counterpart of Read.
func (m *MultiQueue) Write(lpa addr.LPA, pages int) (time.Duration, error) {
	return m.dev.Write(lpa, pages)
}

// Now returns the wrapped device's virtual clock.
func (m *MultiQueue) Now() time.Duration { return m.dev.Now() }

// AdvanceTo forwards to the wrapped device; open-loop replay uses it for
// idle-gap advances when it falls back to the simulated-queue path.
func (m *MultiQueue) AdvanceTo(t time.Duration) { m.dev.AdvanceTo(t) }

func (m *MultiQueue) recordPanic(r any) {
	m.panicMu.Lock()
	if m.panicVal == nil {
		m.panicVal = r
	}
	m.crashed = true
	m.panicMu.Unlock()
}

func (m *MultiQueue) aborted() bool {
	m.panicMu.Lock()
	defer m.panicMu.Unlock()
	return m.crashed
}

// QueueStats is one worker's share of the front end's traffic.
type QueueStats struct {
	Requests, Reads, Writes, Flushes uint64
	// Batches counts the worker's epochs; MaxBatch is the largest batch
	// it claimed in one epoch.
	Batches  uint64
	MaxBatch int
	// Clock is the worker's final logical clock, relative to attach.
	Clock time.Duration
}

// MQStats is the merged front-end view: per-queue attribution that sums
// to the device's host counters, plus the epoch coordinator's horizon
// and frontier. Call after Drain.
type MQStats struct {
	Queues               int
	Submitted, Completed uint64
	Epochs               uint64
	MaxBatch             int
	// Horizon and Frontier are the epoch clock's max and min merged
	// worker clocks, relative to attach.
	Horizon, Frontier time.Duration
	PerQueue          []QueueStats
}

// MQStats reports the front end's merged statistics. Call after Drain;
// worker fields are unsynchronized while workers run.
func (m *MultiQueue) MQStats() MQStats {
	s := MQStats{
		Queues:    m.cfg.Queues,
		Submitted: m.submitted,
		Epochs:    m.clock.Epochs(),
		Horizon:   m.clock.Horizon() - m.base,
		Frontier:  m.clock.Frontier() - m.base,
	}
	for i, w := range m.work {
		qs := QueueStats{
			Requests: w.reqs,
			Reads:    w.reads,
			Writes:   w.writes,
			Flushes:  w.flushes,
			Batches:  w.batches,
			MaxBatch: w.maxBatch,
			Clock:    w.clock - m.base,
		}
		s.Completed += uint64(len(m.queues[i].cq))
		if qs.MaxBatch > s.MaxBatch {
			s.MaxBatch = qs.MaxBatch
		}
		s.PerQueue = append(s.PerQueue, qs)
	}
	return s
}
