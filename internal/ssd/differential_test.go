package ssd

import (
	"fmt"
	"strings"
	"testing"

	"leaftl/internal/addr"
	"leaftl/internal/dftl"
	"leaftl/internal/leaftl"
)

// TestDifferentialLeaFTLvsDFTL replays one randomized GC-heavy workload
// through a LeaFTL device and a DFTL device per (policy, streams)
// combination and asserts the two stay bit-identical: the translation
// scheme must be invisible to the stored data, no matter how GC repacks
// it. Both devices self-verify every read against ground-truth tokens,
// invariants are audited mid-run, and the final per-LPA payloads are
// compared directly. The workload and token streams are deterministic,
// so any divergence is a translation or relocation bug, not noise.
func TestDifferentialLeaFTLvsDFTL(t *testing.T) {
	for _, policy := range GCPolicyNames() {
		for _, streams := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/streams%d", policy, streams), func(t *testing.T) {
				cfg := testConfig()
				cfg.GCPolicy = policy
				cfg.GCStreams = streams
				devA := newTestDevice(t, cfg, leaftl.New(4, cfg.Flash.PageSize, leaftl.WithCompactEvery(2000)))
				devB := newTestDevice(t, cfg, dftl.New(cfg.Flash.PageSize, 1<<20))
				devs := []*Device{devA, devB}

				rng := seededRand(t, int64(len(policy)*100+streams))
				logical := devA.LogicalPages()
				hot := logical / 5
				written := make(map[int]bool)
				for op := 0; op < 25000; op++ {
					lpa := rng.Intn(logical - 8)
					if rng.Intn(100) < 70 { // skew toward a hot region to force churn
						lpa = rng.Intn(hot)
					}
					n := 1 + rng.Intn(8)
					if rng.Intn(100) < 65 {
						for _, d := range devs {
							if _, err := d.Write(addr.LPA(lpa), n); err != nil {
								t.Fatalf("op %d: %s write: %v", op, d.Scheme().Name(), err)
							}
						}
						for j := 0; j < n; j++ {
							written[lpa+j] = true
						}
					} else if written[lpa] {
						for _, d := range devs {
							if _, err := d.Read(addr.LPA(lpa), 1); err != nil {
								t.Fatalf("op %d: %s read: %v", op, d.Scheme().Name(), err)
							}
						}
					}
					if op%5000 == 4999 {
						for _, d := range devs {
							if err := d.CheckInvariants(); err != nil {
								t.Fatalf("op %d: %s: %v", op, d.Scheme().Name(), err)
							}
						}
					}
				}
				for _, d := range devs {
					if err := d.Flush(); err != nil {
						t.Fatal(err)
					}
					if err := d.CheckInvariants(); err != nil {
						t.Fatalf("%s: %v", d.Scheme().Name(), err)
					}
					if d.Stats().GCErases == 0 {
						t.Fatalf("%s: workload did not exercise GC", d.Scheme().Name())
					}
				}

				// Bit-identical host-visible data: every LPA's payload token
				// must match between the two devices (and the unwritten rest
				// must be empty on both).
				for lpa := 0; lpa < logical; lpa++ {
					if devA.token[lpa] != devB.token[lpa] {
						t.Fatalf("LPA %d: LeaFTL token %#x != DFTL token %#x", lpa, devA.token[lpa], devB.token[lpa])
					}
				}
				// And every written LPA reads back cleanly on both (the
				// devices verify tokens internally on every read).
				for lpa := range written {
					for _, d := range devs {
						if _, err := d.Read(addr.LPA(lpa), 1); err != nil {
							t.Fatalf("final read %d on %s: %v", lpa, d.Scheme().Name(), err)
						}
					}
				}
			})
		}
	}
}

// TestGCRefusesAllValidVictims fills the device so that every allocated
// block is fully valid and asserts each policy refuses to reclaim
// (clean error, no livelock): moving an all-valid block frees nothing.
func TestGCRefusesAllValidVictims(t *testing.T) {
	for _, policy := range GCPolicyNames() {
		t.Run(policy, func(t *testing.T) {
			cfg := testConfig()
			cfg.GCPolicy = policy
			d := newTestDevice(t, cfg, leaftl.New(0, cfg.Flash.PageSize))
			// Sequential fill with no rewrites: every flushed block is
			// 100% valid.
			logical := d.LogicalPages()
			for lpa := 0; lpa+8 <= logical; lpa += 8 {
				if _, err := d.Write(addr.LPA(lpa), 8); err != nil {
					t.Fatal(err)
				}
			}
			if err := d.Flush(); err != nil {
				t.Fatal(err)
			}
			if _, ok := d.pickVictim(); ok {
				t.Fatal("policy picked a victim from an all-valid device")
			}
			err := d.runGC(d.Now(), cfg.Flash.Blocks(), false)
			if err == nil {
				t.Fatal("runGC on an all-valid device must error, not loop")
			}
			if !strings.Contains(err.Error(), "no victim") {
				t.Errorf("unexpected error: %v", err)
			}
			if err := d.CheckInvariants(); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestGCFreePoolExhaustion overcommits the flash (zero over-provision,
// then churn) and asserts the device fails with a clean error instead
// of panicking or looping when GC cannot find space.
func TestGCFreePoolExhaustion(t *testing.T) {
	cfg := testConfig()
	cfg.OverProvision = 0 // logical space == raw space: GC has no slack
	d := newTestDevice(t, cfg, leaftl.New(0, cfg.Flash.PageSize))
	logical := d.LogicalPages()
	var err error
	for lpa := 0; lpa+8 <= logical && err == nil; lpa += 8 {
		_, err = d.Write(addr.LPA(lpa), 8)
	}
	if err == nil {
		err = d.Flush()
	}
	// Keep churning until the device runs out of blocks; it must surface
	// an error rather than wedge.
	rng := seededRand(t, 9)
	for i := 0; i < 200000 && err == nil; i++ {
		_, err = d.Write(addr.LPA(rng.Intn(logical)), 1)
	}
	if err == nil {
		t.Fatal("overcommitted device never reported exhaustion")
	}
	for _, want := range []string{"out of flash blocks", "no victim", "none are free"} {
		if strings.Contains(err.Error(), want) {
			return
		}
	}
	t.Errorf("unexpected exhaustion error: %v", err)
}

// TestWearLevelingUnderEachPolicy pins that wear leveling still
// triggers under every victim policy and stream count (a regression
// guard for the engine refactor: wear moves ride the same moveBlock
// path as GC).
func TestWearLevelingUnderEachPolicy(t *testing.T) {
	for _, policy := range GCPolicyNames() {
		for _, streams := range []int{1, 2} {
			t.Run(fmt.Sprintf("%s/streams%d", policy, streams), func(t *testing.T) {
				cfg := testConfig()
				cfg.GCPolicy = policy
				cfg.GCStreams = streams
				cfg.WearDelta = 2
				d := newTestDevice(t, cfg, leaftl.New(0, cfg.Flash.PageSize))
				rng := seededRand(t, 11)
				hot := d.LogicalPages() / 8
				for lpa := 0; lpa < d.LogicalPages()/2; lpa++ {
					if _, err := d.Write(addr.LPA(lpa), 1); err != nil {
						t.Fatal(err)
					}
				}
				for i := 0; i < 60000; i++ {
					if _, err := d.Write(addr.LPA(rng.Intn(hot)), 1); err != nil {
						t.Fatal(err)
					}
				}
				if d.Stats().WearMoves == 0 {
					t.Error("wear leveling never triggered despite skewed erases")
				}
				if err := d.CheckInvariants(); err != nil {
					t.Error(err)
				}
			})
		}
	}
}

// TestRandomWritePatternsProperty is the GC property test: random write
// patterns (varying skew, sizes, and rewrite rates) against every
// policy × stream combination must preserve all invariants and read
// back every byte, with GC active.
func TestRandomWritePatternsProperty(t *testing.T) {
	for _, policy := range GCPolicyNames() {
		for _, streams := range []int{1, 3} {
			t.Run(fmt.Sprintf("%s/streams%d", policy, streams), func(t *testing.T) {
				rng := seededRand(t, int64(len(policy)*10+streams))
				cfg := testConfig()
				cfg.GCPolicy = policy
				cfg.GCStreams = streams
				d := newTestDevice(t, cfg, leaftl.New(0, cfg.Flash.PageSize))
				logical := d.LogicalPages()

				// Random pattern parameters per subtest run.
				hotFrac := 0.5 + rng.Float64()*0.45
				hotSpace := 1 + rng.Intn(logical/4)
				maxReq := 1 + rng.Intn(12)
				written := make(map[int]bool)
				for op := 0; op < 25000; op++ {
					lpa := rng.Intn(logical - maxReq)
					if rng.Float64() < hotFrac {
						lpa = rng.Intn(hotSpace)
					}
					n := 1 + rng.Intn(maxReq)
					if _, err := d.Write(addr.LPA(lpa), n); err != nil {
						t.Fatalf("op %d: %v", op, err)
					}
					for j := 0; j < n; j++ {
						written[lpa+j] = true
					}
					if op%8000 == 7999 {
						if err := d.CheckInvariants(); err != nil {
							t.Fatalf("op %d: %v", op, err)
						}
					}
				}
				if err := d.Flush(); err != nil {
					t.Fatal(err)
				}
				if err := d.CheckInvariants(); err != nil {
					t.Fatal(err)
				}
				if d.Stats().GCErases == 0 {
					t.Fatal("pattern did not exercise GC")
				}
				for lpa := range written {
					if _, err := d.Read(addr.LPA(lpa), 1); err != nil {
						t.Fatalf("read %d: %v", lpa, err)
					}
				}
			})
		}
	}
}
