package ssd

import (
	"testing"

	"leaftl/internal/addr"
	"leaftl/internal/leaftl"
)

// churnBitIdentity drives a deterministic autotune workload with enough
// overwrite pressure to trigger GC, so the scenario covers the learned
// read path, the feedback controller, and the relocation path.
func churnBitIdentity(t *testing.T, d *Device) {
	t.Helper()
	logical := d.LogicalPages()
	rng := seededRand(t, 9021)
	for lpa := 0; lpa+8 <= logical/2; lpa += 8 {
		if _, err := d.Write(addr.LPA(lpa), 8); err != nil {
			t.Fatal(err)
		}
	}
	for op := 0; op < 6000; op++ {
		switch {
		case op%5 < 2:
			// Overwrite churn: invalidates pages, forces GC.
			if _, err := d.Write(addr.LPA(rng.Intn(logical/2)), 1+rng.Intn(3)); err != nil {
				t.Fatal(err)
			}
		case op%5 == 2:
			// Scattered single-page writes (learning-hostile).
			for i := 0; i < 4; i++ {
				if _, err := d.Write(addr.LPA(rng.Intn(logical/2)), 1); err != nil {
					t.Fatal(err)
				}
			}
		default:
			if _, err := d.Read(addr.LPA(rng.Intn(logical/4)), 1+rng.Intn(4)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
}

// TestBitmapOffBitIdentity pins the exact device state and counter
// values this scenario produced before the exactness bitmap existed
// (PR 8 HEAD). With the bitmap disabled — the default — the learned
// read path, feedback controller, and GC must reproduce them
// bit-identically: the feature off is the feature absent.
func TestBitmapOffBitIdentity(t *testing.T) {
	cfg := testConfig()
	d := newTestDevice(t, cfg, leaftl.New(8, cfg.Flash.PageSize,
		leaftl.WithAutoTune(0.02), leaftl.WithCompactEvery(400)))
	churnBitIdentity(t, d)
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	// Goldens captured at PR 8 HEAD (commit 2c54d81), before the bitmap
	// landed. Any drift here means bitmap-off changed device behavior.
	if got := d.StateDigest(); got != 0xf8e894966d11e254 {
		t.Errorf("state digest %#x, want 0xf8e894966d11e254", got)
	}
	type golden struct {
		name string
		got  uint64
		want uint64
	}
	for _, g := range []golden{
		{"HostPagesRead", st.HostPagesRead, 5971},
		{"HostPagesWrite", st.HostPagesWrite, 11136},
		{"GCRuns", st.GCRuns, 17},
		{"GCPagesMoved", st.GCPagesMoved, 1132},
		{"GCErases", st.GCErases, 137},
		{"Mispredictions", st.Mispredictions, 336},
		{"MissHintResolved", st.MissHintResolved, 68},
		{"MissFallbacks", st.MissFallbacks, 268},
		{"ApproxReads", st.ApproxReads, 548},
		{"OOBFallbacks", st.OOBFallbacks, 0},
		{"MetaReads", st.MetaReads, 0},
		{"MetaWrites", st.MetaWrites, 77},
		{"CacheHits", st.CacheHits, 2933},
		{"CacheMisses", st.CacheMisses, 2936},
	} {
		if g.got != g.want {
			t.Errorf("%s = %d, want %d", g.name, g.got, g.want)
		}
	}
}
