// Reliability layer: how the controller responds to the flash fault
// model. Corrupted OOB reverse mappings are rebuilt from a sibling
// page's OOB window (§3.5 stores every page's reverse mapping
// redundantly in its in-block neighbors' windows); uncorrectable data
// errors surface to the host as explicit *UECCError values — never as
// silently wrong data; blocks whose disturb or retention counters cross
// the configured thresholds are relocated through the GC streams
// (read-reclaim scrubbing); and blocks that fail a program or erase are
// retired from rotation with full free-pool and victim-index
// bookkeeping.
package ssd

import (
	"errors"
	"fmt"
	"time"

	"leaftl/internal/addr"
	"leaftl/internal/flash"
)

// UECCError is the host-visible I/O error for a read whose data could
// not be corrected or verified: the drive reports the failure rather
// than return bits it cannot vouch for.
type UECCError struct {
	LPA addr.LPA
	PPA addr.PPA // flash page that failed, or InvalidPPA for lost LPAs
}

func (e *UECCError) Error() string {
	if e.PPA == addr.InvalidPPA {
		return fmt.Sprintf("ssd: uncorrectable error: LPA %d lost", e.LPA)
	}
	return fmt.Sprintf("ssd: uncorrectable error reading LPA %d (PPA %d)", e.LPA, e.PPA)
}

// maxProgramAttempts caps how many fresh blocks a single page program
// may burn through before the device reports a hard failure (the drive
// is out of usable flash, not merely unlucky).
const maxProgramAttempts = 4

// verifiedRead performs the OOB-verified data read of ppa on behalf of
// lpa (§3.5). Under the fault model three things can go wrong:
//
//   - data-area UECC: the payload is lost to this read; the host gets a
//     *UECCError (a later retry re-samples, as real soft-decode does).
//   - OOB-area UECC: the payload decoded but the reverse mapping did
//     not; it is reconstructed from a sibling page's OOB window. If no
//     sibling can be decoded either, an exact translation (authoritative
//     mapping table) is trusted without the OOB cross-check, while an
//     approximate one — where the reverse mapping is the only proof the
//     prediction hit the right page — fails with *UECCError rather than
//     return unverified data.
//   - reverse-mapping mismatch: bookkeeping corruption, a hard error.
//
// The read also ticks the block's disturb counter toward the scrub
// threshold.
func (d *Device) verifiedRead(ppa addr.PPA, lpa addr.LPA, exact bool, t time.Duration) (uint64, time.Duration, error) {
	tok, rev, t, err := d.arr.Read(ppa, t)
	d.noteDisturb(ppa)
	switch {
	case err == nil:
	case errors.Is(err, flash.ErrUncorrectable):
		d.stats.HostUECCs++
		return 0, t, &UECCError{LPA: lpa, PPA: ppa}
	case errors.Is(err, flash.ErrOOBUncorrectable):
		rev, t = d.reconstructReverse(ppa, t)
		if rev == addr.InvalidLPA {
			if !exact {
				d.stats.HostUECCs++
				return 0, t, &UECCError{LPA: lpa, PPA: ppa}
			}
			rev = lpa // exact mapping tables are authoritative without the cross-check
		}
	default:
		return 0, t, err
	}
	if rev != lpa {
		return 0, t, fmt.Errorf("ssd: OOB reverse mapping of PPA %d is %v, want %d", ppa, rev, lpa)
	}
	return tok, t, nil
}

// reconstructReverse rebuilds ppa's corrupted reverse mapping from a
// sibling page's OOB window, preferring the later sibling (programmed
// after ppa, so its window certainly recorded it). Each attempt costs a
// charged window read. Returns InvalidLPA when no in-block sibling
// window can be decoded.
func (d *Device) reconstructReverse(ppa addr.PPA, t time.Duration) (addr.LPA, time.Duration) {
	gw := d.gamma
	if gw < 1 {
		gw = 1 // exact schemes still write ±1 windows for reconstruction
	}
	if maxw := (d.cfg.Flash.OOBEntries() - 1) / 2; gw > maxw {
		gw = maxw
	}
	if gw < 1 {
		return addr.InvalidLPA, t
	}
	b := d.cfg.Flash.BlockOf(ppa)
	first := d.cfg.Flash.FirstPPA(b)
	last := first + addr.PPA(d.cfg.Flash.PagesPerBlock-1)
	for _, sib := range [2]addr.PPA{ppa + 1, ppa - 1} {
		if sib < first || sib > last || !d.arr.Written(sib) {
			continue
		}
		window, t2, err := d.arr.OOBWindow(sib, gw, t)
		t = t2
		if err != nil {
			continue // the sibling's own OOB is unreadable too
		}
		idx := gw + int(int64(ppa)-int64(sib))
		if idx >= 0 && idx < len(window) && window[idx] != addr.InvalidLPA {
			d.stats.OOBReconstructed++
			return window[idx], t
		}
	}
	return addr.InvalidLPA, t
}

// loseLPA records that lpa's only copy was destroyed: the mapping is
// dropped and every subsequent read returns *UECCError until the host
// rewrites the page. This is the honest failure mode — the alternative
// is returning stale or corrupt data.
func (d *Device) loseLPA(lpa addr.LPA) {
	d.invalidate(lpa)
	d.truth[lpa] = addr.InvalidPPA
	d.token[lpa] = 0
	d.lost[lpa] = true
	d.cache.Remove(lpa)
}

// noteDisturb checks ppa's block against the read-disturb scrub
// threshold after a data-path read, queueing it for read-reclaim.
func (d *Device) noteDisturb(ppa addr.PPA) {
	if d.cfg.ScrubDisturbReads == 0 {
		return
	}
	if b := d.cfg.Flash.BlockOf(ppa); d.arr.BlockReads(b) >= d.cfg.ScrubDisturbReads {
		d.queueScrub(b)
	}
}

// queueScrub marks a block for read-reclaim relocation if it is a
// sealed, healthy, allocated block (anything else is either already
// being handled or has nothing to refresh).
func (d *Device) queueScrub(b flash.BlockID) {
	if d.scrubSet[b] || d.isFree[b] || d.bad[b] || d.blockSeq[b] == 0 || d.isOpenDest(b) {
		return
	}
	d.scrubSet[b] = true
	d.scrubPend = append(d.scrubPend, b)
}

// retentionSweep queues blocks whose oldest page has sat programmed
// past the retention threshold (flush-time sweep; real firmware runs
// the equivalent patrol scrubber in idle time).
func (d *Device) retentionSweep(t time.Duration) {
	if d.cfg.ScrubRetentionAge == 0 {
		return
	}
	for b := 0; b < d.cfg.Flash.Blocks(); b++ {
		id := flash.BlockID(b)
		if d.arr.ProgrammedPages(id) == 0 {
			continue
		}
		if t-d.arr.BlockProgrammedAt(id) >= d.cfg.ScrubRetentionAge {
			d.queueScrub(id)
		}
	}
}

// drainScrub relocates the queued scrub victims through the normal GC
// relocation path (their pages re-enter the hot/cold streams and stay
// learnable). Blocks are re-checked at drain time — GC may have
// reclaimed them since they were queued — and deferred when no free
// destination headroom exists.
func (d *Device) drainScrub(t time.Duration) error {
	if len(d.scrubPend) == 0 {
		return nil
	}
	n := 0
	for _, b := range d.scrubPend {
		if d.isFree[b] || d.bad[b] || d.blockSeq[b] == 0 || d.isOpenDest(b) {
			d.scrubSet[b] = false
			continue
		}
		if len(d.free) == 0 {
			d.scrubPend[n] = b // defer until space frees up
			n++
			continue
		}
		d.scrubSet[b] = false
		d.crashPoint("scrub.begin")
		done, err := d.reclaimBlock(b, t, false)
		if err != nil {
			return err
		}
		d.stats.ScrubRelocations++
		if done > d.gcHorizon {
			d.gcHorizon = done
		}
		d.stats.GCTime += done - t
		t = done
	}
	d.scrubPend = d.scrubPend[:n]
	return nil
}

// abandonBadBlock seals a block whose page program just failed: it
// stays allocated with whatever valid pages it holds, enters the victim
// index like any sealed block (its surviving pages remain readable),
// and is marked bad so retireSweep relocates and retires it.
func (d *Device) abandonBadBlock(b flash.BlockID) {
	d.bad[b] = true
	d.stats.RetiredBlocks++ // counted at condemnation; swept out later
	d.victims.add(b, d.bvc[b], d.blockSeq[b], d.writeStamp)
}

// retireSweep pulls grown-bad blocks out of rotation: their remaining
// valid pages are relocated through the GC streams and the block is
// retired (never erased, never freed). Retirement needs free headroom
// for the relocated pages; with an empty pool the sweep defers to the
// next flush.
func (d *Device) retireSweep(t time.Duration) error {
	for b := 0; b < d.cfg.Flash.Blocks(); b++ {
		id := flash.BlockID(b)
		if !d.bad[b] || d.blockSeq[b] == 0 || d.isOpenDest(id) {
			continue
		}
		if len(d.free) == 0 {
			return nil
		}
		done, err := d.reclaimBlock(id, t, true)
		if err != nil {
			return err
		}
		if done > d.gcHorizon {
			d.gcHorizon = done
		}
		d.stats.GCTime += done - t
		t = done
	}
	return nil
}

// SetCrashHook installs fn to be invoked at named points on the flush,
// GC, scrub and metadata paths. The crash-torture harness panics out of
// the hook to model sudden power loss mid-operation; nil disables.
func (d *Device) SetCrashHook(fn func(point string)) { d.crashHook = fn }

func (d *Device) crashPoint(name string) {
	if d.crashHook != nil {
		d.crashHook(name)
	}
}

// TruthSnapshot returns copies of the simulator's per-LPA ground truth:
// the expected payload token (0 for unwritten or lost LPAs) and the
// lost bitmap. The torture harness snapshots it around crashes for
// differential verification.
func (d *Device) TruthSnapshot() (tokens []uint64, lost []bool) {
	return append([]uint64(nil), d.token...), append([]bool(nil), d.lost...)
}

// BufferedLPAs lists the LPAs currently dirty in the write buffer — the
// set a sudden power loss may legally lose (acknowledged at DRAM speed,
// not yet durable; §3.8 assumes no battery backing).
func (d *Device) BufferedLPAs() []addr.LPA {
	out := make([]addr.LPA, 0, len(d.buffer))
	for l := range d.buffer {
		out = append(out, l)
	}
	return out
}
