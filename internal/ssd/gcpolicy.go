package ssd

import (
	"fmt"

	"leaftl/internal/flash"
)

// GCPolicy selects garbage-collection victims (§3.6 and the classic
// log-structured cleaning literature). A policy is a pure selector over
// the device's VictimIndex; it owns no state of its own, so the same
// policy value can serve any number of devices.
//
// Built-in policies ("greedy", "cost-benefit", "fifo") are selected by
// name through Config.GCPolicy; see GCPolicyByName.
type GCPolicy interface {
	// Name identifies the policy in reports and CLI flags.
	Name() string
	// PickVictim returns the next victim among the index's sealed
	// candidate blocks. ok is false when no candidate would free net
	// space — every candidate is fully valid, or there are none — so
	// the caller can fail cleanly instead of looping.
	//
	// now is the device's logical clock (host page-write count), the
	// time base for block-age scoring.
	PickVictim(ix *VictimIndex, now uint64) (victim flash.BlockID, ok bool)
}

// GCPolicyNames lists the built-in policy names (CLI help, experiment
// matrices).
func GCPolicyNames() []string { return []string{"greedy", "cost-benefit", "fifo"} }

// GCPolicyByName returns a built-in policy. The empty string selects
// greedy, the device's historical default.
func GCPolicyByName(name string) (GCPolicy, error) {
	switch name {
	case "", "greedy":
		return greedyPolicy{}, nil
	case "cost-benefit", "costbenefit", "cb":
		return costBenefitPolicy{}, nil
	case "fifo":
		return fifoPolicy{}, nil
	}
	return nil, fmt.Errorf("ssd: unknown GC policy %q (want greedy, cost-benefit, or fifo)", name)
}

// VictimIndex is the incremental GC-candidate index: every sealed,
// allocated block bucketed by its current valid-page count, kept up to
// date by the device at each program/invalidate, so victim selection is
// O(1) amortized instead of an O(blocks) scan per reclaim.
//
// A block enters the index when it is sealed (a flush chunk finishes, or
// a GC destination stream fills), moves between buckets as its pages are
// invalidated, and leaves when it is erased or chosen for relocation.
// Open GC destination blocks are deliberately absent, which is what
// guarantees a policy never selects them.
type VictimIndex struct {
	ppb     int
	buckets [][]flash.BlockID // buckets[v]: candidate blocks with v valid pages
	pos     []int32           // block → index within its bucket (-1 when absent)
	cnt     []int32           // block → its bucket / valid count (-1 when absent)
	min     int               // lowest possibly-non-empty bucket (advancing cursor)
	size    int

	touch []uint64 // block → logical clock of its last program or invalidate
	seqOf []uint64 // block → allocation sequence recorded at add time

	// FIFO queue in seal order, with lazy deletion: entries whose block
	// left the index (or was erased and re-sealed under a new sequence)
	// are skipped and dropped when they reach the head.
	fifo    []flash.BlockID
	fifoSeq []uint64
	head    int
}

// newVictimIndex returns an empty index for a device with the given
// block count and pages per block.
func newVictimIndex(blocks, ppb int) *VictimIndex {
	ix := &VictimIndex{
		ppb:     ppb,
		buckets: make([][]flash.BlockID, ppb+1),
		pos:     make([]int32, blocks),
		cnt:     make([]int32, blocks),
		touch:   make([]uint64, blocks),
		seqOf:   make([]uint64, blocks),
		min:     ppb + 1,
	}
	for i := range ix.pos {
		ix.pos[i] = -1
		ix.cnt[i] = -1
	}
	return ix
}

// PagesPerBlock returns the block size the buckets are indexed by.
func (ix *VictimIndex) PagesPerBlock() int { return ix.ppb }

// Len returns the number of candidate blocks.
func (ix *VictimIndex) Len() int { return ix.size }

// Has reports whether b is a candidate.
func (ix *VictimIndex) Has(b flash.BlockID) bool { return ix.cnt[b] >= 0 }

// Valid returns b's valid-page count (-1 when b is not a candidate).
func (ix *VictimIndex) Valid(b flash.BlockID) int { return int(ix.cnt[b]) }

// Age returns how many host page writes ago block b was last modified
// (programmed into, or had a page invalidated) — the cost-benefit
// policy's age term, on the device's logical clock.
func (ix *VictimIndex) Age(b flash.BlockID, now uint64) uint64 {
	if t := ix.touch[b]; now > t {
		return now - t
	}
	return 0
}

// Seq returns b's allocation sequence number recorded when it was
// sealed (FIFO order; 0 when b is not a candidate).
func (ix *VictimIndex) Seq(b flash.BlockID) uint64 {
	if ix.cnt[b] < 0 {
		return 0
	}
	return ix.seqOf[b]
}

// MinValid returns the smallest valid-page count over all candidates,
// advancing the internal cursor (-1 when the index is empty). The
// cursor only moves down when a block is added below it, so repeated
// calls are O(1) amortized.
func (ix *VictimIndex) MinValid() int {
	if ix.size == 0 {
		return -1
	}
	for ix.min <= ix.ppb && len(ix.buckets[ix.min]) == 0 {
		ix.min++
	}
	if ix.min > ix.ppb {
		return -1 // unreachable while size > 0; defensive
	}
	return ix.min
}

// Bucket returns the candidates holding exactly v valid pages. The
// returned slice is the index's own storage — callers must not retain
// or mutate it across index updates.
func (ix *VictimIndex) Bucket(v int) []flash.BlockID {
	if v < 0 || v > ix.ppb {
		return nil
	}
	return ix.buckets[v]
}

// add registers a freshly sealed block with its current valid count and
// allocation sequence.
func (ix *VictimIndex) add(b flash.BlockID, valid int, seq, now uint64) {
	if ix.cnt[b] >= 0 {
		panic(fmt.Sprintf("ssd: GC index double-add of block %d", b))
	}
	ix.cnt[b] = int32(valid)
	ix.pos[b] = int32(len(ix.buckets[valid]))
	ix.buckets[valid] = append(ix.buckets[valid], b)
	ix.seqOf[b] = seq
	ix.touch[b] = now
	ix.size++
	if valid < ix.min {
		ix.min = valid
	}
	ix.fifo = append(ix.fifo, b)
	ix.fifoSeq = append(ix.fifoSeq, seq)
	ix.compactFIFO()
}

// remove unregisters a block (victim selection, wear-level move, or
// erase). Removing an absent block is a no-op, so the device can call
// it unconditionally on any reclaim path.
func (ix *VictimIndex) remove(b flash.BlockID) {
	v := ix.cnt[b]
	if v < 0 {
		return
	}
	ix.unbucket(b, int(v))
	ix.cnt[b] = -1
	ix.pos[b] = -1
	ix.size--
	// The FIFO entry is dropped lazily: its recorded sequence no longer
	// matches seqOf once the block is re-added after an erase, and
	// cnt[b] is -1 until then.
}

// update moves a candidate to the bucket of its new valid count; blocks
// not in the index (open GC destinations, free blocks) are ignored.
func (ix *VictimIndex) update(b flash.BlockID, valid int) {
	old := ix.cnt[b]
	if old < 0 || int(old) == valid {
		return
	}
	ix.unbucket(b, int(old))
	ix.cnt[b] = int32(valid)
	ix.pos[b] = int32(len(ix.buckets[valid]))
	ix.buckets[valid] = append(ix.buckets[valid], b)
	if valid < ix.min {
		ix.min = valid
	}
}

// note records a modification of block b at the given logical clock —
// the age input of cost-benefit scoring. It applies to any block,
// candidate or not (an open destination's writes count as
// modifications, so a block seals with an honest age).
func (ix *VictimIndex) note(b flash.BlockID, now uint64) { ix.touch[b] = now }

// unbucket removes b from bucket v with the swap-with-last trick.
func (ix *VictimIndex) unbucket(b flash.BlockID, v int) {
	bucket := ix.buckets[v]
	i := ix.pos[b]
	last := len(bucket) - 1
	moved := bucket[last]
	bucket[i] = moved
	ix.pos[moved] = i
	ix.buckets[v] = bucket[:last]
}

// compactFIFO rebuilds the queue once stale entries could dominate it.
// Live candidates are bounded by the block count, so rebuilding in seal
// order whenever the queue grows past twice that (or the head has
// consumed half of it) keeps memory O(blocks) under every policy —
// greedy and cost-benefit never advance the head themselves, so
// without this the lazily-deleted entries would accumulate for the
// lifetime of the device. Amortized O(1) per add.
func (ix *VictimIndex) compactFIFO() {
	if len(ix.fifo)-ix.head <= 2*len(ix.pos)+64 && ix.head <= len(ix.fifo)/2 {
		return
	}
	w := 0
	for i := ix.head; i < len(ix.fifo); i++ {
		b := ix.fifo[i]
		if ix.cnt[b] >= 0 && ix.fifoSeq[i] == ix.seqOf[b] {
			ix.fifo[w], ix.fifoSeq[w] = b, ix.fifoSeq[i]
			w++
		}
	}
	ix.fifo, ix.fifoSeq, ix.head = ix.fifo[:w], ix.fifoSeq[:w], 0
}

// greedyPolicy picks a block with the fewest valid pages — the paper's
// §3.6 policy and the device's default. O(1) amortized via the bucket
// cursor.
type greedyPolicy struct{}

// Name implements GCPolicy.
func (greedyPolicy) Name() string { return "greedy" }

// PickVictim implements GCPolicy.
func (greedyPolicy) PickVictim(ix *VictimIndex, _ uint64) (flash.BlockID, bool) {
	v := ix.MinValid()
	if v < 0 || v >= ix.PagesPerBlock() {
		// Empty, or even the emptiest block is fully valid: moving it
		// frees nothing net of the copies.
		return 0, false
	}
	bucket := ix.Bucket(v)
	return bucket[len(bucket)-1], true
}

// cbSample bounds how many low-utilization candidates one cost-benefit
// pick scores. Scoring every allocated block would reintroduce the
// O(blocks) scan the index exists to avoid; sampling the least-valid
// candidates keeps selection O(1) amortized while still letting age
// reorder the front of the utilization distribution (the same bounded-
// candidates move production FTLs and the d-choices literature use).
const cbSample = 64

// costBenefitPolicy scores age·(1−u)/(2u) — the LFS/e-greedy
// cost-benefit formula: u is the block's utilization, the 2u term
// charges both the read and the write of each live page, and age
// (writes since the block last changed) rewards cold blocks whose
// remaining valid pages are unlikely to be invalidated for free later.
type costBenefitPolicy struct{}

// Name implements GCPolicy.
func (costBenefitPolicy) Name() string { return "cost-benefit" }

// PickVictim implements GCPolicy.
func (costBenefitPolicy) PickVictim(ix *VictimIndex, now uint64) (flash.BlockID, bool) {
	ppb := ix.PagesPerBlock()
	minV := ix.MinValid()
	if minV < 0 || minV >= ppb {
		return 0, false
	}
	var (
		best      flash.BlockID
		bestScore = -1.0
		found     bool
		seen      int
	)
	for v := minV; v < ppb && seen < cbSample; v++ {
		for _, b := range ix.Bucket(v) {
			if v == 0 {
				// A fully-invalid block is a free win regardless of age.
				return b, true
			}
			u := float64(v) / float64(ppb)
			score := float64(ix.Age(b, now)+1) * (1 - u) / (2 * u)
			if score > bestScore {
				best, bestScore, found = b, score, true
			}
			if seen++; seen >= cbSample {
				break
			}
		}
	}
	return best, found
}

// fifoPolicy reclaims blocks in allocation order, the log-structured
// baseline: oldest sealed block first, regardless of how many valid
// pages it still holds. Fully-valid blocks are skipped (not dequeued)
// rather than moved — relocating them frees nothing and would livelock
// the reclaim loop — so FIFO degrades to "oldest block that frees
// space".
type fifoPolicy struct{}

// Name implements GCPolicy.
func (fifoPolicy) Name() string { return "fifo" }

// PickVictim implements GCPolicy.
func (fifoPolicy) PickVictim(ix *VictimIndex, _ uint64) (flash.BlockID, bool) {
	for i := ix.head; i < len(ix.fifo); i++ {
		b := ix.fifo[i]
		if ix.cnt[b] < 0 || ix.fifoSeq[i] != ix.seqOf[b] {
			// Stale entry (erased, or erased and re-sealed under a new
			// sequence): drop it permanently once it reaches the head.
			if i == ix.head {
				ix.head++
			}
			continue
		}
		if int(ix.cnt[b]) >= ix.ppb {
			continue // all valid: refuse, but keep queued for later
		}
		return b, true
	}
	return 0, false
}
