package ssd

import (
	"sort"
	"time"

	"leaftl/internal/addr"
	"leaftl/internal/flash"
	"leaftl/internal/ftl"
)

// RecoveryReport summarizes a crash-recovery scan (§3.8, §5).
type RecoveryReport struct {
	// ScanTime is the simulated wall time of the recovery flash traffic
	// (OOB scan plus translation-page reads), bounded by the busiest
	// channel (the paper scans channels in parallel).
	ScanTime time.Duration
	// PagesScanned counts OOB reads performed.
	PagesScanned uint64
	// BlocksScanned counts programmed blocks visited.
	BlocksScanned int
	// MappingsRebuilt counts live LPA→PPA pairs re-learned from the OOB
	// scan (pairs in groups the GMD could not restore).
	MappingsRebuilt int
	// GroupsRestored counts segment groups restored directly from their
	// flash translation-page images via the GMD, skipping re-learning.
	GroupsRestored int
	// MappingsRestored counts live LPAs covered by restored groups.
	MappingsRestored int
	// TransPagesRestored counts the flash translation pages the restored
	// GMD references. They are not read during recovery — restored
	// groups demand-load on first access, where the reads are charged as
	// MetaReads — so restart is O(directory), not O(mapping).
	TransPagesRestored int
	// JournalDeltasReplayed counts mapping-delta journal records replayed
	// onto GMD base images to materialize the persisted group set (zero
	// when the scheme does not journal metadata).
	JournalDeltasReplayed uint64
	// OOBScanErrors counts pages whose own OOB failed to decode during
	// the scan; OOBScanReconstructed of those were recovered from a
	// sibling page's OOB window (one extra charged read each).
	OOBScanErrors        int
	OOBScanReconstructed int
	// LostMappings counts live mappings the scan could not recover: the
	// newest copy's OOB was unreadable even via siblings, so the LPA is
	// marked lost (reads return *UECCError until the host rewrites it)
	// rather than silently resurrected from a stale older copy.
	LostMappings int
}

// Recover simulates a power failure without battery-backed DRAM (§3.8):
// every controller RAM structure is lost — the write buffer, data
// cache, mapping state, PVT/BVC bitmaps, free pool, victim index, GC
// streams and scrub queue — and the firmware rebuilds all of it from
// what survives on flash: the pages themselves, their OOB reverse
// mappings and write sequence numbers, the persisted translation-page
// images the GMD references, and the bad-block table (a reserved flash
// region on real parts). The crash may have hit mid-flush, mid-GC or
// mid-metadata-write; the rebuild makes no assumption about where.
//
// When both schemes page groups through a Global Mapping Directory
// (ftl.GroupPaged), recovery first restores the GMD: every group whose
// translation-page image was current at the crash is revived verbatim
// from flash. Only groups whose latest state existed solely in DRAM are
// re-learned from the OOB scan. Each page's OOB carries its reverse LPA
// and a write sequence number, so the newest copy of every LPA wins
// regardless of which block GC packed it into.
//
// The scan runs under the fault model: an unreadable OOB is retried via
// the page's sibling window, and a live copy that stays unreadable is
// reported lost — never silently replaced by a stale older copy.
//
// Buffered-but-unflushed writes are lost, exactly as on a real drive
// without power-loss protection; the device's ground truth is rebuilt
// from flash so subsequent reads verify the recovered state.
func (d *Device) Recover(fresh ftl.Scheme) (RecoveryReport, error) {
	var rep RecoveryReport
	cfg := d.cfg.Flash

	// Pre-crash oracle state, for the data-loss audit below. Everything
	// the firmware itself knew is discarded.
	preTruth := append([]addr.PPA(nil), d.truth...)

	d.buffer = make(map[addr.LPA]uint64, d.cfg.BufferPages)
	d.bufOrder = nil
	d.cache.Resize(0)
	for i := range d.streams {
		d.streams[i] = gcStream{}
	}
	for i := range d.flushLanes {
		d.flushLanes[i] = gcStream{}
	}
	for i := range d.scrubSet {
		d.scrubSet[i] = false
	}
	d.scrubPend = d.scrubPend[:0]
	d.flushDone = d.now
	d.gcHorizon = d.now

	// GMD restore: surviving translation-page images short-circuit the
	// re-learn for their groups. Under the mapping-delta journal the
	// images are materialized by replaying each group's delta chain onto
	// its base record — the replay count is the journal tail length the
	// crash left behind.
	var restored map[addr.GroupID][]byte
	if oldGP, ok := d.scheme.(ftl.GroupPaged); ok {
		if freshGP, ok := fresh.(ftl.GroupPaged); ok {
			var replayBase uint64
			oldJ, journaling := d.scheme.(ftl.Journaled)
			journaling = journaling && oldJ.JournalEnabled()
			if journaling {
				replayBase = oldJ.JournalStats().Replays
			}
			d.wireJournal(fresh)
			images := oldGP.PersistedGroups()
			if journaling {
				rep.JournalDeltasReplayed = oldJ.JournalStats().Replays - replayBase
			}
			if len(images) > 0 {
				if err := freshGP.RestoreGroups(images); err != nil {
					return rep, err
				}
				restored = images
				rep.GroupsRestored = len(images)
				rep.TransPagesRestored = freshGP.TranslationPages()
			}
		}
	}

	// Die-parallel OOB scan of every programmed block. Burned pages
	// (failed programs) carry a nulled OOB and are skipped; unreadable
	// OOBs retry through the sibling window at one extra read.
	chanBusy := make([]time.Duration, cfg.Units())
	type copyRef struct {
		ppa addr.PPA
		seq uint64
	}
	newest := make(map[addr.LPA]copyRef)
	blockMaxSeq := make([]uint64, cfg.Blocks())
	var unreadable []addr.PPA
	for b := 0; b < cfg.Blocks(); b++ {
		id := flash.BlockID(b)
		programmed := d.arr.ProgrammedPages(id)
		if programmed == 0 {
			continue
		}
		rep.BlocksScanned++
		first := cfg.FirstPPA(id)
		ch := cfg.UnitOf(first)
		for i := 0; i < programmed; i++ {
			ppa := first + addr.PPA(i)
			rep.PagesScanned++
			chanBusy[ch] += cfg.ReadLatency
			lpa, seq, err := d.arr.ScanOOB(ppa, d.now)
			if err != nil {
				rep.OOBScanErrors++
				chanBusy[ch] += cfg.ReadLatency // the sibling window read
				lpa, seq, err = d.arr.ScanSibling(ppa, d.now)
				if err != nil {
					unreadable = append(unreadable, ppa)
					continue
				}
				rep.OOBScanReconstructed++
			}
			if seq > blockMaxSeq[b] {
				blockMaxSeq[b] = seq
			}
			if lpa == addr.InvalidLPA || int(lpa) >= d.logicalPages {
				continue // burned page
			}
			if cur, ok := newest[lpa]; !ok || seq > cur.seq {
				newest[lpa] = copyRef{ppa: ppa, seq: seq}
			}
		}
	}
	for _, busy := range chanBusy {
		if busy > rep.ScanTime {
			rep.ScanTime = busy
		}
	}

	// Data-loss audit: a page the scan could not attribute may have been
	// the live copy of its LPA. Resurrecting an older copy in its place
	// would return stale data, so the LPA is reported lost instead. (The
	// oracle reverse stands in for end-to-end data checksums a host
	// would use to reject the stale copy.)
	for _, ppa := range unreadable {
		l := d.arr.Reverse(ppa)
		if l == addr.InvalidLPA || preTruth[l] != ppa {
			continue // a stale copy died unread; nothing was live there
		}
		delete(newest, l)
		d.lost[l] = true
		rep.LostMappings++
	}
	// LPAs lost before the crash stay lost: their flash copies (if any
	// survive) are stale by definition.
	for l, lost := range d.lost {
		if lost {
			delete(newest, addr.LPA(l))
		}
	}

	// Rebuild ground truth, PVT and BVC from the scan.
	for l := range d.truth {
		d.truth[l] = addr.InvalidPPA
		d.token[l] = 0
	}
	for p := range d.valid {
		d.valid[p] = false
	}
	for b := range d.bvc {
		d.bvc[b] = 0
	}
	for lpa, ref := range newest {
		d.truth[lpa] = ref.ppa
		d.token[lpa] = d.arr.TokenAt(ref.ppa)
		d.valid[ref.ppa] = true
		d.bvc[cfg.BlockOf(ref.ppa)]++
	}

	// Rebuild the free pool, allocation sequence and victim index. Fully
	// erased healthy blocks are free; every programmed block is sealed
	// (streams reset closed) and re-enters the victim index — including
	// bad ones, which the next retireSweep pulls back out. Allocation
	// order is re-derived from each block's newest write sequence.
	type blockOrder struct {
		b   int
		seq uint64
	}
	var order []blockOrder
	d.free = d.free[:0]
	for b := 0; b < cfg.Blocks(); b++ {
		d.blockSeq[b] = 0
		d.isFree[b] = false
		if d.arr.ProgrammedPages(flash.BlockID(b)) == 0 {
			if !d.bad[b] {
				d.free = append(d.free, flash.BlockID(b))
				d.isFree[b] = true
			}
			continue
		}
		order = append(order, blockOrder{b: b, seq: blockMaxSeq[b]})
	}
	sort.Slice(order, func(i, j int) bool { return order[i].seq < order[j].seq })
	d.nextSeq = 0
	d.victims = newVictimIndex(cfg.Blocks(), cfg.PagesPerBlock)
	for _, o := range order {
		d.nextSeq++
		d.blockSeq[o.b] = d.nextSeq
		d.victims.add(flash.BlockID(o.b), d.bvc[o.b], d.nextSeq, d.writeStamp)
	}

	// Re-learn the surviving mappings in LPA order, committing in
	// ascending-PPA runs to respect the scheme contract. Pairs in
	// GMD-restored groups are skipped only when the restored image
	// actually locates them: a crash between flush programs and the
	// mapping commit leaves a clean-persisted image stale for exactly
	// those pages, and they must be re-learned from the scan (the
	// journal-replay role the OOB sequence numbers play in real
	// firmware).
	freshGamma := 0
	if g, ok := fresh.(ftl.Gamma); ok {
		freshGamma = g.Gamma()
	}
	pairs := make([]addr.Mapping, 0, len(newest))
	for lpa, ref := range newest {
		if _, ok := restored[addr.Group(lpa)]; ok && restoredCovers(fresh, lpa, ref.ppa, freshGamma) {
			continue
		}
		pairs = append(pairs, addr.Mapping{LPA: lpa, PPA: ref.ppa})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].LPA < pairs[j].LPA })
	start := 0
	for i := 1; i <= len(pairs); i++ {
		if i == len(pairs) || pairs[i].PPA <= pairs[i-1].PPA {
			fresh.Commit(pairs[start:i])
			start = i
		}
	}
	rep.MappingsRebuilt = len(pairs)
	if len(restored) > 0 {
		for lpa, ppa := range d.truth {
			if ppa == addr.InvalidPPA {
				continue
			}
			if _, ok := restored[addr.Group(addr.LPA(lpa))]; ok {
				rep.MappingsRestored++
			}
		}
	}

	fresh.SetBudget(d.mapBudget)
	d.scheme = fresh
	if g, ok := fresh.(ftl.Gamma); ok {
		d.gamma = g.Gamma()
	} else {
		d.gamma = 0
	}
	d.resizeCache()
	return rep, nil
}

// restoredCovers reports whether a restored group image already locates
// lpa at ppa: exactly, or — for approximate schemes — within the ±γ
// learning guarantee the read path's window search recovers from. The
// Translate side effects (demand-page LRU touches) are part of the
// recovery validation pass; its flash cost is subsumed by ScanTime.
func restoredCovers(fresh ftl.Scheme, lpa addr.LPA, ppa addr.PPA, gamma int) bool {
	tr, ok := fresh.Translate(lpa)
	if !ok {
		return false
	}
	if !tr.Approx {
		return tr.PPA == ppa
	}
	diff := int64(tr.PPA) - int64(ppa)
	if diff < 0 {
		diff = -diff
	}
	return diff <= int64(gamma)
}
