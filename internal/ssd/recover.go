package ssd

import (
	"sort"
	"time"

	"leaftl/internal/addr"
	"leaftl/internal/flash"
	"leaftl/internal/ftl"
)

// RecoveryReport summarizes a crash-recovery scan (§3.8, §5).
type RecoveryReport struct {
	// ScanTime is the simulated wall time of the recovery flash traffic
	// (OOB scan plus translation-page reads), bounded by the busiest
	// channel (the paper scans channels in parallel).
	ScanTime time.Duration
	// PagesScanned counts OOB reads performed.
	PagesScanned uint64
	// BlocksScanned counts allocated blocks visited.
	BlocksScanned int
	// MappingsRebuilt counts live LPA→PPA pairs re-learned from the OOB
	// scan (pairs in groups the GMD could not restore).
	MappingsRebuilt int
	// GroupsRestored counts segment groups restored directly from their
	// flash translation-page images via the GMD, skipping re-learning.
	GroupsRestored int
	// MappingsRestored counts live LPAs covered by restored groups.
	MappingsRestored int
	// TransPagesRestored counts the flash translation pages the restored
	// GMD references. They are not read during recovery — restored
	// groups demand-load on first access, where the reads are charged as
	// MetaReads — so restart is O(directory), not O(mapping).
	TransPagesRestored int
}

// Recover simulates a power failure without battery-backed DRAM (§3.8):
// the write buffer, data cache and all DRAM mapping state are lost, and
// the mapping is rebuilt into the given fresh scheme, which replaces the
// device's scheme.
//
// When both schemes page groups through a Global Mapping Directory
// (ftl.GroupPaged), recovery first restores the GMD: every group whose
// translation-page image was current at the crash (clean — evictions and
// periodic persistence write back before dropping DRAM state) is revived
// verbatim from flash, bit-identical to its pre-crash state. Only groups
// whose latest state existed solely in DRAM (dirty at the crash, or
// never persisted) are re-learned from the OOB scan. Each page's OOB
// carries its reverse LPA and a write sequence number, so the newest
// copy of every LPA wins regardless of which block GC packed it into.
//
// Buffered-but-unflushed writes are lost, exactly as on a real drive
// without power-loss protection; the device's ground truth rolls back so
// subsequent reads verify the recovered state.
func (d *Device) Recover(fresh ftl.Scheme) (RecoveryReport, error) {
	var rep RecoveryReport

	// Power loss drops the buffer; the expected payload reverts to the
	// last flushed copy (or nothing, if the LPA never reached flash).
	for l := range d.buffer {
		delete(d.buffer, l)
		if d.truth[l] == addr.InvalidPPA {
			d.token[l] = 0
		} else {
			d.token[l] = d.arr.TokenAt(d.truth[l])
		}
	}
	d.cache.Resize(0)

	// GMD restore: surviving translation-page images short-circuit the
	// rebuild for their groups.
	var restored map[addr.GroupID][]byte
	if oldGP, ok := d.scheme.(ftl.GroupPaged); ok {
		if freshGP, ok := fresh.(ftl.GroupPaged); ok {
			images := oldGP.PersistedGroups()
			if len(images) > 0 {
				if err := freshGP.RestoreGroups(images); err != nil {
					return rep, err
				}
				restored = images
				rep.GroupsRestored = len(images)
				rep.TransPagesRestored = freshGP.TranslationPages()
			}
		}
	}

	// Channel-parallel OOB scan of all allocated blocks. Pages belonging
	// to restored groups still cost their OOB read (the scan cannot know
	// an LPA before reading it) but skip the re-learn bookkeeping.
	chanBusy := make([]time.Duration, d.cfg.Flash.Channels)
	type copyRef struct {
		ppa addr.PPA
		seq uint64
	}
	newest := make(map[addr.LPA]copyRef)
	for b := 0; b < d.cfg.Flash.Blocks(); b++ {
		if d.blockSeq[b] == 0 {
			continue
		}
		rep.BlocksScanned++
		first := d.cfg.Flash.FirstPPA(flash.BlockID(b))
		ch := d.cfg.Flash.ChannelOf(first)
		for i := 0; i < d.cfg.Flash.PagesPerBlock; i++ {
			ppa := first + addr.PPA(i)
			if !d.arr.Written(ppa) {
				continue
			}
			rep.PagesScanned++
			chanBusy[ch] += d.cfg.Flash.ReadLatency
			lpa := d.arr.Reverse(ppa)
			if lpa == addr.InvalidLPA {
				continue
			}
			if _, ok := restored[addr.Group(lpa)]; ok {
				continue // the GMD already covers this group exactly
			}
			seq := d.arr.WriteSeq(ppa)
			if cur, ok := newest[lpa]; !ok || seq > cur.seq {
				newest[lpa] = copyRef{ppa: ppa, seq: seq}
			}
		}
	}
	for _, busy := range chanBusy {
		if busy > rep.ScanTime {
			rep.ScanTime = busy
		}
	}

	// Re-learn the surviving mappings in LPA order, committing in
	// ascending-PPA runs to respect the scheme contract.
	pairs := make([]addr.Mapping, 0, len(newest))
	for lpa, ref := range newest {
		pairs = append(pairs, addr.Mapping{LPA: lpa, PPA: ref.ppa})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].LPA < pairs[j].LPA })
	start := 0
	for i := 1; i <= len(pairs); i++ {
		if i == len(pairs) || pairs[i].PPA <= pairs[i-1].PPA {
			fresh.Commit(pairs[start:i])
			start = i
		}
	}
	rep.MappingsRebuilt = len(pairs)
	if len(restored) > 0 {
		for lpa, ppa := range d.truth {
			if ppa == addr.InvalidPPA {
				continue
			}
			if _, ok := restored[addr.Group(addr.LPA(lpa))]; ok {
				rep.MappingsRestored++
			}
		}
	}

	fresh.SetBudget(d.mapBudget)
	d.scheme = fresh
	if g, ok := fresh.(ftl.Gamma); ok {
		d.gamma = g.Gamma()
	} else {
		d.gamma = 0
	}
	d.resizeCache()
	return rep, nil
}
