package ssd

import (
	"testing"

	"leaftl/internal/addr"
	"leaftl/internal/flash"
	"leaftl/internal/leaftl"
)

func TestGCPolicyByName(t *testing.T) {
	for _, name := range append(GCPolicyNames(), "") {
		p, err := GCPolicyByName(name)
		if err != nil {
			t.Fatalf("GCPolicyByName(%q): %v", name, err)
		}
		want := name
		if want == "" {
			want = "greedy"
		}
		if p.Name() != want {
			t.Errorf("GCPolicyByName(%q).Name() = %q", name, p.Name())
		}
	}
	if _, err := GCPolicyByName("lru"); err == nil {
		t.Error("unknown policy name accepted")
	}
}

func TestVictimIndexBasics(t *testing.T) {
	const blocks, ppb = 16, 8
	ix := newVictimIndex(blocks, ppb)
	if ix.Len() != 0 || ix.MinValid() != -1 {
		t.Fatalf("fresh index: Len=%d MinValid=%d", ix.Len(), ix.MinValid())
	}

	ix.add(3, 5, 1, 10)
	ix.add(7, 2, 2, 11)
	ix.add(9, 8, 3, 12)
	if ix.Len() != 3 || ix.MinValid() != 2 {
		t.Fatalf("after adds: Len=%d MinValid=%d", ix.Len(), ix.MinValid())
	}
	if !ix.Has(7) || ix.Valid(7) != 2 {
		t.Fatalf("block 7: Has=%v Valid=%d", ix.Has(7), ix.Valid(7))
	}

	// Bucket moves track valid-count changes, including below the cursor.
	ix.update(3, 1)
	if ix.MinValid() != 1 {
		t.Errorf("MinValid after update = %d, want 1", ix.MinValid())
	}
	ix.update(3, 6)
	if ix.MinValid() != 2 {
		t.Errorf("MinValid after move back up = %d, want 2", ix.MinValid())
	}

	// Removal is idempotent and updates the cursor lazily.
	ix.remove(7)
	ix.remove(7)
	if ix.Len() != 2 || ix.MinValid() != 6 {
		t.Errorf("after remove: Len=%d MinValid=%d", ix.Len(), ix.MinValid())
	}

	// Ages advance on the logical clock from the recorded touch.
	if age := ix.Age(3, 30); age != 20 {
		t.Errorf("Age(3, 30) = %d, want 20", age)
	}
	ix.note(3, 28)
	if age := ix.Age(3, 30); age != 2 {
		t.Errorf("Age after note = %d, want 2", age)
	}
}

func TestVictimIndexRandomizedAgainstReference(t *testing.T) {
	const blocks, ppb = 32, 16
	ix := newVictimIndex(blocks, ppb)
	ref := map[flash.BlockID]int{} // block -> valid count
	rng := seededRand(t, 42)
	var seq uint64

	for op := 0; op < 20000; op++ {
		b := flash.BlockID(rng.Intn(blocks))
		switch {
		case !ix.Has(b):
			seq++
			v := rng.Intn(ppb + 1)
			ix.add(b, v, seq, uint64(op))
			ref[b] = v
		case rng.Intn(3) == 0:
			ix.remove(b)
			delete(ref, b)
		default:
			v := rng.Intn(ppb + 1)
			ix.update(b, v)
			ref[b] = v
		}

		if ix.Len() != len(ref) {
			t.Fatalf("op %d: Len=%d, reference %d", op, ix.Len(), len(ref))
		}
		wantMin := -1
		for _, v := range ref {
			if wantMin == -1 || v < wantMin {
				wantMin = v
			}
		}
		if got := ix.MinValid(); got != wantMin {
			t.Fatalf("op %d: MinValid=%d, reference %d", op, got, wantMin)
		}
		for b, v := range ref {
			if ix.Valid(b) != v {
				t.Fatalf("op %d: Valid(%d)=%d, reference %d", op, b, ix.Valid(b), v)
			}
		}
		// The lazily-deleted FIFO queue must stay O(blocks) no matter
		// how many seals/erases churn through (compactFIFO's bound).
		if live := len(ix.fifo) - ix.head; live > 2*blocks+64 {
			t.Fatalf("op %d: FIFO queue grew to %d live slots (blocks=%d); compaction not bounding it", op, live, blocks)
		}
	}
}

func TestGreedyPicksFewestValid(t *testing.T) {
	ix := newVictimIndex(8, 4)
	ix.add(1, 3, 1, 0)
	ix.add(2, 1, 2, 0)
	ix.add(3, 2, 3, 0)
	v, ok := (greedyPolicy{}).PickVictim(ix, 100)
	if !ok || v != 2 {
		t.Errorf("greedy picked %d (ok=%v), want block 2", v, ok)
	}
}

func TestCostBenefitPrefersOldBlocks(t *testing.T) {
	ix := newVictimIndex(8, 8)
	// Same utilization, different ages: the older block must win.
	ix.add(1, 4, 1, 90) // touched recently
	ix.add(2, 4, 2, 10) // cold
	v, ok := (costBenefitPolicy{}).PickVictim(ix, 100)
	if !ok || v != 2 {
		t.Errorf("cost-benefit picked %d (ok=%v), want the colder block 2", v, ok)
	}
	// Age can outweigh a worse utilization: block 2 now holds more
	// valid pages but block 1 was modified moments ago.
	ix.update(2, 5)
	ix.note(1, 99_990)
	v, ok = (costBenefitPolicy{}).PickVictim(ix, 100_000)
	if !ok || v != 2 {
		t.Errorf("cost-benefit picked %d (ok=%v), want aged block 2 despite more valid pages", v, ok)
	}
	// A fully-invalid block beats everything.
	ix.add(3, 0, 3, 99)
	if v, ok = (costBenefitPolicy{}).PickVictim(ix, 100); !ok || v != 3 {
		t.Errorf("cost-benefit picked %d (ok=%v), want free-win block 3", v, ok)
	}
}

func TestFIFOPicksOldestAndSkipsAllValid(t *testing.T) {
	ix := newVictimIndex(8, 4)
	ix.add(5, 4, 1, 0) // oldest, but fully valid
	ix.add(6, 3, 2, 0)
	ix.add(7, 0, 3, 0)
	v, ok := (fifoPolicy{}).PickVictim(ix, 0)
	if !ok || v != 6 {
		t.Errorf("fifo picked %d (ok=%v), want oldest non-full block 6", v, ok)
	}
	// Once block 5 gains an invalid page it becomes the head choice.
	ix.update(5, 3)
	if v, ok = (fifoPolicy{}).PickVictim(ix, 0); !ok || v != 5 {
		t.Errorf("fifo picked %d (ok=%v), want unblocked head 5", v, ok)
	}
	// Stale entries (erase + re-seal) don't resurrect the old order.
	ix.remove(5)
	ix.add(5, 1, 9, 0)
	if v, ok = (fifoPolicy{}).PickVictim(ix, 0); !ok || v != 6 {
		t.Errorf("fifo picked %d (ok=%v), want 6 ahead of re-sealed 5", v, ok)
	}
}

func TestAllPoliciesRefuseWhenNothingFrees(t *testing.T) {
	for _, name := range GCPolicyNames() {
		p, err := GCPolicyByName(name)
		if err != nil {
			t.Fatal(err)
		}
		ix := newVictimIndex(4, 4)
		if _, ok := p.PickVictim(ix, 0); ok {
			t.Errorf("%s picked a victim from an empty index", name)
		}
		ix.add(0, 4, 1, 0) // fully valid
		ix.add(1, 4, 2, 0)
		if v, ok := p.PickVictim(ix, 0); ok {
			t.Errorf("%s picked all-valid block %d; must refuse", name, v)
		}
	}
}

func TestStreamClassification(t *testing.T) {
	cfg := testConfig()
	cfg.GCStreams = 4
	d := newTestDevice(t, cfg, leaftl.New(0, cfg.Flash.PageSize))
	// Stamp three LPAs at different recencies under a known clock.
	d.writeStamp = uint64(d.logicalPages) * 4
	d.lpaHeat[10] = d.writeStamp - 1                        // just rewritten
	d.lpaHeat[20] = d.writeStamp - uint64(d.logicalPages)/8 // middle-aged
	d.lpaHeat[30] = d.writeStamp - 2*uint64(d.logicalPages) // ancient
	if s := d.streamOf(10); s != 0 {
		t.Errorf("hot LPA classified into stream %d, want 0", s)
	}
	if s := d.streamOf(30); s != cfg.GCStreams-1 {
		t.Errorf("ancient LPA classified into stream %d, want %d", s, cfg.GCStreams-1)
	}
	mid := d.streamOf(20)
	if mid <= 0 || mid >= cfg.GCStreams-1 {
		t.Errorf("middle-aged LPA classified into stream %d, want an interior stream", mid)
	}
	// Monotonicity: older pages never land in a hotter stream.
	prev := 0
	for age := uint64(1); age < 8*uint64(d.logicalPages); age *= 2 {
		d.lpaHeat[40] = d.writeStamp - age
		s := d.streamOf(40)
		if s < prev {
			t.Fatalf("age %d classified into stream %d, hotter than younger age's %d", age, s, prev)
		}
		prev = s
	}
}

// TestPoliciesDiverge drives an identical hot/cold churn through each
// policy and checks the device records materially different reclaim
// behaviour — the whole point of the engine being pluggable.
func TestPoliciesDiverge(t *testing.T) {
	erases := map[string]uint64{}
	for _, name := range GCPolicyNames() {
		cfg := testConfig()
		cfg.GCPolicy = name
		d := newTestDevice(t, cfg, leaftl.New(0, cfg.Flash.PageSize))
		fillAndChurn(t, d, 40000)
		if err := d.CheckInvariants(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		st := d.Stats()
		if st.GCErases == 0 {
			t.Fatalf("%s: GC never ran", name)
		}
		erases[name] = st.GCErases
	}
	if erases["greedy"] == erases["fifo"] && erases["greedy"] == erases["cost-benefit"] {
		t.Errorf("all policies produced identical erase counts %v; engine not plugged through", erases)
	}
}

// TestStreamsSeparateHotCold checks that with streams enabled, a
// skewed churn yields no worse write amplification and that the device
// stays consistent; it also pins that relocated data survives.
func TestStreamsSeparateHotCold(t *testing.T) {
	wafs := map[int]float64{}
	for _, streams := range []int{1, 4} {
		cfg := testConfig()
		cfg.GCStreams = streams
		d := newTestDevice(t, cfg, leaftl.New(0, cfg.Flash.PageSize))
		fillAndChurn(t, d, 60000)
		if err := d.CheckInvariants(); err != nil {
			t.Fatalf("streams=%d: %v", streams, err)
		}
		for lpa := 0; lpa < d.LogicalPages(); lpa += 11 {
			if _, err := d.Read(addr.LPA(lpa), 1); err != nil {
				t.Fatalf("streams=%d: read %d: %v", streams, lpa, err)
			}
		}
		wafs[streams] = d.WAF()
	}
	t.Logf("WAF: 1 stream %.3f, 4 streams %.3f", wafs[1], wafs[4])
	if wafs[4] > wafs[1]*1.05 {
		t.Errorf("4-stream WAF %.3f noticeably worse than single-stream %.3f", wafs[4], wafs[1])
	}
}

// TestGCStallAttribution checks that a GC-heavy churn books nonzero GC
// time and that flush stalls caused by GC are attributed.
func TestGCStallAttribution(t *testing.T) {
	cfg := testConfig()
	d := newTestDevice(t, cfg, leaftl.New(0, cfg.Flash.PageSize))
	fillAndChurn(t, d, 60000)
	st := d.Stats()
	if st.GCTime == 0 {
		t.Error("GC ran but GCTime is zero")
	}
	if st.GCStall == 0 {
		t.Error("GC ran under sustained churn but no flush stall was attributed to it")
	}
	if st.GCStall > st.GCTime {
		t.Errorf("GCStall %v exceeds total GCTime %v", st.GCStall, st.GCTime)
	}
}
