package ssd

import (
	"testing"

	"leaftl/internal/addr"
	"leaftl/internal/ftl"
	"leaftl/internal/leaftl"
)

// TestDeviceShardedSchemeMatchesPlain drives identical workloads through
// a device with the plain LeaFTL scheme and one with the 8-way sharded
// scheme. Sharding must be invisible to the device: same latencies, same
// counters, same flash traffic, same mapping footprint.
func TestDeviceShardedSchemeMatchesPlain(t *testing.T) {
	for _, gamma := range []int{0, 4} {
		cfg := testConfig()
		plainDev := newTestDevice(t, cfg, leaftl.New(gamma, cfg.Flash.PageSize, leaftl.WithCompactEvery(2000)))
		shardDev := newTestDevice(t, cfg, leaftl.NewSharded(gamma, cfg.Flash.PageSize, 8, leaftl.WithCompactEvery(2000)))

		devs := []*Device{plainDev, shardDev}
		rng := seededRand(t, 11)
		span := plainDev.LogicalPages()
		for op := 0; op < 4000; op++ {
			lpa := addr.LPA(rng.Intn(span - 8))
			n := 1 + rng.Intn(8)
			if rng.Intn(3) == 0 {
				for _, d := range devs {
					if _, err := d.Read(lpa, n); err != nil {
						t.Fatalf("%s: read: %v", d.Scheme().Name(), err)
					}
				}
			} else {
				for _, d := range devs {
					if _, err := d.Write(lpa, n); err != nil {
						t.Fatalf("%s: write: %v", d.Scheme().Name(), err)
					}
				}
			}
		}
		for _, d := range devs {
			if err := d.Flush(); err != nil {
				t.Fatal(err)
			}
		}

		if a, b := plainDev.Stats(), shardDev.Stats(); a != b {
			t.Errorf("gamma %d: device stats diverge:\nplain   %+v\nsharded %+v", gamma, a, b)
		}
		if a, b := plainDev.Now(), shardDev.Now(); a != b {
			t.Errorf("gamma %d: simulated clocks diverge: %v vs %v", gamma, a, b)
		}
		if a, b := plainDev.FlashStats(), shardDev.FlashStats(); a != b {
			t.Errorf("gamma %d: flash traffic diverges: %+v vs %+v", gamma, a, b)
		}
		if a, b := plainDev.Scheme().FullSizeBytes(), shardDev.Scheme().FullSizeBytes(); a != b {
			t.Errorf("gamma %d: mapping footprint diverges: %d vs %d", gamma, a, b)
		}
	}
}

// TestDeviceDetectsConcurrentScheme checks the capability plumbing: the
// sharded scheme advertises ftl.Concurrent, the plain one does not.
func TestDeviceDetectsConcurrentScheme(t *testing.T) {
	cfg := testConfig()
	var plain ftl.Scheme = leaftl.New(0, cfg.Flash.PageSize)
	var sharded ftl.Scheme = leaftl.NewSharded(0, cfg.Flash.PageSize, 4)
	if _, ok := plain.(ftl.Concurrent); ok {
		t.Error("plain scheme must not advertise concurrent translation")
	}
	c, ok := sharded.(ftl.Concurrent)
	if !ok {
		t.Fatal("sharded scheme must advertise concurrent translation")
	}
	if c.TranslateShards() != 4 {
		t.Errorf("TranslateShards = %d, want 4", c.TranslateShards())
	}
	if cfg.Shards = 4; cfg.Validate() != nil {
		t.Error("config with Shards=4 must validate")
	}
}
