package ssd

import "hash/fnv"

// StateDigest folds every piece of order-dependent device state — host
// ground truth, PVT/BVC bitmaps, free-pool and allocation order, the
// write buffer with its flush order, GC streams, and reliability marks —
// into one FNV-1a hash. Two devices with equal digests hold bit-identical
// firmware state: the same data at the same physical addresses with the
// same bookkeeping.
//
// Virtual-time fields (the clock, flush/GC horizons, latency histograms,
// Stats durations) are deliberately excluded: the multi-queue determinism
// harness replays one trace under different worker counts, which changes
// *when* requests run but must never change *what* the device holds. The
// digest is the "what".
func (d *Device) StateDigest() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	w64 := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	wbool := func(b bool) {
		if b {
			w64(1)
		} else {
			w64(0)
		}
	}

	for l := range d.truth {
		w64(uint64(d.truth[l]))
		w64(d.token[l])
		wbool(d.lost[l])
	}
	for p := range d.valid {
		wbool(d.valid[p])
	}
	for b := range d.bvc {
		w64(uint64(d.bvc[b]))
		w64(d.blockSeq[b])
		wbool(d.bad[b])
		wbool(d.scrubSet[b])
	}
	w64(uint64(len(d.free)))
	for _, b := range d.free {
		w64(uint64(b))
	}
	w64(uint64(len(d.scrubPend)))
	for _, b := range d.scrubPend {
		w64(uint64(b))
	}
	w64(d.nextSeq)
	w64(d.writeStamp)
	w64(uint64(len(d.bufOrder)))
	for _, l := range d.bufOrder {
		w64(uint64(l))
		w64(d.buffer[l])
	}
	for _, st := range d.streams {
		wbool(st.open)
		w64(uint64(st.block))
		w64(uint64(st.next))
	}
	// Flush lanes exist only on a multi-die geometry (a single-die
	// device seals every flush block immediately, so the lanes are
	// always closed and hashing them would only perturb the legacy
	// digest stream).
	if d.dieLanes > 1 {
		for _, st := range d.flushLanes {
			wbool(st.open)
			w64(uint64(st.block))
			w64(uint64(st.next))
		}
	}
	return h.Sum64()
}
