package flash

import (
	"errors"
	"testing"
	"time"

	"leaftl/internal/addr"
)

// dieCfg returns the 2-channel test geometry with a die/plane fan-out.
func dieCfg(dies, planes int) Config {
	c := testCfg() // 2 channels × 4 blocks/chan × 8 pages
	c.DiesPerChan = dies
	c.PlanesPerDie = planes
	return c
}

func TestDieGeometryAccessors(t *testing.T) {
	c := dieCfg(2, 2)
	if c.Units() != 4 {
		t.Fatalf("Units = %d, want 4", c.Units())
	}
	for b := 0; b < c.Blocks(); b++ {
		id := BlockID(b)
		if got := c.UnitOfBlock(id); got != b%4 {
			t.Errorf("UnitOfBlock(%d) = %d, want %d", b, got, b%4)
		}
		// Channel assignment is unchanged from the one-die geometry:
		// unit mod channels ≡ block mod channels.
		if got := c.ChannelOf(c.FirstPPA(id)); got != b%2 {
			t.Errorf("ChannelOf(block %d) = %d, want %d", b, got, b%2)
		}
		if got := c.DieOfBlock(id); got != (b%4)/2 {
			t.Errorf("DieOfBlock(%d) = %d, want %d", b, got, (b%4)/2)
		}
	}
	// Consecutive page offsets alternate planes.
	for i := 0; i < 4; i++ {
		if got := c.PlaneOf(addr.PPA(i)); got != i%2 {
			t.Errorf("PlaneOf(%d) = %d, want %d", i, got, i%2)
		}
	}
	// The zero value means one die, one plane — the legacy geometry.
	legacy := testCfg()
	if legacy.Dies() != 1 || legacy.Planes() != 1 || legacy.Units() != legacy.Channels {
		t.Errorf("zero die/plane config: dies=%d planes=%d units=%d",
			legacy.Dies(), legacy.Planes(), legacy.Units())
	}
}

func TestDieConfigValidate(t *testing.T) {
	for name, mutate := range map[string]func(*Config){
		"negative dies":        func(c *Config) { c.DiesPerChan = -1 },
		"negative planes":      func(c *Config) { c.PlanesPerDie = -1 },
		"blocks not divisible": func(c *Config) { c.DiesPerChan = 3 },  // 4 % 3 != 0
		"pages not divisible":  func(c *Config) { c.PlanesPerDie = 3 }, // 8 % 3 != 0
		"too many planes":      func(c *Config) { c.PagesPerBlock = 1 << 7; c.PlanesPerDie = 64 },
		"negative bus":         func(c *Config) { c.DiesPerChan = 2; c.BusXfer = -time.Microsecond },
	} {
		c := testCfg()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	good := dieCfg(2, 2)
	if err := good.Validate(); err != nil {
		t.Errorf("valid die geometry rejected: %v", err)
	}
}

// TestDieParallelPrograms: two programs to different dies of the same
// channel serialize only on the short bus transfer, not on each other's
// cell time — the die-level parallelism the geometry exists to model.
func TestDieParallelPrograms(t *testing.T) {
	a, _ := NewArray(dieCfg(2, 1))
	cfg := a.Config()
	x := cfg.busXfer()
	// Block 0 → channel 0 die 0; block 2 → channel 0 die 1.
	d1, _ := a.Write(cfg.FirstPPA(0), 0, 0, 0)
	d2, _ := a.Write(cfg.FirstPPA(2), 1, 0, 0)
	if d1 != x+cfg.WriteLatency {
		t.Errorf("first program done at %v, want bus+cell %v", d1, x+cfg.WriteLatency)
	}
	if d2 != 2*x+cfg.WriteLatency {
		t.Errorf("sibling-die program done at %v, want %v (bus-serialized only)", d2, 2*x+cfg.WriteLatency)
	}
	if d2 >= 2*cfg.WriteLatency {
		t.Errorf("sibling-die program serialized on the die: done %v", d2)
	}
}

// TestDieOutOfOrderReads: a read to an idle die completes before an
// earlier-issued program to a busy die — out-of-order completion across
// dies of one channel.
func TestDieOutOfOrderReads(t *testing.T) {
	a, _ := NewArray(dieCfg(2, 1))
	cfg := a.Config()
	// Program die 0 (block 0), then read die 1 (block 2, erased page —
	// reads of unwritten pages still charge the die and bus).
	dProg, _ := a.Write(cfg.FirstPPA(0), 0, 0, 0)
	_, _, dRead, _ := a.Read(cfg.FirstPPA(2), 0)
	if dRead >= dProg {
		t.Errorf("idle-die read done at %v, not before the busy-die program at %v", dRead, dProg)
	}
}

// TestPlanePairProgram pins the multi-plane window: back-to-back
// programs to alternating planes of one die complete together; a third
// program to an already-used plane opens a fresh window behind them.
func TestPlanePairProgram(t *testing.T) {
	a, _ := NewArray(dieCfg(1, 2))
	cfg := a.Config()
	x := cfg.busXfer()
	d1, _ := a.Write(0, 0, 0, 0) // plane 0
	d2, _ := a.Write(1, 1, 0, 0) // plane 1: joins the window
	if d1 != x+cfg.WriteLatency || d2 != d1 {
		t.Errorf("plane pair done at %v/%v, want both %v", d1, d2, x+cfg.WriteLatency)
	}
	d3, _ := a.Write(2, 2, 0, 0) // plane 0 again: window full for that plane
	if d3 != d1+cfg.WriteLatency {
		t.Errorf("third program done at %v, want next window %v", d3, d1+cfg.WriteLatency)
	}
}

// TestPlaneWindowClosedByRead: an interposed read on the die breaks the
// window — the next program must not retroactively join a window that is
// no longer the tail of the die's backlog.
func TestPlaneWindowClosedByRead(t *testing.T) {
	a, _ := NewArray(dieCfg(1, 2))
	d1, _ := a.Write(0, 0, 0, 0) // plane 0 opens a window
	a.Read(0, 0)                 // preempting read on the same die
	d2, _ := a.Write(1, 1, 0, 0) // plane 1 must NOT complete with d1
	if d2 <= d1 {
		t.Errorf("program after read joined a stale window: done %v ≤ %v", d2, d1)
	}
}

// TestRetriesExtendReadOnDie is the regression for the retry-arbitration
// bug: ECC read-retry rounds used to re-enter channel arbitration, so a
// retrying read behind a queued erase re-paid the erase wait per round.
// Retries re-sense the page where the first attempt finished — they run
// back to back from the read's own completion on its die.
func TestRetriesExtendReadOnDie(t *testing.T) {
	cfg := testCfg()
	// A page this hot always exhausts the retry budget and reports UECC —
	// the retry charge itself is what the test pins, deterministically.
	cfg.Fault = FaultConfig{
		Enabled:        true,
		Seed:           1,
		BaseRBER:       0.5,
		ECCHardBits:    8,
		ECCSoftBits:    24,
		MaxReadRetries: 4,
	}
	a, err := NewArray(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w, r, e := cfg.WriteLatency, cfg.ReadLatency, cfg.EraseLatency
	if _, err := a.Write(0, 7, 1, 0); err != nil { // block 0, unit 0
		t.Fatal(err)
	}
	a.Erase(2, 0)                     // block 2 shares unit 0; queued behind the program
	a.Write(cfg.FirstPPA(2), 0, 0, 0) // re-program: the tail is now a program
	before := a.Stats().ECCRetries

	// The read preempts the tail program but may not start before the
	// erase completes (w + e); its retries extend from its own finish.
	_, _, done, err := a.Read(0, 0)
	if !errors.Is(err, ErrUncorrectable) {
		t.Fatalf("aged read err = %v, want uncorrectable", err)
	}
	rounds := time.Duration(a.Stats().ECCRetries - before)
	if rounds == 0 {
		t.Fatal("no retry rounds charged")
	}
	if want := w + e + (1+rounds)*r; done != want {
		t.Errorf("retrying read done at %v, want %v (%d contiguous rounds; no re-arbitration behind the backlog)",
			done, want, rounds)
	}
}

// TestMetaPlacementDataIndependent is the regression for the meta-routing
// bug: translation-page placement used to rotate on the PageReads +
// PageWrites counters, so unrelated data traffic moved where a given
// translation page lived. Placement is a pure function of the page's
// identity.
func TestMetaPlacementDataIndependent(t *testing.T) {
	const metaPage = 3
	probe := func(primeWrites, primeReads int) int {
		a, _ := NewArray(testCfg())
		var now time.Duration
		for i := 0; i < primeWrites; i++ {
			d, err := a.Write(addr.PPA(i), addr.LPA(i), 0, now)
			if err != nil {
				t.Fatal(err)
			}
			now = d
		}
		for i := 0; i < primeReads; i++ {
			_, _, d, _ := a.Read(0, now)
			now = d
		}
		quiet := now + time.Hour
		units := a.Config().Units()
		before := make([]time.Duration, units)
		for u := 0; u < units; u++ {
			before[u] = a.BusyUntil(u)
		}
		a.MetaWrite(metaPage, quiet)
		unit := -1
		for u := 0; u < units; u++ {
			if a.BusyUntil(u) != before[u] {
				unit = u
			}
		}
		return unit
	}
	want := probe(0, 0)
	if want != metaPage%testCfg().Units() {
		t.Fatalf("meta page %d routed to unit %d, want identity-derived %d",
			metaPage, want, metaPage%testCfg().Units())
	}
	for _, prime := range [][2]int{{1, 0}, {5, 3}, {8, 7}} {
		if got := probe(prime[0], prime[1]); got != want {
			t.Errorf("after %d writes + %d reads, meta page %d moved to unit %d (was %d): placement depends on data traffic",
				prime[0], prime[1], metaPage, got, want)
		}
	}
}
