package flash

import (
	"testing"
	"time"

	"leaftl/internal/addr"
)

func testCfg() Config {
	c := SimulatorDefaults()
	c.Channels = 2
	c.BlocksPerChan = 4
	c.PagesPerBlock = 8
	return c
}

func TestGeometry(t *testing.T) {
	c := testCfg()
	if c.Blocks() != 8 || c.TotalPages() != 64 {
		t.Fatalf("blocks=%d pages=%d", c.Blocks(), c.TotalPages())
	}
	if c.BlockOf(17) != 2 || c.PageOf(17) != 1 {
		t.Errorf("BlockOf/PageOf(17) = %d/%d", c.BlockOf(17), c.PageOf(17))
	}
	if c.ChannelOf(17) != 0 { // block 2 on channel 2%2=0
		t.Errorf("ChannelOf(17) = %d", c.ChannelOf(17))
	}
	if c.FirstPPA(3) != 24 {
		t.Errorf("FirstPPA(3) = %d", c.FirstPPA(3))
	}
	if got := SimulatorDefaults().OOBEntries(); got != 32 {
		t.Errorf("OOBEntries = %d, want 32", got)
	}
}

func TestConfigValidate(t *testing.T) {
	if err := testCfg().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := testCfg()
	bad.Channels = 0
	if err := bad.Validate(); err == nil {
		t.Error("Channels=0 accepted")
	}
}

func TestWriteReadEraseCycle(t *testing.T) {
	a, err := NewArray(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	done, _ := a.Write(0, 100, 0xdead, 0)
	if done != a.Config().WriteLatency {
		t.Errorf("first write done at %v", done)
	}
	tok, rev, _, _ := a.Read(0, done)
	if tok != 0xdead || rev != 100 {
		t.Errorf("read back %x/%d", tok, rev)
	}
	if a.WriteSeq(0) == 0 {
		t.Error("write seq not stamped")
	}
	a.Erase(0, 0)
	if a.Written(0) {
		t.Error("page written after erase")
	}
	if a.EraseCount(0) != 1 {
		t.Errorf("erase count %d", a.EraseCount(0))
	}
	// Page is programmable again.
	a.Write(0, 7, 1, 0)
	if a.Reverse(0) != 7 {
		t.Errorf("reverse after rewrite = %d", a.Reverse(0))
	}
}

func TestOutOfOrderProgramPanics(t *testing.T) {
	a, _ := NewArray(testCfg())
	defer func() {
		if recover() == nil {
			t.Error("out-of-order program did not panic")
		}
	}()
	a.Write(1, 0, 0, 0) // page 1 before page 0
}

func TestDoubleProgramPanics(t *testing.T) {
	a, _ := NewArray(testCfg())
	a.Write(0, 0, 0, 0)
	defer func() {
		if recover() == nil {
			t.Error("double program did not panic")
		}
	}()
	a.Write(0, 0, 0, 0)
}

func TestChannelQueueing(t *testing.T) {
	a, _ := NewArray(testCfg())
	// Block 0 (channel 0) and block 1 (channel 1) proceed in parallel;
	// two ops on the same channel serialize.
	d1, _ := a.Write(0, 0, 0, 0)                      // ch 0
	d2, _ := a.Write(a.Config().FirstPPA(1), 1, 0, 0) // ch 1
	if d1 != d2 {
		t.Errorf("parallel channels finished at %v and %v", d1, d2)
	}
	d3, _ := a.Write(1, 2, 0, 0) // ch 0 again, queued behind d1
	if d3 != d1+a.Config().WriteLatency {
		t.Errorf("queued write done at %v, want %v", d3, d1+a.Config().WriteLatency)
	}
}

func TestOOBWindow(t *testing.T) {
	a, _ := NewArray(testCfg())
	for i := 0; i < 8; i++ {
		a.Write(addr.PPA(i), addr.LPA(1000+i*2), 0, 0)
	}
	win, _, _ := a.OOBWindow(4, 2, 0)
	want := []addr.LPA{1004, 1006, 1008, 1010, 1012}
	for i := range want {
		if win[i] != want[i] {
			t.Errorf("window[%d] = %d, want %d", i, win[i], want[i])
		}
	}
	// Window at the block edge nulls out-of-block slots.
	win, _, _ = a.OOBWindow(0, 2, 0)
	if win[0] != addr.InvalidLPA || win[1] != addr.InvalidLPA {
		t.Errorf("edge window = %v, want leading nulls", win[:2])
	}
	if win[2] != 1000 {
		t.Errorf("center of edge window = %d", win[2])
	}
}

func TestMetaOpsCountAndCharge(t *testing.T) {
	a, _ := NewArray(testCfg())
	before := a.Stats()
	done := a.MetaRead(0, 0)
	if done < a.Config().ReadLatency {
		t.Errorf("meta read done at %v", done)
	}
	a.MetaWrite(0, 0)
	st := a.Stats()
	if st.PageReads != before.PageReads+1 || st.PageWrites != before.PageWrites+1 {
		t.Errorf("meta ops not counted: %+v", st)
	}
}

func TestWriteSeqMonotone(t *testing.T) {
	a, _ := NewArray(testCfg())
	a.Write(0, 0, 0, 0)
	a.Write(1, 1, 0, 0)
	if !(a.WriteSeq(1) > a.WriteSeq(0)) {
		t.Error("write sequence not monotone")
	}
	if a.WriteSeq(5) != 0 {
		t.Error("unwritten page has nonzero seq")
	}
}

func TestBusyUntil(t *testing.T) {
	a, _ := NewArray(testCfg())
	a.Write(0, 0, 0, 5*time.Millisecond)
	if a.BusyUntil(0) != 5*time.Millisecond+a.Config().WriteLatency {
		t.Errorf("BusyUntil = %v", a.BusyUntil(0))
	}
}

// TestReadSuspensionPrograms pins the program-suspension shortcut: a
// read arriving behind a multi-program backlog waits at most one
// program's worth before starting.
func TestReadSuspensionPrograms(t *testing.T) {
	a, _ := NewArray(testCfg())
	cfg := a.Config()
	// Three programs queued back to back on channel 0 (block 0).
	for i := 0; i < 3; i++ {
		a.Write(addr.PPA(i), addr.LPA(i), 0, 0)
	}
	_, _, done, _ := a.Read(0, 0)
	want := cfg.WriteLatency + cfg.ReadLatency // one program, not three
	if done != want {
		t.Errorf("read behind program burst done at %v, want %v", done, want)
	}
}

// TestReadWaitsForErase is the regression for the suspension bug: the
// shortcut used to cap a read's wait at one WriteLatency even when the
// channel was busy with an erase, letting reads start mid-erase. A read
// behind an erase must wait for the erase to finish.
func TestReadWaitsForErase(t *testing.T) {
	a, _ := NewArray(testCfg())
	cfg := a.Config()
	a.Write(0, 0, 0, 0)
	a.Erase(0, cfg.WriteLatency) // queued right after the program
	busy := a.BusyUntil(0)
	if busy != cfg.WriteLatency+cfg.EraseLatency {
		t.Fatalf("BusyUntil = %v", busy)
	}
	// Block 2 shares channel 0; its page 16 is unwritten but readable
	// (reads of erased pages still occupy the channel).
	_, _, done, _ := a.Read(16, 0)
	if want := busy + cfg.ReadLatency; done != want {
		t.Errorf("read behind erase done at %v, want %v (no mid-erase start)", done, want)
	}
}

// TestReadBehindEraseThenProgram is the regression for the stale-tail
// bug: with a program at the tail but an erase still earlier in the
// queue, the suspension shortcut used to cap the wait at one
// WriteLatency — starting the read mid-erase. The cap may shorten the
// wait behind the tail program, but never below the erase's completion.
func TestReadBehindEraseThenProgram(t *testing.T) {
	a, _ := NewArray(testCfg())
	cfg := a.Config()
	a.Write(0, 0, 0, 0)
	a.Erase(0, cfg.WriteLatency)
	a.Write(0, 9, 9, 0) // re-program after the erase; tail is a program
	eraseDone := cfg.WriteLatency + cfg.EraseLatency
	_, _, done, _ := a.Read(16, 0)
	if want := eraseDone + cfg.ReadLatency; done != want {
		t.Errorf("read behind erase+program done at %v, want %v (no mid-erase start)", done, want)
	}
}

// TestReadBehindProgramThenErase covers the opposite ordering: the
// erase is at the tail, so the suspension shortcut must not apply at
// all — the read drains the whole backlog.
func TestReadBehindProgramThenErase(t *testing.T) {
	a, _ := NewArray(testCfg())
	cfg := a.Config()
	a.Write(0, 0, 0, 0)
	a.Write(1, 1, 0, 0)
	a.Erase(2, 0) // block 2 shares unit 0; erase is the tail
	busy := 2*cfg.WriteLatency + cfg.EraseLatency
	if a.BusyUntil(0) != busy {
		t.Fatalf("BusyUntil = %v, want %v", a.BusyUntil(0), busy)
	}
	_, _, done, _ := a.Read(16, 0)
	if want := busy + cfg.ReadLatency; done != want {
		t.Errorf("read behind program+erase done at %v, want %v", done, want)
	}
}
