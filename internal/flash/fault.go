// Fault model: a deterministic, seeded reliability layer over the flash
// array. Per-page raw bit-error rate (RBER) grows with the block's erase
// count (wear), the time since the page was programmed (retention, on
// the simulator's logical clock), and the block's read count since its
// last erase (read disturb) — the three device-level aging mechanisms
// the Device-Level Optimization survey catalogs as the defining
// constraint of real controllers. Bit errors are sampled per read per
// region (data area and OOB area separately); errors within the inline
// ECC budget are silent, errors within the read-retry budget are
// corrected at the cost of extra charged read rounds, and anything
// beyond surfaces as an uncorrectable (UECC) error. Programs and erases
// can fail outright with wear-growing probability, which is what drives
// bad-block retirement in the device above.
//
// The model is first-order on purpose: error counts are Poisson samples
// of RBER × region bits, and ECC is a threshold code. What matters for
// the reproduction is determinism (same seed + same op sequence = same
// faults), monotone growth with wear/retention/disturb, and that every
// injected error is either corrected, reconstructed, or reported —
// never silently returned as wrong data.
package flash

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Sentinel errors of the fault model. Callers match with errors.Is; the
// wrapped forms carry the failing address.
var (
	// ErrUncorrectable reports a data-area read whose bit errors exceed
	// the read-retry ECC budget: the page contents are lost to this read
	// (a later read re-samples — real soft-decode retries are themselves
	// probabilistic).
	ErrUncorrectable = errors.New("flash: uncorrectable ECC error (data area)")
	// ErrOOBUncorrectable reports a read whose data area decoded fine
	// but whose OOB area did not: the payload is intact, the reverse
	// mapping is not. The device layer reconstructs it from a sibling
	// page's OOB window.
	ErrOOBUncorrectable = errors.New("flash: uncorrectable ECC error (OOB area)")
	// ErrProgramFail reports a failed page program. The page is burned
	// (it counts as written and holds no usable data) and the block
	// should be retired by the layer above.
	ErrProgramFail = errors.New("flash: program failure")
	// ErrEraseFail reports a failed block erase; the block keeps its
	// stale contents and should be retired.
	ErrEraseFail = errors.New("flash: erase failure")
)

// FaultConfig parameterizes the seeded fault model. The zero value
// (Enabled == false) is perfect flash: no errors, no failures, no
// sampling cost.
type FaultConfig struct {
	// Enabled turns fault injection on.
	Enabled bool
	// Seed drives all sampling. The same seed over the same operation
	// sequence reproduces the same faults exactly.
	Seed int64

	// BaseRBER is the raw bit-error rate of a fresh page immediately
	// after program on an unworn block.
	BaseRBER float64
	// WearRBER is the RBER added per erase cycle of the page's block.
	WearRBER float64
	// RetentionRBER is the RBER added per RetentionUnit elapsed between
	// the page's program and the read (charge loss over time).
	RetentionRBER float64
	// RetentionUnit is the logical-clock interval of one retention step.
	RetentionUnit time.Duration
	// DisturbRBER is the RBER added per DisturbUnit reads served by the
	// page's block since its last erase (read disturb).
	DisturbRBER float64
	// DisturbUnit is the block read count of one disturb step.
	DisturbUnit uint32

	// ECCHardBits is the per-data-area bit-error budget of the inline
	// hard decode: at most this many errors are corrected for free.
	ECCHardBits int
	// ECCSoftBits is the budget with read-retry soft decode; errors
	// beyond it are uncorrectable. The OOB area uses both budgets scaled
	// by its size (with a floor of 1/2 bits), mirroring the weaker
	// spare-area code on real parts.
	ECCSoftBits int
	// MaxReadRetries caps the retry rounds charged for a soft-decoded
	// read; each round occupies the channel for one page-read latency.
	MaxReadRetries int

	// ProgramFailBase/ProgramFailWear give the per-program failure
	// probability: base + wear·(block erase count).
	ProgramFailBase float64
	ProgramFailWear float64
	// EraseFailBase/EraseFailWear give the per-erase failure
	// probability on the same wear ramp.
	EraseFailBase float64
	EraseFailWear float64
}

// DefaultFaults returns a FaultConfig with every aging mechanism active,
// scaled off one base RBER: wear adds 2% of base per P/E cycle,
// retention doubles the base per 30 simulated seconds unrefreshed, and
// read disturb adds half the base per thousand block reads. Whole-op
// failures are rare events two orders of magnitude *below* the bit
// error rate (a part with RBER 1e-4 fails roughly one program in a
// million), growing slowly with wear — each one costs a whole block to
// retirement, so their rate, not the RBER, bounds device lifetime.
// rber ≈ 1e-7 models a healthy drive; 1e-4 a badly aged one (4KB
// pages: λ ≈ 3.3 raw errors per read).
func DefaultFaults(seed int64, rber float64) FaultConfig {
	return FaultConfig{
		Enabled:         true,
		Seed:            seed,
		BaseRBER:        rber,
		WearRBER:        rber / 50,
		RetentionRBER:   rber,
		RetentionUnit:   30 * time.Second,
		DisturbRBER:     rber / 2,
		DisturbUnit:     1000,
		ECCHardBits:     8,
		ECCSoftBits:     24,
		MaxReadRetries:  4,
		ProgramFailBase: rber / 100,
		ProgramFailWear: rber / 1e4,
		EraseFailBase:   rber / 50,
		EraseFailWear:   rber / 5e3,
	}
}

// Validate reports malformed fault configurations (no-op when disabled).
func (f FaultConfig) Validate() error {
	if !f.Enabled {
		return nil
	}
	switch {
	case f.BaseRBER < 0 || f.BaseRBER >= 1 || math.IsNaN(f.BaseRBER):
		return fmt.Errorf("flash: BaseRBER %v out of range [0, 1)", f.BaseRBER)
	case f.WearRBER < 0 || f.RetentionRBER < 0 || f.DisturbRBER < 0:
		return fmt.Errorf("flash: negative aging RBER coefficients")
	case f.RetentionRBER > 0 && f.RetentionUnit <= 0:
		return fmt.Errorf("flash: RetentionRBER needs a positive RetentionUnit")
	case f.DisturbRBER > 0 && f.DisturbUnit == 0:
		return fmt.Errorf("flash: DisturbRBER needs a positive DisturbUnit")
	case f.ECCHardBits < 0 || f.ECCSoftBits < f.ECCHardBits:
		return fmt.Errorf("flash: ECC budgets hard=%d soft=%d must satisfy 0 ≤ hard ≤ soft",
			f.ECCHardBits, f.ECCSoftBits)
	case f.MaxReadRetries < 1:
		return fmt.Errorf("flash: MaxReadRetries %d must be at least 1", f.MaxReadRetries)
	case f.ProgramFailBase < 0 || f.ProgramFailBase > 1 ||
		f.EraseFailBase < 0 || f.EraseFailBase > 1 ||
		f.ProgramFailWear < 0 || f.EraseFailWear < 0:
		return fmt.Errorf("flash: program/erase failure probabilities out of range")
	}
	return nil
}

// faultModel is the sampling state: one seeded stream shared by all
// operations (the simulation is single-threaded per device, so the
// stream order — and therefore every fault — is reproducible).
type faultModel struct {
	cfg FaultConfig
	rng *rand.Rand
}

func newFaultModel(cfg FaultConfig) *faultModel {
	if !cfg.Enabled {
		return nil
	}
	return &faultModel{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// rber returns the page's current raw bit-error rate.
func (f *faultModel) rber(erases uint32, age time.Duration, blockReads uint32) float64 {
	r := f.cfg.BaseRBER + f.cfg.WearRBER*float64(erases)
	if f.cfg.RetentionRBER > 0 && age > 0 {
		r += f.cfg.RetentionRBER * (float64(age) / float64(f.cfg.RetentionUnit))
	}
	if f.cfg.DisturbRBER > 0 {
		r += f.cfg.DisturbRBER * (float64(blockReads) / float64(f.cfg.DisturbUnit))
	}
	if r > 0.5 {
		r = 0.5 // a page cannot be more than half wrong on average
	}
	return r
}

// poisson samples a Poisson(λ) variate: Knuth's product method for
// small λ, a clamped normal approximation beyond (λ > 30 only occurs on
// catastrophically aged pages, where the exact tail shape is moot).
func (f *faultModel) poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 30 {
		k := int(math.Round(lambda + math.Sqrt(lambda)*f.rng.NormFloat64()))
		if k < 0 {
			k = 0
		}
		return k
	}
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= f.rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// readOutcome classifies one region read: retries is the charged
// read-retry rounds (0 for a clean or hard-decoded read), corrected
// reports whether any bit error was corrected, uecc whether the region
// is unreadable. hardBits/softBits are the region's ECC budgets.
func (f *faultModel) readOutcome(rber float64, regionBits, hardBits, softBits int) (retries int, corrected, uecc bool) {
	k := f.poisson(rber * float64(regionBits))
	switch {
	case k == 0:
		return 0, false, false
	case k <= hardBits:
		return 0, true, false
	case k <= softBits:
		// Retry rounds scale with how deep into the soft budget the
		// error count sits: a marginal page decodes on the first retry,
		// a nearly-lost one walks the whole retry table.
		span := softBits - hardBits
		r := 1 + (k-hardBits-1)*(f.cfg.MaxReadRetries-1)/max(1, span-1)
		if r > f.cfg.MaxReadRetries {
			r = f.cfg.MaxReadRetries
		}
		return r, true, false
	default:
		return f.cfg.MaxReadRetries, false, true
	}
}

// oobBudget scales the data-area ECC budgets down to the OOB area
// (floored at 1 hard / 2 soft bits so the spare-area code is never
// stronger than one symbol).
func (f *faultModel) oobBudget(dataBits, oobBits int) (hard, soft int) {
	hard = f.cfg.ECCHardBits * oobBits / max(1, dataBits)
	soft = f.cfg.ECCSoftBits * oobBits / max(1, dataBits)
	if hard < 1 {
		hard = 1
	}
	if soft < hard+1 {
		soft = hard + 1
	}
	return hard, soft
}

// opFails samples one program/erase failure probability.
func (f *faultModel) opFails(base, wear float64, erases uint32) bool {
	p := base + wear*float64(erases)
	if p <= 0 {
		return false
	}
	if p > 1 {
		p = 1
	}
	return f.rng.Float64() < p
}
