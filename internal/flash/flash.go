// Package flash models the NAND flash array inside the simulated SSD:
// geometry (channels → blocks → pages), operation latencies, per-block
// erase counting, and the out-of-band (OOB) metadata area LeaFTL uses to
// store reverse mappings (paper §2, §3.5, Table 1).
//
// The model is deliberately first-order: each channel is an independent
// service timeline, every operation occupies its channel for the
// operation's nominal latency, and requests issued to a busy channel
// queue behind it. This reproduces the contention effects the paper's
// evaluation depends on (flush and GC traffic delaying reads) without a
// full event-driven simulator; DESIGN.md §2 records the substitution for
// WiscSim.
package flash

import (
	"fmt"
	"time"

	"leaftl/internal/addr"
)

// Config describes the flash geometry and timing (paper Table 1).
type Config struct {
	Channels      int           // independent flash channels
	BlocksPerChan int           // erase blocks per channel
	PagesPerBlock int           // flash pages per erase block
	PageSize      int           // bytes per page (data area)
	OOBSize       int           // bytes of out-of-band metadata per page
	ReadLatency   time.Duration // page read (20µs in Table 1)
	WriteLatency  time.Duration // page program (200µs)
	EraseLatency  time.Duration // block erase (1.5ms)
}

// SimulatorDefaults mirrors the paper's Table 1 geometry with capacity
// scaled down (DESIGN.md §5): 16 channels, 4KB pages, 256 pages/block,
// 128B OOB, 20µs/200µs/1.5ms latencies.
func SimulatorDefaults() Config {
	return Config{
		Channels:      16,
		BlocksPerChan: 256,
		PagesPerBlock: 256,
		PageSize:      4096,
		OOBSize:       128,
		ReadLatency:   20 * time.Microsecond,
		WriteLatency:  200 * time.Microsecond,
		EraseLatency:  1500 * time.Microsecond,
	}
}

// PrototypeDefaults mirrors the paper's open-channel SSD prototype
// (§3.9): 16KB pages, 16 channels, 256 pages per block.
func PrototypeDefaults() Config {
	c := SimulatorDefaults()
	c.PageSize = 16384
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Channels <= 0:
		return fmt.Errorf("flash: Channels = %d, must be positive", c.Channels)
	case c.BlocksPerChan <= 0:
		return fmt.Errorf("flash: BlocksPerChan = %d, must be positive", c.BlocksPerChan)
	case c.PagesPerBlock <= 0:
		return fmt.Errorf("flash: PagesPerBlock = %d, must be positive", c.PagesPerBlock)
	case c.PageSize <= 0:
		return fmt.Errorf("flash: PageSize = %d, must be positive", c.PageSize)
	case c.TotalPages() > int(addr.InvalidPPA):
		return fmt.Errorf("flash: %d pages exceed the PPA space", c.TotalPages())
	}
	return nil
}

// Blocks returns the total number of erase blocks.
func (c Config) Blocks() int { return c.Channels * c.BlocksPerChan }

// TotalPages returns the total number of flash pages.
func (c Config) TotalPages() int { return c.Blocks() * c.PagesPerBlock }

// CapacityBytes returns the raw capacity.
func (c Config) CapacityBytes() int64 {
	return int64(c.TotalPages()) * int64(c.PageSize)
}

// OOBEntries returns how many 4-byte reverse-mapping entries fit in one
// page's OOB area (paper §3.5: 32–64 for 128–256B OOBs).
func (c Config) OOBEntries() int { return c.OOBSize / 4 }

// BlockID identifies an erase block, numbered channel-major:
// block b lives on channel b % Channels.
type BlockID uint32

// BlockOf returns the erase block containing ppa.
func (c Config) BlockOf(ppa addr.PPA) BlockID {
	return BlockID(uint32(ppa) / uint32(c.PagesPerBlock))
}

// ChannelOf returns the channel serving ppa.
func (c Config) ChannelOf(ppa addr.PPA) int {
	return int(uint32(c.BlockOf(ppa)) % uint32(c.Channels))
}

// PageOf returns ppa's page index within its block.
func (c Config) PageOf(ppa addr.PPA) int {
	return int(uint32(ppa) % uint32(c.PagesPerBlock))
}

// FirstPPA returns the first page of block b.
func (c Config) FirstPPA(b BlockID) addr.PPA {
	return addr.PPA(uint32(b) * uint32(c.PagesPerBlock))
}

// Stats counts physical flash operations; the write amplification factor
// (paper Figure 25) and all latency modelling derive from these.
type Stats struct {
	PageReads   uint64
	PageWrites  uint64
	BlockErases uint64
}

// Array is the simulated flash array. It stores, per page, an opaque
// 8-byte payload token standing in for page contents (enough for
// end-to-end integrity checking without 4KB of host memory per page) and
// the OOB reverse mapping, plus per-block erase counts and per-channel
// service timelines.
//
// Array enforces NAND ordering rules: a page must be free to be
// programmed, pages within a block must be programmed in order, and only
// whole blocks are erased.
type Array struct {
	cfg     Config
	token   []uint64        // page payload stand-in
	reverse []addr.LPA      // OOB reverse mapping (written LPA per page)
	seq     []uint64        // OOB write sequence number (crash recovery)
	seqGen  uint64          // monotonic write-sequence generator
	written []bool          // page has been programmed since last erase
	nextPg  []int           // next programmable page index per block
	erases  []uint32        // per-block erase count (wear leveling)
	busy    []time.Duration // per-channel: time the channel frees up
	// tailErase records whether the operation at the tail of each
	// channel's backlog is a block erase. Program suspension lets a read
	// preempt a queued *program* burst, but an in-flight erase cannot be
	// suspended in this model — a read arriving behind one must wait for
	// the channel to drain (serveRead).
	tailErase []bool
	stats     Stats
}

// NewArray allocates a fully-erased flash array.
func NewArray(cfg Config) (*Array, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.TotalPages()
	return &Array{
		cfg:       cfg,
		token:     make([]uint64, n),
		reverse:   make([]addr.LPA, n),
		seq:       make([]uint64, n),
		written:   make([]bool, n),
		nextPg:    make([]int, cfg.Blocks()),
		erases:    make([]uint32, cfg.Blocks()),
		busy:      make([]time.Duration, cfg.Channels),
		tailErase: make([]bool, cfg.Channels),
	}, nil
}

// Config returns the array's geometry.
func (a *Array) Config() Config { return a.cfg }

// Stats returns operation counters.
func (a *Array) Stats() Stats { return a.stats }

// EraseCount returns how many times block b has been erased.
func (a *Array) EraseCount(b BlockID) uint32 { return a.erases[b] }

// serve charges one operation of the given latency on ppa's channel
// starting no earlier than now, returning the completion time. erase
// records what kind of operation now sits at the tail of the backlog
// (see tailErase).
func (a *Array) serve(ch int, now, latency time.Duration, erase bool) time.Duration {
	start := now
	if a.busy[ch] > start {
		start = a.busy[ch]
	}
	done := start + latency
	a.busy[ch] = done
	a.tailErase[ch] = erase
	return done
}

// serveRead charges a read with program suspension: modern NAND lets a
// read preempt a queued program burst, so a read waits for at most one
// in-flight program operation rather than the channel's whole write
// backlog. The read still occupies the channel for its own latency.
//
// The suspension shortcut applies only to program bursts. When the tail
// of the channel's backlog is a block *erase*, the read waits for the
// channel to drain: erases are not suspendable here, and letting reads
// start mid-erase understated GC-induced read tails. (The backlog is a
// scalar horizon, so only its tail operation is known; a read behind an
// erase that is itself followed by programs still sees the capped wait —
// the tail is a program.)
func (a *Array) serveRead(ch int, now time.Duration) time.Duration {
	start := now
	if wait := a.busy[ch] - now; wait > 0 {
		if wait > a.cfg.WriteLatency && !a.tailErase[ch] {
			wait = a.cfg.WriteLatency
		}
		start = now + wait
	}
	done := start + a.cfg.ReadLatency
	// The preempting read delays the outstanding program queue.
	if a.busy[ch] > start {
		a.busy[ch] += a.cfg.ReadLatency
	} else {
		a.busy[ch] = done
		a.tailErase[ch] = false
	}
	return done
}

// Read returns the page payload token and its OOB reverse-mapping LPA.
// done is when the read completes on the page's channel.
func (a *Array) Read(ppa addr.PPA, now time.Duration) (token uint64, reverse addr.LPA, done time.Duration) {
	a.stats.PageReads++
	done = a.serveRead(a.cfg.ChannelOf(ppa), now)
	return a.token[ppa], a.reverse[ppa], done
}

// ReadOOB models a read that only needs the OOB area; it costs a full
// page read (NAND reads whole pages) but returns just the reverse LPA.
func (a *Array) ReadOOB(ppa addr.PPA, now time.Duration) (addr.LPA, time.Duration) {
	_, rev, done := a.Read(ppa, now)
	return rev, done
}

// Write programs a free page with the payload token and OOB reverse
// mapping. Programming a non-free or out-of-order page panics: the FTL
// above must never do that, and a panic here is a broken-invariant
// signal, not an I/O error.
func (a *Array) Write(ppa addr.PPA, lpa addr.LPA, token uint64, now time.Duration) time.Duration {
	b := a.cfg.BlockOf(ppa)
	pg := a.cfg.PageOf(ppa)
	if a.written[ppa] {
		panic(fmt.Sprintf("flash: program of written page %d", ppa))
	}
	if pg != a.nextPg[b] {
		panic(fmt.Sprintf("flash: out-of-order program: block %d page %d, expected %d", b, pg, a.nextPg[b]))
	}
	a.nextPg[b] = pg + 1
	a.written[ppa] = true
	a.token[ppa] = token
	a.reverse[ppa] = lpa
	a.seqGen++
	a.seq[ppa] = a.seqGen
	a.stats.PageWrites++
	return a.serve(a.cfg.ChannelOf(ppa), now, a.cfg.WriteLatency, false)
}

// Erase wipes block b, making its pages programmable again.
func (a *Array) Erase(b BlockID, now time.Duration) time.Duration {
	first := a.cfg.FirstPPA(b)
	for i := 0; i < a.cfg.PagesPerBlock; i++ {
		p := first + addr.PPA(i)
		a.written[p] = false
		a.token[p] = 0
		a.reverse[p] = addr.InvalidLPA
		a.seq[p] = 0
	}
	a.nextPg[b] = 0
	a.erases[b]++
	a.stats.BlockErases++
	return a.serve(int(uint32(b)%uint32(a.cfg.Channels)), now, a.cfg.EraseLatency, true)
}

// Written reports whether ppa currently holds programmed data.
func (a *Array) Written(ppa addr.PPA) bool { return a.written[ppa] }

// Reverse returns the OOB reverse-mapping LPA of ppa without charging a
// flash access. Device code must not use this on the data path — it
// exists for recovery scans (which charge reads themselves) and tests.
func (a *Array) Reverse(ppa addr.PPA) addr.LPA {
	if !a.written[ppa] {
		return addr.InvalidLPA
	}
	return a.reverse[ppa]
}

// BusyUntil returns channel ch's next free time (for tests and for
// completion accounting in the device).
func (a *Array) BusyUntil(ch int) time.Duration { return a.busy[ch] }

// WriteSeq returns the OOB write-sequence number of ppa (0 if unwritten).
// Recovery scans use it to order copies of the same LPA; real SSDs stamp
// the same information into the OOB at program time.
func (a *Array) WriteSeq(ppa addr.PPA) uint64 {
	if !a.written[ppa] {
		return 0
	}
	return a.seq[ppa]
}

// TokenAt returns the stored payload token without charging a flash
// access. Simulator-oracle access for recovery bookkeeping and tests —
// never the data path.
func (a *Array) TokenAt(ppa addr.PPA) uint64 { return a.token[ppa] }

// MetaRead charges one translation-page read on a rotating channel and
// returns its completion time. Translation metadata I/O (DFTL/SFTL
// translation pages, LeaFTL table persistence) is modeled as latency and
// wear without occupying data blocks; DESIGN.md §2 records the
// simplification.
func (a *Array) MetaRead(now time.Duration) time.Duration {
	a.stats.PageReads++
	return a.serveRead(a.metaChannel(), now)
}

// MetaWrite charges one translation-page write on a rotating channel.
func (a *Array) MetaWrite(now time.Duration) time.Duration {
	a.stats.PageWrites++
	return a.serve(a.metaChannel(), now, a.cfg.WriteLatency, false)
}

// metaChannel rotates metadata traffic across channels.
func (a *Array) metaChannel() int {
	return int((a.stats.PageReads + a.stats.PageWrites) % uint64(a.cfg.Channels))
}

// OOBWindow models the paper's §3.5 misprediction recovery: the OOB of
// the page at center stores the reverse mappings of its neighbor PPAs
// [center−gamma, center+gamma] (Figure 11), so one page read yields the
// whole window. Slots outside the device or not yet written come back as
// InvalidLPA (the paper's null bytes). The read is charged on center's
// channel; done is its completion time.
//
// gamma must satisfy 2·gamma+1 ≤ Config.OOBEntries — the FTL checks this
// at construction, mirroring the paper's observation that a 128–256B OOB
// holds 32–64 entries.
func (a *Array) OOBWindow(center addr.PPA, gamma int, now time.Duration) (window []addr.LPA, done time.Duration) {
	a.stats.PageReads++
	done = a.serveRead(a.cfg.ChannelOf(center), now)
	window = make([]addr.LPA, 2*gamma+1)
	lo := int64(center) - int64(gamma)
	// The stored window covers neighbors within the same block; the paper
	// nulls entries that fall off the block's ends.
	blockFirst := int64(a.cfg.FirstPPA(a.cfg.BlockOf(center)))
	blockLast := blockFirst + int64(a.cfg.PagesPerBlock) - 1
	for i := range window {
		p := lo + int64(i)
		if p < blockFirst || p > blockLast || !a.written[p] {
			window[i] = addr.InvalidLPA
			continue
		}
		window[i] = a.reverse[p]
	}
	return window, done
}
