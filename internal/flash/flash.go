// Package flash models the NAND flash array inside the simulated SSD:
// geometry (channels → blocks → pages), operation latencies, per-block
// erase counting, and the out-of-band (OOB) metadata area LeaFTL uses to
// store reverse mappings (paper §2, §3.5, Table 1).
//
// The model is deliberately first-order: each die (channel × die) is an
// independent service timeline, every cell operation occupies its die
// for the operation's nominal latency, and requests issued to a busy die
// queue behind it. With DiesPerChan or PlanesPerDie above one, the
// channel bus becomes a separate, shorter transfer-occupancy resource
// (BusXfer per page), programs to distinct planes of one die can join a
// multi-plane window, and completions across dies are naturally out of
// order. With one die and one plane per channel the arithmetic reduces
// exactly to the original per-channel scalar-horizon model. This
// reproduces the contention effects the paper's evaluation depends on
// (flush and GC traffic delaying reads) without a full event-driven
// simulator; DESIGN.md §2 records the substitution for WiscSim.
package flash

import (
	"fmt"
	"time"

	"leaftl/internal/addr"
)

// Config describes the flash geometry and timing (paper Table 1).
type Config struct {
	Channels      int           // independent flash channels
	BlocksPerChan int           // erase blocks per channel
	PagesPerBlock int           // flash pages per erase block
	PageSize      int           // bytes per page (data area)
	OOBSize       int           // bytes of out-of-band metadata per page
	ReadLatency   time.Duration // page read (20µs in Table 1)
	WriteLatency  time.Duration // page program (200µs)
	EraseLatency  time.Duration // block erase (1.5ms)

	// DiesPerChan is the number of NAND dies (LUNs) sharing each channel
	// bus. Zero or one keeps the original one-timeline-per-channel model;
	// above one, cell operations occupy only their die and the channel
	// bus carries per-page transfers (BusXfer).
	DiesPerChan int
	// PlanesPerDie enables multi-plane programs: programs to distinct
	// planes of one die issued while a program window is open complete
	// together. Zero or one disables plane interleave.
	PlanesPerDie int
	// BusXfer is the channel-bus occupancy of moving one page between
	// controller and die. Only charged when the geometry is die-aware
	// (DiesPerChan or PlanesPerDie above one); zero defaults to
	// ReadLatency/4.
	BusXfer time.Duration

	// Fault selects the seeded reliability model (see fault.go). The
	// zero value is perfect flash.
	Fault FaultConfig
}

// SimulatorDefaults mirrors the paper's Table 1 geometry with capacity
// scaled down (DESIGN.md §5): 16 channels, 4KB pages, 256 pages/block,
// 128B OOB, 20µs/200µs/1.5ms latencies.
func SimulatorDefaults() Config {
	return Config{
		Channels:      16,
		BlocksPerChan: 256,
		PagesPerBlock: 256,
		PageSize:      4096,
		OOBSize:       128,
		ReadLatency:   20 * time.Microsecond,
		WriteLatency:  200 * time.Microsecond,
		EraseLatency:  1500 * time.Microsecond,
	}
}

// PrototypeDefaults mirrors the paper's open-channel SSD prototype
// (§3.9): 16KB pages, 16 channels, 256 pages per block.
func PrototypeDefaults() Config {
	c := SimulatorDefaults()
	c.PageSize = 16384
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Channels <= 0:
		return fmt.Errorf("flash: Channels = %d, must be positive", c.Channels)
	case c.BlocksPerChan <= 0:
		return fmt.Errorf("flash: BlocksPerChan = %d, must be positive", c.BlocksPerChan)
	case c.PagesPerBlock <= 0:
		return fmt.Errorf("flash: PagesPerBlock = %d, must be positive", c.PagesPerBlock)
	case c.PageSize <= 0:
		return fmt.Errorf("flash: PageSize = %d, must be positive", c.PageSize)
	case c.TotalPages() > int(addr.InvalidPPA):
		return fmt.Errorf("flash: %d pages exceed the PPA space", c.TotalPages())
	case c.DiesPerChan < 0:
		return fmt.Errorf("flash: DiesPerChan = %d, must be non-negative", c.DiesPerChan)
	case c.PlanesPerDie < 0:
		return fmt.Errorf("flash: PlanesPerDie = %d, must be non-negative", c.PlanesPerDie)
	case c.Dies() > 1 && c.BlocksPerChan%c.Dies() != 0:
		return fmt.Errorf("flash: BlocksPerChan = %d not divisible by DiesPerChan = %d", c.BlocksPerChan, c.Dies())
	case c.Planes() > 1 && c.PagesPerBlock%c.Planes() != 0:
		return fmt.Errorf("flash: PagesPerBlock = %d not divisible by PlanesPerDie = %d", c.PagesPerBlock, c.Planes())
	case c.Planes() > 32:
		return fmt.Errorf("flash: PlanesPerDie = %d exceeds 32", c.Planes())
	case c.BusXfer < 0:
		return fmt.Errorf("flash: BusXfer = %v, must be non-negative", c.BusXfer)
	}
	return c.Fault.Validate()
}

// Dies returns the dies per channel, normalizing 0 to 1.
func (c Config) Dies() int {
	if c.DiesPerChan > 1 {
		return c.DiesPerChan
	}
	return 1
}

// Planes returns the planes per die, normalizing 0 to 1.
func (c Config) Planes() int {
	if c.PlanesPerDie > 1 {
		return c.PlanesPerDie
	}
	return 1
}

// Units returns the number of independent service timelines
// (channels × dies): blocks stripe over units exactly as they striped
// over channels before, so unit u serves block b iff b % Units() == u
// and ChannelOf is unchanged (b % (C·D) ≡ b (mod C)).
func (c Config) Units() int { return c.Channels * c.Dies() }

// UnitOfBlock returns the die timeline serving block b.
func (c Config) UnitOfBlock(b BlockID) int {
	return int(uint32(b) % uint32(c.Units()))
}

// UnitOf returns the die timeline serving ppa.
func (c Config) UnitOf(ppa addr.PPA) int { return c.UnitOfBlock(c.BlockOf(ppa)) }

// DieOfBlock returns block b's die index within its channel
// (0 ≤ die < Dies()).
func (c Config) DieOfBlock(b BlockID) int { return c.UnitOfBlock(b) / c.Channels }

// PlaneOf returns ppa's plane within its die. A block spans all planes
// of its die with consecutive page offsets alternating planes, so
// sequential programs naturally form multi-plane pairs.
func (c Config) PlaneOf(ppa addr.PPA) int { return c.PageOf(ppa) % c.Planes() }

// dieAware reports whether the bus/cell split and plane windows are
// active. When false, timing is the original per-channel arithmetic.
func (c Config) dieAware() bool { return c.Dies() > 1 || c.Planes() > 1 }

// busXfer returns the effective per-page bus occupancy.
func (c Config) busXfer() time.Duration {
	if c.BusXfer > 0 {
		return c.BusXfer
	}
	return c.ReadLatency / 4
}

// Blocks returns the total number of erase blocks.
func (c Config) Blocks() int { return c.Channels * c.BlocksPerChan }

// TotalPages returns the total number of flash pages.
func (c Config) TotalPages() int { return c.Blocks() * c.PagesPerBlock }

// CapacityBytes returns the raw capacity.
func (c Config) CapacityBytes() int64 {
	return int64(c.TotalPages()) * int64(c.PageSize)
}

// OOBEntries returns how many 4-byte reverse-mapping entries fit in one
// page's OOB area (paper §3.5: 32–64 for 128–256B OOBs).
func (c Config) OOBEntries() int { return c.OOBSize / 4 }

// BlockID identifies an erase block, numbered channel-major:
// block b lives on channel b % Channels.
type BlockID uint32

// BlockOf returns the erase block containing ppa.
func (c Config) BlockOf(ppa addr.PPA) BlockID {
	return BlockID(uint32(ppa) / uint32(c.PagesPerBlock))
}

// ChannelOf returns the channel serving ppa.
func (c Config) ChannelOf(ppa addr.PPA) int {
	return int(uint32(c.BlockOf(ppa)) % uint32(c.Channels))
}

// PageOf returns ppa's page index within its block.
func (c Config) PageOf(ppa addr.PPA) int {
	return int(uint32(ppa) % uint32(c.PagesPerBlock))
}

// FirstPPA returns the first page of block b.
func (c Config) FirstPPA(b BlockID) addr.PPA {
	return addr.PPA(uint32(b) * uint32(c.PagesPerBlock))
}

// Stats counts physical flash operations; the write amplification factor
// (paper Figure 25) and all latency modelling derive from these. The
// reliability counters stay zero on perfect flash.
type Stats struct {
	PageReads   uint64
	PageWrites  uint64
	BlockErases uint64

	// Reliability counters (fault injection).
	CorrectedReads uint64 // reads that needed any ECC correction
	ECCRetries     uint64 // read-retry rounds charged on the channels
	DataUECC       uint64 // data-area reads beyond the soft-decode budget
	OOBUECC        uint64 // OOB-area decodes beyond the (scaled) budget
	ProgramFails   uint64 // failed page programs (burned pages)
	EraseFails     uint64 // failed block erases
}

// progWindow is one die's open multi-plane program window: programs to
// distinct planes of the die that arrive while the window is still the
// tail of the die's backlog complete together with it.
type progWindow struct {
	done      time.Duration // completion of the joint program
	planeMask uint32        // planes already claimed
	count     int           // programs joined so far
}

// Array is the simulated flash array. It stores, per page, an opaque
// 8-byte payload token standing in for page contents (enough for
// end-to-end integrity checking without 4KB of host memory per page) and
// the OOB reverse mapping, plus per-block erase counts and per-die
// service timelines.
//
// Array enforces NAND ordering rules: a page must be free to be
// programmed, pages within a block must be programmed in order, and only
// whole blocks are erased.
type Array struct {
	cfg     Config
	token   []uint64        // page payload stand-in
	reverse []addr.LPA      // OOB reverse mapping (written LPA per page)
	seq     []uint64        // OOB write sequence number (crash recovery)
	seqGen  uint64          // monotonic write-sequence generator
	written []bool          // page has been programmed since last erase
	nextPg  []int           // next programmable page index per block
	erases  []uint32        // per-block erase count (wear leveling)
	busy    []time.Duration // per-die unit: time the die frees up
	// eraseDone is the completion time of the most recent erase issued on
	// each die unit. The operation at the tail of a unit's backlog is that
	// erase iff busy[u] == eraseDone[u] (and non-zero): program suspension
	// lets a read preempt a queued *program* burst, but an erase cannot be
	// suspended in this model — a read arriving behind one must wait for
	// the unit to drain, and even behind a later program a read can start
	// no earlier than the erase's completion (serveRead).
	eraseDone []time.Duration
	// busBusy is the per-channel bus-transfer horizon; only used when the
	// geometry is die-aware.
	busBusy []time.Duration
	// progWin is each die's open multi-plane program window; only used
	// when the geometry is die-aware.
	progWin []progWindow
	stats   Stats

	// Reliability state: per-block read counts since the last erase
	// (read disturb), per-page program times (retention aging), and the
	// seeded fault model (nil on perfect flash).
	blockReads []uint32
	progAt     []time.Duration
	fault      *faultModel
}

// NewArray allocates a fully-erased flash array.
func NewArray(cfg Config) (*Array, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.TotalPages()
	return &Array{
		cfg:        cfg,
		token:      make([]uint64, n),
		reverse:    make([]addr.LPA, n),
		seq:        make([]uint64, n),
		written:    make([]bool, n),
		nextPg:     make([]int, cfg.Blocks()),
		erases:     make([]uint32, cfg.Blocks()),
		busy:       make([]time.Duration, cfg.Units()),
		eraseDone:  make([]time.Duration, cfg.Units()),
		busBusy:    make([]time.Duration, cfg.Channels),
		progWin:    make([]progWindow, cfg.Units()),
		blockReads: make([]uint32, cfg.Blocks()),
		progAt:     make([]time.Duration, n),
		fault:      newFaultModel(cfg.Fault),
	}, nil
}

// Config returns the array's geometry.
func (a *Array) Config() Config { return a.cfg }

// Stats returns operation counters.
func (a *Array) Stats() Stats { return a.stats }

// EraseCount returns how many times block b has been erased.
func (a *Array) EraseCount(b BlockID) uint32 { return a.erases[b] }

// tailIsErase reports whether the operation at the tail of unit u's
// backlog is the most recent erase (nothing has queued after it).
func (a *Array) tailIsErase(u int) bool {
	return a.eraseDone[u] > 0 && a.busy[u] == a.eraseDone[u]
}

// serve charges one cell operation of the given latency on die unit u
// starting no earlier than now, returning the completion time. erase
// records the erase completion so serveRead can refuse to start reads
// mid-erase (see eraseDone).
func (a *Array) serve(u int, now, latency time.Duration, erase bool) time.Duration {
	start := now
	if a.busy[u] > start {
		start = a.busy[u]
	}
	done := start + latency
	a.busy[u] = done
	if erase {
		a.eraseDone[u] = done
	}
	a.progWin[u] = progWindow{}
	return done
}

// serveRead charges a read's cell time with program suspension: modern
// NAND lets a read preempt a queued program burst, so a read waits for
// at most one in-flight program operation rather than the die's whole
// write backlog. The read still occupies the die for its own latency.
//
// The suspension shortcut applies only to program bursts. When the tail
// of the unit's backlog is a block *erase*, the read waits for the unit
// to drain: erases are not suspendable here, and letting reads start
// mid-erase understated GC-induced read tails. When programs queued
// *behind* an erase (the tail is a program), the capped wait still may
// not move the read's start before the erase's own completion — the
// erase is in flight underneath the whole backlog.
func (a *Array) serveRead(u int, now time.Duration) time.Duration {
	start := now
	if wait := a.busy[u] - now; wait > 0 {
		if wait > a.cfg.WriteLatency && !a.tailIsErase(u) {
			wait = a.cfg.WriteLatency
			if s := a.eraseDone[u] - now; s > wait {
				wait = s
			}
		}
		start = now + wait
	}
	done := start + a.cfg.ReadLatency
	// The preempting read delays the outstanding program queue.
	if a.busy[u] > start {
		a.busy[u] += a.cfg.ReadLatency
	} else {
		a.busy[u] = done
	}
	a.progWin[u] = progWindow{}
	return done
}

// chargeRetries extends a read by whole-page retry rounds on its own
// die: each round re-senses the page right where the first attempt
// finished, so the rounds run back to back from the read's own
// completion and push any outstanding backlog by the same amount. (They
// do not re-enter channel arbitration: a retry behind a queued erase
// must not re-pay the erase wait per round.)
func (a *Array) chargeRetries(u int, done time.Duration, retries int) time.Duration {
	if retries == 0 {
		return done
	}
	extra := time.Duration(retries) * a.cfg.ReadLatency
	if a.busy[u] > done {
		a.busy[u] += extra
	} else {
		a.busy[u] = done + extra
	}
	a.progWin[u] = progWindow{}
	return done + extra
}

// busTransfer charges one page movement on ch's channel bus starting no
// earlier than ready; die-aware geometry only.
func (a *Array) busTransfer(ch int, ready time.Duration) time.Duration {
	start := ready
	if a.busBusy[ch] > start {
		start = a.busBusy[ch]
	}
	done := start + a.cfg.busXfer()
	a.busBusy[ch] = done
	return done
}

// serveWrite charges one page program. In the die-aware geometry the
// page's data first crosses the channel bus, then programs the cell on
// its die — unless the die has an open multi-plane window (its last
// program is still the tail of its backlog, this page's plane is free,
// and the window completes after the transfer), in which case the
// program joins the window and completes with it: the idealized
// multi-plane interleave that lets back-to-back programs to alternating
// planes finish Planes() pages per WriteLatency.
func (a *Array) serveWrite(ppa addr.PPA, now time.Duration) time.Duration {
	u := a.cfg.UnitOf(ppa)
	if !a.cfg.dieAware() {
		return a.serve(u, now, a.cfg.WriteLatency, false)
	}
	xferDone := a.busTransfer(a.cfg.ChannelOf(ppa), now)
	plane := a.cfg.PlaneOf(ppa)
	w := &a.progWin[u]
	if w.count > 0 && w.count < a.cfg.Planes() &&
		w.planeMask&(1<<uint(plane)) == 0 &&
		a.busy[u] == w.done && xferDone <= w.done {
		w.count++
		w.planeMask |= 1 << uint(plane)
		return w.done
	}
	start := xferDone
	if a.busy[u] > start {
		start = a.busy[u]
	}
	done := start + a.cfg.WriteLatency
	a.busy[u] = done
	*w = progWindow{done: done, planeMask: 1 << uint(plane), count: 1}
	return done
}

// sampleRead runs the fault model for one page read: charges retry
// rounds on die unit u (each a full page-read latency extending the
// read's own completion), counts correction stats, and reports whether
// the data and/or OOB region is uncorrectable. Unwritten (erased) pages
// never fault.
func (a *Array) sampleRead(ppa addr.PPA, u int, done time.Duration, wantData, wantOOB bool) (time.Duration, bool, bool) {
	if a.fault == nil || !a.written[ppa] {
		return done, false, false
	}
	b := a.cfg.BlockOf(ppa)
	rber := a.fault.rber(a.erases[b], a.busyAge(ppa, done), a.blockReads[b])
	dataBits := a.cfg.PageSize * 8
	oobBits := a.cfg.OOBSize * 8
	retries, corrected := 0, false
	var dataUECC, oobUECC bool
	if wantData {
		r, c, u := a.fault.readOutcome(rber, dataBits, a.fault.cfg.ECCHardBits, a.fault.cfg.ECCSoftBits)
		retries, corrected, dataUECC = retries+r, corrected || c, u
	}
	if wantOOB {
		hard, soft := a.fault.oobBudget(dataBits, oobBits)
		r, c, u := a.fault.readOutcome(rber, oobBits, hard, soft)
		retries, corrected, oobUECC = retries+r, corrected || c, u
	}
	done = a.chargeRetries(u, done, retries)
	a.stats.ECCRetries += uint64(retries)
	if corrected && !dataUECC && !oobUECC {
		a.stats.CorrectedReads++
	}
	if dataUECC {
		a.stats.DataUECC++
	}
	if oobUECC {
		a.stats.OOBUECC++
	}
	return done, dataUECC, oobUECC
}

// busyAge returns how long ago ppa was programmed, on the simulated
// clock (0 for unwritten pages or clock skew).
func (a *Array) busyAge(ppa addr.PPA, now time.Duration) time.Duration {
	if !a.written[ppa] || now <= a.progAt[ppa] {
		return 0
	}
	return now - a.progAt[ppa]
}

// Read returns the page payload token and its OOB reverse-mapping LPA.
// done is when the read completes on the page's channel, including any
// charged ECC read-retry rounds. err is nil (possibly after silent
// correction), ErrUncorrectable (data area lost — token is invalid), or
// ErrOOBUncorrectable (token intact, reverse mapping lost and returned
// as InvalidLPA).
func (a *Array) Read(ppa addr.PPA, now time.Duration) (token uint64, reverse addr.LPA, done time.Duration, err error) {
	a.stats.PageReads++
	a.blockReads[a.cfg.BlockOf(ppa)]++
	u := a.cfg.UnitOf(ppa)
	done = a.serveRead(u, now)
	done, dataUECC, oobUECC := a.sampleRead(ppa, u, done, true, true)
	if a.cfg.dieAware() {
		done = a.busTransfer(a.cfg.ChannelOf(ppa), done)
	}
	switch {
	case dataUECC:
		return 0, addr.InvalidLPA, done, fmt.Errorf("%w: PPA %d", ErrUncorrectable, ppa)
	case oobUECC:
		return a.token[ppa], addr.InvalidLPA, done, fmt.Errorf("%w: PPA %d", ErrOOBUncorrectable, ppa)
	}
	return a.token[ppa], a.reverse[ppa], done, nil
}

// ReadOOB models a read that only needs the OOB area; it costs a full
// page read (NAND reads whole pages) but returns just the reverse LPA.
// Only the OOB region is ECC-decoded.
func (a *Array) ReadOOB(ppa addr.PPA, now time.Duration) (addr.LPA, time.Duration, error) {
	a.stats.PageReads++
	a.blockReads[a.cfg.BlockOf(ppa)]++
	u := a.cfg.UnitOf(ppa)
	done := a.serveRead(u, now)
	done, _, oobUECC := a.sampleRead(ppa, u, done, false, true)
	if a.cfg.dieAware() {
		done = a.busTransfer(a.cfg.ChannelOf(ppa), done)
	}
	if oobUECC {
		return addr.InvalidLPA, done, fmt.Errorf("%w: PPA %d", ErrOOBUncorrectable, ppa)
	}
	return a.reverse[ppa], done, nil
}

// Write programs a free page with the payload token and OOB reverse
// mapping. Programming a non-free or out-of-order page panics: the FTL
// above must never do that, and a panic here is a broken-invariant
// signal, not an I/O error. A program can fail with wear-growing
// probability under the fault model (ErrProgramFail): the page is
// burned — it counts as written, holds no usable data, and its OOB is
// nulled so recovery scans skip it — and the layer above must retire
// the block and re-program the data elsewhere. Failed programs still
// occupy the channel for the program latency.
func (a *Array) Write(ppa addr.PPA, lpa addr.LPA, token uint64, now time.Duration) (time.Duration, error) {
	b := a.cfg.BlockOf(ppa)
	pg := a.cfg.PageOf(ppa)
	if a.written[ppa] {
		panic(fmt.Sprintf("flash: program of written page %d", ppa))
	}
	if pg != a.nextPg[b] {
		panic(fmt.Sprintf("flash: out-of-order program: block %d page %d, expected %d", b, pg, a.nextPg[b]))
	}
	a.nextPg[b] = pg + 1
	a.written[ppa] = true
	a.progAt[ppa] = now
	done := a.serveWrite(ppa, now)
	if a.fault != nil && a.fault.opFails(a.fault.cfg.ProgramFailBase, a.fault.cfg.ProgramFailWear, a.erases[b]) {
		a.token[ppa] = 0
		a.reverse[ppa] = addr.InvalidLPA
		a.seq[ppa] = 0
		a.stats.ProgramFails++
		return done, fmt.Errorf("%w: PPA %d", ErrProgramFail, ppa)
	}
	a.token[ppa] = token
	a.reverse[ppa] = lpa
	a.seqGen++
	a.seq[ppa] = a.seqGen
	a.stats.PageWrites++
	return done, nil
}

// Erase wipes block b, making its pages programmable again. An erase
// can fail with wear-growing probability (ErrEraseFail): the block
// keeps its stale contents and must be retired by the layer above.
func (a *Array) Erase(b BlockID, now time.Duration) (time.Duration, error) {
	done := a.serve(a.cfg.UnitOfBlock(b), now, a.cfg.EraseLatency, true)
	if a.fault != nil && a.fault.opFails(a.fault.cfg.EraseFailBase, a.fault.cfg.EraseFailWear, a.erases[b]) {
		a.stats.EraseFails++
		a.erases[b]++ // the cycle was attempted; it wears the block
		return done, fmt.Errorf("%w: block %d", ErrEraseFail, b)
	}
	first := a.cfg.FirstPPA(b)
	for i := 0; i < a.cfg.PagesPerBlock; i++ {
		p := first + addr.PPA(i)
		a.written[p] = false
		a.token[p] = 0
		a.reverse[p] = addr.InvalidLPA
		a.seq[p] = 0
		a.progAt[p] = 0
	}
	a.nextPg[b] = 0
	a.erases[b]++
	a.blockReads[b] = 0
	a.stats.BlockErases++
	return done, nil
}

// Written reports whether ppa currently holds programmed data.
func (a *Array) Written(ppa addr.PPA) bool { return a.written[ppa] }

// Reverse returns the OOB reverse-mapping LPA of ppa without charging a
// flash access. Device code must not use this on the data path — it
// exists for recovery scans (which charge reads themselves) and tests.
func (a *Array) Reverse(ppa addr.PPA) addr.LPA {
	if !a.written[ppa] {
		return addr.InvalidLPA
	}
	return a.reverse[ppa]
}

// BusyUntil returns die unit u's next free time (for tests and for
// completion accounting in the device). With one die per channel, unit
// indices coincide with channel indices.
func (a *Array) BusyUntil(u int) time.Duration { return a.busy[u] }

// WriteSeq returns the OOB write-sequence number of ppa (0 if unwritten).
// Recovery scans use it to order copies of the same LPA; real SSDs stamp
// the same information into the OOB at program time.
func (a *Array) WriteSeq(ppa addr.PPA) uint64 {
	if !a.written[ppa] {
		return 0
	}
	return a.seq[ppa]
}

// TokenAt returns the stored payload token without charging a flash
// access. Simulator-oracle access for recovery bookkeeping and tests —
// never the data path.
func (a *Array) TokenAt(ppa addr.PPA) uint64 { return a.token[ppa] }

// metaUnit maps a translation page's identity (its virtual translation
// PPA, or region/group number) onto the die unit holding it. Meta
// placement is a pure function of the page's identity — never of how
// much data traffic happens to interleave — so identical meta sequences
// land on identical dies across schemes and runs.
func (a *Array) metaUnit(id uint64) int {
	return int(id % uint64(a.cfg.Units()))
}

// MetaRead charges one translation-page read on the die derived from the
// page's identity and returns its completion time. Translation metadata
// I/O (DFTL/SFTL translation pages, LeaFTL group images) is modeled as
// latency and wear without occupying data blocks; DESIGN.md §2 records
// the simplification.
func (a *Array) MetaRead(id uint64, now time.Duration) time.Duration {
	a.stats.PageReads++
	u := a.metaUnit(id)
	done := a.serveRead(u, now)
	if a.cfg.dieAware() {
		done = a.busTransfer(u%a.cfg.Channels, done)
	}
	return done
}

// MetaWrite charges one translation-page write on the die derived from
// the page's identity.
func (a *Array) MetaWrite(id uint64, now time.Duration) time.Duration {
	a.stats.PageWrites++
	u := a.metaUnit(id)
	if !a.cfg.dieAware() {
		return a.serve(u, now, a.cfg.WriteLatency, false)
	}
	xferDone := a.busTransfer(u%a.cfg.Channels, now)
	start := xferDone
	if a.busy[u] > start {
		start = a.busy[u]
	}
	done := start + a.cfg.WriteLatency
	a.busy[u] = done
	a.progWin[u] = progWindow{}
	return done
}

// OOBWindow models the paper's §3.5 misprediction recovery: the OOB of
// the page at center stores the reverse mappings of its neighbor PPAs
// [center−gamma, center+gamma] (Figure 11), so one page read yields the
// whole window. Slots outside the device or not yet written come back as
// InvalidLPA (the paper's null bytes). The read is charged on center's
// channel; done is its completion time.
//
// gamma must satisfy 2·gamma+1 ≤ Config.OOBEntries — the FTL checks this
// at construction, mirroring the paper's observation that a 128–256B OOB
// holds 32–64 entries.
//
// The window lives in center's OOB area, so the read can come back
// ErrOOBUncorrectable under the fault model (window unusable, returned
// nil); retry rounds are charged into done like any other read.
func (a *Array) OOBWindow(center addr.PPA, gamma int, now time.Duration) (window []addr.LPA, done time.Duration, err error) {
	a.stats.PageReads++
	a.blockReads[a.cfg.BlockOf(center)]++
	u := a.cfg.UnitOf(center)
	done = a.serveRead(u, now)
	done, _, oobUECC := a.sampleRead(center, u, done, false, true)
	if a.cfg.dieAware() {
		done = a.busTransfer(a.cfg.ChannelOf(center), done)
	}
	if oobUECC {
		return nil, done, fmt.Errorf("%w: PPA %d (OOB window)", ErrOOBUncorrectable, center)
	}
	window = make([]addr.LPA, 2*gamma+1)
	lo := int64(center) - int64(gamma)
	// The stored window covers neighbors within the same block; the paper
	// nulls entries that fall off the block's ends.
	blockFirst := int64(a.cfg.FirstPPA(a.cfg.BlockOf(center)))
	blockLast := blockFirst + int64(a.cfg.PagesPerBlock) - 1
	for i := range window {
		p := lo + int64(i)
		if p < blockFirst || p > blockLast || !a.written[p] {
			window[i] = addr.InvalidLPA
			continue
		}
		window[i] = a.reverse[p]
	}
	return window, done, nil
}

// BlockReads returns how many page reads block b has served since its
// last erase (the read-disturb counter behind read-reclaim scrubbing).
func (a *Array) BlockReads(b BlockID) uint32 { return a.blockReads[b] }

// BlockProgrammedAt returns when block b's first page was programmed
// after its last erase (0 when the block is empty) — the retention age
// base the scrub sweep compares against.
func (a *Array) BlockProgrammedAt(b BlockID) time.Duration {
	first := a.cfg.FirstPPA(b)
	if !a.written[first] {
		return 0
	}
	return a.progAt[first]
}

// ProgrammedPages returns how many pages of block b have been
// programmed since its last erase (recovery uses it to tell allocated
// blocks from free ones after all RAM state is lost).
func (a *Array) ProgrammedPages(b BlockID) int { return a.nextPg[b] }

// ScanOOB is the crash-recovery scan primitive: one page's OOB decode
// (reverse LPA + write sequence) with fault sampling but without
// timing — the channel-parallel scan charges its own latency, and the
// scan's own reads are not counted as disturb (the block is typically
// erased or rewritten right after recovery anyway). Returns
// ErrOOBUncorrectable when the OOB region is unreadable.
func (a *Array) ScanOOB(ppa addr.PPA, now time.Duration) (addr.LPA, uint64, error) {
	if !a.written[ppa] {
		return addr.InvalidLPA, 0, nil
	}
	if a.fault != nil {
		b := a.cfg.BlockOf(ppa)
		rber := a.fault.rber(a.erases[b], a.busyAge(ppa, now), a.blockReads[b])
		oobBits := a.cfg.OOBSize * 8
		hard, soft := a.fault.oobBudget(a.cfg.PageSize*8, oobBits)
		retries, corrected, uecc := a.fault.readOutcome(rber, oobBits, hard, soft)
		a.stats.ECCRetries += uint64(retries)
		if corrected && !uecc {
			a.stats.CorrectedReads++
		}
		if uecc {
			a.stats.OOBUECC++
			return addr.InvalidLPA, 0, fmt.Errorf("%w: PPA %d (scan)", ErrOOBUncorrectable, ppa)
		}
	}
	return a.reverse[ppa], a.seq[ppa], nil
}

// ScanSibling recovers ppa's OOB record from a neighbor page's OOB
// window (§3.5 stores each page's reverse mapping redundantly in its
// in-block neighbors' windows, sequence number alongside). The later
// neighbor is preferred — it was programmed after ppa, so its window
// definitely recorded ppa. Costs one page read, charged by the caller;
// fails when no programmed in-block sibling exists or the sibling's own
// OOB is unreadable.
func (a *Array) ScanSibling(ppa addr.PPA, now time.Duration) (addr.LPA, uint64, error) {
	b := a.cfg.BlockOf(ppa)
	var sib addr.PPA
	switch {
	case int64(ppa)+1 <= int64(a.cfg.FirstPPA(b))+int64(a.cfg.PagesPerBlock)-1 && a.written[ppa+1]:
		sib = ppa + 1
	case int64(ppa)-1 >= int64(a.cfg.FirstPPA(b)) && a.written[ppa-1]:
		sib = ppa - 1
	default:
		return addr.InvalidLPA, 0, fmt.Errorf("%w: PPA %d has no programmed sibling", ErrOOBUncorrectable, ppa)
	}
	if _, _, err := a.ScanOOB(sib, now); err != nil {
		return addr.InvalidLPA, 0, err
	}
	return a.reverse[ppa], a.seq[ppa], nil
}
