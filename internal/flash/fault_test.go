package flash

import (
	"errors"
	"math"
	"testing"
	"time"

	"leaftl/internal/addr"
)

func faultyCfg(seed int64, rber float64) Config {
	c := testCfg()
	c.Fault = DefaultFaults(seed, rber)
	return c
}

func TestFaultConfigValidate(t *testing.T) {
	if err := (FaultConfig{}).Validate(); err != nil {
		t.Errorf("disabled config rejected: %v", err)
	}
	if err := DefaultFaults(1, 1e-5).Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
	bad := DefaultFaults(1, 1e-5)
	bad.ECCSoftBits = bad.ECCHardBits - 1
	if bad.Validate() == nil {
		t.Error("soft < hard accepted")
	}
	bad = DefaultFaults(1, 1e-5)
	bad.BaseRBER = 1.5
	if bad.Validate() == nil {
		t.Error("BaseRBER > 1 accepted")
	}
	bad = DefaultFaults(1, 1e-5)
	bad.RetentionUnit = 0
	if bad.Validate() == nil {
		t.Error("zero RetentionUnit accepted")
	}
}

// TestRBERMonotone pins the aging model: RBER never decreases with
// wear, retention age, or read disturb, and is capped at 0.5.
func TestRBERMonotone(t *testing.T) {
	f := newFaultModel(DefaultFaults(1, 1e-6))
	base := f.rber(0, 0, 0)
	if base != 1e-6 {
		t.Errorf("fresh RBER = %v", base)
	}
	prev := base
	for e := uint32(100); e <= 10_000; e *= 10 {
		r := f.rber(e, 0, 0)
		if r < prev {
			t.Errorf("RBER fell with wear: %v at %d erases", r, e)
		}
		prev = r
	}
	if f.rber(0, time.Minute, 0) <= base {
		t.Error("retention did not raise RBER")
	}
	if f.rber(0, 0, 5000) <= base {
		t.Error("read disturb did not raise RBER")
	}
	if r := f.rber(math.MaxUint32, time.Hour, math.MaxUint32); r > 0.5 {
		t.Errorf("RBER cap broken: %v", r)
	}
}

// TestFaultDeterminism: same seed + same op sequence = identical faults
// (stats, errors, and latencies all match).
func TestFaultDeterminism(t *testing.T) {
	run := func() (Stats, []error) {
		a, err := NewArray(faultyCfg(42, 2e-4))
		if err != nil {
			t.Fatal(err)
		}
		var errs []error
		now := time.Duration(0)
		for rep := 0; rep < 4; rep++ {
			for i := 0; i < 8; i++ {
				_, err := a.Write(addr.PPA(i), addr.LPA(i), uint64(i+1), now)
				errs = append(errs, err)
				now += time.Millisecond
			}
			for i := 0; i < 8; i++ {
				_, _, _, err := a.Read(addr.PPA(i), now)
				errs = append(errs, err)
				now += 10 * time.Second // accrue retention error
			}
			_, err := a.Erase(0, now)
			errs = append(errs, err)
		}
		return a.Stats(), errs
	}
	s1, e1 := run()
	s2, e2 := run()
	if s1 != s2 {
		t.Errorf("stats diverged:\n%+v\n%+v", s1, s2)
	}
	for i := range e1 {
		if (e1[i] == nil) != (e2[i] == nil) {
			t.Fatalf("error sequence diverged at op %d: %v vs %v", i, e1[i], e2[i])
		}
	}
}

// TestReadOutcomeThresholds drives readOutcome through its three
// regimes by checking the classification of known error counts.
func TestReadOutcomeThresholds(t *testing.T) {
	cfg := DefaultFaults(7, 1e-6)
	f := newFaultModel(cfg)
	// Sample many outcomes at an RBER high enough that all regimes
	// appear, and check the invariants that tie them together.
	bits := 4096 * 8
	var sawClean, sawRetry, sawUECC bool
	for i := 0; i < 5000; i++ {
		retries, corrected, uecc := f.readOutcome(4e-4, bits, cfg.ECCHardBits, cfg.ECCSoftBits)
		switch {
		case uecc:
			sawUECC = true
			if retries != cfg.MaxReadRetries {
				t.Fatalf("UECC with %d retries, want max %d", retries, cfg.MaxReadRetries)
			}
		case retries > 0:
			sawRetry = true
			if !corrected {
				t.Fatal("retried read not marked corrected")
			}
			if retries > cfg.MaxReadRetries {
				t.Fatalf("retries %d beyond cap %d", retries, cfg.MaxReadRetries)
			}
		default:
			sawClean = true
		}
	}
	if !sawClean || !sawRetry || !sawUECC {
		t.Errorf("regimes seen: clean=%v retry=%v uecc=%v (seed 7)", sawClean, sawRetry, sawUECC)
	}
	// Zero RBER is always clean.
	if r, c, u := f.readOutcome(0, bits, cfg.ECCHardBits, cfg.ECCSoftBits); r != 0 || c || u {
		t.Errorf("zero-RBER read not clean: %d/%v/%v", r, c, u)
	}
}

func TestOOBBudgetFloors(t *testing.T) {
	f := newFaultModel(DefaultFaults(1, 1e-6))
	hard, soft := f.oobBudget(4096*8, 256*8)
	if hard < 1 || soft < hard+1 {
		t.Errorf("OOB budget %d/%d below floors", hard, soft)
	}
	if hard > f.cfg.ECCHardBits || soft > f.cfg.ECCSoftBits {
		t.Errorf("OOB budget %d/%d exceeds data budget", hard, soft)
	}
}

// TestProgramFailBurnsPage: a failed program leaves the page written
// but empty (no token, no reverse mapping, no write seq), and the
// block keeps programming in order afterwards.
func TestProgramFailBurnsPage(t *testing.T) {
	cfg := faultyCfg(3, 1e-4)
	cfg.Fault.ProgramFailBase = 1 // fail every program
	a, err := NewArray(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, werr := a.Write(0, 100, 0xbeef, 0)
	if !errors.Is(werr, ErrProgramFail) {
		t.Fatalf("write error = %v, want ErrProgramFail", werr)
	}
	if !a.Written(0) {
		t.Error("burned page not marked written")
	}
	if a.Reverse(0) != addr.InvalidLPA || a.WriteSeq(0) != 0 {
		t.Error("burned page kept OOB contents")
	}
	if a.Stats().ProgramFails != 1 {
		t.Errorf("ProgramFails = %d", a.Stats().ProgramFails)
	}
	// The next program targets the next page, not the burned one.
	cfg2 := faultyCfg(3, 1e-4)
	a2, _ := NewArray(cfg2)
	a2.Write(0, 1, 1, 0)
	a2.Write(1, 2, 2, 0)
}

// TestEraseFailKeepsContents: a failed erase leaves the block's pages
// and erase count untouched.
func TestEraseFailKeepsContents(t *testing.T) {
	cfg := faultyCfg(5, 1e-4)
	cfg.Fault.ProgramFailBase = 0
	cfg.Fault.EraseFailBase = 1 // fail every erase
	a, err := NewArray(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Write(0, 9, 0xfeed, 0); err != nil {
		t.Fatal(err)
	}
	_, eerr := a.Erase(0, 0)
	if !errors.Is(eerr, ErrEraseFail) {
		t.Fatalf("erase error = %v, want ErrEraseFail", eerr)
	}
	if !a.Written(0) || a.Reverse(0) != 9 {
		t.Error("failed erase wiped page contents")
	}
	if a.EraseCount(0) != 1 {
		// The cycle was attempted — it still wears the block.
		t.Errorf("EraseCount = %d after failed erase", a.EraseCount(0))
	}
	if a.Stats().EraseFails != 1 {
		t.Errorf("EraseFails = %d", a.Stats().EraseFails)
	}
}

// TestUECCNeverSilent: at a catastrophic RBER, data reads either
// return the true token or an explicit error — never a wrong token.
func TestUECCNeverSilent(t *testing.T) {
	const seed = 11
	cfg := faultyCfg(seed, 5e-4)
	cfg.Fault.ProgramFailBase = 0
	cfg.Fault.EraseFailBase = 0
	a, err := NewArray(cfg)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Duration(0)
	for i := 0; i < 8; i++ {
		if _, err := a.Write(addr.PPA(i), addr.LPA(i), uint64(0x1000+i), now); err != nil {
			t.Fatal(err)
		}
	}
	var uecc int
	for rep := 0; rep < 200; rep++ {
		now += 5 * time.Second
		for i := 0; i < 8; i++ {
			tok, rev, _, err := a.Read(addr.PPA(i), now)
			switch {
			case err == nil:
				if tok != uint64(0x1000+i) || rev != addr.LPA(i) {
					t.Fatalf("seed %d: silent corruption at page %d: tok=%x rev=%d", seed, i, tok, rev)
				}
			case errors.Is(err, ErrUncorrectable):
				uecc++
				if tok != 0 {
					t.Fatalf("seed %d: UECC returned a token: %x", seed, tok)
				}
			case errors.Is(err, ErrOOBUncorrectable):
				if tok != uint64(0x1000+i) {
					t.Fatalf("seed %d: OOB UECC corrupted data token: %x", seed, tok)
				}
				if rev != addr.InvalidLPA {
					t.Fatalf("seed %d: OOB UECC returned a reverse mapping: %d", seed, rev)
				}
			default:
				t.Fatalf("seed %d: unexpected error %v", seed, err)
			}
		}
	}
	st := a.Stats()
	if st.DataUECC == 0 && uecc == 0 {
		t.Errorf("seed %d: aging never produced a data UECC (CorrectedReads=%d)", seed, st.CorrectedReads)
	}
	if st.ECCRetries == 0 {
		t.Errorf("seed %d: no read retries charged", seed)
	}
}

// TestRetryLatencyCharged: a corrected read with retries takes longer
// than a clean read of the same page.
func TestRetryLatencyCharged(t *testing.T) {
	cfg := faultyCfg(2, 0)
	// Base zero, huge retention slope: first read is clean, aged read
	// must retry.
	cfg.Fault.RetentionRBER = 2e-4
	cfg.Fault.ProgramFailBase = 0
	cfg.Fault.EraseFailBase = 0
	a, err := NewArray(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Write(0, 0, 1, 0); err != nil {
		t.Fatal(err)
	}
	_, _, clean, err := a.Read(0, a.Config().WriteLatency)
	if err != nil {
		t.Fatal(err)
	}
	cleanLat := clean - a.Config().WriteLatency
	// Age the page far enough that some read in a long series retries.
	var sawSlow bool
	now := a.Config().WriteLatency
	for i := 0; i < 500 && !sawSlow; i++ {
		now += 30 * time.Second
		_, _, done, err := a.Read(0, now)
		if err != nil {
			continue // UECC still charges retries; covered elsewhere
		}
		if done-now > cleanLat {
			sawSlow = true
		}
	}
	if !sawSlow {
		t.Error("no retry latency observed on an aged page (seed 2)")
	}
	if a.Stats().ECCRetries == 0 {
		t.Error("retry counter never incremented")
	}
}

// TestScanPrimitives: ScanOOB decodes reverse+seq, ScanSibling recovers
// them via a neighbor, and both honor the fault switch.
func TestScanPrimitives(t *testing.T) {
	a, _ := NewArray(testCfg()) // faults off
	a.Write(0, 40, 1, 0)
	a.Write(1, 41, 2, 0)
	lpa, seq, err := a.ScanOOB(0, 0)
	if err != nil || lpa != 40 || seq != a.WriteSeq(0) {
		t.Errorf("ScanOOB = %d/%d/%v", lpa, seq, err)
	}
	if lpa, _, err := a.ScanOOB(5, 0); err != nil || lpa != addr.InvalidLPA {
		t.Errorf("ScanOOB of unwritten page = %d/%v", lpa, err)
	}
	lpa, seq, err = a.ScanSibling(0, 0)
	if err != nil || lpa != 40 || seq != a.WriteSeq(0) {
		t.Errorf("ScanSibling = %d/%d/%v", lpa, seq, err)
	}
	// A lone page in its block has no sibling.
	a.Write(8, 50, 3, 0) // block 1, first page
	if _, _, err := a.ScanSibling(8, 0); err == nil {
		t.Error("ScanSibling of lone page succeeded")
	}
}

// TestBlockReadCounters: reads tick the disturb counter; erase resets
// it along with the program timestamp.
func TestBlockReadCounters(t *testing.T) {
	a, _ := NewArray(testCfg())
	a.Write(0, 0, 1, time.Millisecond)
	if got := a.BlockProgrammedAt(0); got != time.Millisecond {
		t.Errorf("BlockProgrammedAt = %v", got)
	}
	a.Read(0, 0)
	a.Read(1, 0)
	a.OOBWindow(0, 1, 0)
	if got := a.BlockReads(0); got != 3 {
		t.Errorf("BlockReads = %d, want 3", got)
	}
	if _, err := a.Erase(0, 0); err != nil {
		t.Fatal(err)
	}
	if a.BlockReads(0) != 0 || a.BlockProgrammedAt(0) != 0 {
		t.Error("erase did not reset disturb/retention state")
	}
}
