package leaftl

import (
	"sync/atomic"

	"leaftl/internal/addr"
	"leaftl/internal/core"
	"leaftl/internal/ftl"
)

// Sharded is LeaFTL over a core.ShardedTable: the same learned mapping,
// partitioned N ways so independent host streams can translate
// concurrently (ftl.Concurrent). Commit and Maintain keep the device's
// serialized contract; Translate is safe from any number of goroutines,
// with the evaluation counters kept on atomics.
type Sharded struct {
	name         string
	table        *core.ShardedTable
	pageSize     int
	compactEvery uint64
	lastCompact  uint64

	lookups    atomic.Uint64
	levelsSum  atomic.Uint64
	levelsHist [maxLevelBuckets]atomic.Uint64
	segLearned atomic.Uint64
	batchCount atomic.Uint64
}

// maxLevelBuckets bounds the lookup-level histogram; deeper visits land
// in the last bucket (group level stacks are a handful deep in practice,
// Figure 12).
const maxLevelBuckets = 64

// NewSharded returns a sharded LeaFTL scheme with error bound gamma
// (pages), the device's flash page size, and the given shard count.
func NewSharded(gamma, pageSize, shards int, opts ...Option) *Sharded {
	// Reuse Option plumbing via a throwaway Scheme so WithCompactEvery
	// applies uniformly.
	cfg := &Scheme{compactEvery: 1_000_000, name: "LeaFTL"}
	for _, o := range opts {
		o(cfg)
	}
	return &Sharded{
		name:         cfg.name + "-sharded",
		table:        core.NewShardedTable(gamma, shards),
		pageSize:     pageSize,
		compactEvery: cfg.compactEvery,
	}
}

// Name implements ftl.Scheme.
func (s *Sharded) Name() string { return s.name }

// Gamma returns the error bound (implements ftl.Gamma).
func (s *Sharded) Gamma() int { return s.table.Gamma() }

// TranslateShards implements ftl.Concurrent.
func (s *Sharded) TranslateShards() int { return s.table.Shards() }

// Table exposes the underlying sharded table for structure-level
// experiments.
func (s *Sharded) Table() *core.ShardedTable { return s.table }

// Translate implements ftl.Scheme and is safe for concurrent use.
func (s *Sharded) Translate(lpa addr.LPA) (ftl.Translation, bool) {
	ppa, res, ok := s.table.Lookup(lpa)
	if !ok {
		return ftl.Translation{}, false
	}
	s.lookups.Add(1)
	s.levelsSum.Add(uint64(res.Levels))
	b := res.Levels
	if b >= maxLevelBuckets {
		b = maxLevelBuckets - 1
	}
	s.levelsHist[b].Add(1)
	return ftl.Translation{PPA: ppa, Levels: res.Levels, Approx: res.Approx}, true
}

// Commit implements ftl.Scheme (serialized by the device, like Scheme).
func (s *Sharded) Commit(pairs []addr.Mapping) ftl.Cost {
	n := s.table.Update(pairs)
	s.segLearned.Add(uint64(n))
	s.batchCount.Add(1)
	return ftl.Cost{}
}

// SetBudget implements ftl.Scheme; the learned table is always resident.
func (s *Sharded) SetBudget(int) {}

// MemoryBytes implements ftl.Scheme.
func (s *Sharded) MemoryBytes() int { return s.table.SizeBytes() }

// FullSizeBytes implements ftl.Scheme.
func (s *Sharded) FullSizeBytes() int { return s.table.SizeBytes() }

// Maintain implements ftl.Scheme: periodic compaction (parallel across
// shards) and table persistence, as in Scheme.Maintain.
func (s *Sharded) Maintain(hostPageWrites uint64) ftl.Cost {
	if hostPageWrites < s.lastCompact {
		s.lastCompact = hostPageWrites
	}
	if hostPageWrites-s.lastCompact < s.compactEvery {
		return ftl.Cost{}
	}
	s.lastCompact = hostPageWrites
	s.table.Compact()
	pages := (s.table.SizeBytes() + s.pageSize - 1) / s.pageSize
	return ftl.Cost{MetaWrites: pages}
}

// Snapshot serializes the learned table (plain-Table snapshot format;
// shard count is a runtime choice, not persistent state).
func (s *Sharded) Snapshot() ([]byte, error) { return s.table.MarshalBinary() }

// Restore replaces the learned table with a Snapshot image.
func (s *Sharded) Restore(data []byte) error { return s.table.UnmarshalBinary(data) }

// LookupLevels reports the average levels visited per lookup and the
// histogram of level counts (Figure 23a).
func (s *Sharded) LookupLevels() (avg float64, hist map[int]uint64) {
	hist = make(map[int]uint64)
	for i := range s.levelsHist {
		if n := s.levelsHist[i].Load(); n > 0 {
			hist[i] = n
		}
	}
	n := s.lookups.Load()
	if n == 0 {
		return 0, hist
	}
	return float64(s.levelsSum.Load()) / float64(n), hist
}

// SegmentsPerBatch reports the average number of segments learned per
// committed batch.
func (s *Sharded) SegmentsPerBatch() float64 {
	b := s.batchCount.Load()
	if b == 0 {
		return 0
	}
	return float64(s.segLearned.Load()) / float64(b)
}

var (
	_ ftl.Scheme     = (*Sharded)(nil)
	_ ftl.Concurrent = (*Sharded)(nil)
	_ ftl.Gamma      = (*Sharded)(nil)
)
