package leaftl

import (
	"sync"
	"sync/atomic"

	"leaftl/internal/addr"
	"leaftl/internal/core"
	"leaftl/internal/ftl"
)

// Sharded is LeaFTL over a core.ShardedTable: the same learned mapping,
// partitioned N ways so independent host streams can translate
// concurrently (ftl.Concurrent). Commit and Maintain keep the device's
// serialized contract; Translate is safe from any number of goroutines,
// with the evaluation counters kept on atomics.
//
// Demand paging (SetBudget > 0) uses one pager shared across the shards
// — the DRAM budget is a device-wide quantity, and a shared directory
// makes the sharded scheme's paging decisions bit-identical to the plain
// scheme's (the sharded-invisible contract the experiment suite pins).
// While every known group is resident and within budget, lookups keep
// the lock-free sharded fast path; once groups page out, translations
// serialize behind the pager mutex, exactly like a real CMT.
type Sharded struct {
	name         string
	table        *core.ShardedTable
	pageSize     int
	compactEvery uint64
	lastCompact  uint64

	// pmu guards pager state; paging mirrors !pager.FastPath() so the
	// lock-free Translate path can skip it without touching the pager.
	// Fast-path misses re-check under the read side of pmu (evictors
	// hold the write side), so unmapped-LPA lookups stay concurrent.
	pmu    sync.RWMutex
	pager  *core.Pager
	paging atomic.Bool

	// Adaptive-γ controller state (WithAutoTune); feedback arrives on the
	// device's serialized read path, never from concurrent translators.
	autotune bool
	tune     core.TuneConfig

	// Predicted-exact bitmap + GC relearning (WithExactBitmap).
	bitmap bool

	// Mapping-delta journal persistence (WithJournal); lives in the
	// shared pager, so plain and sharded journal bit-identically.
	journal bool

	lookups    atomic.Uint64
	levelsSum  atomic.Uint64
	levelsHist [maxLevelBuckets]atomic.Uint64
	segLearned atomic.Uint64
	batchCount atomic.Uint64
}

// maxLevelBuckets bounds the lookup-level histogram; deeper visits land
// in the last bucket (group level stacks are a handful deep in practice,
// Figure 12).
const maxLevelBuckets = 64

// NewSharded returns a sharded LeaFTL scheme with error bound gamma
// (pages), the device's flash page size, and the given shard count.
func NewSharded(gamma, pageSize, shards int, opts ...Option) *Sharded {
	// Reuse Option plumbing via a throwaway Scheme so WithCompactEvery
	// applies uniformly.
	cfg := &Scheme{compactEvery: 1_000_000, name: "LeaFTL"}
	for _, o := range opts {
		o(cfg)
	}
	table := core.NewShardedTable(gamma, shards)
	name := cfg.name
	if cfg.bitmap {
		table.EnableExactBitmap()
		name += "+bitmap"
	}
	pager := core.NewPager(table, pageSize)
	if cfg.journal {
		pager.EnableJournal()
	}
	return &Sharded{
		name:         name + "-sharded",
		table:        table,
		pager:        pager,
		pageSize:     pageSize,
		compactEvery: cfg.compactEvery,
		autotune:     cfg.autotune,
		tune:         cfg.tune,
		bitmap:       cfg.bitmap,
		journal:      cfg.journal,
	}
}

// Name implements ftl.Scheme.
func (s *Sharded) Name() string { return s.name }

// Gamma returns the error bound (implements ftl.Gamma).
func (s *Sharded) Gamma() int { return s.table.Gamma() }

// TranslateShards implements ftl.Concurrent.
func (s *Sharded) TranslateShards() int { return s.table.Shards() }

// Table exposes the underlying sharded table for structure-level
// experiments.
func (s *Sharded) Table() *core.ShardedTable { return s.table }

// syncPaging refreshes the lock-free paging indicator; callers hold pmu
// (or run on the device's serialized mutation path).
func (s *Sharded) syncPaging() {
	s.paging.Store(s.pager.Active() && !s.pager.FastPath())
}

// Translate implements ftl.Scheme and is safe for concurrent use.
func (s *Sharded) Translate(lpa addr.LPA) (ftl.Translation, bool) {
	if s.paging.Load() {
		return s.translatePaged(lpa)
	}
	ppa, res, ok := s.table.Lookup(lpa)
	if !ok {
		// A lock-free miss is not final: a concurrent commit may have
		// evicted this group between the paging-flag check and the
		// lookup. Retry under the pager mutex, where an evicted group
		// demand-loads; genuinely unmapped LPAs still return false.
		return s.translatePaged(lpa)
	}
	s.noteLookup(res)
	return ftl.Translation{PPA: ppa, Levels: res.Levels, Approx: res.Approx, Hint: res.Hint, Exact: res.Exact}, true
}

// translatePaged is the slow lookup: with no paging pressure it settles
// fast-path misses under pmu's read side (evictions hold the write
// side, so the re-lookup is final and misses stay concurrent); under
// pressure it takes the write side, where a paged-out group's
// translation page is demand-loaded before the sharded lookup runs.
func (s *Sharded) translatePaged(lpa addr.LPA) (ftl.Translation, bool) {
	s.pmu.RLock()
	if !s.pager.Active() || s.pager.FastPath() {
		ppa, res, ok := s.table.Lookup(lpa)
		s.pmu.RUnlock()
		if !ok {
			return ftl.Translation{}, false
		}
		s.noteLookup(res)
		return ftl.Translation{PPA: ppa, Levels: res.Levels, Approx: res.Approx, Hint: res.Hint, Exact: res.Exact}, true
	}
	s.pmu.RUnlock()
	s.pmu.Lock()
	// State may have shifted while upgrading the lock; EnsureRead is
	// cheap for groups that are (again) resident.
	pc, known := s.pager.EnsureRead(addr.Group(lpa))
	var (
		ppa addr.PPA
		res core.LookupResult
		ok  bool
	)
	if known {
		ppa, res, ok = s.table.Lookup(lpa)
	}
	pc.Add(s.pager.Enforce())
	s.syncPaging()
	s.pmu.Unlock()
	cost := pageCost(pc)
	if !known || !ok {
		return ftl.Translation{Cost: cost}, false
	}
	s.noteLookup(res)
	return ftl.Translation{PPA: ppa, Cost: cost, Levels: res.Levels, Approx: res.Approx, Hint: res.Hint, Exact: res.Exact}, true
}

func (s *Sharded) noteLookup(res core.LookupResult) {
	s.lookups.Add(1)
	s.levelsSum.Add(uint64(res.Levels))
	b := res.Levels
	if b >= maxLevelBuckets {
		b = maxLevelBuckets - 1
	}
	s.levelsHist[b].Add(1)
}

// Commit implements ftl.Scheme (serialized by the device, like Scheme).
func (s *Sharded) Commit(pairs []addr.Mapping) ftl.Cost {
	s.pmu.Lock()
	if !s.pager.Active() {
		s.pmu.Unlock()
		n := s.table.Update(pairs)
		s.segLearned.Add(uint64(n))
		s.batchCount.Add(1)
		return ftl.Cost{}
	}
	n, pc := commitPaged(s.pager, s.table.Update, pairs)
	s.syncPaging()
	s.pmu.Unlock()
	s.segLearned.Add(uint64(n))
	s.batchCount.Add(1)
	return pageCost(pc)
}

// SetBudget implements ftl.Scheme (see Scheme.SetBudget).
func (s *Sharded) SetBudget(bytes int) {
	s.pmu.Lock()
	s.pager.SetBudget(bytes)
	s.pager.Enforce()
	s.syncPaging()
	s.pmu.Unlock()
}

// MemoryBytes implements ftl.Scheme: the DRAM-resident mapping state.
func (s *Sharded) MemoryBytes() int { return s.table.SizeBytes() }

// FullSizeBytes implements ftl.Scheme.
func (s *Sharded) FullSizeBytes() int {
	s.pmu.Lock()
	defer s.pmu.Unlock()
	if s.pager.Active() {
		return s.pager.FullSizeBytes()
	}
	return s.table.SizeBytes()
}

// Maintain implements ftl.Scheme: periodic compaction (parallel across
// shards) and table persistence, as in Scheme.Maintain.
func (s *Sharded) Maintain(hostPageWrites uint64) ftl.Cost {
	if hostPageWrites < s.lastCompact {
		s.lastCompact = hostPageWrites
	}
	if hostPageWrites-s.lastCompact < s.compactEvery {
		return ftl.Cost{}
	}
	s.lastCompact = hostPageWrites
	s.pmu.Lock()
	defer s.pmu.Unlock()
	if s.autotune {
		// Retuned γs change the groups' wire records; dirty them so the
		// new bounds reach flash and survive eviction or a crash.
		for _, gid := range s.table.RetuneGamma(s.tune) {
			s.pager.MarkDirty(gid)
		}
	}
	if s.pager.Paging() {
		for _, gid := range s.table.CompactChanged() {
			s.pager.MarkDirty(gid)
		}
		pc := s.pager.FlushDirty()
		pc.Add(s.pager.Enforce())
		s.syncPaging()
		return pageCost(pc)
	}
	// Budget never bound: whole-table persistence, as in Scheme.Maintain.
	s.table.Compact()
	pages := (s.table.SizeBytes() + s.pageSize - 1) / s.pageSize
	return sweepCost(pages)
}

// MaxGroupGamma implements ftl.AdaptiveGamma.
func (s *Sharded) MaxGroupGamma() int { return s.table.MaxGroupGamma() }

// FeedbackEnabled reports whether the scheme wants the device's
// OOB-verified read feedback (adaptive controller or exactness bitmap
// on).
func (s *Sharded) FeedbackEnabled() bool { return s.autotune || s.bitmap }

// ExactBitmapEnabled reports whether predicted-exact bitmaps and GC
// relearning are on.
func (s *Sharded) ExactBitmapEnabled() bool { return s.bitmap }

// NoteRead implements ftl.MissReporter (see Scheme.NoteRead). The device
// serializes calls; the shard write lock inside core keeps the counters
// safe against concurrent Translates, and repairs take pmu like commits.
func (s *Sharded) NoteRead(lpa addr.LPA, predicted, actual addr.PPA, approx, hintResolved bool) ftl.Cost {
	if !s.autotune && !s.bitmap {
		return ftl.Cost{}
	}
	s.table.NoteRead(lpa, predicted, actual, approx, hintResolved)
	if !approx || actual == predicted || hintResolved ||
		(!s.bitmap && s.table.GroupGamma(addr.Group(lpa)) > 0) {
		return ftl.Cost{}
	}
	ls := repairPoint(lpa, actual)
	s.pmu.Lock()
	if s.pager.Active() {
		pc := s.pager.EnsureWrite(addr.Group(lpa))
		s.table.Insert(ls)
		pc.Add(s.pager.Enforce())
		s.syncPaging()
		s.pmu.Unlock()
		return pageCost(pc)
	}
	s.pmu.Unlock()
	s.table.Insert(ls)
	return ftl.Cost{}
}

// NoteExact implements ftl.MissReporter (see Scheme.NoteExact).
func (s *Sharded) NoteExact(lpa addr.LPA) ftl.Cost {
	if s.bitmap {
		s.table.NoteExactRead(lpa)
	}
	return ftl.Cost{}
}

// CommitGC implements ftl.GCRelearner (see Scheme.CommitGC); serialized
// by the device like Commit.
func (s *Sharded) CommitGC(pairs []addr.Mapping) (ftl.Cost, int) {
	if !s.bitmap {
		return s.Commit(pairs), 0
	}
	groups := 0
	relearn := func(run []addr.Mapping) int {
		sg, gr := s.table.Relearn(run)
		groups += gr
		return sg
	}
	s.pmu.Lock()
	if !s.pager.Active() {
		s.pmu.Unlock()
		n := relearn(pairs)
		s.segLearned.Add(uint64(n))
		s.batchCount.Add(1)
		return ftl.Cost{}, groups
	}
	n, pc := commitPaged(s.pager, relearn, pairs)
	s.syncPaging()
	s.pmu.Unlock()
	s.segLearned.Add(uint64(n))
	s.batchCount.Add(1)
	return pageCost(pc), groups
}

// AuditExact implements ftl.ExactAuditor (see Scheme.AuditExact).
func (s *Sharded) AuditExact(truth func(addr.LPA) (addr.PPA, bool)) error {
	return s.table.AuditExactBits(truth)
}

// TranslationPages implements ftl.GroupPaged.
func (s *Sharded) TranslationPages() int {
	s.pmu.Lock()
	defer s.pmu.Unlock()
	return s.pager.TranslationPages()
}

// PersistedGroups implements ftl.GroupPaged.
func (s *Sharded) PersistedGroups() map[addr.GroupID][]byte {
	s.pmu.Lock()
	defer s.pmu.Unlock()
	return s.pager.PersistedGroups()
}

// RestoreGroups implements ftl.GroupPaged.
func (s *Sharded) RestoreGroups(images map[addr.GroupID][]byte) error {
	s.pmu.Lock()
	defer s.pmu.Unlock()
	err := s.pager.RestoreGroups(images)
	s.syncPaging()
	return err
}

// CheckMapping implements ftl.GroupPaged.
func (s *Sharded) CheckMapping() error {
	s.pmu.Lock()
	defer s.pmu.Unlock()
	return s.pager.Check()
}

// JournalEnabled implements ftl.Journaled.
func (s *Sharded) JournalEnabled() bool { return s.journal }

// ConfigureJournal implements ftl.Journaled.
func (s *Sharded) ConfigureJournal(pagesPerBlock, maxPages int) {
	s.pmu.Lock()
	defer s.pmu.Unlock()
	s.pager.ConfigureJournal(pagesPerBlock, maxPages)
}

// JournalStats implements ftl.Journaled.
func (s *Sharded) JournalStats() ftl.JournalStats {
	s.pmu.Lock()
	defer s.pmu.Unlock()
	return journalStats(s.pager.JournalStats())
}

// SetJournalCrashHook forwards the pager's journal crash hook (see
// Scheme.SetJournalCrashHook).
func (s *Sharded) SetJournalCrashHook(hook func(point string)) {
	s.pmu.Lock()
	defer s.pmu.Unlock()
	s.pager.SetJournalHook(hook)
}

// PagingStats exposes the pager's fault/eviction counters.
func (s *Sharded) PagingStats() core.PagerStats {
	s.pmu.Lock()
	defer s.pmu.Unlock()
	return s.pager.Stats()
}

// Snapshot serializes the full learned table (plain-Table snapshot
// format; shard count is a runtime choice, not persistent state),
// including paged-out groups from their translation-page images.
func (s *Sharded) Snapshot() ([]byte, error) {
	s.pmu.Lock()
	defer s.pmu.Unlock()
	if s.pager.Active() {
		return s.table.SnapshotWith(s.pager.EvictedImages())
	}
	return s.table.MarshalBinary()
}

// Restore replaces the learned table with a Snapshot image (see
// Scheme.Restore).
func (s *Sharded) Restore(data []byte) error {
	s.pmu.Lock()
	defer s.pmu.Unlock()
	if err := s.table.UnmarshalBinary(data); err != nil {
		return err
	}
	s.pager.Reset()
	s.pager.Enforce()
	s.syncPaging()
	return nil
}

// LookupLevels reports the average levels visited per lookup and the
// histogram of level counts (Figure 23a).
func (s *Sharded) LookupLevels() (avg float64, hist map[int]uint64) {
	hist = make(map[int]uint64)
	for i := range s.levelsHist {
		if n := s.levelsHist[i].Load(); n > 0 {
			hist[i] = n
		}
	}
	n := s.lookups.Load()
	if n == 0 {
		return 0, hist
	}
	return float64(s.levelsSum.Load()) / float64(n), hist
}

// SegmentsPerBatch reports the average number of segments learned per
// committed batch.
func (s *Sharded) SegmentsPerBatch() float64 {
	b := s.batchCount.Load()
	if b == 0 {
		return 0
	}
	return float64(s.segLearned.Load()) / float64(b)
}

var (
	_ ftl.Scheme        = (*Sharded)(nil)
	_ ftl.Concurrent    = (*Sharded)(nil)
	_ ftl.Gamma         = (*Sharded)(nil)
	_ ftl.GroupPaged    = (*Sharded)(nil)
	_ ftl.MissReporter  = (*Sharded)(nil)
	_ ftl.AdaptiveGamma = (*Sharded)(nil)
	_ ftl.GCRelearner   = (*Sharded)(nil)
	_ ftl.ExactAuditor  = (*Sharded)(nil)
	_ ftl.Journaled     = (*Sharded)(nil)
)
