package leaftl

import (
	"testing"

	"leaftl/internal/addr"
)

func seq(start addr.LPA, ppa addr.PPA, n int) []addr.Mapping {
	out := make([]addr.Mapping, n)
	for i := 0; i < n; i++ {
		out[i] = addr.Mapping{LPA: start + addr.LPA(i), PPA: ppa + addr.PPA(i)}
	}
	return out
}

func TestSchemeTranslate(t *testing.T) {
	s := New(0, 4096)
	s.Commit(seq(0, 100, 256))
	tr, ok := s.Translate(10)
	if !ok || tr.PPA != 110 || tr.Approx {
		t.Fatalf("Translate(10) = %+v, %v", tr, ok)
	}
	if _, ok := s.Translate(9999); ok {
		t.Error("unmapped LPA translated")
	}
	if s.Name() != "LeaFTL" || s.Gamma() != 0 {
		t.Errorf("name/gamma = %s/%d", s.Name(), s.Gamma())
	}
}

func TestSchemeMemorySmallOnSequential(t *testing.T) {
	s := New(0, 4096)
	for b := 0; b < 64; b++ {
		s.Commit(seq(addr.LPA(b*256), addr.PPA(b*256), 256))
	}
	// 64 blocks × 256 pages = 16384 mappings; DFTL would need 128KB.
	if s.MemoryBytes() > 1024 {
		t.Errorf("sequential mapping used %d bytes", s.MemoryBytes())
	}
	if s.FullSizeBytes() != s.MemoryBytes() {
		t.Error("resident table: full size must equal memory")
	}
}

func TestSchemeMaintainCompacts(t *testing.T) {
	s := New(0, 4096, WithCompactEvery(100))
	for i := 0; i < 20; i++ {
		s.Commit(seq(0, addr.PPA(1000*i), 128))
	}
	cost := s.Maintain(100) // interval reached
	if cost.MetaWrites == 0 {
		t.Error("maintenance did not persist the table")
	}
	if c := s.Maintain(150); c.MetaWrites != 0 {
		t.Error("maintenance re-ran before the interval elapsed")
	}
	tr, ok := s.Translate(5)
	if !ok || tr.PPA != addr.PPA(1000*19+5) {
		t.Fatalf("post-compaction Translate(5) = %+v, %v", tr, ok)
	}
}

func TestSchemeStatsCounters(t *testing.T) {
	s := New(4, 4096)
	s.Commit(seq(0, 0, 64))
	for i := 0; i < 10; i++ {
		s.Translate(addr.LPA(i))
	}
	avg, hist := s.LookupLevels()
	if avg < 1 {
		t.Errorf("avg levels = %v", avg)
	}
	if len(hist) == 0 {
		t.Error("empty level histogram")
	}
	if s.SegmentsPerBatch() <= 0 {
		t.Error("segments-per-batch not tracked")
	}
	if s.Table() == nil {
		t.Error("table accessor nil")
	}
}

func TestSnapshotRestore(t *testing.T) {
	s := New(4, 4096)
	ir := func(lpas []addr.LPA, ppa addr.PPA) []addr.Mapping {
		out := make([]addr.Mapping, len(lpas))
		for i, l := range lpas {
			out[i] = addr.Mapping{LPA: l, PPA: ppa + addr.PPA(i)}
		}
		return out
	}
	s.Commit(seq(0, 100, 256))
	s.Commit(ir([]addr.LPA{300, 302, 305, 309}, 5000))
	s.Commit(seq(64, 9000, 64))

	img, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	fresh := New(0, 4096)
	if err := fresh.Restore(img); err != nil {
		t.Fatal(err)
	}
	if fresh.Gamma() != 4 {
		t.Errorf("gamma after restore = %d", fresh.Gamma())
	}
	for _, lpa := range []addr.LPA{0, 63, 64, 127, 300, 305, 255} {
		a, aok := s.Translate(lpa)
		b, bok := fresh.Translate(lpa)
		if aok != bok || a.PPA != b.PPA {
			t.Errorf("Translate(%d): %v/%v vs %v/%v", lpa, a.PPA, aok, b.PPA, bok)
		}
	}
	if err := fresh.Restore([]byte("garbage")); err == nil {
		t.Error("garbage snapshot accepted")
	}
}
