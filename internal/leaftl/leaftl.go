// Package leaftl wires the learned mapping table (internal/core) into the
// ftl.Scheme interface the SSD device drives (paper §3.8 "Put It All
// Together").
//
// The learned table is fully DRAM-resident — its whole point is being
// small (Figures 15/19) — so translations cost no flash accesses. The
// scheme's periodic maintenance performs segment compaction (every
// CompactEvery host page writes, §3.7) and persists the table to flash
// translation blocks for recovery (§3.8), charging the corresponding
// translation-page writes.
package leaftl

import (
	"leaftl/internal/addr"
	"leaftl/internal/core"
	"leaftl/internal/ftl"
)

// Option configures a Scheme.
type Option func(*Scheme)

// WithCompactEvery overrides the compaction interval, in host page
// writes. The paper's default is one million (§3.7).
func WithCompactEvery(n uint64) Option {
	return func(s *Scheme) { s.compactEvery = n }
}

// WithoutSortedFlush is used by the buffer-sorting ablation; it only
// marks the scheme name, the device owns actual buffer sorting.
func WithoutSortedFlush() Option {
	return func(s *Scheme) { s.name = "LeaFTL-nosort" }
}

// Scheme is LeaFTL as an ftl.Scheme.
type Scheme struct {
	name         string
	table        *core.Table
	pageSize     int
	compactEvery uint64
	lastCompact  uint64

	// Stats accumulated for the evaluation figures.
	lookups    uint64
	levelsSum  uint64
	levelsHist map[int]uint64
	segLearned uint64
	batchCount uint64
}

// New returns a LeaFTL scheme with error bound gamma (pages) on a device
// with the given flash page size.
func New(gamma, pageSize int, opts ...Option) *Scheme {
	s := &Scheme{
		name:         "LeaFTL",
		table:        core.NewTable(gamma),
		pageSize:     pageSize,
		compactEvery: 1_000_000,
		levelsHist:   make(map[int]uint64),
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Name implements ftl.Scheme.
func (s *Scheme) Name() string { return s.name }

// Gamma returns the error bound (implements ftl.Gamma).
func (s *Scheme) Gamma() int { return s.table.Gamma() }

// Table exposes the underlying learned table for structure-level
// experiments (Figures 5, 10, 12, 20).
func (s *Scheme) Table() *core.Table { return s.table }

// Translate implements ftl.Scheme.
func (s *Scheme) Translate(lpa addr.LPA) (ftl.Translation, bool) {
	ppa, res, ok := s.table.Lookup(lpa)
	if !ok {
		return ftl.Translation{}, false
	}
	s.lookups++
	s.levelsSum += uint64(res.Levels)
	s.levelsHist[res.Levels]++
	return ftl.Translation{PPA: ppa, Levels: res.Levels, Approx: res.Approx}, true
}

// Commit implements ftl.Scheme: learns index segments over the flushed
// batch and inserts them at the top level. Learning runs on the
// controller CPU (Table 3 measures it at ~10µs per 256 mappings) and
// costs no flash operations.
func (s *Scheme) Commit(pairs []addr.Mapping) ftl.Cost {
	n := s.table.Update(pairs)
	s.segLearned += uint64(n)
	s.batchCount++
	return ftl.Cost{}
}

// SetBudget implements ftl.Scheme. The learned table is always resident;
// the budget is accepted for interface symmetry.
func (s *Scheme) SetBudget(int) {}

// MemoryBytes implements ftl.Scheme.
func (s *Scheme) MemoryBytes() int { return s.table.SizeBytes() }

// FullSizeBytes implements ftl.Scheme.
func (s *Scheme) FullSizeBytes() int { return s.table.SizeBytes() }

// Maintain implements ftl.Scheme: every compactEvery host page writes,
// compact the log-structured table (§3.7) and persist it to translation
// blocks (§3.8), charging ⌈table/pageSize⌉ translation-page writes.
func (s *Scheme) Maintain(hostPageWrites uint64) ftl.Cost {
	if hostPageWrites < s.lastCompact {
		// The device's host counters were reset (warmup/steady-state
		// separation); re-anchor instead of underflowing.
		s.lastCompact = hostPageWrites
	}
	if hostPageWrites-s.lastCompact < s.compactEvery {
		return ftl.Cost{}
	}
	s.lastCompact = hostPageWrites
	s.table.Compact()
	pages := (s.table.SizeBytes() + s.pageSize - 1) / s.pageSize
	return ftl.Cost{MetaWrites: pages}
}

// Snapshot serializes the learned table (the translation-page image of
// §3.8). With battery-backed DRAM this is persisted on power failure and
// recovery is one Restore instead of an OOB scan.
func (s *Scheme) Snapshot() ([]byte, error) { return s.table.MarshalBinary() }

// Restore replaces the learned table with a Snapshot image.
func (s *Scheme) Restore(data []byte) error { return s.table.UnmarshalBinary(data) }

// LookupLevels reports the average levels visited per lookup and the
// histogram of level counts (Figure 23a).
func (s *Scheme) LookupLevels() (avg float64, hist map[int]uint64) {
	if s.lookups == 0 {
		return 0, s.levelsHist
	}
	return float64(s.levelsSum) / float64(s.lookups), s.levelsHist
}

// SegmentsPerBatch reports the average number of segments learned per
// committed batch.
func (s *Scheme) SegmentsPerBatch() float64 {
	if s.batchCount == 0 {
		return 0
	}
	return float64(s.segLearned) / float64(s.batchCount)
}

var _ ftl.Scheme = (*Scheme)(nil)
