// Package leaftl wires the learned mapping table (internal/core) into the
// ftl.Scheme interface the SSD device drives (paper §3.8 "Put It All
// Together").
//
// The learned table's whole point is being small (Figures 15/19), so it
// usually stays fully DRAM-resident and translations cost no flash
// accesses. When a real byte budget is set (SetBudget > 0), the scheme
// demand-pages 256-LPA segment groups to flash translation pages through
// a Global Mapping Directory (core.Pager): lookups and commits touching a
// non-resident group charge translation-page reads, dirty evictions and
// periodic persistence charge translation-page writes, exactly like
// DFTL's cached mapping table — which makes DRAM-budget comparisons
// between the schemes honest.
//
// The scheme's periodic maintenance performs segment compaction (every
// CompactEvery host page writes, §3.7) and persists the table to flash
// translation blocks for recovery (§3.8), charging the corresponding
// translation-page writes; under a budget only the groups whose images
// went stale are rewritten.
package leaftl

import (
	"leaftl/internal/addr"
	"leaftl/internal/core"
	"leaftl/internal/ftl"
)

// Option configures a Scheme.
type Option func(*Scheme)

// WithCompactEvery overrides the compaction interval, in host page
// writes. The paper's default is one million (§3.7).
func WithCompactEvery(n uint64) Option {
	return func(s *Scheme) { s.compactEvery = n }
}

// WithoutSortedFlush is used by the buffer-sorting ablation; it only
// marks the scheme name, the device owns actual buffer sorting.
func WithoutSortedFlush() Option {
	return func(s *Scheme) { s.name = "LeaFTL-nosort" }
}

// WithAutoTune enables the adaptive per-group γ controller: the device's
// OOB-verified read feedback drives per-group misprediction counters and
// direction hints, each Maintain round demotes groups whose costly-miss
// ratio exceeds targetMissRatio (γ halved, straight to exact above 2×
// the target) while promoting miss-free groups back toward the global
// bound, and costly misses in groups demoted to exact are repaired with
// exact single-point segments (see NoteRead for the repair policy).
// targetMissRatio ≤ 0 selects the default (core.TuneConfig). The global
// γ stays the correctness envelope: per-group bounds never exceed it.
func WithAutoTune(targetMissRatio float64) Option {
	return func(s *Scheme) {
		s.autotune = true
		s.tune = core.TuneConfig{TargetMissRatio: targetMissRatio}.WithDefaults()
		s.name = "LeaFTL-autotune"
	}
}

// WithJournal switches metadata persistence to the mapping-delta
// journal: dirty evictions append v4 delta records (only the tune,
// level and CRB sections that changed since the group's base image)
// packed into dedicated translation blocks, demand loads replay base
// plus chain, and chains fold into fresh full images on length/byte
// thresholds or journal GC. Off, the scheme is bit-identical to the
// full-image writeback path.
func WithJournal() Option {
	return func(s *Scheme) { s.journal = true }
}

// WithExactBitmap enables predicted-exact bitmaps and GC-time
// relearning (LearnedFTL, arXiv:2303.13226): the table verifies every
// committed slot's prediction and records exactness per LPA, Translate
// reports proven-exact approximate answers so the device reads them
// with no OOB verification budget, costly mispredictions are repaired
// with exact single-point segments regardless of the group's γ, and GC
// relocation batches re-fit their groups from the freshly sequential
// layout (CommitGC). Composes with WithAutoTune; without it the tune
// counters still advance but γ stays fixed.
func WithExactBitmap() Option {
	return func(s *Scheme) { s.bitmap = true }
}

// Scheme is LeaFTL as an ftl.Scheme.
type Scheme struct {
	name         string
	table        *core.Table
	pager        *core.Pager
	pageSize     int
	compactEvery uint64
	lastCompact  uint64

	// Adaptive-γ controller state (WithAutoTune).
	autotune bool
	tune     core.TuneConfig

	// Predicted-exact bitmap + GC relearning (WithExactBitmap).
	bitmap bool

	// Mapping-delta journal persistence (WithJournal).
	journal bool

	// Stats accumulated for the evaluation figures.
	lookups    uint64
	levelsSum  uint64
	levelsHist map[int]uint64
	segLearned uint64
	batchCount uint64
}

// New returns a LeaFTL scheme with error bound gamma (pages) on a device
// with the given flash page size.
func New(gamma, pageSize int, opts ...Option) *Scheme {
	table := core.NewTable(gamma)
	s := &Scheme{
		name:         "LeaFTL",
		table:        table,
		pager:        core.NewPager(table, pageSize),
		pageSize:     pageSize,
		compactEvery: 1_000_000,
		levelsHist:   make(map[int]uint64),
	}
	for _, o := range opts {
		o(s)
	}
	if s.bitmap {
		// Applied after all options so the suffix lands whatever the
		// option order (WithAutoTune overwrites the base name).
		s.table.EnableExactBitmap()
		s.name += "+bitmap"
	}
	if s.journal {
		s.pager.EnableJournal()
	}
	return s
}

// Name implements ftl.Scheme.
func (s *Scheme) Name() string { return s.name }

// Gamma returns the error bound (implements ftl.Gamma).
func (s *Scheme) Gamma() int { return s.table.Gamma() }

// Table exposes the underlying learned table for structure-level
// experiments (Figures 5, 10, 12, 20). Under a binding budget it holds
// only the resident groups.
func (s *Scheme) Table() *core.Table { return s.table }

// pageCost converts pager flash-operation counts into an ftl.Cost,
// carrying the translation-page identities through for die routing.
func pageCost(pc core.PageCost) ftl.Cost {
	return ftl.Cost{
		MetaReads: pc.MetaReads, MetaWrites: pc.MetaWrites,
		ReadIDs: pc.ReadIDs, WriteIDs: pc.WriteIDs,
	}
}

// sweepCost builds the whole-table persistence cost: page i of the
// packed sweep is page i every sweep, so ids are just the page index.
func sweepCost(pages int) ftl.Cost {
	c := ftl.Cost{MetaWrites: pages, WriteIDs: make([]uint64, pages)}
	for i := range c.WriteIDs {
		c.WriteIDs[i] = uint64(i)
	}
	return c
}

// commitPaged learns a sorted batch group-run by group-run through the
// pager: each run's group is made resident and dirtied before its
// update, and the byte cap is re-enforced after, so one oversized batch
// cannot blow past the budget. Shared by the plain and sharded schemes
// (update is Table.Update or ShardedTable.Update); the group-run
// boundaries match learnBuf.learn's internal splitting, so per-run
// updates learn identically to one whole-batch update.
func commitPaged(p *core.Pager, update func([]addr.Mapping) int, pairs []addr.Mapping) (int, core.PageCost) {
	var pc core.PageCost
	n := 0
	for i := 0; i < len(pairs); {
		gid := addr.Group(pairs[i].LPA)
		j := i + 1
		for j < len(pairs) && addr.Group(pairs[j].LPA) == gid {
			j++
		}
		pc.Add(p.EnsureWrite(gid))
		n += update(pairs[i:j])
		pc.Add(p.Enforce())
		i = j
	}
	return n, pc
}

// Translate implements ftl.Scheme. Under a binding budget, a lookup in a
// paged-out group first demand-loads its translation page (MetaReads),
// possibly evicting colder groups (MetaWrites when dirty).
func (s *Scheme) Translate(lpa addr.LPA) (ftl.Translation, bool) {
	var cost ftl.Cost
	if s.pager.Active() && !s.pager.FastPath() {
		pc, known := s.pager.EnsureRead(addr.Group(lpa))
		if !known {
			return ftl.Translation{}, false
		}
		ppa, res, ok := s.table.Lookup(lpa)
		pc.Add(s.pager.Enforce())
		cost = pageCost(pc)
		if !ok {
			return ftl.Translation{Cost: cost}, false
		}
		s.noteLookup(res)
		return ftl.Translation{PPA: ppa, Cost: cost, Levels: res.Levels, Approx: res.Approx, Hint: res.Hint, Exact: res.Exact}, true
	}
	ppa, res, ok := s.table.Lookup(lpa)
	if !ok {
		return ftl.Translation{}, false
	}
	s.noteLookup(res)
	return ftl.Translation{PPA: ppa, Cost: cost, Levels: res.Levels, Approx: res.Approx, Hint: res.Hint, Exact: res.Exact}, true
}

func (s *Scheme) noteLookup(res core.LookupResult) {
	s.lookups++
	s.levelsSum += uint64(res.Levels)
	s.levelsHist[res.Levels]++
}

// Commit implements ftl.Scheme: learns index segments over the flushed
// batch and inserts them at the top level. Learning runs on the
// controller CPU (Table 3 measures it at ~10µs per 256 mappings) and
// costs no flash operations; under a budget, committing into paged-out
// groups demand-loads them and the byte cap is re-enforced after every
// group's update.
func (s *Scheme) Commit(pairs []addr.Mapping) ftl.Cost {
	if s.pager.Active() {
		n, pc := commitPaged(s.pager, s.table.Update, pairs)
		s.segLearned += uint64(n)
		s.batchCount++
		return pageCost(pc)
	}
	n := s.table.Update(pairs)
	s.segLearned += uint64(n)
	s.batchCount++
	return ftl.Cost{}
}

// SetBudget implements ftl.Scheme: a positive budget caps the resident
// learned table, paging segment groups to flash translation pages on
// demand; ≤ 0 leaves the table unconstrained. Shrinking below the
// current table evicts immediately so MemoryBytes honors the cap from
// here on; like DFTL's CMT resize, those writebacks happen between
// runs and are not charged to any host request.
func (s *Scheme) SetBudget(bytes int) {
	s.pager.SetBudget(bytes)
	s.pager.Enforce()
}

// MemoryBytes implements ftl.Scheme: the DRAM-resident mapping state.
func (s *Scheme) MemoryBytes() int { return s.table.SizeBytes() }

// FullSizeBytes implements ftl.Scheme: the complete learned table,
// resident or paged out.
func (s *Scheme) FullSizeBytes() int {
	if s.pager.Active() {
		return s.pager.FullSizeBytes()
	}
	return s.table.SizeBytes()
}

// Maintain implements ftl.Scheme: every compactEvery host page writes,
// run the adaptive-γ feedback round (when enabled), compact the
// log-structured table (§3.7) and persist it to translation blocks
// (§3.8). Unbudgeted, persistence charges ⌈table/pageSize⌉
// translation-page writes; under a budget, only dirty groups (updated,
// reshaped, or γ-retuned since their last image) are rewritten.
func (s *Scheme) Maintain(hostPageWrites uint64) ftl.Cost {
	if hostPageWrites < s.lastCompact {
		// The device's host counters were reset (warmup/steady-state
		// separation); re-anchor instead of underflowing.
		s.lastCompact = hostPageWrites
	}
	if hostPageWrites-s.lastCompact < s.compactEvery {
		return ftl.Cost{}
	}
	s.lastCompact = hostPageWrites
	if s.autotune {
		// Retuned γs change the groups' wire records; dirty them so the
		// new bounds reach flash and survive eviction or a crash.
		for _, gid := range s.table.RetuneGamma(s.tune) {
			s.pager.MarkDirty(gid)
		}
	}
	if s.pager.Paging() {
		for _, gid := range s.table.CompactChanged() {
			s.pager.MarkDirty(gid)
		}
		pc := s.pager.FlushDirty()
		pc.Add(s.pager.Enforce())
		return pageCost(pc)
	}
	// The budget has never bound: persist the whole table in one sweep
	// (the pre-paging model — packed translation pages, no per-group
	// rounding) and keep no images around.
	s.table.Compact()
	pages := (s.table.SizeBytes() + s.pageSize - 1) / s.pageSize
	return sweepCost(pages)
}

// MaxGroupGamma implements ftl.AdaptiveGamma.
func (s *Scheme) MaxGroupGamma() int { return s.table.MaxGroupGamma() }

// FeedbackEnabled reports whether the scheme wants the device's
// OOB-verified read feedback: with the adaptive controller or the
// exactness bitmap on — otherwise NoteRead would be a per-read no-op
// call.
func (s *Scheme) FeedbackEnabled() bool { return s.autotune || s.bitmap }

// ExactBitmapEnabled reports whether predicted-exact bitmaps and GC
// relearning are on.
func (s *Scheme) ExactBitmapEnabled() bool { return s.bitmap }

// NoteRead implements ftl.MissReporter: OOB-verified read feedback from
// the device. Without autotune it is a no-op, keeping the scheme
// bit-identical to its pre-adaptive behaviour. With autotune, the
// feedback advances the group's misprediction window and direction hint,
// and every *costly* miss — one the hint-aimed read did not absorb — is
// repaired on the spot: the recovery already paid the flash reads that
// proved the true PPA, so pinning it as an exact single-point segment
// costs no extra flash work and turns a repeating double read into an
// exact hit (LearnedFTL's double-read elimination, expressed in LeaFTL's
// segment vocabulary). Hint-resolved misses stay unrepaired on purpose:
// they already cost a single read, and their approximate encoding is
// the cheaper representation. Repairs only flow into groups the
// controller has demoted all the way to exact — by then the group has
// proven its misses repeat, so pinning is converging the group's legacy
// approximate segments to the exact encoding its future writes already
// use; pinning every stray miss elsewhere would spend DRAM on pages
// never read again. Under a budget the repair dirties and re-caps the
// group like any commit.
//
// With the exactness bitmap on, the feedback additionally maintains the
// per-slot bits (a verified hit sets, a miss clears), and the repair
// policy widens to *every* costly miss whatever the group's γ: a repair
// both pins the mapping and arms the slot's exact bit, so the same page
// can never pay the double read twice — which is the whole point of the
// bitmap.
func (s *Scheme) NoteRead(lpa addr.LPA, predicted, actual addr.PPA, approx, hintResolved bool) ftl.Cost {
	if !s.autotune && !s.bitmap {
		return ftl.Cost{}
	}
	s.table.NoteRead(lpa, predicted, actual, approx, hintResolved)
	if !approx || actual == predicted || hintResolved ||
		(!s.bitmap && s.table.GroupGamma(addr.Group(lpa)) > 0) {
		return ftl.Cost{}
	}
	ls := repairPoint(lpa, actual)
	if s.pager.Active() {
		pc := s.pager.EnsureWrite(addr.Group(lpa))
		s.table.Insert(ls)
		pc.Add(s.pager.Enforce())
		return pageCost(pc)
	}
	s.table.Insert(ls)
	return ftl.Cost{}
}

// NoteExact implements ftl.MissReporter: the device consulted the
// predicted-exact bit, read once with no verification budget, and the
// bit held. Only the group's observation window advances.
func (s *Scheme) NoteExact(lpa addr.LPA) ftl.Cost {
	if s.bitmap {
		s.table.NoteExactRead(lpa)
	}
	return ftl.Cost{}
}

// CommitGC implements ftl.GCRelearner: GC relocation batches re-fit
// their groups from the freshly sequential layout (Table.Relearn) —
// each touched group is compacted on the spot and its moved slots'
// exactness re-verified, so GC churn tightens the model instead of
// stacking levels. With the bitmap off it is exactly Commit: no
// relearning, no behavioral difference from a scheme without the
// feature.
func (s *Scheme) CommitGC(pairs []addr.Mapping) (ftl.Cost, int) {
	if !s.bitmap {
		return s.Commit(pairs), 0
	}
	groups := 0
	relearn := func(run []addr.Mapping) int {
		sg, gr := s.table.Relearn(run)
		groups += gr
		return sg
	}
	if s.pager.Active() {
		n, pc := commitPaged(s.pager, relearn, pairs)
		s.segLearned += uint64(n)
		s.batchCount++
		return pageCost(pc), groups
	}
	n := relearn(pairs)
	s.segLearned += uint64(n)
	s.batchCount++
	return ftl.Cost{}, groups
}

// AuditExact implements ftl.ExactAuditor: verify every resident set bit
// against the device's ground truth (CheckInvariants). Trivially clean
// while the bitmap is off.
func (s *Scheme) AuditExact(truth func(addr.LPA) (addr.PPA, bool)) error {
	return s.table.AuditExactBits(truth)
}

// repairPoint builds the exact single-point segment that pins a
// misprediction's corrected mapping (L=0, K=0, I=PPA — paper §3.1).
func repairPoint(lpa addr.LPA, ppa addr.PPA) core.Learned {
	return core.Learned{
		Seg:  core.Segment{SLPA: lpa, L: 0, K: 0, I: float32(ppa)},
		LPAs: []addr.LPA{lpa},
	}
}

// JournalEnabled implements ftl.Journaled.
func (s *Scheme) JournalEnabled() bool { return s.journal }

// ConfigureJournal implements ftl.Journaled: the device hands over its
// flash geometry and the translation-footprint cap carved out of
// over-provisioning.
func (s *Scheme) ConfigureJournal(pagesPerBlock, maxPages int) {
	s.pager.ConfigureJournal(pagesPerBlock, maxPages)
}

// JournalStats implements ftl.Journaled.
func (s *Scheme) JournalStats() ftl.JournalStats {
	return journalStats(s.pager.JournalStats())
}

// SetJournalCrashHook installs the crash-injection hook fired at the
// journal's GC and fold points (reliability torture wiring).
func (s *Scheme) SetJournalCrashHook(fn func(string)) {
	s.pager.SetJournalHook(fn)
}

// journalStats converts the pager's journal counters into the ftl-layer
// mirror (core cannot import ftl — the PageCost→Cost precedent).
func journalStats(js core.JournalStats) ftl.JournalStats {
	return ftl.JournalStats{
		Appends: js.Appends, Bases: js.Bases, Folds: js.Folds,
		GCRuns: js.GCRuns, Replays: js.Replays,
		Pages: js.Pages, Blocks: js.Blocks,
		Groups: js.Groups, MaxChain: js.MaxChain,
	}
}

// TranslationPages implements ftl.GroupPaged.
func (s *Scheme) TranslationPages() int { return s.pager.TranslationPages() }

// PersistedGroups implements ftl.GroupPaged.
func (s *Scheme) PersistedGroups() map[addr.GroupID][]byte {
	return s.pager.PersistedGroups()
}

// RestoreGroups implements ftl.GroupPaged: recovery seeds the GMD with
// the images that survived on flash; the groups demand-load later.
func (s *Scheme) RestoreGroups(images map[addr.GroupID][]byte) error {
	return s.pager.RestoreGroups(images)
}

// CheckMapping implements ftl.GroupPaged.
func (s *Scheme) CheckMapping() error { return s.pager.Check() }

// PagingStats exposes the pager's fault/eviction counters (the
// MemorySweep miss-ratio source).
func (s *Scheme) PagingStats() core.PagerStats { return s.pager.Stats() }

// Snapshot serializes the full learned table — resident groups fresh
// from DRAM, paged-out groups from their translation-page images (the
// §3.8 flash layout). With battery-backed DRAM this is persisted on
// power failure and recovery is one Restore instead of an OOB scan.
func (s *Scheme) Snapshot() ([]byte, error) {
	if s.pager.Active() {
		return s.table.SnapshotWith(s.pager.EvictedImages())
	}
	return s.table.MarshalBinary()
}

// Restore replaces the learned table with a Snapshot image. The restored
// table starts fully resident; an active budget re-evicts on the spot
// (the writebacks are part of re-seeding the translation blocks and are
// not charged to any host request).
func (s *Scheme) Restore(data []byte) error {
	if err := s.table.UnmarshalBinary(data); err != nil {
		return err
	}
	s.pager.Reset()
	s.pager.Enforce()
	return nil
}

// LookupLevels reports the average levels visited per lookup and the
// histogram of level counts (Figure 23a).
func (s *Scheme) LookupLevels() (avg float64, hist map[int]uint64) {
	if s.lookups == 0 {
		return 0, s.levelsHist
	}
	return float64(s.levelsSum) / float64(s.lookups), s.levelsHist
}

// SegmentsPerBatch reports the average number of segments learned per
// committed batch.
func (s *Scheme) SegmentsPerBatch() float64 {
	if s.batchCount == 0 {
		return 0
	}
	return float64(s.segLearned) / float64(s.batchCount)
}

var (
	_ ftl.Scheme        = (*Scheme)(nil)
	_ ftl.GroupPaged    = (*Scheme)(nil)
	_ ftl.MissReporter  = (*Scheme)(nil)
	_ ftl.AdaptiveGamma = (*Scheme)(nil)
	_ ftl.GCRelearner   = (*Scheme)(nil)
	_ ftl.ExactAuditor  = (*Scheme)(nil)
	_ ftl.Journaled     = (*Scheme)(nil)
)
