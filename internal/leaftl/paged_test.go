package leaftl

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"leaftl/internal/addr"
	"leaftl/internal/ftl"
)

// pagedScheme is the surface the budget property test drives, satisfied
// by both scheme flavors.
type pagedScheme interface {
	ftl.GroupPaged
	Gamma() int
}

// TestBudgetPropertyRandomWorkloads is the budget-enforcement property
// test: across random workloads and random budgets, MemoryBytes() ≤
// budget must hold after every single operation, the GMD bookkeeping
// must stay consistent, and the budgeted scheme must translate
// bit-identically to an unlimited reference.
func TestBudgetPropertyRandomWorkloads(t *testing.T) {
	for _, flavor := range []string{"plain", "sharded"} {
		for trial := 0; trial < 3; trial++ {
			t.Run(fmt.Sprintf("%s/trial%d", flavor, trial), func(t *testing.T) {
				rng := rand.New(rand.NewSource(int64(trial*10 + len(flavor))))
				gamma := rng.Intn(5)
				var ref, bud pagedScheme
				if flavor == "plain" {
					ref = New(gamma, 4096)
					bud = New(gamma, 4096)
				} else {
					ref = NewSharded(gamma, 4096, 1+rng.Intn(8))
					bud = NewSharded(gamma, 4096, 1+rng.Intn(8))
				}

				logical := 48 * 256
				var ppa addr.PPA
				commit := func(lpas []addr.LPA) {
					pairs := make([]addr.Mapping, len(lpas))
					for i, l := range lpas {
						pairs[i] = addr.Mapping{LPA: l, PPA: ppa + addr.PPA(i)}
					}
					ppa += addr.PPA(len(lpas))
					ref.Commit(pairs)
					bud.Commit(pairs)
				}
				// Warm sequentially, then apply a harsh random budget.
				for b := 0; b < 48; b++ {
					lpas := make([]addr.LPA, 256)
					for i := range lpas {
						lpas[i] = addr.LPA(b*256 + i)
					}
					commit(lpas)
				}
				budget := 1 + rng.Intn(ref.MemoryBytes())
				bud.SetBudget(budget)

				check := func(op int) {
					if m := bud.MemoryBytes(); m > budget {
						t.Fatalf("op %d: MemoryBytes %d > budget %d", op, m, budget)
					}
					if err := bud.CheckMapping(); err != nil {
						t.Fatalf("op %d: %v", op, err)
					}
				}
				hostWrites := uint64(0)
				for op := 0; op < 6000; op++ {
					switch r := rng.Intn(100); {
					case r < 40:
						start := rng.Intn(logical - 32)
						n := 1 + rng.Intn(32)
						lpas := make([]addr.LPA, 0, n)
						for i := 0; i < n; i++ {
							lpas = append(lpas, addr.LPA(start+i))
						}
						commit(lpas)
						hostWrites += uint64(n)
					case r < 95:
						l := addr.LPA(rng.Intn(logical))
						a, aok := ref.Translate(l)
						b, bok := bud.Translate(l)
						if aok != bok || a.PPA != b.PPA || a.Approx != b.Approx {
							t.Fatalf("op %d: Translate(%d) diverges: %v/%v vs %v/%v",
								op, l, b.PPA, bok, a.PPA, aok)
						}
					default:
						// Periodic maintenance at a random cadence.
						ref.Maintain(hostWrites)
						bud.Maintain(hostWrites)
					}
					check(op)
				}
				// Every budgeted run under MemoryBytes must have produced
				// real paging traffic to be a meaningful property test.
				var faults uint64
				switch s := bud.(type) {
				case *Scheme:
					faults = s.PagingStats().Faults
				case *Sharded:
					faults = s.PagingStats().Faults
				}
				if faults == 0 && budget < ref.MemoryBytes() {
					t.Fatalf("binding budget %d (< %d) produced no faults", budget, ref.MemoryBytes())
				}
				// Full final sweep.
				for l := 0; l < logical; l++ {
					a, aok := ref.Translate(addr.LPA(l))
					b, bok := bud.Translate(addr.LPA(l))
					if aok != bok || a.PPA != b.PPA {
						t.Fatalf("final Translate(%d) diverges: %v/%v vs %v/%v", l, b.PPA, bok, a.PPA, aok)
					}
				}
				if bud.FullSizeBytes() < bud.MemoryBytes() {
					t.Fatalf("FullSizeBytes %d < MemoryBytes %d", bud.FullSizeBytes(), bud.MemoryBytes())
				}
			})
		}
	}
}

// TestPagedMaintainChargesDirtyGroupsOnly pins the pressured Maintain
// contract: once the budget has bound, the first tick persists every
// dirty resident group, an immediately repeated tick writes nothing,
// and a tick after touching one group rewrites only that group's
// translation page. A never-binding budget keeps the pre-paging
// whole-table persistence instead.
func TestPagedMaintainChargesDirtyGroupsOnly(t *testing.T) {
	unbound := New(0, 4096, WithCompactEvery(1))
	unbound.SetBudget(1 << 30)
	unbound.Commit(seq(0, 0, 256))
	legacy := unbound.Maintain(10)
	if legacy.MetaWrites == 0 {
		t.Fatal("unbound budget: maintenance did not persist the table")
	}
	if again := unbound.Maintain(20); again.MetaWrites != legacy.MetaWrites {
		t.Fatalf("unbound budget: persistence charge changed %d -> %d (whole-table model)",
			legacy.MetaWrites, again.MetaWrites)
	}
	if unbound.TranslationPages() != 0 {
		t.Fatal("unbound budget must not materialize group images")
	}

	s := New(0, 4096, WithCompactEvery(1))
	for b := 0; b < 8; b++ {
		s.Commit(seq(addr.LPA(b*256), addr.PPA(b*256), 256))
	}
	s.SetBudget(s.MemoryBytes() / 2) // binds: evicts immediately, paging on
	first := s.Maintain(10)
	if first.MetaWrites < 2 {
		t.Fatalf("first pressured tick persisted %d pages; want every dirty resident group", first.MetaWrites)
	}
	if again := s.Maintain(20); again.MetaWrites != 0 {
		t.Fatalf("idle maintenance tick rewrote %d pages", again.MetaWrites)
	}
	s.Commit(seq(3*256, 90000, 4))
	after := s.Maintain(30)
	if after.MetaWrites == 0 || after.MetaWrites >= first.MetaWrites {
		t.Fatalf("dirty-group persistence wrote %d pages (first tick wrote %d)",
			after.MetaWrites, first.MetaWrites)
	}
	if s.TranslationPages() == 0 {
		t.Fatal("no translation pages after persistence")
	}
}

// TestPagedSnapshotRestore pins that snapshots taken under a binding
// budget capture paged-out groups, and that restoring re-enforces the
// budget.
func TestPagedSnapshotRestore(t *testing.T) {
	s := New(4, 4096)
	for b := 0; b < 8; b++ {
		s.Commit(seq(addr.LPA(b*256), addr.PPA(b*256), 256))
	}
	s.Commit(seq(100, 70000, 16))
	full := s.FullSizeBytes()
	s.SetBudget(full / 4)
	s.Commit(seq(200, 80000, 1)) // trigger enforcement
	if s.MemoryBytes() > full/4 {
		t.Fatalf("budget not enforced: %d > %d", s.MemoryBytes(), full/4)
	}

	img, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	fresh := New(0, 4096)
	if err := fresh.Restore(img); err != nil {
		t.Fatal(err)
	}
	for l := 0; l < 8*256; l++ {
		a, aok := s.Translate(addr.LPA(l))
		b, bok := fresh.Translate(addr.LPA(l))
		if aok != bok || a.PPA != b.PPA {
			t.Fatalf("Translate(%d): %v/%v vs %v/%v after snapshot round trip", l, b.PPA, bok, a.PPA, aok)
		}
	}

	budgeted := New(0, 4096)
	budgeted.SetBudget(full / 8)
	if err := budgeted.Restore(img); err != nil {
		t.Fatal(err)
	}
	if budgeted.MemoryBytes() > full/8 {
		t.Fatalf("restore ignored the budget: %d > %d", budgeted.MemoryBytes(), full/8)
	}
	if err := budgeted.CheckMapping(); err != nil {
		t.Fatal(err)
	}
}

// TestShardedPagedConcurrentTranslate hammers a budgeted sharded scheme
// with concurrent translations (the ftl.Concurrent contract) while
// groups fault in and out; run under -race this pins the pager-mutex
// serialization and the lock-free fast-path handoff.
func TestShardedPagedConcurrentTranslate(t *testing.T) {
	s := NewSharded(0, 4096, 4)
	logical := 16 * 256
	for b := 0; b < 16; b++ {
		s.Commit(seq(addr.LPA(b*256), addr.PPA(b*256), 256))
	}
	s.SetBudget(s.MemoryBytes() / 3)
	s.Commit(seq(0, 90000, 1)) // force enforcement so paging pressure is on

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 3000; i++ {
				l := addr.LPA(rng.Intn(logical))
				tr, ok := s.Translate(l)
				if !ok {
					panic(fmt.Sprintf("lost mapping for %d", l))
				}
				if l == 0 {
					if tr.PPA != 90000 {
						panic(fmt.Sprintf("stale translation for 0: %d", tr.PPA))
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if err := s.CheckMapping(); err != nil {
		t.Fatal(err)
	}
	if s.MemoryBytes() > s.FullSizeBytes() {
		t.Fatal("resident exceeds full size")
	}
}
