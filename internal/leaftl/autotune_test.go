package leaftl

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"leaftl/internal/addr"
	"leaftl/internal/core"
	"leaftl/internal/ftl"
)

// tunedScheme is the surface the autotune property test drives.
type tunedScheme interface {
	pagedScheme
	ftl.MissReporter
	ftl.AdaptiveGamma
	Maintain(uint64) ftl.Cost
	Translate(addr.LPA) (ftl.Translation, bool)
	Commit([]addr.Mapping) ftl.Cost
}

// tunes returns the per-group adaptive state of either flavor.
func tunes(s tunedScheme) []core.GroupTune {
	switch v := s.(type) {
	case *Scheme:
		return v.Table().GroupTunes()
	case *Sharded:
		return v.Table().GroupTunes()
	}
	return nil
}

// TestAutotuneProperty is the adaptive-γ correctness property: across
// random feedback-driven workloads — plain and sharded, with and
// without a DRAM budget — every translation stays within the *global*
// error bound (exact answers exactly), the GMD and budget invariants
// hold after every Maintain, no group's effective γ ever exceeds the
// global bound, and the plain and sharded flavors stay bit-identical
// under identical operation streams.
func TestAutotuneProperty(t *testing.T) {
	const gamma = 8
	for trial := 0; trial < 3; trial++ {
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(41 + trial)))
			mk := func() []tunedScheme {
				return []tunedScheme{
					New(gamma, 4096, WithAutoTune(0.02), WithCompactEvery(512)),
					NewSharded(gamma, 4096, 1+rng.Intn(8), WithAutoTune(0.02), WithCompactEvery(512)),
				}
			}
			schemes := mk()

			logical := 24 * 256
			truth := make(map[addr.LPA]addr.PPA)
			var ppa addr.PPA
			var writes uint64

			commit := func(lpas []addr.LPA) {
				pairs := make([]addr.Mapping, 0, len(lpas))
				seen := map[addr.LPA]bool{}
				for _, l := range lpas {
					if !seen[l] {
						seen[l] = true
						pairs = append(pairs, addr.Mapping{LPA: l, PPA: 0})
					}
				}
				sortMappings(pairs)
				for i := range pairs {
					pairs[i].PPA = ppa + addr.PPA(i)
					truth[pairs[i].LPA] = pairs[i].PPA
				}
				ppa += addr.PPA(len(pairs))
				writes += uint64(len(pairs))
				for _, s := range schemes {
					s.Commit(pairs)
				}
			}

			read := func(lpa addr.LPA) {
				want, mapped := truth[lpa]
				var prev ftl.Translation
				var prevOK bool
				for si, s := range schemes {
					tr, ok := s.Translate(lpa)
					if ok != mapped {
						t.Fatalf("scheme %d: Translate(%d) ok=%v, mapped=%v", si, lpa, ok, mapped)
					}
					if ok {
						if !tr.Approx && tr.PPA != want {
							t.Fatalf("scheme %d: exact answer %d for LPA %d, want %d", si, tr.PPA, lpa, want)
						}
						d := int64(tr.PPA) - int64(want)
						if d < -gamma || d > gamma {
							t.Fatalf("scheme %d: LPA %d predicted %d, want %d (outside ±%d)", si, lpa, tr.PPA, want, gamma)
						}
						// The device's feedback, modeled: hint-resolved when
						// the armed hint aims the first read at the true page.
						hintRes := tr.PPA != want && tr.Hint != 0 &&
							addr.PPA(int64(tr.PPA)+int64(tr.Hint)) == want
						s.NoteRead(lpa, tr.PPA, want, tr.Approx, hintRes)
					}
					if si > 0 && (ok != prevOK || tr.PPA != prev.PPA || tr.Approx != prev.Approx || tr.Hint != prev.Hint) {
						t.Fatalf("sharded diverged from plain at LPA %d: %+v/%v vs %+v/%v",
							lpa, tr, ok, prev, prevOK)
					}
					prev, prevOK = tr, ok
				}
			}

			maintain := func() {
				for si, s := range schemes {
					s.Maintain(writes)
					if err := s.CheckMapping(); err != nil {
						t.Fatalf("scheme %d: %v", si, err)
					}
					if mg := s.MaxGroupGamma(); mg > gamma {
						t.Fatalf("scheme %d: per-group gamma %d exceeds global %d", si, mg, gamma)
					}
				}
				a, b := tunes(schemes[0]), tunes(schemes[1])
				if len(a) != len(b) {
					t.Fatalf("tune counts diverged: %d vs %d", len(a), len(b))
				}
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("tune state diverged: %+v vs %+v", a[i], b[i])
					}
				}
			}

			budgeted := false
			for round := 0; round < 60; round++ {
				// Irregular write bursts create approximate segments.
				lpas := make([]addr.LPA, 0, 64)
				base := rng.Intn(logical - 512)
				l := addr.LPA(base)
				for len(lpas) < 64 {
					l += addr.LPA(1 + rng.Intn(3))
					lpas = append(lpas, l)
				}
				commit(lpas)
				// Skewed reads hammer a hot range so misses repeat.
				hot := addr.LPA(rng.Intn(logical / 2))
				for i := 0; i < 120; i++ {
					off := addr.LPA(rng.Intn(256))
					if rng.Float64() < 0.3 {
						off = addr.LPA(rng.Intn(logical))
					}
					read((hot + off) % addr.LPA(logical))
				}
				if round%7 == 3 {
					maintain()
				}
				if !budgeted && round == 20 {
					// Clamp both flavors identically mid-run: evictions and
					// demand loads now interleave with feedback and repairs.
					budget := schemes[0].MemoryBytes()/2 + 1
					for _, s := range schemes {
						s.SetBudget(budget)
					}
					budgeted = true
				}
				if budgeted {
					budget := schemes[0].MemoryBytes()
					_ = budget
					for si, s := range schemes {
						if err := s.CheckMapping(); err != nil {
							t.Fatalf("scheme %d after round %d: %v", si, round, err)
						}
					}
				}
			}
			maintain()
		})
	}
}

// sortMappings sorts a batch by LPA (the scheme contract).
func sortMappings(pairs []addr.Mapping) {
	for i := 1; i < len(pairs); i++ {
		for j := i; j > 0 && pairs[j].LPA < pairs[j-1].LPA; j-- {
			pairs[j], pairs[j-1] = pairs[j-1], pairs[j]
		}
	}
}

// TestAutotuneGammaSurvivesEviction pins the budgeted γ round trip at
// the scheme level: γs tuned by Maintain survive page-out and demand
// reload bit-identically.
func TestAutotuneGammaSurvivesEviction(t *testing.T) {
	s := New(8, 512, WithAutoTune(0.02), WithCompactEvery(1))
	var ppa addr.PPA
	var writes uint64
	commit := func(group int, step int) []addr.Mapping {
		pairs := make([]addr.Mapping, 0, 48)
		l := addr.LPA(group * 256)
		for len(pairs) < 48 {
			l += addr.LPA(1 + (len(pairs)+step)%3)
			pairs = append(pairs, addr.Mapping{LPA: l, PPA: ppa})
			ppa++
		}
		writes += uint64(len(pairs))
		s.Commit(pairs)
		return pairs
	}
	var all []addr.Mapping
	for g := 0; g < 8; g++ {
		all = append(all, commit(g, g)...)
	}
	// Miss-heavy feedback on half the groups, then retune.
	for _, m := range all[:len(all)/2] {
		s.NoteRead(m.LPA, m.PPA, m.PPA+3, true, false)
		s.NoteRead(m.LPA, m.PPA, m.PPA+3, true, false)
	}
	s.Maintain(writes)
	want := map[addr.GroupID]int{}
	for _, gt := range s.Table().GroupTunes() {
		want[gt.Group] = gt.Gamma
	}
	demoted := 0
	for _, g := range want {
		if g < 8 {
			demoted++
		}
	}
	if demoted == 0 {
		t.Fatal("controller demoted nothing; test is vacuous")
	}

	// Harsh budget: most groups page out.
	s.SetBudget(s.MemoryBytes()/4 + 1)
	if err := s.CheckMapping(); err != nil {
		t.Fatal(err)
	}
	// Touch every group to fault it back in and compare γ.
	for _, m := range all {
		if _, ok := s.Translate(m.LPA); !ok {
			t.Fatalf("mapping for %d lost under budget", m.LPA)
		}
	}
	for _, gt := range s.Table().GroupTunes() {
		if w, ok := want[gt.Group]; ok && gt.Gamma != w {
			t.Fatalf("group %d gamma %d after page-out cycle, want %d", gt.Group, gt.Gamma, w)
		}
	}
}

// TestAutotuneConcurrentTranslate exercises the sharded scheme's
// concurrent read path while the serialized mutation path (commits,
// feedback with repairs, maintenance with retunes) runs — the race
// detector guards the shard/pager locking.
func TestAutotuneConcurrentTranslate(t *testing.T) {
	s := NewSharded(8, 4096, 8, WithAutoTune(0.02), WithCompactEvery(256))
	const logical = 16 * 256
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				s.Translate(addr.LPA(rng.Intn(logical)))
			}
		}(int64(w))
	}

	rng := rand.New(rand.NewSource(99))
	var ppa addr.PPA
	var writes uint64
	for round := 0; round < 200; round++ {
		pairs := make([]addr.Mapping, 0, 32)
		l := addr.LPA(rng.Intn(logical - 256))
		for len(pairs) < 32 {
			l += addr.LPA(1 + rng.Intn(3))
			if int(l) >= logical {
				break
			}
			pairs = append(pairs, addr.Mapping{LPA: l, PPA: ppa})
			ppa++
		}
		if len(pairs) == 0 {
			continue
		}
		writes += uint64(len(pairs))
		s.Commit(pairs)
		for _, m := range pairs[:4] {
			if tr, ok := s.Translate(m.LPA); ok && tr.Approx {
				s.NoteRead(m.LPA, tr.PPA, m.PPA, true, false)
			}
		}
		s.Maintain(writes)
		if round == 100 {
			s.SetBudget(s.MemoryBytes()/2 + 1)
		}
	}
	stop.Store(true)
	wg.Wait()
	if err := s.CheckMapping(); err != nil {
		t.Fatal(err)
	}
	if mg := s.MaxGroupGamma(); mg > 8 {
		t.Fatalf("per-group gamma %d exceeds global 8", mg)
	}
}
