package workload

import (
	"math"
	"testing"
	"time"

	"leaftl/internal/trace"
)

func TestArrivalModelStamp(t *testing.T) {
	reqs := make([]trace.Request, 20_000)
	m := ArrivalModel{IOPS: 100_000}
	m.Stamp(reqs, 1)

	prev := time.Duration(-1)
	for i, r := range reqs {
		if r.Arrival < prev {
			t.Fatalf("request %d: arrival %v went backward", i, r.Arrival)
		}
		prev = r.Arrival
	}
	// 20k requests at 100k IOPS ≈ 200ms span (Poisson, so loose bounds).
	span := trace.Span(reqs)
	if span < 150*time.Millisecond || span > 250*time.Millisecond {
		t.Errorf("span %v, want ≈200ms", span)
	}

	// Same seed → same stamps; different seed → different stamps.
	again := make([]trace.Request, len(reqs))
	m.Stamp(again, 1)
	if again[100].Arrival != reqs[100].Arrival {
		t.Error("Stamp is not deterministic")
	}
	m.Stamp(again, 2)
	if again[100].Arrival == reqs[100].Arrival {
		t.Error("Stamp ignores the seed")
	}
}

func TestArrivalModelBurstPreservesMeanRate(t *testing.T) {
	reqs := make([]trace.Request, 50_000)
	ArrivalModel{IOPS: 100_000, BurstFactor: 8}.Stamp(reqs, 1)
	span := trace.Span(reqs)
	if span < 350*time.Millisecond || span > 650*time.Millisecond {
		t.Errorf("bursty span %v, want ≈500ms", span)
	}
	// Burstiness should show up as a heavier inter-arrival tail than the
	// steady process: the max gap must far exceed the 10µs mean.
	var maxGap time.Duration
	for i := 1; i < len(reqs); i++ {
		if g := reqs[i].Arrival - reqs[i-1].Arrival; g > maxGap {
			maxGap = g
		}
	}
	if maxGap < 50*time.Microsecond {
		t.Errorf("max inter-arrival gap %v too uniform for a bursty process", maxGap)
	}
}

func TestZipfianGenerate(t *testing.T) {
	z := TimedCatalog()["zipf-hot"].(ZipfianProfile)
	const pages, n = 1 << 16, 10_000
	reqs := z.Generate(pages, n, 1)
	if len(reqs) != n {
		t.Fatalf("generated %d requests, want %d", len(reqs), n)
	}
	footprint := clampFootprint(pages, z.FootprintFrac)
	hotHits := 0
	for i, r := range reqs {
		if int(r.LPA)+r.Pages > footprint {
			t.Fatalf("request %d (%s) outside the %d-page footprint", i, r, footprint)
		}
		if r.Pages < z.MinPages || r.Pages > z.MaxPages {
			t.Fatalf("request %d: %d pages outside [%d,%d]", i, r.Pages, z.MinPages, z.MaxPages)
		}
		if int(r.LPA) < footprint/100 {
			hotHits++
		}
	}
	// Zipf skew: the hottest 1% of the footprint should absorb well over
	// half the accesses.
	if hotHits < n/2 {
		t.Errorf("only %d/%d requests hit the hot 1%%; not Zipfian", hotHits, n)
	}
	if !trace.Timed(reqs) {
		t.Error("zipf-hot trace is untimed")
	}
}

func TestMixedGenerate(t *testing.T) {
	m := TimedCatalog()["mixed-rw"].(MixedProfile)
	const pages, n = 1 << 16, 10_000
	reqs := m.Generate(pages, n, 1)
	if len(reqs) != n {
		t.Fatalf("generated %d requests, want %d", len(reqs), n)
	}
	reads, writes, seqReads := 0, 0, 0
	var prevEnd int
	for _, r := range reqs {
		if r.Op == trace.OpRead {
			reads++
			if int(r.LPA) == prevEnd {
				seqReads++
			}
			prevEnd = int(r.LPA) + r.Pages
		} else {
			writes++
		}
	}
	if reads == 0 || writes == 0 {
		t.Fatalf("reads=%d writes=%d; want a mix", reads, writes)
	}
	// Scans are sequential: most reads continue the previous read.
	if seqReads < reads/2 {
		t.Errorf("%d/%d reads sequential; scans are not scanning", seqReads, reads)
	}
	if !trace.Timed(reqs) {
		t.Error("mixed-rw trace is untimed")
	}
}

func TestGeneratorValidation(t *testing.T) {
	bad := []error{
		ZipfianProfile{Name: "z", S: 0.5, ReadFrac: 0.5, MinPages: 1, MaxPages: 4, FootprintFrac: 0.5}.Validate(),
		ZipfianProfile{Name: "z", S: 1.2, ReadFrac: 1.5, MinPages: 1, MaxPages: 4, FootprintFrac: 0.5}.Validate(),
		ZipfianProfile{Name: "z", S: 1.2, ReadFrac: 0.5, MinPages: 4, MaxPages: 1, FootprintFrac: 0.5}.Validate(),
		MixedProfile{Name: "m", ScanReqs: 0, UpdateReqs: 1, ScanPages: 1, UpdateMaxPages: 1, HotFrac: 0.5, HotSpace: 0.1, FootprintFrac: 0.5}.Validate(),
		MixedProfile{Name: "m", ScanReqs: 1, UpdateReqs: 1, ScanPages: 1, UpdateMaxPages: 1, HotFrac: 0.5, HotSpace: 0.1, FootprintFrac: 2}.Validate(),
	}
	for i, err := range bad {
		if err == nil {
			t.Errorf("case %d: invalid profile accepted", i)
		}
	}
}

// TestZipfianValidateRejectsBadExponents is the regression for the
// rand.NewZipf crash: S ≤ 1 makes NewZipf return nil (panic on first
// draw), and a NaN S sails past a plain "S <= 1" comparison into NaN
// arithmetic. Validate must reject every such exponent up front.
func TestZipfianValidateRejectsBadExponents(t *testing.T) {
	base := ZipfianProfile{
		Name: "bad-zipf", ReadFrac: 0.5, MinPages: 1, MaxPages: 4, FootprintFrac: 0.5,
	}
	for _, s := range []float64{1, 0.5, 0, -2, math.NaN(), math.Inf(1)} {
		p := base
		p.S = s
		if err := p.Validate(); err == nil {
			t.Errorf("S=%v accepted", s)
		}
		// Generate must fail loudly through Validate, not via a nil
		// dereference inside the Zipf sampler.
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Errorf("S=%v: Generate did not fail", s)
					return
				}
				if _, ok := r.(error); !ok {
					t.Errorf("S=%v: Generate panicked with %T (%v), want the Validate error", s, r, r)
				}
			}()
			p.Generate(4096, 8, 1)
		}()
	}
	good := base
	good.S = 1.2
	if err := good.Validate(); err != nil {
		t.Fatalf("S=1.2 rejected: %v", err)
	}
	if got := len(good.Generate(4096, 64, 1)); got != 64 {
		t.Errorf("generated %d requests, want 64", got)
	}
}

// TestTimedProfileStampsArrivals checks the Profile→Generator adapter:
// same requests as the underlying profile, now with monotone arrivals.
func TestTimedProfileStampsArrivals(t *testing.T) {
	p, ok := ByName("MSR-prxy")
	if !ok {
		t.Fatal("MSR-prxy missing")
	}
	tp := TimedProfile{Profile: p, Arrivals: ArrivalModel{IOPS: 10_000}}
	reqs := tp.Generate(1<<16, 500, 7)
	if len(reqs) != 500 {
		t.Fatalf("generated %d requests", len(reqs))
	}
	last := time.Duration(-1)
	stamped := false
	for _, r := range reqs {
		if r.Arrival < last {
			t.Fatal("arrivals not monotone")
		}
		if r.Arrival > 0 {
			stamped = true
		}
		last = r.Arrival
	}
	if !stamped {
		t.Error("no arrival timestamps assigned")
	}
	plain := p.Generate(1<<16, 500, 7)
	for i := range reqs {
		if reqs[i].Op != plain[i].Op || reqs[i].LPA != plain[i].LPA || reqs[i].Pages != plain[i].Pages {
			t.Fatalf("request %d diverged from the untimed profile", i)
		}
	}
}
