package workload

import (
	"testing"

	"leaftl/internal/trace"
)

const testLogical = 1 << 20 // 1M pages

func TestCatalogsValidate(t *testing.T) {
	for _, p := range append(Catalog(), AppCatalog()...) {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
	if len(Catalog()) != 7 {
		t.Errorf("trace catalog has %d workloads, want 7 (5 MSR + 2 FIU)", len(Catalog()))
	}
	if len(AppCatalog()) != 5 {
		t.Errorf("app catalog has %d workloads, want 5 (Table 2)", len(AppCatalog()))
	}
}

func TestByName(t *testing.T) {
	if p, ok := ByName("MSR-hm"); !ok || p.Name != "MSR-hm" {
		t.Errorf("ByName(MSR-hm) = %v, %v", p, ok)
	}
	if p, ok := ByName("TPCC"); !ok || p.Class != "app" {
		t.Errorf("ByName(TPCC) = %v, %v", p, ok)
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName(nope) succeeded")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p, _ := ByName("MSR-hm")
	a := p.Generate(testLogical, 5000, 42)
	b := p.Generate(testLogical, 5000, 42)
	if len(a) != 5000 || len(b) != 5000 {
		t.Fatalf("lengths %d/%d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	c := p.Generate(testLogical, 5000, 43)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical traces")
	}
}

func TestGenerateStaysInFootprint(t *testing.T) {
	for _, p := range append(Catalog(), AppCatalog()...) {
		reqs := p.Generate(testLogical, 20000, 1)
		limit := p.Footprint(testLogical)
		for _, r := range reqs {
			if int(r.LPA)+r.Pages > limit {
				t.Fatalf("%s: request %v exceeds footprint %d", p.Name, r, limit)
			}
		}
	}
}

func TestGenerateMixMatchesProfile(t *testing.T) {
	for _, p := range Catalog() {
		reqs := p.Generate(testLogical, 50000, 7)
		reads := 0
		for _, r := range reqs {
			if r.Op == trace.OpRead {
				reads++
			}
		}
		frac := float64(reads) / float64(len(reqs))
		// Strided bursts share one op choice, so allow a loose tolerance.
		if frac < p.ReadFrac-0.12 || frac > p.ReadFrac+0.12 {
			t.Errorf("%s: read fraction %.3f, profile %.3f", p.Name, frac, p.ReadFrac)
		}
	}
}

func TestSequentialWorkloadHasRuns(t *testing.T) {
	p, _ := ByName("MSR-usr") // SeqFrac 0.6
	reqs := p.Generate(testLogical, 10000, 3)
	// Count adjacent requests that continue exactly where the previous
	// one ended (sequential stream behaviour).
	count := 0
	for i := 1; i < len(reqs); i++ {
		if int(reqs[i].LPA) == int(reqs[i-1].LPA)+reqs[i-1].Pages {
			count++
		}
	}
	if count < len(reqs)/10 {
		t.Errorf("MSR-usr: only %d/%d sequential continuations", count, len(reqs))
	}
}

func TestHotSkew(t *testing.T) {
	p, _ := ByName("FIU-mail") // HotFrac 0.9, HotSpace 0.05
	reqs := p.Generate(testLogical, 30000, 9)
	hotLimit := int(float64(p.Footprint(testLogical)) * p.HotSpace)
	inHot := 0
	for _, r := range reqs {
		if int(r.LPA) < hotLimit {
			inHot++
		}
	}
	if frac := float64(inHot) / float64(len(reqs)); frac < 0.5 {
		t.Errorf("FIU-mail: hot fraction %.3f, expected strong skew", frac)
	}
}

func TestFootprintBounds(t *testing.T) {
	p, _ := ByName("MSR-hm")
	if f := p.Footprint(100); f != 100 {
		t.Errorf("tiny device footprint = %d, want clamped to 100", f)
	}
	want := int(p.FootprintFrac * float64(testLogical))
	if f := p.Footprint(testLogical); f != want {
		t.Errorf("footprint = %d, want %d", f, want)
	}
}
