// Package workload generates block I/O traces that stand in for the
// paper's evaluation workloads: five MSR Cambridge server traces, two FIU
// traces (§4.1, Figure 15 ff.), and the five application workloads run on
// the real-SSD prototype (Table 2).
//
// The real traces are not redistributable, so each Profile encodes the
// structural properties LeaFTL's learning responds to — read/write mix,
// sequential-run fraction and length, strided access fraction, request
// sizes, footprint, and hot-spot skew — with values chosen to match the
// published characterizations of each trace. DESIGN.md §2 records this
// substitution; absolute numbers shift, but the relative behaviours
// (which workloads learn long segments, which degrade to single points)
// are preserved.
package workload

import (
	"fmt"
	"math/rand"

	"leaftl/internal/addr"
	"leaftl/internal/trace"
)

// Profile parameterizes one synthetic workload.
type Profile struct {
	// Name identifies the workload in reports ("MSR-hm", "TPCC", ...).
	Name string
	// Class is "trace" for MSR/FIU block traces (simulator runs) or
	// "app" for the prototype's application workloads.
	Class string

	// ReadFrac is the fraction of requests that are reads.
	ReadFrac float64

	// SeqFrac of requests continue a sequential stream; StrideFrac are
	// strided bursts; the remainder are random point accesses.
	SeqFrac    float64
	StrideFrac float64
	// Stride is the LPA step of strided bursts (pages).
	Stride int
	// StrideBurst is how many accesses one strided burst issues.
	StrideBurst int

	// MinPages/MaxPages bound request sizes (pages).
	MinPages, MaxPages int

	// HotFrac of random accesses fall into the first HotSpace fraction
	// of the footprint (skew).
	HotFrac, HotSpace float64

	// FootprintFrac is the touched fraction of the device's logical
	// space.
	FootprintFrac float64
}

// Validate reports malformed profiles.
func (p Profile) Validate() error {
	switch {
	case p.ReadFrac < 0 || p.ReadFrac > 1:
		return fmt.Errorf("workload %s: ReadFrac %v", p.Name, p.ReadFrac)
	case p.SeqFrac < 0 || p.StrideFrac < 0 || p.SeqFrac+p.StrideFrac > 1:
		return fmt.Errorf("workload %s: pattern fractions %v+%v", p.Name, p.SeqFrac, p.StrideFrac)
	case p.MinPages < 1 || p.MaxPages < p.MinPages:
		return fmt.Errorf("workload %s: request size [%d,%d]", p.Name, p.MinPages, p.MaxPages)
	case p.FootprintFrac <= 0 || p.FootprintFrac > 1:
		return fmt.Errorf("workload %s: FootprintFrac %v", p.Name, p.FootprintFrac)
	}
	return nil
}

// Catalog returns the trace-style workloads of the simulator evaluation
// (§4.1). Parameter choices follow the published characterizations:
// prxy/prn/hm are write-dominant with small requests; usr and src2 read
// more with longer sequential runs; the FIU traces are write-heavy with
// strong locality.
func Catalog() []Profile {
	return []Profile{
		{Name: "MSR-hm", Class: "trace", ReadFrac: 0.35, SeqFrac: 0.25, StrideFrac: 0.30,
			Stride: 4, StrideBurst: 24, MinPages: 1, MaxPages: 8, HotFrac: 0.7, HotSpace: 0.15, FootprintFrac: 0.45},
		{Name: "MSR-src2", Class: "trace", ReadFrac: 0.25, SeqFrac: 0.45, StrideFrac: 0.20,
			Stride: 2, StrideBurst: 24, MinPages: 1, MaxPages: 16, HotFrac: 0.6, HotSpace: 0.1, FootprintFrac: 0.4},
		{Name: "MSR-prxy", Class: "trace", ReadFrac: 0.05, SeqFrac: 0.10, StrideFrac: 0.45,
			Stride: 3, StrideBurst: 32, MinPages: 1, MaxPages: 4, HotFrac: 0.85, HotSpace: 0.08, FootprintFrac: 0.3},
		{Name: "MSR-prn", Class: "trace", ReadFrac: 0.11, SeqFrac: 0.55, StrideFrac: 0.15,
			Stride: 2, StrideBurst: 16, MinPages: 2, MaxPages: 32, HotFrac: 0.5, HotSpace: 0.2, FootprintFrac: 0.55},
		{Name: "MSR-usr", Class: "trace", ReadFrac: 0.60, SeqFrac: 0.60, StrideFrac: 0.10,
			Stride: 2, StrideBurst: 16, MinPages: 2, MaxPages: 32, HotFrac: 0.5, HotSpace: 0.25, FootprintFrac: 0.6},
		{Name: "FIU-home", Class: "trace", ReadFrac: 0.01, SeqFrac: 0.30, StrideFrac: 0.35,
			Stride: 2, StrideBurst: 24, MinPages: 1, MaxPages: 8, HotFrac: 0.75, HotSpace: 0.1, FootprintFrac: 0.35},
		{Name: "FIU-mail", Class: "trace", ReadFrac: 0.08, SeqFrac: 0.15, StrideFrac: 0.40,
			Stride: 4, StrideBurst: 24, MinPages: 1, MaxPages: 4, HotFrac: 0.9, HotSpace: 0.05, FootprintFrac: 0.3},
	}
}

// AppCatalog returns the application workloads run on the prototype
// (Table 2): filesystem benchmarks (OLTP, CompFlow) and BenchBase
// databases (TPCC, AuctionMark, SEATS).
func AppCatalog() []Profile {
	return []Profile{
		{Name: "SEATS", Class: "app", ReadFrac: 0.75, SeqFrac: 0.10, StrideFrac: 0.35,
			Stride: 2, StrideBurst: 16, MinPages: 1, MaxPages: 4, HotFrac: 0.8, HotSpace: 0.1, FootprintFrac: 0.4},
		{Name: "AMark", Class: "app", ReadFrac: 0.55, SeqFrac: 0.15, StrideFrac: 0.35,
			Stride: 3, StrideBurst: 16, MinPages: 1, MaxPages: 4, HotFrac: 0.85, HotSpace: 0.08, FootprintFrac: 0.4},
		{Name: "TPCC", Class: "app", ReadFrac: 0.35, SeqFrac: 0.30, StrideFrac: 0.25,
			Stride: 2, StrideBurst: 16, MinPages: 1, MaxPages: 8, HotFrac: 0.8, HotSpace: 0.12, FootprintFrac: 0.5},
		{Name: "OLTP", Class: "app", ReadFrac: 0.50, SeqFrac: 0.20, StrideFrac: 0.25,
			Stride: 2, StrideBurst: 16, MinPages: 1, MaxPages: 8, HotFrac: 0.7, HotSpace: 0.15, FootprintFrac: 0.45},
		{Name: "CompF", Class: "app", ReadFrac: 0.45, SeqFrac: 0.75, StrideFrac: 0.05,
			Stride: 2, StrideBurst: 8, MinPages: 4, MaxPages: 64, HotFrac: 0.4, HotSpace: 0.3, FootprintFrac: 0.6},
	}
}

// ByName finds a profile in either catalog.
func ByName(name string) (Profile, bool) {
	for _, p := range append(Catalog(), AppCatalog()...) {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// Generate produces n requests over a device with the given logical page
// count, deterministically from seed.
func (p Profile) Generate(logicalPages, n int, seed int64) []trace.Request {
	if err := p.Validate(); err != nil {
		panic(err) // profiles are compile-time constants; fail loudly
	}
	rng := rand.New(rand.NewSource(seed))
	footprint := int(float64(logicalPages) * p.FootprintFrac)
	if footprint < 256 {
		footprint = 256
	}
	if footprint > logicalPages {
		footprint = logicalPages
	}
	hot := int(float64(footprint) * p.HotSpace)
	if hot < 1 {
		hot = 1
	}

	reqs := make([]trace.Request, 0, n)
	seqCursor := rng.Intn(footprint)

	randLPA := func() int {
		if rng.Float64() < p.HotFrac {
			return rng.Intn(hot)
		}
		return hot + rng.Intn(footprint-hot)
	}
	size := func() int {
		return p.MinPages + rng.Intn(p.MaxPages-p.MinPages+1)
	}
	op := func() trace.Op {
		if rng.Float64() < p.ReadFrac {
			return trace.OpRead
		}
		return trace.OpWrite
	}

	for len(reqs) < n {
		r := rng.Float64()
		switch {
		case r < p.SeqFrac:
			// Continue (or restart) a sequential stream.
			sz := size()
			if seqCursor+sz >= footprint || rng.Float64() < 0.02 {
				seqCursor = randLPA()
			}
			if seqCursor+sz >= footprint {
				seqCursor = 0
			}
			reqs = append(reqs, trace.Request{Op: op(), LPA: addr.LPA(seqCursor), Pages: sz})
			seqCursor += sz
		case r < p.SeqFrac+p.StrideFrac:
			// Strided burst: fixed stride, single-page accesses.
			base := randLPA()
			o := op()
			for i := 0; i < p.StrideBurst && len(reqs) < n; i++ {
				l := base + i*p.Stride
				if l >= footprint {
					break
				}
				reqs = append(reqs, trace.Request{Op: o, LPA: addr.LPA(l), Pages: 1})
			}
		default:
			// Random point access with hot-spot skew.
			sz := size()
			l := randLPA()
			if l+sz > footprint {
				l = footprint - sz
			}
			reqs = append(reqs, trace.Request{Op: op(), LPA: addr.LPA(l), Pages: sz})
		}
	}
	return reqs[:n]
}

// Footprint returns the number of distinct pages the profile touches on
// a device with the given logical capacity.
func (p Profile) Footprint(logicalPages int) int {
	f := int(float64(logicalPages) * p.FootprintFrac)
	if f < 256 {
		f = 256
	}
	if f > logicalPages {
		f = logicalPages
	}
	return f
}
