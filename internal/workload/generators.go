package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"leaftl/internal/addr"
	"leaftl/internal/trace"
)

// ArrivalModel assigns arrival timestamps to a generated trace,
// turning a request sequence into an open-loop workload. Arrivals are
// Poisson at a mean rate of IOPS; BurstFactor > 1 makes the process
// bursty (an on/off modulated Poisson: bursts arrive BurstFactor times
// faster, idle stretches slower, preserving the overall mean rate).
type ArrivalModel struct {
	// IOPS is the mean arrival rate in requests per second (default
	// 50_000, a mid-range datacenter SSD load).
	IOPS float64
	// BurstFactor is the ratio of the in-burst arrival rate to the mean
	// (values ≤ 1 select a steady Poisson process).
	BurstFactor float64
	// BurstFrac is the fraction of requests issued inside bursts
	// (default 0.5 when BurstFactor > 1).
	BurstFrac float64
	// BurstLen is the number of consecutive requests per burst
	// (default 64).
	BurstLen int
}

func (m ArrivalModel) withDefaults() ArrivalModel {
	if m.IOPS <= 0 {
		m.IOPS = 50_000
	}
	if m.BurstFrac <= 0 || m.BurstFrac >= 1 {
		m.BurstFrac = 0.5
	}
	if m.BurstLen <= 0 {
		m.BurstLen = 64
	}
	return m
}

// Stamp assigns arrival timestamps to reqs in place, deterministically
// from seed.
func (m ArrivalModel) Stamp(reqs []trace.Request, seed int64) {
	m = m.withDefaults()
	rng := rand.New(rand.NewSource(seed))

	burstRate := m.IOPS
	idleRate := m.IOPS
	if m.BurstFactor > 1 {
		burstRate = m.IOPS * m.BurstFactor
		// Solve the off-phase rate so the blended mean stays at IOPS:
		// BurstFrac of requests at burstRate, the rest at idleRate.
		idleRate = m.IOPS * (1 - m.BurstFrac) / (1 - m.BurstFrac/m.BurstFactor)
	}

	var now float64 // seconds
	inBurst := false
	left := 0
	for i := range reqs {
		if left == 0 {
			// Every phase is BurstLen requests, so the in-burst request
			// fraction converges to the phase-choice probability.
			inBurst = m.BurstFactor > 1 && rng.Float64() < m.BurstFrac
			left = m.BurstLen
		}
		rate := idleRate
		if inBurst {
			rate = burstRate
		}
		now += rng.ExpFloat64() / rate
		reqs[i].Arrival = time.Duration(now * float64(time.Second))
		left--
	}
}

// ZipfianProfile generates a Zipfian-hotspot workload: request
// popularity follows a Zipf(S) law over the footprint, concentrating
// traffic on a small set of hot pages — the cache-friendly,
// learning-hostile skew pattern key-value stores exhibit (LFTL §V and
// the LearnedFTL evaluation both lean on it).
type ZipfianProfile struct {
	// Name identifies the workload in reports.
	Name string
	// S is the Zipf exponent (> 1; larger = more skewed; default 1.2).
	S float64
	// ReadFrac is the fraction of requests that are reads.
	ReadFrac float64
	// MinPages/MaxPages bound request sizes (pages).
	MinPages, MaxPages int
	// FootprintFrac is the touched fraction of the logical space.
	FootprintFrac float64
	// Arrivals controls timestamp assignment.
	Arrivals ArrivalModel
}

// Validate reports malformed profiles.
func (z ZipfianProfile) Validate() error {
	switch {
	// rand.NewZipf returns nil for S ≤ 1, and its internal math degrades
	// to NaN for a NaN exponent (which sails past a plain "S <= 1" test),
	// so the generator would crash — or spin — on its first draw.
	// Negated comparison so NaN is rejected too.
	case !(z.S > 1) || math.IsInf(z.S, 1):
		return fmt.Errorf("workload %s: Zipf exponent %v must be a finite number > 1", z.Name, z.S)
	case z.ReadFrac < 0 || z.ReadFrac > 1:
		return fmt.Errorf("workload %s: ReadFrac %v", z.Name, z.ReadFrac)
	case z.MinPages < 1 || z.MaxPages < z.MinPages:
		return fmt.Errorf("workload %s: request size [%d,%d]", z.Name, z.MinPages, z.MaxPages)
	case z.FootprintFrac <= 0 || z.FootprintFrac > 1:
		return fmt.Errorf("workload %s: FootprintFrac %v", z.Name, z.FootprintFrac)
	}
	return nil
}

// Generate produces n timestamped requests over a device with the given
// logical page count, deterministically from seed.
func (z ZipfianProfile) Generate(logicalPages, n int, seed int64) []trace.Request {
	if err := z.Validate(); err != nil {
		panic(err) // profiles are compile-time constants; fail loudly
	}
	rng := rand.New(rand.NewSource(seed))
	footprint := clampFootprint(logicalPages, z.FootprintFrac)
	zipf := rand.NewZipf(rng, z.S, 1, uint64(footprint-1))
	if zipf == nil {
		// Unreachable after Validate; a clear failure beats the nil
		// dereference rand would produce on the first draw.
		panic(fmt.Sprintf("workload %s: rand.NewZipf rejected S=%v", z.Name, z.S))
	}

	reqs := make([]trace.Request, 0, n)
	for len(reqs) < n {
		op := trace.OpWrite
		if rng.Float64() < z.ReadFrac {
			op = trace.OpRead
		}
		sz := z.MinPages + rng.Intn(z.MaxPages-z.MinPages+1)
		if sz > footprint {
			sz = footprint
		}
		// Rank 0 is the hottest page; the hotspot occupies the low end
		// of the footprint.
		l := int(zipf.Uint64())
		if l+sz > footprint {
			l = footprint - sz
		}
		reqs = append(reqs, trace.Request{Op: op, LPA: addr.LPA(l), Pages: sz})
	}
	z.Arrivals.Stamp(reqs, seed)
	return reqs
}

// MixedProfile generates a phase-alternating mixed workload: bulk
// sequential read scans interleaved with bursts of small random
// writes — the analytics-over-ingest pattern that stresses both the
// learned table's long segments (scans) and its log-structured update
// path (point writes).
type MixedProfile struct {
	// Name identifies the workload in reports.
	Name string
	// ScanReqs and UpdateReqs are the lengths (in requests) of the
	// alternating read-scan and random-write phases.
	ScanReqs, UpdateReqs int
	// ScanPages is the request size of scan reads; update writes are
	// 1..UpdateMaxPages pages.
	ScanPages, UpdateMaxPages int
	// HotFrac of update writes fall into the first HotSpace fraction of
	// the footprint.
	HotFrac, HotSpace float64
	// FootprintFrac is the touched fraction of the logical space.
	FootprintFrac float64
	// Arrivals controls timestamp assignment.
	Arrivals ArrivalModel
}

// Validate reports malformed profiles.
func (m MixedProfile) Validate() error {
	switch {
	case m.ScanReqs < 1 || m.UpdateReqs < 1:
		return fmt.Errorf("workload %s: phase lengths %d/%d", m.Name, m.ScanReqs, m.UpdateReqs)
	case m.ScanPages < 1 || m.UpdateMaxPages < 1:
		return fmt.Errorf("workload %s: request sizes %d/%d", m.Name, m.ScanPages, m.UpdateMaxPages)
	case m.HotFrac < 0 || m.HotFrac > 1 || m.HotSpace <= 0 || m.HotSpace > 1:
		return fmt.Errorf("workload %s: hot spot %v/%v", m.Name, m.HotFrac, m.HotSpace)
	case m.FootprintFrac <= 0 || m.FootprintFrac > 1:
		return fmt.Errorf("workload %s: FootprintFrac %v", m.Name, m.FootprintFrac)
	}
	return nil
}

// Generate produces n timestamped requests over a device with the given
// logical page count, deterministically from seed.
func (m MixedProfile) Generate(logicalPages, n int, seed int64) []trace.Request {
	if err := m.Validate(); err != nil {
		panic(err)
	}
	rng := rand.New(rand.NewSource(seed))
	footprint := clampFootprint(logicalPages, m.FootprintFrac)
	hot := int(float64(footprint) * m.HotSpace)
	if hot < 1 {
		hot = 1
	}
	if hot >= footprint {
		// Keep the cold region nonempty (HotSpace may legally be 1).
		hot = footprint - 1
	}

	reqs := make([]trace.Request, 0, n)
	scanCursor := 0
	for len(reqs) < n {
		// Read-scan phase: sequential full-size reads.
		for i := 0; i < m.ScanReqs && len(reqs) < n; i++ {
			if scanCursor+m.ScanPages > footprint {
				scanCursor = 0
			}
			reqs = append(reqs, trace.Request{Op: trace.OpRead, LPA: addr.LPA(scanCursor), Pages: m.ScanPages})
			scanCursor += m.ScanPages
		}
		// Update phase: small skewed random writes.
		for i := 0; i < m.UpdateReqs && len(reqs) < n; i++ {
			l := hot + rng.Intn(footprint-hot)
			if rng.Float64() < m.HotFrac {
				l = rng.Intn(hot)
			}
			sz := 1 + rng.Intn(m.UpdateMaxPages)
			if l+sz > footprint {
				l = footprint - sz
			}
			reqs = append(reqs, trace.Request{Op: trace.OpWrite, LPA: addr.LPA(l), Pages: sz})
		}
	}
	reqs = reqs[:n]
	m.Arrivals.Stamp(reqs, seed)
	return reqs
}

// clampFootprint applies the shared footprint floor/ceiling (at least
// 256 pages, at most the device).
func clampFootprint(logicalPages int, frac float64) int {
	f := int(float64(logicalPages) * frac)
	if f < 256 {
		f = 256
	}
	if f > logicalPages {
		f = logicalPages
	}
	return f
}

// TimedProfile adapts an untimed Profile to the open-loop Generator
// surface by stamping its requests with an arrival process — how the
// strided/sequential trace profiles (Catalog) join the timed workloads
// in open-loop sweeps.
type TimedProfile struct {
	Profile  Profile
	Arrivals ArrivalModel
}

// Generate produces n timestamped requests over a device with the given
// logical page count, deterministically from seed.
func (tp TimedProfile) Generate(logicalPages, n int, seed int64) []trace.Request {
	reqs := tp.Profile.Generate(logicalPages, n, seed)
	tp.Arrivals.Stamp(reqs, seed)
	return reqs
}

// Generator is a workload that can emit a (possibly timestamped)
// request trace; Profile, ZipfianProfile, MixedProfile, and
// TimedProfile all satisfy it.
type Generator interface {
	// Generate produces n requests over a device with the given logical
	// page count, deterministically from seed.
	Generate(logicalPages, n int, seed int64) []trace.Request
}

// TimedCatalog returns the open-loop workload generators: the Zipfian
// hotspot and mixed scan/update profiles, each with a bursty arrival
// process.
func TimedCatalog() map[string]Generator {
	return map[string]Generator{
		"zipf-hot": ZipfianProfile{
			Name: "zipf-hot", S: 1.2, ReadFrac: 0.7, MinPages: 1, MaxPages: 8,
			FootprintFrac: 0.4, Arrivals: ArrivalModel{IOPS: 60_000, BurstFactor: 8},
		},
		"mixed-rw": MixedProfile{
			Name: "mixed-rw", ScanReqs: 48, UpdateReqs: 96, ScanPages: 32, UpdateMaxPages: 4,
			HotFrac: 0.8, HotSpace: 0.1, FootprintFrac: 0.5,
			Arrivals: ArrivalModel{IOPS: 40_000, BurstFactor: 4},
		},
	}
}
