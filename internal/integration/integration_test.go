// Package integration holds cross-module end-to-end tests: workload
// generation → trace serialization → replay on devices running every
// translation scheme, checking the global invariants the paper's design
// rests on.
package integration

import (
	"bytes"
	"testing"
	"time"

	"leaftl/internal/addr"
	"leaftl/internal/dftl"
	"leaftl/internal/ftl"
	"leaftl/internal/leaftl"
	"leaftl/internal/sftl"
	"leaftl/internal/ssd"
	"leaftl/internal/trace"
	"leaftl/internal/workload"
)

func smallConfig() ssd.Config {
	cfg := ssd.SimulatorConfig()
	cfg.Flash.BlocksPerChan = 16
	cfg.Flash.OOBSize = 256
	cfg.BufferPages = 256
	cfg.DRAMBytes = cfg.BufferBytes() + 64<<10
	return cfg
}

// TestEndToEndAllSchemesAllWorkloads pipes every cataloged workload
// through the text trace format and replays it on all three schemes.
// The device self-verifies every read, so completion is correctness.
func TestEndToEndAllSchemesAllWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end sweep")
	}
	for _, p := range append(workload.Catalog(), workload.AppCatalog()...) {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			cfg := smallConfig()
			reqs := p.Generate(cfg.LogicalPages(), 6000, 42)

			// Round-trip through the on-disk trace format.
			var buf bytes.Buffer
			if err := trace.Write(&buf, reqs); err != nil {
				t.Fatal(err)
			}
			parsed, err := trace.Parse(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if len(parsed) != len(reqs) {
				t.Fatalf("trace round trip lost requests: %d vs %d", len(parsed), len(reqs))
			}

			for _, mk := range []func() ftl.Scheme{
				func() ftl.Scheme { return leaftl.New(0, cfg.Flash.PageSize) },
				func() ftl.Scheme { return leaftl.New(8, cfg.Flash.PageSize) },
				func() ftl.Scheme { return dftl.New(cfg.Flash.PageSize, 0) },
				func() ftl.Scheme { return sftl.New(cfg.Flash.PageSize, 0) },
			} {
				scheme := mk()
				dev, err := ssd.New(cfg, scheme)
				if err != nil {
					t.Fatal(err)
				}
				fp := p.Footprint(dev.LogicalPages())
				for lpa := 0; lpa+64 <= fp; lpa += 64 {
					if _, err := dev.Write(addr.LPA(lpa), 64); err != nil {
						t.Fatal(err)
					}
				}
				if err := trace.Replay(dev, parsed); err != nil {
					t.Fatalf("%s: %v", scheme.Name(), err)
				}
				if err := dev.Flush(); err != nil {
					t.Fatal(err)
				}
				if dev.Stats().HostPagesRead == 0 && p.ReadFrac > 0.05 {
					t.Errorf("%s: no reads recorded", scheme.Name())
				}
			}
		})
	}
}

// TestSchemesAgreeOnTranslations replays one workload and then asks all
// schemes to translate the same LPAs: exact schemes must agree with each
// other, and LeaFTL within its gamma.
func TestSchemesAgreeOnTranslations(t *testing.T) {
	cfg := smallConfig()
	p, _ := workload.ByName("MSR-hm")
	reqs := p.Generate(cfg.LogicalPages(), 8000, 7)

	type devScheme struct {
		dev *ssd.Device
		sch ftl.Scheme
	}
	var devs []devScheme
	for _, mk := range []func() ftl.Scheme{
		func() ftl.Scheme { return leaftl.New(4, cfg.Flash.PageSize) },
		func() ftl.Scheme { return dftl.New(cfg.Flash.PageSize, 0) },
		func() ftl.Scheme { return sftl.New(cfg.Flash.PageSize, 0) },
	} {
		sch := mk()
		dev, err := ssd.New(cfg, sch)
		if err != nil {
			t.Fatal(err)
		}
		if err := trace.Replay(dev, reqs); err != nil {
			t.Fatal(err)
		}
		if err := dev.Flush(); err != nil {
			t.Fatal(err)
		}
		devs = append(devs, devScheme{dev, sch})
	}

	// The three devices executed identical request streams, so their
	// logical contents match; their physical layouts are independent but
	// every scheme must hold a mapping for exactly the same LPA set.
	fp := p.Footprint(cfg.LogicalPages())
	for lpa := addr.LPA(0); int(lpa) < fp; lpa += 13 {
		_, ok0 := devs[0].sch.Translate(lpa)
		_, ok1 := devs[1].sch.Translate(lpa)
		_, ok2 := devs[2].sch.Translate(lpa)
		if ok0 != ok1 || ok1 != ok2 {
			t.Fatalf("schemes disagree on whether LPA %d is mapped: %v %v %v", lpa, ok0, ok1, ok2)
		}
	}
}

// TestLatencyMetamorphic checks the latency model's ordering laws on a
// live device: a repeated read (cache hit) is never slower than its first
// (flash) read, and every flash-backed read costs at least ReadLatency.
func TestLatencyMetamorphic(t *testing.T) {
	cfg := smallConfig()
	cfg.DRAMBytes = cfg.BufferBytes() + 8<<20 // roomy cache for hits
	dev, err := ssd.New(cfg, leaftl.New(0, cfg.Flash.PageSize))
	if err != nil {
		t.Fatal(err)
	}
	for lpa := 0; lpa < 4096; lpa += 64 {
		if _, err := dev.Write(addr.LPA(lpa), 64); err != nil {
			t.Fatal(err)
		}
	}
	if err := dev.Flush(); err != nil {
		t.Fatal(err)
	}
	for lpa := addr.LPA(0); lpa < 4096; lpa += 97 {
		first, err := dev.Read(lpa, 1)
		if err != nil {
			t.Fatal(err)
		}
		second, err := dev.Read(lpa, 1)
		if err != nil {
			t.Fatal(err)
		}
		if second > first {
			t.Fatalf("LPA %d: cached re-read %v slower than first read %v", lpa, second, first)
		}
		if first < cfg.Flash.ReadLatency && first > 2*cfg.CacheHitLatency {
			t.Fatalf("LPA %d: flash-backed read %v under ReadLatency %v", lpa, first, cfg.Flash.ReadLatency)
		}
	}
}

// TestGammaSweepMemoryMonotoneOnStrided verifies the core γ trade-off
// end-to-end on a stride-heavy stream: the learned table at γ=16 is no
// larger than at γ=0.
func TestGammaSweepMemoryMonotoneOnStrided(t *testing.T) {
	cfg := smallConfig()
	p, _ := workload.ByName("MSR-prxy")
	reqs := p.Generate(cfg.LogicalPages(), 10000, 3)
	var sizes []int
	for _, gamma := range []int{0, 16} {
		dev, err := ssd.New(cfg, leaftl.New(gamma, cfg.Flash.PageSize))
		if err != nil {
			t.Fatal(err)
		}
		if err := trace.Replay(dev, reqs); err != nil {
			t.Fatal(err)
		}
		if err := dev.Flush(); err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, dev.Scheme().FullSizeBytes())
	}
	if sizes[1] > sizes[0] {
		t.Errorf("gamma=16 table (%dB) larger than gamma=0 (%dB) on strided workload", sizes[1], sizes[0])
	}
}

// TestWriteLatencyBackpressure verifies the flush back-pressure: a burst
// far beyond the flash program bandwidth must surface as write latency
// instead of unbounded queue growth.
func TestWriteLatencyBackpressure(t *testing.T) {
	cfg := smallConfig()
	dev, err := ssd.New(cfg, leaftl.New(0, cfg.Flash.PageSize))
	if err != nil {
		t.Fatal(err)
	}
	var maxLat time.Duration
	for i := 0; i < 40000; i++ {
		lat, err := dev.Write(addr.LPA(i%dev.LogicalPages()), 1)
		if err != nil {
			t.Fatal(err)
		}
		if lat > maxLat {
			maxLat = lat
		}
	}
	if maxLat <= cfg.CacheHitLatency {
		t.Error("sustained overload never stalled a write; back-pressure missing")
	}
}
