package experiments

import (
	"fmt"
	"time"

	"leaftl/internal/addr"
	"leaftl/internal/ftl"
	"leaftl/internal/leaftl"
	"leaftl/internal/metrics"
	"leaftl/internal/ssd"
	"leaftl/internal/trace"
)

// journalStatsOf snapshots a scheme's mapping-delta journal counters,
// reporting whether the journal is actually on.
func journalStatsOf(sch ftl.Scheme) (bool, ftl.JournalStats) {
	if j, ok := sch.(ftl.Journaled); ok && j.JournalEnabled() {
		return true, j.JournalStats()
	}
	return false, ftl.JournalStats{}
}

// OpenLoopSpec parameterizes an open-loop trace replay comparison.
type OpenLoopSpec struct {
	// Queues is the host submission queue count (trace.OpenLoopConfig).
	Queues int
	// Speedup divides recorded inter-arrival times.
	Speedup float64
	// Gamma is LeaFTL's error bound for the run.
	Gamma int
	// Interarrival replaces recorded timestamps with uniform spacing
	// (how untimed traces replay open-loop); zero uses the trace's own
	// arrivals.
	Interarrival time.Duration
	// GCPolicy and GCStreams configure every device's garbage
	// collector (ssd.Config.GCPolicy / GCStreams); zero values keep
	// the greedy single-stream default.
	GCPolicy  string
	GCStreams int
	// AutoTune runs the LeaFTL device with the adaptive per-group γ
	// controller (leaftl.WithAutoTune); GammaTarget is its tolerated
	// miss-per-read ratio (≤ 0 selects the default).
	AutoTune    bool
	GammaTarget float64
	// Workers, when positive, drives each device through a real
	// multi-queue front end (ssd.MultiQueue) with that many worker-backed
	// queue pairs instead of ReplayOpenLoop's simulated queues; Queues is
	// ignored in that case.
	Workers int
	// Journal runs LeaFTL with the mapping-delta journal (no effect on
	// the baselines).
	Journal bool
}

// OpenLoopRun is one scheme's open-loop replay outcome.
type OpenLoopRun struct {
	// Scheme names the translation scheme.
	Scheme string
	// Result holds the latency distributions and makespan.
	Result *trace.OpenLoopResult
	// MapBytes is the scheme's full mapping-structure size afterward;
	// ResidentBytes is the DRAM-resident share.
	MapBytes      int
	ResidentBytes int
	// Stats holds the device counters, including the MetaReads
	// (mapping-miss loads) and MetaWrites (dirty evictions/persistence)
	// that make miss-ratio curves plottable.
	Stats ssd.Stats
	// Journal marks a run with the mapping-delta journal on;
	// JournalStats holds its counters (zero-valued otherwise).
	Journal      bool
	JournalStats ftl.JournalStats
}

// OpenLoopCompare replays one trace open-loop against three identical
// devices — LeaFTL (sharded when Queues > 1, exercising the
// core.ShardedTable path), DFTL, and SFTL — and returns per-scheme
// runs plus a rendered tail-latency table. The trace is folded into
// the device's logical space with trace.FitTo, and each device is
// warmed by sequentially writing the trace's footprint so reads hit
// mapped pages (§4.1's warmup protocol).
func (s *Suite) OpenLoopCompare(reqs []trace.Request, spec OpenLoopSpec) ([]OpenLoopRun, Table, error) {
	if len(reqs) == 0 {
		return nil, Table{}, fmt.Errorf("openloop: empty trace")
	}
	if spec.Speedup <= 0 {
		spec.Speedup = 1
	}
	if spec.Queues < 1 {
		spec.Queues = 1
	}
	cfgName := "sim"
	if spec.Queues > 1 || spec.Workers > 1 {
		cfgName = "sim-sharded"
	}
	// Capacity is identical across the three schemes (configs differ
	// only in sharding), so the trace folds once.
	fitted, err := trace.FitTo(reqs, s.simConfig(cfgName).LogicalPages())
	if err != nil {
		return nil, Table{}, fmt.Errorf("openloop: %w", err)
	}

	var runs []OpenLoopRun
	for _, scheme := range []string{"LeaFTL", "DFTL", "SFTL"} {
		cfg := s.simConfig(cfgName)
		cfg.GCPolicy = spec.GCPolicy
		cfg.GCStreams = spec.GCStreams
		if scheme != "LeaFTL" {
			cfg.Shards = 0 // the baselines have no sharded core
		}
		var opts []leaftl.Option
		if scheme == "LeaFTL" && spec.AutoTune {
			opts = append(opts, leaftl.WithAutoTune(spec.GammaTarget))
		}
		if scheme == "LeaFTL" && spec.Journal {
			opts = append(opts, leaftl.WithJournal())
		}
		sch := s.newScheme(scheme, spec.Gamma, cfg, opts...)
		dev, err := ssd.New(cfg, sch)
		if err != nil {
			return nil, Table{}, fmt.Errorf("openloop %s: %w", scheme, err)
		}
		if err := warmFootprint(dev, fitted); err != nil {
			return nil, Table{}, fmt.Errorf("openloop %s: warmup: %w", scheme, err)
		}
		// With Workers set, requests flow through real queue pairs with
		// per-core workers; otherwise ReplayOpenLoop simulates the queues.
		var replayTarget trace.Device = dev
		if spec.Workers > 0 {
			replayTarget = ssd.NewMultiQueue(dev, ssd.MQConfig{Queues: spec.Workers})
		}
		res, err := trace.ReplayOpenLoop(replayTarget, fitted, trace.OpenLoopConfig{
			Queues: spec.Queues, Speedup: spec.Speedup, Interarrival: spec.Interarrival,
		})
		if err != nil {
			return nil, Table{}, fmt.Errorf("openloop %s: %w", scheme, err)
		}
		run := OpenLoopRun{
			Scheme: sch.Name(), Result: res,
			MapBytes: sch.FullSizeBytes(), ResidentBytes: sch.MemoryBytes(),
			Stats: dev.Stats(),
		}
		run.Journal, run.JournalStats = journalStatsOf(sch)
		runs = append(runs, run)
	}

	queueDesc := fmt.Sprintf("%d queue(s)", spec.Queues)
	if spec.Workers > 0 {
		queueDesc = fmt.Sprintf("%d worker queue pair(s)", spec.Workers)
	}
	t := Table{
		ID: "openloop",
		Title: fmt.Sprintf("open-loop replay: %d requests, %s, %.2gx speed, gamma=%d",
			len(reqs), queueDesc, spec.Speedup, spec.Gamma),
		Header: []string{"scheme", "p50", "p95", "p99", "p999", "mean", "max", "kIOPS", "mapping"},
		Notes:  "latency = queue wait + device service; identical requests and arrivals per scheme",
	}
	for _, r := range runs {
		sum := r.Result.Latency.Summary()
		t.Rows = append(t.Rows, []string{
			r.Scheme, us(sum.P50), us(sum.P95), us(sum.P99), us(sum.P999), us(sum.Mean), us(sum.Peak),
			fmt.Sprintf("%.1f", r.Result.IOPS()/1e3),
			metrics.FormatBytes(int64(r.MapBytes)),
		})
	}
	return runs, t, nil
}

// warmFootprint sequentially writes every page the trace touches so the
// replay's reads find mapped pages, then drains the buffer.
func warmFootprint(dev *ssd.Device, reqs []trace.Request) error {
	maxEnd := 0
	for _, r := range reqs {
		if end := int(r.LPA) + r.Pages; end > maxEnd {
			maxEnd = end
		}
	}
	if err := warmPages(dev, maxEnd); err != nil {
		return err
	}
	return dev.Flush()
}

// warmPages sequentially writes [0, pages) in 64-page requests — the
// §4.1 warmup fill shared by Run and OpenLoopCompare.
func warmPages(dev *ssd.Device, pages int) error {
	const fill = 64
	for lpa := 0; lpa < pages; lpa += fill {
		n := fill
		if lpa+n > pages {
			n = pages - lpa
		}
		if _, err := dev.Write(addr.LPA(lpa), n); err != nil {
			return err
		}
	}
	return nil
}
