package experiments

import (
	"strings"
	"testing"
)

func TestGammaTuneSweepMicro(t *testing.T) {
	s := NewSuite(MicroScale(), 1)
	spec := GammaTuneSpec{
		Gammas:    []int{0, 8},
		Workloads: []string{"zipf-hot"},
		Bitmap:    true,
		Queues:    2,
	}
	runs, table, err := s.GammaTuneSweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Two static cells, the autotuned one, and autotune+bitmap.
	if len(runs) != 4 {
		t.Fatalf("got %d runs, want 4", len(runs))
	}
	if len(table.Rows) != 4 {
		t.Fatalf("table has %d rows, want 4", len(table.Rows))
	}
	var auto, bitmap *GammaTuneRun
	for i := range runs {
		r := &runs[i]
		if r.TableBytes <= 0 {
			t.Errorf("%s/%s: empty table", r.Workload, r.Label)
		}
		if r.Result == nil || r.Result.Requests == 0 {
			t.Errorf("%s/%s: no replayed requests", r.Workload, r.Label)
		}
		if r.Stats.MissHintResolved+r.Stats.MissFallbacks != r.Stats.Mispredictions {
			t.Errorf("%s/%s: resolution split %d+%d != %d", r.Workload, r.Label,
				r.Stats.MissHintResolved, r.Stats.MissFallbacks, r.Stats.Mispredictions)
		}
		switch {
		case r.Bitmap:
			bitmap = r
		case r.AutoTune:
			auto = r
		}
		if !r.Bitmap && (r.Stats.ExactBitHits != 0 || r.Stats.Relearns != 0 || r.ExactHitRatio != 0) {
			t.Errorf("%s/%s: bitmap counters without -bitmap: hits=%d relearns=%d ratio=%v",
				r.Workload, r.Label, r.Stats.ExactBitHits, r.Stats.Relearns, r.ExactHitRatio)
		}
		if !r.AutoTune && len(r.GammaHist) > 1 {
			t.Errorf("static run %s has a spread γ histogram: %v", r.Label, r.GammaHist)
		}
	}
	if auto == nil {
		t.Fatal("no autotuned run")
	}
	if bitmap == nil {
		t.Fatal("no autotune+bitmap run")
	}
	if !strings.Contains(bitmap.Label, "bitmap") {
		t.Errorf("bitmap label %q", bitmap.Label)
	}
	// At micro scale few approximate segments survive the exactify
	// triage, so demand every approximate read that does happen to be
	// served through a set bit rather than a fixed hit count.
	if bitmap.Stats.ApproxReads > 0 && bitmap.Stats.ExactBitHits == 0 {
		t.Error("bitmap run translated approximately but served no reads through exact bits")
	}
	if bitmap.Stats.DoubleReads > 0 && bitmap.Stats.DoubleReads > bitmap.Stats.MissFallbacks {
		t.Errorf("bitmap run paid %d double reads but only %d fallback-resolved misses",
			bitmap.Stats.DoubleReads, bitmap.Stats.MissFallbacks)
	}
	if bitmap.ExactHitRatio < 0 || bitmap.ExactHitRatio > 1 {
		t.Errorf("exact-hit ratio %v outside [0,1]", bitmap.ExactHitRatio)
	}
	if auto.Gamma != 8 {
		t.Errorf("autotune ceiling %d, want the grid max 8", auto.Gamma)
	}
	for g := range auto.GammaHist {
		if g > 8 {
			t.Errorf("autotuned group at γ=%d beyond the ceiling", g)
		}
	}
	if !strings.Contains(auto.Label, "autotune") {
		t.Errorf("autotune label %q", auto.Label)
	}
}

func TestGammaTuneSweepUnknownWorkload(t *testing.T) {
	s := NewSuite(MicroScale(), 1)
	if _, _, err := s.GammaTuneSweep(GammaTuneSpec{Workloads: []string{"nope"}}); err == nil {
		t.Fatal("unknown workload accepted")
	}
	if _, _, err := s.GammaTuneSweep(GammaTuneSpec{Workloads: []string{"msr-replay"}}); err == nil {
		t.Fatal("msr-replay without a trace accepted")
	}
}
