package experiments

import (
	"strings"
	"testing"
)

func TestGammaTuneSweepMicro(t *testing.T) {
	s := NewSuite(MicroScale(), 1)
	spec := GammaTuneSpec{
		Gammas:    []int{0, 8},
		Workloads: []string{"zipf-hot"},
		Queues:    2,
	}
	runs, table, err := s.GammaTuneSweep(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Two static cells plus the autotuned one.
	if len(runs) != 3 {
		t.Fatalf("got %d runs, want 3", len(runs))
	}
	if len(table.Rows) != 3 {
		t.Fatalf("table has %d rows, want 3", len(table.Rows))
	}
	var auto *GammaTuneRun
	for i := range runs {
		r := &runs[i]
		if r.TableBytes <= 0 {
			t.Errorf("%s/%s: empty table", r.Workload, r.Label)
		}
		if r.Result == nil || r.Result.Requests == 0 {
			t.Errorf("%s/%s: no replayed requests", r.Workload, r.Label)
		}
		if r.Stats.MissHintResolved+r.Stats.MissFallbacks != r.Stats.Mispredictions {
			t.Errorf("%s/%s: resolution split %d+%d != %d", r.Workload, r.Label,
				r.Stats.MissHintResolved, r.Stats.MissFallbacks, r.Stats.Mispredictions)
		}
		if r.AutoTune {
			auto = r
		}
		if !r.AutoTune && len(r.GammaHist) > 1 {
			t.Errorf("static run %s has a spread γ histogram: %v", r.Label, r.GammaHist)
		}
	}
	if auto == nil {
		t.Fatal("no autotuned run")
	}
	if auto.Gamma != 8 {
		t.Errorf("autotune ceiling %d, want the grid max 8", auto.Gamma)
	}
	for g := range auto.GammaHist {
		if g > 8 {
			t.Errorf("autotuned group at γ=%d beyond the ceiling", g)
		}
	}
	if !strings.Contains(auto.Label, "autotune") {
		t.Errorf("autotune label %q", auto.Label)
	}
}

func TestGammaTuneSweepUnknownWorkload(t *testing.T) {
	s := NewSuite(MicroScale(), 1)
	if _, _, err := s.GammaTuneSweep(GammaTuneSpec{Workloads: []string{"nope"}}); err == nil {
		t.Fatal("unknown workload accepted")
	}
	if _, _, err := s.GammaTuneSweep(GammaTuneSpec{Workloads: []string{"msr-replay"}}); err == nil {
		t.Fatal("msr-replay without a trace accepted")
	}
}
