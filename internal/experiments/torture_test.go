package experiments

import (
	"testing"
	"time"
)

// TestTortureMatrix runs the full crash-torture matrix at micro scale:
// {greedy, cost-benefit, fifo} × {unbudgeted, 25% budget} × {autotune
// off, on} × 5 seeded crash points — ≥50 injected crashes in total,
// each recovered and differentially verified inside the harness.
func TestTortureMatrix(t *testing.T) {
	const seed = 42
	s := NewSuite(MicroScale(), seed)
	cells, table, err := s.Torture(TortureSpec{})
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	t.Logf("seed %d:\n%s", seed, table)

	total := 0
	points := make(map[string]int)
	for _, c := range cells {
		total += c.Crashes
		for p, n := range c.Points {
			points[p] += n
		}
		if c.Crashes == 0 {
			t.Errorf("seed %d: cell %s/%.2f/%v injected no crashes", seed, c.Policy, c.Budget, c.Autotune)
		}
		if c.VerifiedLPAs == 0 {
			t.Errorf("seed %d: cell %s/%.2f/%v verified nothing", seed, c.Policy, c.Budget, c.Autotune)
		}
	}
	if len(cells) != 12 {
		t.Fatalf("seed %d: %d cells, want 12", seed, len(cells))
	}
	if total < 50 {
		t.Errorf("seed %d: %d crashes injected across the matrix, want ≥50", seed, total)
	}
	if len(points) < 3 {
		t.Errorf("seed %d: crashes only hit %d distinct points (%v); want spread across the flush/GC paths",
			seed, len(points), points)
	}
}

// TestTortureSmoke is the CI-sized single-cell check (also what
// leaftl-bench -torture exercises under the race detector).
func TestTortureSmoke(t *testing.T) {
	const seed = 7
	s := NewSuite(MicroScale(), seed)
	cells, _, err := s.Torture(TortureSpec{
		Policies: []string{"greedy"},
		Budgets:  []float64{0},
		Autotune: []bool{false},
	})
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	if cells[0].Crashes == 0 {
		t.Errorf("seed %d: no crashes injected", seed)
	}
}

// TestTortureMultiQueue crash-tortures the multi-queue front end: each
// slice replays through 4 real worker-backed queue pairs, the seeded
// crash panics out of the device mid-batch with the other workers still
// live, and the cell's differential verification proves recovery lost
// nothing beyond the write buffer — the in-ring requests the abort
// discarded were simply never applied, so the device holds an exact
// submission-order prefix.
func TestTortureMultiQueue(t *testing.T) {
	const seed = 13
	s := NewSuite(MicroScale(), seed)
	cells, table, err := s.Torture(TortureSpec{
		Policies: []string{"greedy"},
		Budgets:  []float64{0, 0.25},
		Autotune: []bool{false},
		Workers:  4,
	})
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	t.Logf("seed %d:\n%s", seed, table)
	for _, c := range cells {
		if c.Crashes == 0 {
			t.Errorf("seed %d: cell %s/%.2f injected no crashes through the multi-queue path", seed, c.Policy, c.Budget)
		}
		if c.VerifiedLPAs == 0 {
			t.Errorf("seed %d: cell %s/%.2f verified nothing", seed, c.Policy, c.Budget)
		}
	}
}

// TestTortureJournal crash-tortures the mapping-delta journal path: a
// budgeted cell with the journal on and its footprint squeezed to one
// translation block, so slices crash between delta appends, mid-fold and
// mid-journal-GC, and every recovery must replay delta chains onto GMD
// base images before the differential verification.
func TestTortureJournal(t *testing.T) {
	const seed = 29
	s := NewSuite(MicroScale(), seed)
	cells, table, err := s.Torture(TortureSpec{
		Policies:     []string{"greedy"},
		Budgets:      []float64{0.25},
		Autotune:     []bool{false},
		Journal:      true,
		JournalPages: 256,
	})
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	t.Logf("seed %d:\n%s", seed, table)
	c := cells[0]
	if c.Crashes == 0 {
		t.Errorf("seed %d: no crashes injected", seed)
	}
	if c.VerifiedLPAs == 0 {
		t.Errorf("seed %d: verified nothing", seed)
	}
	if c.JournalReplays == 0 {
		t.Errorf("seed %d: recoveries never replayed a journal delta", seed)
	}
}

// TestFaultSweep checks the aged-device reliability sweep end to end at
// two RBER points: a healthy drive corrects nothing and loses nothing; a
// dying one shows ECC/scrub/retirement activity without ever returning
// an untyped error (the sweep itself fails on any).
func TestFaultSweep(t *testing.T) {
	const seed = 3
	s := NewSuite(MicroScale(), seed)
	// Micro traces advance the clock only ~14s at the default AgeStep;
	// age faster so the retention-scrub threshold actually trips.
	runs, table, err := s.FaultSweep(FaultSweepSpec{RBERs: []float64{1e-7, 1e-4}, AgeStep: 8 * time.Second})
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	t.Logf("seed %d:\n%s", seed, table)
	if len(runs) != 2 {
		t.Fatalf("seed %d: %d runs, want 2", seed, len(runs))
	}
	healthy, dying := runs[0], runs[1]
	if healthy.HostUECCs != 0 {
		t.Errorf("seed %d: healthy drive surfaced %d host UECCs", seed, healthy.HostUECCs)
	}
	if dying.Flash.CorrectedReads == 0 {
		t.Errorf("seed %d: dying drive corrected no reads", seed)
	}
	if dying.Flash.ECCRetries == 0 {
		t.Errorf("seed %d: dying drive never entered read-retry", seed)
	}
	if dying.Stats.ScrubRelocations == 0 {
		t.Errorf("seed %d: dying drive never scrubbed", seed)
	}
}
