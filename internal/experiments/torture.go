package experiments

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"leaftl/internal/addr"
	"leaftl/internal/flash"
	"leaftl/internal/leaftl"
	"leaftl/internal/ssd"
	"leaftl/internal/trace"
	"leaftl/internal/workload"
)

// TortureSpec parameterizes the seeded crash-torture matrix. Zero-valued
// fields select the defaults: every GC policy × {unbudgeted, 25% mapping
// budget} × {autotune off, on}, five crash points per cell.
type TortureSpec struct {
	// Policies are ssd GC policy names.
	Policies []string
	// Budgets are mapping-budget fractions of the scheme's full size;
	// 0 means unbudgeted (fully resident).
	Budgets []float64
	// Autotune toggles the adaptive per-group γ controller per cell.
	Autotune []bool
	// CrashPoints is the number of seeded crashes injected per cell.
	CrashPoints int
	// Workload names a generator from workload.TimedCatalog.
	Workload string
	// Gamma is the learning error bound (and autotune cap).
	Gamma int
	// Target is the autotune controller's tolerated miss-per-read ratio.
	Target float64
	// Journal routes metadata persistence through the mapping-delta
	// journal, so crashes land between delta appends, mid-fold and
	// mid-journal-GC, and recovery must replay each group's delta chain
	// onto its base image.
	Journal bool
	// JournalPages caps the journal flash footprint (0 = half the
	// over-provisioned capacity). Torture cells shrink it so journal GC
	// actually cycles within a slice.
	JournalPages int
	// Workers, when > 1, replays every slice through a real multi-queue
	// front end with that many worker-backed queue pairs, so crashes
	// land mid-batch with other workers in flight: the crashing worker
	// panics out of the device, the remaining ring entries are aborted
	// unapplied, and recovery must still see a clean submission-order
	// prefix. ≤ 1 keeps the serial replay path.
	Workers int
}

func (s TortureSpec) withDefaults() TortureSpec {
	if len(s.Policies) == 0 {
		s.Policies = ssd.GCPolicyNames()
	}
	if len(s.Budgets) == 0 {
		s.Budgets = []float64{0, 0.25}
	}
	if len(s.Autotune) == 0 {
		s.Autotune = []bool{false, true}
	}
	if s.CrashPoints < 1 {
		s.CrashPoints = 5
	}
	if s.Workload == "" {
		s.Workload = "mixed-rw"
	}
	if s.Gamma == 0 {
		s.Gamma = 8
	}
	if s.Target == 0 {
		s.Target = 0.01
	}
	return s
}

// TortureCell is one matrix cell's outcome: one device aged to a fully
// mapped state, then crashed, recovered and verified CrashPoints times
// in sequence (recoveries compound — each crash hits the state the
// previous recovery rebuilt).
type TortureCell struct {
	Policy   string
	Budget   float64
	Autotune bool
	Seed     int64

	// Crashes counts injected crashes (a countdown that outlives its
	// replay slice records no crash; the torture test asserts the
	// matrix total anyway).
	Crashes int
	// Points histograms where the crashes landed, by crash-point name.
	Points map[string]int
	// MappingsRebuilt and MappingsRestored sum the recovery reports.
	MappingsRebuilt  int
	MappingsRestored int
	// JournalReplays sums the delta records recovery replayed onto GMD
	// base images (journal cells only).
	JournalReplays uint64
	// VerifiedLPAs counts post-recovery truth entries differentially
	// checked against the at-crash snapshot.
	VerifiedLPAs int
	// BufferedLost counts LPAs whose buffered-but-unflushed writes the
	// crash legally destroyed.
	BufferedLost int
}

// crashSignal is the private panic sentinel the countdown hook throws;
// anything else unwinding out of a replay is a real bug and re-panics.
type crashSignal struct{ point string }

// Torture runs the crash-torture matrix: for every GC policy × mapping
// budget × autotune cell it ages a LeaFTL device to a fully mapped
// state, then repeatedly kills it at a seeded random crash point —
// mid-flush, between GC programs and the erase, during a metadata
// write — runs full firmware recovery into a fresh scheme, checks every
// device invariant, and differentially verifies the rebuilt state
// against a truth snapshot captured at the instant of the crash. Faults
// are off during torture so the comparison is exact: the only legal
// divergence is the write buffer's contents (lost by definition on a
// drive without power-loss protection).
func (s *Suite) Torture(spec TortureSpec) ([]TortureCell, Table, error) {
	spec = spec.withDefaults()
	gen, ok := workload.TimedCatalog()[spec.Workload]
	if !ok {
		return nil, Table{}, fmt.Errorf("torture: unknown timed workload %q", spec.Workload)
	}

	var cells []TortureCell
	cellIdx := 0
	for _, policy := range spec.Policies {
		for _, budget := range spec.Budgets {
			for _, autotune := range spec.Autotune {
				cellIdx++
				seed := s.Seed*1_000 + int64(cellIdx)
				cell, err := s.tortureCell(spec, gen, policy, budget, autotune, seed)
				if err != nil {
					return nil, Table{}, fmt.Errorf("torture %s/budget=%.2f/autotune=%v seed=%d: %w",
						policy, budget, autotune, seed, err)
				}
				cells = append(cells, *cell)
			}
		}
	}

	t := Table{
		ID: "torture",
		Title: fmt.Sprintf("seeded crash-torture: %q workload, %d crash points/cell",
			spec.Workload, spec.CrashPoints),
		Header: []string{"policy", "budget", "autotune", "seed", "crashes", "crash points",
			"rebuilt", "restored", "verified", "buffered-lost"},
		Notes: "each crash loses all controller RAM; recovery rebuilds from OOB + GMD and is diffed against an at-crash snapshot (write-buffer contents are the only legal loss)",
	}
	for _, c := range cells {
		t.Rows = append(t.Rows, []string{
			c.Policy, f2(c.Budget), fmt.Sprintf("%v", c.Autotune), fmt.Sprintf("%d", c.Seed),
			fmt.Sprintf("%d", c.Crashes), pointsCell(c.Points),
			fmt.Sprintf("%d", c.MappingsRebuilt), fmt.Sprintf("%d", c.MappingsRestored),
			fmt.Sprintf("%d", c.VerifiedLPAs), fmt.Sprintf("%d", c.BufferedLost),
		})
	}
	return cells, t, nil
}

// tortureCell ages one device and crash-cycles it.
func (s *Suite) tortureCell(spec TortureSpec, gen workload.Generator, policy string, budget float64, autotune bool, seed int64) (*TortureCell, error) {
	cfg := s.simConfig("sim")
	cfg.GCPolicy = policy
	// §3.6 mid-range watermarks: on the aged device the free pool sits
	// just above the trigger, so crashes land mid-GC too.
	cfg.GCLowWater = 0.15
	cfg.GCHighWater = 0.25
	cfg.JournalPages = spec.JournalPages

	newScheme := func() *leaftl.Scheme {
		opts := []leaftl.Option{leaftl.WithCompactEvery(uint64(max(s.Scale.Requests/16, 1_000)))}
		if autotune {
			opts = append(opts, leaftl.WithAutoTune(spec.Target))
		}
		if spec.Journal {
			opts = append(opts, leaftl.WithJournal())
		}
		return leaftl.New(spec.Gamma, cfg.Flash.PageSize, opts...)
	}
	sch := newScheme()
	dev, err := ssd.New(cfg, sch)
	if err != nil {
		return nil, err
	}
	if err := warmPages(dev, dev.LogicalPages()); err != nil {
		return nil, fmt.Errorf("warmup: %w", err)
	}
	if err := dev.Flush(); err != nil {
		return nil, fmt.Errorf("warmup flush: %w", err)
	}
	if budget > 0 {
		dev.SetMappingBudget(max(int(budget*float64(sch.FullSizeBytes())), 1))
	}

	rng := rand.New(rand.NewSource(seed))
	reqs := gen.Generate(dev.LogicalPages(), s.Scale.Requests, seed)
	slice := len(reqs) / spec.CrashPoints

	cell := &TortureCell{
		Policy: policy, Budget: budget, Autotune: autotune, Seed: seed,
		Points: make(map[string]int),
	}
	for k := 0; k < spec.CrashPoints; k++ {
		// The countdown is drawn small relative to the hook-hit rate
		// (several hits per flush plus the GC and scrub paths), so each
		// slice virtually always crashes — spread across point names.
		countdown := 1 + rng.Intn(120)
		var atTok []uint64
		var atLost []bool
		var atBuf []addr.LPA
		dev.SetCrashHook(func(point string) {
			countdown--
			if countdown <= 0 {
				atTok, atLost = dev.TruthSnapshot()
				atBuf = dev.BufferedLPAs()
				panic(crashSignal{point: point})
			}
		})
		var point string
		if spec.Workers > 1 {
			point = replayUntilCrashMQ(dev, reqs[k*slice:(k+1)*slice], spec.Workers)
		} else {
			point = replayUntilCrash(dev, reqs[k*slice:(k+1)*slice])
		}
		dev.SetCrashHook(nil)
		if point == "" {
			continue // countdown outlived the slice; no crash this round
		}
		cell.Crashes++
		cell.Points[point]++

		// The crash destroyed all controller RAM; recovery rebuilds
		// firmware state from flash into a fresh scheme.
		rep, err := dev.Recover(newScheme())
		if err != nil {
			return nil, fmt.Errorf("crash %d at %q: recover: %w", k, point, err)
		}
		cell.MappingsRebuilt += rep.MappingsRebuilt
		cell.MappingsRestored += rep.MappingsRestored
		cell.JournalReplays += rep.JournalDeltasReplayed
		if err := dev.CheckInvariants(); err != nil {
			return nil, fmt.Errorf("crash %d at %q: %w", k, point, err)
		}

		// Differential verification against the at-crash snapshot: with
		// faults off nothing may be lost, and every LPA outside the
		// write buffer must come back holding exactly its newest data.
		buffered := make(map[addr.LPA]bool, len(atBuf))
		for _, l := range atBuf {
			buffered[l] = true
		}
		cell.BufferedLost += len(atBuf)
		postTok, postLost := dev.TruthSnapshot()
		for l := range postTok {
			lpa := addr.LPA(l)
			if buffered[lpa] {
				continue // unflushed at crash; any older state is legal
			}
			if postLost[l] && !atLost[l] {
				return nil, fmt.Errorf("crash %d at %q: LPA %d lost with faults off", k, point, lpa)
			}
			if postTok[l] != atTok[l] {
				return nil, fmt.Errorf("crash %d at %q: LPA %d recovered token %#x, want %#x (stale or corrupt copy resurrected)",
					k, point, lpa, postTok[l], atTok[l])
			}
			cell.VerifiedLPAs++
		}
		// Read-verify a sample through the full host path: the device
		// self-checks payload tokens and prediction windows.
		for l := 0; l < len(postTok); l += max(len(postTok)/256, 1) {
			if postTok[l] == 0 {
				continue
			}
			if _, err := dev.Read(addr.LPA(l), 1); err != nil {
				return nil, fmt.Errorf("crash %d at %q: post-recovery read of LPA %d: %w", k, point, l, err)
			}
		}
	}
	if err := dev.Flush(); err != nil {
		return nil, fmt.Errorf("final flush: %w", err)
	}
	return cell, dev.CheckInvariants()
}

// replayUntilCrash replays reqs, converting the crash hook's panic into
// the crash-point name ("" when the slice completes uncrashed).
func replayUntilCrash(dev *ssd.Device, reqs []trace.Request) (point string) {
	defer func() {
		if r := recover(); r != nil {
			cs, ok := r.(crashSignal)
			if !ok {
				panic(r)
			}
			point = cs.point
		}
	}()
	if err := trace.Replay(dev, reqs); err != nil {
		// Faults are off during torture; any replay error is a bug and
		// must fail the harness, which treats it as an impossible point.
		panic(fmt.Sprintf("torture replay: %v", err))
	}
	return ""
}

// replayUntilCrashMQ drives reqs round-robin through a real multi-queue
// front end. A crash panics out of the device on whichever worker holds
// the submission-order ticket; the front end aborts every in-flight ring
// entry unapplied and Drain re-throws the signal on this goroutine,
// where the deferred recover converts it into the crash-point name. The
// interesting property under test: the crash lands mid-batch with other
// workers live, yet the device is left holding an exact submission-order
// prefix for recovery to rebuild from.
func replayUntilCrashMQ(dev *ssd.Device, reqs []trace.Request, workers int) (point string) {
	defer func() {
		if r := recover(); r != nil {
			cs, ok := r.(crashSignal)
			if !ok {
				panic(r)
			}
			point = cs.point
		}
	}()
	mq := ssd.NewMultiQueue(dev, ssd.MQConfig{Queues: workers})
	for i, r := range reqs {
		err := mq.Submit(i%workers, r.Op == trace.OpWrite, r.LPA, r.Pages, 0)
		if errors.Is(err, ssd.ErrAborted) {
			break // a worker crashed; Drain re-throws the signal below
		}
		if err != nil {
			panic(fmt.Sprintf("torture mq submit: %v", err))
		}
	}
	if err := mq.Drain(); err != nil {
		panic(fmt.Sprintf("torture mq drain: %v", err))
	}
	// No crash this slice: with faults off every completion must have
	// succeeded.
	if err := mq.FirstError(); err != nil {
		panic(fmt.Sprintf("torture mq replay: %v", err))
	}
	return ""
}

// pointsCell renders a crash-point histogram compactly and
// deterministically.
func pointsCell(points map[string]int) string {
	names := make([]string, 0, len(points))
	for n := range points {
		names = append(names, n)
	}
	sort.Strings(names)
	out := ""
	for i, n := range names {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%s:%d", n, points[n])
	}
	return out
}

// FaultSweepSpec parameterizes the aged-device reliability sweep.
type FaultSweepSpec struct {
	// RBERs are the base raw bit error rates swept (DefaultFaults
	// scaling derives wear/retention/disturb growth and op-failure
	// rates from each).
	RBERs []float64
	// Workload names a generator from workload.TimedCatalog.
	Workload string
	Gamma    int
	// ScrubDisturbReads and ScrubRetentionAge are the read-reclaim
	// thresholds under test.
	ScrubDisturbReads uint32
	ScrubRetentionAge time.Duration
	// AgeStep jumps the virtual clock every 1024 requests, so retention
	// error actually accrues on replay timescales.
	AgeStep time.Duration
}

func (s FaultSweepSpec) withDefaults() FaultSweepSpec {
	if len(s.RBERs) == 0 {
		// 1e-7 healthy, 1e-4 badly aged, 5e-4 end of life (retention
		// pushes pages past soft-decode range; expect host UECCs and
		// grown bad blocks).
		s.RBERs = []float64{1e-7, 1e-5, 5e-5, 1e-4, 5e-4}
	}
	if s.Workload == "" {
		s.Workload = "mixed-rw"
	}
	if s.Gamma == 0 {
		s.Gamma = 8
	}
	if s.ScrubDisturbReads == 0 {
		s.ScrubDisturbReads = 5_000
	}
	if s.ScrubRetentionAge == 0 {
		s.ScrubRetentionAge = 45 * time.Second
	}
	if s.AgeStep == 0 {
		s.AgeStep = 2 * time.Second
	}
	return s
}

// FaultRun is one RBER point of the reliability sweep.
type FaultRun struct {
	RBER      float64
	Seed      int64
	HostUECCs uint64 // reads surfaced to the host as uncorrectable
	Flash     flash.Stats
	Stats     ssd.Stats
	WAF       float64
}

// FaultSweep ages a LeaFTL device at each RBER point and replays a
// read/write mix under the full fault model — ECC retries, OOB
// reconstruction, read-reclaim scrubbing, bad-block retirement — with
// the clock jumped periodically so retention error accrues. Host-level
// UECCs are tolerated and counted (the device's contract is explicit
// failure, never silent corruption); any other error aborts the sweep.
func (s *Suite) FaultSweep(spec FaultSweepSpec) ([]FaultRun, Table, error) {
	spec = spec.withDefaults()
	gen, ok := workload.TimedCatalog()[spec.Workload]
	if !ok {
		return nil, Table{}, fmt.Errorf("faultsweep: unknown timed workload %q", spec.Workload)
	}

	var runs []FaultRun
	for i, rber := range spec.RBERs {
		seed := s.Seed*100 + int64(i)
		cfg := s.simConfig("sim")
		cfg.Flash.Fault = flash.DefaultFaults(seed, rber)
		cfg.ScrubDisturbReads = spec.ScrubDisturbReads
		cfg.ScrubRetentionAge = spec.ScrubRetentionAge
		sch := s.newScheme("LeaFTL", spec.Gamma, cfg)
		dev, err := ssd.New(cfg, sch)
		if err != nil {
			return nil, Table{}, fmt.Errorf("faultsweep rber=%v: %w", rber, err)
		}
		if err := warmPages(dev, dev.LogicalPages()); err != nil {
			return nil, Table{}, fmt.Errorf("faultsweep rber=%v: warmup: %w", rber, err)
		}
		if err := dev.Flush(); err != nil {
			return nil, Table{}, fmt.Errorf("faultsweep rber=%v: warmup flush: %w", rber, err)
		}
		dev.ResetMetrics()

		reqs := gen.Generate(dev.LogicalPages(), s.Scale.Requests, seed)
		var hostUECCs uint64
		for j, r := range reqs {
			if j%1024 == 1023 {
				dev.AdvanceTo(dev.Now() + spec.AgeStep)
			}
			var err error
			switch r.Op {
			case trace.OpRead:
				_, err = dev.Read(r.LPA, r.Pages)
			case trace.OpWrite:
				_, err = dev.Write(r.LPA, r.Pages)
			}
			if err != nil {
				var uecc *ssd.UECCError
				if errors.As(err, &uecc) {
					hostUECCs++
					continue
				}
				return nil, Table{}, fmt.Errorf("faultsweep rber=%v seed=%d: request %d (%s): %w", rber, seed, j, r, err)
			}
		}
		if err := dev.Flush(); err != nil {
			var uecc *ssd.UECCError
			if !errors.As(err, &uecc) {
				return nil, Table{}, fmt.Errorf("faultsweep rber=%v seed=%d: flush: %w", rber, seed, err)
			}
		}
		if err := dev.CheckInvariants(); err != nil {
			return nil, Table{}, fmt.Errorf("faultsweep rber=%v seed=%d: %w", rber, seed, err)
		}
		runs = append(runs, FaultRun{
			RBER: rber, Seed: seed, HostUECCs: hostUECCs,
			Flash: dev.FlashStats(), Stats: dev.Stats(), WAF: dev.WAF(),
		})
	}

	t := Table{
		ID: "faultsweep",
		Title: fmt.Sprintf("reliability sweep: %q workload, %d requests, aged device",
			spec.Workload, s.Scale.Requests),
		Header: []string{"RBER", "corrected", "retries", "data-UECC", "OOB-UECC", "host-UECC",
			"reconstructed", "scrubs", "retired", "GC-lost", "WAF"},
		Notes: "corrected/retries = ECC activity; host-UECC = reads explicitly failed to the host (never silent); reconstructed = reverse mappings rebuilt from sibling OOB windows",
	}
	for _, r := range runs {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0e", r.RBER),
			fmt.Sprintf("%d", r.Flash.CorrectedReads),
			fmt.Sprintf("%d", r.Flash.ECCRetries),
			fmt.Sprintf("%d", r.Flash.DataUECC),
			fmt.Sprintf("%d", r.Flash.OOBUECC),
			fmt.Sprintf("%d", r.HostUECCs),
			fmt.Sprintf("%d", r.Stats.OOBReconstructed),
			fmt.Sprintf("%d", r.Stats.ScrubRelocations),
			fmt.Sprintf("%d", r.Stats.RetiredBlocks),
			fmt.Sprintf("%d", r.Stats.GCDataLoss),
			f2(r.WAF),
		})
	}
	return runs, t, nil
}
