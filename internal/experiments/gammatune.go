package experiments

import (
	"fmt"
	"sort"

	"leaftl/internal/leaftl"
	"leaftl/internal/ssd"
	"leaftl/internal/trace"
	"leaftl/internal/workload"
)

// GammaTuneSpec parameterizes the adaptive-γ sweep: a static-γ grid
// against the autotuned controller on misprediction-heavy workloads.
// Zero-valued fields select the defaults.
type GammaTuneSpec struct {
	// Gammas is the static error-bound grid (default 0, 2, 4, 8, 16).
	Gammas []int
	// AutoGamma is the autotuned run's global ceiling (default: the
	// largest grid value). Per-group bounds start here and the controller
	// demotes/promotes within [0, AutoGamma].
	AutoGamma int
	// Target is the controller's tolerated miss-per-read ratio
	// (core.TuneConfig.TargetMissRatio); ≤ 0 selects the default.
	Target float64
	// Workloads name the sweep workloads: "zipf-hot" (timed catalog),
	// "strided" (a strided/hot-spot trace profile with stamped arrivals),
	// and "msr-replay" (requires Trace). Default: zipf-hot, strided.
	Workloads []string
	// Trace backs the "msr-replay" workload: a decoded trace, folded
	// into the device with trace.FitTo before replay.
	Trace []trace.Request
	// Bitmap adds an autotune+bitmap cell per workload: the adaptive-γ
	// controller plus the predicted-exact bitmap and GC-time relearning
	// — the configuration the PR 9 benchmark gate scores.
	Bitmap bool
	// Queues and Speedup mirror OpenLoopSpec.
	Queues  int
	Speedup float64
}

// WithDefaults resolves zero-valued fields to the sweep defaults (the
// JSON emitter records the resolved values, not the raw flags).
func (s GammaTuneSpec) WithDefaults() GammaTuneSpec {
	if len(s.Gammas) == 0 {
		s.Gammas = []int{0, 2, 4, 8, 16}
	}
	if s.AutoGamma <= 0 {
		for _, g := range s.Gammas {
			if g > s.AutoGamma {
				s.AutoGamma = g
			}
		}
		if s.AutoGamma == 0 {
			s.AutoGamma = 16
		}
	}
	if len(s.Workloads) == 0 {
		s.Workloads = []string{"zipf-hot", "strided"}
	}
	if s.Queues < 1 {
		s.Queues = 4
	}
	if s.Speedup <= 0 {
		s.Speedup = 1
	}
	return s
}

// GammaTuneRun is one cell of the sweep: one workload × one γ policy.
type GammaTuneRun struct {
	Workload string
	// Label names the policy ("γ=8", "autotune(γ≤16)",
	// "autotune+bitmap(γ≤16)").
	Label string
	// Gamma is the global bound; AutoTune marks the controller run;
	// Bitmap marks the predicted-exact-bitmap + GC-relearning run.
	Gamma    int
	AutoTune bool
	Bitmap   bool
	// TableBytes is the complete mapping size after the run (what the
	// static-γ trade-off buys); ResidentBytes is the DRAM share.
	TableBytes    int
	ResidentBytes int
	// GammaHist counts groups per effective γ after the run — the
	// controller's demotion/promotion footprint (static runs collapse to
	// one bucket).
	GammaHist map[int]int
	// MissPerOp is mispredictions per host page read (Figure 24's axis).
	MissPerOp float64
	// DoubleReadPerOp is the first-class §3.5 double-read rate: host page
	// reads whose first flash data read landed on the wrong page, per
	// host page read (Stats.DoubleReadRatio). Hint-resolved misses cost
	// one read and are excluded; hint-misaimed correct predictions are
	// included. This is the axis the autotune controller optimizes and
	// the exactness bitmap attacks.
	DoubleReadPerOp float64
	// ExactHitRatio is the fraction of approximate reads served through
	// a set predicted-exact bit (always 0 without -bitmap).
	ExactHitRatio float64
	// Stats carries the device counters, including the
	// hint-resolved/full-fallback misprediction split.
	Stats ssd.Stats
	WAF   float64
	// Result holds the open-loop latency distributions.
	Result *trace.OpenLoopResult
}

// stridedProfile is the sweep's strided/hot-spot workload: read-heavy
// strided bursts whose interleaved irregular writes force approximate
// segments, with a hot spot that hammers the resulting predictions.
func stridedProfile() workload.Generator {
	return workload.TimedProfile{
		Profile: workload.Profile{
			Name: "strided", ReadFrac: 0.6, SeqFrac: 0.1, StrideFrac: 0.5,
			Stride: 3, StrideBurst: 24, MinPages: 1, MaxPages: 4,
			HotFrac: 0.75, HotSpace: 0.1, FootprintFrac: 0.4,
		},
		Arrivals: workload.ArrivalModel{IOPS: 50_000, BurstFactor: 4},
	}
}

// gammaTuneRequests resolves a sweep workload name to its request trace.
func (s *Suite) gammaTuneRequests(name string, spec GammaTuneSpec) ([]trace.Request, error) {
	logical := s.simConfig("sim").LogicalPages()
	switch name {
	case "zipf-hot", "mixed-rw":
		gen := workload.TimedCatalog()[name]
		return gen.Generate(logical, s.Scale.Requests, s.Seed), nil
	case "strided":
		return stridedProfile().Generate(logical, s.Scale.Requests, s.Seed), nil
	case "msr-replay":
		if len(spec.Trace) == 0 {
			return nil, fmt.Errorf("gammatune: workload msr-replay needs a trace (-trace)")
		}
		return trace.FitTo(spec.Trace, logical)
	default:
		return nil, fmt.Errorf("gammatune: unknown workload %q", name)
	}
}

// GammaTuneSweep sweeps static error bounds against the adaptive
// per-group controller. Every cell replays the same open-loop trace on
// an identically warmed device; the static grid draws the γ trade-off
// curve of §4.4 (bigger γ: smaller table, more double reads), and the
// autotune run shows the controller escaping it — demoting and
// repairing only the groups whose reads actually miss, keeping cold
// groups at the cheap high-γ encoding.
func (s *Suite) GammaTuneSweep(spec GammaTuneSpec) ([]GammaTuneRun, Table, error) {
	spec = spec.WithDefaults()

	var runs []GammaTuneRun
	for _, wl := range spec.Workloads {
		reqs, err := s.gammaTuneRequests(wl, spec)
		if err != nil {
			return nil, Table{}, err
		}
		for _, gamma := range spec.Gammas {
			run, err := s.gammaTuneCell(wl, gamma, false, false, reqs, spec)
			if err != nil {
				return nil, Table{}, fmt.Errorf("gammatune %s/γ=%d: %w", wl, gamma, err)
			}
			runs = append(runs, *run)
		}
		run, err := s.gammaTuneCell(wl, spec.AutoGamma, true, false, reqs, spec)
		if err != nil {
			return nil, Table{}, fmt.Errorf("gammatune %s/autotune: %w", wl, err)
		}
		runs = append(runs, *run)
		if spec.Bitmap {
			run, err := s.gammaTuneCell(wl, spec.AutoGamma, true, true, reqs, spec)
			if err != nil {
				return nil, Table{}, fmt.Errorf("gammatune %s/autotune+bitmap: %w", wl, err)
			}
			runs = append(runs, *run)
		}
	}

	t := Table{
		ID: "gammatune",
		Title: fmt.Sprintf("static γ grid vs adaptive per-group autotune: %d requests/workload, %d queue(s)",
			s.Scale.Requests, spec.Queues),
		Header: []string{"workload", "policy", "table", "dblread/op", "miss/op", "exact-hit", "relearns",
			"hint-res", "fallback", "p50", "p99", "p999", "kIOPS", "WAF", "γ-spread"},
		Notes: "dblread/op = host reads whose first flash read hit the wrong page, per host page read (hint-resolved misses excluded); miss/op = all mispredictions per read; exact-hit = share of approximate reads served through a set predicted-exact bit (no verification budget); relearns = groups re-fitted at GC relocation; γ-spread = effective per-group γ range after the run",
	}
	for _, r := range runs {
		sum := r.Result.Latency.Summary()
		t.Rows = append(t.Rows, []string{
			r.Workload, r.Label, bytesCell(r.TableBytes),
			fmt.Sprintf("%.4f", r.DoubleReadPerOp),
			fmt.Sprintf("%.4f", r.MissPerOp),
			fmt.Sprintf("%.3f", r.ExactHitRatio),
			fmt.Sprintf("%d", r.Stats.Relearns),
			fmt.Sprintf("%d", r.Stats.MissHintResolved),
			fmt.Sprintf("%d", r.Stats.MissFallbacks),
			us(sum.P50), us(sum.P99), us(sum.P999),
			fmt.Sprintf("%.1f", r.Result.IOPS()/1e3),
			f2(r.WAF),
			gammaSpread(r.GammaHist),
		})
	}
	return runs, t, nil
}

// gammaTuneCell runs one sweep cell.
func (s *Suite) gammaTuneCell(wl string, gamma int, autotune, bitmap bool, reqs []trace.Request, spec GammaTuneSpec) (*GammaTuneRun, error) {
	cfg := s.simConfig("sim")
	// Mid-range watermarks on an aged device (the gccompare conditions):
	// reclaim stays live through the measured window, so the sweep also
	// scores what relocation does to each policy's predictions — and
	// gives GC-time relearning real batches to re-fit from.
	cfg.GCLowWater = 0.15
	cfg.GCHighWater = 0.25
	// Frequent maintenance keeps the feedback loop observable on short
	// traces (several retune rounds per run; the paper's default interval
	// is sized for day-long traces).
	compactEvery := uint64(s.Scale.Requests / 16)
	if compactEvery < 1_000 {
		compactEvery = 1_000
	}
	opts := []leaftl.Option{leaftl.WithCompactEvery(compactEvery)}
	label := fmt.Sprintf("γ=%d", gamma)
	if autotune {
		opts = append(opts, leaftl.WithAutoTune(spec.Target))
		label = fmt.Sprintf("autotune(γ≤%d)", gamma)
	}
	if bitmap {
		opts = append(opts, leaftl.WithExactBitmap())
		label = fmt.Sprintf("autotune+bitmap(γ≤%d)", gamma)
	}
	sch := leaftl.New(gamma, cfg.Flash.PageSize, opts...)
	dev, err := ssd.New(cfg, sch)
	if err != nil {
		return nil, err
	}
	// Age the drive: fill the whole logical space so every block holds
	// data and reclaim runs during the measurement (§4.1 warms first).
	if err := warmPages(dev, dev.LogicalPages()); err != nil {
		return nil, fmt.Errorf("warmup: %w", err)
	}
	if err := dev.Flush(); err != nil {
		return nil, fmt.Errorf("warmup flush: %w", err)
	}
	dev.ResetMetrics()

	res, err := trace.ReplayOpenLoop(dev, reqs, trace.OpenLoopConfig{
		Queues: spec.Queues, Speedup: spec.Speedup,
	})
	if err != nil {
		return nil, err
	}
	if err := dev.Flush(); err != nil {
		return nil, fmt.Errorf("flush: %w", err)
	}
	if err := dev.CheckInvariants(); err != nil {
		return nil, err
	}

	hist := make(map[int]int)
	for _, gt := range sch.Table().GroupTunes() {
		hist[gt.Gamma]++
	}
	st := dev.Stats()
	return &GammaTuneRun{
		Workload: wl, Label: label, Gamma: gamma, AutoTune: autotune, Bitmap: bitmap,
		TableBytes: sch.FullSizeBytes(), ResidentBytes: sch.MemoryBytes(),
		GammaHist: hist, MissPerOp: st.MispredictionRatio(),
		DoubleReadPerOp: st.DoubleReadRatio(), ExactHitRatio: st.ExactBitHitRatio(),
		Stats: st, WAF: dev.WAF(), Result: res,
	}, nil
}

// gammaSpread renders a γ histogram as its occupied range.
func gammaSpread(hist map[int]int) string {
	if len(hist) == 0 {
		return "-"
	}
	gs := make([]int, 0, len(hist))
	for g := range hist {
		gs = append(gs, g)
	}
	sort.Ints(gs)
	if len(gs) == 1 {
		return fmt.Sprintf("%d", gs[0])
	}
	return fmt.Sprintf("%d..%d (%d buckets)", gs[0], gs[len(gs)-1], len(gs))
}
