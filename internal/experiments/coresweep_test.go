package experiments

import (
	"testing"

	"leaftl/internal/trace"
	"leaftl/internal/workload"
)

// TestCoreSweep runs the worker-count sweep at micro scale and checks
// the properties the bench-level gate relies on: every worker count
// serves the whole trace through real queue pairs and finishes with the
// same state digest.
func TestCoreSweep(t *testing.T) {
	const seed = 5
	s := NewSuite(MicroScale(), seed)
	runs, table, err := s.CoreSweep(CoreSweepSpec{Workers: []int{1, 2, 4}})
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	t.Logf("seed %d:\n%s", seed, table)
	if len(runs) != 3 {
		t.Fatalf("seed %d: %d runs, want 3", seed, len(runs))
	}
	for _, r := range runs {
		if r.Result.Requests != s.Scale.Requests {
			t.Errorf("seed %d w=%d: served %d requests, want %d", seed, r.Workers, r.Result.Requests, s.Scale.Requests)
		}
		if r.MQ.Completed != r.MQ.Submitted || r.MQ.Submitted != uint64(s.Scale.Requests) {
			t.Errorf("seed %d w=%d: submitted %d / completed %d, want %d each",
				seed, r.Workers, r.MQ.Submitted, r.MQ.Completed, s.Scale.Requests)
		}
		if r.Digest != runs[0].Digest {
			t.Errorf("seed %d w=%d: state digest %016x diverges from w=%d's %016x",
				seed, r.Workers, r.Digest, runs[0].Workers, runs[0].Digest)
		}
		if r.Result.IOPS() <= 0 {
			t.Errorf("seed %d w=%d: non-positive IOPS", seed, r.Workers)
		}
	}
}

// TestCoreSweepUnknownWorkload rejects bad workload names instead of
// panicking deep in the generator.
func TestCoreSweepUnknownWorkload(t *testing.T) {
	s := NewSuite(MicroScale(), 1)
	if _, _, err := s.CoreSweep(CoreSweepSpec{Workload: "no-such-workload"}); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

// TestOpenLoopCompareWorkers drives the three-scheme open-loop
// comparison through real worker queue pairs (OpenLoopSpec.Workers) and
// checks every scheme still serves the full trace.
func TestOpenLoopCompareWorkers(t *testing.T) {
	const seed = 9
	s := NewSuite(MicroScale(), seed)
	gen := workload.TimedCatalog()["zipf-hot"]
	reqs := gen.Generate(s.simConfig("sim-sharded").LogicalPages(), 2_000, seed)
	runs, table, err := s.OpenLoopCompare(reqs, OpenLoopSpec{Workers: 2, Speedup: 4})
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	t.Logf("seed %d:\n%s", seed, table)
	if len(runs) != 3 {
		t.Fatalf("seed %d: %d runs, want 3", seed, len(runs))
	}
	for _, r := range runs {
		if r.Result.Requests != len(reqs) {
			t.Errorf("seed %d %s: served %d requests, want %d", seed, r.Scheme, r.Result.Requests, len(reqs))
		}
	}
	var _ *trace.OpenLoopResult = runs[0].Result
}
