package experiments

import (
	"fmt"
	"math/rand"

	"leaftl/internal/addr"
	"leaftl/internal/core"
	"leaftl/internal/metrics"
)

// AblationBufferSort quantifies §3.3's flash-allocation coordination: the
// same workloads with buffer sorting disabled learn many more segments
// (paper Figure 7's motivating example).
func (s *Suite) AblationBufferSort() (Table, error) {
	t := Table{
		ID:     "ablation-sort",
		Title:  "Ablation: sorted vs unsorted buffer flush (gamma=0)",
		Header: []string{"workload", "sorted bytes", "unsorted bytes", "growth"},
		Notes:  "disabling §3.3's LPA-sorted flush inflates the learned table",
	}
	for _, p := range traceWorkloads() {
		sorted, err := s.Run("sim", p, "LeaFTL", 0)
		if err != nil {
			return t, err
		}
		unsorted, err := s.Run("nosort", p, "LeaFTL", 0)
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, []string{
			p.Name,
			metrics.FormatBytes(int64(sorted.MapFullBytes)),
			metrics.FormatBytes(int64(unsorted.MapFullBytes)),
			f1x(float64(unsorted.MapFullBytes) / float64(sorted.MapFullBytes)),
		})
	}
	return t, nil
}

// AblationCompaction quantifies §3.7's segment compaction: table size
// and level depth before and after compacting a write-churned table.
func (s *Suite) AblationCompaction() (Table, error) {
	t := Table{
		ID:     "ablation-compaction",
		Title:  "Ablation: segment compaction on a churned table",
		Header: []string{"rewrites", "segments before", "after", "max levels before", "after"},
		Notes:  "compaction removes fully-shadowed segments; partially-shadowed accurate segments keep their level (an accurate segment cannot encode interior holes, §3.7)",
	}
	for _, rounds := range []int{16, 64, 256} {
		tb := core.NewTable(0)
		// Churn: random sequential windows over 8 groups; partial
		// overlaps trim victims and stack levels that compaction can
		// later flatten (interleaved *strided* claims, by contrast,
		// legitimately resist compaction — see §3.7 merge semantics).
		rng := rand.New(rand.NewSource(11))
		ppa := addr.PPA(0)
		for r := 0; r < rounds; r++ {
			start := addr.LPA(rng.Intn(2048 - 160))
			n := 16 + rng.Intn(112)
			pairs := make([]addr.Mapping, n)
			for i := range pairs {
				pairs[i] = addr.Mapping{LPA: start + addr.LPA(i), PPA: ppa}
				ppa++
			}
			tb.Update(pairs)
		}
		before := tb.Stats()
		tb.Compact()
		after := tb.Stats()
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", rounds),
			fmt.Sprintf("%d", before.Segments), fmt.Sprintf("%d", after.Segments),
			fmt.Sprintf("%d", before.MaxLevels), fmt.Sprintf("%d", after.MaxLevels),
		})
	}
	return t, nil
}

// AblationLogStructured quantifies §3.4's motivation: the log-structured
// table absorbs updates without relearning, versus the in-place strategy
// the paper rejects (1.2× extra segments and flash reads for relearning).
// We measure the proxy the table exposes: segments and bytes when every
// batch is inserted at the top versus fully compacting after every batch
// (which is what an eager in-place structure must pay to stay flat).
func (s *Suite) AblationLogStructured() (Table, error) {
	t := Table{
		ID:     "ablation-log",
		Title:  "Ablation: lazy log-structured updates vs eager per-batch compaction",
		Header: []string{"batches", "lazy segments", "eager segments", "lazy bytes", "eager bytes"},
	}
	mkBatches := func(n int) [][]addr.Mapping {
		rng := rand.New(rand.NewSource(17))
		ppa := addr.PPA(0)
		var out [][]addr.Mapping
		for r := 0; r < n; r++ {
			start := addr.LPA(rng.Intn(4096 - 256))
			st := addr.LPA(1 + rng.Intn(2))
			sz := 32 + rng.Intn(160)
			pairs := make([]addr.Mapping, sz)
			for i := range pairs {
				pairs[i] = addr.Mapping{LPA: start + addr.LPA(i)*st, PPA: ppa}
				ppa++
			}
			out = append(out, pairs)
		}
		return out
	}
	for _, n := range []int{8, 32, 128} {
		lazy := core.NewTable(0)
		eager := core.NewTable(0)
		for _, b := range mkBatches(n) {
			lazy.Update(b)
			eager.Update(b)
			eager.Compact()
		}
		lazy.Compact() // one final compaction, as the periodic policy does
		ls, es := lazy.Stats(), eager.Stats()
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", ls.Segments), fmt.Sprintf("%d", es.Segments),
			fmt.Sprintf("%d", lazy.SizeBytes()), fmt.Sprintf("%d", eager.SizeBytes()),
		})
	}
	return t, nil
}

// RecoveryExperiment exercises §3.8/§5: crash the simulated device after
// a workload slice and report the OOB-scan recovery characteristics —
// differentially verified — for every mapping scheme, including
// demand-paged LeaFTL under a 25% budget (the GMD-restore path).
func (s *Suite) RecoveryExperiment() (Table, error) {
	t := Table{
		ID:     "recovery",
		Title:  "Crash recovery by channel-parallel OOB scan (§3.8)",
		Header: []string{"workload", "scheme", "blocks scanned", "pages scanned", "rebuilt", "restored", "scan time", "verified", "buffered-lost"},
		Notes:  "paper: 15.8 min on a 1TB prototype at 70MB/s per channel; scaled device scans proportionally less. verified = LPAs diffed byte-true against the at-crash snapshot; buffered-lost = unflushed writes (legal loss)",
	}
	type cell struct {
		scheme string
		budget float64
	}
	for _, name := range []string{"MSR-hm", "TPCC"} {
		for _, c := range []cell{{"LeaFTL", 0}, {"LeaFTL", 0.25}, {"DFTL", 0}, {"SFTL", 0}} {
			out, err := s.runRecovery(name, c.scheme, c.budget)
			if err != nil {
				return t, err
			}
			t.Rows = append(t.Rows, out)
		}
	}
	return t, nil
}
