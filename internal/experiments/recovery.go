package experiments

import (
	"fmt"

	"leaftl/internal/addr"
	"leaftl/internal/ssd"
	"leaftl/internal/trace"
	"leaftl/internal/workload"
)

// runRecovery runs a workload slice on a fresh device under the named
// mapping scheme (optionally demand-paged under a fractional mapping
// budget), crashes it without a final flush, recovers into a fresh
// scheme, and differentially verifies the rebuilt state against the
// at-crash snapshot: outside the write buffer — the only legal loss on
// a drive without power-loss protection — every LPA must come back
// holding exactly its newest data. Returns one report row.
func (s *Suite) runRecovery(name, scheme string, budget float64) ([]string, error) {
	p, ok := workload.ByName(name)
	if !ok {
		return nil, fmt.Errorf("recovery: unknown workload %q", name)
	}
	cfg := s.simConfig(cfgFor(p))
	sch := s.newScheme(scheme, 0, cfg)
	dev, err := ssd.New(cfg, sch)
	if err != nil {
		return nil, err
	}
	logical := dev.LogicalPages()
	fp := p.Footprint(logical)
	for lpa := 0; lpa+64 <= fp; lpa += 64 {
		if _, err := dev.Write(addr.LPA(lpa), 64); err != nil {
			return nil, err
		}
	}
	label := scheme
	if budget > 0 {
		// Cap after the footprint is mapped, so the fraction is of the
		// scheme's full table and the replay pages groups on demand —
		// recovery then exercises the GMD-restore path, not just the
		// OOB re-learn.
		dev.SetMappingBudget(max(int(budget*float64(sch.FullSizeBytes())), 1))
		label = fmt.Sprintf("%s@%d%%", scheme, int(budget*100))
	}
	reqs := p.Generate(logical, s.Scale.Requests/4, s.Seed)
	if err := trace.Replay(dev, reqs); err != nil {
		return nil, err
	}

	// Crash: no flush, all controller RAM lost. The snapshot is the
	// oracle the rebuilt state is diffed against.
	atTok, _ := dev.TruthSnapshot()
	buffered := make(map[addr.LPA]bool)
	for _, l := range dev.BufferedLPAs() {
		buffered[l] = true
	}
	rep, err := dev.Recover(s.newScheme(scheme, 0, cfg))
	if err != nil {
		return nil, err
	}
	if err := dev.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("recovery %s/%s: %w", name, label, err)
	}
	postTok, postLost := dev.TruthSnapshot()
	verified := 0
	for l := range postTok {
		if buffered[addr.LPA(l)] {
			continue
		}
		if postLost[l] {
			return nil, fmt.Errorf("recovery %s/%s: LPA %d lost with faults off", name, label, l)
		}
		if postTok[l] != atTok[l] {
			return nil, fmt.Errorf("recovery %s/%s: LPA %d recovered token %#x, want %#x",
				name, label, l, postTok[l], atTok[l])
		}
		verified++
	}
	// Spot-check reads across the footprint after recovery; the device
	// self-verifies payload tokens.
	for lpa := 0; lpa+64 <= fp; lpa += fp / 64 * 8 {
		if _, err := dev.Read(addr.LPA(lpa), 1); err != nil {
			return nil, fmt.Errorf("recovery %s/%s: post-recovery read: %w", name, label, err)
		}
	}
	return []string{
		p.Name,
		label,
		fmt.Sprintf("%d", rep.BlocksScanned),
		fmt.Sprintf("%d", rep.PagesScanned),
		fmt.Sprintf("%d", rep.MappingsRebuilt),
		fmt.Sprintf("%d", rep.MappingsRestored),
		rep.ScanTime.String(),
		fmt.Sprintf("%d", verified),
		fmt.Sprintf("%d", len(buffered)),
	}, nil
}
