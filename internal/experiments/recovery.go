package experiments

import (
	"fmt"

	"leaftl/internal/addr"
	"leaftl/internal/leaftl"
	"leaftl/internal/ssd"
	"leaftl/internal/trace"
	"leaftl/internal/workload"
)

// runRecovery runs a workload slice on a fresh LeaFTL device, crashes it,
// recovers, and verifies a sample of reads, returning one report row.
func (s *Suite) runRecovery(name string) ([]string, error) {
	p, ok := workload.ByName(name)
	if !ok {
		return nil, fmt.Errorf("recovery: unknown workload %q", name)
	}
	cfg := s.simConfig(cfgFor(p))
	dev, err := ssd.New(cfg, leaftl.New(0, cfg.Flash.PageSize))
	if err != nil {
		return nil, err
	}
	logical := dev.LogicalPages()
	fp := p.Footprint(logical)
	for lpa := 0; lpa+64 <= fp; lpa += 64 {
		if _, err := dev.Write(addr.LPA(lpa), 64); err != nil {
			return nil, err
		}
	}
	reqs := p.Generate(logical, s.Scale.Requests/4, s.Seed)
	if err := trace.Replay(dev, reqs); err != nil {
		return nil, err
	}

	rep, err := dev.Recover(leaftl.New(0, cfg.Flash.PageSize))
	if err != nil {
		return nil, err
	}
	// Spot-check reads across the footprint after recovery; the device
	// self-verifies payload tokens.
	for lpa := 0; lpa+64 <= fp; lpa += fp / 64 * 8 {
		if _, err := dev.Read(addr.LPA(lpa), 1); err != nil {
			return nil, fmt.Errorf("recovery: post-recovery read: %w", err)
		}
	}
	return []string{
		p.Name,
		fmt.Sprintf("%d", rep.BlocksScanned),
		fmt.Sprintf("%d", rep.PagesScanned),
		fmt.Sprintf("%d", rep.MappingsRebuilt),
		rep.ScanTime.String(),
	}, nil
}
