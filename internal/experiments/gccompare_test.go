package experiments

import (
	"testing"
)

// TestGCCompare runs a reduced matrix at micro scale and checks the
// engine produces complete, GC-active, policy-sensitive results.
func TestGCCompare(t *testing.T) {
	s := NewSuite(MicroScale(), 1)
	spec := GCCompareSpec{
		Policies:  []string{"greedy", "fifo"},
		Streams:   []int{1, 2},
		Workloads: []string{"zipf-hot"},
		Queues:    2,
	}
	runs, table, err := s.GCCompare(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 4 {
		t.Fatalf("got %d runs, want 4", len(runs))
	}
	if len(table.Rows) != len(runs) {
		t.Fatalf("table has %d rows for %d runs", len(table.Rows), len(runs))
	}
	erases := map[string]uint64{}
	for _, r := range runs {
		if r.Stats.GCErases == 0 {
			t.Errorf("%s/%s/streams=%d: GC never ran on the aged device", r.Workload, r.Policy, r.Streams)
		}
		if r.WAF < 1 {
			t.Errorf("%s/%s/streams=%d: WAF %.3f < 1", r.Workload, r.Policy, r.Streams, r.WAF)
		}
		if r.Result.Requests != 2*s.Scale.Requests {
			t.Errorf("%s/%s/streams=%d: served %d of %d requests", r.Workload, r.Policy, r.Streams,
				r.Result.Requests, 2*s.Scale.Requests)
		}
		if r.Streams == 1 {
			erases[r.Policy] = r.Stats.GCErases
		}
	}
	// The acceptance bar: different policies must record measurably
	// different reclaim behaviour on the same workload.
	if erases["greedy"] == erases["fifo"] {
		t.Errorf("greedy and fifo recorded identical GC erase counts (%d); matrix is not differentiating", erases["greedy"])
	}

	// Unknown workload and policy names fail cleanly.
	if _, _, err := s.GCCompare(GCCompareSpec{Workloads: []string{"nope"}}); err == nil {
		t.Error("unknown workload accepted")
	}
	if _, _, err := s.GCCompare(GCCompareSpec{Policies: []string{"lru"}, Workloads: []string{"zipf-hot"}}); err == nil {
		t.Error("unknown policy accepted")
	}
}
