package experiments

import (
	"fmt"

	"leaftl/internal/ssd"
	"leaftl/internal/trace"
	"leaftl/internal/workload"
)

// DieSweepSpec parameterizes the die-scaling sweep. Zero values select
// the defaults: 1/2/4 dies per channel at two planes per die, zipf-hot
// through 4 queue pairs at 4x recorded speed, with a second arm per
// geometry running under a 25% mapping budget to expose the map-op/
// data-op pipelining (Stats.MetaOverlap).
type DieSweepSpec struct {
	// Dies are the dies-per-channel counts to sweep.
	Dies []int
	// Planes is the planes-per-die fan-out, applied to every row
	// (including one die) so the whole curve runs under the same
	// die-aware timing model and measures die parallelism alone.
	Planes int
	// Workers is the multi-queue pair count of the open-loop replay.
	Workers int
	// Workload names a generator from workload.TimedCatalog.
	Workload string
	// Gamma is LeaFTL's error bound.
	Gamma int
	// Speedup divides recorded inter-arrival times.
	Speedup float64
	// MappingBudget is the budgeted arm's fraction of the full mapping
	// size (0 < f <= 1).
	MappingBudget float64
}

// WithDefaults resolves zero fields to the documented defaults (exported
// so callers can report the values a zero spec actually ran with).
func (s DieSweepSpec) WithDefaults() DieSweepSpec {
	if len(s.Dies) == 0 {
		s.Dies = []int{1, 2, 4}
	}
	if s.Planes <= 0 {
		s.Planes = 2
	}
	if s.Workers <= 0 {
		s.Workers = 4
	}
	if s.Workload == "" {
		s.Workload = "zipf-hot"
	}
	if s.Speedup <= 0 {
		s.Speedup = 4
	}
	if s.MappingBudget <= 0 || s.MappingBudget > 1 {
		s.MappingBudget = 0.25
	}
	return s
}

// DieSweepRun is one geometry's outcome: the unbudgeted open-loop replay
// (the throughput curve) and the budgeted arm (the meta-pipelining
// probe). Digests are not comparable across rows — each geometry lays
// pages out differently by design.
type DieSweepRun struct {
	Dies   int
	Planes int
	Result *trace.OpenLoopResult
	Stats  ssd.Stats
	MQ     ssd.MQStats
	Digest uint64

	// Budgeted arm: same geometry and trace under MappingBudget of the
	// full mapping size, where translation-page writes actually flow.
	BudgetBytes  int
	BudgetResult *trace.OpenLoopResult
	BudgetStats  ssd.Stats
}

// DieSweep replays one timed workload open-loop on identical warmed
// devices across channel × die × plane geometries. More dies per channel
// widen the program/erase service pool behind the same bus (flushes and
// GC stripe over per-die lanes; reads complete out of order across
// dies), so offered load that saturates one die per channel translates
// into throughput as dies are added. The budgeted arm demand-pages the
// mapping under a tight budget, where multi-die geometries additionally
// overlap translation-page writes with data traffic (Stats.MetaOverlap).
func (s *Suite) DieSweep(spec DieSweepSpec) ([]DieSweepRun, Table, error) {
	spec = spec.WithDefaults()
	gen, ok := workload.TimedCatalog()[spec.Workload]
	if !ok {
		return nil, Table{}, fmt.Errorf("diesweep: unknown timed workload %q", spec.Workload)
	}
	reqs := gen.Generate(s.simConfig("sim-sharded").LogicalPages(), s.Scale.Requests, s.Seed)

	var runs []DieSweepRun
	for _, dies := range spec.Dies {
		if dies < 1 {
			return nil, Table{}, fmt.Errorf("diesweep: %d dies", dies)
		}
		run := DieSweepRun{Dies: dies, Planes: spec.Planes}

		// Unbudgeted arm: the throughput curve, through the real
		// multi-queue front end.
		{
			cfg, err := s.dieConfig(dies, spec.Planes)
			if err != nil {
				return nil, Table{}, err
			}
			sch := s.newScheme("LeaFTL", spec.Gamma, cfg)
			dev, err := ssd.New(cfg, sch)
			if err != nil {
				return nil, Table{}, fmt.Errorf("diesweep d=%d: %w", dies, err)
			}
			if err := warmFootprint(dev, reqs); err != nil {
				return nil, Table{}, fmt.Errorf("diesweep d=%d: warmup: %w", dies, err)
			}
			dev.ResetMetrics()
			mq := ssd.NewMultiQueue(dev, ssd.MQConfig{Queues: spec.Workers})
			res, err := trace.ReplayOpenLoop(mq, reqs, trace.OpenLoopConfig{Speedup: spec.Speedup})
			if err != nil {
				return nil, Table{}, fmt.Errorf("diesweep d=%d: %w", dies, err)
			}
			if err := dev.Flush(); err != nil {
				return nil, Table{}, fmt.Errorf("diesweep d=%d: flush: %w", dies, err)
			}
			if err := dev.CheckInvariants(); err != nil {
				return nil, Table{}, fmt.Errorf("diesweep d=%d: %w", dies, err)
			}
			run.Result, run.Stats, run.MQ, run.Digest = res, dev.Stats(), mq.MQStats(), dev.StateDigest()
		}

		// Budgeted arm: demand-paged mapping at a fraction of full size.
		{
			cfg, err := s.dieConfig(dies, spec.Planes)
			if err != nil {
				return nil, Table{}, err
			}
			sch := s.newScheme("LeaFTL", spec.Gamma, cfg)
			dev, err := ssd.New(cfg, sch)
			if err != nil {
				return nil, Table{}, fmt.Errorf("diesweep d=%d budget: %w", dies, err)
			}
			if err := warmFootprint(dev, reqs); err != nil {
				return nil, Table{}, fmt.Errorf("diesweep d=%d budget: warmup: %w", dies, err)
			}
			bytes := int(spec.MappingBudget * float64(sch.FullSizeBytes()))
			if bytes < 1 {
				bytes = 1
			}
			dev.SetMappingBudget(bytes)
			dev.ResetMetrics()
			res, err := trace.ReplayOpenLoop(dev, reqs, trace.OpenLoopConfig{
				Queues: spec.Workers, Speedup: spec.Speedup,
			})
			if err != nil {
				return nil, Table{}, fmt.Errorf("diesweep d=%d budget: %w", dies, err)
			}
			if err := dev.Flush(); err != nil {
				return nil, Table{}, fmt.Errorf("diesweep d=%d budget: flush: %w", dies, err)
			}
			if err := dev.CheckInvariants(); err != nil {
				return nil, Table{}, fmt.Errorf("diesweep d=%d budget: %w", dies, err)
			}
			run.BudgetBytes, run.BudgetResult, run.BudgetStats = bytes, res, dev.Stats()
		}
		runs = append(runs, run)
	}

	t := Table{
		ID: "diesweep",
		Title: fmt.Sprintf("die sweep: %s, %d requests, %.2gx speed, %d workers, %d planes, gamma=%d, budget=%.0f%%",
			spec.Workload, len(reqs), spec.Speedup, spec.Workers, spec.Planes, spec.Gamma,
			100*spec.MappingBudget),
		Header: []string{"dies", "kIOPS", "p50", "p99", "p999", "budget kIOPS", "meta R/W", "meta overlap", "state digest"},
		Notes:  "same trace per row; digests differ by design (geometry changes page placement)",
	}
	for _, r := range runs {
		sum := r.Result.Latency.Summary()
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", r.Dies),
			fmt.Sprintf("%.1f", r.Result.IOPS()/1e3),
			us(sum.P50), us(sum.P99), us(sum.P999),
			fmt.Sprintf("%.1f", r.BudgetResult.IOPS()/1e3),
			fmt.Sprintf("%d/%d", r.BudgetStats.MetaReads, r.BudgetStats.MetaWrites),
			us(r.BudgetStats.MetaOverlap),
			fmt.Sprintf("%016x", r.Digest),
		})
	}
	return runs, t, nil
}

// dieConfig builds the sharded-core simulator config on a die × plane
// geometry, validating divisibility up front for a clear error.
func (s *Suite) dieConfig(dies, planes int) (ssd.Config, error) {
	cfg := s.simConfig("sim-sharded")
	cfg.Flash.DiesPerChan = dies
	cfg.Flash.PlanesPerDie = planes
	if dies > 1 && cfg.Flash.BlocksPerChan%dies != 0 {
		return cfg, fmt.Errorf("diesweep: %d blocks/chan not divisible by %d dies",
			cfg.Flash.BlocksPerChan, dies)
	}
	if planes > 1 && cfg.Flash.PagesPerBlock%planes != 0 {
		return cfg, fmt.Errorf("diesweep: %d pages/block not divisible by %d planes",
			cfg.Flash.PagesPerBlock, planes)
	}
	return cfg, nil
}
