package experiments

import (
	"fmt"

	"leaftl/internal/core"
	"leaftl/internal/ftl"
	"leaftl/internal/leaftl"
	"leaftl/internal/metrics"
	"leaftl/internal/ssd"
	"leaftl/internal/trace"
	"leaftl/internal/workload"
)

// MemorySweepSpec parameterizes the DRAM-budget sweep. Zero-valued
// fields select the defaults: budgets at 1/8, 1/4, 1/2 and 1x of each
// scheme's full mapping size, all three schemes, both timed workloads,
// 4 host queues at recorded speed.
type MemorySweepSpec struct {
	// Budgets are mapping DRAM caps. Values ≤ 8 are fractions of the
	// scheme's own full mapping size measured after warmup (0.25 caps
	// LeaFTL at a quarter of its learned table and DFTL at a quarter of
	// its page table — each scheme squeezed equally hard); values > 8
	// are absolute bytes.
	Budgets []float64
	// Schemes are translation schemes ("LeaFTL", "DFTL", "SFTL").
	Schemes []string
	// Workloads name generators from workload.TimedCatalog
	// ("zipf-hot", "mixed-rw").
	Workloads []string
	// Queues, Speedup and Gamma mirror OpenLoopSpec.
	Queues  int
	Speedup float64
	Gamma   int
	// Journal runs LeaFTL with the mapping-delta journal: dirty evictions
	// append deltas into translation blocks instead of rewriting full
	// group images (no effect on the baselines).
	Journal bool
}

func (s MemorySweepSpec) withDefaults() MemorySweepSpec {
	if len(s.Budgets) == 0 {
		s.Budgets = []float64{0.125, 0.25, 0.5, 1}
	}
	if len(s.Schemes) == 0 {
		s.Schemes = []string{"LeaFTL", "DFTL", "SFTL"}
	}
	if len(s.Workloads) == 0 {
		s.Workloads = []string{"zipf-hot", "mixed-rw"}
	}
	if s.Queues < 1 {
		s.Queues = 4
	}
	if s.Speedup <= 0 {
		s.Speedup = 1
	}
	return s
}

// MemoryRun is one cell of the memory sweep: one scheme × budget ×
// workload, replayed open-loop on a warmed device whose mapping DRAM was
// capped after warmup.
type MemoryRun struct {
	Workload string
	Scheme   string
	// BudgetSpec is the requested budget (fraction or bytes, as given).
	BudgetSpec float64
	// BudgetBytes is the applied cap in bytes.
	BudgetBytes int
	// FullBytes is the scheme's complete mapping size after the run;
	// ResidentBytes is what actually sat in DRAM at the end.
	FullBytes     int
	ResidentBytes int
	// Faults and Evictions are LeaFTL's group-cache counters (zero for
	// the baselines, whose misses surface only as MetaReads).
	Faults    uint64
	Evictions uint64
	// Stats holds the device counters; MetaReads/MetaWrites are the
	// mapping-miss loads and dirty-eviction/persistence writes.
	Stats ssd.Stats
	// WAF is the steady-state write amplification over the measurement.
	WAF float64
	// Result is the open-loop latency outcome (misses charged in
	// service time).
	Result *trace.OpenLoopResult
	// Journal marks a run with the mapping-delta journal on;
	// JournalStats holds its counters (zero-valued otherwise).
	Journal      bool
	JournalStats ftl.JournalStats
}

// MemorySweep sweeps mapping-DRAM budgets × schemes × workloads — the
// Figure 15/16 memory-constrained axis, now honest: LeaFTL pages its
// learned table exactly like DFTL pages its CMT, so every scheme's
// misses are charged as translation-page flash traffic. Each cell warms
// an identical device to a fully mapped state, caps the mapping DRAM at
// the requested budget, then replays the workload open-loop; throughput,
// tail latency, miss ratio and meta-WAF separate the schemes.
func (s *Suite) MemorySweep(spec MemorySweepSpec) ([]MemoryRun, Table, error) {
	spec = spec.withDefaults()
	gens := workload.TimedCatalog()

	var runs []MemoryRun
	for _, wl := range spec.Workloads {
		gen, ok := gens[wl]
		if !ok {
			return nil, Table{}, fmt.Errorf("memsweep: unknown timed workload %q", wl)
		}
		reqs := gen.Generate(s.simConfig("sim").LogicalPages(), s.Scale.Requests, s.Seed)
		for _, scheme := range spec.Schemes {
			for _, budget := range spec.Budgets {
				run, err := s.memoryCell(wl, scheme, budget, reqs, spec)
				if err != nil {
					return nil, Table{}, fmt.Errorf("memsweep %s/%s/%v: %w", wl, scheme, budget, err)
				}
				runs = append(runs, *run)
			}
		}
	}

	t := Table{
		ID: "memsweep",
		Title: fmt.Sprintf("mapping-DRAM budget sweep: %d requests/workload, %d queue(s), gamma=%d",
			s.Scale.Requests, spec.Queues, spec.Gamma),
		Header: []string{"workload", "scheme", "budget", "resident", "full", "kIOPS",
			"p50", "p99", "p999", "miss/op", "metaWAF", "WAF"},
		Notes: "budget applied after warmup; miss/op = translation-page reads per host page, metaWAF = translation-page writes per host page written",
	}
	for _, r := range runs {
		sum := r.Result.Latency.Summary()
		t.Rows = append(t.Rows, []string{
			r.Workload, r.Scheme, bytesCell(r.BudgetBytes), bytesCell(r.ResidentBytes), bytesCell(r.FullBytes),
			fmt.Sprintf("%.1f", r.Result.IOPS()/1e3),
			us(sum.P50), us(sum.P99), us(sum.P999),
			fmt.Sprintf("%.4f", r.Stats.MetaReadRatio()),
			fmt.Sprintf("%.4f", r.Stats.MetaWAF()),
			f2(r.WAF),
		})
	}
	return runs, t, nil
}

// memoryCell runs one sweep cell.
func (s *Suite) memoryCell(wl, scheme string, budget float64, reqs []trace.Request, spec MemorySweepSpec) (*MemoryRun, error) {
	cfg := s.simConfig("sim")
	var opts []leaftl.Option
	if spec.Journal {
		opts = append(opts, leaftl.WithJournal())
	}
	sch := s.newScheme(scheme, spec.Gamma, cfg, opts...)
	dev, err := ssd.New(cfg, sch)
	if err != nil {
		return nil, err
	}
	// Age the drive to a fully mapped state (§4.1 warms before
	// measuring): the mapping structures reach their full size, which is
	// what fractional budgets are measured against.
	if err := warmPages(dev, dev.LogicalPages()); err != nil {
		return nil, fmt.Errorf("warmup: %w", err)
	}
	if err := dev.Flush(); err != nil {
		return nil, fmt.Errorf("warmup flush: %w", err)
	}
	bytes := int(budget)
	if budget <= 8 {
		bytes = int(budget * float64(sch.FullSizeBytes()))
	}
	if bytes < 1 {
		bytes = 1
	}
	dev.SetMappingBudget(bytes)
	dev.ResetMetrics()

	res, err := trace.ReplayOpenLoop(dev, reqs, trace.OpenLoopConfig{
		Queues: spec.Queues, Speedup: spec.Speedup,
	})
	if err != nil {
		return nil, err
	}
	if err := dev.Flush(); err != nil {
		return nil, fmt.Errorf("flush: %w", err)
	}
	if err := dev.CheckInvariants(); err != nil {
		return nil, err
	}

	run := &MemoryRun{
		Workload: wl, Scheme: sch.Name(),
		BudgetSpec: budget, BudgetBytes: bytes,
		FullBytes: sch.FullSizeBytes(), ResidentBytes: sch.MemoryBytes(),
		Stats: dev.Stats(), WAF: dev.WAF(), Result: res,
	}
	if ps, ok := sch.(interface{ PagingStats() core.PagerStats }); ok {
		st := ps.PagingStats()
		run.Faults, run.Evictions = st.Faults, st.Evictions
	}
	run.Journal, run.JournalStats = journalStatsOf(sch)
	return run, nil
}

// bytesCell renders a byte count compactly for table cells.
func bytesCell(n int) string { return metrics.FormatBytes(int64(n)) }
