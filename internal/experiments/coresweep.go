package experiments

import (
	"fmt"

	"leaftl/internal/ssd"
	"leaftl/internal/trace"
	"leaftl/internal/workload"
)

// CoreSweepSpec parameterizes the worker-per-core scaling sweep. Zero
// values select the defaults: workers 1/2/4/8 over zipf-hot at 4x
// recorded speed (enough offered load that a single worker saturates,
// so added cores translate into throughput).
type CoreSweepSpec struct {
	// Workers are the queue-pair counts to sweep.
	Workers []int
	// Workload names a generator from workload.TimedCatalog.
	Workload string
	// Gamma is LeaFTL's error bound.
	Gamma int
	// Speedup divides recorded inter-arrival times.
	Speedup float64
	// QueueDepth and Batch pass through to ssd.MQConfig (0 = defaults).
	QueueDepth int
	Batch      int
}

func (s CoreSweepSpec) withDefaults() CoreSweepSpec {
	if len(s.Workers) == 0 {
		s.Workers = []int{1, 2, 4, 8}
	}
	if s.Workload == "" {
		s.Workload = "zipf-hot"
	}
	if s.Speedup <= 0 {
		s.Speedup = 4
	}
	return s
}

// CoreSweepRun is one worker count's outcome. Digest is the device's
// post-run StateDigest: every run in a sweep replays the same trace in
// the same submission order, so digests must be identical across worker
// counts — the sweep carries its own determinism proof alongside the
// throughput curve.
type CoreSweepRun struct {
	Workers int
	Result  *trace.OpenLoopResult
	Stats   ssd.Stats
	MQ      ssd.MQStats
	Digest  uint64
}

// CoreSweep replays one timed workload open-loop through the real
// multi-queue front end at each worker count, on identical warmed
// devices (sharded translation core, the multi-core configuration).
// Requests are timed on per-worker logical clocks, so the virtual
// makespan shrinks — and kIOPS grows — as workers absorb arrival bursts
// in parallel, while the submission-order ticket keeps the final device
// state bit-identical across the whole sweep.
func (s *Suite) CoreSweep(spec CoreSweepSpec) ([]CoreSweepRun, Table, error) {
	spec = spec.withDefaults()
	gen, ok := workload.TimedCatalog()[spec.Workload]
	if !ok {
		return nil, Table{}, fmt.Errorf("coresweep: unknown timed workload %q", spec.Workload)
	}
	reqs := gen.Generate(s.simConfig("sim-sharded").LogicalPages(), s.Scale.Requests, s.Seed)

	var runs []CoreSweepRun
	for _, workers := range spec.Workers {
		if workers < 1 {
			return nil, Table{}, fmt.Errorf("coresweep: %d workers", workers)
		}
		cfg := s.simConfig("sim-sharded")
		sch := s.newScheme("LeaFTL", spec.Gamma, cfg)
		dev, err := ssd.New(cfg, sch)
		if err != nil {
			return nil, Table{}, fmt.Errorf("coresweep w=%d: %w", workers, err)
		}
		if err := warmFootprint(dev, reqs); err != nil {
			return nil, Table{}, fmt.Errorf("coresweep w=%d: warmup: %w", workers, err)
		}
		dev.ResetMetrics()
		mq := ssd.NewMultiQueue(dev, ssd.MQConfig{
			Queues: workers, QueueDepth: spec.QueueDepth, Batch: spec.Batch,
		})
		res, err := trace.ReplayOpenLoop(mq, reqs, trace.OpenLoopConfig{Speedup: spec.Speedup})
		if err != nil {
			return nil, Table{}, fmt.Errorf("coresweep w=%d: %w", workers, err)
		}
		if err := dev.Flush(); err != nil {
			return nil, Table{}, fmt.Errorf("coresweep w=%d: flush: %w", workers, err)
		}
		if err := dev.CheckInvariants(); err != nil {
			return nil, Table{}, fmt.Errorf("coresweep w=%d: %w", workers, err)
		}
		runs = append(runs, CoreSweepRun{
			Workers: workers, Result: res, Stats: dev.Stats(),
			MQ: mq.MQStats(), Digest: dev.StateDigest(),
		})
	}

	t := Table{
		ID: "coresweep",
		Title: fmt.Sprintf("multi-queue core sweep: %s, %d requests, %.2gx speed, gamma=%d",
			spec.Workload, len(reqs), spec.Speedup, spec.Gamma),
		Header: []string{"workers", "kIOPS", "p50", "p99", "p999", "wait p99", "epochs", "max batch", "state digest"},
		Notes:  "identical trace and submission order per row; equal digests = bit-identical final device state",
	}
	for _, r := range runs {
		sum := r.Result.Latency.Summary()
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", r.Workers),
			fmt.Sprintf("%.1f", r.Result.IOPS()/1e3),
			us(sum.P50), us(sum.P99), us(sum.P999),
			us(r.Result.QueueWait.Summary().P99),
			fmt.Sprintf("%d", r.MQ.Epochs),
			fmt.Sprintf("%d", r.MQ.MaxBatch),
			fmt.Sprintf("%016x", r.Digest),
		})
	}
	return runs, t, nil
}
