package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"leaftl/internal/addr"
	"leaftl/internal/core"
	"leaftl/internal/metrics"
	"leaftl/internal/workload"
)

// Fig5SegmentLengths reproduces Figure 5: the aggregated distribution of
// learned-segment lengths across the trace workloads, for γ ∈ {0, 4, 8},
// with total segment counts. The paper reports 98.2–99.2% of segments
// covering ≤ 128 mappings and counts dropping as γ grows.
func (s *Suite) Fig5SegmentLengths() (Table, error) {
	t := Table{
		ID:     "fig5",
		Title:  "Aggregated distribution of learned segment lengths",
		Header: []string{"gamma", "#segments", "<=1", "<=8", "<=32", "<=128", "<=256", "avg len"},
		Notes:  "CDF over all trace workloads; paper: 98.2–99.2% of segments cover ≤128 mappings",
	}
	for _, gamma := range []int{0, 4, 8} {
		var all []int
		for _, p := range traceWorkloads() {
			out, err := s.Run("sim", p, "LeaFTL", gamma)
			if err != nil {
				return t, err
			}
			all = append(all, out.SegLengths...)
		}
		d := metrics.NewIntDist(all)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", gamma),
			fmt.Sprintf("%d", d.Count()),
			fmt.Sprintf("%.1f%%", 100*d.CDFAt(1)),
			fmt.Sprintf("%.1f%%", 100*d.CDFAt(8)),
			fmt.Sprintf("%.1f%%", 100*d.CDFAt(32)),
			fmt.Sprintf("%.1f%%", 100*d.CDFAt(128)),
			fmt.Sprintf("%.1f%%", 100*d.CDFAt(256)),
			f2(d.Mean()),
		})
	}
	return t, nil
}

// Fig10CRBSizes reproduces Figure 10: per-workload CRB size (average and
// 99th percentile, bytes) at γ = 4. The paper reports 13.9 bytes on
// average.
func (s *Suite) Fig10CRBSizes() (Table, error) {
	t := Table{
		ID:     "fig10",
		Title:  "CRB size distribution (gamma=4)",
		Header: []string{"workload", "avg bytes", "p99 bytes", "max"},
		Notes:  "paper: 13.9 B average across workloads",
	}
	for _, p := range traceWorkloads() {
		out, err := s.Run("sim", p, "LeaFTL", 4)
		if err != nil {
			return t, err
		}
		d := metrics.NewIntDist(out.CRBSizes)
		t.Rows = append(t.Rows, []string{
			p.Name, f2(d.Mean()), fmt.Sprintf("%d", d.Percentile(99)), fmt.Sprintf("%d", d.Max()),
		})
	}
	return t, nil
}

// Fig12LevelCounts reproduces Figure 12: the number of levels in each
// group's log-structured mapping table (average and p99 per workload).
func (s *Suite) Fig12LevelCounts() (Table, error) {
	t := Table{
		ID:     "fig12",
		Title:  "Levels per group in the log-structured mapping table (gamma=0)",
		Header: []string{"workload", "avg levels", "p99", "max"},
	}
	for _, p := range traceWorkloads() {
		out, err := s.Run("sim", p, "LeaFTL", 0)
		if err != nil {
			return t, err
		}
		d := metrics.NewIntDist(out.LevelCounts)
		t.Rows = append(t.Rows, []string{
			p.Name, f2(d.Mean()), fmt.Sprintf("%d", d.Percentile(99)), fmt.Sprintf("%d", d.Max()),
		})
	}
	return t, nil
}

// Fig15MemoryReduction reproduces Figure 15: the mapping-table size
// reduction of LeaFTL (γ=0) relative to DFTL and SFTL. The paper reports
// 7.5–37.7× over DFTL and 2.9× average over SFTL.
func (s *Suite) Fig15MemoryReduction() (Table, error) {
	t := Table{
		ID:     "fig15",
		Title:  "Mapping table size reduction vs DFTL and SFTL (gamma=0)",
		Header: []string{"workload", "DFTL", "SFTL", "LeaFTL", "vs DFTL", "vs SFTL"},
		Notes:  "paper: 7.5–37.7x over DFTL; 2.9x average over SFTL",
	}
	var vsD, vsS []float64
	for _, p := range traceWorkloads() {
		lea, err := s.Run("sim", p, "LeaFTL", 0)
		if err != nil {
			return t, err
		}
		sf, err := s.Run("sim", p, "SFTL", 0)
		if err != nil {
			return t, err
		}
		df, err := s.Run("sim", p, "DFTL", 0)
		if err != nil {
			return t, err
		}
		rd := float64(df.MapFullBytes) / float64(lea.MapFullBytes)
		rs := float64(sf.MapFullBytes) / float64(lea.MapFullBytes)
		vsD = append(vsD, rd)
		vsS = append(vsS, rs)
		t.Rows = append(t.Rows, []string{
			p.Name,
			metrics.FormatBytes(int64(df.MapFullBytes)),
			metrics.FormatBytes(int64(sf.MapFullBytes)),
			metrics.FormatBytes(int64(lea.MapFullBytes)),
			f1x(rd), f1x(rs),
		})
	}
	t.Rows = append(t.Rows, []string{"geomean", "", "", "", f1x(geoMean(vsD)), f1x(geoMean(vsS))})
	return t, nil
}

// Fig16Performance reproduces Figure 16: normalized mean read latency
// (lower is better, DFTL = 1.0) under the two DRAM policies: (a) DRAM
// mainly for the mapping table, (b) mapping capped at 80% of DRAM.
func (s *Suite) Fig16Performance() (Table, Table, error) {
	mk := func(id, cfg, title string) (Table, error) {
		t := Table{
			ID:     id,
			Title:  title,
			Header: []string{"workload", "DFTL", "SFTL", "LeaFTL", "LeaFTL vs SFTL"},
			Notes:  "normalized mean read latency, lower is better",
		}
		var sp []float64
		for _, p := range traceWorkloads() {
			df, err := s.Run(cfg, p, "DFTL", 0)
			if err != nil {
				return t, err
			}
			sf, err := s.Run(cfg, p, "SFTL", 0)
			if err != nil {
				return t, err
			}
			lea, err := s.Run(cfg, p, "LeaFTL", 0)
			if err != nil {
				return t, err
			}
			base := float64(df.MeanRead)
			if base == 0 {
				base = 1
			}
			nS := float64(sf.MeanRead) / base
			nL := float64(lea.MeanRead) / base
			speedup := nS / nL
			sp = append(sp, speedup)
			t.Rows = append(t.Rows, []string{p.Name, "1.00", f2(nS), f2(nL), f1x(speedup)})
		}
		t.Rows = append(t.Rows, []string{"geomean", "", "", "", f1x(geoMean(sp))})
		return t, nil
	}
	a, err := mk("fig16a", "sim", "Normalized performance, DRAM mainly for mapping (paper: LeaFTL 1.6x avg over SFTL)")
	if err != nil {
		return a, Table{}, err
	}
	b, err := mk("fig16b", "sim-capped", "Normalized performance, mapping capped at 80% DRAM (paper: 1.4x avg over SFTL)")
	return a, b, err
}

// Fig17RealSSD reproduces Figure 17: normalized performance of the
// application workloads on the prototype configuration (paper: LeaFTL
// 1.4× average speedup, up to 1.5×).
func (s *Suite) Fig17RealSSD() (Table, error) {
	t := Table{
		ID:     "fig17",
		Title:  "Application workloads on the prototype config (16KB pages)",
		Header: []string{"workload", "DFTL", "SFTL", "LeaFTL", "speedup vs SFTL"},
		Notes:  "normalized mean read latency, lower is better; paper: 1.4x average",
	}
	var sp []float64
	for _, p := range appWorkloads() {
		df, err := s.Run("proto", p, "DFTL", 0)
		if err != nil {
			return t, err
		}
		sf, err := s.Run("proto", p, "SFTL", 0)
		if err != nil {
			return t, err
		}
		lea, err := s.Run("proto", p, "LeaFTL", 0)
		if err != nil {
			return t, err
		}
		base := float64(df.MeanRead)
		if base == 0 {
			base = 1
		}
		nS := float64(sf.MeanRead) / base
		nL := float64(lea.MeanRead) / base
		sp = append(sp, nS/nL)
		t.Rows = append(t.Rows, []string{p.Name, "1.00", f2(nS), f2(nL), f1x(nS / nL)})
	}
	t.Rows = append(t.Rows, []string{"geomean", "", "", "", f1x(geoMean(sp))})
	return t, nil
}

// Fig18LatencyCDF reproduces Figure 18: the read latency distribution of
// the OLTP workload per scheme (percentile rows instead of a plotted
// CDF). The paper's point: LeaFTL does not raise tail latency and lowers
// many mid-distribution accesses.
func (s *Suite) Fig18LatencyCDF() (Table, error) {
	t := Table{
		ID:     "fig18",
		Title:  "OLTP read latency distribution on the prototype config",
		Header: []string{"percentile", "DFTL", "SFTL", "LeaFTL"},
	}
	outs := map[string]*RunOut{}
	p, _ := workload.ByName("OLTP")
	for _, scheme := range []string{"DFTL", "SFTL", "LeaFTL"} {
		out, err := s.Run("proto", p, scheme, 0)
		if err != nil {
			return t, err
		}
		outs[scheme] = out
	}
	for _, pct := range []float64{30, 60, 90, 99, 99.9, 100} {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("p%g", pct),
			us(outs["DFTL"].ReadHist.PercentileDuration(pct)),
			us(outs["SFTL"].ReadHist.PercentileDuration(pct)),
			us(outs["LeaFTL"].ReadHist.PercentileDuration(pct)),
		})
	}
	return t, nil
}

// Fig19GammaMemory reproduces Figure 19: LeaFTL's mapping-table size as
// γ grows, normalized to γ=0 (the paper reports a further 1.3× average
// reduction at γ=16).
func (s *Suite) Fig19GammaMemory() (Table, error) {
	t := Table{
		ID:     "fig19",
		Title:  "Mapping table size vs gamma (normalized to gamma=0, lower is better)",
		Header: []string{"workload", "g=0", "g=1", "g=4", "g=16"},
		Notes:  "paper: 1.3x average further reduction at gamma=16",
	}
	for _, p := range allWorkloads() {
		row := []string{p.Name}
		var base float64
		for _, gamma := range []int{0, 1, 4, 16} {
			out, err := s.Run(cfgFor(p), p, "LeaFTL", gamma)
			if err != nil {
				return t, err
			}
			if gamma == 0 {
				base = float64(out.MapFullBytes)
			}
			row = append(row, f2(float64(out.MapFullBytes)/base))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig20SegmentMix reproduces Figure 20: the accurate/approximate split of
// learned segments per γ (paper: all accurate at γ=0; 26.5% approximate
// at γ=16).
func (s *Suite) Fig20SegmentMix() (Table, error) {
	t := Table{
		ID:     "fig20",
		Title:  "Distribution of learned segments (accurate vs approximate)",
		Header: []string{"gamma", "accurate", "approximate", "approx %"},
		Notes:  "aggregated over trace workloads; paper: 0% at g=0, 26.5% at g=16",
	}
	for _, gamma := range []int{0, 1, 4, 16} {
		var acc, apx int
		for _, p := range traceWorkloads() {
			out, err := s.Run("sim", p, "LeaFTL", gamma)
			if err != nil {
				return t, err
			}
			acc += out.SegStats.Accurate
			apx += out.SegStats.Approximate
		}
		total := acc + apx
		if total == 0 {
			total = 1
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", gamma),
			fmt.Sprintf("%d", acc),
			fmt.Sprintf("%d", apx),
			fmt.Sprintf("%.1f%%", 100*float64(apx)/float64(total)),
		})
	}
	return t, nil
}

// Fig21GammaPerf reproduces Figure 21: normalized performance as γ grows
// (normalized to γ=0; the paper reports a 1.3× improvement at γ=16 from
// the extra memory savings).
func (s *Suite) Fig21GammaPerf() (Table, error) {
	t := Table{
		ID:     "fig21",
		Title:  "Performance vs gamma (normalized mean read latency to gamma=0, lower is better)",
		Header: []string{"workload", "g=0", "g=1", "g=4", "g=16"},
	}
	for _, p := range allWorkloads() {
		row := []string{p.Name}
		var base float64
		for _, gamma := range []int{0, 1, 4, 16} {
			out, err := s.Run(cfgFor(p), p, "LeaFTL", gamma)
			if err != nil {
				return t, err
			}
			if gamma == 0 {
				base = float64(out.MeanRead)
				if base == 0 {
					base = 1
				}
			}
			row = append(row, f2(float64(out.MeanRead)/base))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig22Sensitivity reproduces Figure 22: performance with varying DRAM
// capacity (a) and flash page size (b), on a representative workload
// subset, normalized to DFTL per configuration.
func (s *Suite) Fig22Sensitivity() (Table, Table, error) {
	subset := []string{"MSR-hm", "MSR-prxy", "MSR-usr"}
	runSet := func(id, title string, cfgs []string, labels []string) (Table, error) {
		t := Table{
			ID:     id,
			Title:  title,
			Header: []string{"config", "DFTL", "SFTL", "LeaFTL"},
			Notes:  "normalized mean read latency averaged over " + fmt.Sprint(subset),
		}
		for i, cfg := range cfgs {
			var nS, nL []float64
			for _, name := range subset {
				p, _ := workload.ByName(name)
				df, err := s.Run(cfg, p, "DFTL", 0)
				if err != nil {
					return t, err
				}
				sf, err := s.Run(cfg, p, "SFTL", 0)
				if err != nil {
					return t, err
				}
				lea, err := s.Run(cfg, p, "LeaFTL", 0)
				if err != nil {
					return t, err
				}
				base := float64(df.MeanRead)
				if base == 0 {
					base = 1
				}
				nS = append(nS, float64(sf.MeanRead)/base)
				nL = append(nL, float64(lea.MeanRead)/base)
			}
			t.Rows = append(t.Rows, []string{labels[i], "1.00", f2(geoMean(nS)), f2(geoMean(nL))})
		}
		return t, nil
	}
	// DRAM sweep (the paper's 256MB/512MB/1GB, scaled): 1×, 2×, 4× of
	// the base mapping+cache pool.
	base := s.Scale.AvailBytes >> 10
	a, err := runSet("fig22a", "Performance vs DRAM capacity (mapping+cache pool scaled 1x/2x/4x)",
		[]string{fmt.Sprintf("avail:%d", base), fmt.Sprintf("avail:%d", 2*base), fmt.Sprintf("avail:%d", 4*base)},
		[]string{fmt.Sprintf("256MB(pool %dKB)", base), fmt.Sprintf("512MB(pool %dKB)", 2*base), fmt.Sprintf("1GB(pool %dKB)", 4*base)})
	if err != nil {
		return a, Table{}, err
	}
	b, err := runSet("fig22b", "Performance vs flash page size (fixed page count)",
		[]string{"page:4", "page:8", "page:16"},
		[]string{"4KB", "8KB", "16KB"})
	return a, b, err
}

// Fig23LookupOverhead reproduces Figure 23: (a) the distribution of
// levels visited per lookup and (b) the lookup overhead relative to the
// flash read latency.
func (s *Suite) Fig23LookupOverhead() (Table, Table, error) {
	a := Table{
		ID:     "fig23a",
		Title:  "Levels visited per LPA lookup (gamma=0)",
		Header: []string{"workload", "avg", "p90", "p99", "max"},
		Notes:  "paper: 90% of lookups answered at the topmost level, 99% within 10",
	}
	for _, p := range traceWorkloads() {
		out, err := s.Run("sim", p, "LeaFTL", 0)
		if err != nil {
			return a, Table{}, err
		}
		var samples []int
		for lvl, n := range out.LookupHist {
			for i := uint64(0); i < n; i++ {
				samples = append(samples, lvl)
			}
		}
		d := metrics.NewIntDist(samples)
		a.Rows = append(a.Rows, []string{
			p.Name, f2(d.Mean()),
			fmt.Sprintf("%d", d.Percentile(90)),
			fmt.Sprintf("%d", d.Percentile(99)),
			fmt.Sprintf("%d", d.Max()),
		})
	}

	b := Table{
		ID:     "fig23b",
		Title:  "LPA lookup overhead relative to a flash read",
		Header: []string{"workload", "lookup", "flash read", "overhead"},
		Notes:  "paper: 0.21% average extra per flash read; measured on this host CPU",
	}
	lookupNS := measureLookupNS(0, s.lookupIters())
	flashRead := 20 * time.Microsecond
	for _, p := range appWorkloads() {
		overhead := float64(lookupNS) / float64(flashRead.Nanoseconds()) * 100
		b.Rows = append(b.Rows, []string{
			p.Name,
			fmt.Sprintf("%.1fns", lookupNS),
			us(flashRead),
			fmt.Sprintf("%.3f%%", overhead),
		})
	}
	return a, b, nil
}

// Fig24Misprediction reproduces Figure 24: the fraction of reads whose
// approximate translation mispredicted, per γ (paper: below 10% for most
// workloads at γ=16; zero at γ=0).
func (s *Suite) Fig24Misprediction() (Table, error) {
	t := Table{
		ID:     "fig24",
		Title:  "Misprediction ratio of flash page accesses",
		Header: []string{"workload", "g=0", "g=1", "g=4", "g=16"},
		Notes:  "mispredictions per host page read; each costs exactly one extra flash read (§3.5)",
	}
	for _, p := range allWorkloads() {
		row := []string{p.Name}
		for _, gamma := range []int{0, 1, 4, 16} {
			out, err := s.Run(cfgFor(p), p, "LeaFTL", gamma)
			if err != nil {
				return t, err
			}
			row = append(row, fmt.Sprintf("%.2f%%", 100*out.Stats.MispredictionRatio()))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig25WAF reproduces Figure 25: the write amplification factor of each
// scheme over every workload (paper: LeaFTL comparable to SFTL; DFTL
// slightly larger from translation-page writes).
func (s *Suite) Fig25WAF() (Table, error) {
	t := Table{
		ID:     "fig25",
		Title:  "Write amplification factor",
		Header: []string{"workload", "DFTL", "SFTL", "LeaFTL"},
	}
	for _, p := range allWorkloads() {
		row := []string{p.Name}
		for _, scheme := range []string{"DFTL", "SFTL", "LeaFTL"} {
			out, err := s.Run(cfgFor(p), p, scheme, 0)
			if err != nil {
				return t, err
			}
			row = append(row, f2(out.WAF))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Table3Microbench reproduces Table 3: the learning cost of one 256-LPA
// batch and the per-LPA lookup latency, per γ, measured on this host
// (the paper measures an ARM Cortex-A72).
func (s *Suite) Table3Microbench() (Table, error) {
	t := Table{
		ID:     "table3",
		Title:  "Overhead of learning and lookup (host CPU; paper: ARM Cortex-A72)",
		Header: []string{"gamma", "learning (256 LPAs)", "lookup (per LPA)"},
		Notes:  "paper: 9.8–10.8µs learning, 40.2–67.5ns lookup",
	}
	for _, gamma := range []int{0, 1, 4} {
		learnUS := measureLearnUS(gamma, s.learnIters())
		lookupNS := measureLookupNS(gamma, s.lookupIters())
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", gamma),
			fmt.Sprintf("%.1fµs", learnUS),
			fmt.Sprintf("%.1fns", lookupNS),
		})
	}
	return t, nil
}

// learnIters and lookupIters bound the host-CPU timing loops by suite
// scale, so the micro/CI path doesn't spin the full benchmark budget
// (the unit tests assert only table shape — the measured values are
// display-only and inherently host-dependent, never pass/fail inputs).
func (s *Suite) learnIters() int  { return clampIters(s.Scale.Requests/16, 100, 2_000) }
func (s *Suite) lookupIters() int { return clampIters(s.Scale.Requests/200, 10, 200) }

func clampIters(n, lo, hi int) int {
	if n < lo {
		return lo
	}
	if n > hi {
		return hi
	}
	return n
}

// measureLearnUS times learning a 256-mapping batch (µs per batch).
func measureLearnUS(gamma, iters int) float64 {
	pairs := benchBatch(gamma, 0)
	start := time.Now()
	for i := 0; i < iters; i++ {
		core.Learn(pairs, gamma)
	}
	return float64(time.Since(start).Microseconds()) / float64(iters)
}

// measureLookupNS times table lookups (ns per lookup) on a table holding
// a mixed set of segments.
func measureLookupNS(gamma, iters int) float64 {
	tb := core.NewTable(gamma)
	rng := rand.New(rand.NewSource(1))
	for b := 0; b < 64; b++ {
		tb.Update(benchBatch(gamma, int64(b)))
	}
	lpas := make([]addr.LPA, 4096)
	for i := range lpas {
		lpas[i] = addr.LPA(rng.Intn(64 * 256))
	}
	start := time.Now()
	for i := 0; i < iters; i++ {
		for _, l := range lpas {
			tb.Lookup(l)
		}
	}
	return float64(time.Since(start).Nanoseconds()) / float64(iters*len(lpas))
}

// benchBatch builds one 256-mapping batch with the mixed patterns the
// microbenchmarks exercise.
func benchBatch(gamma int, seed int64) []addr.Mapping {
	rng := rand.New(rand.NewSource(seed))
	pairs := make([]addr.Mapping, 0, 256)
	lpa := addr.LPA(uint32(seed) * 256)
	ppa := addr.PPA(rng.Intn(1 << 20))
	for len(pairs) < 256 {
		switch rng.Intn(3) {
		case 0:
			lpa += 1
		case 1:
			lpa += addr.LPA(1 + rng.Intn(2))
		default:
			lpa += addr.LPA(1 + rng.Intn(4))
		}
		ppa++
		pairs = append(pairs, addr.Mapping{LPA: lpa, PPA: ppa})
	}
	return pairs
}
