// Package experiments regenerates every table and figure of the paper's
// evaluation (§4) on the simulated SSD. Each FigNN function returns a
// Table of the same rows/series the paper plots; cmd/leaftl-bench prints
// them and EXPERIMENTS.md records paper-vs-measured values.
//
// Runs are memoized inside a Suite: several figures share the same
// (config, workload, scheme, gamma) simulation, which is executed once
// and summarized into a RunOut.
package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"leaftl/internal/core"
	"leaftl/internal/dftl"
	"leaftl/internal/flash"
	"leaftl/internal/ftl"
	"leaftl/internal/leaftl"
	"leaftl/internal/metrics"
	"leaftl/internal/sftl"
	"leaftl/internal/ssd"
	"leaftl/internal/trace"
	"leaftl/internal/workload"
)

// Table is one regenerated figure or table.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  string
}

// String renders the table as aligned ASCII.
func (t Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(&sb, "-- %s\n", t.Notes)
	}
	return sb.String()
}

// Markdown renders the table as a GitHub-flavored Markdown table.
func (t Table) Markdown() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "### %s: %s\n\n", t.ID, t.Title)
	sb.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	sb.WriteString("|" + strings.Repeat(" --- |", len(t.Header)) + "\n")
	for _, row := range t.Rows {
		sb.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	if t.Notes != "" {
		fmt.Fprintf(&sb, "\n*%s*\n", t.Notes)
	}
	return sb.String()
}

// Scale sizes the simulations. The paper's 2TB device is scaled down
// (DESIGN.md §5); all reported quantities are ratios, which survive
// scaling.
type Scale struct {
	Name          string
	BlocksPerChan int // 16 channels × 256 pages × 4KB each
	BufferPages   int // write buffer (the paper's default is 8MB)
	// AvailBytes is the DRAM left for mapping structures + data cache
	// after the write buffer. The paper's 2TB/1GB setup leaves the
	// mapping table ~4× larger than this pool; scales preserve that
	// starvation ratio so the Figure 16 effects reproduce.
	AvailBytes int64
	Requests   int // trace length per run
}

// DRAMBytes is the total controller DRAM: write buffer plus the
// mapping+cache pool.
func (s Scale) DRAMBytes(pageSize int) int64 {
	return int64(s.BufferPages)*int64(pageSize) + s.AvailBytes
}

// QuickScale keeps the full suite under a couple of minutes — used by
// tests and the default bench run: a 768MB device, 2MB buffer, 96KB
// mapping+cache pool.
func QuickScale() Scale {
	return Scale{Name: "quick", BlocksPerChan: 48, BufferPages: 512, AvailBytes: 96 << 10, Requests: 40_000}
}

// MicroScale is for unit tests and testing.B figure benchmarks: seconds
// per figure, same DRAM-starvation ratios.
func MicroScale() Scale {
	return Scale{Name: "micro", BlocksPerChan: 16, BufferPages: 256, AvailBytes: 48 << 10, Requests: 8_000}
}

// FullScale is the default for cmd/leaftl-bench -full: a 4GB device with
// the paper's 8MB buffer and a pool sized between LeaFTL's learned table
// and SFTL's condensed table, reproducing the paper's regime where only
// the learned mapping stays fully resident.
func FullScale() Scale {
	return Scale{Name: "full", BlocksPerChan: 256, BufferPages: 2048, AvailBytes: 640 << 10, Requests: 400_000}
}

// Suite memoizes simulation runs across figures.
type Suite struct {
	Scale Scale
	Seed  int64
	runs  map[runKey]*RunOut
}

// NewSuite returns a Suite at the given scale.
func NewSuite(s Scale, seed int64) *Suite {
	return &Suite{Scale: s, Seed: seed, runs: make(map[runKey]*RunOut)}
}

type runKey struct {
	cfg      string // "sim", "sim-capped", "proto", "dram:N", "page:N", "nosort"
	workload string
	scheme   string // "LeaFTL", "DFTL", "SFTL", "LeaFTL-inplace", ...
	gamma    int
}

// RunOut summarizes one finished simulation (the device itself is
// discarded to bound memory across the suite).
type RunOut struct {
	Workload string
	Scheme   string
	Gamma    int

	MapFullBytes int // FullSizeBytes after the run (Figures 15, 19)
	DFTLBytes    int // page-level table for the same footprint

	MeanRead  time.Duration
	ReadHist  *metrics.Histogram
	WriteHist *metrics.Histogram
	WAF       float64
	Stats     ssd.Stats

	// LeaFTL-only structure statistics.
	SegStats    core.Stats
	CRBSizes    []int
	LevelCounts []int
	SegLengths  []int
	LookupHist  map[int]uint64
	LookupAvg   float64
}

// simConfig builds the device config for a run-key config name.
func (s *Suite) simConfig(name string) ssd.Config {
	cfg := ssd.SimulatorConfig()
	cfg.Flash.BlocksPerChan = s.Scale.BlocksPerChan
	cfg.Flash.OOBSize = 256 // allows gamma up to 31 (§3.5: OOBs are 128–256B)
	cfg.BufferPages = s.Scale.BufferPages
	cfg.DRAMBytes = s.Scale.DRAMBytes(cfg.Flash.PageSize)
	switch {
	case name == "sim":
	case name == "sim-capped":
		cfg.Mode = ssd.MappingCapped
	case name == "proto":
		// Prototype (§3.9): 16KB pages, a quarter of the blocks (similar
		// page count per DRAM byte), half the mapping+cache pool so the
		// smaller page-level table still exceeds it.
		cfg.Flash = flash.PrototypeDefaults()
		cfg.Flash.OOBSize = 256
		cfg.Flash.BlocksPerChan = s.Scale.BlocksPerChan / 4
		if cfg.Flash.BlocksPerChan < 8 {
			cfg.Flash.BlocksPerChan = 8
		}
		cfg.BufferPages = s.Scale.BufferPages / 4
		if cfg.BufferPages < cfg.Flash.PagesPerBlock {
			cfg.BufferPages = cfg.Flash.PagesPerBlock
		}
		cfg.DRAMBytes = int64(cfg.BufferPages)*int64(cfg.Flash.PageSize) + s.Scale.AvailBytes/2
	case name == "nosort":
		cfg.SortBuffer = false
	case name == "sim-sharded":
		// Same device as "sim" with an 8-way sharded translation core;
		// translations are bit-identical, so every figure must match.
		cfg.Shards = 8
	case strings.HasPrefix(name, "avail:"):
		// DRAM sensitivity (Figure 22a): vary the mapping+cache pool.
		var kb int64
		fmt.Sscanf(name, "avail:%d", &kb)
		cfg.DRAMBytes = int64(cfg.BufferPages)*int64(cfg.Flash.PageSize) + kb<<10
	case strings.HasPrefix(name, "page:"):
		var kb int
		fmt.Sscanf(name, "page:%d", &kb)
		cfg.Flash.PageSize = kb << 10
		// Fixed total page count as in §4.4 ("we fix the number of flash
		// pages, and vary the flash page size"); buffer page count fixed
		// so its byte size scales with the page size.
		cfg.DRAMBytes = s.Scale.DRAMBytes(cfg.Flash.PageSize)
	default:
		panic("experiments: unknown config " + name)
	}
	return cfg
}

func (s *Suite) newScheme(name string, gamma int, cfg ssd.Config, opts ...leaftl.Option) ftl.Scheme {
	// Compaction every ~64 flushed blocks at quick scale keeps the
	// paper's "periodic" behaviour observable on short traces.
	compactEvery := uint64(s.Scale.Requests / 8)
	if compactEvery < 5_000 {
		compactEvery = 5_000
	}
	switch name {
	case "LeaFTL", "LeaFTL-nosort":
		all := append([]leaftl.Option{leaftl.WithCompactEvery(compactEvery)}, opts...)
		if cfg.Shards > 1 {
			return leaftl.NewSharded(gamma, cfg.Flash.PageSize, cfg.Shards, all...)
		}
		return leaftl.New(gamma, cfg.Flash.PageSize, all...)
	case "DFTL":
		return dftl.New(cfg.Flash.PageSize, 0) // budget set by the device
	case "SFTL":
		return sftl.New(cfg.Flash.PageSize, 0)
	default:
		panic("experiments: unknown scheme " + name)
	}
}

// Run executes (or returns the memoized) simulation for the key.
func (s *Suite) Run(cfgName string, p workload.Profile, scheme string, gamma int) (*RunOut, error) {
	key := runKey{cfg: cfgName, workload: p.Name, scheme: scheme, gamma: gamma}
	if out, ok := s.runs[key]; ok {
		return out, nil
	}
	cfg := s.simConfig(cfgName)
	sch := s.newScheme(scheme, gamma, cfg)
	dev, err := ssd.New(cfg, sch)
	if err != nil {
		return nil, fmt.Errorf("run %v: %w", key, err)
	}

	// Warmup (§4.1): fill the workload's footprint sequentially so reads
	// hit mapped pages and the drive has aged into steady state, then
	// replay a slice of the trace to populate caches, then reset metrics.
	logical := dev.LogicalPages()
	fp := p.Footprint(logical)
	if err := warmPages(dev, fp); err != nil {
		return nil, fmt.Errorf("run %v: warmup: %w", key, err)
	}
	reqs := p.Generate(logical, s.Scale.Requests, s.Seed)
	warm := len(reqs) / 5
	if err := trace.Replay(dev, reqs[:warm]); err != nil {
		return nil, fmt.Errorf("run %v: warmup replay: %w", key, err)
	}
	dev.ResetMetrics()

	if err := trace.Replay(dev, reqs[warm:]); err != nil {
		return nil, fmt.Errorf("run %v: %w", key, err)
	}
	if err := dev.Flush(); err != nil {
		return nil, fmt.Errorf("run %v: flush: %w", key, err)
	}

	out := &RunOut{
		Workload:     p.Name,
		Scheme:       scheme,
		Gamma:        gamma,
		MapFullBytes: dev.Scheme().FullSizeBytes(),
		DFTLBytes:    fp * dftl.EntryBytes,
		MeanRead:     dev.ReadLatency().MeanDuration(),
		ReadHist:     dev.ReadLatency(),
		WriteHist:    dev.WriteLatency(),
		WAF:          dev.WAF(),
		Stats:        dev.Stats(),
	}
	// The plain and sharded LeaFTL schemes expose structurally identical
	// mapping tables; extract the structure statistics through one view.
	type segTable interface {
		Stats() core.Stats
		CRBSizes() []int
		LevelCounts() []int
		SegmentLengths() []int
	}
	var tab segTable
	var levels func() (float64, map[int]uint64)
	switch ls := sch.(type) {
	case *leaftl.Scheme:
		tab, levels = ls.Table(), ls.LookupLevels
	case *leaftl.Sharded:
		tab, levels = ls.Table(), ls.LookupLevels
	}
	if tab != nil {
		out.SegStats = tab.Stats()
		out.CRBSizes = tab.CRBSizes()
		out.LevelCounts = tab.LevelCounts()
		out.SegLengths = tab.SegmentLengths()
		out.LookupAvg, out.LookupHist = levels()
	}
	s.runs[key] = out
	return out, nil
}

// traceWorkloads returns the simulator workloads (Figures 15/16/25 rows).
func traceWorkloads() []workload.Profile { return workload.Catalog() }

// appWorkloads returns the prototype workloads (Figures 17/18 rows).
func appWorkloads() []workload.Profile { return workload.AppCatalog() }

// allWorkloads concatenates both sets (Figures 19/21/24/25 use both).
func allWorkloads() []workload.Profile {
	return append(traceWorkloads(), appWorkloads()...)
}

// cfgFor returns the config name a workload class runs on.
func cfgFor(p workload.Profile) string {
	if p.Class == "app" {
		return "proto"
	}
	return "sim"
}

func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f1x(v float64) string { return fmt.Sprintf("%.1fx", v) }

func us(d time.Duration) string {
	return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
}

// geoMean returns the geometric mean of vs.
func geoMean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vs {
		if v <= 0 {
			return 0
		}
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(vs)))
}

// sortedKeys returns the sorted keys of a histogram map.
func sortedKeys(m map[int]uint64) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
