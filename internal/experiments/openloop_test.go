package experiments

import (
	"strings"
	"testing"

	"leaftl/internal/trace"
	"leaftl/internal/workload"
)

func TestOpenLoopCompare(t *testing.T) {
	s := NewSuite(MicroScale(), 1)
	gen := workload.TimedCatalog()["zipf-hot"]
	reqs := gen.Generate(1<<16, 2_000, 1)

	runs, table, err := s.OpenLoopCompare(reqs, OpenLoopSpec{Queues: 4, Gamma: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 3 || len(table.Rows) != 3 {
		t.Fatalf("%d runs, %d rows; want 3 each", len(runs), len(table.Rows))
	}
	for _, r := range runs {
		if r.Result.Requests != len(reqs) {
			t.Errorf("%s served %d requests, want %d", r.Scheme, r.Result.Requests, len(reqs))
		}
		if r.Result.Latency.Count() != uint64(len(reqs)) {
			t.Errorf("%s recorded %d latencies", r.Scheme, r.Result.Latency.Count())
		}
		if r.MapBytes <= 0 {
			t.Errorf("%s mapping size %d", r.Scheme, r.MapBytes)
		}
	}
	// Multi-queue runs exercise the sharded LeaFTL core.
	if !strings.Contains(runs[0].Scheme, "LeaFTL") {
		t.Errorf("first run is %s, want LeaFTL", runs[0].Scheme)
	}
	if !strings.Contains(runs[0].Scheme, "sharded") {
		t.Errorf("queues=4 run used %s, want the sharded core", runs[0].Scheme)
	}
}

func TestOpenLoopCompareUntimedTrace(t *testing.T) {
	s := NewSuite(MicroScale(), 1)
	reqs := workload.Catalog()[0].Generate(1<<15, 500, 1) // untimed profile trace
	spec := OpenLoopSpec{Queues: 1, Interarrival: 20_000} // 20µs spacing
	runs, _, err := s.OpenLoopCompare(reqs, spec)
	if err != nil {
		t.Fatal(err)
	}
	if runs[0].Result.Elapsed <= 0 {
		t.Error("zero makespan")
	}
	// Single-queue runs use the plain (unsharded) core.
	if strings.Contains(runs[0].Scheme, "sharded") {
		t.Errorf("queues=1 run used %s, want the plain core", runs[0].Scheme)
	}
}

func TestOpenLoopCompareEmptyTrace(t *testing.T) {
	s := NewSuite(MicroScale(), 1)
	if _, _, err := s.OpenLoopCompare(nil, OpenLoopSpec{}); err == nil {
		t.Error("empty trace accepted")
	}
}

func TestOpenLoopFitsOversizedTrace(t *testing.T) {
	s := NewSuite(MicroScale(), 1)
	// LPAs far beyond the micro device's capacity (a real MSR trace's
	// offsets) must be folded in, not rejected.
	reqs := []trace.Request{
		{Op: trace.OpWrite, LPA: 113_033_195, Pages: 4, Arrival: 0},
		{Op: trace.OpRead, LPA: 113_033_195, Pages: 4, Arrival: 1000},
	}
	runs, _, err := s.OpenLoopCompare(reqs, OpenLoopSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if runs[0].Result.Requests != 2 {
		t.Errorf("served %d requests, want 2", runs[0].Result.Requests)
	}
}
