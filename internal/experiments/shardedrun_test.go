package experiments

import "testing"

// TestShardedRunMatchesPlain runs the same workload on the "sim" and
// "sim-sharded" configurations: the sharded translation core must be
// invisible to every simulation outcome (device counters, mapping
// structure, footprint, latency).
func TestShardedRunMatchesPlain(t *testing.T) {
	s := NewSuite(MicroScale(), 1)
	p := traceWorkloads()[0]
	a, err := s.Run("sim", p, "LeaFTL", 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Run("sim-sharded", p, "LeaFTL", 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats != b.Stats || a.SegStats != b.SegStats || a.MapFullBytes != b.MapFullBytes {
		t.Fatalf("sharded run diverges:\nplain   %+v\nsharded %+v", a, b)
	}
	if a.MeanRead != b.MeanRead || a.WAF != b.WAF {
		t.Fatalf("sharded run latency/WAF diverge: %v/%v vs %v/%v",
			a.MeanRead, a.WAF, b.MeanRead, b.WAF)
	}
}
