package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func microSuite() *Suite { return NewSuite(MicroScale(), 1) }

func parseFactor(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "x"), 64)
	if err != nil {
		t.Fatalf("cell %q: %v", cell, err)
	}
	return v
}

func TestTableRendering(t *testing.T) {
	tb := Table{
		ID:     "x",
		Title:  "T",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "2"}},
		Notes:  "n",
	}
	s := tb.String()
	if !strings.Contains(s, "== x: T ==") || !strings.Contains(s, "-- n") {
		t.Errorf("ASCII render:\n%s", s)
	}
	md := tb.Markdown()
	if !strings.Contains(md, "| a | b |") || !strings.Contains(md, "| 1 | 2 |") {
		t.Errorf("Markdown render:\n%s", md)
	}
}

func TestFig15ShapeHolds(t *testing.T) {
	s := microSuite()
	tb, err := s.Fig15MemoryReduction()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 8 { // 7 workloads + geomean
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, row := range tb.Rows[:7] {
		vsDFTL := parseFactor(t, row[4])
		vsSFTL := parseFactor(t, row[5])
		if vsDFTL < 2 {
			t.Errorf("%s: reduction vs DFTL %v < 2x", row[0], vsDFTL)
		}
		if vsSFTL < 1 {
			t.Errorf("%s: LeaFTL bigger than SFTL (%vx)", row[0], vsSFTL)
		}
	}
}

func TestFig16OrderingHolds(t *testing.T) {
	s := microSuite()
	a, b, err := s.Fig16Performance()
	if err != nil {
		t.Fatal(err)
	}
	for _, tb := range []Table{a, b} {
		worse := 0
		for _, row := range tb.Rows[:len(tb.Rows)-1] {
			nL, err := strconv.ParseFloat(row[3], 64)
			if err != nil {
				t.Fatal(err)
			}
			// LeaFTL normalized latency must essentially never exceed
			// DFTL's; tolerate small queueing noise on isolated rows.
			if nL > 1.10 {
				worse++
			}
		}
		if worse > 1 {
			t.Errorf("%s: LeaFTL slower than DFTL on %d workloads", tb.ID, worse)
		}
	}
}

func TestFig19MonotoneForPatternWorkloads(t *testing.T) {
	s := microSuite()
	tb, err := s.Fig19GammaMemory()
	if err != nil {
		t.Fatal(err)
	}
	// Every row is normalized to 1.00 at gamma 0 and should stay within
	// a tight band (gamma can only trade accuracy for size).
	for _, row := range tb.Rows {
		for _, cell := range row[1:] {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				t.Fatal(err)
			}
			if v > 1.25 || v < 0.2 {
				t.Errorf("%s: normalized size %v out of band", row[0], v)
			}
		}
	}
}

func TestFig20AccurateOnlyAtGammaZero(t *testing.T) {
	s := microSuite()
	tb, err := s.Fig20SegmentMix()
	if err != nil {
		t.Fatal(err)
	}
	if tb.Rows[0][2] != "0" {
		t.Errorf("gamma=0 has approximate segments: %v", tb.Rows[0])
	}
	// Approximate share appears once gamma > 0.
	anyApprox := false
	for _, row := range tb.Rows[1:] {
		if row[2] != "0" {
			anyApprox = true
		}
	}
	if !anyApprox {
		t.Error("no approximate segments at any gamma > 0")
	}
}

func TestFig24ZeroAtGammaZero(t *testing.T) {
	s := microSuite()
	tb, err := s.Fig24Misprediction()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		if row[1] != "0.00%" {
			t.Errorf("%s: mispredictions at gamma=0: %s", row[0], row[1])
		}
	}
}

func TestFig25WAFSane(t *testing.T) {
	s := microSuite()
	tb, err := s.Fig25WAF()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		for _, cell := range row[1:] {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				t.Fatal(err)
			}
			if v < 0.3 || v > 5 {
				t.Errorf("%s: WAF %v implausible", row[0], v)
			}
		}
	}
}

func TestStructureFigures(t *testing.T) {
	s := microSuite()
	if tb, err := s.Fig5SegmentLengths(); err != nil || len(tb.Rows) != 3 {
		t.Fatalf("fig5: %v rows=%d", err, len(tb.Rows))
	}
	if tb, err := s.Fig10CRBSizes(); err != nil || len(tb.Rows) != 7 {
		t.Fatalf("fig10: %v", err)
	}
	if tb, err := s.Fig12LevelCounts(); err != nil || len(tb.Rows) != 7 {
		t.Fatalf("fig12: %v", err)
	}
	if a, b, err := s.Fig23LookupOverhead(); err != nil || len(a.Rows) != 7 || len(b.Rows) != 5 {
		t.Fatalf("fig23: %v", err)
	}
}

func TestPerfAndSensitivityFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("sensitivity sweep is slow")
	}
	s := microSuite()
	if tb, err := s.Fig17RealSSD(); err != nil || len(tb.Rows) != 6 {
		t.Fatalf("fig17: %v", err)
	}
	if tb, err := s.Fig18LatencyCDF(); err != nil || len(tb.Rows) != 6 {
		t.Fatalf("fig18: %v", err)
	}
	if tb, err := s.Fig21GammaPerf(); err != nil || len(tb.Rows) != 12 {
		t.Fatalf("fig21: %v", err)
	}
	if a, b, err := s.Fig22Sensitivity(); err != nil || len(a.Rows) != 3 || len(b.Rows) != 3 {
		t.Fatalf("fig22: %v", err)
	}
}

func TestTable3AndAblations(t *testing.T) {
	s := microSuite()
	tb, err := s.Table3Microbench()
	if err != nil || len(tb.Rows) != 3 {
		t.Fatalf("table3: %v", err)
	}
	if tb, err = s.AblationBufferSort(); err != nil {
		t.Fatalf("ablation-sort: %v", err)
	}
	for _, row := range tb.Rows {
		if parseFactor(t, row[3]) < 1 {
			t.Errorf("%s: unsorted flush shrank the table", row[0])
		}
	}
	if _, err = s.AblationCompaction(); err != nil {
		t.Fatal(err)
	}
	if _, err = s.AblationLogStructured(); err != nil {
		t.Fatal(err)
	}
}

func TestRecoveryExperiment(t *testing.T) {
	s := microSuite()
	tb, err := s.RecoveryExperiment()
	if err != nil {
		t.Fatal(err)
	}
	// 2 workloads × {LeaFTL, LeaFTL@25%, DFTL, SFTL}.
	if len(tb.Rows) != 8 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if row[7] == "0" {
			t.Errorf("%s/%s: differential verification covered nothing", row[0], row[1])
		}
	}
}

func TestRunMemoization(t *testing.T) {
	s := microSuite()
	p := traceWorkloads()[0]
	a, err := s.Run("sim", p, "LeaFTL", 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Run("sim", p, "LeaFTL", 0)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("identical run not memoized")
	}
}
