package experiments

import (
	"fmt"
	"time"

	"leaftl/internal/ftl"
	"leaftl/internal/leaftl"
	"leaftl/internal/ssd"
	"leaftl/internal/trace"
	"leaftl/internal/workload"
)

// GCCompareSpec parameterizes the GC policy/stream comparison matrix.
// Zero-valued fields select the defaults: every built-in policy, 1 and
// 4 streams, both timed workloads, 4 host queues at recorded speed.
type GCCompareSpec struct {
	// Policies are ssd GC policy names ("greedy", "cost-benefit",
	// "fifo").
	Policies []string
	// Streams are the Config.GCStreams values to sweep.
	Streams []int
	// Workloads name generators from workload.TimedCatalog
	// ("zipf-hot", "mixed-rw").
	Workloads []string
	// Queues, Speedup and Gamma mirror OpenLoopSpec.
	Queues  int
	Speedup float64
	Gamma   int
	// Journal runs LeaFTL with the mapping-delta journal, so GC pressure
	// and metadata persistence compete for over-provisioned capacity.
	Journal bool
}

func (s GCCompareSpec) withDefaults() GCCompareSpec {
	if len(s.Policies) == 0 {
		s.Policies = ssd.GCPolicyNames()
	}
	if len(s.Streams) == 0 {
		s.Streams = []int{1, 4}
	}
	if len(s.Workloads) == 0 {
		s.Workloads = []string{"zipf-hot", "mixed-rw"}
	}
	if s.Queues < 1 {
		s.Queues = 4
	}
	if s.Speedup <= 0 {
		s.Speedup = 1
	}
	return s
}

// GCRun is one cell of the GC comparison matrix: one policy × stream
// count × workload, replayed open-loop on a fully-aged LeaFTL device.
type GCRun struct {
	Workload string
	Policy   string
	Streams  int

	// WAF is the steady-state write amplification (flash writes per
	// host write) over the measured replay.
	WAF float64
	// Stats holds the device counters, including GCErases,
	// GCPagesMoved, GCTime and GCStall.
	Stats ssd.Stats
	// Result is the open-loop latency outcome (p99/p999 include
	// GC-induced stalls).
	Result *trace.OpenLoopResult
	// Journal marks a run with the mapping-delta journal on;
	// JournalStats holds its counters (zero-valued otherwise).
	Journal      bool
	JournalStats ftl.JournalStats
}

// GCCompare sweeps GC victim policies × hot/cold stream counts over
// GC-heavy timed workloads (the Figure 25 sensitivity axis this repo
// opens up). Each cell ages an identical LeaFTL device to a fully
// mapped state — so the free pool is tight and reclaim runs throughout
// the measured window — resets metrics, then replays the workload
// open-loop; WAF, GC erase counts and tail latencies are what separate
// the policies.
func (s *Suite) GCCompare(spec GCCompareSpec) ([]GCRun, Table, error) {
	spec = spec.withDefaults()
	gens := workload.TimedCatalog()

	// Twice the suite's trace length, and watermarks in the §3.6
	// mid-range (modern SSDs trigger at 15–40% free): on the aged
	// device the free pool sits just above the trigger, so reclaim
	// runs throughout the measured window instead of never tripping.
	requests := 2 * s.Scale.Requests
	gcConfig := func(policy string, streams int) ssd.Config {
		cfg := s.simConfig("sim")
		cfg.GCPolicy = policy
		cfg.GCStreams = streams
		cfg.GCLowWater = 0.15
		cfg.GCHighWater = 0.25
		return cfg
	}

	var runs []GCRun
	for _, wl := range spec.Workloads {
		gen, ok := gens[wl]
		if !ok {
			return nil, Table{}, fmt.Errorf("gccompare: unknown timed workload %q", wl)
		}
		reqs := gen.Generate(s.simConfig("sim").LogicalPages(), requests, s.Seed)
		for _, policy := range spec.Policies {
			for _, streams := range spec.Streams {
				cfg := gcConfig(policy, streams)
				var opts []leaftl.Option
				if spec.Journal {
					opts = append(opts, leaftl.WithJournal())
				}
				sch := s.newScheme("LeaFTL", spec.Gamma, cfg, opts...)
				dev, err := ssd.New(cfg, sch)
				if err != nil {
					return nil, Table{}, fmt.Errorf("gccompare %s/%s/%d: %w", wl, policy, streams, err)
				}
				// Age the drive: fill the whole logical space so every
				// block holds data and reclaim is live during the
				// measurement (§4.1 warms before measuring).
				if err := warmPages(dev, dev.LogicalPages()); err != nil {
					return nil, Table{}, fmt.Errorf("gccompare %s/%s/%d: warmup: %w", wl, policy, streams, err)
				}
				if err := dev.Flush(); err != nil {
					return nil, Table{}, fmt.Errorf("gccompare %s/%s/%d: warmup flush: %w", wl, policy, streams, err)
				}
				dev.ResetMetrics()
				res, err := trace.ReplayOpenLoop(dev, reqs, trace.OpenLoopConfig{
					Queues: spec.Queues, Speedup: spec.Speedup,
				})
				if err != nil {
					return nil, Table{}, fmt.Errorf("gccompare %s/%s/%d: %w", wl, policy, streams, err)
				}
				if err := dev.Flush(); err != nil {
					return nil, Table{}, fmt.Errorf("gccompare %s/%s/%d: flush: %w", wl, policy, streams, err)
				}
				run := GCRun{
					Workload: wl, Policy: policy, Streams: streams,
					WAF: dev.WAF(), Stats: dev.Stats(), Result: res,
				}
				run.Journal, run.JournalStats = journalStatsOf(sch)
				runs = append(runs, run)
			}
		}
	}

	t := Table{
		ID: "gccompare",
		Title: fmt.Sprintf("GC policies × streams: %d requests/workload, %d queue(s), gamma=%d",
			requests, spec.Queues, spec.Gamma),
		Header: []string{"workload", "policy", "streams", "WAF", "GC erases", "moved", "GC stall", "p50", "p99", "p999"},
		Notes:  "aged device (logical space fully mapped); latency = queue wait + service incl. GC stalls",
	}
	for _, r := range runs {
		sum := r.Result.Latency.Summary()
		t.Rows = append(t.Rows, []string{
			r.Workload, r.Policy, fmt.Sprintf("%d", r.Streams),
			f2(r.WAF),
			fmt.Sprintf("%d", r.Stats.GCErases),
			fmt.Sprintf("%d", r.Stats.GCPagesMoved),
			ms(r.Stats.GCStall),
			us(sum.P50), us(sum.P99), us(sum.P999),
		})
	}
	return runs, t, nil
}

// ms renders a duration in milliseconds for table cells.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
}
