package trace

import (
	"fmt"
	"time"

	"leaftl/internal/addr"
)

// Device is the request surface a trace replays onto (implemented by
// *ssd.Device).
type Device interface {
	Read(lpa addr.LPA, pages int) (time.Duration, error)
	Write(lpa addr.LPA, pages int) (time.Duration, error)
}

// Replay applies every request in order (closed loop: the device's clock
// advances per request).
func Replay(d Device, reqs []Request) error {
	for i, r := range reqs {
		var err error
		switch r.Op {
		case OpRead:
			_, err = d.Read(r.LPA, r.Pages)
		case OpWrite:
			_, err = d.Write(r.LPA, r.Pages)
		default:
			err = fmt.Errorf("unknown op %q", r.Op)
		}
		if err != nil {
			return fmt.Errorf("trace: request %d (%s): %w", i, r, err)
		}
	}
	return nil
}
