package trace

import (
	"fmt"
	"time"

	"leaftl/internal/addr"
	"leaftl/internal/metrics"
)

// Device is the request surface a trace replays onto (implemented by
// *ssd.Device). Read and Write return the request's service latency on
// the device's own virtual clock.
type Device interface {
	Read(lpa addr.LPA, pages int) (time.Duration, error)
	Write(lpa addr.LPA, pages int) (time.Duration, error)
}

// ClockedDevice is a Device whose virtual clock can be advanced through
// idle periods. Open-loop replay uses it to let background work
// (buffered flushes) complete during arrival gaps, as it would on a
// real drive; devices without it are still replayable, their clock just
// never idles. *ssd.Device implements it.
type ClockedDevice interface {
	Device
	// Now returns the device's virtual clock.
	Now() time.Duration
	// AdvanceTo moves the virtual clock forward to t (no-op if the
	// clock is already past t).
	AdvanceTo(t time.Duration)
}

// QueueDevice is a device fronted by real submission/completion queue
// pairs with their own workers (implemented by *ssd.MultiQueue). When
// ReplayOpenLoop receives one, it submits requests to the queues instead
// of simulating queueing itself, and reads latencies back from the
// stamped completions. All times are trace-relative (the front end
// rebases onto its own clock).
type QueueDevice interface {
	Device
	// QueueCount returns the number of queue pairs.
	QueueCount() int
	// Submit enqueues a request on queue q at the given arrival time,
	// blocking when the queue is full.
	Submit(q int, write bool, lpa addr.LPA, pages int, arrival time.Duration) error
	// Drain waits for every submitted request to complete and stops the
	// workers; only then may Completions be read.
	Drain() error
	// Completions replays queue q's stamped completions to fn in apply
	// order.
	Completions(q int, fn func(write bool, arrival, start, complete time.Duration, err error))
	// FirstError returns the first per-request error in apply order.
	FirstError() error
}

// Replay applies every request in order (closed loop: each request
// starts when the previous one finished; arrival timestamps are
// ignored).
func Replay(d Device, reqs []Request) error {
	for i, r := range reqs {
		if _, err := dispatch(d, r); err != nil {
			return fmt.Errorf("trace: request %d (%s): %w", i, r, err)
		}
	}
	return nil
}

// dispatch issues one request and returns its service latency.
func dispatch(d Device, r Request) (time.Duration, error) {
	switch r.Op {
	case OpRead:
		return d.Read(r.LPA, r.Pages)
	case OpWrite:
		return d.Write(r.LPA, r.Pages)
	default:
		return 0, fmt.Errorf("unknown op %q", r.Op)
	}
}

// OpenLoopConfig parameterizes ReplayOpenLoop. The zero value replays
// at recorded speed through one host queue.
type OpenLoopConfig struct {
	// Queues is the number of host submission queues requests are
	// dispatched across (default 1). Each queue serves its requests in
	// order; a request's latency is its queue wait plus device service
	// time, so deeper queue counts absorb arrival bursts the way a
	// multi-queue host interface does.
	Queues int
	// Speedup divides recorded inter-arrival times (2 = replay twice as
	// fast; default 1). The knob §4.1-style replay studies use to push a
	// trace toward device saturation.
	Speedup float64
	// Interarrival, when positive, discards recorded timestamps and
	// spaces arrivals uniformly by this much — how untimed traces are
	// replayed open-loop. Speedup applies to it like it does to
	// recorded arrivals.
	Interarrival time.Duration
}

func (c OpenLoopConfig) withDefaults() OpenLoopConfig {
	if c.Queues < 1 {
		c.Queues = 1
	}
	if c.Speedup <= 0 {
		c.Speedup = 1
	}
	return c
}

// OpenLoopResult aggregates one open-loop replay.
type OpenLoopResult struct {
	// Requests is the number of requests served; Reads and Writes split
	// it by direction.
	Requests, Reads, Writes int
	// Elapsed is the virtual makespan: the completion time of the last
	// request, measured from the first arrival.
	Elapsed time.Duration
	// Latency is the end-to-end request latency distribution (queue
	// wait + service); ReadLatency and WriteLatency split it by
	// direction, and QueueWait isolates time spent waiting behind
	// earlier requests in the same queue.
	Latency, ReadLatency, WriteLatency, QueueWait *metrics.Histogram
}

// IOPS returns the achieved request throughput over the virtual
// makespan.
func (r *OpenLoopResult) IOPS() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Requests) / r.Elapsed.Seconds()
}

// ReplayOpenLoop replays a trace open-loop: each request is submitted
// at its recorded arrival time (scaled by cfg.Speedup) regardless of
// whether earlier requests have completed — the load a host generates,
// as opposed to Replay's closed loop where the device sets the pace.
// Requests fan out round-robin across cfg.Queues host queues; within a
// queue, a request waits for its predecessor, so end-to-end latency is
// queue wait plus device service time and tail percentiles surface
// arrival bursts the closed loop hides.
//
// The device itself is the simulator's sequential timing model, so
// service times are measured one request at a time on its virtual
// clock; if the device is a ClockedDevice its clock is advanced through
// arrival gaps so background flash work completes during idle periods.
// A QueueDevice bypasses the simulated queues entirely: requests are
// dispatched round-robin to its real queue pairs and latencies come
// from the completions its workers stamp.
func ReplayOpenLoop(d Device, reqs []Request, cfg OpenLoopConfig) (*OpenLoopResult, error) {
	cfg = cfg.withDefaults()
	if qd, ok := d.(QueueDevice); ok {
		return replayQueues(qd, reqs, cfg)
	}
	res := &OpenLoopResult{
		Latency:      metrics.NewHistogram(),
		ReadLatency:  metrics.NewHistogram(),
		WriteLatency: metrics.NewHistogram(),
		QueueWait:    metrics.NewHistogram(),
	}
	clocked, _ := d.(ClockedDevice)
	// Replay times are trace-relative; the device's clock may already be
	// far along (warmup traffic), so idle-gap advances are offset from
	// its position at replay start.
	var base time.Duration
	if clocked != nil {
		base = clocked.Now()
	}

	freeAt := make([]time.Duration, cfg.Queues)
	var end time.Duration
	for i, r := range reqs {
		arrival := time.Duration(float64(r.Arrival) / cfg.Speedup)
		if cfg.Interarrival > 0 {
			arrival = time.Duration(float64(i) * float64(cfg.Interarrival) / cfg.Speedup)
		}
		q := i % cfg.Queues
		start := arrival
		if freeAt[q] > start {
			start = freeAt[q]
		}
		if clocked != nil {
			clocked.AdvanceTo(base + start)
		}
		service, err := dispatch(d, r)
		if err != nil {
			return nil, fmt.Errorf("trace: request %d (%s): %w", i, r, err)
		}
		complete := start + service
		freeAt[q] = complete
		if complete > end {
			end = complete
		}

		lat := complete - arrival
		res.Requests++
		res.Latency.Observe(lat)
		res.QueueWait.Observe(start - arrival)
		if r.Op == OpRead {
			res.Reads++
			res.ReadLatency.Observe(lat)
		} else {
			res.Writes++
			res.WriteLatency.Observe(lat)
		}
	}
	res.Elapsed = end
	return res, nil
}

// replayQueues is the QueueDevice arm of ReplayOpenLoop: requests are
// submitted round-robin to the device's real queue pairs in trace order
// (which fixes the global apply order), the front end's workers time and
// apply them, and the stamped completions are folded into the same
// histograms the simulated-queue path fills. Submission order per queue
// matches the simulated path exactly, so a one-queue QueueDevice replays
// the same schedule the single-queue simulation would.
func replayQueues(qd QueueDevice, reqs []Request, cfg OpenLoopConfig) (*OpenLoopResult, error) {
	queues := qd.QueueCount()
	for i, r := range reqs {
		arrival := time.Duration(float64(r.Arrival) / cfg.Speedup)
		if cfg.Interarrival > 0 {
			arrival = time.Duration(float64(i) * float64(cfg.Interarrival) / cfg.Speedup)
		}
		if err := qd.Submit(i%queues, r.Op != OpRead, r.LPA, r.Pages, arrival); err != nil {
			return nil, fmt.Errorf("trace: request %d (%s): %w", i, r, err)
		}
	}
	if err := qd.Drain(); err != nil {
		return nil, err
	}
	if err := qd.FirstError(); err != nil {
		return nil, err
	}
	res := &OpenLoopResult{
		Latency:      metrics.NewHistogram(),
		ReadLatency:  metrics.NewHistogram(),
		WriteLatency: metrics.NewHistogram(),
		QueueWait:    metrics.NewHistogram(),
	}
	var end time.Duration
	for q := 0; q < queues; q++ {
		qd.Completions(q, func(write bool, arrival, start, complete time.Duration, err error) {
			lat := complete - arrival
			res.Requests++
			res.Latency.Observe(lat)
			res.QueueWait.Observe(start - arrival)
			if write {
				res.Writes++
				res.WriteLatency.Observe(lat)
			} else {
				res.Reads++
				res.ReadLatency.Observe(lat)
			}
			if complete > end {
				end = complete
			}
		})
	}
	res.Elapsed = end
	return res, nil
}
